# Empty dependencies file for test_node_addressed.
# This may be replaced when dependencies are built.
