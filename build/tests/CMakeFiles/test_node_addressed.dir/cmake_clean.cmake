file(REMOVE_RECURSE
  "CMakeFiles/test_node_addressed.dir/test_node_addressed.cpp.o"
  "CMakeFiles/test_node_addressed.dir/test_node_addressed.cpp.o.d"
  "test_node_addressed"
  "test_node_addressed.pdb"
  "test_node_addressed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_node_addressed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
