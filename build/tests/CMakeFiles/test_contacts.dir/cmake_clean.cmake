file(REMOVE_RECURSE
  "CMakeFiles/test_contacts.dir/test_contacts.cpp.o"
  "CMakeFiles/test_contacts.dir/test_contacts.cpp.o.d"
  "test_contacts"
  "test_contacts.pdb"
  "test_contacts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contacts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
