file(REMOVE_RECURSE
  "CMakeFiles/test_dtn_flow_variants.dir/test_dtn_flow_variants.cpp.o"
  "CMakeFiles/test_dtn_flow_variants.dir/test_dtn_flow_variants.cpp.o.d"
  "test_dtn_flow_variants"
  "test_dtn_flow_variants.pdb"
  "test_dtn_flow_variants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtn_flow_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
