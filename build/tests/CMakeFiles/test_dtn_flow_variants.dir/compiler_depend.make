# Empty compiler generated dependencies file for test_dtn_flow_variants.
# This may be replaced when dependencies are built.
