# Empty dependencies file for test_multicopy.
# This may be replaced when dependencies are built.
