file(REMOVE_RECURSE
  "CMakeFiles/test_multicopy.dir/test_multicopy.cpp.o"
  "CMakeFiles/test_multicopy.dir/test_multicopy.cpp.o.d"
  "test_multicopy"
  "test_multicopy.pdb"
  "test_multicopy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multicopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
