file(REMOVE_RECURSE
  "CMakeFiles/test_landmark_select.dir/test_landmark_select.cpp.o"
  "CMakeFiles/test_landmark_select.dir/test_landmark_select.cpp.o.d"
  "test_landmark_select"
  "test_landmark_select.pdb"
  "test_landmark_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_landmark_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
