# Empty dependencies file for test_landmark_select.
# This may be replaced when dependencies are built.
