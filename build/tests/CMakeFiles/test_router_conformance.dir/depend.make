# Empty dependencies file for test_router_conformance.
# This may be replaced when dependencies are built.
