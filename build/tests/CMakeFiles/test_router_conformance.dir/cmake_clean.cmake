file(REMOVE_RECURSE
  "CMakeFiles/test_router_conformance.dir/test_router_conformance.cpp.o"
  "CMakeFiles/test_router_conformance.dir/test_router_conformance.cpp.o.d"
  "test_router_conformance"
  "test_router_conformance.pdb"
  "test_router_conformance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_router_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
