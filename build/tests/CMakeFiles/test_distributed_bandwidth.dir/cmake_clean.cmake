file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_bandwidth.dir/test_distributed_bandwidth.cpp.o"
  "CMakeFiles/test_distributed_bandwidth.dir/test_distributed_bandwidth.cpp.o.d"
  "test_distributed_bandwidth"
  "test_distributed_bandwidth.pdb"
  "test_distributed_bandwidth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
