# Empty compiler generated dependencies file for test_distributed_bandwidth.
# This may be replaced when dependencies are built.
