file(REMOVE_RECURSE
  "CMakeFiles/test_dtn_flow_router.dir/test_dtn_flow_router.cpp.o"
  "CMakeFiles/test_dtn_flow_router.dir/test_dtn_flow_router.cpp.o.d"
  "test_dtn_flow_router"
  "test_dtn_flow_router.pdb"
  "test_dtn_flow_router[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dtn_flow_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
