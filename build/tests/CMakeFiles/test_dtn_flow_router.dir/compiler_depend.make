# Empty compiler generated dependencies file for test_dtn_flow_router.
# This may be replaced when dependencies are built.
