file(REMOVE_RECURSE
  "CMakeFiles/test_predictor_fuzz.dir/test_predictor_fuzz.cpp.o"
  "CMakeFiles/test_predictor_fuzz.dir/test_predictor_fuzz.cpp.o.d"
  "test_predictor_fuzz"
  "test_predictor_fuzz.pdb"
  "test_predictor_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictor_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
