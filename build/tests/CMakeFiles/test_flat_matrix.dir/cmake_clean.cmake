file(REMOVE_RECURSE
  "CMakeFiles/test_flat_matrix.dir/test_flat_matrix.cpp.o"
  "CMakeFiles/test_flat_matrix.dir/test_flat_matrix.cpp.o.d"
  "test_flat_matrix"
  "test_flat_matrix.pdb"
  "test_flat_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flat_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
