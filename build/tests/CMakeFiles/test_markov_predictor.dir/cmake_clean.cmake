file(REMOVE_RECURSE
  "CMakeFiles/test_markov_predictor.dir/test_markov_predictor.cpp.o"
  "CMakeFiles/test_markov_predictor.dir/test_markov_predictor.cpp.o.d"
  "test_markov_predictor"
  "test_markov_predictor.pdb"
  "test_markov_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_markov_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
