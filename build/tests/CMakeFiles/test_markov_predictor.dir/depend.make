# Empty dependencies file for test_markov_predictor.
# This may be replaced when dependencies are built.
