# Empty dependencies file for test_geo_generator.
# This may be replaced when dependencies are built.
