file(REMOVE_RECURSE
  "CMakeFiles/test_geo_generator.dir/test_geo_generator.cpp.o"
  "CMakeFiles/test_geo_generator.dir/test_geo_generator.cpp.o.d"
  "test_geo_generator"
  "test_geo_generator.pdb"
  "test_geo_generator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geo_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
