# Empty compiler generated dependencies file for campus_data_collection.
# This may be replaced when dependencies are built.
