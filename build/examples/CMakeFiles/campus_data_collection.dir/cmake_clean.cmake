file(REMOVE_RECURSE
  "CMakeFiles/campus_data_collection.dir/campus_data_collection.cpp.o"
  "CMakeFiles/campus_data_collection.dir/campus_data_collection.cpp.o.d"
  "campus_data_collection"
  "campus_data_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_data_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
