# Empty dependencies file for village_network.
# This may be replaced when dependencies are built.
