file(REMOVE_RECURSE
  "CMakeFiles/village_network.dir/village_network.cpp.o"
  "CMakeFiles/village_network.dir/village_network.cpp.o.d"
  "village_network"
  "village_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/village_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
