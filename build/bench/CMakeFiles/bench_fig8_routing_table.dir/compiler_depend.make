# Empty compiler generated dependencies file for bench_fig8_routing_table.
# This may be replaced when dependencies are built.
