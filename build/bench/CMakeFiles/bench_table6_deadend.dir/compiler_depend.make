# Empty compiler generated dependencies file for bench_table6_deadend.
# This may be replaced when dependencies are built.
