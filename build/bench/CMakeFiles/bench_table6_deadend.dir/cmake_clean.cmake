file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_deadend.dir/bench_table6_deadend.cpp.o"
  "CMakeFiles/bench_table6_deadend.dir/bench_table6_deadend.cpp.o.d"
  "bench_table6_deadend"
  "bench_table6_deadend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_deadend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
