file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_loops.dir/bench_table7_loops.cpp.o"
  "CMakeFiles/bench_table7_loops.dir/bench_table7_loops.cpp.o.d"
  "bench_table7_loops"
  "bench_table7_loops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
