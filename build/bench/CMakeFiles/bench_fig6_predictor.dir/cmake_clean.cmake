file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_predictor.dir/bench_fig6_predictor.cpp.o"
  "CMakeFiles/bench_fig6_predictor.dir/bench_fig6_predictor.cpp.o.d"
  "bench_fig6_predictor"
  "bench_fig6_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
