# Empty dependencies file for bench_fig6_predictor.
# This may be replaced when dependencies are built.
