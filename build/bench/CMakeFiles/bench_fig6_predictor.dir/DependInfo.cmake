
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_predictor.cpp" "bench/CMakeFiles/bench_fig6_predictor.dir/bench_fig6_predictor.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_predictor.dir/bench_fig6_predictor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/dtnflow_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/dtnflow_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dtnflow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtnflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtnflow_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtnflow_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dtnflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
