file(REMOVE_RECURSE
  "CMakeFiles/bench_multicopy.dir/bench_multicopy.cpp.o"
  "CMakeFiles/bench_multicopy.dir/bench_multicopy.cpp.o.d"
  "bench_multicopy"
  "bench_multicopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
