# Empty dependencies file for bench_multicopy.
# This may be replaced when dependencies are built.
