file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_stability.dir/bench_fig4_stability.cpp.o"
  "CMakeFiles/bench_fig4_stability.dir/bench_fig4_stability.cpp.o.d"
  "bench_fig4_stability"
  "bench_fig4_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
