# Empty dependencies file for bench_fig2_visits.
# This may be replaced when dependencies are built.
