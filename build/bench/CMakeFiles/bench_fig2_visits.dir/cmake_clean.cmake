file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_visits.dir/bench_fig2_visits.cpp.o"
  "CMakeFiles/bench_fig2_visits.dir/bench_fig2_visits.cpp.o.d"
  "bench_fig2_visits"
  "bench_fig2_visits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_visits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
