file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_subareas.dir/bench_fig5_subareas.cpp.o"
  "CMakeFiles/bench_fig5_subareas.dir/bench_fig5_subareas.cpp.o.d"
  "bench_fig5_subareas"
  "bench_fig5_subareas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_subareas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
