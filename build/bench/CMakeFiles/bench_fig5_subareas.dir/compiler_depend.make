# Empty compiler generated dependencies file for bench_fig5_subareas.
# This may be replaced when dependencies are built.
