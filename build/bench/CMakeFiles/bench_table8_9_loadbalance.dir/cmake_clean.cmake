file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_9_loadbalance.dir/bench_table8_9_loadbalance.cpp.o"
  "CMakeFiles/bench_table8_9_loadbalance.dir/bench_table8_9_loadbalance.cpp.o.d"
  "bench_table8_9_loadbalance"
  "bench_table8_9_loadbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_9_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
