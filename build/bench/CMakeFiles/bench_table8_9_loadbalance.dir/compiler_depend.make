# Empty compiler generated dependencies file for bench_table8_9_loadbalance.
# This may be replaced when dependencies are built.
