file(REMOVE_RECURSE
  "CMakeFiles/dtnflow_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dtnflow_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/dtnflow_sim.dir/simulator.cpp.o"
  "CMakeFiles/dtnflow_sim.dir/simulator.cpp.o.d"
  "libdtnflow_sim.a"
  "libdtnflow_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnflow_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
