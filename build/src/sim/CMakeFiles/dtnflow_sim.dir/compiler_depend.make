# Empty compiler generated dependencies file for dtnflow_sim.
# This may be replaced when dependencies are built.
