file(REMOVE_RECURSE
  "libdtnflow_sim.a"
)
