
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/buffer.cpp" "src/net/CMakeFiles/dtnflow_net.dir/buffer.cpp.o" "gcc" "src/net/CMakeFiles/dtnflow_net.dir/buffer.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/dtnflow_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/dtnflow_net.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dtnflow_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtnflow_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtnflow_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
