file(REMOVE_RECURSE
  "CMakeFiles/dtnflow_net.dir/buffer.cpp.o"
  "CMakeFiles/dtnflow_net.dir/buffer.cpp.o.d"
  "CMakeFiles/dtnflow_net.dir/network.cpp.o"
  "CMakeFiles/dtnflow_net.dir/network.cpp.o.d"
  "libdtnflow_net.a"
  "libdtnflow_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnflow_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
