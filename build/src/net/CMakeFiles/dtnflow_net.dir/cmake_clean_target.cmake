file(REMOVE_RECURSE
  "libdtnflow_net.a"
)
