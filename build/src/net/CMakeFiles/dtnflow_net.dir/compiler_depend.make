# Empty compiler generated dependencies file for dtnflow_net.
# This may be replaced when dependencies are built.
