file(REMOVE_RECURSE
  "libdtnflow_core.a"
)
