# Empty compiler generated dependencies file for dtnflow_core.
# This may be replaced when dependencies are built.
