file(REMOVE_RECURSE
  "CMakeFiles/dtnflow_core.dir/bandwidth.cpp.o"
  "CMakeFiles/dtnflow_core.dir/bandwidth.cpp.o.d"
  "CMakeFiles/dtnflow_core.dir/distributed_bandwidth.cpp.o"
  "CMakeFiles/dtnflow_core.dir/distributed_bandwidth.cpp.o.d"
  "CMakeFiles/dtnflow_core.dir/dtn_flow_router.cpp.o"
  "CMakeFiles/dtnflow_core.dir/dtn_flow_router.cpp.o.d"
  "CMakeFiles/dtnflow_core.dir/landmark_select.cpp.o"
  "CMakeFiles/dtnflow_core.dir/landmark_select.cpp.o.d"
  "CMakeFiles/dtnflow_core.dir/markov_predictor.cpp.o"
  "CMakeFiles/dtnflow_core.dir/markov_predictor.cpp.o.d"
  "CMakeFiles/dtnflow_core.dir/routing_table.cpp.o"
  "CMakeFiles/dtnflow_core.dir/routing_table.cpp.o.d"
  "libdtnflow_core.a"
  "libdtnflow_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnflow_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
