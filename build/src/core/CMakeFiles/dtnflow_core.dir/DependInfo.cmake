
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bandwidth.cpp" "src/core/CMakeFiles/dtnflow_core.dir/bandwidth.cpp.o" "gcc" "src/core/CMakeFiles/dtnflow_core.dir/bandwidth.cpp.o.d"
  "/root/repo/src/core/distributed_bandwidth.cpp" "src/core/CMakeFiles/dtnflow_core.dir/distributed_bandwidth.cpp.o" "gcc" "src/core/CMakeFiles/dtnflow_core.dir/distributed_bandwidth.cpp.o.d"
  "/root/repo/src/core/dtn_flow_router.cpp" "src/core/CMakeFiles/dtnflow_core.dir/dtn_flow_router.cpp.o" "gcc" "src/core/CMakeFiles/dtnflow_core.dir/dtn_flow_router.cpp.o.d"
  "/root/repo/src/core/landmark_select.cpp" "src/core/CMakeFiles/dtnflow_core.dir/landmark_select.cpp.o" "gcc" "src/core/CMakeFiles/dtnflow_core.dir/landmark_select.cpp.o.d"
  "/root/repo/src/core/markov_predictor.cpp" "src/core/CMakeFiles/dtnflow_core.dir/markov_predictor.cpp.o" "gcc" "src/core/CMakeFiles/dtnflow_core.dir/markov_predictor.cpp.o.d"
  "/root/repo/src/core/routing_table.cpp" "src/core/CMakeFiles/dtnflow_core.dir/routing_table.cpp.o" "gcc" "src/core/CMakeFiles/dtnflow_core.dir/routing_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dtnflow_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtnflow_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtnflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtnflow_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
