file(REMOVE_RECURSE
  "CMakeFiles/dtnflow_util.dir/cli.cpp.o"
  "CMakeFiles/dtnflow_util.dir/cli.cpp.o.d"
  "CMakeFiles/dtnflow_util.dir/csv.cpp.o"
  "CMakeFiles/dtnflow_util.dir/csv.cpp.o.d"
  "CMakeFiles/dtnflow_util.dir/logging.cpp.o"
  "CMakeFiles/dtnflow_util.dir/logging.cpp.o.d"
  "CMakeFiles/dtnflow_util.dir/rng.cpp.o"
  "CMakeFiles/dtnflow_util.dir/rng.cpp.o.d"
  "CMakeFiles/dtnflow_util.dir/stats.cpp.o"
  "CMakeFiles/dtnflow_util.dir/stats.cpp.o.d"
  "CMakeFiles/dtnflow_util.dir/thread_pool.cpp.o"
  "CMakeFiles/dtnflow_util.dir/thread_pool.cpp.o.d"
  "libdtnflow_util.a"
  "libdtnflow_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnflow_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
