file(REMOVE_RECURSE
  "libdtnflow_util.a"
)
