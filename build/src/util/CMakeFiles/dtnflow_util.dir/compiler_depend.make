# Empty compiler generated dependencies file for dtnflow_util.
# This may be replaced when dependencies are built.
