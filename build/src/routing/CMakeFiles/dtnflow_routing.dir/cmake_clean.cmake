file(REMOVE_RECURSE
  "CMakeFiles/dtnflow_routing.dir/epidemic.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/epidemic.cpp.o.d"
  "CMakeFiles/dtnflow_routing.dir/factory.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/factory.cpp.o.d"
  "CMakeFiles/dtnflow_routing.dir/geocomm.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/geocomm.cpp.o.d"
  "CMakeFiles/dtnflow_routing.dir/per.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/per.cpp.o.d"
  "CMakeFiles/dtnflow_routing.dir/pgr.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/pgr.cpp.o.d"
  "CMakeFiles/dtnflow_routing.dir/prophet.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/prophet.cpp.o.d"
  "CMakeFiles/dtnflow_routing.dir/simbet.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/simbet.cpp.o.d"
  "CMakeFiles/dtnflow_routing.dir/spray_wait.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/spray_wait.cpp.o.d"
  "CMakeFiles/dtnflow_routing.dir/utility_router.cpp.o"
  "CMakeFiles/dtnflow_routing.dir/utility_router.cpp.o.d"
  "libdtnflow_routing.a"
  "libdtnflow_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnflow_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
