
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/epidemic.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/epidemic.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/epidemic.cpp.o.d"
  "/root/repo/src/routing/factory.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/factory.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/factory.cpp.o.d"
  "/root/repo/src/routing/geocomm.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/geocomm.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/geocomm.cpp.o.d"
  "/root/repo/src/routing/per.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/per.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/per.cpp.o.d"
  "/root/repo/src/routing/pgr.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/pgr.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/pgr.cpp.o.d"
  "/root/repo/src/routing/prophet.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/prophet.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/prophet.cpp.o.d"
  "/root/repo/src/routing/simbet.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/simbet.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/simbet.cpp.o.d"
  "/root/repo/src/routing/spray_wait.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/spray_wait.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/spray_wait.cpp.o.d"
  "/root/repo/src/routing/utility_router.cpp" "src/routing/CMakeFiles/dtnflow_routing.dir/utility_router.cpp.o" "gcc" "src/routing/CMakeFiles/dtnflow_routing.dir/utility_router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dtnflow_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/dtnflow_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dtnflow_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dtnflow_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dtnflow_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
