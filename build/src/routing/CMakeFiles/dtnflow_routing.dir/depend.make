# Empty dependencies file for dtnflow_routing.
# This may be replaced when dependencies are built.
