file(REMOVE_RECURSE
  "libdtnflow_routing.a"
)
