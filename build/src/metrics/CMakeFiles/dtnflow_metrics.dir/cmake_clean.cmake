file(REMOVE_RECURSE
  "CMakeFiles/dtnflow_metrics.dir/experiment.cpp.o"
  "CMakeFiles/dtnflow_metrics.dir/experiment.cpp.o.d"
  "CMakeFiles/dtnflow_metrics.dir/metrics.cpp.o"
  "CMakeFiles/dtnflow_metrics.dir/metrics.cpp.o.d"
  "CMakeFiles/dtnflow_metrics.dir/observer.cpp.o"
  "CMakeFiles/dtnflow_metrics.dir/observer.cpp.o.d"
  "libdtnflow_metrics.a"
  "libdtnflow_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnflow_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
