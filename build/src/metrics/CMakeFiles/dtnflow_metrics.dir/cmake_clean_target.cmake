file(REMOVE_RECURSE
  "libdtnflow_metrics.a"
)
