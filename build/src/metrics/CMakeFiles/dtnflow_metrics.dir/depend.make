# Empty dependencies file for dtnflow_metrics.
# This may be replaced when dependencies are built.
