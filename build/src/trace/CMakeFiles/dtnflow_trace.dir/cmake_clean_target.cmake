file(REMOVE_RECURSE
  "libdtnflow_trace.a"
)
