# Empty dependencies file for dtnflow_trace.
# This may be replaced when dependencies are built.
