
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/bus_generator.cpp" "src/trace/CMakeFiles/dtnflow_trace.dir/bus_generator.cpp.o" "gcc" "src/trace/CMakeFiles/dtnflow_trace.dir/bus_generator.cpp.o.d"
  "/root/repo/src/trace/campus_generator.cpp" "src/trace/CMakeFiles/dtnflow_trace.dir/campus_generator.cpp.o" "gcc" "src/trace/CMakeFiles/dtnflow_trace.dir/campus_generator.cpp.o.d"
  "/root/repo/src/trace/contacts.cpp" "src/trace/CMakeFiles/dtnflow_trace.dir/contacts.cpp.o" "gcc" "src/trace/CMakeFiles/dtnflow_trace.dir/contacts.cpp.o.d"
  "/root/repo/src/trace/geo_generator.cpp" "src/trace/CMakeFiles/dtnflow_trace.dir/geo_generator.cpp.o" "gcc" "src/trace/CMakeFiles/dtnflow_trace.dir/geo_generator.cpp.o.d"
  "/root/repo/src/trace/preprocess.cpp" "src/trace/CMakeFiles/dtnflow_trace.dir/preprocess.cpp.o" "gcc" "src/trace/CMakeFiles/dtnflow_trace.dir/preprocess.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/dtnflow_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/dtnflow_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/dtnflow_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/dtnflow_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/trace_stats.cpp" "src/trace/CMakeFiles/dtnflow_trace.dir/trace_stats.cpp.o" "gcc" "src/trace/CMakeFiles/dtnflow_trace.dir/trace_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dtnflow_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
