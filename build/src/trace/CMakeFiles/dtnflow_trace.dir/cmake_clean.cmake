file(REMOVE_RECURSE
  "CMakeFiles/dtnflow_trace.dir/bus_generator.cpp.o"
  "CMakeFiles/dtnflow_trace.dir/bus_generator.cpp.o.d"
  "CMakeFiles/dtnflow_trace.dir/campus_generator.cpp.o"
  "CMakeFiles/dtnflow_trace.dir/campus_generator.cpp.o.d"
  "CMakeFiles/dtnflow_trace.dir/contacts.cpp.o"
  "CMakeFiles/dtnflow_trace.dir/contacts.cpp.o.d"
  "CMakeFiles/dtnflow_trace.dir/geo_generator.cpp.o"
  "CMakeFiles/dtnflow_trace.dir/geo_generator.cpp.o.d"
  "CMakeFiles/dtnflow_trace.dir/preprocess.cpp.o"
  "CMakeFiles/dtnflow_trace.dir/preprocess.cpp.o.d"
  "CMakeFiles/dtnflow_trace.dir/trace.cpp.o"
  "CMakeFiles/dtnflow_trace.dir/trace.cpp.o.d"
  "CMakeFiles/dtnflow_trace.dir/trace_io.cpp.o"
  "CMakeFiles/dtnflow_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/dtnflow_trace.dir/trace_stats.cpp.o"
  "CMakeFiles/dtnflow_trace.dir/trace_stats.cpp.o.d"
  "libdtnflow_trace.a"
  "libdtnflow_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtnflow_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
