// simulate — the full-surface CLI driver: pick a trace (synthetic or
// CSV), a router, and workload parameters; get the paper's four metrics
// plus delay quantiles.  Everything the benches do, parameterized.
//
//   $ ./simulate --router DTN-FLOW --kind campus --nodes 64
//         --landmarks 30 --days 32 --rate 30 --memory 40 --ttl-days 4
//         [--input trace.csv] [--replicates 3] [--seed 1] [--shards 4]
//         [--fault-node-crash-rate 0.05 --fault-station-outage-rate 0.1
//          --fault-transfer-fail 0.02 ...]   (docs/fault-injection.md)
//         [--station-memory 20 --store-policy drop-oldest --store-dedup
//          --spill-dir spill/]               (docs/bounded-store.md)
//
// Routers: DTN-FLOW, SimBet, PROPHET, PGR, GeoComm, PER, Direct,
// Epidemic, SprayWait, or "all".
//
// --kind city generates the city-scale tier (districts + buses); with
// --shards N > 1 the replay runs on the sharded parallel engine
// (docs/parallel-engine.md), falling back to the serial engine —
// bit-identically — when the router or workload is not shard-safe.
//
// --serve turns the run into a long-running service with checkpoint /
// restore (docs/checkpointing.md): snapshots land in --checkpoint-dir
// every --checkpoint-every-events events (and/or --checkpoint-every-days
// of simulated time), and a restarted process resumes from the newest
// snapshot with bit-identical final metrics.  --serve-exit-after-events N
// snapshots and exits with status 3 after N events — a deterministic
// stand-in for kill -9 used by the CI round-trip smoke.
#include <cstdio>
#include <filesystem>

#include "metrics/experiment.hpp"
#include "net/bundle_store.hpp"
#include "persist/checkpoint.hpp"
#include "routing/factory.hpp"
#include "sim/fault_injector.hpp"
#include "trace/bus_generator.hpp"
#include "trace/campus_generator.hpp"
#include "trace/city_generator.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

namespace {

// One router, one replicate, snapshots on: the service path deliberately
// bypasses run_experiment so the Network object survives a suspension.
int run_service(const dtn::CliOptions& opts, const dtn::trace::Trace& trace,
                const dtn::net::WorkloadConfig& workload,
                const std::string& router_name) {
  dtn::persist::CheckpointConfig cc;
  cc.dir = opts.get("checkpoint-dir", "");
  if (cc.dir.empty()) {
    std::fprintf(stderr, "simulate: --serve requires --checkpoint-dir\n");
    return 2;
  }
  cc.every_events = static_cast<std::uint64_t>(
      opts.get_int("checkpoint-every-events", 250000));
  cc.every_time =
      opts.get_double("checkpoint-every-days", 0.0) * dtn::trace::kDay;
  cc.keep = static_cast<std::size_t>(opts.get_int("checkpoint-keep", 4));
  cc.stop_after_events = static_cast<std::uint64_t>(
      opts.get_int("serve-exit-after-events", 0));
  dtn::persist::CheckpointManager mgr(cc);

  const auto router = dtn::routing::make_router(router_name);
  if (!router->checkpointable()) {
    std::fprintf(stderr,
                 "simulate: router %s does not support checkpointing; "
                 "--serve needs a checkpointable router\n",
                 router_name.c_str());
    return 2;
  }
  dtn::net::Network network(trace, *router, workload);
  if (mgr.has_checkpoint()) {
    std::string from;
    mgr.read_latest(&from);
    std::printf("serve: resuming from %s\n", from.c_str());
  } else {
    std::printf("serve: no snapshot in %s, starting fresh\n", cc.dir.c_str());
  }
  if (!network.run(mgr)) {
    std::printf("serve: suspended after %llu events (snapshot written); "
                "run again with the same arguments to resume\n",
                static_cast<unsigned long long>(network.events_executed()));
    return 3;
  }
  const auto res = dtn::metrics::summarize(network, router->name());
  dtn::TablePrinter table({"router", "success", "avg delay (d)",
                           "P50 delay (d)", "P90 delay (d)", "fwd cost",
                           "total cost"});
  const double p50 = res.delivery_delays.empty()
                         ? 0.0
                         : dtn::quantile(res.delivery_delays, 0.5);
  const double p90 = res.delivery_delays.empty()
                         ? 0.0
                         : dtn::quantile(res.delivery_delays, 0.9);
  table.add_row(router->name(),
                {res.success_rate, res.avg_delay / dtn::trace::kDay,
                 p50 / dtn::trace::kDay, p90 / dtn::trace::kDay,
                 res.forwarding_cost, res.total_cost},
                4);
  table.print("simulation results");
  table.write_csv(opts.get("out", ""));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv, {"serve", "store-dedup"});

  dtn::trace::Trace trace;
  const std::string input = opts.get("input", "");
  if (!input.empty()) {
    trace = dtn::trace::read_trace_csv(input);
  } else if (opts.get("kind", "campus") == "bus") {
    dtn::trace::BusTraceConfig cfg;
    cfg.num_buses = static_cast<std::size_t>(opts.get_int("nodes", 34));
    cfg.num_landmarks =
        static_cast<std::size_t>(opts.get_int("landmarks", 18));
    cfg.days = opts.get_double("days", 26.0);
    cfg.seed = opts.get_seed(1);
    trace = dtn::trace::generate_bus_trace(cfg);
  } else if (opts.get("kind", "campus") == "city") {
    dtn::trace::CityTraceConfig cfg;
    cfg.num_pedestrians = static_cast<std::size_t>(opts.get_int("nodes", 2000));
    cfg.num_buses = static_cast<std::size_t>(opts.get_int("buses", 40));
    cfg.num_landmarks =
        static_cast<std::size_t>(opts.get_int("landmarks", 400));
    cfg.num_districts =
        static_cast<std::size_t>(opts.get_int("districts", 16));
    cfg.days = opts.get_double("days", 2.0);
    cfg.seed = opts.get_seed(1);
    trace = dtn::trace::generate_city_trace(cfg);
  } else {
    dtn::trace::CampusTraceConfig cfg;
    cfg.num_nodes = static_cast<std::size_t>(opts.get_int("nodes", 64));
    cfg.num_landmarks =
        static_cast<std::size_t>(opts.get_int("landmarks", 30));
    cfg.num_communities =
        static_cast<std::size_t>(opts.get_int("communities", 14));
    cfg.days = opts.get_double("days", 32.0);
    cfg.seed = opts.get_seed(1);
    trace = dtn::trace::generate_campus_trace(cfg);
  }
  std::printf("trace: %zu nodes, %zu landmarks, %zu visits, %.1f days\n",
              trace.num_nodes(), trace.num_landmarks(), trace.total_visits(),
              trace.duration() / dtn::trace::kDay);

  dtn::net::WorkloadConfig workload;
  workload.packets_per_landmark_per_day = opts.get_double("rate", 30.0);
  workload.ttl = opts.get_double("ttl-days", 4.0) * dtn::trace::kDay;
  workload.node_memory_kb =
      static_cast<std::uint64_t>(opts.get_int("memory", 40));
  workload.time_unit =
      opts.get_double("unit-days", 1.0) * dtn::trace::kDay;
  workload.warmup_fraction = opts.get_double("warmup", 0.25);
  workload.seed = opts.get_seed(1) * 97 + 3;
  // Bounded-store overload knobs (docs/bounded-store.md); the defaults
  // keep stations unbounded and every policy off.
  workload.store.station_memory_kb =
      static_cast<std::uint64_t>(opts.get_int("station-memory", 0));
  const std::string policy_name = opts.get("store-policy", "reject");
  if (!dtn::net::parse_eviction_policy(policy_name, &workload.store.policy)) {
    std::fprintf(stderr,
                 "simulate: unknown --store-policy %s (use reject, "
                 "drop-oldest, drop-largest-expected-delay or ttl-expire)\n",
                 policy_name.c_str());
    return 2;
  }
  workload.store.dedup = opts.has("store-dedup");
  workload.store.spill_dir = opts.get("spill-dir", "");
  if (!workload.store.spill_dir.empty()) {
    std::filesystem::create_directories(workload.store.spill_dir);
  }
  if (workload.store.station_memory_kb > 0) {
    std::printf("stations: bounded to %llu kB, policy %s%s%s\n",
                static_cast<unsigned long long>(
                    workload.store.station_memory_kb),
                dtn::net::to_string(workload.store.policy),
                workload.store.dedup ? ", dedup on" : "",
                workload.store.spill_dir.empty() ? "" : ", spill enabled");
  }
  workload.faults = dtn::sim::fault_plan_from_cli(opts);
  if (workload.faults.has_value()) {
    std::printf("faults: seeded plan %llu (crash rate %.3f/day, outage rate "
                "%.3f/day, transfer fail %.3f)\n",
                static_cast<unsigned long long>(workload.faults->seed),
                workload.faults->node_crash_rate_per_day,
                workload.faults->station_outage_rate_per_day,
                workload.faults->transfer_failure_prob);
  }

  const std::string choice = opts.get("router", "DTN-FLOW");
  if (opts.has("serve")) {
    if (choice == "all") {
      std::fprintf(stderr, "simulate: --serve runs a single router, not "
                           "--router all\n");
      return 2;
    }
    if (opts.get_int("replicates", 1) != 1 || opts.get_int("shards", 1) != 1) {
      std::fprintf(stderr, "simulate: --serve is single-replicate and "
                           "serial (resume runs on the serial engine)\n");
      return 2;
    }
    return run_service(opts, trace, workload, choice);
  }

  std::vector<std::string> routers;
  if (choice == "all") {
    routers = dtn::routing::standard_router_names();
  } else {
    routers.push_back(choice);
  }

  const auto replicates =
      static_cast<std::size_t>(opts.get_int("replicates", 1));
  const auto num_shards = static_cast<std::size_t>(opts.get_int("shards", 1));
  if (num_shards > 1) {
    if (workload.faults.has_value()) {
      std::printf("shards: %zu requested, but fault plans are serial-only — "
                  "running the serial engine (results are identical)\n",
                  num_shards);
    } else {
      std::printf("shards: %zu (sharded engine where the router allows; "
                  "bit-identical to serial)\n", num_shards);
    }
  }
  dtn::TablePrinter table({"router", "success", "avg delay (d)",
                           "P50 delay (d)", "P90 delay (d)", "fwd cost",
                           "total cost"});
  for (const auto& name : routers) {
    dtn::RunningStats success, delay, fwd, total;
    std::vector<double> all_delays;
    std::uint64_t crashes = 0, outages = 0, lost = 0, interrupted = 0;
    for (std::size_t r = 0; r < replicates; ++r) {
      auto wl = workload;
      wl.seed = workload.seed + r * 1237;
      if (wl.faults.has_value()) {
        wl.faults->seed ^= 0x5bd1e995ULL * (r + 1);
      }
      const auto router = dtn::routing::make_router(name);
      const auto res =
          dtn::metrics::run_experiment(trace, *router, wl, {}, num_shards);
      success.add(res.success_rate);
      delay.add(res.avg_delay);
      fwd.add(res.forwarding_cost);
      total.add(res.total_cost);
      all_delays.insert(all_delays.end(), res.delivery_delays.begin(),
                        res.delivery_delays.end());
      crashes += res.node_crashes;
      outages += res.station_outages;
      lost += res.packets_lost_fault;
      interrupted += res.transfers_interrupted;
    }
    if (workload.faults.has_value()) {
      std::printf("%s resilience: %llu crashes, %llu outages, %llu packets "
                  "lost to faults, %llu transfers interrupted\n",
                  name.c_str(), static_cast<unsigned long long>(crashes),
                  static_cast<unsigned long long>(outages),
                  static_cast<unsigned long long>(lost),
                  static_cast<unsigned long long>(interrupted));
    }
    const double p50 =
        all_delays.empty() ? 0.0 : dtn::quantile(all_delays, 0.5);
    const double p90 =
        all_delays.empty() ? 0.0 : dtn::quantile(all_delays, 0.9);
    table.add_row(name,
                  {success.mean(), delay.mean() / dtn::trace::kDay,
                   p50 / dtn::trace::kDay, p90 / dtn::trace::kDay,
                   fwd.mean(), total.mean()},
                  4);
  }
  table.print("simulation results");
  table.write_csv(opts.get("out", ""));
  return 0;
}
