// Rural inter-village data network — the paper's motivating application
// (§I): villages without infrastructure exchange data (e-mail batches,
// web prefetches) through people and buses moving between them.
//
// The example compares DTN-FLOW against direct delivery and a
// probabilistic baseline on a bus-and-villager mobility mix, and then
// demonstrates routing a message to a *person* (§IV-E.4): address it to
// the destination node's most frequently visited villages.
//
//   $ ./village_network [--seed N]
#include <cstdio>

#include "core/dtn_flow_router.hpp"
#include "metrics/metrics.hpp"
#include "routing/direct.hpp"
#include "routing/prophet.hpp"
#include "trace/bus_generator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);

  // Villages as landmarks; buses on market routes plus villagers who
  // mostly shuttle between their home village and the district town.
  // The bus generator covers both: buses are the long fixed routes,
  // "villagers" are short two-stop routes.
  dtn::trace::BusTraceConfig cfg;
  cfg.num_buses = 30;          // 30 carriers
  cfg.num_landmarks = 12;      // 12 villages
  cfg.num_routes = 9;          // market-day circuits + village shuttles
  cfg.route_length_min = 2;    // villagers: home <-> town
  cfg.route_length_max = 6;    // buses: longer circuits
  cfg.num_hubs = 2;            // district towns
  cfg.days = 20.0;
  cfg.weekdays_only = false;
  cfg.inter_stop_minutes = 35.0;  // villages are far apart
  cfg.stop_dwell_minutes = 20.0;
  cfg.seed = opts.get_seed(3);
  const auto trace = dtn::trace::generate_bus_trace(cfg);
  std::printf("village network: %zu carriers over %zu villages, %.0f days\n",
              trace.num_nodes(), trace.num_landmarks(),
              trace.duration() / dtn::trace::kDay);

  dtn::net::WorkloadConfig workload;
  workload.packets_per_landmark_per_day = 30.0;
  workload.ttl = 4.0 * dtn::trace::kDay;
  workload.node_memory_kb = 80;
  workload.time_unit = 0.5 * dtn::trace::kDay;
  workload.seed = opts.get_seed(3) * 5 + 1;

  dtn::TablePrinter table(
      {"router", "success rate", "avg delay (h)", "forwards"});
  auto run = [&](dtn::net::Router& router) {
    const auto r = dtn::metrics::run_experiment(trace, router, workload);
    table.add_row(r.router,
                  {r.success_rate, r.avg_delay / dtn::trace::kHour,
                   r.forwarding_cost},
                  3);
  };
  dtn::core::DtnFlowRouter dtn_flow;
  dtn::routing::ProphetRouter prophet;
  dtn::routing::DirectDeliveryRouter direct;
  run(dtn_flow);
  run(prophet);
  run(direct);
  table.print("inter-village data exchange");

  // Routing to a person (§IV-E.4): find where node 5 can be reached.
  // `frequent_landmarks` summarizes its visiting history; addressing a
  // packet to those villages delivers it where the person shows up.
  {
    dtn::core::DtnFlowRouter router;
    dtn::net::Network net(trace, router, dtn::net::WorkloadConfig{});
    net.run();
    const auto home = dtn::core::DtnFlowRouter::frequent_landmarks(net, 5, 2);
    std::printf("\nrouting to a person: node 5 is best reached via village");
    for (const auto l : home) std::printf(" %u", l);
    std::printf(" (its most frequently visited places)\n");
  }
  return 0;
}
