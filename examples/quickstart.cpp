// Quickstart: generate a mobility trace, run DTN-FLOW over it, and read
// the metrics — the minimal end-to-end use of the library.
//
//   $ ./quickstart [--seed N]
#include <cstdio>

#include "core/dtn_flow_router.hpp"
#include "metrics/metrics.hpp"
#include "trace/campus_generator.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);

  // 1. A mobility trace: who visited which landmark when.  Here a
  //    synthetic campus; real traces load via trace::read_trace_csv.
  dtn::trace::CampusTraceConfig trace_cfg;
  trace_cfg.num_nodes = 48;
  trace_cfg.num_landmarks = 20;
  trace_cfg.days = 21.0;
  trace_cfg.seed = opts.get_seed(42);
  const dtn::trace::Trace trace = dtn::trace::generate_campus_trace(trace_cfg);
  std::printf("trace: %zu nodes, %zu landmarks, %zu visits over %.1f days\n",
              trace.num_nodes(), trace.num_landmarks(), trace.total_visits(),
              trace.duration() / dtn::trace::kDay);

  // 2. A workload: packets per landmark per day, TTL, node memory.
  dtn::net::WorkloadConfig workload;
  workload.packets_per_landmark_per_day = 25.0;
  workload.ttl = 4.0 * dtn::trace::kDay;
  workload.node_memory_kb = 50;
  workload.time_unit = 1.0 * dtn::trace::kDay;

  // 3. A router: DTN-FLOW with default configuration (order-1 Markov
  //    predictor, direct delivery, accuracy-refined carrier selection).
  dtn::core::DtnFlowRouter router;

  // 4. Run and summarize.
  const dtn::metrics::RunResult result =
      dtn::metrics::run_experiment(trace, router, workload);
  std::printf("router:          %s\n", result.router.c_str());
  std::printf("packets:         %lu generated, %lu delivered\n",
              static_cast<unsigned long>(result.generated),
              static_cast<unsigned long>(result.delivered));
  std::printf("success rate:    %.3f\n", result.success_rate);
  std::printf("average delay:   %.2f days\n",
              result.avg_delay / dtn::trace::kDay);
  std::printf("forwarding cost: %.0f operations\n", result.forwarding_cost);
  std::printf("total cost:      %.0f operations\n", result.total_cost);

  // 5. Router internals are inspectable: e.g. the routing table that
  //    landmark 0 built purely from tables carried by mobile nodes.
  const auto& table = router.routing_table(0);
  std::printf("landmark 0 routing-table coverage: %.0f%%\n",
              100.0 * table.coverage());
  return 0;
}
