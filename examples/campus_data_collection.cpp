// Campus data collection: every building streams sensor logs to the
// library (the paper's §V-C deployment scenario, and an instance of the
// "collect data from different areas" application class in §I).
//
// Demonstrates the full planning pipeline:
//   1. landmark selection from candidate popular places (§IV-A):
//      spacing rule + popularity;
//   2. subarea division (nearest-landmark assignment);
//   3. skewed-destination workload (all packets to one landmark);
//   4. per-source delivery statistics.
//
//   $ ./campus_data_collection [--seed N] [--days D]
#include <cstdio>
#include <vector>

#include "core/dtn_flow_router.hpp"
#include "core/landmark_select.hpp"
#include "metrics/metrics.hpp"
#include "trace/geo_generator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  dtn::Rng rng(opts.get_seed(7));

  // -- 1. plan the landmark deployment ---------------------------------
  // Candidate popular places: building positions with historical visit
  // counts (in a real deployment these come from a site survey).
  std::vector<dtn::core::CandidatePlace> candidates;
  for (int i = 0; i < 40; ++i) {
    candidates.push_back({{rng.uniform(0.0, 2000.0), rng.uniform(0.0, 1500.0)},
                          rng.uniform(50.0, 5000.0)});
  }
  const auto selected = dtn::core::select_landmarks(
      candidates, /*min_distance=*/250.0, /*max_landmarks=*/16);
  std::printf("landmark selection: %zu of %zu candidate buildings kept "
              "(min spacing 250 m)\n",
              selected.size(), candidates.size());

  // Subarea division: which landmark serves each candidate building.
  std::vector<dtn::trace::Point> landmark_positions;
  for (const auto idx : selected) {
    landmark_positions.push_back(candidates[idx].position);
  }
  std::vector<dtn::trace::Point> all_positions;
  for (const auto& c : candidates) all_positions.push_back(c.position);
  const auto subarea =
      dtn::core::assign_subareas(all_positions, landmark_positions);
  std::vector<int> subarea_sizes(selected.size(), 0);
  for (const auto s : subarea) ++subarea_sizes[s];
  std::printf("subarea division: largest subarea covers %d buildings\n",
              *std::max_element(subarea_sizes.begin(), subarea_sizes.end()));

  // -- 2. mobility over the selected map --------------------------------
  // The geographic generator walks people between the *actual selected
  // landmark positions*, so travel times are consistent with the map
  // the landmarks were planned on.
  dtn::trace::GeoTraceConfig trace_cfg;
  trace_cfg.landmark_positions = landmark_positions;
  trace_cfg.num_nodes = 54;
  trace_cfg.days = opts.get_double("days", 24.0);
  trace_cfg.seed = opts.get_seed(7) + 1;
  // Attraction proportional to the surveyed popularity; the most
  // visited selected place (index 0 by construction) is the "library".
  for (const auto idx : selected) {
    trace_cfg.attraction.push_back(candidates[idx].visit_count);
  }
  const auto trace = dtn::trace::generate_geo_trace(trace_cfg);

  const dtn::trace::LandmarkId library = 0;  // most popular place
  dtn::net::WorkloadConfig workload;
  workload.packets_per_landmark_per_day = 40.0;
  workload.ttl = 3.0 * dtn::trace::kDay;
  workload.node_memory_kb = 50;
  workload.time_unit = 0.5 * dtn::trace::kDay;
  // All traffic flows to the library.
  workload.destination_weights.assign(trace.num_landmarks(), 0.0);
  workload.destination_weights[library] = 1.0;

  // -- 3. run DTN-FLOW --------------------------------------------------
  dtn::core::DtnFlowRouter router;
  dtn::net::Network net(trace, router, workload);
  net.run();
  const auto result = dtn::metrics::summarize(net, router.name());

  std::printf("\ncollection run: %lu packets, %.1f%% reached the library, "
              "mean delay %.1f h\n",
              static_cast<unsigned long>(result.generated),
              100.0 * result.success_rate,
              result.avg_delay / dtn::trace::kHour);

  // -- 4. per-source-building statistics -------------------------------
  dtn::TablePrinter table({"source", "generated", "delivered", "rate"});
  std::vector<std::size_t> gen(trace.num_landmarks(), 0);
  std::vector<std::size_t> done(trace.num_landmarks(), 0);
  for (const auto& p : net.all_packets()) {
    ++gen[p.src];
    if (p.state == dtn::net::PacketState::kDelivered) ++done[p.src];
  }
  for (dtn::trace::LandmarkId l = 1; l < trace.num_landmarks(); ++l) {
    if (gen[l] == 0) continue;
    table.add_row("building " + std::to_string(l),
                  {static_cast<double>(gen[l]), static_cast<double>(done[l]),
                   static_cast<double>(done[l]) / static_cast<double>(gen[l])},
                  3);
  }
  table.print("per-building delivery to the library");
  return 0;
}
