// Wildlife monitoring — the paper's other motivating application (§I
// cites ZebraNet): digital collars on animals log sensor data; rangers
// collect it at a base station without any infrastructure network.
// Waterholes and feeding grounds are the natural landmarks (§IV-A.1:
// "places with water/food are frequently visited").
//
// The example builds a savanna map, generates collar mobility with the
// geographic generator (animals range around home waterholes), routes
// every logged packet to the ranger base with DTN-FLOW, and finally
// demonstrates querying a *specific collar* via node-addressed packets
// (§IV-E.4).
//
//   $ ./wildlife_monitoring [--seed N] [--days D]
#include <cstdio>

#include "core/dtn_flow_router.hpp"
#include "metrics/metrics.hpp"
#include "trace/contacts.hpp"
#include "trace/geo_generator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);

  // The savanna: a ranger base plus nine waterholes / feeding grounds
  // spread over ~20 km.
  dtn::trace::GeoTraceConfig cfg;
  cfg.landmark_positions = {
      {0.0, 0.0},          // 0: ranger base (collection sink)
      {4000.0, 2500.0},    {-3500.0, 4200.0}, {6500.0, -1500.0},
      {-5200.0, -2800.0},  {1500.0, 6800.0},  {-800.0, -6200.0},
      {8200.0, 3600.0},    {-7400.0, 900.0},  {2600.0, -4700.0},
  };
  cfg.num_nodes = 20;  // collared animals
  cfg.days = opts.get_double("days", 30.0);
  cfg.seed = opts.get_seed(12);
  cfg.speed_m_per_s = 0.9;        // ambling herds
  cfg.mean_stay_minutes = 180.0;  // long stays at water
  cfg.stay_sigma = 0.7;
  cfg.home_bias = 0.5;            // strong home-range fidelity
  // The base is visited occasionally (it has a salt lick); waterholes
  // draw the traffic.
  cfg.attraction = {0.6, 1.5, 1.2, 1.0, 1.0, 0.8, 0.8, 0.6, 0.6, 0.9};
  const auto trace = dtn::trace::generate_geo_trace(cfg);

  const auto contacts = dtn::trace::derive_contacts(trace);
  const auto cs = dtn::trace::analyze_contacts(trace, contacts);
  std::printf("savanna: %zu collars over %zu sites, %.0f days; "
              "%.1f herd contacts per collar-day\n",
              trace.num_nodes(), trace.num_landmarks(), cfg.days,
              cs.contacts_per_node_day);

  // Every site streams its sensor log to the ranger base (landmark 0).
  dtn::net::WorkloadConfig workload;
  workload.packets_per_landmark_per_day = 12.0;
  workload.ttl = 10.0 * dtn::trace::kDay;
  workload.node_memory_kb = 100;
  workload.time_unit = 1.0 * dtn::trace::kDay;
  workload.seed = opts.get_seed(12) * 3 + 1;
  workload.destination_weights.assign(trace.num_landmarks(), 0.0);
  workload.destination_weights[0] = 1.0;

  dtn::core::DtnFlowRouter router;
  dtn::net::Network net(trace, router, workload);
  net.run();
  const auto r = dtn::metrics::summarize(net, router.name());
  std::printf("collection: %lu packets logged, %.1f%% reached the base, "
              "mean latency %.1f h over %.1f hops\n",
              static_cast<unsigned long>(r.generated),
              100.0 * r.success_rate, r.avg_delay / dtn::trace::kHour,
              r.mean_hops);

  // Query a specific collar (§IV-E.4): the base wants a full dump from
  // collar 7.  Find where that animal can be reached and send the
  // command packet there, addressed to the node.
  {
    const auto home =
        dtn::core::DtnFlowRouter::frequent_landmarks(net, 7, 2);
    std::printf("collar 7 ranges around site(s):");
    for (const auto l : home) std::printf(" %u", l);
    std::printf("\n");

    dtn::core::DtnFlowRouter router2;
    auto query = workload;
    query.packets_per_landmark_per_day = 0.0;
    query.destination_weights.clear();
    dtn::net::WorkloadConfig::ManualPacket mp;
    mp.src = 0;                       // from the base
    mp.dst = home.empty() ? 1 : home[0];
    mp.dst_node = 7;                  // ... to the collar itself
    mp.time = trace.begin_time() + 0.3 * trace.duration();
    query.manual_packets = {mp};
    dtn::net::Network qnet(trace, router2, query);
    qnet.run();
    if (qnet.counters().delivered == 1) {
      const auto& p = qnet.packet(0);
      std::printf("query delivered to collar 7 after %.1f h (%u hops)\n",
                  (p.delivered_at - p.created) / dtn::trace::kHour, p.hops);
    } else {
      std::printf("query still in flight at trace end\n");
    }
  }
  return 0;
}
