// Trace explorer: the trace-analysis side of the library as a CLI.
//
// Generates (or loads) a trace, prints its Table-I characteristics, the
// most popular landmarks, the strongest transit links and per-node
// order-k predictability — the §III-B analyses a deployment planner
// runs before placing landmarks.  Round-trips the trace through the CSV
// format on the way to demonstrate trace I/O.
//
//   $ ./trace_explorer [--input trace.csv] [--kind campus|bus]
//                      [--seed N] [--save out.csv]
#include <cstdio>

#include "core/markov_predictor.hpp"
#include "trace/bus_generator.hpp"
#include "trace/campus_generator.hpp"
#include "trace/contacts.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_stats.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);

  dtn::trace::Trace trace;
  const std::string input = opts.get("input", "");
  if (!input.empty()) {
    trace = dtn::trace::read_trace_csv(input);
    std::printf("loaded %s\n", input.c_str());
  } else if (opts.get("kind", "campus") == "bus") {
    dtn::trace::BusTraceConfig cfg;
    cfg.seed = opts.get_seed(2);
    trace = dtn::trace::generate_bus_trace(cfg);
  } else {
    dtn::trace::CampusTraceConfig cfg;
    cfg.num_nodes = 64;
    cfg.num_landmarks = 24;
    cfg.days = 28.0;
    cfg.seed = opts.get_seed(1);
    trace = dtn::trace::generate_campus_trace(cfg);
  }

  const std::string save = opts.get("save", "");
  if (!save.empty()) {
    dtn::trace::write_trace_csv(trace, save);
    std::printf("saved to %s\n", save.c_str());
  }

  const auto c = dtn::trace::characterize(trace);
  std::printf("nodes %zu | landmarks %zu | visits %zu | transits %zu | "
              "%.1f days | mean visit %.1f min | %.1f transits/node/day\n",
              c.num_nodes, c.num_landmarks, c.num_visits, c.num_transits,
              c.duration_days, c.mean_visit_minutes,
              c.mean_transits_per_node_day);

  dtn::TablePrinter popular({"landmark", "total visits"});
  const auto order = dtn::trace::landmarks_by_popularity(trace);
  const auto counts = dtn::trace::visit_count_matrix(trace);
  for (std::size_t k = 0; k < 5 && k < order.size(); ++k) {
    double total = 0.0;
    for (dtn::trace::NodeId n = 0; n < trace.num_nodes(); ++n) {
      total += counts.at(n, order[k]);
    }
    popular.add_row("L" + std::to_string(order[k]), {total}, 6);
  }
  popular.print("most visited landmarks");

  dtn::TablePrinter links({"from", "to", "bandwidth/day"});
  const auto bw = dtn::trace::link_bandwidths(trace, dtn::trace::kDay);
  for (std::size_t k = 0; k < 8 && k < bw.size(); ++k) {
    links.add_row("L" + std::to_string(bw[k].from),
                  {static_cast<double>(bw[k].to), bw[k].bandwidth}, 4);
  }
  links.print("strongest transit links");
  std::printf("matching-link symmetry r = %.3f\n",
              dtn::trace::matching_link_symmetry(trace));

  // Contact structure: how often do carriers actually meet?
  {
    const auto contacts = dtn::trace::derive_contacts(trace);
    const auto cs = dtn::trace::analyze_contacts(trace, contacts);
    std::printf("\ncontacts: %zu total between %zu node pairs | "
                "%.1f per node-day | mean duration %.1f min | "
                "mean inter-contact %.1f h\n",
                cs.contacts, cs.pairs_met, cs.contacts_per_node_day,
                cs.mean_duration / dtn::trace::kMinute,
                cs.mean_intercontact / dtn::trace::kHour);
  }

  dtn::TablePrinter pred({"order", "mean accuracy", "rated nodes"});
  for (const std::size_t order_k : {1u, 2u, 3u}) {
    dtn::RunningStats acc;
    for (dtn::trace::NodeId n = 0; n < trace.num_nodes(); ++n) {
      const auto seq = dtn::core::visiting_sequence(trace.visits(n));
      const auto score =
          dtn::core::score_sequence(trace.num_landmarks(), order_k, seq);
      if (score.predictions >= 20) acc.add(score.accuracy());
    }
    pred.add_row("k=" + std::to_string(order_k),
                 {acc.mean(), static_cast<double>(acc.count())}, 3);
  }
  pred.print("order-k Markov predictability");
  return 0;
}
