// Stress/property tests of the discrete-event core: random schedules
// replay in exact non-decreasing time order with FIFO tie-breaks, and
// nested scheduling during execution stays consistent.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace dtn::sim {
namespace {

class EventQueueStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueStressTest, RandomScheduleReplaysInOrder) {
  Rng rng(GetParam());
  EventQueue q;
  struct Fired {
    double time;
    std::uint32_t id;
  };
  std::vector<Fired> fired;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    // Coarse time grid to force plenty of ties.
    Event ev;
    ev.time = static_cast<double>(rng.uniform_index(200));
    ev.kind = EventKind::kArrival;
    ev.a = i;
    q.schedule(ev);
  }
  while (!q.empty()) {
    const Event ev = q.pop();
    fired.push_back({ev.time, ev.a});
  }
  ASSERT_EQ(fired.size(), 2000u);
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1].time, fired[i].time);
    if (fired[i - 1].time == fired[i].time) {
      // FIFO among ties: insertion ids increase.
      ASSERT_LT(fired[i - 1].id, fired[i].id);
    }
  }
}

TEST_P(EventQueueStressTest, NestedSchedulingKeepsOrder) {
  Rng rng(GetParam() ^ 0xbeef);
  Simulator sim;
  std::vector<double> fired;
  // Seed events that spawn follow-ups at random future offsets.
  std::function<void(int)> spawn = [&](int depth) {
    fired.push_back(sim.now());
    if (depth < 3) {
      const double delay = 1.0 + static_cast<double>(rng.uniform_index(50));
      sim.after(delay, [&, depth] { spawn(depth + 1); });
    }
  };
  for (int i = 0; i < 200; ++i) {
    sim.at(static_cast<double>(rng.uniform_index(100)), [&] { spawn(0); });
  }
  sim.run();
  for (std::size_t i = 1; i < fired.size(); ++i) {
    ASSERT_LE(fired[i - 1], fired[i]);
  }
  EXPECT_EQ(fired.size(), 200u * 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueStressTest,
                         ::testing::Values(1ull, 9ull, 77ull));

}  // namespace
}  // namespace dtn::sim
