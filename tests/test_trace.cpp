#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace dtn::trace {
namespace {

Trace small_trace() {
  Trace t(2, 3);
  // Node 0: L0 -> L1 -> L0
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({0, 1, 20.0, 30.0});
  t.add_visit({0, 0, 40.0, 50.0});
  // Node 1: L2 only, twice (re-visit, not a transit)
  t.add_visit({1, 2, 5.0, 15.0});
  t.add_visit({1, 2, 25.0, 60.0});
  t.finalize();
  return t;
}

TEST(Trace, BasicCounts) {
  const Trace t = small_trace();
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_landmarks(), 3u);
  EXPECT_EQ(t.total_visits(), 5u);
}

TEST(Trace, TimeBounds) {
  const Trace t = small_trace();
  EXPECT_DOUBLE_EQ(t.begin_time(), 0.0);
  EXPECT_DOUBLE_EQ(t.end_time(), 60.0);
  EXPECT_DOUBLE_EQ(t.duration(), 60.0);
}

TEST(Trace, VisitsSortedPerNode) {
  Trace t(1, 2);
  t.add_visit({0, 1, 50.0, 60.0});
  t.add_visit({0, 0, 0.0, 10.0});
  t.finalize();
  const auto visits = t.visits(0);
  ASSERT_EQ(visits.size(), 2u);
  EXPECT_EQ(visits[0].landmark, 0u);
  EXPECT_EQ(visits[1].landmark, 1u);
}

TEST(Trace, TransitsSkipSameLandmark) {
  const Trace t = small_trace();
  const auto t0 = t.transits(0);
  ASSERT_EQ(t0.size(), 2u);
  EXPECT_EQ(t0[0].from, 0u);
  EXPECT_EQ(t0[0].to, 1u);
  EXPECT_DOUBLE_EQ(t0[0].depart, 10.0);
  EXPECT_DOUBLE_EQ(t0[0].arrive, 20.0);
  EXPECT_EQ(t0[1].from, 1u);
  EXPECT_EQ(t0[1].to, 0u);
  // Node 1 re-visits the same landmark: no transit.
  EXPECT_TRUE(t.transits(1).empty());
}

TEST(Trace, AllVisitsSortedGlobally) {
  const Trace t = small_trace();
  const auto all = t.all_visits_sorted();
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].start, all[i].start);
  }
}

TEST(Trace, AllTransitsSortedByArrival) {
  const Trace t = small_trace();
  const auto all = t.all_transits_sorted();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_LE(all[0].arrive, all[1].arrive);
}

TEST(Trace, WindowClipsVisits) {
  const Trace t = small_trace();
  const Trace w = t.window(5.0, 25.0);
  EXPECT_EQ(w.num_nodes(), 2u);
  EXPECT_EQ(w.num_landmarks(), 3u);
  // Node 0: [0,10] clips to [5,10]; [20,30] clips to [20,25]; [40,50] out.
  const auto v0 = w.visits(0);
  ASSERT_EQ(v0.size(), 2u);
  EXPECT_DOUBLE_EQ(v0[0].start, 5.0);
  EXPECT_DOUBLE_EQ(v0[0].end, 10.0);
  EXPECT_DOUBLE_EQ(v0[1].start, 20.0);
  EXPECT_DOUBLE_EQ(v0[1].end, 25.0);
}

TEST(Trace, WindowDropsNonOverlapping) {
  const Trace t = small_trace();
  const Trace w = t.window(100.0, 200.0);
  EXPECT_EQ(w.total_visits(), 0u);
  EXPECT_DOUBLE_EQ(w.begin_time(), 0.0);  // empty trace convention
}

TEST(Trace, EmptyTrace) {
  Trace t(3, 3);
  t.finalize();
  EXPECT_EQ(t.total_visits(), 0u);
  EXPECT_DOUBLE_EQ(t.duration(), 0.0);
  EXPECT_TRUE(t.all_visits_sorted().empty());
}

TEST(TraceDeath, OverlappingVisitsRejected) {
  Trace t(1, 2);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({0, 1, 5.0, 15.0});
  EXPECT_DEATH(t.finalize(), "DTN_ASSERT");
}

TEST(TraceDeath, ZeroLengthVisitRejected) {
  Trace t(1, 1);
  EXPECT_DEATH(t.add_visit({0, 0, 5.0, 5.0}), "DTN_ASSERT");
}

TEST(TraceDeath, OutOfRangeIdsRejected) {
  Trace t(1, 1);
  EXPECT_DEATH(t.add_visit({1, 0, 0.0, 1.0}), "DTN_ASSERT");
  EXPECT_DEATH(t.add_visit({0, 1, 0.0, 1.0}), "DTN_ASSERT");
}

TEST(TraceDeath, ReadBeforeFinalizeRejected) {
  Trace t(1, 1);
  t.add_visit({0, 0, 0.0, 1.0});
  EXPECT_DEATH((void)t.visits(0), "DTN_ASSERT");
}

}  // namespace
}  // namespace dtn::trace
