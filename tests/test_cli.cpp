#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace dtn {
namespace {

CliOptions parse(std::vector<const char*> args,
                 const std::vector<std::string>& flags = {}) {
  args.insert(args.begin(), "prog");
  return CliOptions(static_cast<int>(args.size()), args.data(), flags);
}

TEST(CliOptions, KeyValuePairs) {
  const auto opts = parse({"--rate", "500", "--name", "dart"});
  EXPECT_EQ(opts.get_int("rate", 0), 500);
  EXPECT_EQ(opts.get("name", ""), "dart");
}

TEST(CliOptions, EqualsSyntax) {
  const auto opts = parse({"--rate=250"});
  EXPECT_EQ(opts.get_int("rate", 0), 250);
}

TEST(CliOptions, Flags) {
  const auto opts = parse({"--verbose"}, {"verbose"});
  EXPECT_TRUE(opts.has("verbose"));
}

TEST(CliOptions, Fallbacks) {
  const auto opts = parse({});
  EXPECT_EQ(opts.get("missing", "fallback"), "fallback");
  EXPECT_EQ(opts.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(opts.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(opts.get_seed(42), 42u);
}

TEST(CliOptions, SeedParsed) {
  const auto opts = parse({"--seed", "123"});
  EXPECT_EQ(opts.get_seed(0), 123u);
}

TEST(CliOptions, ScaleDefaultsQuick) {
  EXPECT_FALSE(parse({}).full_scale());
  EXPECT_TRUE(parse({"--scale", "full"}).full_scale());
}

TEST(CliOptions, CsvDir) {
  EXPECT_EQ(parse({}).csv_dir(), "");
  EXPECT_EQ(parse({"--csv", "/tmp/out"}).csv_dir(), "/tmp/out");
}

TEST(CliOptions, DoubleParsing) {
  const auto opts = parse({"--beta", "0.75"});
  EXPECT_DOUBLE_EQ(opts.get_double("beta", 0.0), 0.75);
}

}  // namespace
}  // namespace dtn
