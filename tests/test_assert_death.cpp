// DTN_ASSERT is the library's always-on contract check (it fires in
// release builds too).  These death tests pin its contract: a false
// condition prints the condition text with its location and aborts; a
// true condition is a no-op; the macro expands to a single statement
// usable in un-braced if/else branches.
#include "util/assert.hpp"

#include <gtest/gtest.h>

namespace dtn {
namespace {

TEST(DtnAssertDeathTest, FalseConditionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DTN_ASSERT(1 + 1 == 3), "DTN_ASSERT failed: 1 \\+ 1 == 3");
}

TEST(DtnAssertDeathTest, MessageNamesFileAndLine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DTN_ASSERT(false), "test_assert_death\\.cpp:[0-9]+");
}

TEST(DtnAssertDeathTest, SideEffectsInConditionRunOnce) {
  int evaluations = 0;
  DTN_ASSERT(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(DtnAssert, TrueConditionIsNoOp) {
  DTN_ASSERT(true);
  DTN_ASSERT(2 > 1);
  SUCCEED();
}

TEST(DtnAssert, ExpandsToSingleStatement) {
  // Regression guard for the classic dangling-else macro bug: the
  // do/while wrapper must let the macro sit in an un-braced branch.
  if (true)
    DTN_ASSERT(true);
  else
    DTN_ASSERT(false);
  SUCCEED();
}

}  // namespace
}  // namespace dtn
