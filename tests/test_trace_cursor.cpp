// TraceCursor: the lazy k-way merge must emit exactly the event stream
// the retired eager enumeration produced — same times, same kinds, and
// the same node-major sequence numbers (tie order at equal timestamps).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulator.hpp"
#include "trace/cursor.hpp"
#include "trace/trace.hpp"

namespace dtn::trace {
namespace {

struct Expected {
  double time;
  std::uint64_t seq;
  sim::EventKind kind;
  NodeId node;
  std::uint32_t visit;
};

// Reference enumeration: what the old engine scheduled upfront.  Seqs
// are node-major (node 0: visit 0 arrival, visit 0 departure, visit 1
// arrival, ...), then the stream is sorted by (time, seq).
std::vector<Expected> reference_stream(const Trace& t) {
  std::vector<Expected> out;
  std::uint64_t seq = 0;
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    const auto visits = t.visits(n);
    for (std::uint32_t v = 0; v < visits.size(); ++v) {
      out.push_back({visits[v].start, seq++, sim::EventKind::kArrival, n, v});
      out.push_back({visits[v].end, seq++, sim::EventKind::kDeparture, n, v});
    }
  }
  std::sort(out.begin(), out.end(), [](const Expected& a, const Expected& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  return out;
}

std::vector<Expected> drain(TraceCursor& cursor) {
  std::vector<Expected> out;
  while (!cursor.exhausted()) {
    const sim::Event& ev = cursor.peek();
    out.push_back({ev.time, ev.seq, ev.kind, static_cast<NodeId>(ev.a), ev.b});
    cursor.advance();
  }
  return out;
}

void expect_matches_reference(const Trace& t) {
  TraceCursor cursor(t);
  const auto expected = reference_stream(t);
  EXPECT_EQ(cursor.total_events(), expected.size());
  const auto got = drain(cursor);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time, expected[i].time) << "event " << i;
    EXPECT_EQ(got[i].seq, expected[i].seq) << "event " << i;
    EXPECT_EQ(got[i].kind, expected[i].kind) << "event " << i;
    EXPECT_EQ(got[i].node, expected[i].node) << "event " << i;
    EXPECT_EQ(got[i].visit, expected[i].visit) << "event " << i;
  }
}

TEST(TraceCursor, EmptyTraceIsExhaustedImmediately) {
  Trace t(4, 2);
  t.finalize();
  TraceCursor cursor(t);
  EXPECT_TRUE(cursor.exhausted());
  EXPECT_EQ(cursor.total_events(), 0u);
  cursor.reset();  // reset on an empty cursor is a no-op, not a crash
  EXPECT_TRUE(cursor.exhausted());
}

TEST(TraceCursor, SingleVisitSingleNode) {
  Trace t(1, 2);
  t.add_visit({0, 1, 10.0, 25.0});
  t.finalize();
  TraceCursor cursor(t);
  EXPECT_EQ(cursor.total_events(), 2u);
  const auto got = drain(cursor);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].kind, sim::EventKind::kArrival);
  EXPECT_EQ(got[0].time, 10.0);
  EXPECT_EQ(got[0].seq, 0u);
  EXPECT_EQ(got[1].kind, sim::EventKind::kDeparture);
  EXPECT_EQ(got[1].time, 25.0);
  EXPECT_EQ(got[1].seq, 1u);
}

TEST(TraceCursor, NodesWithoutVisitsAreSkipped) {
  // Nodes 0 and 3 never appear; seq bases must still be node-major.
  Trace t(4, 2);
  t.add_visit({1, 0, 5.0, 6.0});
  t.add_visit({2, 1, 1.0, 2.0});
  t.finalize();
  expect_matches_reference(t);
}

TEST(TraceCursor, SimultaneousArrivalsBreakTiesByNodeOrder) {
  // All four nodes arrive and depart at identical instants at the same
  // landmark.  Ties must resolve in node-major seq order — the order
  // routers observed under the old engine.
  Trace t(4, 1);
  for (NodeId n = 0; n < 4; ++n) {
    t.add_visit({n, 0, 100.0, 200.0});
    t.add_visit({n, 0, 300.0, 400.0});
  }
  t.finalize();
  expect_matches_reference(t);

  TraceCursor cursor(t);
  // First four events: arrivals of nodes 0..3 in that exact order.
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_FALSE(cursor.exhausted());
    EXPECT_EQ(cursor.peek().kind, sim::EventKind::kArrival);
    EXPECT_EQ(cursor.peek().a, n);
    cursor.advance();
  }
}

TEST(TraceCursor, InterleavedVisitsMatchEagerEnumeration) {
  // Irregular interleaving incl. zero-gap (depart == next arrive) and
  // cross-node ties.
  Trace t(3, 3);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({0, 1, 10.0, 20.0});  // arrives exactly when it departed
  t.add_visit({0, 2, 30.0, 35.0});
  t.add_visit({1, 1, 5.0, 10.0});   // departs as node 0 switches
  t.add_visit({1, 2, 12.0, 30.0});
  t.add_visit({2, 0, 5.0, 35.0});   // long visit spanning everything
  t.finalize();
  expect_matches_reference(t);
}

TEST(TraceCursor, ResetReplaysIdenticalStream) {
  Trace t(3, 2);
  t.add_visit({0, 0, 1.0, 4.0});
  t.add_visit({1, 1, 2.0, 3.0});
  t.add_visit({2, 0, 2.0, 5.0});
  t.finalize();
  TraceCursor cursor(t);
  const auto first = drain(cursor);
  cursor.reset();
  const auto second = drain(cursor);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seq, second[i].seq);
    EXPECT_EQ(first[i].time, second[i].time);
  }
}

TEST(TraceCursor, RunUntilBoundaryIsInclusive) {
  // Visits landing exactly on the run_until deadline: the arrival at
  // t == end runs, the departure after it stays pending.
  Trace t(2, 2);
  t.add_visit({0, 0, 10.0, 20.0});
  t.add_visit({1, 1, 20.0, 30.0});  // arrival exactly at the deadline
  t.finalize();
  TraceCursor cursor(t);

  sim::Simulator sim;
  std::vector<std::pair<sim::EventKind, std::uint32_t>> seen;
  sim.set_dispatcher(
      [](void* ctx, const sim::Event& ev) {
        static_cast<std::vector<std::pair<sim::EventKind, std::uint32_t>>*>(
            ctx)
            ->push_back({ev.kind, ev.a});
      },
      &seen);
  sim.set_seq_floor(cursor.total_events());
  sim.run_until(20.0, &cursor);

  // Arrival(0)@10, departure(0)@20, arrival(1)@20 all run (inclusive);
  // departure(1)@30 must still be pending in the cursor.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair{sim::EventKind::kArrival, 0u}));
  EXPECT_EQ(seen[1], (std::pair{sim::EventKind::kDeparture, 0u}));
  EXPECT_EQ(seen[2], (std::pair{sim::EventKind::kArrival, 1u}));
  EXPECT_FALSE(cursor.exhausted());
  EXPECT_EQ(cursor.peek().time, 30.0);
  EXPECT_DOUBLE_EQ(sim.now(), 20.0);

  sim.run_until(30.0, &cursor);
  EXPECT_TRUE(cursor.exhausted());
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[3], (std::pair{sim::EventKind::kDeparture, 1u}));
}

TEST(TraceCursor, LargeRandomTraceMatchesEagerEnumeration) {
  // Property check at a size where merge-heap bugs would surface.
  Trace t(17, 5);
  std::uint64_t state = 0x243f6a8885a308d3ull;  // fixed xorshift stream
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (NodeId n = 0; n < 17; ++n) {
    double at = static_cast<double>(next() % 50);
    const int visits = 1 + static_cast<int>(next() % 60);
    for (int v = 0; v < visits; ++v) {
      // Coarse grid to force many cross-node ties.
      const double start = at + static_cast<double>(next() % 8);
      const double end = start + 1.0 + static_cast<double>(next() % 6);
      t.add_visit({n, static_cast<LandmarkId>(next() % 5), start, end});
      at = end + static_cast<double>(next() % 4);
    }
  }
  t.finalize();
  expect_matches_reference(t);
}

}  // namespace
}  // namespace dtn::trace
