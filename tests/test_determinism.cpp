// Determinism guards for the replay engine.
//
// Three layers: (1) repeated runs with one seed are bit-identical,
// (2) a serial sweep (threads == 1) and a multi-threaded sweep produce
// bit-identical results, and (3) a fixed no-RNG scenario matches golden
// counters recorded under the *previous* (type-erased closure) event
// engine — any engine rework that shifts tie order, RNG draw order or
// float accumulation order trips this test.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/dtn_flow_router.hpp"
#include "metrics/experiment.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "sim/fault_injector.hpp"
#include "trace/trace.hpp"

namespace dtn {
namespace {

// Three relay nodes shuttling between home landmark n and n+1 every two
// hours: a fully deterministic topology (no trace RNG).
trace::Trace relay_chain(double days) {
  constexpr std::uint32_t kNodes = 3;
  trace::Trace t(kNodes, kNodes + 1);
  const auto periods =
      static_cast<std::size_t>(days * trace::kDay / (2.0 * trace::kHour));
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (std::size_t p = 0; p < periods; ++p) {
      const double base = static_cast<double>(p) * 2.0 * trace::kHour;
      t.add_visit({n, n, base, base + 30.0 * trace::kMinute});
      t.add_visit({n, n + 1, base + 60.0 * trace::kMinute,
                   base + 90.0 * trace::kMinute});
    }
  }
  t.finalize();
  return t;
}

// Manual-packet workload over the chain: no Poisson generation, so the
// whole run is RNG-free and the counters below are exact by design, not
// merely reproducible.
net::WorkloadConfig chain_workload() {
  net::WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * trace::kDay;
  cfg.node_memory_kb = 10;
  cfg.ttl = 2.0 * trace::kDay;
  for (int i = 0; i < 40; ++i) {
    cfg.manual_packets.push_back(
        {0, 3, 4.0 * trace::kDay + i * 10.0 * trace::kMinute, 0.0});
  }
  return cfg;
}

net::RunCounters run_chain(const std::string& router_name) {
  const auto chain = relay_chain(10.0);
  auto router = routing::make_router(router_name);
  net::Network net(chain, *router, chain_workload());
  net.run();
  net.validate_invariants();
  return net.counters();
}

// Order-sensitive FNV-1a digest over the per-packet vectors, matching
// the probe that recorded the golden values.
std::uint64_t digest(const net::RunCounters& c) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (double d : c.delivery_delays) mix(std::bit_cast<std::uint64_t>(d));
  for (std::uint32_t x : c.delivery_hops) mix(x);
  return h;
}

// Digest of the router's prediction state after the chain replay:
// per-node predictor counters, the full conditional distribution, and
// the argmax.  Recorded under the hash-map (context/gram/successor)
// predictor store; the flat transition store must reproduce every bit.
std::uint64_t predictor_digest(const core::DtnFlowRouter& router,
                               const net::Network& net) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (net::NodeId n = 0; n < net.num_nodes(); ++n) {
    const auto& p = router.predictor(n);
    mix(p.history_length());
    mix(p.current());
    mix(p.predict());
    mix(p.can_predict() ? 1 : 0);
    for (net::LandmarkId l = 0; l < net.num_landmarks(); ++l) {
      mix(std::bit_cast<std::uint64_t>(p.probability_of(l)));
    }
    for (const double d : p.next_distribution()) {
      mix(std::bit_cast<std::uint64_t>(d));
    }
  }
  return h;
}

// Digest of every landmark's route set, backups and pins included.
// Recorded under the full-table lazy recompute; the incremental
// dirty-column recompute must reproduce every bit.
std::uint64_t routing_digest(const core::DtnFlowRouter& router,
                             const net::Network& net) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (net::LandmarkId l = 0; l < net.num_landmarks(); ++l) {
    const auto& table = router.routing_table(l);
    for (net::LandmarkId d = 0; d < net.num_landmarks(); ++d) {
      const core::Route r = table.route(d);
      mix(r.next);
      mix(std::bit_cast<std::uint64_t>(r.delay));
      mix(r.backup_next);
      mix(std::bit_cast<std::uint64_t>(r.backup_delay));
      mix(table.is_pinned(d) ? 1 : 0);
    }
    mix(std::bit_cast<std::uint64_t>(table.coverage()));
  }
  return h;
}

TEST(Determinism, GoldenPredictorAndRoutingStateStable) {
  const auto chain = relay_chain(10.0);
  core::DtnFlowRouter router;
  net::Network net(chain, router, chain_workload());
  net.run();
  net.validate_invariants();
  // Spot checks (readable failures before the digests trip).
  EXPECT_EQ(router.predictor(0).history_length(), 240u);
  EXPECT_EQ(router.predictor(0).current(), 1u);
  EXPECT_EQ(router.predictor(0).predict(), 0u);
  EXPECT_EQ(router.routing_table(0).route(3).next, 1u);
  // Full-state digests, recorded under the pre-rework structures.
  EXPECT_EQ(predictor_digest(router, net), 0x8f5ef46e87227297ull);
  EXPECT_EQ(routing_digest(router, net), 0x2bce8bffc466e3ccull);
}

TEST(Determinism, RepeatedRunsAreBitIdentical) {
  const auto a = run_chain("DTN-FLOW");
  const auto b = run_chain("DTN-FLOW");
  EXPECT_EQ(a, b);  // defaulted operator==: every field, vectors included
}

// The fault injector's zero-impact contract: attaching a FaultPlan with
// nothing to inject (no scheduled faults, every rate and probability at
// zero) is bit-identical to attaching no plan at all — same counters,
// same per-packet digests, same golden router-state digests.  The
// injector owns its own RNG streams precisely so that an inert plan
// never perturbs a workload draw.
TEST(Determinism, EmptyFaultPlanIsBitIdenticalToNoPlan) {
  const auto chain = relay_chain(10.0);

  core::DtnFlowRouter baseline_router;
  net::Network baseline(chain, baseline_router, chain_workload());
  baseline.run();
  baseline.validate_invariants();

  auto faulted_cfg = chain_workload();
  faulted_cfg.faults.emplace();  // default plan: zero-probability faults
  ASSERT_FALSE(faulted_cfg.faults->any());
  core::DtnFlowRouter faulted_router;
  net::Network faulted(chain, faulted_router, faulted_cfg);
  faulted.run();
  faulted.validate_invariants();

  EXPECT_EQ(baseline.counters(), faulted.counters());
  EXPECT_EQ(digest(baseline.counters()), digest(faulted.counters()));
  // The faulted run must still hit the pre-fault-subsystem golden
  // digests (the same values GoldenPredictorAndRoutingStateStable pins).
  EXPECT_EQ(predictor_digest(faulted_router, faulted),
            0x8f5ef46e87227297ull);
  EXPECT_EQ(routing_digest(faulted_router, faulted), 0x2bce8bffc466e3ccull);
  EXPECT_EQ(digest(faulted.counters()), 0x02c0425471db77c3ull);
  // No fault ever fired, and nothing was charged to the fault counters.
  EXPECT_EQ(faulted.counters().node_crashes, 0u);
  EXPECT_EQ(faulted.counters().station_outages, 0u);
  EXPECT_EQ(faulted.counters().packets_lost_fault, 0u);
  EXPECT_EQ(faulted.counters().transfers_interrupted, 0u);
}

TEST(Determinism, GoldenCountersStableAcrossEngineGenerations) {
  // Recorded under the pre-rework engine (type-erased std::function
  // heap, eager trace scheduling).  The typed-event engine must
  // reproduce every bit: tie order, float accumulation order, digests.
  const auto flow = run_chain("DTN-FLOW");
  EXPECT_EQ(flow.generated, 40u);
  EXPECT_EQ(flow.delivered, 40u);
  EXPECT_EQ(flow.dropped_ttl, 0u);
  EXPECT_EQ(flow.refused_buffer, 0u);
  EXPECT_EQ(flow.packet_forwards, 240u);
  EXPECT_EQ(flow.replications, 0u);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(flow.control_entries),
            std::bit_cast<std::uint64_t>(0x1.674p+12));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(flow.total_delay),
            std::bit_cast<std::uint64_t>(0x1.b06cp+19));
  EXPECT_EQ(flow.delivery_delays.size(), 40u);
  EXPECT_EQ(flow.delivery_hops.size(), 40u);
  EXPECT_EQ(digest(flow), 0x02c0425471db77c3ull);

  const auto prophet = run_chain("PROPHET");
  EXPECT_EQ(prophet.generated, 40u);
  EXPECT_EQ(prophet.delivered, 0u);
  EXPECT_EQ(prophet.dropped_ttl, 40u);
  EXPECT_EQ(prophet.packet_forwards, 10u);
  EXPECT_EQ(digest(prophet), 0x14650fb0739d0383ull);  // empty-vector basis
}

TEST(Determinism, SerialAndThreadedSweepsAreBitIdentical) {
  const auto chain = relay_chain(10.0);
  net::WorkloadConfig base = chain_workload();
  // Add a Poisson component so replicate seeds actually matter.
  base.packets_per_landmark_per_day = 6.0;
  base.seed = 19;

  std::vector<std::pair<std::string, metrics::RouterFactory>> factories;
  for (const auto& name : {"DTN-FLOW", "PROPHET"}) {
    factories.emplace_back(name,
                           [name] { return routing::make_router(name); });
  }

  metrics::SweepConfig sweep;
  sweep.values = {10.0, 40.0};
  sweep.apply = [](net::WorkloadConfig& cfg, double v) {
    cfg.node_memory_kb = static_cast<std::uint64_t>(v);
  };
  sweep.replicates = 3;

  sweep.threads = 1;
  const auto serial = metrics::run_sweep(chain, base, factories, sweep);
  sweep.threads = 4;
  const auto threaded = metrics::run_sweep(chain, base, factories, sweep);

  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& s = serial[i];
    const auto& t = threaded[i];
    EXPECT_EQ(s.router, t.router);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(s.sweep_value),
              std::bit_cast<std::uint64_t>(t.sweep_value));
    ASSERT_EQ(s.replicates.size(), t.replicates.size());
    for (std::size_t r = 0; r < s.replicates.size(); ++r) {
      const auto& sr = s.replicates[r];
      const auto& tr = t.replicates[r];
      EXPECT_EQ(sr.generated, tr.generated);
      EXPECT_EQ(sr.delivered, tr.delivered);
      EXPECT_EQ(sr.dropped_ttl, tr.dropped_ttl);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sr.success_rate),
                std::bit_cast<std::uint64_t>(tr.success_rate));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sr.avg_delay),
                std::bit_cast<std::uint64_t>(tr.avg_delay));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sr.overall_delay),
                std::bit_cast<std::uint64_t>(tr.overall_delay));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sr.forwarding_cost),
                std::bit_cast<std::uint64_t>(tr.forwarding_cost));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(sr.total_cost),
                std::bit_cast<std::uint64_t>(tr.total_cost));
      ASSERT_EQ(sr.delivery_delays.size(), tr.delivery_delays.size());
      for (std::size_t d = 0; d < sr.delivery_delays.size(); ++d) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(sr.delivery_delays[d]),
                  std::bit_cast<std::uint64_t>(tr.delivery_delays[d]));
      }
    }
  }
}

}  // namespace
}  // namespace dtn
