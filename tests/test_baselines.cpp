#include <gtest/gtest.h>

#include <cmath>

#include "net/network.hpp"
#include "routing/direct.hpp"
#include "routing/factory.hpp"
#include "routing/geocomm.hpp"
#include "routing/pgr.hpp"
#include "routing/prophet.hpp"
#include "routing/per.hpp"
#include "routing/simbet.hpp"
#include "test_helpers.hpp"

namespace dtn::routing {
namespace {

using dtn::testing::relay_chain_trace;
using net::Network;
using net::WorkloadConfig;
using trace::kDay;
using trace::kHour;
using trace::kMinute;

WorkloadConfig quiet() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 2.0 * kDay;
  return cfg;
}

// Two nodes meeting at a hub: node 0 shuttles L0<->L1, node 1 shuttles
// L1<->L2, overlapping at L1 so node-to-node forwarding is possible.
trace::Trace meeting_trace(double days) {
  trace::Trace t(2, 3);
  const double period = 2.0 * kHour;
  const auto periods = static_cast<std::size_t>(days * kDay / period);
  for (std::size_t p = 0; p < periods; ++p) {
    const double base = static_cast<double>(p) * period;
    t.add_visit({0, 0, base, base + 30.0 * kMinute});
    t.add_visit({0, 1, base + 60.0 * kMinute, base + 90.0 * kMinute});
    t.add_visit({1, 1, base + 70.0 * kMinute, base + 100.0 * kMinute});
    t.add_visit({1, 2, base + 110.0 * kMinute, base + 118.0 * kMinute});
  }
  t.finalize();
  return t;
}

TEST(ProphetRouter, ReinforcementAndAging) {
  const auto trace = meeting_trace(4.0);
  ProphetRouter router;
  Network net(trace, router, quiet());
  net.run();
  // Node 0 visits L0 and L1 often, never L2.
  EXPECT_GT(router.predictability(net, 0, 0), 0.3);
  EXPECT_GT(router.predictability(net, 0, 1), 0.3);
  EXPECT_DOUBLE_EQ(router.predictability(net, 0, 2), 0.0);
  // Node 1 beats node 0 for L2.
  EXPECT_GT(router.predictability(net, 1, 2),
            router.predictability(net, 0, 2));
}

TEST(ProphetRouter, DeliversViaNodeRelay) {
  const auto trace = meeting_trace(8.0);
  ProphetRouter router;
  auto cfg = quiet();
  // Packet from L0 to L2: node 0 picks it up, hands it to node 1 at the
  // L1 hub (node 1's predictability for L2 is higher), node 1 delivers.
  cfg.manual_packets = {{0, 2, 4.0 * kDay + 5.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(ProphetRouter, CannotDeliverWithoutContacts) {
  // The relay-chain trace has no node-node contacts: PROPHET is stuck.
  const auto trace = relay_chain_trace(8.0);
  ProphetRouter router;
  auto cfg = quiet();
  cfg.manual_packets = {{0, 3, 4.0 * kDay, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 0u);
}

TEST(ProphetRouter, AgingDecaysPredictability) {
  ProphetConfig pc;
  pc.gamma = 0.5;
  pc.aging_unit = kHour;
  ProphetRouter router(pc);
  // One visit then a long gap: predictability should decay toward 0.
  trace::Trace t(1, 2);
  t.add_visit({0, 0, 0.0, kMinute});
  t.add_visit({0, 1, 10.0 * kHour, 10.0 * kHour + kMinute});
  t.finalize();
  Network net(t, router, quiet());
  net.run();
  // ~10.2 hours after touching L0: 0.75 * 0.5^10.2 ~ 6e-4.
  EXPECT_LT(router.predictability(net, 0, 0), 0.01);
  EXPECT_GT(router.predictability(net, 0, 1), 0.3);
}

TEST(SimBetRouter, SimilarityAndCentralityAccumulate) {
  const auto trace = meeting_trace(4.0);
  SimBetRouter router;
  Network net(trace, router, quiet());
  net.run();
  EXPECT_GT(router.similarity(0, 0), 0.0);
  EXPECT_GT(router.similarity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(router.similarity(0, 2), 0.0);
  // Node 0 transits 0->1 and 1->0: two distinct pairs; node 1 likewise.
  EXPECT_DOUBLE_EQ(router.centrality(0), 2.0);
  EXPECT_DOUBLE_EQ(router.centrality(1), 2.0);
}

TEST(SimBetRouter, DeliversViaNodeRelay) {
  const auto trace = meeting_trace(8.0);
  SimBetRouter router;
  auto cfg = quiet();
  cfg.manual_packets = {{0, 2, 4.0 * kDay + 5.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(PgrRouter, PredictedRouteFollowsHabit) {
  const auto trace = meeting_trace(4.0);
  PgrRouter router;
  Network net(trace, router, quiet());
  net.run();
  // Node 1 ends somewhere on its 1<->2 shuttle; its route alternates.
  const auto route = router.predicted_route(1);
  ASSERT_FALSE(route.empty());
  for (const auto l : route) {
    EXPECT_TRUE(l == 1u || l == 2u);
  }
}

TEST(PgrRouter, RouteIsCycleFreeAndBounded) {
  PgrConfig pc;
  pc.horizon = 4;
  const auto trace = meeting_trace(4.0);
  PgrRouter router(pc);
  Network net(trace, router, quiet());
  net.run();
  for (net::NodeId n = 0; n < 2; ++n) {
    const auto route = router.predicted_route(n);
    EXPECT_LE(route.size(), 4u);
    for (std::size_t i = 0; i < route.size(); ++i) {
      for (std::size_t j = i + 1; j < route.size(); ++j) {
        EXPECT_NE(route[i], route[j]);
      }
    }
  }
}

TEST(PgrRouter, DeliversWhenDestinationOnRoute) {
  const auto trace = meeting_trace(8.0);
  PgrRouter router;
  auto cfg = quiet();
  cfg.manual_packets = {{0, 2, 4.0 * kDay + 5.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(GeoCommRouter, ContactProbabilityPerUnit) {
  const auto trace = meeting_trace(4.0);
  GeoCommRouter router;
  Network net(trace, router, quiet());
  net.run();
  // Node 0 contacts L0 and L1 in every half-day unit.
  EXPECT_GT(router.contact_probability(net, 0, 0), 0.8);
  EXPECT_GT(router.contact_probability(net, 0, 1), 0.8);
  EXPECT_DOUBLE_EQ(router.contact_probability(net, 0, 2), 0.0);
}

TEST(GeoCommRouter, EvenContactProbabilityOnBusLikeRoutes) {
  // The paper's observation: a bus stopping at all stops every unit has
  // the same contact probability everywhere -- no discrimination.
  const auto trace = meeting_trace(4.0);
  GeoCommRouter router;
  Network net(trace, router, quiet());
  net.run();
  EXPECT_NEAR(router.contact_probability(net, 1, 1),
              router.contact_probability(net, 1, 2), 0.2);
}

TEST(PerRouter, FirstPassageOnDeterministicChain) {
  const auto trace = meeting_trace(6.0);
  PerRouter router;
  Network net(trace, router, quiet());
  net.run();
  // Node 1 alternates 1<->2 deterministically: it reaches L2 within a
  // generous deadline with probability ~1, and L0 never.
  EXPECT_GT(router.visit_probability(net, 1, 2, 2.0 * kDay), 0.9);
  EXPECT_DOUBLE_EQ(router.visit_probability(net, 1, 0, 2.0 * kDay), 0.0);
}

TEST(PerRouter, ProbabilityIncreasesWithDeadline) {
  const auto trace = meeting_trace(6.0);
  PerRouter router;
  Network net(trace, router, quiet());
  net.run();
  const double short_dl = router.visit_probability(net, 0, 1, 10.0 * kMinute);
  const double long_dl = router.visit_probability(net, 0, 1, 2.0 * kDay);
  EXPECT_LE(short_dl, long_dl + 1e-12);
}

TEST(PerRouter, ZeroDeadlineIsZero) {
  const auto trace = meeting_trace(4.0);
  PerRouter router;
  Network net(trace, router, quiet());
  net.run();
  EXPECT_DOUBLE_EQ(router.visit_probability(net, 0, 1, 0.0), 0.0);
}

TEST(PerRouter, DeliversViaNodeRelay) {
  const auto trace = meeting_trace(8.0);
  PerRouter router;
  auto cfg = quiet();
  cfg.manual_packets = {{0, 2, 4.0 * kDay + 5.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(DirectDeliveryRouter, OnlySourceVisitorsDeliver) {
  const auto trace = meeting_trace(8.0);
  DirectDeliveryRouter router;
  auto cfg = quiet();
  // L0 -> L1: node 0 visits both, delivers directly.
  // L0 -> L2: node 0 picks up but never visits L2; node 1 never visits
  // L0 -> undeliverable without relaying.
  cfg.manual_packets = {{0, 1, 4.0 * kDay + 5.0 * kMinute, 0.0},
                        {0, 2, 4.0 * kDay + 6.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
  EXPECT_EQ(net.packet(0).state, net::PacketState::kDelivered);
  EXPECT_NE(net.packet(1).state, net::PacketState::kDelivered);
}

TEST(UtilityRouters, ControlTrafficAccountedOnContacts) {
  const auto trace = meeting_trace(4.0);
  ProphetRouter router;
  Network net(trace, router, quiet());
  net.run();
  EXPECT_GT(net.counters().control_entries, 0.0);
}

TEST(Factory, StandardNamesConstruct) {
  for (const auto& name : standard_router_names()) {
    const auto router = make_router(name);
    ASSERT_NE(router, nullptr);
    EXPECT_EQ(router->name(), name);
  }
  EXPECT_EQ(make_router("Direct")->name(), "Direct");
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_THROW((void)make_router("Bogus"), std::invalid_argument);
}

TEST(Factory, DtnFlowUsesStationsBaselinesDoNot) {
  EXPECT_TRUE(make_router("DTN-FLOW")->uses_stations());
  for (const std::string name : {"SimBet", "PROPHET", "PGR", "GeoComm", "PER"}) {
    EXPECT_FALSE(make_router(name)->uses_stations()) << name;
  }
}

// Parameterized delivery smoke test: every baseline delivers the
// relayable packet on the meeting trace.
class BaselineDeliveryTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BaselineDeliveryTest, DeliversRelayablePacket) {
  const auto trace = meeting_trace(8.0);
  const auto router = make_router(GetParam());
  auto cfg = quiet();
  cfg.manual_packets = {{0, 2, 4.0 * kDay + 5.0 * kMinute, 0.0}};
  Network net(trace, *router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

INSTANTIATE_TEST_SUITE_P(Baselines, BaselineDeliveryTest,
                         ::testing::Values("SimBet", "PROPHET", "PGR",
                                           "GeoComm", "PER"));

}  // namespace
}  // namespace dtn::routing
