#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dtn {
namespace {

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, CommaQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, WritesRows) {
  const std::string path = ::testing::TempDir() + "csvwriter_test.csv";
  {
    CsvWriter w(path);
    w.write_row({"a", "b,c"});
    w.write_row_values({1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,\"b,c\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
  std::remove(path.c_str());
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 3), "3.14");
  EXPECT_EQ(format_double(1000000.0, 4), "1e+06");
  EXPECT_EQ(format_double(0.5, 4), "0.5");
}

TEST(TablePrinter, RowsAndCsvMirror) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5});
  EXPECT_EQ(t.rows(), 2u);
  const std::string path = ::testing::TempDir() + "table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "alpha,1");
  std::getline(in, line);
  EXPECT_EQ(line, "beta,2.5");
  std::remove(path.c_str());
}

TEST(TablePrinter, EmptyCsvPathIsNoop) {
  TablePrinter t({"x"});
  t.add_row({"1"});
  t.write_csv("");  // must not throw
}

}  // namespace
}  // namespace dtn
