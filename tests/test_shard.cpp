// Sharded replay engine: coordinator unit tests plus the headline
// contract — run_sharded(N) is bit-identical to the serial run()
// (docs/parallel-engine.md).
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "sim/shard_coordinator.hpp"
#include "trace/campus_generator.hpp"
#include "trace/city_generator.hpp"
#include "trace/shard_cursor.hpp"

namespace dtn {
namespace {

using net::Network;
using net::WorkloadConfig;
using trace::kDay;

// -- shard assignment ----------------------------------------------------

TEST(AssignShards, BalancesWeightsGreedily) {
  const std::vector<std::uint64_t> weights = {10, 1, 1, 1, 1, 10};
  const auto shard = sim::assign_shards(weights, 2);
  ASSERT_EQ(shard.size(), weights.size());
  // The two heavy landmarks must land on different shards.
  EXPECT_NE(shard[0], shard[5]);
  std::uint64_t load[2] = {0, 0};
  for (std::size_t l = 0; l < weights.size(); ++l) {
    ASSERT_LT(shard[l], 2u);
    load[shard[l]] += weights[l];
  }
  EXPECT_EQ(load[0] + load[1], 24u);
  EXPECT_LE(std::max(load[0], load[1]), 14u);
}

TEST(AssignShards, MoreShardsThanLandmarksLeavesShardsEmpty) {
  const std::vector<std::uint64_t> weights = {3, 2, 1};
  const auto shard = sim::assign_shards(weights, 8);
  for (std::size_t l = 0; l < weights.size(); ++l) {
    EXPECT_LT(shard[l], 8u);
  }
  // With more shards than landmarks every landmark gets its own shard.
  EXPECT_NE(shard[0], shard[1]);
  EXPECT_NE(shard[0], shard[2]);
  EXPECT_NE(shard[1], shard[2]);
}

TEST(AssignShards, DeterministicAcrossCalls) {
  const std::vector<std::uint64_t> weights = {5, 5, 5, 5, 2, 2, 2, 2};
  EXPECT_EQ(sim::assign_shards(weights, 3), sim::assign_shards(weights, 3));
}

// -- barrier planning ----------------------------------------------------

bool bound_covers(const std::vector<sim::EpochBound>& epochs,
                  const sim::MigrationEdge& e) {
  return std::any_of(epochs.begin(), epochs.end(),
                     [&](const sim::EpochBound& b) {
                       return e.dep < b.key && b.key <= e.arr;
                     });
}

TEST(PlanBarriers, EveryMigrationSeparatedByABound) {
  const std::vector<sim::MigrationEdge> edges = {
      {{10.0, 3}, {12.0, 4}},
      {{11.0, 9}, {12.0, 4}},  // shares the stab with the edge above
      {{40.0, 1}, {55.0, 2}},
      {{90.0, 7}, {95.0, 8}},
  };
  const std::vector<sim::EventKey> units = {{50.0, 100}};
  const auto epochs =
      plan_barriers(edges, units, sim::EventKey{100.0, 1000});
  for (const auto& e : edges) EXPECT_TRUE(bound_covers(epochs, e));
  // The unit bound at t=50 must be present and tagged with its index.
  const auto unit_it = std::find_if(
      epochs.begin(), epochs.end(), [](const sim::EpochBound& b) {
        return b.kind == sim::EpochKind::kUnit;
      });
  ASSERT_NE(unit_it, epochs.end());
  EXPECT_EQ(unit_it->unit_index, 1u);
  // The edge spanning the unit bound (40 -> 55) needs no extra stab.
  const auto syncs = std::count_if(
      epochs.begin(), epochs.end(), [](const sim::EpochBound& b) {
        return b.kind == sim::EpochKind::kSync;
      });
  EXPECT_EQ(syncs, 2);  // one shared stab at (12, 4), one at (95, 8)
  // Ascending order, final bound last.
  for (std::size_t i = 1; i < epochs.size(); ++i) {
    EXPECT_TRUE(epochs[i - 1].key < epochs[i].key);
  }
  EXPECT_EQ(epochs.back().kind, sim::EpochKind::kFinal);
}

TEST(PlanBarriers, NoMigrationsYieldsUnitsPlusFinal) {
  const std::vector<sim::EventKey> units = {{10.0, 5}, {20.0, 7}};
  const auto epochs = plan_barriers({}, units, sim::EventKey{30.0, 99});
  ASSERT_EQ(epochs.size(), 3u);
  EXPECT_EQ(epochs[0].kind, sim::EpochKind::kUnit);
  EXPECT_EQ(epochs[0].unit_index, 1u);
  EXPECT_EQ(epochs[1].unit_index, 2u);
  EXPECT_EQ(epochs[2].kind, sim::EpochKind::kFinal);
}

// -- trace splitting -----------------------------------------------------

TEST(SplitTraceEvents, ReplicatesCursorKeysAndFindsMigrations) {
  trace::Trace t(2, 3);
  t.add_visit({0, 0, 0.0, 10.0});   // seq 0, 1
  t.add_visit({0, 1, 20.0, 30.0});  // seq 2, 3   (migration if 0,1 split)
  t.add_visit({1, 1, 5.0, 12.0});   // seq 4, 5
  t.add_visit({1, 1, 15.0, 25.0});  // seq 6, 7   (same landmark: none)
  t.finalize();
  const std::vector<std::uint32_t> landmark_shard = {0, 1, 1};
  const auto split = trace::split_trace_events(t, landmark_shard, 2);
  EXPECT_EQ(split.total_events, 8u);
  ASSERT_EQ(split.events.size(), 2u);
  EXPECT_EQ(split.events[0].size(), 2u);  // node 0's visit to landmark 0
  EXPECT_EQ(split.events[1].size(), 6u);
  for (const auto& stream : split.events) {
    for (std::size_t i = 1; i < stream.size(); ++i) {
      EXPECT_TRUE(stream[i - 1].key() < stream[i].key());
    }
  }
  // Exactly one migration: node 0 departs landmark 0 (10.0, seq 1) and
  // arrives at landmark 1 (20.0, seq 2).
  ASSERT_EQ(split.migrations.size(), 1u);
  EXPECT_TRUE(split.migrations[0].dep == (sim::EventKey{10.0, 1}));
  EXPECT_TRUE(split.migrations[0].arr == (sim::EventKey{20.0, 2}));
  // Materialized events carry the cursor's field layout.
  const auto ev = trace::materialize(split.events[0][0]);
  EXPECT_EQ(ev.kind, sim::EventKind::kArrival);
  EXPECT_EQ(ev.a, 0u);
  EXPECT_EQ(ev.b, 0u);
}

// -- sharded-vs-serial equivalence --------------------------------------

struct RunResult {
  net::RunCounters counters;
  core::DtnFlowDiagnostics diag;
  std::uint64_t events = 0;
  double now = 0.0;
};

WorkloadConfig shard_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 4.0;
  cfg.ttl = 6.0 * kDay;
  cfg.time_unit = 1.5 * kDay;
  cfg.warmup_fraction = 0.25;
  cfg.node_memory_kb = 40;
  cfg.seed = 11;
  cfg.manual_packets = {{0, 5, 4.0 * kDay, 0.0},
                        {3, 1, 6.5 * kDay, 2.0 * kDay},
                        {2, 7, 9.0 * kDay, 0.0}};
  return cfg;
}

core::DtnFlowConfig shard_router_config() {
  core::DtnFlowConfig rc;
  // Turn on every shard-safe extension so the equivalence test sweeps
  // the widest slice of the router.
  rc.dead_end_prevention = true;
  rc.load_balancing = true;
  rc.scheduled_communication = true;
  rc.node_to_node_relay = true;
  return rc;
}

RunResult run_campus(std::size_t num_shards) {
  trace::CampusTraceConfig tc;
  tc.num_nodes = 70;
  tc.num_landmarks = 24;
  tc.num_communities = 6;
  tc.days = 12.0;
  tc.seed = 5;
  const auto trace = generate_campus_trace(tc);
  core::DtnFlowRouter router(shard_router_config());
  Network net(trace, router, shard_workload());
  if (num_shards <= 1) {
    net.run();
  } else {
    net.run_sharded(num_shards);
  }
  return {net.counters(), router.diagnostics(), net.events_executed(),
          net.now()};
}

void expect_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.diag, b.diag);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.now, b.now);
}

TEST(ShardedRun, MatchesSerialBitForBitOnCampusTrace) {
  const RunResult serial = run_campus(1);
  // A healthy workload, or the equivalence below is vacuous.
  EXPECT_GT(serial.counters.generated, 50u);
  EXPECT_GT(serial.counters.delivered, 10u);
  expect_equal(serial, run_campus(2));
  expect_equal(serial, run_campus(4));
  expect_equal(serial, run_campus(7));
}

TEST(ShardedRun, SingleShardRequestFallsBackToSerialEngine) {
  trace::CampusTraceConfig tc;
  tc.num_nodes = 30;
  tc.num_landmarks = 12;
  tc.days = 6.0;
  tc.seed = 3;
  const auto trace = generate_campus_trace(tc);

  core::DtnFlowRouter r1(shard_router_config());
  Network serial(trace, r1, shard_workload());
  serial.run();

  core::DtnFlowRouter r2(shard_router_config());
  Network sharded(trace, r2, shard_workload());
  sharded.run_sharded(1);

  EXPECT_EQ(serial.counters(), sharded.counters());
  EXPECT_EQ(serial.events_executed(), sharded.events_executed());
}

TEST(ShardedRun, MatchesSerialOnCityTrace) {
  trace::CityTraceConfig tc;  // scaled-down city tier
  tc.num_pedestrians = 220;
  tc.num_buses = 10;
  tc.num_landmarks = 48;
  tc.num_districts = 6;
  tc.days = 1.0;
  tc.seed = 9;
  const auto trace = generate_city_trace(tc);

  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 2.0;
  cfg.ttl = 0.5 * kDay;
  cfg.time_unit = 0.25 * kDay;
  cfg.warmup_fraction = 0.2;
  cfg.node_memory_kb = 20;
  cfg.seed = 21;

  core::DtnFlowRouter r1;
  Network serial(trace, r1, cfg);
  serial.run();
  EXPECT_GT(serial.counters().delivered, 0u);

  core::DtnFlowRouter r2;
  Network sharded(trace, r2, cfg);
  sharded.run_sharded(4);

  EXPECT_EQ(serial.counters(), sharded.counters());
  EXPECT_EQ(r1.diagnostics(), r2.diagnostics());
  EXPECT_EQ(serial.events_executed(), sharded.events_executed());
}

TEST(ShardedRun, ExplicitThreadPoolIsAccepted) {
  trace::CampusTraceConfig tc;
  tc.num_nodes = 24;
  tc.num_landmarks = 10;
  tc.days = 5.0;
  tc.seed = 17;
  const auto trace = generate_campus_trace(tc);

  core::DtnFlowRouter r1;
  Network serial(trace, r1, shard_workload());
  serial.run();

  ThreadPool pool(3);
  core::DtnFlowRouter r2;
  Network sharded(trace, r2, shard_workload());
  sharded.run_sharded(3, &pool);
  EXPECT_EQ(serial.counters(), sharded.counters());
}

}  // namespace
}  // namespace dtn
