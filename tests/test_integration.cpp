// End-to-end integration: the full pipeline (synthetic trace ->
// simulation -> metrics) for every compared router, checking the
// paper's qualitative ordering on a reduced-scale campus workload.
#include <gtest/gtest.h>

#include <map>

#include "metrics/metrics.hpp"
#include "routing/factory.hpp"
#include "trace/campus_generator.hpp"
#include "trace/bus_generator.hpp"

namespace dtn {
namespace {

using trace::kDay;

// Reduced-scale analogue of the paper's DART setting: landmarks are
// plentiful relative to nodes (each destination is frequently visited
// by only a few nodes, observation O1), buffers are constrained and the
// packet rate congests them — the regime where the compared algorithms
// actually separate.
trace::Trace tiny_campus() {
  trace::CampusTraceConfig cfg;
  cfg.num_nodes = 48;
  cfg.num_landmarks = 24;
  cfg.num_communities = 12;
  cfg.community_landmarks = 4;
  cfg.community_bias = 0.85;
  cfg.days = 24.0;
  cfg.add_default_holiday = false;
  cfg.seed = 5;
  return generate_campus_trace(cfg);
}

net::WorkloadConfig campus_workload() {
  net::WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 30.0;
  cfg.ttl = 4.0 * kDay;
  cfg.node_memory_kb = 40;
  cfg.warmup_fraction = 0.25;
  cfg.time_unit = 1.0 * kDay;
  cfg.seed = 99;
  return cfg;
}

double per_delivered_cost(const metrics::RunResult& r) {
  return r.forwarding_cost / std::max<double>(1.0, r.delivered);
}

std::map<std::string, metrics::RunResult> run_all(
    const trace::Trace& trace, const net::WorkloadConfig& workload) {
  std::map<std::string, metrics::RunResult> results;
  for (const auto& name : routing::standard_router_names()) {
    const auto router = routing::make_router(name);
    results[name] = metrics::run_experiment(trace, *router, workload);
  }
  return results;
}

TEST(Integration, AllRoutersCompleteAndDeliver) {
  const auto trace = tiny_campus();
  const auto results = run_all(trace, campus_workload());
  ASSERT_EQ(results.size(), 6u);
  for (const auto& [name, r] : results) {
    EXPECT_GT(r.generated, 500u) << name;
    EXPECT_GE(r.success_rate, 0.0) << name;
    EXPECT_LE(r.success_rate, 1.0) << name;
    EXPECT_GT(r.delivered, 0u) << name;
    EXPECT_GT(r.avg_delay, 0.0) << name;
    EXPECT_GT(r.forwarding_cost, 0.0) << name;
    EXPECT_GE(r.total_cost, r.forwarding_cost) << name;
  }
}

TEST(Integration, DtnFlowHasHighestSuccessRate) {
  const auto trace = tiny_campus();
  const auto results = run_all(trace, campus_workload());
  const double flow = results.at("DTN-FLOW").success_rate;
  for (const auto& [name, r] : results) {
    if (name == "DTN-FLOW") continue;
    EXPECT_GE(flow, r.success_rate) << "vs " << name;
  }
  EXPECT_GT(flow, 0.5);
}

TEST(Integration, DtnFlowHasLowestOverallDelay) {
  const auto trace = tiny_campus();
  const auto results = run_all(trace, campus_workload());
  // Delay including failures (the paper's O.Delay): DTN-FLOW strictly
  // lowest.  The *conditional* delay of delivered packets is a biased
  // comparison here — the baselines only deliver the easy short-path
  // packets — so we additionally require DTN-FLOW's conditional delay
  // to stay within 15% of the best baseline's despite delivering far
  // more of the hard multi-hop traffic (see EXPERIMENTS.md).
  const auto& flow = results.at("DTN-FLOW");
  double best_baseline_avg = 1e300;
  for (const auto& [name, r] : results) {
    if (name == "DTN-FLOW") continue;
    EXPECT_LT(flow.overall_delay, r.overall_delay) << "vs " << name;
    best_baseline_avg = std::min(best_baseline_avg, r.avg_delay);
  }
  EXPECT_LT(flow.avg_delay, best_baseline_avg * 1.15);
}

TEST(Integration, ForwardingCostShapeAmongBaselines) {
  const auto trace = tiny_campus();
  const auto results = run_all(trace, campus_workload());
  // Paper Fig. 11(c): PGR forwards least among the baselines (nodes
  // rarely look better than each other) and the dynamic-utility methods
  // (PER/PROPHET/GeoComm) forward most.
  EXPECT_LT(results.at("PGR").forwarding_cost,
            results.at("PER").forwarding_cost);
  EXPECT_LT(results.at("PGR").forwarding_cost,
            results.at("PROPHET").forwarding_cost);
  EXPECT_LT(results.at("PGR").forwarding_cost,
            results.at("GeoComm").forwarding_cost);
  // DTN-FLOW's per-delivered cost stays within a small factor of the
  // baselines even though station-assisted hops are double-counted
  // (upload + download); its raw count scales with its much higher
  // delivery volume (deviation from the paper discussed in
  // EXPERIMENTS.md).
  EXPECT_LT(per_delivered_cost(results.at("DTN-FLOW")),
            3.0 * per_delivered_cost(results.at("PROPHET")));
}

TEST(Integration, DeterministicAcrossIdenticalRuns) {
  const auto trace = tiny_campus();
  const auto workload = campus_workload();
  const auto a = run_all(trace, workload);
  const auto b = run_all(trace, workload);
  for (const auto& [name, ra] : a) {
    const auto& rb = b.at(name);
    EXPECT_EQ(ra.delivered, rb.delivered) << name;
    EXPECT_DOUBLE_EQ(ra.avg_delay, rb.avg_delay) << name;
    EXPECT_DOUBLE_EQ(ra.total_cost, rb.total_cost) << name;
  }
}

TEST(Integration, MoreMemoryNeverHurtsDtnFlow) {
  const auto trace = tiny_campus();
  auto workload = campus_workload();
  workload.packets_per_landmark_per_day = 12.0;
  workload.node_memory_kb = 5;
  const auto small = metrics::run_experiment(
      trace, *routing::make_router("DTN-FLOW"), workload);
  workload.node_memory_kb = 500;
  const auto large = metrics::run_experiment(
      trace, *routing::make_router("DTN-FLOW"), workload);
  EXPECT_GE(large.success_rate + 0.02, small.success_rate);
}

TEST(Integration, BusTracePipelineRuns) {
  trace::BusTraceConfig bc;
  bc.num_buses = 16;
  bc.num_landmarks = 10;
  bc.num_routes = 5;
  bc.days = 12.0;
  bc.seed = 2;
  const auto trace = generate_bus_trace(bc);
  net::WorkloadConfig workload;
  workload.packets_per_landmark_per_day = 6.0;
  workload.ttl = 3.0 * kDay;
  workload.node_memory_kb = 200;
  workload.time_unit = 0.5 * kDay;
  const auto router = routing::make_router("DTN-FLOW");
  const auto r = metrics::run_experiment(trace, *router, workload);
  EXPECT_GT(r.generated, 100u);
  EXPECT_GT(r.success_rate, 0.3);
}

}  // namespace
}  // namespace dtn
