// Unit tests for the replay-loop scratch arena (util/arena.hpp).
//
// The arena's contract has three load-bearing pieces: bump allocation
// with exact byte accounting (the auditor cross-checks the incremental
// counter against per-block sums), O(blocks) reset that retains and
// reuses capacity (steady-state replay must do zero heap traffic for
// scratch), and a check() that actually fails when the accounting
// drifts (otherwise the audit is a no-op).
#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace dtn {
namespace {

TEST(Arena, BumpAllocationIsAlignedAndAccountsPadding) {
  Arena a(/*block_bytes=*/256);
  void* p1 = a.allocate(10, 8);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 8, 0u);
  EXPECT_EQ(a.bytes_in_use(), 10u);

  // The next 8-aligned slot is offset 16: the counter must advance by
  // the 6 padding bytes plus the 1-byte payload, exactly matching the
  // per-block used sums check() recomputes.
  void* p2 = a.allocate(1, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % 8, 0u);
  EXPECT_EQ(a.bytes_in_use(), 17u);
  EXPECT_EQ(a.allocations(), 2u);

  std::string why;
  EXPECT_TRUE(a.check(&why)) << why;
}

TEST(Arena, ResetRetainsCapacityAndReusesTheSameStorage) {
  Arena a(/*block_bytes=*/128);
  void* first = a.allocate(100, 8);
  for (int i = 0; i < 5; ++i) (void)a.allocate(100, 8);  // spill to more blocks
  const std::size_t reserved = a.bytes_reserved();
  const std::size_t blocks = a.blocks();
  ASSERT_GT(blocks, 1u);

  a.reset();
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_EQ(a.resets(), 1u);
  // Capacity survives the reset...
  EXPECT_EQ(a.bytes_reserved(), reserved);
  EXPECT_EQ(a.blocks(), blocks);
  // ...and the next hook's first allocation lands in the same bytes.
  EXPECT_EQ(a.allocate(100, 8), first);
  EXPECT_EQ(a.bytes_in_use(), 100u);

  std::string why;
  EXPECT_TRUE(a.check(&why)) << why;
}

TEST(Arena, OversizedRequestGetsADedicatedBlock) {
  Arena a(/*block_bytes=*/64);
  void* big = a.allocate(1000, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(a.bytes_in_use(), 1000u);
  EXPECT_GE(a.bytes_reserved(), 1000u);

  std::string why;
  EXPECT_TRUE(a.check(&why)) << why;
}

TEST(Arena, HighWaterTracksThePeakAcrossResets) {
  Arena a(/*block_bytes=*/256);
  (void)a.allocate(64, 8);
  EXPECT_EQ(a.high_water(), 64u);
  a.reset();
  (void)a.allocate(8, 8);
  EXPECT_EQ(a.high_water(), 64u);  // peak, not current
  (void)a.allocate(200, 8);
  EXPECT_GE(a.high_water(), 208u);
}

TEST(Arena, CheckDetectsAccountingDrift) {
  Arena a;
  (void)a.allocate(32, 8);
  std::string why;
  ASSERT_TRUE(a.check(&why)) << why;

  a.debug_corrupt_accounting_for_test();
  EXPECT_FALSE(a.check(&why));
  EXPECT_NE(why.find("drifted"), std::string::npos) << why;
}

TEST(ArenaVector, HookPatternReusesStorageAfterReset) {
  Arena a;
  // Hook one: an arena-backed container grows, then dies with the hook.
  {
    ArenaVector<std::uint64_t> v{ArenaAllocator<std::uint64_t>(a)};
    for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i);
    for (std::uint64_t i = 0; i < 100; ++i) ASSERT_EQ(v[i], i);
  }
  EXPECT_GT(a.bytes_in_use(), 0u);  // deallocate is a no-op by design

  // Hook two: after the top-of-hook reset the same growth pattern
  // fits entirely in the retained blocks — zero new reservation.
  a.reset();
  EXPECT_EQ(a.bytes_in_use(), 0u);
  const std::size_t reserved = a.bytes_reserved();
  {
    ArenaVector<std::uint64_t> v{ArenaAllocator<std::uint64_t>(a)};
    for (std::uint64_t i = 0; i < 100; ++i) v.push_back(i);
  }
  EXPECT_EQ(a.bytes_reserved(), reserved);

  std::string why;
  EXPECT_TRUE(a.check(&why)) << why;
}

}  // namespace
}  // namespace dtn
