#include "trace/contacts.hpp"

#include <gtest/gtest.h>

#include "trace/campus_generator.hpp"

namespace dtn::trace {
namespace {

Trace overlap_trace() {
  Trace t(3, 2);
  // Node 0 and 1 overlap at L0 during [5, 10); node 2 at L1 alone; then
  // 0 and 2 overlap at L1 during [20, 22).
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({1, 0, 5.0, 15.0});
  t.add_visit({2, 1, 0.0, 8.0});
  t.add_visit({0, 1, 20.0, 25.0});
  t.add_visit({2, 1, 18.0, 22.0});
  t.finalize();
  return t;
}

TEST(DeriveContacts, FindsOverlaps) {
  const auto contacts = derive_contacts(overlap_trace());
  ASSERT_EQ(contacts.size(), 2u);
  EXPECT_EQ(contacts[0].a, 0u);
  EXPECT_EQ(contacts[0].b, 1u);
  EXPECT_EQ(contacts[0].place, 0u);
  EXPECT_DOUBLE_EQ(contacts[0].start, 5.0);
  EXPECT_DOUBLE_EQ(contacts[0].end, 10.0);
  EXPECT_DOUBLE_EQ(contacts[0].duration(), 5.0);
  EXPECT_EQ(contacts[1].a, 0u);
  EXPECT_EQ(contacts[1].b, 2u);
  EXPECT_DOUBLE_EQ(contacts[1].start, 20.0);
  EXPECT_DOUBLE_EQ(contacts[1].end, 22.0);
}

TEST(DeriveContacts, SortedByStart) {
  const auto contacts = derive_contacts(overlap_trace());
  for (std::size_t i = 1; i < contacts.size(); ++i) {
    EXPECT_LE(contacts[i - 1].start, contacts[i].start);
  }
}

TEST(DeriveContacts, NoContactAcrossLandmarks) {
  Trace t(2, 2);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({1, 1, 0.0, 10.0});  // simultaneous but elsewhere
  t.finalize();
  EXPECT_TRUE(derive_contacts(t).empty());
}

TEST(DeriveContacts, TouchingIntervalsAreNotContacts) {
  Trace t(2, 1);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({1, 0, 10.0, 20.0});  // zero-length intersection
  t.finalize();
  EXPECT_TRUE(derive_contacts(t).empty());
}

TEST(AnalyzeContacts, AggregateStats) {
  const auto trace = overlap_trace();
  const auto contacts = derive_contacts(trace);
  const auto s = analyze_contacts(trace, contacts);
  EXPECT_EQ(s.contacts, 2u);
  EXPECT_EQ(s.pairs_met, 2u);
  EXPECT_DOUBLE_EQ(s.mean_duration, (5.0 + 2.0) / 2.0);
  EXPECT_DOUBLE_EQ(s.mean_intercontact, 0.0);  // no pair met twice
}

TEST(IntercontactTimes, GapsPerPair) {
  Trace t(2, 1);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({1, 0, 5.0, 8.0});
  t.add_visit({1, 0, 50.0, 60.0});
  t.add_visit({0, 0, 55.0, 70.0});
  t.add_visit({1, 0, 100.0, 110.0});
  t.add_visit({0, 0, 105.0, 120.0});
  t.finalize();
  const auto contacts = derive_contacts(t);
  ASSERT_EQ(contacts.size(), 3u);
  const auto gaps = intercontact_times(contacts, 1, 0);  // order-insensitive
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 50.0);
  EXPECT_DOUBLE_EQ(gaps[1], 50.0);
}

TEST(IntercontactTimes, EmptyForStrangers) {
  const auto contacts = derive_contacts(overlap_trace());
  EXPECT_TRUE(intercontact_times(contacts, 1, 2).empty());
}

TEST(ContactsOnSyntheticCampus, PlausibleVolume) {
  CampusTraceConfig cfg;
  cfg.num_nodes = 30;
  cfg.num_landmarks = 10;
  cfg.days = 10.0;
  cfg.seed = 4;
  const auto trace = generate_campus_trace(cfg);
  const auto contacts = derive_contacts(trace);
  const auto s = analyze_contacts(trace, contacts);
  EXPECT_GT(s.contacts, 100u);
  EXPECT_GT(s.pairs_met, 30u);
  EXPECT_GT(s.mean_duration, kMinute);
  EXPECT_LT(s.mean_duration, 3.0 * kHour);
  EXPECT_GT(s.contacts_per_node_day, 1.0);
}

}  // namespace
}  // namespace dtn::trace
