#include "util/flat_matrix.hpp"

#include <gtest/gtest.h>

namespace dtn {
namespace {

TEST(FlatMatrix, DefaultConstructedIsEmpty) {
  FlatMatrix<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(FlatMatrix, InitialValue) {
  FlatMatrix<double> m(3, 4, 1.5);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(m.at(r, c), 1.5);
    }
  }
}

TEST(FlatMatrix, WriteAndRead) {
  FlatMatrix<int> m(2, 2, 0);
  m.at(0, 1) = 7;
  m.at(1, 0) = -3;
  EXPECT_EQ(m.at(0, 1), 7);
  EXPECT_EQ(m.at(1, 0), -3);
  EXPECT_EQ(m.at(0, 0), 0);
}

TEST(FlatMatrix, RowSum) {
  FlatMatrix<int> m(2, 3, 0);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  EXPECT_EQ(m.row_sum(0), 6);
  EXPECT_EQ(m.row_sum(1), 0);
}

TEST(FlatMatrix, Fill) {
  FlatMatrix<int> m(2, 2, 1);
  m.fill(9);
  EXPECT_EQ(m.row_sum(0), 18);
  EXPECT_EQ(m.row_sum(1), 18);
}

TEST(FlatMatrix, RawStorageRowMajor) {
  FlatMatrix<int> m(2, 3, 0);
  m.at(1, 2) = 5;
  EXPECT_EQ(m.raw()[1 * 3 + 2], 5);
}

}  // namespace
}  // namespace dtn
