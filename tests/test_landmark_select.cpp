#include "core/landmark_select.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace dtn::core {
namespace {

using trace::Point;

TEST(SelectLandmarks, KeepsMostVisitedWhenSpaced) {
  const std::vector<CandidatePlace> candidates = {
      {{0, 0}, 100}, {{10, 0}, 50}, {{20, 0}, 75}};
  const auto sel = select_landmarks(candidates, 5.0);
  ASSERT_EQ(sel.size(), 3u);
  EXPECT_EQ(sel[0], 0u);  // ordered by visits desc
  EXPECT_EQ(sel[1], 2u);
  EXPECT_EQ(sel[2], 1u);
}

TEST(SelectLandmarks, RemovesLessVisitedOfClosePair) {
  const std::vector<CandidatePlace> candidates = {
      {{0, 0}, 100}, {{1, 0}, 50}, {{20, 0}, 75}};
  const auto sel = select_landmarks(candidates, 5.0);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 0u);
  EXPECT_EQ(sel[1], 2u);
}

TEST(SelectLandmarks, MaxLandmarksCap) {
  const std::vector<CandidatePlace> candidates = {
      {{0, 0}, 1}, {{10, 0}, 2}, {{20, 0}, 3}, {{30, 0}, 4}};
  const auto sel = select_landmarks(candidates, 1.0, 2);
  ASSERT_EQ(sel.size(), 2u);
  EXPECT_EQ(sel[0], 3u);
  EXPECT_EQ(sel[1], 2u);
}

TEST(SelectLandmarks, EmptyInput) {
  EXPECT_TRUE(select_landmarks({}, 10.0).empty());
}

TEST(AssignSubareas, NearestLandmarkWins) {
  const std::vector<Point> landmarks = {{0, 0}, {10, 0}};
  const std::vector<Point> points = {{1, 0}, {9, 0}, {4.9, 0}, {5.1, 0}};
  const auto a = assign_subareas(points, landmarks);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 1u);
  EXPECT_EQ(a[2], 0u);
  EXPECT_EQ(a[3], 1u);
}

TEST(AssignSubareas, TieBreaksToLowerId) {
  const std::vector<Point> landmarks = {{0, 0}, {10, 0}};
  const auto a = assign_subareas(std::vector<Point>{{5, 0}}, landmarks);
  EXPECT_EQ(a[0], 0u);
}

TEST(AssignSubareas, LandmarkOwnsItsOwnPosition) {
  const std::vector<Point> landmarks = {{0, 0}, {3, 4}, {-7, 2}};
  const auto a = assign_subareas(landmarks, landmarks);
  for (std::size_t i = 0; i < landmarks.size(); ++i) {
    EXPECT_EQ(a[i], static_cast<trace::LandmarkId>(i));
  }
}

class LandmarkPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LandmarkPropertyTest, SelectedLandmarksRespectMinDistance) {
  dtn::Rng rng(GetParam());
  std::vector<CandidatePlace> candidates;
  for (int i = 0; i < 60; ++i) {
    candidates.push_back(
        {{rng.uniform(0, 100), rng.uniform(0, 100)}, rng.uniform(1, 1000)});
  }
  const double d_min = 15.0;
  const auto sel = select_landmarks(candidates, d_min);
  for (std::size_t a = 0; a < sel.size(); ++a) {
    for (std::size_t b = a + 1; b < sel.size(); ++b) {
      const double d2 = squared_distance(candidates[sel[a]].position,
                                         candidates[sel[b]].position);
      EXPECT_GE(std::sqrt(d2), d_min);
    }
  }
  EXPECT_FALSE(sel.empty());
}

TEST_P(LandmarkPropertyTest, EveryDroppedCandidateIsNearABusierSelected) {
  dtn::Rng rng(GetParam() ^ 0x77);
  std::vector<CandidatePlace> candidates;
  for (int i = 0; i < 40; ++i) {
    candidates.push_back(
        {{rng.uniform(0, 50), rng.uniform(0, 50)}, rng.uniform(1, 1000)});
  }
  const double d_min = 10.0;
  const auto sel = select_landmarks(candidates, d_min);
  std::vector<bool> selected(candidates.size(), false);
  for (const auto s : sel) selected[s] = true;
  for (std::size_t c = 0; c < candidates.size(); ++c) {
    if (selected[c]) continue;
    bool blocked = false;
    for (const auto s : sel) {
      if (squared_distance(candidates[c].position, candidates[s].position) <
              d_min * d_min &&
          candidates[s].visit_count >= candidates[c].visit_count) {
        blocked = true;
        break;
      }
    }
    EXPECT_TRUE(blocked) << "candidate " << c << " dropped without cause";
  }
}

TEST_P(LandmarkPropertyTest, SubareasPartitionTheField) {
  dtn::Rng rng(GetParam() ^ 0xabc);
  std::vector<Point> landmarks;
  for (int i = 0; i < 6; ++i) {
    landmarks.push_back({rng.uniform(0, 100), rng.uniform(0, 100)});
  }
  std::vector<Point> grid;
  for (int x = 0; x < 20; ++x) {
    for (int y = 0; y < 20; ++y) {
      grid.push_back({x * 5.0, y * 5.0});
    }
  }
  const auto assignment = assign_subareas(grid, landmarks);
  ASSERT_EQ(assignment.size(), grid.size());
  // Every point belongs to exactly one subarea, and to the (a) nearest.
  for (std::size_t p = 0; p < grid.size(); ++p) {
    const double assigned_d2 =
        squared_distance(grid[p], landmarks[assignment[p]]);
    for (std::size_t l = 0; l < landmarks.size(); ++l) {
      EXPECT_LE(assigned_d2, squared_distance(grid[p], landmarks[l]) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LandmarkPropertyTest,
                         ::testing::Values(11ull, 22ull, 33ull));

}  // namespace
}  // namespace dtn::core
