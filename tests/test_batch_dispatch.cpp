// Batched contact dispatch is state-transparent (src/net/network.hpp):
// grouping a same-(time, landmark) run of arrivals or departures into
// one dispatch — present-set index renumbered once, carrier-score
// epoch advanced once — must leave every observable bit identical to
// per-event dispatch: counters, per-packet vectors, router
// diagnostics, the event count and the clock.
//
// Generated traces draw visit times continuously, so exact ties are
// rare there; the generator runs below pin the common case, and a
// hand-built tie-heavy trace (whole cohorts sharing identical visit
// windows) forces real multi-event batches through both the serial
// drain and the sharded lookahead.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "trace/campus_generator.hpp"
#include "trace/city_generator.hpp"
#include "trace/trace.hpp"

namespace dtn {
namespace {

using net::Network;
using net::WorkloadConfig;
using trace::kDay;
using trace::kHour;
using trace::kMinute;

struct RunResult {
  net::RunCounters counters;
  core::DtnFlowDiagnostics diag;
  std::uint64_t events;
  double now;
};

// Order-sensitive FNV-1a digest over the per-packet result vectors —
// the same probe the golden determinism tests use, so "equal digests"
// here means the batched path reproduces delivery order bit for bit.
std::uint64_t digest(const net::RunCounters& c) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (double d : c.delivery_delays) mix(std::bit_cast<std::uint64_t>(d));
  for (std::uint32_t x : c.delivery_hops) mix(x);
  return h;
}

void expect_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(digest(a.counters), digest(b.counters));
  EXPECT_EQ(a.diag, b.diag);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.now, b.now);
}

RunResult run(const trace::Trace& trace, WorkloadConfig cfg, bool batched,
              std::size_t shards = 1) {
  cfg.batch_contacts = batched;
  core::DtnFlowConfig rc;
  rc.dead_end_prevention = true;
  rc.load_balancing = true;
  rc.node_to_node_relay = true;
  core::DtnFlowRouter router(rc);
  Network net(trace, router, cfg);
  if (shards <= 1) {
    net.run();
  } else {
    net.run_sharded(shards);
  }
  return {net.counters(), router.diagnostics(), net.events_executed(),
          net.now()};
}

WorkloadConfig workload(std::uint32_t seed) {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 4.0;
  cfg.ttl = 4.0 * kDay;
  cfg.time_unit = 1.0 * kDay;
  cfg.warmup_fraction = 0.25;
  cfg.node_memory_kb = 30;
  cfg.seed = seed;
  return cfg;
}

TEST(BatchDispatch, CampusReplayMatchesUnbatchedBitForBit) {
  trace::CampusTraceConfig tc;
  tc.num_nodes = 60;
  tc.num_landmarks = 20;
  tc.num_communities = 5;
  tc.days = 10.0;
  tc.seed = 29;
  const auto trace = trace::generate_campus_trace(tc);

  const RunResult batched = run(trace, workload(3), /*batched=*/true);
  ASSERT_GT(batched.counters.generated, 50u);
  ASSERT_GT(batched.counters.delivered, 0u);
  expect_equal(batched, run(trace, workload(3), /*batched=*/false));
}

TEST(BatchDispatch, CityReplayMatchesUnbatchedBitForBit) {
  trace::CityTraceConfig tc;  // scaled-down city tier
  tc.num_pedestrians = 180;
  tc.num_buses = 8;
  tc.num_landmarks = 40;
  tc.num_districts = 5;
  tc.days = 1.0;
  tc.seed = 31;
  const auto trace = trace::generate_city_trace(tc);

  WorkloadConfig cfg = workload(17);
  cfg.ttl = 0.5 * kDay;
  cfg.time_unit = 0.25 * kDay;
  cfg.packets_per_landmark_per_day = 2.0;
  cfg.node_memory_kb = 20;

  const RunResult batched = run(trace, cfg, /*batched=*/true);
  ASSERT_GT(batched.counters.delivered, 0u);
  expect_equal(batched, run(trace, cfg, /*batched=*/false));
}

// Cohorts of nodes sharing *identical* visit windows: every contact
// event at a landmark arrives as a same-timestamp run, so the batched
// path actually takes the multi-event drain (deferred present-set
// renumber, prepaid epoch) instead of the single-event fast path.
trace::Trace tie_heavy_trace(double days) {
  constexpr std::uint32_t kCohorts = 3;
  constexpr std::uint32_t kPerCohort = 4;
  constexpr std::uint32_t kNodes = kCohorts * kPerCohort;
  trace::Trace t(kNodes, kCohorts + 1);
  const auto periods =
      static_cast<std::size_t>(days * kDay / (2.0 * kHour));
  for (std::uint32_t c = 0; c < kCohorts; ++c) {
    for (std::uint32_t m = 0; m < kPerCohort; ++m) {
      const std::uint32_t n = c * kPerCohort + m;
      for (std::size_t p = 0; p < periods; ++p) {
        const double base = static_cast<double>(p) * 2.0 * kHour;
        t.add_visit({n, c, base, base + 30.0 * kMinute});
        t.add_visit(
            {n, c + 1, base + 60.0 * kMinute, base + 90.0 * kMinute});
      }
    }
  }
  t.finalize();
  return t;
}

WorkloadConfig tie_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 10;
  cfg.ttl = 2.0 * kDay;
  for (int i = 0; i < 30; ++i) {
    cfg.manual_packets.push_back(
        {0, 3, 2.0 * kDay + i * 10.0 * kMinute, 0.0});
  }
  return cfg;
}

TEST(BatchDispatch, TieHeavyTraceMatchesUnbatchedBitForBit) {
  const auto trace = tie_heavy_trace(8.0);
  const RunResult batched = run(trace, tie_workload(), /*batched=*/true);
  ASSERT_GT(batched.counters.delivered, 0u);
  expect_equal(batched, run(trace, tie_workload(), /*batched=*/false));
}

TEST(BatchDispatch, ShardedTieHeavyReplayMatchesAllOtherModes) {
  const auto trace = tie_heavy_trace(6.0);
  const RunResult serial_batched = run(trace, tie_workload(), true);
  expect_equal(serial_batched, run(trace, tie_workload(), false));
  // The sharded lookahead batches independently of the serial drain;
  // all four mode combinations must agree.
  expect_equal(serial_batched,
               run(trace, tie_workload(), /*batched=*/true, /*shards=*/4));
  expect_equal(serial_batched,
               run(trace, tie_workload(), /*batched=*/false, /*shards=*/4));
}

}  // namespace
}  // namespace dtn
