#include "trace/trace_stats.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>

namespace dtn::trace {
namespace {

// Node 0: L0 -> L1 -> L0 -> L1 (3 transits); node 1: L2 -> L1 (1 transit).
Trace fixture() {
  Trace t(2, 3);
  t.add_visit({0, 0, 0.0, 1.0 * kHour});
  t.add_visit({0, 1, 2.0 * kHour, 3.0 * kHour});
  t.add_visit({0, 0, 4.0 * kHour, 5.0 * kHour});
  t.add_visit({0, 1, 6.0 * kHour, 7.0 * kHour});
  t.add_visit({1, 2, 0.5 * kHour, 1.5 * kHour});
  t.add_visit({1, 1, 2.5 * kHour, 3.5 * kHour});
  t.finalize();
  return t;
}

TEST(VisitCountMatrix, CountsPerNodeAndLandmark) {
  const auto m = visit_count_matrix(fixture());
  EXPECT_EQ(m.at(0, 0), 2u);
  EXPECT_EQ(m.at(0, 1), 2u);
  EXPECT_EQ(m.at(0, 2), 0u);
  EXPECT_EQ(m.at(1, 1), 1u);
  EXPECT_EQ(m.at(1, 2), 1u);
}

TEST(LandmarksByPopularity, OrderedByTotalVisits) {
  const auto order = landmarks_by_popularity(fixture());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);  // 3 visits
  EXPECT_EQ(order[1], 0u);  // 2 visits
  EXPECT_EQ(order[2], 2u);  // 1 visit
}

// Regression pin for the city-scale counter widening: a year of a
// 100k-node city trace puts per-landmark visit aggregates past 2^32, so
// the count matrices must stay 64-bit.  The static_asserts fail the
// build if anyone narrows them back; the arithmetic check exercises the
// same `++cell` accumulation the counting loops perform, across the
// exact 32-bit boundary where a narrower cell would wrap to zero.
TEST(CountMatrices, SurviveThe32BitBoundary) {
  static_assert(
      std::is_same_v<decltype(visit_count_matrix(std::declval<Trace>())),
                     FlatMatrix<std::uint64_t>>,
      "visit counts must be 64-bit for city-scale traces");
  static_assert(
      std::is_same_v<decltype(transit_count_matrix(std::declval<Trace>())),
                     FlatMatrix<std::uint64_t>>,
      "transit counts must be 64-bit for city-scale traces");
  FlatMatrix<std::uint64_t> m(1, 1);
  m.at(0, 0) = std::numeric_limits<std::uint32_t>::max();
  ++m.at(0, 0);
  EXPECT_EQ(m.at(0, 0), 4294967296ULL);
  ++m.at(0, 0);
  EXPECT_EQ(m.at(0, 0), 4294967297ULL);
}

TEST(TransitCountMatrix, DirectedCounts) {
  const auto m = transit_count_matrix(fixture());
  EXPECT_EQ(m.at(0, 1), 2u);
  EXPECT_EQ(m.at(1, 0), 1u);
  EXPECT_EQ(m.at(2, 1), 1u);
  EXPECT_EQ(m.at(1, 2), 0u);
}

TEST(LinkBandwidths, SortedDescendingAndScaled) {
  const Trace t = fixture();
  // Duration 7h; unit 3.5h -> 2 units.
  const auto links = link_bandwidths(t, 3.5 * kHour);
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0].from, 0u);
  EXPECT_EQ(links[0].to, 1u);
  EXPECT_DOUBLE_EQ(links[0].bandwidth, 1.0);  // 2 transits / 2 units
  for (std::size_t i = 1; i < links.size(); ++i) {
    EXPECT_GE(links[i - 1].bandwidth, links[i].bandwidth);
  }
}

TEST(LinkBandwidths, OmitsZeroLinks) {
  const auto links = link_bandwidths(fixture(), kHour);
  for (const auto& l : links) EXPECT_GT(l.bandwidth, 0.0);
}

TEST(LinkBandwidthSeries, PerUnitCounts) {
  const Trace t = fixture();
  // Transits on 0->1 arrive at t=2h and t=6h; unit = 4h -> units [0,4h),[4h,8h).
  const auto series = link_bandwidth_series(t, 0, 1, 4.0 * kHour);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);
  EXPECT_DOUBLE_EQ(series[1], 1.0);
}

TEST(LinkBandwidthSeries, EmptyLink) {
  const auto series = link_bandwidth_series(fixture(), 2, 0, kHour);
  for (double v : series) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(MatchingLinkSymmetry, PerfectlySymmetricTrace) {
  // Two nodes ping-pong between L0 and L1 equally.
  Trace t(2, 2);
  for (int i = 0; i < 4; ++i) {
    const double base = i * 4.0 * kHour;
    t.add_visit({0, static_cast<LandmarkId>(i % 2), base, base + kHour});
    t.add_visit({1, static_cast<LandmarkId>((i + 1) % 2), base, base + kHour});
  }
  t.finalize();
  // Only one unordered pair with traffic: correlation degenerate -> 1.
  EXPECT_DOUBLE_EQ(matching_link_symmetry(t), 1.0);
}

TEST(Characterize, TableOneRow) {
  const auto c = characterize(fixture());
  EXPECT_EQ(c.num_nodes, 2u);
  EXPECT_EQ(c.num_landmarks, 3u);
  EXPECT_EQ(c.num_visits, 6u);
  EXPECT_EQ(c.num_transits, 4u);
  EXPECT_NEAR(c.duration_days, 7.0 / 24.0, 1e-9);
  EXPECT_NEAR(c.mean_visit_minutes, 60.0, 1e-9);
}

}  // namespace
}  // namespace dtn::trace
