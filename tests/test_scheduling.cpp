// §IV-D.5 communication scheduling: the landmark channel alternates
// between uploading and forwarding modes by the ratio of station-held
// packets to packets on connected nodes, with B_up bounding uploads.
#include <gtest/gtest.h>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "test_helpers.hpp"

namespace dtn::core {
namespace {

using dtn::testing::relay_chain_trace;
using net::Network;
using net::WorkloadConfig;
using trace::kDay;
using trace::kMinute;

WorkloadConfig quiet() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 200;
  cfg.ttl = 2.0 * kDay;
  return cfg;
}

TEST(Scheduling, StillDeliversAlongChain) {
  const auto trace = relay_chain_trace(10.0);
  DtnFlowConfig rc;
  rc.scheduled_communication = true;
  DtnFlowRouter router(rc);
  auto cfg = quiet();
  cfg.manual_packets = {{0, 3, 5.0 * kDay, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(Scheduling, UploadCapBoundsPerArrivalUploads) {
  // A carrier holding many packets may only upload B_up per association
  // in uploading mode.
  const auto trace = relay_chain_trace(10.0);
  DtnFlowConfig rc;
  rc.scheduled_communication = true;
  rc.max_uploads_per_arrival = 3;
  DtnFlowRouter router(rc);
  auto cfg = quiet();
  // 12 packets from L0 to L2 generated in one of node 0's L0 windows:
  // node 0 carries them all to L1 but may only upload 3 per visit.
  for (int i = 0; i < 12; ++i) {
    cfg.manual_packets.push_back(
        {0, 2, 5.0 * kDay + (i + 1) * kMinute, 0.0});
  }
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  // Deliveries trickle in over several shuttle cycles instead of one:
  // at most 3 packets can land at L1 per node-0 visit, so the spread
  // between first and last delivery spans multiple 2 h periods.
  const auto& delays = net.counters().delivery_delays;
  ASSERT_GE(delays.size(), 6u);
  const auto [min_it, max_it] =
      std::minmax_element(delays.begin(), delays.end());
  EXPECT_GT(*max_it - *min_it, 3.0 * 3600.0);
}

TEST(Scheduling, ModeRespondsToBacklogRatio) {
  // Observe the mode of the middle landmark: with a station piled full
  // of packets and empty-handed visitors it must be in forwarding mode.
  const auto trace = relay_chain_trace(12.0);
  DtnFlowConfig rc;
  rc.scheduled_communication = true;
  DtnFlowRouter router(rc);
  auto cfg = quiet();
  cfg.node_memory_kb = 2;  // tiny carriers: station backlog builds at L1
  for (int i = 0; i < 60; ++i) {
    cfg.manual_packets.push_back(
        {0, 3, 4.0 * kDay + i * 5.0 * kMinute, 0.0});
  }
  Network net(trace, router, cfg);
  net.run();
  // After the run L1 accumulated a backlog (node buffers hold 2):
  // its channel must have switched to forwarding mode.
  if (net.station_packets(1).size() > 4) {
    EXPECT_FALSE(router.landmark_uploading_mode(1));
  }
  // L3 never stores packets (it is the destination): stays uploading.
  EXPECT_TRUE(router.landmark_uploading_mode(3));
}

TEST(Scheduling, ComparableSuccessToUnscheduled) {
  // The scheduler reorders service but must not break routing: success
  // stays within a reasonable band of the unscheduled variant.
  const auto trace = relay_chain_trace(14.0);
  auto cfg = quiet();
  cfg.node_memory_kb = 10;
  for (int i = 0; i < 100; ++i) {
    cfg.manual_packets.push_back(
        {0, 3, 4.0 * kDay + i * 10.0 * kMinute, 0.0});
  }
  auto run_with = [&](bool scheduled) {
    DtnFlowConfig rc;
    rc.scheduled_communication = scheduled;
    DtnFlowRouter router(rc);
    Network net(trace, router, cfg);
    net.run();
    return net.counters().delivered;
  };
  const auto unscheduled = run_with(false);
  const auto scheduled = run_with(true);
  EXPECT_GT(scheduled, unscheduled / 2);
}

}  // namespace
}  // namespace dtn::core
