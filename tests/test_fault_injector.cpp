// Fault-injection subsystem tests (docs/fault-injection.md), three layers:
//
//  * unit — FaultPlan validation rejects malformed plans with messages
//    that name the offending knob, the CLI parser round-trips every
//    --fault-* flag and fails loudly on typos, and the injector's
//    bookkeeping/draw helpers honour their determinism contract;
//  * scenario — scheduled and stochastic faults produce the advertised
//    resilience counters and the router's graceful-degradation
//    diagnostics (fallback next hops, staleness expiry, DV loss/delay,
//    §IV-E recovery under injected faults);
//  * audit — the fault-state invariant checks actually detect seeded
//    ledger/counter corruption (corrupt -> detect -> revert).
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "sim/invariant_auditor.hpp"
#include "test_helpers.hpp"
#include "util/cli.hpp"

namespace dtn {
namespace {

using core::DtnFlowConfig;
using core::DtnFlowRouter;
using dtn::testing::relay_chain_trace;
using net::Network;
using net::WorkloadConfig;
using sim::AuditReport;
using sim::FaultInjector;
using sim::FaultPlan;
using trace::kDay;
using trace::kHour;
using trace::kMinute;

// Manual-packet workload over the relay chain (mirrors the determinism
// suite's): 40 packets L0 -> L3, RNG-free.
WorkloadConfig chain_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 10;
  cfg.ttl = 2.0 * kDay;
  for (int i = 0; i < 40; ++i) {
    cfg.manual_packets.push_back({0, 3, 4.0 * kDay + i * 10.0 * kMinute, 0.0});
  }
  return cfg;
}

std::string validation_error(const FaultPlan& plan, std::size_t nodes = 3,
                             std::size_t landmarks = 4) {
  try {
    plan.validate(nodes, landmarks);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

// -- FaultPlan validation ------------------------------------------------

TEST(FaultPlan, DefaultPlanIsInertAndValid) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_EQ(validation_error(plan), "");
}

TEST(FaultPlan, AnyReflectsEveryFaultFamily) {
  FaultPlan p;
  p.node_crashes.push_back({0, 1.0 * kDay, kHour});
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.node_crash_rate_per_day = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.station_outages.push_back({0, 1.0 * kDay, 2.0 * kDay});
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.station_outage_rate_per_day = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.transfer_failure_prob = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.dv_loss_prob = 0.1;
  EXPECT_TRUE(p.any());
  p = FaultPlan{};
  p.dv_delay_prob = 0.1;
  EXPECT_TRUE(p.any());
}

TEST(FaultPlan, ValidationRejectsBadRatesAndProbabilities) {
  FaultPlan p;
  p.node_crash_rate_per_day = -0.5;
  EXPECT_NE(validation_error(p).find("fault plan:"), std::string::npos)
      << validation_error(p);

  p = FaultPlan{};
  p.transfer_failure_prob = 1.5;
  EXPECT_NE(validation_error(p), "");

  p = FaultPlan{};
  p.dv_loss_prob = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NE(validation_error(p), "");

  p = FaultPlan{};
  p.crash_buffer_loss = -0.1;
  EXPECT_NE(validation_error(p), "");

  p = FaultPlan{};
  p.transfer_failure_prob = 0.1;
  p.retry_backoff = -1.0;
  EXPECT_NE(validation_error(p), "");

  p = FaultPlan{};
  p.transfer_failure_prob = 0.1;
  p.retry_backoff = kHour;
  p.retry_backoff_max = kMinute;  // cap below the base backoff
  EXPECT_NE(validation_error(p), "");

  p = FaultPlan{};
  p.node_crash_rate_per_day = 0.1;
  p.node_mean_downtime = 0.0;
  EXPECT_NE(validation_error(p), "");
}

TEST(FaultPlan, ValidationRejectsUnknownIds) {
  FaultPlan p;
  p.node_crashes.push_back({7, 1.0 * kDay, kHour});  // trace has 3 nodes
  const auto err = validation_error(p);
  EXPECT_NE(err.find("unknown node"), std::string::npos) << err;
  EXPECT_NE(err.find('7'), std::string::npos) << err;

  p = FaultPlan{};
  p.station_outages.push_back({9, 1.0 * kDay, 2.0 * kDay});  // 4 landmarks
  EXPECT_NE(validation_error(p), "");
}

TEST(FaultPlan, ValidationRejectsOverlappingWindows) {
  // Two crashes of one node whose down windows overlap: the second
  // would fire while the node is still down (the double-crash abort).
  FaultPlan p;
  p.node_crashes.push_back({0, 1.0 * kDay, 12.0 * kHour});
  p.node_crashes.push_back({0, 1.0 * kDay + 6.0 * kHour, kHour});
  const auto err = validation_error(p);
  EXPECT_NE(err.find("overlapping"), std::string::npos) << err;

  // Same for station outage windows.
  FaultPlan q;
  q.station_outages.push_back({2, 1.0 * kDay, 2.0 * kDay});
  q.station_outages.push_back({2, 1.5 * kDay, 3.0 * kDay});
  EXPECT_NE(validation_error(q).find("overlapping"), std::string::npos);

  // Different ids never conflict.
  FaultPlan r;
  r.node_crashes.push_back({0, 1.0 * kDay, 12.0 * kHour});
  r.node_crashes.push_back({1, 1.0 * kDay, 12.0 * kHour});
  EXPECT_EQ(validation_error(r), "");
}

TEST(FaultPlan, NetworkConstructionRejectsMalformedPlan) {
  const auto trace = relay_chain_trace(2.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->node_crashes.push_back({99, 1.0 * kDay, kHour});
  DtnFlowRouter router;
  EXPECT_THROW(Network(trace, router, cfg), std::invalid_argument);
}

// -- CLI parsing ---------------------------------------------------------

std::optional<FaultPlan> parse_cli(std::vector<std::string> extra) {
  std::vector<std::string> args = {"prog"};
  args.insert(args.end(), extra.begin(), extra.end());
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const auto& a : args) argv.push_back(a.c_str());
  const CliOptions opts(static_cast<int>(argv.size()), argv.data());
  return sim::fault_plan_from_cli(opts);
}

TEST(FaultPlanCli, NoFaultFlagsYieldNoPlan) {
  EXPECT_FALSE(parse_cli({"--router", "DTN-FLOW"}).has_value());
}

TEST(FaultPlanCli, ParsesEveryKnob) {
  const auto plan = parse_cli(
      {"--fault-node-crash-rate", "0.25", "--fault-node-downtime", "7200",
       "--fault-crash-loss", "0.5", "--fault-station-outage-rate", "0.125",
       "--fault-station-outage-duration", "1800", "--fault-transfer-fail",
       "0.0625", "--fault-retry-backoff", "300", "--fault-retry-backoff-max",
       "1200", "--fault-dv-loss", "0.03125", "--fault-dv-delay", "0.015625",
       "--fault-seed", "42"});
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->node_crash_rate_per_day, 0.25);
  EXPECT_EQ(plan->node_mean_downtime, 7200.0);
  EXPECT_EQ(plan->crash_buffer_loss, 0.5);
  EXPECT_EQ(plan->station_outage_rate_per_day, 0.125);
  EXPECT_EQ(plan->station_mean_outage, 1800.0);
  EXPECT_EQ(plan->transfer_failure_prob, 0.0625);
  EXPECT_EQ(plan->retry_backoff, 300.0);
  EXPECT_EQ(plan->retry_backoff_max, 1200.0);
  EXPECT_EQ(plan->dv_loss_prob, 0.03125);
  EXPECT_EQ(plan->dv_delay_prob, 0.015625);
  EXPECT_EQ(plan->seed, 42u);
  EXPECT_TRUE(plan->any());
}

TEST(FaultPlanCli, UnknownFaultKeyFailsLoudly) {
  try {
    (void)parse_cli({"--fault-transfre-fail", "0.1"});  // typo
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown fault option"), std::string::npos) << what;
    EXPECT_NE(what.find("fault-transfre-fail"), std::string::npos) << what;
    EXPECT_NE(what.find("docs/fault-injection.md"), std::string::npos) << what;
  }
}

// -- injector unit behaviour --------------------------------------------

TEST(FaultInjectorUnit, RetryBackoffDoublesUpToCap) {
  FaultPlan p;
  p.transfer_failure_prob = 0.5;
  p.retry_backoff = 600.0;
  p.retry_backoff_max = 3600.0;
  FaultInjector inj(p, 3, 4);
  EXPECT_EQ(inj.retry_backoff(1), 600.0);
  EXPECT_EQ(inj.retry_backoff(2), 1200.0);
  EXPECT_EQ(inj.retry_backoff(3), 2400.0);
  EXPECT_EQ(inj.retry_backoff(4), 3600.0);
  EXPECT_EQ(inj.retry_backoff(9), 3600.0);  // capped, no overflow
}

TEST(FaultInjectorUnit, OutageSetBookkeeping) {
  FaultInjector inj(FaultPlan{}, 3, 4);
  EXPECT_EQ(inj.nodes_down(), 0u);
  EXPECT_EQ(inj.stations_down(), 0u);
  inj.mark_node_down(1);
  inj.mark_station_down(2);
  inj.mark_station_down(3);
  EXPECT_TRUE(inj.node_down(1));
  EXPECT_FALSE(inj.node_down(0));
  EXPECT_TRUE(inj.station_down(2));
  EXPECT_EQ(inj.nodes_down(), 1u);
  EXPECT_EQ(inj.stations_down(), 2u);
  inj.mark_node_up(1);
  inj.mark_station_up(2);
  EXPECT_FALSE(inj.node_down(1));
  EXPECT_EQ(inj.stations_down(), 1u);

  AuditReport report;
  inj.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultInjectorUnit, DegenerateProbabilitiesNeedNoRandomness) {
  FaultPlan p;
  p.crash_buffer_loss = 1.0;
  FaultInjector all(p, 3, 4);
  p.crash_buffer_loss = 0.0;
  FaultInjector none(p, 3, 4);
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(all.draw_crash_packet_loss());
    EXPECT_FALSE(none.draw_crash_packet_loss());
  }
  // Zero-probability control faults likewise never fire.
  EXPECT_FALSE(none.draw_dv_loss());
  EXPECT_FALSE(none.draw_dv_delay());
}

TEST(FaultInjectorUnit, SameSeedSameDrawSequence) {
  FaultPlan p;
  p.seed = 1234;
  p.transfer_failure_prob = 0.5;
  p.node_crash_rate_per_day = 0.5;
  p.station_outage_rate_per_day = 0.5;
  FaultInjector a(p, 3, 4);
  FaultInjector b(p, 3, 4);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(a.draw_transfer_failure(), b.draw_transfer_failure());
    EXPECT_EQ(a.draw_crash_gap(), b.draw_crash_gap());
    EXPECT_EQ(a.draw_outage_gap(), b.draw_outage_gap());
    EXPECT_EQ(a.draw_downtime(), b.draw_downtime());
    EXPECT_EQ(a.draw_outage_duration(), b.draw_outage_duration());
  }
}

TEST(FaultInjectorDeathTest, DoubleCrashAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        FaultInjector inj(FaultPlan{}, 3, 4);
        inj.mark_node_down(0);
        inj.mark_node_down(0);  // plan bug: node is already down
      },
      "");
}

// -- scenarios over the relay chain -------------------------------------

TEST(FaultRun, ScheduledCrashLosesBufferedPackets) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  // Node 0 ferries every packet off L0; crash it mid-transit (after it
  // leaves L0 loaded, before it can upload at L1) with full buffer loss
  // and keep it down for a day.
  cfg.faults->node_crashes.push_back(
      {0, 4.0 * kDay + 45.0 * kMinute, 1.0 * kDay});
  cfg.faults->crash_buffer_loss = 1.0;
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();

  const auto& c = net.counters();
  EXPECT_EQ(c.node_crashes, 1u);
  EXPECT_EQ(c.node_reboots, 1u);
  EXPECT_GT(c.packets_lost_fault, 0u);
  EXPECT_GE(c.kb_lost_fault, c.packets_lost_fault);  // >=1 kB per packet
  EXPECT_EQ(c.delivered + c.packets_lost_fault + c.dropped_ttl, c.generated);
  // The crash also destroys any distance vector the node was carrying
  // (or at least fires the router's crash hook).
  EXPECT_LT(c.delivered, c.generated);
}

TEST(FaultRun, CrashWithoutBufferLossPreservesPackets) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->node_crashes.push_back(
      {0, 4.0 * kDay + 45.0 * kMinute, 2.0 * kHour});
  cfg.faults->crash_buffer_loss = 0.0;  // buffer survives the reboot
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_EQ(net.counters().node_crashes, 1u);
  EXPECT_EQ(net.counters().packets_lost_fault, 0u);
  EXPECT_GT(net.counters().delivered, 0u);
}

TEST(FaultRun, ScheduledOutageIsMeasuredThroughRecovery) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  // Take the mid-chain station down across the packet burst.
  cfg.faults->station_outages.push_back({1, 4.0 * kDay, 4.5 * kDay});
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();

  const auto& c = net.counters();
  EXPECT_EQ(c.station_outages, 1u);
  EXPECT_EQ(c.station_recoveries, 1u);
  // Recovery time was measured: recovery -> first successful station
  // transfer at L1 (the next shuttle visit, so well under a period).
  ASSERT_EQ(c.outage_recovery_delays.size(), 1u);
  EXPECT_GT(c.outage_recovery_delays[0], 0.0);
  EXPECT_LE(c.outage_recovery_delays[0], 4.0 * kHour);
  // The router saw the outage and the recovery through its hooks.
  EXPECT_EQ(router.diagnostics().station_outages_seen, 1u);
  EXPECT_EQ(router.diagnostics().station_recoveries_seen, 1u);
  // Traffic still flows once the station is back.
  EXPECT_GT(c.delivered, 0u);
}

TEST(FaultRun, TransferFailuresRetryAndResume) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->transfer_failure_prob = 0.2;
  cfg.faults->retry_backoff = 10.0 * kMinute;
  cfg.faults->retry_backoff_max = kHour;
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();

  const auto& c = net.counters();
  EXPECT_GT(c.transfers_interrupted, 0u);
  // Packets interrupted mid-contact later made it across: the
  // retry/backoff ledger resumed them instead of losing them.
  EXPECT_GT(c.transfers_resumed, 0u);
  EXPECT_GT(c.delivered, 0u);
}

TEST(FaultRun, CertainTransferFailureBlocksEverything) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->transfer_failure_prob = 1.0;
  cfg.faults->retry_backoff = 30.0 * kDay;  // never retries within TTL
  cfg.faults->retry_backoff_max = 30.0 * kDay;
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_EQ(net.counters().delivered, 0u);
  EXPECT_GT(net.counters().transfers_interrupted, 0u);
  EXPECT_EQ(net.counters().transfers_resumed, 0u);
  // Re-attempts inside the (enormous) backoff window are refused
  // outright rather than drawn again.
  EXPECT_GT(net.counters().transfers_blocked_fault, 0u);
}

TEST(FaultRun, FaultedRunsAreBitReproducible) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.packets_per_landmark_per_day = 4.0;  // add RNG-driven workload too
  cfg.faults.emplace();
  cfg.faults->seed = 99;
  cfg.faults->node_crash_rate_per_day = 0.2;
  cfg.faults->node_mean_downtime = 6.0 * kHour;
  cfg.faults->station_outage_rate_per_day = 0.2;
  cfg.faults->station_mean_outage = 6.0 * kHour;
  cfg.faults->transfer_failure_prob = 0.1;
  cfg.faults->dv_loss_prob = 0.05;
  cfg.faults->dv_delay_prob = 0.1;

  auto run_once = [&] {
    DtnFlowRouter router;
    Network net(trace, router, cfg);
    net.run();
    net.validate_invariants();
    return net.counters();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);  // bit-exact, vectors included
  // The stochastic plan actually did something.
  EXPECT_GT(a.node_crashes + a.station_outages + a.transfers_interrupted, 0u);
}

TEST(FaultRun, DifferentFaultSeedsDiverge) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->node_crash_rate_per_day = 0.5;
  cfg.faults->station_outage_rate_per_day = 0.5;
  cfg.faults->transfer_failure_prob = 0.2;

  auto counters_with_seed = [&](std::uint64_t seed) {
    auto wl = cfg;
    wl.faults->seed = seed;
    DtnFlowRouter router;
    Network net(trace, router, wl);
    net.run();
    return net.counters();
  };
  EXPECT_NE(counters_with_seed(1), counters_with_seed(2));
}

// -- control-plane faults and graceful degradation ----------------------

TEST(FaultRun, DvLossStarvesRoutingConvergence) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->dv_loss_prob = 1.0;  // every carried DV dies in transit
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_GT(router.diagnostics().dv_carriers_lost, 0u);
  // With no DV ever delivered, remote routes never form and control
  // traffic stays below the healthy run's.
  DtnFlowRouter healthy_router;
  Network healthy(trace, healthy_router, chain_workload());
  healthy.run();
  EXPECT_LT(net.counters().control_entries, healthy.counters().control_entries);
}

TEST(FaultRun, DvDelayDefersButEventuallyConverges) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->dv_delay_prob = 0.5;
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_GT(router.diagnostics().dv_deliveries_deferred, 0u);
  // Delay is not loss: packets still get through.
  EXPECT_GT(net.counters().delivered, 0u);
}

TEST(FaultRun, StalenessExpiryWithdrawsSilentOrigins) {
  const auto trace = relay_chain_trace(14.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  // L1 goes dark for 4 days: its DVs stop arriving anywhere, so with
  // staleness expiry on (2 units = 1 day) the other landmarks withdraw
  // the routes L1 advertised instead of steering through a dead station.
  cfg.faults->station_outages.push_back({1, 5.0 * kDay, 9.0 * kDay});
  DtnFlowConfig rc;
  rc.route_staleness_units = 2.0;
  DtnFlowRouter router(rc);
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_GT(router.diagnostics().stale_origins_expired, 0u);
  // After the recovery the first accepted DV re-converges the tables.
  EXPECT_GT(router.diagnostics().post_outage_reconvergences, 0u);
}

TEST(FaultRun, FallbackNextHopRoutesAroundOutage) {
  // Diamond: dst 3 reachable via 1 (fast, every period) or via 2 (slow,
  // every other period) — the primary next hop from L0 is 1 with backup
  // 2.  An outage on station 1 across the burst forces dispatch onto
  // the backup.
  trace::Trace t(4, 4);
  const double period = 2.0 * kHour;
  const auto periods = static_cast<std::size_t>(20.0 * kDay / period);
  auto add_shuttle = [&](std::uint32_t node, std::uint32_t a, std::uint32_t b,
                         double offset, std::size_t every) {
    for (std::size_t p = 0; p < periods; p += every) {
      const double base = static_cast<double>(p) * period + offset;
      t.add_visit({node, a, base, base + 20.0 * kMinute});
      t.add_visit({node, b, base + 40.0 * kMinute, base + 60.0 * kMinute});
    }
  };
  add_shuttle(0, 0, 1, 0.0, 1);             // A: the fast primary leg
  add_shuttle(1, 1, 3, 61.0 * kMinute, 1);  // B
  add_shuttle(2, 0, 2, 2.0 * kMinute, 2);   // C: slower backup leg
  add_shuttle(3, 2, 3, 63.0 * kMinute, 2);  // D
  t.finalize();

  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 5.0 * kDay;
  for (int i = 0; i < 40; ++i) {
    cfg.manual_packets.push_back({0, 3, 8.0 * kDay + i * 10.0 * kMinute, 0.0});
  }
  cfg.faults.emplace();
  cfg.faults->station_outages.push_back({1, 8.0 * kDay, 12.0 * kDay});

  DtnFlowRouter router;
  Network net(t, router, cfg);
  net.run();
  net.validate_invariants();
  // Dispatch fell back to the surviving route and packets arrived
  // through it while the primary was dark.
  EXPECT_GT(router.diagnostics().fallback_next_hops, 0u);
  EXPECT_GT(net.counters().delivered, 0u);
}

// -- §IV-E recovery mechanisms under injected faults ---------------------

TEST(FaultRun, LoopCorrectionSurvivesCarrierCrash) {
  const auto trace = relay_chain_trace(16.0);
  DtnFlowConfig rc;
  rc.loop_correction = true;
  // Pin a 0<->1 routing cycle for destination 3 once tables have formed
  // (unit 8 = day 4), then crash the carrier serving the looped leg
  // while the correction machinery is active.
  rc.loop_injections = {{3, {0, 1}, 8}};
  DtnFlowRouter router(rc);
  auto cfg = chain_workload();
  cfg.ttl = 6.0 * kDay;
  cfg.manual_packets.clear();
  cfg.manual_packets.push_back({0, 3, 6.0 * kDay, 0.0});
  cfg.faults.emplace();
  cfg.faults->node_crashes.push_back({0, 6.0 * kDay + 2.0 * kHour, 12.0 * kHour});
  cfg.faults->crash_buffer_loss = 0.0;  // the crash tests control flow,
                                        // not packet loss
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  // The loop was still detected and corrected despite the crash in the
  // middle of the ping-pong, and the packet escaped the cycle.
  EXPECT_GT(router.diagnostics().loops_detected, 0u);
  EXPECT_GT(router.diagnostics().loops_corrected, 0u);
  EXPECT_EQ(net.counters().delivered, 1u);
}

// The §IV-E.1 dead-end trace from the router suite: node D shuttles
// L0<->L1 then unexpectedly parks at L2 ("garage") until the end; node
// E shuttles L2<->L1 every other period and is the only way out of L2.
trace::Trace dead_end_trace(double park_at, double days) {
  trace::Trace t(2, 3);
  const double period = 2.0 * kHour;
  const auto periods = static_cast<std::size_t>(days * kDay / period);
  for (std::size_t p = 0; p < periods; ++p) {
    const double base = static_cast<double>(p) * period;
    if (base + period <= park_at) {
      t.add_visit({0, 0, base, base + 30.0 * kMinute});
      t.add_visit({0, 1, base + 60.0 * kMinute, base + 90.0 * kMinute});
    }
    if (p % 2 == 0) {
      t.add_visit({1, 2, base + 30.0 * kMinute, base + 55.0 * kMinute});
      t.add_visit({1, 1, base + 95.0 * kMinute, base + 115.0 * kMinute});
    }
  }
  t.add_visit({0, 0, park_at, park_at + 30.0 * kMinute});
  t.add_visit({0, 2, park_at + 60.0 * kMinute, days * kDay});
  t.finalize();
  return t;
}

TEST(FaultRun, DeadEndRescueWaitsOutStationOutage) {
  // D parks at L2 with the packet while L2's *station* is down: the
  // dead-end rescue (hand the stranded packet to the local station)
  // must defer until the station recovers, then still get the packet
  // home — §IV-E.1 exercised by an injected outage, not inject_loop.
  const double park_day = 6.0;
  const auto trace = dead_end_trace(park_day * kDay, 12.0);

  auto run_with_outage_until = [&](double outage_end_day) {
    core::DtnFlowConfig rc;
    rc.dead_end_prevention = true;
    rc.dead_end_theta = 2.0;
    rc.dead_end_min_records = 5;
    DtnFlowRouter router(rc);
    WorkloadConfig cfg;
    cfg.packets_per_landmark_per_day = 0.0;
    cfg.warmup_fraction = 0.0;
    cfg.time_unit = 0.5 * kDay;
    cfg.node_memory_kb = 10;
    cfg.ttl = 5.0 * kDay;
    cfg.manual_packets = {{0, 1, park_day * kDay + 10.0 * kMinute, 0.0}};
    cfg.faults.emplace();
    cfg.faults->station_outages.push_back(
        {2, park_day * kDay, outage_end_day * kDay});
    Network net(trace, router, cfg);
    net.run();
    net.validate_invariants();
    const auto& c = net.counters();
    return std::make_tuple(c.delivered, router.diagnostics().dead_ends_detected,
                           c.delivery_delays.empty() ? 0.0
                                                     : c.delivery_delays[0]);
  };

  const auto [delivered_short, deadends_short, delay_short] =
      run_with_outage_until(6.5);
  const auto [delivered_long, deadends_long, delay_long] =
      run_with_outage_until(9.0);
  // Both outages end in time: the rescue fires after recovery and the
  // packet is delivered either way, just later under the longer outage.
  EXPECT_EQ(delivered_short, 1u);
  EXPECT_GT(deadends_short, 0u);
  EXPECT_EQ(delivered_long, 1u);
  EXPECT_GT(deadends_long, 0u);
  EXPECT_GT(delay_long, delay_short);
}

TEST(FaultRun, DeadEndDetectionIgnoresCrashedCarriers) {
  // A crashed node must not be flagged as a dead-ended carrier while it
  // is down: the §IV-E.1 rescue scan skips down nodes, and the run's
  // invariants (including the carrier-score cache audit) stay clean.
  const auto trace = relay_chain_trace(12.0);
  DtnFlowConfig rc;
  rc.dead_end_prevention = true;
  DtnFlowRouter router(rc);
  auto cfg = chain_workload();
  cfg.audit_period_events = 256;  // periodic audits throughout the run
  cfg.faults.emplace();
  cfg.faults->node_crashes.push_back({1, 4.0 * kDay, 2.0 * kDay});
  cfg.faults->crash_buffer_loss = 1.0;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_GT(net.auditor().audits_run(), 0u);
  EXPECT_EQ(net.counters().node_crashes, 1u);
}

// -- fault-state invariant auditing (negative tests) ---------------------

bool any_failure_mentions(const AuditReport& report, const std::string& what) {
  for (const auto& f : report.failures()) {
    if (f.detail.find(what) != std::string::npos ||
        f.check.find(what) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(FaultAudit, HealthyFaultedRunPassesEveryCheck) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->node_crashes.push_back({0, 4.0 * kDay, 12.0 * kHour});
  cfg.faults->transfer_failure_prob = 0.2;
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  AuditReport report;
  net.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FaultAudit, DetectsLedgerIndexCorruption) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  // Every attempt fails and both the backoff and the TTL outlive the
  // trace: the ledger still holds live entries when the run ends (a TTL
  // drop would erase its packet's entry).
  cfg.ttl = 30.0 * kDay;
  cfg.faults->transfer_failure_prob = 1.0;
  cfg.faults->retry_backoff = 30.0 * kDay;
  cfg.faults->retry_backoff_max = 30.0 * kDay;
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();

  ASSERT_TRUE(net.debug_corrupt_for_test(Network::Corruption::kLedgerIndex));
  AuditReport corrupted;
  net.audit(corrupted);
  EXPECT_FALSE(corrupted.ok());
  EXPECT_TRUE(any_failure_mentions(corrupted, "ledger"))
      << corrupted.to_string();

  // Revert: the failure came from the seeded corruption, not from
  // ambient state.
  ASSERT_TRUE(
      net.debug_corrupt_for_test(Network::Corruption::kLedgerIndex, -1));
  AuditReport reverted;
  net.audit(reverted);
  EXPECT_TRUE(reverted.ok()) << reverted.to_string();
}

TEST(FaultAudit, DetectsLossCounterCorruption) {
  const auto trace = relay_chain_trace(10.0);
  auto cfg = chain_workload();
  cfg.faults.emplace();
  cfg.faults->node_crashes.push_back(
      {0, 4.0 * kDay + 45.0 * kMinute, 1.0 * kDay});
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  ASSERT_GT(net.counters().packets_lost_fault, 0u);

  ASSERT_TRUE(
      net.debug_corrupt_for_test(Network::Corruption::kFaultLossCounter));
  AuditReport corrupted;
  net.audit(corrupted);
  EXPECT_FALSE(corrupted.ok());
  EXPECT_TRUE(any_failure_mentions(corrupted, "fault"))
      << corrupted.to_string();

  ASSERT_TRUE(
      net.debug_corrupt_for_test(Network::Corruption::kFaultLossCounter, -1));
  AuditReport reverted;
  net.audit(reverted);
  EXPECT_TRUE(reverted.ok()) << reverted.to_string();
}

}  // namespace
}  // namespace dtn
