#include "metrics/observer.hpp"

#include <gtest/gtest.h>

#include "routing/factory.hpp"
#include "test_helpers.hpp"

namespace dtn::metrics {
namespace {

using dtn::testing::relay_chain_trace;
using trace::kDay;

net::WorkloadConfig workload() {
  net::WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 10.0;
  cfg.warmup_fraction = 0.25;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 20;
  cfg.ttl = 2.0 * kDay;
  cfg.seed = 3;
  return cfg;
}

TEST(ObservedRouter, ForwardsBehaviorUnchanged) {
  const auto trace = relay_chain_trace(8.0);
  // The wrapped router must produce byte-identical results.
  const auto plain_router = routing::make_router("DTN-FLOW");
  net::Network plain(trace, *plain_router, workload());
  plain.run();

  ObservedRouter observed(routing::make_router("DTN-FLOW"));
  net::Network wrapped(trace, observed, workload());
  wrapped.run();

  EXPECT_EQ(plain.counters().delivered, wrapped.counters().delivered);
  EXPECT_EQ(plain.counters().packet_forwards,
            wrapped.counters().packet_forwards);
  EXPECT_DOUBLE_EQ(plain.counters().control_entries,
                   wrapped.counters().control_entries);
}

TEST(ObservedRouter, OneSamplePerTimeUnit) {
  const auto trace = relay_chain_trace(8.0);
  ObservedRouter observed(routing::make_router("DTN-FLOW"));
  net::Network net(trace, observed, workload());
  net.run();
  const auto& samples = observed.samples();
  // 8 days / 0.5-day units -> 16 boundaries, the final one may exceed
  // the trace end and be skipped.
  EXPECT_GE(samples.size(), 14u);
  EXPECT_LE(samples.size(), 16u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GT(samples[i].time, samples[i - 1].time);
    EXPECT_EQ(samples[i].unit, samples[i - 1].unit + 1);
  }
}

TEST(ObservedRouter, CumulativeCountersMonotone) {
  const auto trace = relay_chain_trace(10.0);
  ObservedRouter observed(routing::make_router("DTN-FLOW"));
  net::Network net(trace, observed, workload());
  net.run();
  const auto& samples = observed.samples();
  ASSERT_GE(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].generated, samples[i - 1].generated);
    EXPECT_GE(samples[i].delivered, samples[i - 1].delivered);
    EXPECT_GE(samples[i].dropped_ttl, samples[i - 1].dropped_ttl);
  }
  EXPECT_GT(samples.back().generated, 0u);
}

TEST(ObservedRouter, StationBacklogOnlyForStationRouters) {
  const auto trace = relay_chain_trace(8.0);
  ObservedRouter direct(routing::make_router("Direct"));
  net::Network net(trace, direct, workload());
  net.run();
  for (const auto& s : direct.samples()) {
    EXPECT_EQ(s.station_backlog_total, 0u);  // no stations in use
  }
  EXPECT_FALSE(direct.uses_stations());
  EXPECT_EQ(direct.name(), "Direct");
}

}  // namespace
}  // namespace dtn::metrics
