#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace dtn {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats rs;
  rs.add(3.5);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.5);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(1);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 4.0);
    xs.push_back(x);
    rs.add(x);
  }
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(rs.mean(), mean, 1e-9);
  EXPECT_NEAR(rs.variance(), var, 1e-7);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(2);
  RunningStats a, b, combined;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 100);
    if (i % 2 == 0) a.add(x); else b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(Quantile, MedianOddCount) {
  const std::vector<double> xs = {5, 1, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs = {4, 2, 9, 1};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 9.0);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.3), 7.0);
}

TEST(FiveNumber, OrderedSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const auto f = five_number_summary(xs);
  EXPECT_DOUBLE_EQ(f.min, 1.0);
  EXPECT_DOUBLE_EQ(f.max, 100.0);
  EXPECT_NEAR(f.q1, 25.75, 1e-9);
  EXPECT_NEAR(f.q3, 75.25, 1e-9);
  EXPECT_DOUBLE_EQ(f.mean, 50.5);
  EXPECT_LE(f.min, f.q1);
  EXPECT_LE(f.q1, f.mean);
  EXPECT_LE(f.mean, f.q3);
  EXPECT_LE(f.q3, f.max);
}

TEST(StudentT, KnownCriticalValues) {
  EXPECT_NEAR(student_t_critical(1, 0.95), 12.7062, 1e-3);
  EXPECT_NEAR(student_t_critical(10, 0.95), 2.2281, 1e-3);
  EXPECT_NEAR(student_t_critical(30, 0.95), 2.0423, 1e-3);
  EXPECT_NEAR(student_t_critical(1000, 0.95), 1.96, 1e-2);
  EXPECT_NEAR(student_t_critical(5, 0.99), 4.0321, 1e-3);
  EXPECT_NEAR(student_t_critical(5, 0.90), 2.0150, 1e-3);
}

TEST(ConfidenceHalfWidth, ZeroForTinySamples) {
  EXPECT_EQ(confidence_half_width(std::vector<double>{}), 0.0);
  EXPECT_EQ(confidence_half_width(std::vector<double>{1.0}), 0.0);
}

TEST(ConfidenceHalfWidth, MatchesHandComputation) {
  const std::vector<double> xs = {2.0, 4.0, 6.0, 8.0};
  // mean 5, sd = sqrt(20/3), t(3, .95) = 3.1824
  const double expected = 3.1824 * std::sqrt(20.0 / 3.0) / 2.0;
  EXPECT_NEAR(confidence_half_width(xs, 0.95), expected, 1e-3);
}

TEST(ConfidenceHalfWidth, ShrinksWithMoreSamples) {
  Rng rng(5);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal(0, 1));
  for (int i = 0; i < 1000; ++i) large.push_back(rng.normal(0, 1));
  EXPECT_LT(confidence_half_width(large), confidence_half_width(small));
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.5);   // bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(42.0);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(PearsonCorrelation, PerfectPositive) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
}

TEST(PearsonCorrelation, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {3, 2, 1};
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSeriesIsZero) {
  const std::vector<double> x = {1, 1, 1};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_EQ(pearson_correlation(x, y), 0.0);
}

class QuantileMonotoneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileMonotoneTest, QuantileIsMonotoneInQ) {
  Rng rng(GetParam());
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) xs.push_back(rng.uniform(-50, 50));
  double prev = quantile(xs, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = quantile(xs, q);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneTest,
                         ::testing::Values(3ull, 17ull, 23ull, 99ull));

}  // namespace
}  // namespace dtn
