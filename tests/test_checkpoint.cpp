// Checkpoint/restore subsystem (docs/checkpointing.md):
//
//  * unit — Writer/Reader round-trips and every structural rejection
//    (magic, schema version, CRC, truncation, section names, trailing
//    bytes), CheckpointManager discovery/retention/atomic publish;
//  * scenario — the headline contract: a run suspended at event N and
//    resumed from its snapshot finishes with bit-identical counters,
//    diagnostics and delay records vs. the uninterrupted run, on the
//    campus tier, under a fault plan spanning the checkpoint, and from
//    sharded-barrier snapshots resumed on the serial engine;
//  * edge — empty networks, zero pending events, snapshots exactly on a
//    unit-tick barrier, fingerprint and schema-version rejection.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "persist/checkpoint.hpp"
#include "persist/serializer.hpp"
#include "test_helpers.hpp"
#include "trace/campus_generator.hpp"
#include "trace/city_generator.hpp"

namespace dtn {
namespace {

using core::DtnFlowConfig;
using core::DtnFlowDiagnostics;
using core::DtnFlowRouter;
using dtn::testing::relay_chain_trace;
using net::Network;
using net::RunCounters;
using net::WorkloadConfig;
using persist::CheckpointConfig;
using persist::CheckpointManager;
using persist::FormatError;
using persist::Reader;
using persist::Writer;
using trace::kDay;
using trace::kMinute;

// Fresh per-test snapshot directory under the gtest temp root.
std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("dtn_ckpt_" + name);
  std::filesystem::remove_all(dir);
  return dir;
}

// -- Writer / Reader unit tests ------------------------------------------

std::vector<std::uint8_t> sample_stream() {
  Writer w;
  w.begin_section("alpha");
  w.u8(7);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-1.5);
  w.boolean(true);
  w.str("hello");
  w.end_section();
  w.begin_section("beta");
  w.u64(42);
  w.end_section();
  w.finish();
  return w.buffer();
}

TEST(Serializer, RoundTripsScalarsAndStrings) {
  Reader r(sample_stream());
  EXPECT_EQ(r.schema_version(), persist::kSchemaVersion);
  r.expect_section("alpha");
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -1.5);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  r.end_section();
  r.expect_section("beta");
  EXPECT_EQ(r.u64(), 42u);
  r.end_section();
  r.finish();
}

TEST(Serializer, SectionsReportNamesAndCrcsInWriteOrder) {
  Writer w;
  w.begin_section("alpha");
  w.u64(1);
  w.end_section();
  w.begin_section("beta");
  w.u64(1);
  w.end_section();
  const auto& s = w.sections();
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].first, "alpha");
  EXPECT_EQ(s[1].first, "beta");
  // Identical payloads hash identically; the CRC is over payload bytes.
  EXPECT_EQ(s[0].second, s[1].second);
  Writer other;
  other.begin_section("alpha");
  other.u64(2);
  other.end_section();
  EXPECT_NE(other.sections()[0].second, s[0].second);
}

TEST(Serializer, RejectsBadMagic) {
  auto bytes = sample_stream();
  bytes[0] ^= 0xff;
  EXPECT_THROW(Reader r(std::move(bytes)), FormatError);
}

TEST(Serializer, RejectsFutureSchemaVersion) {
  auto bytes = sample_stream();
  bytes[persist::kMagicSize] += 1;  // version u32 follows the magic
  EXPECT_THROW(Reader r(std::move(bytes)), FormatError);
}

TEST(Serializer, RejectsCorruptPayloadViaCrc) {
  auto bytes = sample_stream();
  // Flip one payload byte of "alpha": header is magic + version + flags,
  // then u32 name_len, name, u64 payload_len, payload...
  const std::size_t payload_start = persist::kMagicSize + 4 + 4 + 4 + 5 + 8;
  bytes[payload_start] ^= 0x01;
  Reader r(std::move(bytes));
  EXPECT_THROW(r.expect_section("alpha"), FormatError);
}

TEST(Serializer, RejectsTruncatedStream) {
  const auto full = sample_stream();
  for (const std::size_t keep : {full.size() - 1, full.size() / 2}) {
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<long>(keep));
    EXPECT_THROW(
        {
          Reader r(std::move(cut));
          r.expect_section("alpha");
          r.u8();
          r.u32();
          r.u64();
          r.f64();
          r.boolean();
          r.str();
          r.end_section();
          r.expect_section("beta");
          r.u64();
          r.end_section();
          r.finish();
        },
        FormatError);
  }
}

TEST(Serializer, RejectsWrongSectionNameAndUnderReads) {
  Reader wrong(sample_stream());
  EXPECT_THROW(wrong.expect_section("beta"), FormatError);

  Reader under(sample_stream());
  under.expect_section("alpha");
  under.u8();
  EXPECT_THROW(under.end_section(), FormatError);  // payload not drained
}

TEST(Serializer, RejectsTrailingBytesAfterEndMarker) {
  auto bytes = sample_stream();
  bytes.push_back(0);
  Reader r(std::move(bytes));
  r.expect_section("alpha");
  r.u8();
  r.u32();
  r.u64();
  r.f64();
  r.boolean();
  r.str();
  r.end_section();
  r.expect_section("beta");
  r.u64();
  r.end_section();
  EXPECT_THROW(r.finish(), FormatError);
}

// -- CheckpointManager unit tests ----------------------------------------

TEST(CheckpointManagerTest, DiscoversSortedAndPrunesBeyondRetention) {
  CheckpointConfig cc;
  cc.dir = fresh_dir("retention").string();
  cc.keep = 3;
  CheckpointManager mgr(cc);
  EXPECT_FALSE(mgr.has_checkpoint());
  EXPECT_THROW(mgr.read_latest(), FormatError);

  for (const std::uint64_t n : {100, 20, 3000, 450, 99999}) {
    Writer w;
    w.begin_section("n");
    w.u64(n);
    w.end_section();
    w.finish();
    mgr.write(n, w.buffer());
  }
  const auto files = mgr.list();
  ASSERT_EQ(files.size(), 3u);  // pruned to `keep`, oldest dropped
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));

  std::string latest_path;
  Reader r(mgr.read_latest(&latest_path));
  EXPECT_EQ(files.back(), latest_path);
  EXPECT_NE(latest_path.find("99999"), std::string::npos);
  r.expect_section("n");
  EXPECT_EQ(r.u64(), 99999u);
  r.end_section();
  r.finish();
}

TEST(CheckpointManagerTest, IgnoresForeignFilesAndTempDebris) {
  CheckpointConfig cc;
  cc.dir = fresh_dir("debris").string();
  CheckpointManager mgr(cc);
  Writer w;
  w.begin_section("n");
  w.u64(7);
  w.end_section();
  w.finish();
  const std::string path = mgr.write(7, w.buffer());
  std::ofstream(std::filesystem::path(cc.dir) / "notes.txt") << "hi";
  std::ofstream(std::filesystem::path(cc.dir) / "ckpt-x.tmp") << "junk";
  const auto files = mgr.list();
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files[0], path);
}

// -- resume equality scenarios -------------------------------------------

struct RunOutcome {
  RunCounters counters;
  DtnFlowDiagnostics diag;
  std::uint64_t events = 0;
  double now = 0.0;
};

void expect_equal(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.diag, b.diag);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.now, b.now);
}

WorkloadConfig campus_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 4.0;
  cfg.ttl = 6.0 * kDay;
  cfg.time_unit = 1.5 * kDay;
  cfg.warmup_fraction = 0.25;
  cfg.node_memory_kb = 40;
  cfg.seed = 11;
  cfg.manual_packets = {{0, 5, 4.0 * kDay, 0.0},
                        {3, 1, 6.5 * kDay, 2.0 * kDay}};
  return cfg;
}

trace::Trace campus_trace() {
  trace::CampusTraceConfig tc;
  tc.num_nodes = 50;
  tc.num_landmarks = 18;
  tc.num_communities = 5;
  tc.days = 10.0;
  tc.seed = 5;
  return generate_campus_trace(tc);
}

DtnFlowConfig full_router_config() {
  DtnFlowConfig rc;
  rc.dead_end_prevention = true;
  rc.load_balancing = true;
  rc.scheduled_communication = true;
  rc.node_to_node_relay = true;
  return rc;
}

RunOutcome run_uninterrupted(const trace::Trace& trace,
                             const WorkloadConfig& cfg) {
  DtnFlowRouter router(full_router_config());
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  return {net.counters(), router.diagnostics(), net.events_executed(),
          net.now()};
}

// Suspend at `stop_events`, then resume in a fresh process-equivalent
// (new Network + router over the same inputs) until completion.
RunOutcome run_with_suspension(const trace::Trace& trace,
                               const WorkloadConfig& cfg,
                               const std::string& dir_tag,
                               std::uint64_t stop_events) {
  CheckpointConfig cc;
  cc.dir = fresh_dir(dir_tag).string();
  cc.stop_after_events = stop_events;
  {
    CheckpointManager mgr(cc);
    DtnFlowRouter router(full_router_config());
    Network net(trace, router, cfg);
    EXPECT_FALSE(net.run(mgr));  // suspended, snapshot written
    EXPECT_TRUE(mgr.has_checkpoint());
  }
  CheckpointConfig resume = cc;
  resume.stop_after_events = 0;
  CheckpointManager mgr(resume);
  DtnFlowRouter router(full_router_config());
  Network net(trace, router, cfg);
  EXPECT_TRUE(net.run(mgr));
  net.validate_invariants();
  return {net.counters(), router.diagnostics(), net.events_executed(),
          net.now()};
}

TEST(CheckpointResume, CampusRunIsBitIdenticalAcrossSuspensions) {
  const auto trace = campus_trace();
  const auto cfg = campus_workload();
  const RunOutcome full = run_uninterrupted(trace, cfg);
  ASSERT_GT(full.counters.generated, 50u);
  ASSERT_GT(full.counters.delivered, 10u);
  // Early, middle and late suspension points.
  expect_equal(full, run_with_suspension(trace, cfg, "campus_early",
                                         full.events / 10));
  expect_equal(full, run_with_suspension(trace, cfg, "campus_mid",
                                         full.events / 2));
  expect_equal(full, run_with_suspension(trace, cfg, "campus_late",
                                         full.events - 5));
}

TEST(CheckpointResume, SurvivesChainedSuspensions) {
  // Suspend, resume, suspend again later, resume again: exercises
  // resume-from-a-resumed-run and picking the newest of several files.
  const auto trace = campus_trace();
  const auto cfg = campus_workload();
  const RunOutcome full = run_uninterrupted(trace, cfg);

  CheckpointConfig cc;
  cc.dir = fresh_dir("chained").string();
  cc.every_events = 2000;  // also exercise periodic snapshots
  cc.stop_after_events = full.events / 3;
  {
    CheckpointManager mgr(cc);
    DtnFlowRouter router(full_router_config());
    Network net(trace, router, cfg);
    EXPECT_FALSE(net.run(mgr));
  }
  cc.stop_after_events = (2 * full.events) / 3;
  {
    CheckpointManager mgr(cc);
    EXPECT_GT(mgr.list().size(), 1u);
    DtnFlowRouter router(full_router_config());
    Network net(trace, router, cfg);
    EXPECT_FALSE(net.run(mgr));
  }
  cc.stop_after_events = 0;
  CheckpointManager mgr(cc);
  DtnFlowRouter router(full_router_config());
  Network net(trace, router, cfg);
  EXPECT_TRUE(net.run(mgr));
  net.validate_invariants();
  expect_equal(full, {net.counters(), router.diagnostics(),
                      net.events_executed(), net.now()});
}

TEST(CheckpointResume, FaultPlanSpanningTheCheckpointIsBitIdentical) {
  // Crash node 0 for a day around the suspension point and add stochastic
  // faults, so the checkpoint lands mid-outage: injector RNG streams,
  // down sets and the retry ledger must all survive the round trip.
  const auto trace = relay_chain_trace(10.0);
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 10;
  cfg.ttl = 2.0 * kDay;
  for (int i = 0; i < 40; ++i) {
    cfg.manual_packets.push_back({0, 3, 4.0 * kDay + i * 10.0 * kMinute, 0.0});
  }
  cfg.faults.emplace();
  cfg.faults->seed = 77;
  cfg.faults->node_crashes.push_back(
      {0, 4.0 * kDay + 45.0 * kMinute, 1.0 * kDay});
  cfg.faults->crash_buffer_loss = 1.0;
  cfg.faults->station_outage_rate_per_day = 0.2;
  cfg.faults->station_mean_outage = 0.1 * kDay;
  cfg.faults->transfer_failure_prob = 0.1;

  const RunOutcome full = run_uninterrupted(trace, cfg);
  ASSERT_GT(full.counters.node_crashes, 0u);
  ASSERT_GT(full.counters.packets_lost_fault, 0u);
  expect_equal(full,
               run_with_suspension(trace, cfg, "fault_mid", full.events / 2));
  expect_equal(full, run_with_suspension(trace, cfg, "fault_late",
                                         (3 * full.events) / 4));
}

// -- sharded-barrier snapshots -------------------------------------------

trace::Trace small_city_trace() {
  trace::CityTraceConfig tc;
  tc.num_pedestrians = 220;
  tc.num_buses = 10;
  tc.num_landmarks = 48;
  tc.num_districts = 6;
  tc.days = 1.0;
  tc.seed = 9;
  return generate_city_trace(tc);
}

WorkloadConfig city_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 2.0;
  cfg.ttl = 0.5 * kDay;
  cfg.time_unit = 0.25 * kDay;
  cfg.warmup_fraction = 0.2;
  cfg.node_memory_kb = 20;
  cfg.seed = 21;
  return cfg;
}

std::uint64_t executed_from_path(const std::string& path) {
  // ckpt-<zero padded count>.dtnckpt
  const auto base = std::filesystem::path(path).stem().string();
  return std::stoull(base.substr(base.find('-') + 1));
}

TEST(CheckpointSharded, BarrierSnapshotResumesOnSerialEngine) {
  const auto trace = small_city_trace();
  const auto cfg = city_workload();
  const RunOutcome full = run_uninterrupted(trace, cfg);
  ASSERT_GT(full.counters.delivered, 0u);

  CheckpointConfig cc;
  cc.dir = fresh_dir("city_sharded").string();
  cc.every_events = 1;  // snapshot at every unit barrier
  {
    CheckpointManager mgr(cc);
    DtnFlowRouter router(full_router_config());
    Network net(trace, router, cfg);
    net.run_sharded(4, nullptr, &mgr);
    EXPECT_GT(mgr.list().size(), 1u);
    // The sharded run itself is still bit-identical to serial.
    EXPECT_EQ(net.counters(), full.counters);
  }
  cc.every_events = 0;  // resume without re-snapshotting every event
  CheckpointManager mgr(cc);
  DtnFlowRouter router(full_router_config());
  Network net(trace, router, cfg);
  EXPECT_TRUE(net.run(mgr));
  net.validate_invariants();
  expect_equal(full, {net.counters(), router.diagnostics(),
                      net.events_executed(), net.now()});
}

TEST(CheckpointSharded, BarrierSnapshotIsByteIdenticalToSerialSnapshot) {
  // The satellite edge case "checkpoint exactly on a unit-tick barrier",
  // proven the strong way: the sharded engine's barrier snapshot and a
  // serial run suspended at the same executed-event count produce the
  // same bytes.
  const auto trace = campus_trace();
  const auto cfg = campus_workload();

  CheckpointConfig shard_cc;
  shard_cc.dir = fresh_dir("bytes_sharded").string();
  shard_cc.every_events = 1;
  shard_cc.keep = 64;
  CheckpointManager shard_mgr(shard_cc);
  {
    DtnFlowRouter router(full_router_config());
    Network net(trace, router, cfg);
    net.run_sharded(4, nullptr, &shard_mgr);
  }
  const auto files = shard_mgr.list();
  ASSERT_GT(files.size(), 2u);

  for (const auto& file : {files.front(), files[files.size() / 2]}) {
    const std::uint64_t executed = executed_from_path(file);
    CheckpointConfig serial_cc;
    serial_cc.dir =
        fresh_dir("bytes_serial_" + std::to_string(executed)).string();
    serial_cc.stop_after_events = executed;
    CheckpointManager serial_mgr(serial_cc);
    DtnFlowRouter router(full_router_config());
    Network net(trace, router, cfg);
    EXPECT_FALSE(net.run(serial_mgr));
    std::string serial_path;
    serial_mgr.read_latest(&serial_path);
    EXPECT_EQ(CheckpointManager::read_file(file),
              CheckpointManager::read_file(serial_path))
        << "sharded barrier snapshot at " << executed
        << " events differs from the serial snapshot";
  }
}

// -- edge cases ----------------------------------------------------------

TEST(CheckpointEdge, EmptyNetworkCompletesWithoutSnapshots) {
  trace::Trace t(3, 4);
  t.finalize();  // no visits, no events
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  CheckpointConfig cc;
  cc.dir = fresh_dir("empty").string();
  cc.every_events = 1;
  CheckpointManager mgr(cc);
  DtnFlowRouter router;
  Network net(t, router, cfg);
  EXPECT_TRUE(net.run(mgr));
  EXPECT_EQ(net.counters().generated, 0u);
  EXPECT_FALSE(mgr.has_checkpoint());  // zero events, nothing to snapshot
}

TEST(CheckpointEdge, SuspensionAtFinalEventLeavesZeroPendingEvents) {
  // stop_after_events == total events: the snapshot holds an empty queue
  // and the resumed run completes without dispatching anything.
  const auto trace = relay_chain_trace(4.0);
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 10;
  cfg.ttl = 2.0 * kDay;
  cfg.manual_packets = {{0, 3, 1.0 * kDay, 0.0}};
  const RunOutcome full = run_uninterrupted(trace, cfg);
  expect_equal(full,
               run_with_suspension(trace, cfg, "final_event", full.events));
}

TEST(CheckpointEdge, FingerprintMismatchIsRejected) {
  const auto trace = relay_chain_trace(4.0);
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 1.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 10;
  cfg.ttl = 1.0 * kDay;
  cfg.seed = 3;
  CheckpointConfig cc;
  cc.dir = fresh_dir("fingerprint").string();
  cc.stop_after_events = 40;
  {
    CheckpointManager mgr(cc);
    DtnFlowRouter router;
    Network net(trace, router, cfg);
    EXPECT_FALSE(net.run(mgr));
  }
  cc.stop_after_events = 0;
  CheckpointManager mgr(cc);
  auto changed = cfg;
  changed.seed = 4;  // any fingerprinted field will do
  DtnFlowRouter router;
  Network net(trace, router, changed);
  EXPECT_THROW(net.run(mgr), FormatError);
}

TEST(CheckpointEdge, SchemaVersionMismatchIsRejected) {
  const auto trace = relay_chain_trace(4.0);
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 1.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 10;
  cfg.ttl = 1.0 * kDay;
  CheckpointConfig cc;
  cc.dir = fresh_dir("schema").string();
  cc.stop_after_events = 40;
  {
    CheckpointManager mgr(cc);
    DtnFlowRouter router;
    Network net(trace, router, cfg);
    EXPECT_FALSE(net.run(mgr));
  }
  // Bump the version field in place; the resume must refuse the file.
  std::string path;
  CheckpointManager probe(cc);
  auto bytes = probe.read_latest(&path);
  bytes[persist::kMagicSize] += 1;
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<long>(bytes.size()));
  cc.stop_after_events = 0;
  CheckpointManager mgr(cc);
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  EXPECT_THROW(net.run(mgr), FormatError);
}

TEST(CheckpointEdge, CorruptSnapshotPayloadIsRejectedOnResume) {
  const auto trace = relay_chain_trace(4.0);
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 1.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 10;
  cfg.ttl = 1.0 * kDay;
  CheckpointConfig cc;
  cc.dir = fresh_dir("corrupt").string();
  cc.stop_after_events = 40;
  {
    CheckpointManager mgr(cc);
    DtnFlowRouter router;
    Network net(trace, router, cfg);
    EXPECT_FALSE(net.run(mgr));
  }
  std::string path;
  CheckpointManager probe(cc);
  auto bytes = probe.read_latest(&path);
  bytes[bytes.size() / 2] ^= 0x40;  // flip a bit mid-stream
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<long>(bytes.size()));
  cc.stop_after_events = 0;
  CheckpointManager mgr(cc);
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  EXPECT_THROW(net.run(mgr), FormatError);
}

}  // namespace
}  // namespace dtn
