#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace dtn {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Rng, UniformIndexOne) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(12);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(14);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(16);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, LognormalPositive) {
  Rng rng(18);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(19);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
}

TEST(Rng, DiscreteSingleElement) {
  Rng rng(20);
  const std::vector<double> w = {2.5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.discrete(w), 0u);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(21);
  const auto p = rng.permutation(50);
  ASSERT_EQ(p.size(), 50u);
  std::vector<std::size_t> sorted(p);
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, PermutationEmpty) {
  Rng rng(22);
  EXPECT_TRUE(rng.permutation(0).empty());
}

TEST(Rng, SplitStreamsAreIndependentlyReproducible) {
  Rng parent1(99), parent2(99);
  Rng child1 = parent1.split(5);
  Rng child2 = parent2.split(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, SplitDifferentTagsDiffer) {
  Rng parent(99);
  Rng a = parent.split(1);
  Rng b = parent.split(1);  // second split advances parent state
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

class RngSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedTest, ChiSquareUniformityOfBytes) {
  Rng rng(GetParam());
  std::vector<int> counts(256, 0);
  const int n = 256 * 200;
  for (int i = 0; i < n / 8; ++i) {
    std::uint64_t v = rng.next_u64();
    for (int b = 0; b < 8; ++b) {
      ++counts[v & 0xff];
      v >>= 8;
    }
  }
  const double expected = static_cast<double>(n) / 256.0;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 255 dof; far tails only (catches catastrophic bias, not subtle).
  EXPECT_GT(chi2, 150.0);
  EXPECT_LT(chi2, 400.0);
}

TEST_P(RngSeedTest, UniformIndexUnbiasedOverSmallRange) {
  Rng rng(GetParam() ^ 0xabcdef);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedTest,
                         ::testing::Values(1ull, 2ull, 42ull, 0xdeadbeefull,
                                           0xffffffffffffffffull));

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler z(10, 1.0);
  double total = 0.0;
  for (std::size_t r = 0; r < z.size(); ++r) total += z.pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfSampler, PmfDecreasesWithRank) {
  ZipfSampler z(20, 0.8);
  for (std::size_t r = 1; r < z.size(); ++r) {
    EXPECT_GT(z.pmf(r - 1), z.pmf(r));
  }
}

TEST(ZipfSampler, SampleMatchesPmf) {
  ZipfSampler z(5, 1.2);
  Rng rng(3);
  std::vector<int> counts(5, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, z.pmf(r), 0.01);
  }
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler z(4, 0.0);
  for (std::size_t r = 0; r < 4; ++r) EXPECT_NEAR(z.pmf(r), 0.25, 1e-12);
}

}  // namespace
}  // namespace dtn
