#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace dtn {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, ComputesIndependentResults) {
  ThreadPool pool(3);
  std::vector<double> out(500, 0.0);
  parallel_for(pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(i));
  }
}

TEST(ParallelFor, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(SerialFor, MatchesParallelSemantics) {
  std::vector<int> hits(50, 0);
  serial_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

}  // namespace
}  // namespace dtn
