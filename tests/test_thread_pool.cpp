#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace dtn {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterations) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, ComputesIndependentResults) {
  ThreadPool pool(3);
  std::vector<double> out(500, 0.0);
  parallel_for(pool, out.size(), [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], 2.0 * static_cast<double>(i));
  }
}

TEST(ParallelFor, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    parallel_for(pool, 20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 100);
}

TEST(SerialFor, MatchesParallelSemantics) {
  std::vector<int> hits(50, 0);
  serial_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 50);
}

// -- sanitizer stress ---------------------------------------------------
// Written to give ThreadSanitizer material: many threads, many rounds,
// shared state touched through the intended synchronisation only.  Under
// the tsan preset these catch ordering bugs in submit/wait_idle and the
// parallel_for chunking; under plain builds they are ordinary
// correctness tests.

TEST(ThreadPoolStress, ManyRoundsOfSmallBatches) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 16; ++i) {
      pool.submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();  // a racy wait_idle shows up as a short count here
  }
  EXPECT_EQ(sum.load(), 200u * 16u);
}

TEST(ThreadPoolStress, SubmitFromWorkerThreads) {
  ThreadPool pool(4);
  std::atomic<int> children{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&pool, &children] {
      pool.submit([&children] { children.fetch_add(1); });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(children.load(), 64);
}

TEST(ParallelForStress, DisjointWritesAreRaceFree) {
  ThreadPool pool(8);
  std::vector<std::uint64_t> out(10'000, 0);
  for (int round = 0; round < 20; ++round) {
    parallel_for(pool, out.size(),
                 [&](std::size_t i) { out[i] += i; });
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 20u * i);
  }
}

TEST(ParallelForStress, NestedSharedAccumulator) {
  ThreadPool pool(6);
  std::atomic<std::uint64_t> total{0};
  parallel_for(pool, 5'000, [&](std::size_t i) {
    total.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 5'000u * 4'999u / 2u);
}

TEST(ParallelForStress, UnevenShardShapedWorkloads) {
  // The sharded replay engine's shape: a handful of indices ("shards")
  // with wildly different amounts of work, each writing only its own
  // cache-line-separated slot, fenced by the parallel_for barrier.
  struct alignas(128) Slot {
    std::uint64_t ops = 0;
    std::uint64_t checksum = 0;
  };
  ThreadPool pool(8);
  constexpr std::size_t kShards = 7;
  std::vector<Slot> slots(kShards);
  // Epoch loop with per-shard work proportional to (shard+1)^2 — the
  // heaviest shard does ~50x the lightest's work, so workers idle at
  // the barrier while stragglers finish (the contended path under TSan).
  for (int epoch = 0; epoch < 50; ++epoch) {
    parallel_for(pool, kShards, [&](std::size_t s) {
      const std::uint64_t work = (s + 1) * (s + 1) * 40;
      for (std::uint64_t i = 0; i < work; ++i) {
        slots[s].checksum += i * (s + 1);
        ++slots[s].ops;
      }
    });
    // Barrier: coordinator reads every slot between epochs (this read
    // races with the loop above unless parallel_for really fences).
    std::uint64_t total = 0;
    for (const Slot& slot : slots) total += slot.ops;
    ASSERT_EQ(total % kShards, 0u)
        << "partial shard visible across the epoch barrier";
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::uint64_t work = (s + 1) * (s + 1) * 40;
    EXPECT_EQ(slots[s].ops, 50u * work);
    EXPECT_EQ(slots[s].checksum, 50u * (s + 1) * (work * (work - 1) / 2));
  }
}

TEST(ParallelForStress, SingleThreadPoolRunsShardsInOrder) {
  // With one worker the shard loops must still run — sequentially, in
  // index order (what run_sharded degrades to on a 1-core host).
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  parallel_for(pool, 5, [&](std::size_t s) { order.push_back(s); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelForStress, PoolOutlivesManyConcurrentUsers) {
  // Two host threads sharing one pool concurrently: parallel_for must
  // not assume it is the pool's only client.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  std::thread t1([&] {
    for (int r = 0; r < 10; ++r) {
      parallel_for(pool, 500, [&](std::size_t) { a.fetch_add(1); });
    }
  });
  std::thread t2([&] {
    for (int r = 0; r < 10; ++r) {
      parallel_for(pool, 500, [&](std::size_t) { b.fetch_add(1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 5'000u);
  EXPECT_EQ(b.load(), 5'000u);
}

}  // namespace
}  // namespace dtn
