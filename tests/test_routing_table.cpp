#include "core/routing_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace dtn::core {
namespace {

TEST(RoutingTable, SelfRouteIsZero) {
  RoutingTable t(2, 5);
  const Route r = t.route(2);
  EXPECT_EQ(r.next, 2u);
  EXPECT_DOUBLE_EQ(r.delay, 0.0);
}

TEST(RoutingTable, UnreachableWithoutLinks) {
  RoutingTable t(0, 4);
  EXPECT_FALSE(t.route(3).reachable());
  EXPECT_TRUE(std::isinf(t.delay_to(3)));
  EXPECT_DOUBLE_EQ(t.coverage(), 0.0);
}

TEST(RoutingTable, DirectLinkRoutesImmediately) {
  RoutingTable t(0, 3);
  t.set_link_delay(1, 5.0);
  const Route r = t.route(1);
  EXPECT_EQ(r.next, 1u);
  EXPECT_DOUBLE_EQ(r.delay, 5.0);
  EXPECT_FALSE(t.route(2).reachable());
  EXPECT_DOUBLE_EQ(t.coverage(), 0.5);
}

// The paper's Fig. 7 worked example, §IV-C.2: landmark receives a table
// from neighbor l6 (link delay 7) with entries for l3/l9/l4 and updates
// (1,1,8),(4,7,20),(7,7,6),(9,7,34) to
// (1,1,8),(3,6,17),(4,6,18),(7,7,6),(9,7,34).
TEST(RoutingTable, PaperFigureSevenExample) {
  RoutingTable t(5, 10);
  t.set_link_delay(1, 8.0);
  t.set_link_delay(7, 6.0);
  t.set_link_delay(6, 7.0);
  // Prior state: routes to 4 and 9 go through 7 (adv 14 and 28).
  DistanceVector from7;
  from7.origin = 7;
  from7.seq = 0;
  from7.delay.assign(10, kInfiniteDelay);
  from7.delay[7] = 0.0;
  from7.delay[4] = 14.0;
  from7.delay[9] = 28.0;
  ASSERT_TRUE(t.merge(from7));
  EXPECT_EQ(t.route(4).next, 7u);
  EXPECT_DOUBLE_EQ(t.route(4).delay, 20.0);
  EXPECT_EQ(t.route(9).next, 7u);
  EXPECT_DOUBLE_EQ(t.route(9).delay, 34.0);

  // Now the table from l6 arrives: (3, 10), (9, 30), (4, 11).
  DistanceVector from6;
  from6.origin = 6;
  from6.seq = 0;
  from6.delay.assign(10, kInfiniteDelay);
  from6.delay[6] = 0.0;
  from6.delay[3] = 10.0;
  from6.delay[9] = 30.0;
  from6.delay[4] = 11.0;
  ASSERT_TRUE(t.merge(from6));

  EXPECT_EQ(t.route(1).next, 1u);
  EXPECT_DOUBLE_EQ(t.route(1).delay, 8.0);
  EXPECT_EQ(t.route(3).next, 6u);          // inserted: 7 + 10 = 17
  EXPECT_DOUBLE_EQ(t.route(3).delay, 17.0);
  EXPECT_EQ(t.route(4).next, 6u);          // replaced: 7 + 11 = 18 < 20
  EXPECT_DOUBLE_EQ(t.route(4).delay, 18.0);
  EXPECT_EQ(t.route(7).next, 7u);
  EXPECT_DOUBLE_EQ(t.route(7).delay, 6.0);
  EXPECT_EQ(t.route(9).next, 7u);          // kept: 7 + 30 = 37 > 34
  EXPECT_DOUBLE_EQ(t.route(9).delay, 34.0);
}

TEST(RoutingTable, StaleVectorDiscarded) {
  RoutingTable t(0, 3);
  t.set_link_delay(1, 1.0);
  DistanceVector dv;
  dv.origin = 1;
  dv.seq = 5;
  dv.delay = {2.0, 0.0, 3.0};
  ASSERT_TRUE(t.merge(dv));
  EXPECT_DOUBLE_EQ(t.delay_to(2), 4.0);
  // Older vector with a better-looking delay must be ignored.
  dv.seq = 4;
  dv.delay = {2.0, 0.0, 0.5};
  EXPECT_FALSE(t.merge(dv));
  EXPECT_DOUBLE_EQ(t.delay_to(2), 4.0);
  // Newer one is accepted.
  dv.seq = 6;
  ASSERT_TRUE(t.merge(dv));
  EXPECT_DOUBLE_EQ(t.delay_to(2), 1.5);
}

TEST(RoutingTable, SelfOriginVectorIgnored) {
  RoutingTable t(0, 2);
  DistanceVector dv;
  dv.origin = 0;
  dv.seq = 0;
  dv.delay = {0.0, 1.0};
  EXPECT_FALSE(t.merge(dv));
}

TEST(RoutingTable, BackupNextHopIsSecondBestNeighbor) {
  RoutingTable t(0, 4);
  t.set_link_delay(1, 1.0);
  t.set_link_delay(2, 2.0);
  DistanceVector dv1{1, 0, {kInfiniteDelay, 0.0, kInfiniteDelay, 5.0}};
  DistanceVector dv2{2, 0, {kInfiniteDelay, kInfiniteDelay, 0.0, 5.0}};
  ASSERT_TRUE(t.merge(dv1));
  ASSERT_TRUE(t.merge(dv2));
  const Route r = t.route(3);
  EXPECT_EQ(r.next, 1u);                  // 1 + 5 = 6
  EXPECT_DOUBLE_EQ(r.delay, 6.0);
  EXPECT_EQ(r.backup_next, 2u);           // 2 + 5 = 7
  EXPECT_DOUBLE_EQ(r.backup_delay, 7.0);
}

TEST(RoutingTable, SnapshotAdvertisesOwnDelays) {
  RoutingTable t(0, 3);
  t.set_link_delay(1, 4.0);
  const DistanceVector dv = t.snapshot();
  EXPECT_EQ(dv.origin, 0u);
  EXPECT_DOUBLE_EQ(dv.delay[0], 0.0);
  EXPECT_DOUBLE_EQ(dv.delay[1], 4.0);
  EXPECT_TRUE(std::isinf(dv.delay[2]));
  const DistanceVector dv2 = t.snapshot();
  EXPECT_GT(dv2.seq, dv.seq);
}

TEST(RoutingTable, LinkDelayChangePropagatesToRoutes) {
  RoutingTable t(0, 3);
  t.set_link_delay(1, 10.0);
  DistanceVector dv{1, 0, {kInfiniteDelay, 0.0, 2.0}};
  ASSERT_TRUE(t.merge(dv));
  EXPECT_DOUBLE_EQ(t.delay_to(2), 12.0);
  t.set_link_delay(1, 1.0);
  EXPECT_DOUBLE_EQ(t.delay_to(2), 3.0);
  t.set_link_delay(1, kInfiniteDelay);  // link disappears
  EXPECT_FALSE(t.route(2).reachable());
}

TEST(RoutingTable, PinOverridesAndBackupIsOrganic) {
  RoutingTable t(0, 4);
  t.set_link_delay(1, 1.0);
  DistanceVector dv{1, 0, {kInfiniteDelay, 0.0, kInfiniteDelay, 2.0}};
  ASSERT_TRUE(t.merge(dv));
  EXPECT_EQ(t.route(3).next, 1u);
  t.pin(3, 2, 0.5);
  EXPECT_TRUE(t.is_pinned(3));
  const Route r = t.route(3);
  EXPECT_EQ(r.next, 2u);
  EXPECT_DOUBLE_EQ(r.delay, 0.5);
  EXPECT_EQ(r.backup_next, 1u);  // the organic best survives as backup
  t.unpin(3);
  EXPECT_FALSE(t.is_pinned(3));
  EXPECT_EQ(t.route(3).next, 1u);
}

TEST(RoutingTable, NextHopsVectorForStabilityMetric) {
  RoutingTable t(0, 3);
  t.set_link_delay(1, 1.0);
  const auto hops = t.next_hops();
  ASSERT_EQ(hops.size(), 3u);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], kNoLandmark);
}

// The classic distance-vector pathology, demonstrated: after a link
// disappears, stale advertisements keep a phantom route alive until
// fresher vectors flush it — exactly the "untimely update" failure mode
// the paper's loop detection (§IV-E.2) exists for.
TEST(RoutingTable, StaleAdvertisementsSurviveLinkRemoval) {
  // 0 -1- 1 -1- 2; node 0 reaches 2 via 1 with delay 2.
  RoutingTable t0(0, 3);
  t0.set_link_delay(1, 1.0);
  DistanceVector dv1{1, 0, {1.0, 0.0, 1.0}};
  ASSERT_TRUE(t0.merge(dv1));
  EXPECT_DOUBLE_EQ(t0.delay_to(2), 2.0);
  // The 1-2 link dies.  Landmark 0 still believes the old vector...
  EXPECT_DOUBLE_EQ(t0.delay_to(2), 2.0);
  // ...until landmark 1 advertises the loss (infinite delay).
  DistanceVector dv1b{1, 1, {1.0, 0.0, kInfiniteDelay}};
  ASSERT_TRUE(t0.merge(dv1b));
  EXPECT_FALSE(t0.route(2).reachable());
}

// -- incremental vs. full recompute equivalence ------------------------
//
// recompute() only revisits destination columns marked dirty since the
// last query.  Feed two tables the exact same update stream, but query
// one after every mutation (forcing many small incremental recomputes)
// and the other only at the end (one bulk recompute): every route —
// including backup next hops and pins — must agree exactly.

void ExpectSameRoutes(const RoutingTable& interleaved,
                      const RoutingTable& batched) {
  ASSERT_EQ(interleaved.num_landmarks(), batched.num_landmarks());
  for (std::size_t d = 0; d < interleaved.num_landmarks(); ++d) {
    const auto dst = static_cast<LandmarkId>(d);
    const Route a = interleaved.route(dst);
    const Route b = batched.route(dst);
    EXPECT_EQ(a.next, b.next) << "dst=" << d;
    EXPECT_EQ(a.delay, b.delay) << "dst=" << d;
    EXPECT_EQ(a.backup_next, b.backup_next) << "dst=" << d;
    EXPECT_EQ(a.backup_delay, b.backup_delay) << "dst=" << d;
    EXPECT_EQ(interleaved.is_pinned(dst), batched.is_pinned(dst));
  }
  EXPECT_EQ(interleaved.coverage(), batched.coverage());
}

TEST(RoutingTableIncremental, MatchesFullRecomputeWithPinsAndBackups) {
  RoutingTable inc(0, 5);
  RoutingTable full(0, 5);
  const auto apply = [&](auto&& op) { op(inc); op(full); };
  const auto touch_all = [&] {
    for (std::size_t d = 0; d < inc.num_landmarks(); ++d) {
      (void)inc.route(static_cast<LandmarkId>(d));
    }
  };

  apply([](RoutingTable& t) { t.set_link_delay(1, 1.0); });
  touch_all();
  apply([](RoutingTable& t) { t.set_link_delay(2, 3.0); });
  touch_all();
  // Two neighbors both reach 3 and 4: exercises backup selection.
  DistanceVector dv1{1, 0, {kInfiniteDelay, 0.0, 9.0, 5.0, 2.0}};
  DistanceVector dv2{2, 0, {kInfiniteDelay, 9.0, 0.0, 1.0, 2.0}};
  apply([&](RoutingTable& t) { ASSERT_TRUE(t.merge(dv1)); });
  touch_all();
  apply([&](RoutingTable& t) { ASSERT_TRUE(t.merge(dv2)); });
  touch_all();
  // Pin, re-merge updated vectors underneath the pin, then unpin.
  apply([](RoutingTable& t) { t.pin(3, 4, 0.25); });
  touch_all();
  DistanceVector dv1b{1, 1, {kInfiniteDelay, 0.0, 9.0, 0.5, 2.0}};
  apply([&](RoutingTable& t) { ASSERT_TRUE(t.merge(dv1b)); });
  touch_all();
  ExpectSameRoutes(inc, full);  // pinned route + organic backup agree
  apply([](RoutingTable& t) { t.unpin(3); });
  touch_all();
  // Link-cost change after partial queries invalidates every column.
  apply([](RoutingTable& t) { t.set_link_delay(1, 6.0); });
  (void)inc.route(3);  // query only one column before the final sweep
  ExpectSameRoutes(inc, full);
}

TEST(RoutingTableIncremental, RandomizedOpStreamsAgree) {
  dtn::Rng rng(99);
  const std::size_t n = 12;
  RoutingTable inc(0, n);
  RoutingTable full(0, n);
  std::vector<std::uint64_t> seq(n, 0);
  for (int step = 0; step < 400; ++step) {
    const auto roll = rng.uniform_index(10);
    if (roll < 3) {  // link change (occasionally removal)
      const auto v = static_cast<LandmarkId>(1 + rng.uniform_index(n - 1));
      const double d =
          rng.uniform_index(8) == 0 ? kInfiniteDelay : rng.uniform(1.0, 20.0);
      inc.set_link_delay(v, d);
      full.set_link_delay(v, d);
    } else if (roll < 8) {  // merge a random (sometimes stale) vector
      const auto origin = static_cast<LandmarkId>(1 + rng.uniform_index(n - 1));
      DistanceVector dv;
      dv.origin = origin;
      dv.seq = rng.uniform_index(4) == 0 && seq[origin] > 0
                   ? seq[origin] - 1  // stale: must be a no-op on both
                   : seq[origin]++;
      dv.delay.assign(n, kInfiniteDelay);
      dv.delay[origin] = 0.0;
      for (std::size_t d = 0; d < n; ++d) {
        if (rng.uniform_index(3) != 0) dv.delay[d] = rng.uniform(0.0, 30.0);
      }
      EXPECT_EQ(inc.merge(dv), full.merge(dv));
    } else if (roll == 8) {  // pin / unpin
      const auto dst = static_cast<LandmarkId>(1 + rng.uniform_index(n - 1));
      if (rng.uniform_index(2) == 0) {
        const auto via = static_cast<LandmarkId>(1 + rng.uniform_index(n - 1));
        const double d = rng.uniform(0.0, 5.0);
        inc.pin(dst, via, d);
        full.pin(dst, via, d);
      } else {
        inc.unpin(dst);
        full.unpin(dst);
      }
    }
    // Query a random column on `inc` only: drains part of its dirty set
    // so its recompute schedule diverges maximally from `full`'s.
    (void)inc.route(static_cast<LandmarkId>(rng.uniform_index(n)));
    if (step % 50 == 49) ExpectSameRoutes(inc, full);
  }
  ExpectSameRoutes(inc, full);
}

// Property: after synchronous flooding on a random connected graph, DV
// delays equal all-pairs shortest paths (Floyd-Warshall reference).
class DvConvergenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DvConvergenceTest, ConvergesToShortestPaths) {
  dtn::Rng rng(GetParam());
  const std::size_t n = 8;
  std::vector<std::vector<double>> w(n, std::vector<double>(n, kInfiniteDelay));
  // Ring for connectivity + random chords; symmetric weights.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = (i + 1) % n;
    const double d = rng.uniform(1.0, 10.0);
    w[i][j] = w[j][i] = d;
  }
  for (int extra = 0; extra < 6; ++extra) {
    const auto i = rng.uniform_index(n);
    const auto j = rng.uniform_index(n);
    if (i == j) continue;
    const double d = rng.uniform(1.0, 10.0);
    w[i][j] = std::min(w[i][j], d);
    w[j][i] = std::min(w[j][i], d);
  }

  std::vector<RoutingTable> tables;
  tables.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tables.emplace_back(static_cast<LandmarkId>(i), n);
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && w[i][j] != kInfiniteDelay) {
        tables[i].set_link_delay(static_cast<LandmarkId>(j), w[i][j]);
      }
    }
  }
  // Synchronous rounds: everyone snapshots, everyone merges neighbors.
  for (std::size_t round = 0; round < n + 2; ++round) {
    std::vector<DistanceVector> snaps;
    snaps.reserve(n);
    for (auto& t : tables) snaps.push_back(t.snapshot());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j && w[i][j] != kInfiniteDelay) tables[i].merge(snaps[j]);
      }
    }
  }

  // Floyd-Warshall reference.
  auto dist = w;
  for (std::size_t i = 0; i < n; ++i) dist[i][i] = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dist[i][j] = std::min(dist[i][j], dist[i][k] + dist[k][j]);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(tables[i].coverage(), 1.0);
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(tables[i].delay_to(static_cast<LandmarkId>(j)), dist[i][j],
                  1e-9)
          << "i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, DvConvergenceTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

}  // namespace
}  // namespace dtn::core
