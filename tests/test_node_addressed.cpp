// Routing packets to mobile nodes (§IV-E.4): a node-addressed packet is
// routed toward the destination node's frequently visited landmarks and
// delivered the moment it reaches the node itself — at that station, or
// earlier if the carrier and destination meet.
#include <gtest/gtest.h>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "test_helpers.hpp"

namespace dtn::core {
namespace {

using dtn::testing::relay_chain_trace;
using net::Network;
using net::WorkloadConfig;
using trace::kDay;
using trace::kHour;
using trace::kMinute;

WorkloadConfig quiet() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 2.0 * kDay;
  return cfg;
}

TEST(NodeAddressed, DeliveredWhenDestinationNodeReachesStation) {
  // Relay chain: node 2 shuttles L2<->L3.  A packet from L0 addressed to
  // node 2, routed to its frequent landmark L2, must flow down the chain
  // and be handed to node 2 at L2.
  const auto trace = relay_chain_trace(10.0);
  DtnFlowRouter router;
  auto cfg = quiet();
  WorkloadConfig::ManualPacket mp;
  mp.src = 0;
  mp.dst = 2;        // node 2's frequent landmark
  mp.dst_node = 2;
  mp.time = 5.0 * kDay;
  cfg.manual_packets = {mp};
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  ASSERT_EQ(net.counters().delivered, 1u);
  const net::Packet& p = net.packet(0);
  EXPECT_EQ(p.state, net::PacketState::kDelivered);
  // Delivered strictly after reaching the L2 area, within the chain time.
  EXPECT_GT(p.delivered_at, p.created);
  EXPECT_LT(p.delivered_at - p.created, 12.0 * kHour);
}

TEST(NodeAddressed, WaitsAtStationForTheNode) {
  // Packet reaches L2's station while node 2 is away: it must wait
  // there (not be re-dispatched) and deliver on node 2's next arrival.
  const auto trace = relay_chain_trace(10.0);
  DtnFlowRouter router;
  auto cfg = quiet();
  WorkloadConfig::ManualPacket mp;
  mp.src = 1;        // one hop away
  mp.dst = 2;
  mp.dst_node = 2;
  mp.time = 5.0 * kDay + 1.0 * kMinute;
  cfg.manual_packets = {mp};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(NodeAddressed, EarlyDeliveryOnCoLocation) {
  // The destination node itself visits the source landmark: the packet
  // should be handed over directly there, long before L-dst.
  const auto trace = relay_chain_trace(6.0);
  DtnFlowRouter router;
  auto cfg = quiet();
  WorkloadConfig::ManualPacket mp;
  mp.src = 1;
  mp.dst = 1;        // routing target == source: must still deliver
  mp.dst_node = 1;   // node 1 visits L1 every cycle
  mp.time = 3.0 * kDay + 1.0 * kMinute;
  cfg.manual_packets = {mp};
  Network net(trace, router, cfg);
  net.run();
  ASSERT_EQ(net.counters().delivered, 1u);
  // Node 1 is at L1 during [3d, 3d+30min): handover is immediate-ish
  // (next arrival of node 1 at L1 at the latest).
  EXPECT_LT(net.packet(0).delivered_at - net.packet(0).created,
            3.0 * kHour);
}

TEST(NodeAddressed, FrequentLandmarkPipeline) {
  // End-to-end §IV-E.4 usage: ask the router where a node can be
  // reached, then send there.
  const auto trace = relay_chain_trace(10.0);
  {
    DtnFlowRouter scout;
    Network warmup(trace, scout, quiet());
    warmup.run();
    const auto frequent = DtnFlowRouter::frequent_landmarks(warmup, 2, 1);
    ASSERT_FALSE(frequent.empty());
    EXPECT_TRUE(frequent[0] == 2u || frequent[0] == 3u);

    DtnFlowRouter router;
    auto cfg = quiet();
    WorkloadConfig::ManualPacket mp;
    mp.src = 0;
    mp.dst = frequent[0];
    mp.dst_node = 2;
    mp.time = 5.0 * kDay;
    cfg.manual_packets = {mp};
    Network net(trace, router, cfg);
    net.run();
    EXPECT_EQ(net.counters().delivered, 1u);
  }
}

TEST(NodeAddressed, ExpiresLikeAnyPacket) {
  const auto trace = relay_chain_trace(8.0);
  DtnFlowRouter router;
  auto cfg = quiet();
  WorkloadConfig::ManualPacket mp;
  mp.src = 0;
  mp.dst = 3;
  mp.dst_node = 1;     // node 1 never visits L3 nor meets the packet path?
  mp.time = 4.0 * kDay;
  mp.ttl = 30.0 * kMinute;  // far too short to traverse the chain
  cfg.manual_packets = {mp};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 0u);
  EXPECT_EQ(net.counters().dropped_ttl, 1u);
}

}  // namespace
}  // namespace dtn::core
