// Shared deterministic trace builders for router tests.
//
// The "relay chain" topology is the paper's Fig. 1(b) in miniature:
// node A shuttles L0<->L1, node B shuttles L1<->L2, node C shuttles
// L2<->L3, with visit windows arranged so that *no two nodes are ever
// co-located*.  Packets from L0 to L3 can therefore only be delivered
// through landmark stations (inter-landmark data flow); node-only
// baselines are structurally unable to deliver them.
#pragma once

#include "trace/trace.hpp"

namespace dtn::testing {

using trace::kDay;
using trace::kHour;
using trace::kMinute;
using trace::Trace;
using trace::Visit;

/// Period of one shuttle cycle in the relay-chain trace.
inline constexpr double kShuttlePeriod = 2.0 * kHour;

/// Three nodes relaying across four landmarks; see header comment.
/// Node i shuttles between landmark i (at [0, 30min) of each period)
/// and landmark i+1 (at [60min, 90min)).
inline Trace relay_chain_trace(double days, std::size_t num_nodes = 3) {
  const auto num_landmarks = static_cast<std::uint32_t>(num_nodes + 1);
  Trace t(num_nodes, num_landmarks);
  const auto periods = static_cast<std::size_t>(days * kDay / kShuttlePeriod);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    for (std::size_t p = 0; p < periods; ++p) {
      const double base = static_cast<double>(p) * kShuttlePeriod;
      t.add_visit(Visit{n, n, base, base + 30.0 * kMinute});
      t.add_visit(
          Visit{n, n + 1, base + 60.0 * kMinute, base + 90.0 * kMinute});
    }
  }
  t.finalize();
  return t;
}

}  // namespace dtn::testing
