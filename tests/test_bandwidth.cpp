#include "core/bandwidth.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtn::core {
namespace {

TEST(BandwidthEstimator, StartsAtZero) {
  BandwidthEstimator bw(4, 0.5);
  for (trace::LandmarkId i = 0; i < 4; ++i) {
    for (trace::LandmarkId j = 0; j < 4; ++j) {
      if (i == j) continue;
      EXPECT_DOUBLE_EQ(bw.bandwidth(i, j), 0.0);
      EXPECT_TRUE(std::isinf(bw.expected_delay(i, j, 100.0)));
    }
  }
  EXPECT_TRUE(bw.neighbors(0).empty());
}

TEST(BandwidthEstimator, EwmaEquationFour) {
  BandwidthEstimator bw(3, 0.5);
  // Unit 1: 4 transits 0->1.
  for (int i = 0; i < 4; ++i) bw.record_transit(0, 1);
  bw.close_unit();
  EXPECT_DOUBLE_EQ(bw.bandwidth(0, 1), 2.0);  // 0.5*4 + 0.5*0
  // Unit 2: 2 transits.
  bw.record_transit(0, 1);
  bw.record_transit(0, 1);
  bw.close_unit();
  EXPECT_DOUBLE_EQ(bw.bandwidth(0, 1), 2.0);  // 0.5*2 + 0.5*2
  // Unit 3: none.
  bw.close_unit();
  EXPECT_DOUBLE_EQ(bw.bandwidth(0, 1), 1.0);
  EXPECT_EQ(bw.units_closed(), 3u);
}

TEST(BandwidthEstimator, RhoOneForgetsHistory) {
  BandwidthEstimator bw(2, 1.0);
  bw.record_transit(0, 1);
  bw.close_unit();
  EXPECT_DOUBLE_EQ(bw.bandwidth(0, 1), 1.0);
  bw.close_unit();  // empty unit wipes everything at rho = 1
  EXPECT_DOUBLE_EQ(bw.bandwidth(0, 1), 0.0);
}

TEST(BandwidthEstimator, ExpectedDelayIsUnitOverBandwidth) {
  BandwidthEstimator bw(2, 1.0);
  for (int i = 0; i < 5; ++i) bw.record_transit(0, 1);
  bw.close_unit();
  EXPECT_DOUBLE_EQ(bw.expected_delay(0, 1, 1000.0), 200.0);
}

TEST(BandwidthEstimator, DirectedLinksIndependent) {
  BandwidthEstimator bw(2, 1.0);
  bw.record_transit(0, 1);
  bw.close_unit();
  EXPECT_GT(bw.bandwidth(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(bw.bandwidth(1, 0), 0.0);
}

TEST(BandwidthEstimator, NeighborsListsPositiveLinks) {
  BandwidthEstimator bw(4, 0.5);
  bw.record_transit(0, 2);
  bw.record_transit(0, 3);
  bw.close_unit();
  const auto n = bw.neighbors(0);
  ASSERT_EQ(n.size(), 2u);
  EXPECT_EQ(n[0], 2u);
  EXPECT_EQ(n[1], 3u);
  EXPECT_TRUE(bw.neighbors(1).empty());
}

TEST(BandwidthEstimator, OpenUnitCountVisible) {
  BandwidthEstimator bw(2, 0.5);
  bw.record_transit(1, 0);
  EXPECT_EQ(bw.open_unit_count(1, 0), 1u);
  bw.close_unit();
  EXPECT_EQ(bw.open_unit_count(1, 0), 0u);
}

TEST(BandwidthEstimator, ConvergesToSteadyRate) {
  BandwidthEstimator bw(2, 0.3);
  for (int unit = 0; unit < 60; ++unit) {
    for (int k = 0; k < 7; ++k) bw.record_transit(0, 1);
    bw.close_unit();
  }
  EXPECT_NEAR(bw.bandwidth(0, 1), 7.0, 1e-6);
}

TEST(BandwidthEstimatorDeath, SelfLoopRejected) {
  BandwidthEstimator bw(3, 0.5);
  EXPECT_DEATH(bw.record_transit(1, 1), "DTN_ASSERT");
}

}  // namespace
}  // namespace dtn::core
