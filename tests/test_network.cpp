#include "net/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dtn::net {
namespace {

using trace::kDay;
using trace::Visit;

// Records every callback and optionally performs scripted transfers.
class RecordingRouter : public Router {
 public:
  struct Event {
    std::string kind;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    double time = 0.0;
  };

  [[nodiscard]] std::string name() const override { return "Recorder"; }
  [[nodiscard]] bool uses_stations() const override { return stations; }

  void on_arrival(Network& net, NodeId node, LandmarkId l) override {
    events.push_back({"arrive", node, l, net.now()});
    if (pickup_on_arrival) {
      const auto origin = net.origin_packets(l);
      const std::vector<PacketId> waiting(origin.begin(), origin.end());
      for (const PacketId pid : waiting) {
        (void)net.pickup_from_origin(node, pid);
      }
    }
  }
  void on_departure(Network& net, NodeId node, LandmarkId l) override {
    events.push_back({"depart", node, l, net.now()});
  }
  void on_contact(Network& net, NodeId arriving, NodeId present,
                  LandmarkId l) override {
    (void)l;
    events.push_back({"contact", arriving, present, net.now()});
  }
  void on_packet_generated(Network& net, PacketId pid) override {
    events.push_back({"packet", pid, net.packet(pid).src, net.now()});
  }
  void on_time_unit(Network& net, std::size_t unit) override {
    events.push_back({"unit", static_cast<std::uint32_t>(unit), 0, net.now()});
  }

  std::vector<Event> events;
  bool pickup_on_arrival = false;
  bool stations = false;
};

// Node 0: L0[0,10] -> L1[20,30] -> L2[40,50];
// Node 1: L0[5,12] -> L2[20,35].
trace::Trace script_trace() {
  trace::Trace t(2, 3);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({0, 1, 20.0, 30.0});
  t.add_visit({0, 2, 40.0, 50.0});
  t.add_visit({1, 0, 5.0, 12.0});
  t.add_visit({1, 2, 20.0, 35.0});
  t.finalize();
  return t;
}

WorkloadConfig quiet_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 100.0;
  cfg.node_memory_kb = 10;
  cfg.ttl = 1000.0;
  return cfg;
}

TEST(Network, ReplaysArrivalsAndDepartures) {
  const auto trace = script_trace();
  RecordingRouter router;
  Network net(trace, router, quiet_workload());
  net.run();
  std::vector<std::string> kinds;
  for (const auto& e : router.events) kinds.push_back(e.kind);
  // t=0 arrive(0,L0); t=5 arrive(1,L0) + contact(1,0); t=10 depart(0);
  // t=12 depart(1); t=20 arrive both (insertion order: node 0 first);
  // t=30/35 departs; t=40 arrive; t=50 depart.
  const std::vector<std::string> expected = {
      "arrive", "arrive", "contact", "depart", "depart",
      "arrive", "arrive", "depart",  "depart", "arrive", "depart"};
  EXPECT_EQ(kinds, expected);
}

TEST(Network, ContactPairIsArrivingThenPresent) {
  const auto trace = script_trace();
  RecordingRouter router;
  Network net(trace, router, quiet_workload());
  net.run();
  const auto it = std::find_if(router.events.begin(), router.events.end(),
                               [](const auto& e) { return e.kind == "contact"; });
  ASSERT_NE(it, router.events.end());
  EXPECT_EQ(it->a, 1u);  // node 1 arrives
  EXPECT_EQ(it->b, 0u);  // node 0 already present
  EXPECT_DOUBLE_EQ(it->time, 5.0);
}

TEST(Network, LocationAndPresenceTracking) {
  const auto trace = script_trace();
  class Probe : public RecordingRouter {
   public:
    void on_arrival(Network& net, NodeId node, LandmarkId l) override {
      RecordingRouter::on_arrival(net, node, l);
      EXPECT_EQ(net.location(node), l);
      const auto at = net.nodes_at(l);
      EXPECT_NE(std::find(at.begin(), at.end(), node), at.end());
    }
    void on_departure(Network& net, NodeId node, LandmarkId l) override {
      RecordingRouter::on_departure(net, node, l);
      EXPECT_EQ(net.location(node), l);  // still present during callback
    }
  } router;
  Network net(trace, router, quiet_workload());
  net.run();
  EXPECT_EQ(net.location(0), trace::kNoLandmark);
}

TEST(Network, HistoryGrowsWithCompletedVisits) {
  const auto trace = script_trace();
  RecordingRouter router;
  Network net(trace, router, quiet_workload());
  net.run();
  const auto h0 = net.history(0);
  ASSERT_EQ(h0.size(), 3u);
  EXPECT_EQ(h0[0].landmark, 0u);
  EXPECT_EQ(h0[1].landmark, 1u);
  EXPECT_EQ(h0[2].landmark, 2u);
  EXPECT_EQ(net.previous_landmark(0), 2u);
}

TEST(Network, ManualPacketGeneratedAtOrigin) {
  const auto trace = script_trace();
  RecordingRouter router;  // no station use
  auto cfg = quiet_workload();
  cfg.manual_packets = {{0, 2, 1.0, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().generated, 1u);
  const Packet& p = net.packet(0);
  EXPECT_EQ(p.src, 0u);
  EXPECT_EQ(p.dst, 2u);
  EXPECT_DOUBLE_EQ(p.created, 1.0);
  // Nobody picked it up: still waiting at the origin.
  EXPECT_EQ(p.state, PacketState::kAtOrigin);
  EXPECT_EQ(net.origin_packets(0).size(), 1u);
}

TEST(Network, PickupAndAutoDelivery) {
  const auto trace = script_trace();
  RecordingRouter router;
  router.pickup_on_arrival = true;
  auto cfg = quiet_workload();
  // Generated at L0 at t=1 for L2; node 1 is at L0 (5..12), carries it
  // and arrives at L2 at t=20: delivered with delay 19.
  cfg.manual_packets = {{0, 2, 1.0, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
  const Packet& p = net.packet(0);
  EXPECT_EQ(p.state, PacketState::kDelivered);
  EXPECT_DOUBLE_EQ(p.delivered_at, 20.0);
  ASSERT_EQ(net.counters().delivery_delays.size(), 1u);
  EXPECT_DOUBLE_EQ(net.counters().delivery_delays[0], 19.0);
  // Pickup + delivery handover = 2 forwarding operations.
  EXPECT_EQ(net.counters().packet_forwards, 2u);
}

TEST(Network, StationModeGeneratesAtStation) {
  const auto trace = script_trace();
  RecordingRouter router;
  router.stations = true;
  auto cfg = quiet_workload();
  cfg.manual_packets = {{1, 2, 0.5, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  const Packet& p = net.packet(0);
  EXPECT_EQ(p.state, PacketState::kAtStation);
  ASSERT_EQ(p.station_path.size(), 1u);
  EXPECT_EQ(p.station_path[0], 1u);
  EXPECT_EQ(net.station_packets(1).size(), 1u);
}

TEST(Network, TtlExpiryDropsFromOrigin) {
  const auto trace = script_trace();
  RecordingRouter router;
  auto cfg = quiet_workload();
  cfg.time_unit = 10.0;
  cfg.manual_packets = {{0, 2, 1.0, /*ttl=*/5.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().dropped_ttl, 1u);
  EXPECT_EQ(net.packet(0).state, PacketState::kDroppedTtl);
  EXPECT_TRUE(net.origin_packets(0).empty());
}

TEST(Network, TtlExpiryDropsFromNodeBuffer) {
  const auto trace = script_trace();
  RecordingRouter router;
  router.pickup_on_arrival = true;
  auto cfg = quiet_workload();
  cfg.time_unit = 6.0;
  cfg.manual_packets = {{0, 1, 1.0, /*ttl=*/8.0}};  // node 1 never visits L1
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().dropped_ttl, 1u);
  EXPECT_TRUE(net.node_packets(0).empty());
  EXPECT_TRUE(net.node_packets(1).empty());
}

TEST(Network, NodeToNodeTransfer) {
  const auto trace = script_trace();
  class Forwarder : public RecordingRouter {
   public:
    void on_contact(Network& net, NodeId arriving, NodeId present,
                    LandmarkId l) override {
      RecordingRouter::on_contact(net, arriving, present, l);
      // Hand everything from the present node to the arriving node.
      const auto carried = net.node_packets(present);
      const std::vector<PacketId> pids(carried.begin(), carried.end());
      for (const PacketId pid : pids) {
        EXPECT_TRUE(net.node_to_node(present, arriving, pid));
      }
    }
  } router;
  router.pickup_on_arrival = true;
  auto cfg = quiet_workload();
  cfg.manual_packets = {{0, 2, 0.5, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  // Node 0 picks up at t=0.5? No: packet generated at t=0.5 while node 0
  // is present; pickup happens on *arrival* only, so node 1 (arriving at
  // t=5) picks it up... unless node 0's arrival preceded generation.
  // Node 1 carries to L2 at t=20: delivered.
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(Network, BufferLimitsRefuseTransfers) {
  const auto trace = script_trace();
  RecordingRouter router;
  router.pickup_on_arrival = true;
  auto cfg = quiet_workload();
  cfg.node_memory_kb = 1;  // room for a single 1 kB packet
  cfg.manual_packets = {{0, 2, 0.1, 0.0}, {0, 2, 0.2, 0.0}, {0, 2, 0.3, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_GT(net.counters().refused_buffer, 0u);
  // Only one of the three can ever be carried per node.
  EXPECT_LE(net.counters().delivered, 2u);
}

TEST(Network, TimeUnitTicksFire) {
  const auto trace = script_trace();
  RecordingRouter router;
  auto cfg = quiet_workload();
  cfg.time_unit = 20.0;  // trace spans [0, 50] -> ticks at 20, 40
  Network net(trace, router, cfg);
  net.run();
  int units = 0;
  for (const auto& e : router.events) {
    if (e.kind == "unit") ++units;
  }
  EXPECT_EQ(units, 2);
}

TEST(Network, PoissonWorkloadRespectsWarmupAndRate) {
  // A long dense trace so the Poisson process has room.
  trace::Trace t(1, 2);
  for (int d = 0; d < 20; ++d) {
    t.add_visit({0, static_cast<trace::LandmarkId>(d % 2), d * kDay,
                 d * kDay + kDay / 2});
  }
  t.finalize();
  RecordingRouter router;
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 10.0;
  cfg.warmup_fraction = 0.25;
  cfg.time_unit = kDay;
  cfg.seed = 11;
  Network net(t, router, cfg);
  net.run();
  // ~2 landmarks * 10/day * ~14.6 days of workload window.
  EXPECT_GT(net.counters().generated, 150u);
  EXPECT_LT(net.counters().generated, 450u);
  for (const auto& e : router.events) {
    if (e.kind == "packet") {
      EXPECT_GE(e.time, net.workload_start());
    }
  }
}

TEST(Network, DestinationWeightsSkewTraffic) {
  // Long trace so the Poisson workload has volume.
  trace::Trace t(1, 4);
  for (int d = 0; d < 40; ++d) {
    t.add_visit({0, static_cast<trace::LandmarkId>(d % 4), d * kDay,
                 d * kDay + kDay / 2});
  }
  t.finalize();
  RecordingRouter router;
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 20.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = kDay;
  cfg.seed = 5;
  cfg.destination_weights = {10.0, 0.0, 1.0, 0.0};
  Network net(t, router, cfg);
  net.run();
  std::size_t to0 = 0, to2 = 0;
  for (const auto& p : net.all_packets()) {
    EXPECT_TRUE(p.dst == 0 || p.dst == 2) << "dst " << p.dst;
    EXPECT_NE(p.dst, p.src);
    if (p.dst == 0) ++to0;
    if (p.dst == 2) ++to2;
  }
  ASSERT_GT(net.counters().generated, 500u);
  // Expected mix: sources 1-3 send ~10/11 of their traffic to L0, but
  // everything source 0 emits goes to L2 (self excluded) — overall
  // roughly 0.70 : 0.30.
  EXPECT_GT(to0, 2 * to2);
}

TEST(Network, DeliveryHopsRecorded) {
  const auto trace = script_trace();
  RecordingRouter router;
  router.pickup_on_arrival = true;
  auto cfg = quiet_workload();
  cfg.manual_packets = {{0, 2, 1.0, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  ASSERT_EQ(net.counters().delivery_hops.size(), 1u);
  EXPECT_EQ(net.counters().delivery_hops[0], 2u);  // pickup + handover
}

TEST(Network, DeterministicAcrossRuns) {
  const auto trace = script_trace();
  auto run_once = [&] {
    RecordingRouter router;
    router.pickup_on_arrival = true;
    auto cfg = quiet_workload();
    cfg.manual_packets = {{0, 2, 1.0, 0.0}};
    Network net(trace, router, cfg);
    net.run();
    return net.counters().packet_forwards;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dtn::net
