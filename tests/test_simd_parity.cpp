// SIMD-vs-scalar bit-equality tests (docs/simd-hot-path.md).
//
// The vectorized hot paths — the predictor's conditional distribution,
// the routing table's column recompute/merge scan, and the router's
// fused carrier-score refinement — promise results bit-identical to
// the scalar loops they replaced: only per-lane IEEE-exact operations
// are used, never fusion or reassociation.  These tests run both code
// paths in one binary via simd::force_scalar_for_test and compare
// outputs through std::bit_cast, so a single flipped mantissa bit
// fails.  On a build where SIMD is compiled out (DTN_SIMD_SCALAR or a
// non-GNU compiler) both paths are the scalar loop and the tests pass
// trivially — that is the point of the dispatch contract, not a gap.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "core/dtn_flow_router.hpp"
#include "core/markov_predictor.hpp"
#include "core/routing_table.hpp"
#include "net/network.hpp"
#include "trace/campus_generator.hpp"
#include "util/simd.hpp"

namespace dtn {
namespace {

using core::DistanceVector;
using core::DtnFlowRouter;
using core::MarkovPredictor;
using core::Route;
using core::RoutingTable;
using net::Network;
using net::WorkloadConfig;
using trace::kDay;

// Restores the previous force-scalar state on scope exit, so these
// tests compose with a CI leg that sets DTN_SIMD_FORCE_SCALAR=1 for
// the whole binary.
class ScalarGuard {
 public:
  explicit ScalarGuard(bool on) : prev_(simd::scalar_forced()) {
    simd::force_scalar_for_test(on);
  }
  ~ScalarGuard() { simd::force_scalar_for_test(prev_); }
  ScalarGuard(const ScalarGuard&) = delete;
  ScalarGuard& operator=(const ScalarGuard&) = delete;

 private:
  bool prev_;
};

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "lane " << i << ": " << a[i] << " vs " << b[i];
  }
}

// A deterministic pseudo-random walk that revisits contexts, so the
// distribution has several successors per context — enough to cover
// full vector lanes plus a scalar remainder at any lane width.
MarkovPredictor trained_predictor(std::size_t landmarks, std::size_t order) {
  MarkovPredictor p(landmarks, order);
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    p.record_visit(static_cast<trace::LandmarkId>(x % landmarks));
  }
  return p;
}

TEST(SimdParity, PredictorDistributionMatchesScalarBitForBit) {
  for (const std::size_t landmarks : {3u, 7u, 16u, 33u}) {
    for (const std::size_t order : {1u, 2u}) {
      const auto p = trained_predictor(landmarks, order);
      std::vector<double> vec_out;
      std::vector<double> scalar_out;
      p.next_distribution(vec_out);
      {
        ScalarGuard guard(true);
        p.next_distribution(scalar_out);
      }
      expect_bitwise_equal(vec_out, scalar_out);
    }
  }
}

// Merge a fixed sequence of distance vectors into two tables, one per
// code path, and compare every cached route bit for bit (primary and
// backup next hop and delay).
RoutingTable merged_table(std::size_t n) {
  RoutingTable t(/*self=*/0, n);
  for (std::size_t v = 1; v < n; ++v) {
    t.set_link_delay(static_cast<trace::LandmarkId>(v),
                     10.0 + 3.7 * static_cast<double>(v));
  }
  std::uint64_t x = 2463534242u;
  for (int round = 0; round < 6; ++round) {
    for (std::size_t origin = 1; origin < n; ++origin) {
      DistanceVector dv;
      dv.origin = static_cast<trace::LandmarkId>(origin);
      dv.seq = static_cast<std::uint64_t>(round);
      dv.delay.resize(n);
      for (std::size_t d = 0; d < n; ++d) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        // A mix of finite delays and unreachable cells.
        dv.delay[d] = (x % 5 == 0) ? core::kInfiniteDelay
                                   : 1.0 + static_cast<double>(x % 1000) / 7.0;
      }
      dv.delay[origin] = 0.0;
      (void)t.merge(dv);
    }
  }
  return t;
}

TEST(SimdParity, RoutingTableColumnsMatchScalarBitForBit) {
  for (const std::size_t n : {4u, 18u, 31u}) {
    auto vec_t = merged_table(n);
    auto scalar_t = merged_table(n);
    for (std::size_t d = 0; d < n; ++d) {
      const Route vec_r = vec_t.route(static_cast<trace::LandmarkId>(d));
      Route scalar_r;
      {
        ScalarGuard guard(true);
        scalar_r = scalar_t.route(static_cast<trace::LandmarkId>(d));
      }
      EXPECT_EQ(vec_r.next, scalar_r.next) << "dst " << d;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(vec_r.delay),
                std::bit_cast<std::uint64_t>(scalar_r.delay))
          << "dst " << d;
      EXPECT_EQ(vec_r.backup_next, scalar_r.backup_next) << "dst " << d;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(vec_r.backup_delay),
                std::bit_cast<std::uint64_t>(scalar_r.backup_delay))
          << "dst " << d;
    }
  }
}

// End-to-end: a campus replay exercises the carrier-score refinement
// sweep, the predictor distribution and the routing-table scans
// together; counters, per-packet vectors and router diagnostics must
// not differ by a single bit between the two paths.
struct RunResult {
  net::RunCounters counters;
  core::DtnFlowDiagnostics diag;
  std::uint64_t events;
};

RunResult run_campus(bool force_scalar) {
  ScalarGuard guard(force_scalar);
  trace::CampusTraceConfig tc;
  tc.num_nodes = 50;
  tc.num_landmarks = 18;
  tc.num_communities = 5;
  tc.days = 8.0;
  tc.seed = 13;
  const auto trace = trace::generate_campus_trace(tc);

  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 4.0;
  cfg.ttl = 4.0 * kDay;
  cfg.time_unit = 1.0 * kDay;
  cfg.warmup_fraction = 0.25;
  cfg.node_memory_kb = 30;
  cfg.seed = 7;

  core::DtnFlowConfig rc;
  rc.dead_end_prevention = true;
  rc.load_balancing = true;
  rc.node_to_node_relay = true;
  DtnFlowRouter router(rc);
  Network net(trace, router, cfg);
  net.run();
  return {net.counters(), router.diagnostics(), net.events_executed()};
}

TEST(SimdParity, CampusReplayMatchesScalarBitForBit) {
  const RunResult vec = run_campus(/*force_scalar=*/false);
  ASSERT_GT(vec.counters.generated, 50u);  // non-vacuous workload
  ASSERT_GT(vec.counters.delivered, 0u);

  const RunResult scalar = run_campus(/*force_scalar=*/true);
  EXPECT_EQ(vec.counters, scalar.counters);
  EXPECT_EQ(vec.diag, scalar.diag);
  EXPECT_EQ(vec.events, scalar.events);
}

}  // namespace
}  // namespace dtn
