#include "net/buffer.hpp"

#include <gtest/gtest.h>

namespace dtn::net {
namespace {

TEST(Buffer, UnboundedAcceptsEverything) {
  Buffer b(0);
  EXPECT_TRUE(b.unbounded());
  for (PacketId i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.add(i, 1000));
  }
  EXPECT_EQ(b.count(), 1000u);
}

TEST(Buffer, CapacityEnforced) {
  Buffer b(3);
  EXPECT_TRUE(b.add(0, 1));
  EXPECT_TRUE(b.add(1, 2));
  EXPECT_FALSE(b.add(2, 1));  // 3 kB used, no room
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.used_kb(), 3u);
}

TEST(Buffer, HasSpaceQuery) {
  Buffer b(5);
  EXPECT_TRUE(b.has_space(5));
  EXPECT_FALSE(b.has_space(6));
  ASSERT_TRUE(b.add(0, 4));
  EXPECT_TRUE(b.has_space(1));
  EXPECT_FALSE(b.has_space(2));
}

TEST(Buffer, RemoveFreesSpace) {
  Buffer b(2);
  ASSERT_TRUE(b.add(7, 2));
  EXPECT_FALSE(b.add(8, 1));
  b.remove(7, 2);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.used_kb(), 0u);
  EXPECT_TRUE(b.add(8, 1));
}

TEST(Buffer, ContainsTracksMembership) {
  Buffer b(10);
  EXPECT_FALSE(b.contains(1));
  ASSERT_TRUE(b.add(1, 1));
  EXPECT_TRUE(b.contains(1));
  b.remove(1, 1);
  EXPECT_FALSE(b.contains(1));
}

TEST(Buffer, PacketsSpanReflectsContents) {
  Buffer b(10);
  ASSERT_TRUE(b.add(3, 1));
  ASSERT_TRUE(b.add(5, 1));
  const auto span = b.packets();
  ASSERT_EQ(span.size(), 2u);
}

TEST(BufferDeath, RemovingAbsentPacketRejected) {
  Buffer b(10);
  EXPECT_DEATH(b.remove(42, 1), "DTN_ASSERT");
}

TEST(BufferDeath, DoubleAddRejected) {
  Buffer b(10);
  ASSERT_TRUE(b.add(1, 1));
  EXPECT_DEATH((void)b.add(1, 1), "DTN_ASSERT");
}

}  // namespace
}  // namespace dtn::net
