#include "net/buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "persist/serializer.hpp"

namespace dtn::net {
namespace {

TEST(Buffer, UnboundedAcceptsEverything) {
  Buffer b(0);
  EXPECT_TRUE(b.unbounded());
  for (PacketId i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.add(i, 1000));
  }
  EXPECT_EQ(b.count(), 1000u);
}

TEST(Buffer, CapacityEnforced) {
  Buffer b(3);
  EXPECT_TRUE(b.add(0, 1));
  EXPECT_TRUE(b.add(1, 2));
  EXPECT_FALSE(b.add(2, 1));  // 3 kB used, no room
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.used_kb(), 3u);
}

TEST(Buffer, HasSpaceQuery) {
  Buffer b(5);
  EXPECT_TRUE(b.has_space(5));
  EXPECT_FALSE(b.has_space(6));
  ASSERT_TRUE(b.add(0, 4));
  EXPECT_TRUE(b.has_space(1));
  EXPECT_FALSE(b.has_space(2));
}

TEST(Buffer, RemoveFreesSpace) {
  Buffer b(2);
  ASSERT_TRUE(b.add(7, 2));
  EXPECT_FALSE(b.add(8, 1));
  b.remove(7, 2);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.used_kb(), 0u);
  EXPECT_TRUE(b.add(8, 1));
}

TEST(Buffer, ContainsTracksMembership) {
  Buffer b(10);
  EXPECT_FALSE(b.contains(1));
  ASSERT_TRUE(b.add(1, 1));
  EXPECT_TRUE(b.contains(1));
  b.remove(1, 1);
  EXPECT_FALSE(b.contains(1));
}

TEST(Buffer, PacketsSpanReflectsContents) {
  Buffer b(10);
  ASSERT_TRUE(b.add(3, 1));
  ASSERT_TRUE(b.add(5, 1));
  const auto span = b.packets();
  ASSERT_EQ(span.size(), 2u);
}

// Loads a Buffer image with the given capacity/byte accounting and no
// ids (such states can only enter through a checkpoint, which is
// exactly where adversarial values come from).
Buffer buffer_from_image(std::uint64_t capacity_kb, std::uint64_t used_kb) {
  persist::Writer w;
  w.begin_section("buffer");
  w.u64(capacity_kb);
  w.u64(used_kb);
  w.u64(0);  // id count
  w.end_section();
  w.finish();
  auto bytes = w.buffer();
  persist::Reader r(std::move(bytes));
  r.expect_section("buffer");
  Buffer b;
  b.load(r);
  r.end_section();
  r.finish();
  return b;
}

TEST(Buffer, HasSpaceDoesNotWrapNearUint64Max) {
  // Regression: has_space compared `used_kb_ + size_kb <= capacity_kb_`,
  // which wraps for capacities near UINT64_MAX and admitted into a full
  // buffer.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const Buffer b = buffer_from_image(kMax, kMax - 1);
  EXPECT_FALSE(b.unbounded());
  EXPECT_TRUE(b.has_space(1));
  EXPECT_FALSE(b.has_space(2));  // wrapped to "fits" before the fix
  EXPECT_FALSE(b.has_space(std::numeric_limits<std::uint32_t>::max()));
}

TEST(Buffer, HasSpaceRejectsOverfullAccounting) {
  // used_kb beyond capacity (corrupt image): nothing fits, and the old
  // wrapping comparison must not resurrect space.
  const Buffer b = buffer_from_image(10, std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(b.has_space(1));
}

TEST(BufferDeath, RemovingAbsentPacketRejected) {
  Buffer b(10);
  EXPECT_DEATH(b.remove(42, 1), "DTN_ASSERT");
}

TEST(BufferDeath, DoubleAddRejected) {
  Buffer b(10);
  ASSERT_TRUE(b.add(1, 1));
  EXPECT_DEATH((void)b.add(1, 1), "DTN_ASSERT");
}

}  // namespace
}  // namespace dtn::net
