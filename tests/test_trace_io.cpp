#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

namespace dtn::trace {
namespace {

Trace sample() {
  Trace t(2, 2);
  t.add_visit({0, 0, 0.0, 10.5});
  t.add_visit({0, 1, 20.0, 30.0});
  t.add_visit({1, 1, 1.25, 2.75});
  t.finalize();
  return t;
}

TEST(TraceIo, RoundTripPreservesVisits) {
  const Trace original = sample();
  std::stringstream buf;
  write_trace_csv(original, buf);
  const Trace loaded = read_trace_csv(buf);
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_landmarks(), original.num_landmarks());
  ASSERT_EQ(loaded.total_visits(), original.total_visits());
  for (NodeId n = 0; n < original.num_nodes(); ++n) {
    const auto a = original.visits(n);
    const auto b = loaded.visits(n);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
    }
  }
}

TEST(TraceIo, HeaderWritten) {
  std::stringstream buf;
  write_trace_csv(sample(), buf);
  std::string first;
  std::getline(buf, first);
  EXPECT_EQ(first, "node,landmark,start,end");
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream buf("0,0,0,1\n");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsBadFieldCount) {
  std::stringstream buf("node,landmark,start,end\n0,0,1\n");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsNonNumeric) {
  std::stringstream buf("node,landmark,start,end\n0,zero,0,1\n");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsInvertedInterval) {
  std::stringstream buf("node,landmark,start,end\n0,0,5,3\n");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream buf("");
  EXPECT_THROW(read_trace_csv(buf), std::runtime_error);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream buf("node,landmark,start,end\n0,0,0,1\n\n1,1,2,3\n");
  const Trace t = read_trace_csv(buf);
  EXPECT_EQ(t.total_visits(), 2u);
  EXPECT_EQ(t.num_nodes(), 2u);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "trace_io_test.csv";
  write_trace_csv(sample(), path);
  const Trace loaded = read_trace_csv(path);
  EXPECT_EQ(loaded.total_visits(), 3u);
  std::remove(path.c_str());
}

TEST(TraceIo, ThrowsOnMissingFile) {
  EXPECT_THROW(read_trace_csv(std::string("/no/such/file.csv")),
               std::runtime_error);
}

// Parse errors must be attributable: loading a broken file names the
// file (and the line) in the exception, not just "bad number somewhere".
TEST(TraceIo, ParseErrorNamesTheFile) {
  const std::string path = ::testing::TempDir() + "trace_io_broken.csv";
  {
    std::ofstream out(path);
    out << "node,landmark,start,end\n0,zero,0,1\n";
  }
  try {
    (void)read_trace_csv(path);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

// The stream overload labels errors with the caller-supplied source
// name (default "<stream>").
TEST(TraceIo, StreamParseErrorUsesSourceLabel) {
  std::stringstream bad("node,landmark,start,end\n0,0,5,3\n");
  try {
    (void)read_trace_csv(bad, "unit-test-buffer");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unit-test-buffer"),
              std::string::npos)
        << e.what();
  }
  std::stringstream also_bad("node,landmark,start,end\n0,0,5,3\n");
  try {
    (void)read_trace_csv(also_bad);
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("<stream>"), std::string::npos)
        << e.what();
  }
}

// A file cut mid-record (what a crashed writer leaves behind) must be a
// clean error, not a silent EOF: the cut value can parse as a *wrong*
// number ("...,27.5" truncated to "...,2" below), so crash-resume reads
// would otherwise ingest corrupt visits (docs/checkpointing.md).
TEST(TraceIo, RejectsTruncatedTrailingRecord) {
  std::stringstream cut("node,landmark,start,end\n0,0,0,1\n1,1,2,2");
  try {
    (void)read_trace_csv(cut, "cut-buffer");
    FAIL() << "expected a truncation error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
    EXPECT_NE(what.find("cut-buffer"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
  }

  const std::string path = ::testing::TempDir() + "trace_io_truncated.csv";
  {
    std::ofstream out(path);
    out << "node,landmark,start,end\n0,0,0,1\n1,1,2,2";  // cut from 27.5
  }
  EXPECT_THROW((void)read_trace_csv(path), std::runtime_error);
  std::remove(path.c_str());
}

// ... including a record whose *fields* are cut, not just the value.
TEST(TraceIo, RejectsTrailingRecordCutMidFields) {
  std::stringstream cut("node,landmark,start,end\n0,0,0,1\n1,1");
  EXPECT_THROW((void)read_trace_csv(cut), std::runtime_error);
}

}  // namespace
}  // namespace dtn::trace
