// Bounded-memory bundle store (docs/bounded-store.md).
//
// Three layers of coverage:
//  * unit — admission, eviction-policy victim selection (property
//    style), retention constraints, the received-id dedup set, the
//    spill backend's FIFO recall, and checkpoint round-trips that span
//    a spill file;
//  * audit — every seeded store corruption is detected and the revert
//    passes again, standalone and through Network::debug_corrupt_for_test;
//  * system — overloaded replays degrade gracefully (shed/evict instead
//    of dying), stay bit-identical across reruns and across the sharded
//    engine, and resume from checkpoints spanning spill files.
#include "net/bundle_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "persist/checkpoint.hpp"
#include "persist/serializer.hpp"
#include "routing/epidemic.hpp"
#include "sim/invariant_auditor.hpp"
#include "test_helpers.hpp"
#include "trace/campus_generator.hpp"

namespace dtn {
namespace {

using core::DtnFlowRouter;
using dtn::testing::relay_chain_trace;
using net::Admit;
using net::BundleStore;
using net::EvictionPolicy;
using net::Network;
using net::PacketId;
using net::PacketState;
using net::Retention;
using net::WorkloadConfig;
using persist::CheckpointConfig;
using persist::CheckpointManager;
using sim::AuditReport;
using trace::kDay;

// Fresh per-test spill/checkpoint directory under the gtest temp root.
std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("dtn_store_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

BundleStore::AdmitRequest request(PacketId pid, std::uint32_t size_kb = 1) {
  BundleStore::AdmitRequest req;
  req.pid = pid;
  req.size_kb = size_kb;
  req.logical = pid;
  return req;
}

// -- policies / parsing --------------------------------------------------

TEST(BundleStore, PolicyNamesRoundTrip) {
  for (const EvictionPolicy p :
       {EvictionPolicy::kReject, EvictionPolicy::kDropOldest,
        EvictionPolicy::kDropLargestExpectedDelay,
        EvictionPolicy::kTtlExpire}) {
    EvictionPolicy parsed{};
    ASSERT_TRUE(net::parse_eviction_policy(net::to_string(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  EvictionPolicy parsed{};
  EXPECT_FALSE(net::parse_eviction_policy("fifo", &parsed));
}

// -- admission / eviction -----------------------------------------------

TEST(BundleStore, RejectPolicyRefusesWhenFull) {
  BundleStore s;
  s.configure(2, EvictionPolicy::kReject, false, {});
  std::vector<PacketId> evicted;
  EXPECT_EQ(s.admit(request(0), &evicted), Admit::kStored);
  EXPECT_EQ(s.admit(request(1), &evicted), Admit::kStored);
  EXPECT_EQ(s.admit(request(2), &evicted), Admit::kRefusedCapacity);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(s.count(), 2u);
}

TEST(BundleStore, DropOldestEvictsSmallestAdmissionSequence) {
  BundleStore s;
  s.configure(3, EvictionPolicy::kDropOldest, false, {});
  std::vector<PacketId> evicted;
  ASSERT_EQ(s.admit(request(10), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(11), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(12), &evicted), Admit::kStored);
  EXPECT_EQ(s.admit(request(13), &evicted), Admit::kStored);
  ASSERT_EQ(evicted, std::vector<PacketId>{10});
  EXPECT_FALSE(s.contains(10));
  EXPECT_TRUE(s.contains(13));
  // The next eviction continues in admission order.
  evicted.clear();
  EXPECT_EQ(s.admit(request(14), &evicted), Admit::kStored);
  EXPECT_EQ(evicted, std::vector<PacketId>{11});
}

TEST(BundleStore, DropLargestExpectedDelayEvictsWorstTiesToOldest) {
  BundleStore s;
  s.configure(3, EvictionPolicy::kDropLargestExpectedDelay, false, {});
  std::vector<PacketId> evicted;
  auto with_delay = [](PacketId pid, double delay) {
    auto req = request(pid);
    req.expected_delay = delay;
    return req;
  };
  ASSERT_EQ(s.admit(with_delay(0, 5.0), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(with_delay(1, 9.0), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(with_delay(2, 9.0), &evicted), Admit::kStored);
  // Worst delay is 9.0, shared by 1 and 2; the older (1) goes first.
  EXPECT_EQ(s.admit(with_delay(3, 1.0), &evicted), Admit::kStored);
  EXPECT_EQ(evicted, std::vector<PacketId>{1});
}

TEST(BundleStore, TtlExpireEvictsEarliestDeadline) {
  BundleStore s;
  s.configure(3, EvictionPolicy::kTtlExpire, false, {});
  std::vector<PacketId> evicted;
  auto with_deadline = [](PacketId pid, double deadline) {
    auto req = request(pid);
    req.deadline = deadline;
    return req;
  };
  ASSERT_EQ(s.admit(with_deadline(0, 300.0), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(with_deadline(1, 100.0), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(with_deadline(2, 200.0), &evicted), Admit::kStored);
  EXPECT_EQ(s.admit(with_deadline(3, 400.0), &evicted), Admit::kStored);
  EXPECT_EQ(evicted, std::vector<PacketId>{1});
}

TEST(BundleStore, EvictionFreesEnoughForLargerBundles) {
  BundleStore s;
  s.configure(4, EvictionPolicy::kDropOldest, false, {});
  std::vector<PacketId> evicted;
  ASSERT_EQ(s.admit(request(0, 1), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(1, 1), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(2, 1), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(3, 1), &evicted), Admit::kStored);
  // A 3 kB bundle needs three victims, oldest first.
  EXPECT_EQ(s.admit(request(4, 3), &evicted), Admit::kStored);
  EXPECT_EQ(evicted, (std::vector<PacketId>{0, 1, 2}));
  EXPECT_EQ(s.used_kb(), 4u);
}

TEST(BundleStore, RetainedEntriesAreNeverVictims) {
  BundleStore s;
  s.configure(2, EvictionPolicy::kDropOldest, false, {});
  std::vector<PacketId> evicted;
  auto retained = request(0);
  retained.retention = Retention::kDispatchPending;
  ASSERT_EQ(s.admit(retained, &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(1), &evicted), Admit::kStored);
  EXPECT_EQ(s.retained_count(), 1u);
  // Oldest is retained: the free entry (1) is the victim instead.
  EXPECT_EQ(s.admit(request(2), &evicted), Admit::kStored);
  EXPECT_EQ(evicted, std::vector<PacketId>{1});
  EXPECT_TRUE(s.contains(0));
}

TEST(BundleStore, InfeasibleEvictionLeavesStoreUntouched) {
  // Regression guard: when retained entries make room impossible, the
  // store must refuse WITHOUT partially evicting anything first.
  BundleStore s;
  s.configure(4, EvictionPolicy::kDropOldest, false, {});
  std::vector<PacketId> evicted;
  auto pinned = request(0, 2);
  pinned.retention = Retention::kForwardPending;
  ASSERT_EQ(s.admit(pinned, &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(1, 1), &evicted), Admit::kStored);
  // 3/4 kB used; a 3 kB bundle can only fit by evicting the pinned
  // entry, which is off limits — the free 1 kB entry must survive.
  EXPECT_EQ(s.admit(request(2, 3), &evicted), Admit::kRefusedCapacity);
  EXPECT_TRUE(evicted.empty());
  EXPECT_TRUE(s.contains(1));
  EXPECT_EQ(s.used_kb(), 3u);
}

TEST(BundleStore, RetentionClearsAndRecounts) {
  BundleStore s;
  s.configure(4, EvictionPolicy::kDropOldest, false, {});
  std::vector<PacketId> evicted;
  ASSERT_EQ(s.admit(request(0), &evicted), Admit::kStored);
  EXPECT_EQ(s.retention(0), Retention::kNone);
  s.set_retention_if_held(0, Retention::kForwardPending);
  EXPECT_EQ(s.retention(0), Retention::kForwardPending);
  EXPECT_EQ(s.retained_count(), 1u);
  s.set_retention_if_held(0, Retention::kNone);
  EXPECT_EQ(s.retained_count(), 0u);
  // Absent ids are a no-op, not an error.
  s.set_retention_if_held(99, Retention::kForwardPending);
  EXPECT_EQ(s.retained_count(), 0u);
}

// -- dedup ---------------------------------------------------------------

TEST(BundleStore, DedupRefusesReadmittedLogical) {
  BundleStore s;
  s.configure(8, EvictionPolicy::kReject, /*dedup=*/true, {});
  std::vector<PacketId> evicted;
  auto original = request(5);
  original.logical = 5;
  ASSERT_EQ(s.admit(original, &evicted), Admit::kStored);
  EXPECT_TRUE(s.seen_logical(5));
  s.remove(5, 1);
  // A copy of the same logical comes back: refused by the dedup set.
  auto copy = request(9);
  copy.logical = 5;
  EXPECT_EQ(s.admit(copy, &evicted), Admit::kRefusedDuplicate);
  // Call sites that legitimately re-host a logical opt out per request.
  copy.check_dedup = false;
  EXPECT_EQ(s.admit(copy, &evicted), Admit::kStored);
}

TEST(BundleStore, DedupDisabledSeesNothing) {
  BundleStore s;
  s.configure(8, EvictionPolicy::kReject, /*dedup=*/false, {});
  std::vector<PacketId> evicted;
  ASSERT_EQ(s.admit(request(5), &evicted), Admit::kStored);
  EXPECT_FALSE(s.seen_logical(5));
  EXPECT_EQ(s.dedup_seen_count(), 0u);
}

// -- spill backend -------------------------------------------------------

TEST(BundleStore, SpillOverflowRecallsFifo) {
  const auto dir = fresh_dir("fifo");
  BundleStore s;
  s.configure(2, EvictionPolicy::kReject, false,
              (dir / "station.spill").string());
  ASSERT_TRUE(s.spill_enabled());
  std::vector<PacketId> evicted;
  ASSERT_EQ(s.admit(request(0), &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(1), &evicted), Admit::kStored);
  auto overflow = request(2);
  overflow.allow_spill = true;
  EXPECT_EQ(s.admit(overflow, &evicted), Admit::kSpilled);
  auto overflow2 = request(3);
  overflow2.allow_spill = true;
  EXPECT_EQ(s.admit(overflow2, &evicted), Admit::kSpilled);
  EXPECT_EQ(s.spilled_count(), 2u);
  EXPECT_EQ(s.spilled_kb(), 2u);
  // Spilled bundles are held but invisible to carriers.
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.spilled(0));
  EXPECT_TRUE(s.spilled(3));
  EXPECT_EQ(s.count(), 2u);
  // Freeing memory recalls in spill order: 2 first, then 3.
  std::vector<PacketId> recalled;
  s.remove(0, 1, &recalled);
  EXPECT_EQ(recalled, std::vector<PacketId>{2});
  EXPECT_FALSE(s.spilled(2));
  EXPECT_TRUE(s.contains(2));
  recalled.clear();
  s.remove(1, 1, &recalled);
  EXPECT_EQ(recalled, std::vector<PacketId>{3});
  EXPECT_EQ(s.spilled_count(), 0u);
  EXPECT_EQ(s.spilled_kb(), 0u);
}

TEST(BundleStore, RemovingASpilledBundleSkipsTheFile) {
  const auto dir = fresh_dir("remove_spilled");
  BundleStore s;
  s.configure(1, EvictionPolicy::kReject, false,
              (dir / "station.spill").string());
  std::vector<PacketId> evicted;
  ASSERT_EQ(s.admit(request(0), &evicted), Admit::kStored);
  for (PacketId pid : {1u, 2u, 3u}) {
    auto req = request(pid);
    req.allow_spill = true;
    ASSERT_EQ(s.admit(req, &evicted), Admit::kSpilled);
  }
  // A TTL sweep removes a spilled bundle directly (middle of the FIFO).
  s.remove(2, 1);
  EXPECT_EQ(s.spilled_count(), 2u);
  // Recall order of the survivors is unchanged.
  std::vector<PacketId> recalled;
  s.remove(0, 1, &recalled);
  EXPECT_EQ(recalled, std::vector<PacketId>{1});
  AuditReport report;
  s.audit(report, "store");
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(BundleStore, CheckpointRoundTripSpansSpillFile) {
  const auto dir = fresh_dir("ckpt");
  BundleStore a;
  a.configure(2, EvictionPolicy::kDropOldest, /*dedup=*/true,
              (dir / "a.spill").string());
  std::vector<PacketId> evicted;
  ASSERT_EQ(a.admit(request(0), &evicted), Admit::kStored);
  auto pinned = request(1);
  pinned.retention = Retention::kDispatchPending;
  ASSERT_EQ(a.admit(pinned, &evicted), Admit::kStored);
  for (PacketId pid : {2u, 3u}) {
    auto req = request(pid);
    req.allow_spill = true;
    ASSERT_EQ(a.admit(req, &evicted), Admit::kSpilled);
  }
  persist::Writer wa;
  wa.begin_section("store");
  a.save(wa);
  wa.end_section();
  wa.finish();

  // Resume into a different spill directory: the snapshot, not the
  // original machine's file, is the source of truth.
  BundleStore b;
  b.configure(2, EvictionPolicy::kDropOldest, /*dedup=*/true,
              (dir / "b.spill").string());
  {
    persist::Reader r(wa.buffer());
    r.expect_section("store");
    b.load(r);
    r.end_section();
    r.finish();
  }
  persist::Writer wb;
  wb.begin_section("store");
  b.save(wb);
  wb.end_section();
  wb.finish();
  // save -> load -> save is byte-identical.
  EXPECT_EQ(wa.buffer(), wb.buffer());
  EXPECT_EQ(b.spilled_count(), 2u);
  EXPECT_EQ(b.retained_count(), 1u);
  EXPECT_TRUE(b.seen_logical(3));
  AuditReport report;
  b.audit(report, "resumed");
  EXPECT_TRUE(report.ok()) << report.to_string();
  // The rewritten spill file really holds the records: recall reads it.
  std::vector<PacketId> recalled;
  b.remove(0, 1, &recalled);
  EXPECT_EQ(recalled, std::vector<PacketId>{2});
}

TEST(BundleStore, LoadRejectsSpilledRecordsWithoutSpillBackend) {
  const auto dir = fresh_dir("reject_spill");
  BundleStore a;
  a.configure(1, EvictionPolicy::kReject, false,
              (dir / "a.spill").string());
  std::vector<PacketId> evicted;
  ASSERT_EQ(a.admit(request(0), &evicted), Admit::kStored);
  auto req = request(1);
  req.allow_spill = true;
  ASSERT_EQ(a.admit(req, &evicted), Admit::kSpilled);
  persist::Writer w;
  w.begin_section("store");
  a.save(w);
  w.end_section();
  w.finish();
  BundleStore b;
  b.configure(1, EvictionPolicy::kReject, false, {});
  persist::Reader r(w.buffer());
  r.expect_section("store");
  EXPECT_THROW(b.load(r), persist::FormatError);
}

// -- standalone audit negatives -----------------------------------------

// Build a store exercising every feature, seed each corruption, prove
// the audit reports it, revert, prove it passes again.
TEST(BundleStoreAudit, EverySeededCorruptionIsDetectedAndRevertible) {
  const auto dir = fresh_dir("audit");
  BundleStore s;
  s.configure(2, EvictionPolicy::kDropOldest, /*dedup=*/true,
              (dir / "s.spill").string());
  std::vector<PacketId> evicted;
  auto pinned = request(0);
  pinned.retention = Retention::kDispatchPending;
  ASSERT_EQ(s.admit(pinned, &evicted), Admit::kStored);
  ASSERT_EQ(s.admit(request(1), &evicted), Admit::kStored);
  auto over = request(2);
  over.allow_spill = true;
  ASSERT_EQ(s.admit(over, &evicted), Admit::kSpilled);

  const auto audit_ok = [&s]() {
    AuditReport report;
    s.audit(report, "store");
    return report.ok();
  };
  ASSERT_TRUE(audit_ok());

  s.debug_corrupt_used_kb_for_test(+1);
  EXPECT_FALSE(audit_ok());
  s.debug_corrupt_used_kb_for_test(-1);
  EXPECT_TRUE(audit_ok());

  s.debug_corrupt_retained_for_test(+1);
  EXPECT_FALSE(audit_ok());
  s.debug_corrupt_retained_for_test(-1);
  EXPECT_TRUE(audit_ok());

  s.debug_corrupt_spilled_kb_for_test(+1);
  EXPECT_FALSE(audit_ok());
  s.debug_corrupt_spilled_kb_for_test(-1);
  EXPECT_TRUE(audit_ok());

  s.debug_corrupt_dedup_order_for_test(+1);
  EXPECT_FALSE(audit_ok());
  s.debug_corrupt_dedup_order_for_test(-1);
  EXPECT_TRUE(audit_ok());

  s.debug_corrupt_pool_size_for_test(+1);
  EXPECT_FALSE(audit_ok());
  s.debug_corrupt_pool_size_for_test(-1);
  EXPECT_TRUE(audit_ok());
}

// -- network-level audit negatives --------------------------------------

bool any_failure_mentions(const AuditReport& report, const std::string& what) {
  for (const auto& f : report.failures()) {
    if (f.detail.find(what) != std::string::npos ||
        f.check.find(what) != std::string::npos) {
      return true;
    }
  }
  return false;
}

WorkloadConfig chain_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 20.0;
  cfg.warmup_fraction = 0.25;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 2.0 * kDay;
  return cfg;
}

TEST(NetworkStoreAudit, DetectsRetainedCacheCorruption) {
  const auto trace = relay_chain_trace(4.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  ASSERT_TRUE(
      net.debug_corrupt_for_test(Network::Corruption::kStoreRetention));
  AuditReport corrupted;
  net.audit(corrupted);
  EXPECT_FALSE(corrupted.ok());
  EXPECT_TRUE(any_failure_mentions(corrupted, "retained"))
      << corrupted.to_string();
  ASSERT_TRUE(
      net.debug_corrupt_for_test(Network::Corruption::kStoreRetention, -1));
  AuditReport reverted;
  net.audit(reverted);
  EXPECT_TRUE(reverted.ok()) << reverted.to_string();
}

TEST(NetworkStoreAudit, DetectsSpillByteCorruption) {
  const auto trace = relay_chain_trace(4.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  ASSERT_TRUE(
      net.debug_corrupt_for_test(Network::Corruption::kStoreSpillBytes));
  AuditReport corrupted;
  net.audit(corrupted);
  EXPECT_FALSE(corrupted.ok());
  EXPECT_TRUE(any_failure_mentions(corrupted, "spill"))
      << corrupted.to_string();
  ASSERT_TRUE(
      net.debug_corrupt_for_test(Network::Corruption::kStoreSpillBytes, -1));
  AuditReport reverted;
  net.audit(reverted);
  EXPECT_TRUE(reverted.ok()) << reverted.to_string();
}

// Dedup-set and pool-slab corruption are only observable while packets
// are buffered, so they are seeded mid-run by a router that first picks
// up traffic (populating node stores and their dedup sets).
class StoreCorruptingRouter : public net::Router {
 public:
  explicit StoreCorruptingRouter(Network::Corruption kind) : kind_(kind) {}
  [[nodiscard]] std::string name() const override { return "StoreCorruptor"; }

  void on_arrival(Network& net, net::NodeId node, net::LandmarkId l) override {
    const auto origin = net.origin_packets(l);
    const std::vector<net::PacketId> waiting(origin.begin(), origin.end());
    for (const net::PacketId pid : waiting) {
      if (!net.node_buffer(node).has_space(net.packet(pid).size_kb)) break;
      (void)net.pickup_from_origin(node, pid);
    }
    if (fired_) return;
    if (!net.debug_corrupt_for_test(kind_)) return;  // nothing to corrupt yet
    fired_ = true;
    net.audit(corrupted_report_);
    ASSERT_TRUE(net.debug_corrupt_for_test(kind_, -1));
    net.audit(reverted_report_);
  }

  Network::Corruption kind_;
  bool fired_ = false;
  AuditReport corrupted_report_;
  AuditReport reverted_report_;
};

void run_mid_run_corruption(Network::Corruption kind,
                            const std::string& mention) {
  const auto trace = relay_chain_trace(4.0);
  StoreCorruptingRouter router(kind);
  auto cfg = chain_workload();
  cfg.store.dedup = true;
  Network net(trace, router, cfg);
  net.run();
  ASSERT_TRUE(router.fired_);
  EXPECT_FALSE(router.corrupted_report_.ok());
  EXPECT_TRUE(any_failure_mentions(router.corrupted_report_, mention))
      << router.corrupted_report_.to_string();
  EXPECT_TRUE(router.reverted_report_.ok())
      << router.reverted_report_.to_string();
}

TEST(NetworkStoreAudit, DetectsDedupOrderCorruptionMidRun) {
  run_mid_run_corruption(Network::Corruption::kStoreDedupOrder, "dedup");
}

TEST(NetworkStoreAudit, DetectsPoolSizeCorruptionMidRun) {
  run_mid_run_corruption(Network::Corruption::kStorePoolSize, "slab");
}

// -- duplicate-delivery suppression (multicopy) --------------------------

// The relay chain never co-locates nodes, so multicopy tests use a star:
// every node meets at hub L1 with overlapping windows but covers a
// different outer landmark (same shape as test_multicopy.cpp).
trace::Trace star_trace(double days) {
  trace::Trace t(3, 4);
  const double period = 2.0 * trace::kHour;
  const auto periods = static_cast<std::size_t>(days * kDay / period);
  for (std::size_t p = 0; p < periods; ++p) {
    const double base = static_cast<double>(p) * period;
    using trace::kMinute;
    t.add_visit({0, 0, base, base + 20.0 * kMinute});
    t.add_visit({0, 1, base + 30.0 * kMinute, base + 60.0 * kMinute});
    t.add_visit({1, 1, base + 40.0 * kMinute, base + 70.0 * kMinute});
    t.add_visit({1, 2, base + 80.0 * kMinute, base + 95.0 * kMinute});
    t.add_visit({2, 1, base + 50.0 * kMinute, base + 75.0 * kMinute});
    t.add_visit({2, 3, base + 85.0 * kMinute, base + 100.0 * kMinute});
  }
  t.finalize();
  return t;
}

// Replicates greedily with NO delivered-logical pre-check, so the
// network-level suppression path must retire stale copies itself.
class BlindReplicator : public net::Router {
 public:
  [[nodiscard]] std::string name() const override { return "Blind"; }
  void on_arrival(Network& net, net::NodeId node, net::LandmarkId l) override {
    const auto origin = net.origin_packets(l);
    const std::vector<net::PacketId> waiting(origin.begin(), origin.end());
    for (const net::PacketId pid : waiting) {
      (void)net.pickup_from_origin(node, pid);
    }
  }
  void on_contact(Network& net, net::NodeId arriving, net::NodeId present,
                  net::LandmarkId l) override {
    (void)l;
    for (net::NodeId from : {arriving, present}) {
      const net::NodeId to = from == arriving ? present : arriving;
      const auto carried = net.node_packets(from);
      const std::vector<net::PacketId> pids(carried.begin(), carried.end());
      for (const net::PacketId pid : pids) {
        if (net.node_holds_logical(to, net.packet(pid).logical)) continue;
        (void)net.replicate_node_to_node(from, to, pid);
      }
    }
  }
};

TEST(DuplicateSuppression, RetiresCopiesOfDeliveredLogicals) {
  const auto trace = star_trace(6.0);
  BlindReplicator router;
  auto cfg = chain_workload();
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  ASSERT_GT(net.counters().delivered, 0u);
  ASSERT_GT(net.counters().replications, 0u);
  // Copies of already-delivered logicals were caught at a transfer
  // admission point and retired instead of circulating to TTL death.
  EXPECT_GT(net.counters().duplicates_suppressed, 0u);
}

TEST(DuplicateSuppression, DedupReducesReplicationPressure) {
  const auto trace = star_trace(6.0);
  auto run = [&trace](bool dedup) {
    routing::EpidemicRouter router;
    auto cfg = chain_workload();
    cfg.store.dedup = dedup;
    Network net(trace, router, cfg);
    net.run();
    net.validate_invariants();
    return net.counters();
  };
  const auto off = run(false);
  const auto on = run(true);
  ASSERT_GT(off.delivered, 0u);
  // The dedup set stops re-replication toward nodes that already
  // carried a logical; it can only reduce copy traffic.
  EXPECT_LE(on.replications, off.replications);
  // Determinism with dedup on.
  EXPECT_EQ(run(true), on);
}

// -- overload system tests ----------------------------------------------

WorkloadConfig overload_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 40.0;  // well past station capacity
  cfg.warmup_fraction = 0.25;
  cfg.time_unit = 1.0 * kDay;
  cfg.node_memory_kb = 30;
  cfg.ttl = 2.0 * kDay;
  cfg.seed = 21;
  return cfg;
}

trace::Trace overload_trace() {
  trace::CampusTraceConfig tc;
  tc.num_nodes = 40;
  tc.num_landmarks = 12;
  tc.num_communities = 4;
  tc.days = 6.0;
  tc.seed = 13;
  return trace::generate_campus_trace(tc);
}

net::RunCounters run_overload(const WorkloadConfig& cfg,
                              std::size_t shards = 1) {
  const auto trace = overload_trace();
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  if (shards <= 1) {
    net.run();
  } else {
    net.run_sharded(shards);
  }
  net.validate_invariants();
  return net.counters();
}

TEST(Overload, BoundedStationsDegradeGracefullyAndDeterministically) {
  const auto unbounded = run_overload(overload_workload());
  ASSERT_GT(unbounded.delivered, 0u);
  ASSERT_EQ(unbounded.evicted_policy + unbounded.admission_shed, 0u);

  auto cfg = overload_workload();
  cfg.store.station_memory_kb = 12;
  cfg.store.policy = EvictionPolicy::kDropOldest;
  const auto bounded = run_overload(cfg);
  // Overload sheds/evicts instead of dying; the replay still completes
  // and still delivers.
  EXPECT_GT(bounded.evicted_policy + bounded.admission_shed, 0u);
  EXPECT_GT(bounded.delivered, 0u);
  EXPECT_LE(bounded.delivered, unbounded.delivered);
  EXPECT_EQ(bounded.generated, unbounded.generated);  // offered load equal
  // Bit-identical rerun.
  EXPECT_EQ(run_overload(cfg), bounded);
}

TEST(Overload, EvictionPoliciesDivergeButEachIsDeterministic) {
  auto cfg = overload_workload();
  cfg.store.station_memory_kb = 12;
  cfg.store.policy = EvictionPolicy::kTtlExpire;
  const auto ttl = run_overload(cfg);
  EXPECT_GT(ttl.evicted_policy + ttl.admission_shed, 0u);
  EXPECT_EQ(run_overload(cfg), ttl);
}

TEST(Overload, ShardedOverloadMatchesSerialBitForBit) {
  auto cfg = overload_workload();
  cfg.store.station_memory_kb = 12;
  cfg.store.policy = EvictionPolicy::kDropOldest;
  const auto serial = run_overload(cfg);
  ASSERT_GT(serial.evicted_policy + serial.admission_shed, 0u);
  EXPECT_EQ(run_overload(cfg, 2), serial);
  EXPECT_EQ(run_overload(cfg, 4), serial);
}

TEST(Overload, SpillAbsorbsOverflowInsteadOfShedding) {
  auto cfg = overload_workload();
  cfg.store.station_memory_kb = 12;
  cfg.store.policy = EvictionPolicy::kReject;
  cfg.store.spill_dir = fresh_dir("absorb").string();
  const auto spilled = run_overload(cfg);
  EXPECT_GT(spilled.spilled_bundles, 0u);
  EXPECT_GT(spilled.recalled_bundles, 0u);
  // Spill-enabled station admission never sheds generated traffic.
  EXPECT_EQ(spilled.admission_shed, 0u);
  EXPECT_GT(spilled.delivered, 0u);
  // Bit-identical rerun over the same (truncated-on-configure) files.
  EXPECT_EQ(run_overload(cfg), spilled);
}

TEST(Overload, GenerationShedsOnlyWhenNothingCanMakeRoom) {
  // Stations of 2 kB whose only occupants are dispatch-pending source
  // data: relayed traffic cannot displace it, and new generations at a
  // full station are shed with state kEvicted.
  const auto trace = relay_chain_trace(6.0);
  auto cfg = chain_workload();
  cfg.store.station_memory_kb = 2;
  cfg.store.policy = EvictionPolicy::kDropOldest;
  DtnFlowRouter router;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_GT(net.counters().admission_shed, 0u);
  EXPECT_GT(net.counters().delivered, 0u);
  std::uint64_t evicted_state = 0;
  for (const net::Packet& p : net.all_packets()) {
    if (p.state == PacketState::kEvicted) ++evicted_state;
  }
  EXPECT_EQ(evicted_state,
            net.counters().admission_shed + net.counters().evicted_policy);
}

// -- checkpoint resume across a spill file ------------------------------

TEST(Overload, CheckpointResumeSpansSpillFile) {
  const auto trace = overload_trace();
  auto cfg = overload_workload();
  cfg.store.station_memory_kb = 12;
  cfg.store.policy = EvictionPolicy::kReject;
  cfg.store.spill_dir = fresh_dir("ckpt_full").string();

  net::RunCounters full;
  std::uint64_t events = 0;
  {
    DtnFlowRouter router;
    Network net(trace, router, cfg);
    net.run();
    net.validate_invariants();
    full = net.counters();
    events = net.events_executed();
  }
  ASSERT_GT(full.spilled_bundles, 0u);

  // Suspend mid-run (spill files populated), then resume in a fresh
  // process-equivalent pointed at a DIFFERENT spill directory: the
  // snapshot, not the original files, must carry the spilled bundles.
  CheckpointConfig cc;
  cc.dir = fresh_dir("ckpt_snaps").string();
  cc.stop_after_events = events / 2;
  auto suspended_cfg = cfg;
  suspended_cfg.store.spill_dir = fresh_dir("ckpt_before").string();
  {
    CheckpointManager mgr(cc);
    DtnFlowRouter router;
    Network net(trace, router, suspended_cfg);
    ASSERT_FALSE(net.run(mgr));  // suspended, snapshot written
    ASSERT_TRUE(mgr.has_checkpoint());
  }
  CheckpointConfig resume = cc;
  resume.stop_after_events = 0;
  auto resumed_cfg = cfg;
  resumed_cfg.store.spill_dir = fresh_dir("ckpt_after").string();
  CheckpointManager mgr(resume);
  DtnFlowRouter router;
  Network net(trace, router, resumed_cfg);
  ASSERT_TRUE(net.run(mgr));
  net.validate_invariants();
  EXPECT_EQ(net.counters(), full);
}

}  // namespace
}  // namespace dtn
