#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dtn::sim {
namespace {

Event typed(double t, std::uint32_t a, EventKind kind = EventKind::kArrival) {
  Event ev;
  ev.time = t;
  ev.kind = kind;
  ev.a = a;
  return ev;
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(typed(3.0, 3));
  q.schedule(typed(1.0, 1));
  q.schedule(typed(2.0, 2));
  std::vector<std::uint32_t> order;
  while (!q.empty()) order.push_back(q.pop().a);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  for (std::uint32_t i = 0; i < 10; ++i) q.schedule(typed(5.0, i));
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(q.pop().a, i);
}

TEST(EventQueue, NextTimeAndSize) {
  EventQueue q;
  q.schedule(typed(4.0, 0));
  q.schedule(typed(2.0, 1));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.next_seq(), 1u);
}

TEST(EventQueue, SchedulingAtCurrentTimeRunsAfterQueuedTies) {
  // The contract allows t == last_popped(): the late event's larger seq
  // orders it after everything already queued at that instant.
  EventQueue q;
  q.schedule(typed(1.0, 0));
  q.schedule(typed(1.0, 1));
  EXPECT_EQ(q.pop().a, 0u);
  EXPECT_DOUBLE_EQ(q.last_popped(), 1.0);
  q.schedule(typed(1.0, 2));  // t == last_popped(): legal
  EXPECT_EQ(q.pop().a, 1u);
  EXPECT_EQ(q.pop().a, 2u);
}

TEST(EventQueue, SeqFloorReservesLowSequences) {
  EventQueue q;
  q.set_seq_floor(1000);
  EXPECT_EQ(q.schedule(typed(1.0, 0)), 1000u);
  EXPECT_EQ(q.schedule(typed(1.0, 1)), 1001u);
}

TEST(EventQueue, ReserveGrowsCapacityUpfront) {
  EventQueue q;
  q.reserve(4096);
  const std::size_t cap = q.capacity();
  EXPECT_GE(cap, 4096u);
  for (std::uint32_t i = 0; i < 4096; ++i) q.schedule(typed(1.0, i));
  EXPECT_EQ(q.capacity(), cap);  // no reallocation while within reserve
}

TEST(EventQueueDeath, SchedulingInThePastRejected) {
  EventQueue q;
  q.schedule(typed(10.0, 0));
  (void)q.pop();
  EXPECT_DEATH(q.schedule(typed(5.0, 1)), "DTN_ASSERT");
}

TEST(Simulator, NowTracksEventTime) {
  Simulator sim;
  std::vector<double> times;
  sim.at(1.5, [&] { times.push_back(sim.now()); });
  sim.at(3.5, [&] { times.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.5);
  EXPECT_DOUBLE_EQ(times[1], 3.5);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(2.0, [&] {
    sim.after(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, CallbackTiesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(5.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbackSlotsAreRecycled) {
  // Closure slots return to the free list after firing; heavy reuse
  // must not grow the pool beyond the peak number in flight.
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 100) sim.after(1.0, chain);
  };
  sim.at(0.0, chain);
  sim.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(sim.events_executed(), 100u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(2.0);  // inclusive
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilOnEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

TEST(Simulator, TypedEventsDispatchThroughInstalledDispatcher) {
  Simulator sim;
  std::vector<std::uint32_t> seen;
  sim.set_dispatcher(
      [](void* ctx, const Event& ev) {
        static_cast<std::vector<std::uint32_t>*>(ctx)->push_back(ev.a);
      },
      &seen);
  Event ev;
  ev.kind = EventKind::kTimeUnitTick;
  ev.a = 7;
  sim.schedule(1.0, ev);
  ev.a = 9;
  sim.schedule(0.5, ev);
  sim.run();
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{9, 7}));
  EXPECT_EQ(sim.events_executed(), 2u);
}

// A minimal EventSource: a pre-sorted list with seqs below the floor.
class ListSource final : public EventSource {
 public:
  explicit ListSource(std::vector<Event> events)
      : events_(std::move(events)) {}
  [[nodiscard]] bool exhausted() const override {
    return next_ >= events_.size();
  }
  [[nodiscard]] const Event& peek() const override { return events_[next_]; }
  void advance() override { ++next_; }

 private:
  std::vector<Event> events_;
  std::size_t next_ = 0;
};

TEST(Simulator, MergesEventSourceWithQueueInTimeSeqOrder) {
  Simulator sim;
  std::vector<std::pair<EventKind, std::uint32_t>> seen;
  sim.set_dispatcher(
      [](void* ctx, const Event& ev) {
        static_cast<std::vector<std::pair<EventKind, std::uint32_t>>*>(ctx)
            ->push_back({ev.kind, ev.a});
      },
      &seen);
  // Source events (seqs 0..2, below the floor) tie with queue events at
  // t=2.0: the source side must win the tie.
  std::vector<Event> src_events;
  for (std::uint32_t i = 0; i < 3; ++i) {
    Event ev;
    ev.time = static_cast<double>(i + 1);
    ev.seq = i;
    ev.kind = EventKind::kArrival;
    ev.a = i;
    src_events.push_back(ev);
  }
  ListSource source(std::move(src_events));
  sim.set_seq_floor(3);
  Event q1;
  q1.kind = EventKind::kTimeUnitTick;
  q1.a = 100;
  sim.schedule(2.0, q1);  // ties with source event at t=2
  Event q2;
  q2.kind = EventKind::kTimeUnitTick;
  q2.a = 200;
  sim.schedule(0.5, q2);  // before everything
  sim.run_until(10.0, &source);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen[0].second, 200u);                 // t=0.5 queue
  EXPECT_EQ(seen[1].second, 0u);                   // t=1 source
  EXPECT_EQ(seen[2].second, 1u);                   // t=2 source (tie win)
  EXPECT_EQ(seen[3].second, 100u);                 // t=2 queue
  EXPECT_EQ(seen[4].second, 2u);                   // t=3 source
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilLeavesLaterSourceEventsPending) {
  Simulator sim;
  int count = 0;
  sim.set_dispatcher(
      [](void* ctx, const Event&) { ++*static_cast<int*>(ctx); }, &count);
  std::vector<Event> src_events;
  for (std::uint32_t i = 0; i < 4; ++i) {
    Event ev;
    ev.time = static_cast<double>(i);
    ev.seq = i;
    ev.kind = EventKind::kArrival;
    src_events.push_back(ev);
  }
  ListSource source(std::move(src_events));
  sim.set_seq_floor(4);
  sim.run_until(2.0, &source);  // events at t=0,1,2 run; t=3 stays
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(source.exhausted());
  EXPECT_DOUBLE_EQ(source.peek().time, 3.0);
}

}  // namespace
}  // namespace dtn::sim
