#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dtn::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeAndSize) {
  EventQueue q;
  q.schedule(4.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 5) q.schedule(count * 1.0, chain);
  };
  q.schedule(0.0, chain);
  while (!q.empty()) q.run_next();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.executed(), 5u);
}

TEST(EventQueueDeath, SchedulingInThePastRejected) {
  EventQueue q;
  q.schedule(10.0, [] {});
  q.run_next();
  EXPECT_DEATH(q.schedule(5.0, [] {}), "DTN_ASSERT");
}

TEST(Simulator, NowTracksEventTime) {
  Simulator sim;
  std::vector<double> times;
  sim.at(1.5, [&] { times.push_back(sim.now()); });
  sim.at(3.5, [&] { times.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.5);
  EXPECT_DOUBLE_EQ(times[1], 3.5);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  double fired_at = -1.0;
  sim.at(2.0, [&] {
    sim.after(3.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(10.0, [&] { ++fired; });
  sim.run_until(2.0);  // inclusive
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilOnEmptyQueueAdvancesClock) {
  Simulator sim;
  sim.run_until(42.0);
  EXPECT_DOUBLE_EQ(sim.now(), 42.0);
}

}  // namespace
}  // namespace dtn::sim
