#include "core/dtn_flow_router.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.hpp"
#include "test_helpers.hpp"

namespace dtn::core {
namespace {

using dtn::testing::kShuttlePeriod;
using dtn::testing::relay_chain_trace;
using net::Network;
using net::WorkloadConfig;
using trace::kDay;
using trace::kHour;
using trace::kMinute;

WorkloadConfig chain_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;  // manual packets only
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 2.0 * kDay;
  return cfg;
}

TEST(DtnFlowRouter, DeliversAlongLandmarkChain) {
  const auto trace = relay_chain_trace(10.0);
  DtnFlowRouter router;
  auto cfg = chain_workload();
  // Warm for 5 days, then a packet from L0 to L3 — deliverable only by
  // the inter-landmark flow (no two nodes ever meet).
  cfg.manual_packets = {{0, 3, 5.0 * kDay, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
  const net::Packet& p = net.packet(0);
  EXPECT_EQ(p.state, net::PacketState::kDelivered);
  // Expected hop sequence: station0 -> A -> station1 -> B -> station2 ->
  // C -> delivered at L3, 5 hours end to end.
  EXPECT_NEAR(p.delivered_at - p.created, 5.0 * kHour, kMinute);
  ASSERT_GE(p.station_path.size(), 3u);
  EXPECT_EQ(p.station_path[0], 0u);
  EXPECT_EQ(p.station_path[1], 1u);
  EXPECT_EQ(p.station_path[2], 2u);
}

TEST(DtnFlowRouter, RoutingTablesConvergeOverChain) {
  const auto trace = relay_chain_trace(10.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  // Every landmark reaches every other; next hops follow the chain.
  for (net::LandmarkId l = 0; l < 4; ++l) {
    EXPECT_DOUBLE_EQ(router.routing_table(l).coverage(), 1.0) << "l=" << l;
  }
  EXPECT_EQ(router.routing_table(0).route(3).next, 1u);
  EXPECT_EQ(router.routing_table(0).route(1).next, 1u);
  EXPECT_EQ(router.routing_table(3).route(0).next, 2u);
  // Delay to a farther destination is strictly larger.
  EXPECT_GT(router.routing_table(0).delay_to(3),
            router.routing_table(0).delay_to(1));
}

TEST(DtnFlowRouter, BandwidthMeasuredOnChainLinksOnly) {
  const auto trace = relay_chain_trace(8.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  const auto& bw = router.bandwidth();
  for (net::LandmarkId i = 0; i < 4; ++i) {
    for (net::LandmarkId j = 0; j < 4; ++j) {
      if (i == j) continue;
      const bool adjacent = (i + 1 == j) || (j + 1 == i);
      if (adjacent) {
        EXPECT_GT(bw.bandwidth(i, j), 0.0) << i << "->" << j;
      } else {
        EXPECT_DOUBLE_EQ(bw.bandwidth(i, j), 0.0) << i << "->" << j;
      }
    }
  }
  // 12 periods/day, one transit per period per direction, EWMA over
  // half-day units -> ~6 transits/unit.
  EXPECT_NEAR(bw.bandwidth(0, 1), 6.0, 1.5);
}

TEST(DtnFlowRouter, PredictionsNearPerfectOnDeterministicShuttles) {
  const auto trace = relay_chain_trace(6.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  const auto& d = router.diagnostics();
  ASSERT_GT(d.predictions_scored, 100u);
  EXPECT_GT(static_cast<double>(d.predictions_correct) /
                static_cast<double>(d.predictions_scored),
            0.95);
  // Accuracy estimates get driven to the ceiling.
  EXPECT_GT(router.accuracy(0, 0), 0.9);
  EXPECT_GT(router.accuracy(1, 1), 0.9);
}

TEST(DtnFlowRouter, WorksWithoutDirectDeliveryAndRefinement) {
  const auto trace = relay_chain_trace(10.0);
  DtnFlowConfig rc;
  rc.direct_delivery = false;
  rc.refine_carrier_selection = false;
  DtnFlowRouter router(rc);
  auto cfg = chain_workload();
  cfg.manual_packets = {{0, 3, 5.0 * kDay, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(DtnFlowRouter, HigherOrderPredictorAlsoDelivers) {
  const auto trace = relay_chain_trace(10.0);
  DtnFlowConfig rc;
  rc.predictor_order = 2;
  DtnFlowRouter router(rc);
  auto cfg = chain_workload();
  cfg.manual_packets = {{0, 3, 5.0 * kDay, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(DtnFlowRouter, ExpectedDelayCarriedWithPacket) {
  const auto trace = relay_chain_trace(10.0);
  DtnFlowRouter router;
  auto cfg = chain_workload();
  cfg.manual_packets = {{0, 3, 5.0 * kDay, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  const net::Packet& p = net.packet(0);
  EXPECT_EQ(p.next_hop, 3u);  // last assignment targeted the destination
  EXPECT_GT(p.expected_delay, 0.0);
  EXPECT_TRUE(std::isfinite(p.expected_delay));
}

TEST(DtnFlowRouter, ControlTrafficAccounted) {
  const auto trace = relay_chain_trace(4.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  // Every transit carries a 4-entry table each way.
  EXPECT_GT(net.counters().control_entries, 100.0);
}

TEST(DtnFlowRouter, DvExchangeThinningCutsMaintenance) {
  // §IV-C.3: stable tables allow a lower exchange frequency.  Carrying
  // a distance vector on every 4th transit must cut the control traffic
  // ~4x while routing still works.
  const auto trace = relay_chain_trace(12.0);
  auto run_with = [&](std::size_t every) {
    DtnFlowConfig rc;
    rc.dv_exchange_every = every;
    DtnFlowRouter router(rc);
    auto cfg = chain_workload();
    cfg.manual_packets = {{0, 3, 6.0 * kDay, 0.0}};
    Network net(trace, router, cfg);
    net.run();
    return std::make_pair(net.counters().control_entries,
                          net.counters().delivered);
  };
  const auto [entries_every, delivered_every] = run_with(1);
  const auto [entries_thinned, delivered_thinned] = run_with(4);
  EXPECT_EQ(delivered_every, 1u);
  EXPECT_EQ(delivered_thinned, 1u);
  EXPECT_LT(entries_thinned, entries_every / 3.0);
  EXPECT_GT(entries_thinned, entries_every / 6.0);
}

TEST(DtnFlowRouter, FrequentLandmarksFromHistory) {
  const auto trace = relay_chain_trace(4.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  const auto top = DtnFlowRouter::frequent_landmarks(net, 0, 3);
  ASSERT_EQ(top.size(), 2u);  // node 0 only ever visits L0 and L1
  EXPECT_TRUE((top[0] == 0 && top[1] == 1) || (top[0] == 1 && top[1] == 0));
}

// -- dead-end prevention (§IV-E.1) -------------------------------------

// Node D shuttles L0<->L1 predictably, then makes one unexpected trip to
// L2 ("garage") and parks there for good.  Node E shuttles L2<->L1 the
// whole time.  A packet from L0 to L1 given to D just before the
// unexpected trip dies with D unless dead-end prevention hands it to
// L2's station, where E can rescue it.
trace::Trace dead_end_trace(double park_day, double days) {
  trace::Trace t(2, 3);
  const double period = 2.0 * kHour;
  const double park_at = park_day * kDay;
  const auto periods = static_cast<std::size_t>(days * kDay / period);
  for (std::size_t p = 0; p < periods; ++p) {
    const double base = static_cast<double>(p) * period;
    // D: full L0->L1 shuttle cycles strictly before the park trip.
    if (base + period <= park_at) {
      t.add_visit({0, 0, base, base + 30.0 * kMinute});
      t.add_visit({0, 1, base + 60.0 * kMinute, base + 90.0 * kMinute});
    }
    // E: L2<->L1 shuttle every *other* period (so the L2->L1 link is
    // slower than L0->L1 and the hold rule keeps the packet on D).
    if (p % 2 == 0) {
      t.add_visit({1, 2, base + 30.0 * kMinute, base + 55.0 * kMinute});
      t.add_visit({1, 1, base + 95.0 * kMinute, base + 115.0 * kMinute});
    }
  }
  // D's final L0 visit (where the test packet is generated), then the
  // unexpected trip: D parks at L2 ("garage") until the end.
  t.add_visit({0, 0, park_at, park_at + 30.0 * kMinute});
  t.add_visit({0, 2, park_at + 60.0 * kMinute, days * kDay});
  t.finalize();
  return t;
}

TEST(DtnFlowRouter, DeadEndPreventionRescuesParkedPackets) {
  const double park_day = 6.0;
  const double days = 12.0;
  const auto trace = dead_end_trace(park_day, days);

  auto run_with = [&](bool prevention) {
    DtnFlowConfig rc;
    rc.dead_end_prevention = prevention;
    rc.dead_end_theta = 2.0;
    rc.dead_end_min_records = 5;
    DtnFlowRouter router(rc);
    WorkloadConfig cfg = chain_workload();
    cfg.ttl = 4.0 * kDay;
    // Generated at L0 during D's final visit there, destined to L1:
    // D takes it (predicted next = 1) but drives to L2 and parks.
    cfg.manual_packets = {{0, 1, park_day * kDay + 10.0 * kMinute, 0.0}};
    Network net(trace, router, cfg);
    net.run();
    return std::make_pair(net.counters().delivered,
                          router.diagnostics().dead_ends_detected);
  };

  const auto [delivered_off, deadends_off] = run_with(false);
  const auto [delivered_on, deadends_on] = run_with(true);
  EXPECT_EQ(delivered_off, 0u);
  EXPECT_EQ(deadends_off, 0u);
  EXPECT_EQ(delivered_on, 1u);
  EXPECT_GT(deadends_on, 0u);
}

// -- loop detection & correction (§IV-E.2) ------------------------------

TEST(DtnFlowRouter, InjectedLoopDetectedAndCorrected) {
  const auto trace = relay_chain_trace(16.0);

  auto run_with = [&](bool correction) {
    DtnFlowConfig rc;
    rc.loop_correction = correction;
    // Pin a 0<->1 cycle for destination 3 after tables have formed.
    rc.loop_injections = {{3, {0, 1}, 8}};
    DtnFlowRouter router(rc);
    WorkloadConfig cfg = chain_workload();
    cfg.ttl = 3.0 * kDay;
    cfg.manual_packets = {{0, 3, 6.0 * kDay, 0.0}};
    Network net(trace, router, cfg);
    net.run();
    return std::make_pair(net.counters().delivered, router.diagnostics());
  };

  const auto [delivered_off, diag_off] = run_with(false);
  const auto [delivered_on, diag_on] = run_with(true);
  // Without correction the packet circles 0->1->0->... until TTL.
  EXPECT_GT(diag_off.loops_detected, 0u);
  EXPECT_EQ(diag_off.loops_corrected, 0u);
  EXPECT_EQ(delivered_off, 0u);
  // With correction the loop is broken and the packet gets through.
  EXPECT_GT(diag_on.loops_detected, 0u);
  EXPECT_GT(diag_on.loops_corrected, 0u);
  EXPECT_EQ(delivered_on, 1u);
}

// -- load balancing (§IV-E.3) -------------------------------------------

TEST(DtnFlowRouter, LoadBalancingDivertsToBackupUnderOverload) {
  // Six landmarks, five shuttle nodes forming two parallel routes
  // 0->1->... is overloaded by tiny carrier memory; backup via 0->2.
  // Topology: A: 0<->1, B: 1<->3, C: 0<->2, D: 2<->3 (dst 3 reachable
  // via 1 or 2); node A has the *same* buffer as others but the link
  // 0->1 is made attractive (A runs twice as often), so the optimal
  // route for everything is via 1 and it congests.
  trace::Trace t(4, 4);
  const double period = 2.0 * kHour;
  const auto periods = static_cast<std::size_t>(20.0 * kDay / period);
  auto add_shuttle = [&](std::uint32_t node, std::uint32_t a, std::uint32_t b,
                         double offset, std::size_t every) {
    for (std::size_t p = 0; p < periods; p += every) {
      const double base = static_cast<double>(p) * period + offset;
      t.add_visit({node, a, base, base + 20.0 * kMinute});
      t.add_visit({node, b, base + 40.0 * kMinute, base + 60.0 * kMinute});
    }
  };
  add_shuttle(0, 0, 1, 0.0, 1);                 // A: every period
  add_shuttle(1, 1, 3, 61.0 * kMinute, 1);      // B: every period
  add_shuttle(2, 0, 2, 2.0 * kMinute, 1);       // C: every period
  add_shuttle(3, 2, 3, 63.0 * kMinute, 2);      // D slower: every other
  t.finalize();

  auto run_with = [&](bool balancing) {
    DtnFlowConfig rc;
    rc.load_balancing = balancing;
    rc.overload_lambda = 2.0;
    DtnFlowRouter router(rc);
    WorkloadConfig cfg;
    cfg.packets_per_landmark_per_day = 0.0;
    cfg.warmup_fraction = 0.0;
    cfg.time_unit = 0.5 * kDay;
    cfg.node_memory_kb = 2;  // tiny carriers: the 0->1 link saturates
    cfg.ttl = 5.0 * kDay;
    // Far more traffic than the primary route can carry within TTL
    // (~24 packets/day through A/B); the 0->2->3 backup adds capacity.
    for (int i = 0; i < 400; ++i) {
      cfg.manual_packets.push_back(
          {0, 3, 8.0 * kDay + i * 2.0 * kMinute, 0.0});
    }
    Network net(t, router, cfg);
    net.run();
    return std::make_pair(net.counters().delivered,
                          router.diagnostics().balancing_diversions);
  };

  const auto [delivered_off, diversions_off] = run_with(false);
  const auto [delivered_on, diversions_on] = run_with(true);
  EXPECT_EQ(diversions_off, 0u);
  EXPECT_GT(diversions_on, 0u);
  EXPECT_GE(delivered_on, delivered_off);
}

TEST(DtnFlowRouter, DownloadCapBoundsPacketsPerAssociation) {
  // B_up on the downlink: a newly arrived carrier receives at most
  // `max_downloads_per_arrival` packets even when the station holds
  // many more.
  const auto trace = relay_chain_trace(10.0);
  DtnFlowConfig rc;
  rc.max_downloads_per_arrival = 2;
  DtnFlowRouter router(rc);
  auto cfg = chain_workload();
  cfg.node_memory_kb = 100;
  // 10 packets land at L0's station while no suitable carrier is there
  // (generated just after node 0 departs at base+30min).
  for (int i = 0; i < 10; ++i) {
    cfg.manual_packets.push_back(
        {0, 2, 6.0 * kDay + 31.0 * kMinute + i * 10.0, 0.0});
  }
  Network net(trace, router, cfg);
  net.run();
  // Node 0 visits L0 once per 2 h period; with the cap it drains the
  // backlog 2 packets per visit, so deliveries spread over >= 5 visits
  // (the uncapped router would take all 10 at once).
  const auto& delays = net.counters().delivery_delays;
  ASSERT_EQ(delays.size(), 10u);
  const auto [min_it, max_it] =
      std::minmax_element(delays.begin(), delays.end());
  EXPECT_GT(*max_it - *min_it, 7.0 * kHour);
}

// -- node-to-node relay (§VI future work) --------------------------------

TEST(DtnFlowRouter, NodeToNodeRelayHandsOffToBetterCarrier) {
  // X shuttles L0->L1 but detours to L2 every 5th period (so its
  // prediction accuracy at L0 degrades); Y shuttles L0->L1 reliably and
  // reaches L1 *earlier* each period.  With the hybrid relay, packets X
  // picked up migrate to Y at their L0 co-location and arrive sooner.
  trace::Trace t(2, 3);
  const double period = 2.0 * kHour;
  const auto periods = static_cast<std::size_t>(20.0 * kDay / period);
  for (std::size_t p = 0; p < periods; ++p) {
    const double base = static_cast<double>(p) * period;
    t.add_visit({0, 0, base, base + 30.0 * kMinute});
    t.add_visit({0, static_cast<trace::LandmarkId>(p % 5 == 0 ? 2 : 1),
                 base + 60.0 * kMinute, base + 90.0 * kMinute});
    t.add_visit({1, 0, base + 5.0 * kMinute, base + 25.0 * kMinute});
    t.add_visit({1, 1, base + 40.0 * kMinute, base + 55.0 * kMinute});
  }
  t.finalize();

  auto run_with = [&](bool relay) {
    DtnFlowConfig rc;
    rc.node_to_node_relay = relay;
    DtnFlowRouter router(rc);
    WorkloadConfig cfg = chain_workload();
    cfg.ttl = 1.0 * kDay;
    // A packet at the start of several periods, while only X (node 0)
    // is connected at L0.
    for (int k = 0; k < 20; ++k) {
      cfg.manual_packets.push_back(
          {0, 1, (10.0 + k * 0.5) * kDay + 1.0 * kMinute, 0.0});
    }
    Network net(t, router, cfg);
    net.run();
    return std::make_pair(net.counters().delivered,
                          net.counters().total_delay /
                              std::max<double>(1.0, net.counters().delivered));
  };

  const auto [delivered_off, delay_off] = run_with(false);
  const auto [delivered_on, delay_on] = run_with(true);
  EXPECT_GE(delivered_on, delivered_off);
  EXPECT_LT(delay_on, delay_off);
}

TEST(DtnFlowRouterDeath, InvalidConfigRejected) {
  DtnFlowConfig rc;
  rc.predictor_order = 4;
  EXPECT_DEATH(DtnFlowRouter{rc}, "DTN_ASSERT");
  DtnFlowConfig rc2;
  rc2.bandwidth_rho = 0.0;
  EXPECT_DEATH(DtnFlowRouter{rc2}, "DTN_ASSERT");
}

}  // namespace
}  // namespace dtn::core
