// Replication layer + the multi-copy reference routers (Epidemic,
// binary Spray-and-Wait).  These are extra-paper additions; the tests
// pin down the copy semantics: one delivery per logical packet, copy
// transfers counted as forwarding, obsolete copies retired.
#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "net/network.hpp"
#include "routing/direct.hpp"
#include "routing/epidemic.hpp"
#include "routing/factory.hpp"
#include "routing/spray_wait.hpp"
#include "test_helpers.hpp"

namespace dtn::routing {
namespace {

using net::Network;
using net::PacketState;
using net::WorkloadConfig;
using trace::kDay;
using trace::kHour;
using trace::kMinute;

WorkloadConfig quiet() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 2.0 * kDay;
  return cfg;
}

// Three nodes all meeting at hub L1 but covering different outer
// landmarks: node 0: L0<->L1, node 1: L1<->L2, node 2: L1<->L3, with
// overlapping windows at L1.
trace::Trace star_trace(double days) {
  trace::Trace t(3, 4);
  const double period = 2.0 * kHour;
  const auto periods = static_cast<std::size_t>(days * kDay / period);
  for (std::size_t p = 0; p < periods; ++p) {
    const double base = static_cast<double>(p) * period;
    t.add_visit({0, 0, base, base + 20.0 * kMinute});
    t.add_visit({0, 1, base + 30.0 * kMinute, base + 60.0 * kMinute});
    t.add_visit({1, 1, base + 40.0 * kMinute, base + 70.0 * kMinute});
    t.add_visit({1, 2, base + 80.0 * kMinute, base + 95.0 * kMinute});
    t.add_visit({2, 1, base + 50.0 * kMinute, base + 75.0 * kMinute});
    t.add_visit({2, 3, base + 85.0 * kMinute, base + 100.0 * kMinute});
  }
  t.finalize();
  return t;
}

TEST(Replication, CopyInheritsLogicalAndCountsForward) {
  const auto trace = star_trace(2.0);
  class Replicator : public net::Router {
   public:
    std::string name() const override { return "Replicator"; }
    void on_packet_generated(Network& net, net::PacketId pid) override {
      const auto& p = net.packet(pid);
      for (const auto n : net.nodes_at(p.src)) {
        if (net.pickup_from_origin(n, pid)) break;
      }
    }
    void on_contact(Network& net, net::NodeId a, net::NodeId b,
                    net::LandmarkId) override {
      for (const auto& [from, to] :
           {std::pair{a, b}, std::pair{b, a}}) {
        const std::vector<net::PacketId> pids(net.node_packets(from).begin(),
                                              net.node_packets(from).end());
        for (const auto pid : pids) {
          if (!net.node_holds_logical(to, net.packet(pid).logical)) {
            copies.push_back(net.replicate_node_to_node(from, to, pid));
          }
        }
      }
    }
    std::vector<net::PacketId> copies;
  } router;
  auto cfg = quiet();
  // Generated while node 0 sits at L0 (its [0, 20min) window).
  cfg.manual_packets = {{0, 2, 5.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  ASSERT_FALSE(router.copies.empty());
  const auto first_copy = router.copies.front();
  ASSERT_NE(first_copy, net::kNoPacket);
  EXPECT_EQ(net.packet(first_copy).logical, 0u);
  EXPECT_NE(net.packet(first_copy).id, 0u);
  EXPECT_GT(net.counters().replications, 0u);
  // One logical delivery at most, despite multiple copies.
  EXPECT_LE(net.counters().delivered, 1u);
}

TEST(Replication, SecondCopyArrivingBecomesObsolete) {
  // Node 1 and node 0 both end up carrying a copy destined to L1 (the
  // hub): the slower copy must retire as kObsoleteCopy, not double-count.
  const auto trace = star_trace(2.0);
  EpidemicRouter router;
  auto cfg = quiet();
  cfg.manual_packets = {{0, 2, 0.5 * kHour + 5.0 * kMinute, 0.0},
                        {0, 3, 0.5 * kHour + 6.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_EQ(net.counters().delivered, 2u);  // both logical packets arrive
  std::size_t obsolete = 0;
  for (const auto& p : net.all_packets()) {
    if (p.state == PacketState::kObsoleteCopy) ++obsolete;
  }
  EXPECT_GT(net.all_packets().size(), 2u);  // copies were made
}

TEST(Epidemic, DeliversWhereSingleCopyRoutersStruggle) {
  const auto trace = star_trace(6.0);
  EpidemicRouter epidemic;
  DirectDeliveryRouter direct;
  auto cfg = quiet();
  // L0 -> L3: only node 2 visits L3; node 0 picks up at L0.  Direct
  // delivery never gets there; epidemic infects node 2 at the hub.
  cfg.manual_packets = {{0, 3, 2.0 * kDay + 5.0 * kMinute, 0.0}};
  Network e(trace, epidemic, cfg);
  e.run();
  e.validate_invariants();
  Network d(trace, direct, cfg);
  d.run();
  EXPECT_EQ(e.counters().delivered, 1u);
  EXPECT_EQ(d.counters().delivered, 0u);
}

TEST(Epidemic, DoesNotReinfectDeliveredPackets) {
  const auto trace = star_trace(6.0);
  EpidemicRouter router;
  auto cfg = quiet();
  cfg.manual_packets = {{0, 2, 1.0 * kDay + 5.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_EQ(net.counters().delivered, 1u);
  // After delivery no copy should linger in any buffer past the next
  // sweep; count active copies at the end.
  for (const auto& p : net.all_packets()) {
    EXPECT_TRUE(is_terminal(p.state)) << "packet " << p.id;
  }
}

TEST(SprayWait, TicketsSplitBinarily) {
  const auto trace = star_trace(4.0);
  SprayWaitConfig sc;
  sc.initial_copies = 8;
  SprayAndWaitRouter router(sc);
  auto cfg = quiet();
  cfg.manual_packets = {{0, 3, 0.5 * kHour + 5.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  // Total copies bounded by L = 8.
  std::size_t copies = 0;
  for (const auto& p : net.all_packets()) {
    if (p.logical == 0u) ++copies;
  }
  EXPECT_LE(copies, 8u);
  EXPECT_GE(copies, 2u);  // at least one spray happened at the hub
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(SprayWait, SingleTicketNeverSprays) {
  const auto trace = star_trace(4.0);
  SprayWaitConfig sc;
  sc.initial_copies = 1;
  SprayAndWaitRouter router(sc);
  auto cfg = quiet();
  cfg.manual_packets = {{0, 3, 0.5 * kHour + 5.0 * kMinute, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().replications, 0u);
}

TEST(SprayWait, CostBetweenDirectAndEpidemic) {
  const auto trace = star_trace(8.0);
  auto cfg = quiet();
  for (int i = 0; i < 40; ++i) {
    cfg.manual_packets.push_back(
        {0, 3, 1.0 * kDay + i * 20.0 * kMinute, 0.0});
  }
  auto run = [&](const std::string& name) {
    const auto router = make_router(name);
    Network net(trace, *router, cfg);
    net.run();
    return net.counters();
  };
  const auto direct = run("Direct");
  const auto spray = run("SprayWait");
  const auto epidemic = run("Epidemic");
  EXPECT_GE(spray.delivered, direct.delivered);
  EXPECT_GE(epidemic.delivered, spray.delivered);
  EXPECT_LE(spray.replications, epidemic.replications);
}

TEST(Factory, MultiCopyNamesConstruct) {
  EXPECT_EQ(make_router("Epidemic")->name(), "Epidemic");
  EXPECT_EQ(make_router("SprayWait")->name(), "SprayWait");
}

}  // namespace
}  // namespace dtn::routing
