#include "metrics/experiment.hpp"
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include "routing/direct.hpp"
#include "routing/prophet.hpp"
#include "test_helpers.hpp"

namespace dtn::metrics {
namespace {

using dtn::testing::relay_chain_trace;
using trace::kDay;
using trace::kMinute;

net::WorkloadConfig quiet() {
  net::WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 2.0 * kDay;
  return cfg;
}

// Two nodes; node 0 visits L0 then L1 (deliverable), packets to L2 fail.
trace::Trace mini_trace() {
  trace::Trace t(1, 3);
  for (int d = 0; d < 8; ++d) {
    const double base = d * kDay;
    t.add_visit({0, 0, base, base + 30.0 * kMinute});
    t.add_visit({0, 1, base + 60.0 * kMinute, base + 90.0 * kMinute});
  }
  t.finalize();
  return t;
}

TEST(Summarize, SuccessRateAndDelays) {
  const auto trace = mini_trace();
  routing::DirectDeliveryRouter router;
  auto cfg = quiet();
  cfg.manual_packets = {{0, 1, 2.0 * kDay + 5.0 * kMinute, 0.0},   // delivered
                        {0, 2, 2.0 * kDay + 6.0 * kMinute, 0.0}};  // fails
  net::Network net(trace, router, cfg);
  net.run();
  const RunResult r = summarize(net, router.name());
  EXPECT_EQ(r.generated, 2u);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_DOUBLE_EQ(r.success_rate, 0.5);
  // Delivered at the next L1 arrival: 2d+60min; created 2d+5min.
  EXPECT_NEAR(r.avg_delay, 55.0 * kMinute, 1.0);
  // Overall delay averages the failure as experiment duration.
  EXPECT_GT(r.overall_delay, r.avg_delay);
  EXPECT_NEAR(r.overall_delay, (r.avg_delay + r.failure_delay) / 2.0, 1.0);
  ASSERT_EQ(r.delivery_delays.size(), 1u);
}

TEST(Summarize, CostModelConvertsEntries) {
  const auto trace = relay_chain_trace(4.0);
  routing::ProphetRouter router;
  net::Network net(trace, router, quiet());
  net.run();
  CostModel cm;
  cm.entries_per_op = 50.0;
  const RunResult r50 = summarize(net, router.name(), cm);
  cm.entries_per_op = 25.0;
  const RunResult r25 = summarize(net, router.name(), cm);
  EXPECT_NEAR(r25.control_cost, 2.0 * r50.control_cost, 1e-9);
  EXPECT_DOUBLE_EQ(r50.total_cost, r50.forwarding_cost + r50.control_cost);
}

TEST(Summarize, EmptyWorkloadIsAllZero) {
  const auto trace = mini_trace();
  routing::DirectDeliveryRouter router;
  net::Network net(trace, router, quiet());
  net.run();
  const RunResult r = summarize(net, router.name());
  EXPECT_EQ(r.generated, 0u);
  EXPECT_DOUBLE_EQ(r.success_rate, 0.0);
  EXPECT_DOUBLE_EQ(r.avg_delay, 0.0);
}

TEST(RunExperiment, EndToEnd) {
  const auto trace = mini_trace();
  routing::DirectDeliveryRouter router;
  auto cfg = quiet();
  cfg.manual_packets = {{0, 1, 2.0 * kDay, 0.0}};
  const RunResult r = run_experiment(trace, router, cfg);
  EXPECT_EQ(r.router, "Direct");
  EXPECT_EQ(r.delivered, 1u);
}

TEST(RunSweep, GridShapeAndDeterminism) {
  const auto trace = mini_trace();
  net::WorkloadConfig base = quiet();
  base.packets_per_landmark_per_day = 6.0;
  base.warmup_fraction = 0.25;

  std::vector<std::pair<std::string, RouterFactory>> factories;
  factories.emplace_back("Direct", [] {
    return std::make_unique<routing::DirectDeliveryRouter>();
  });

  SweepConfig sweep;
  sweep.values = {10.0, 50.0};
  sweep.apply = [](net::WorkloadConfig& cfg, double v) {
    cfg.node_memory_kb = static_cast<std::uint64_t>(v);
  };
  sweep.replicates = 3;
  sweep.threads = 2;

  const auto cells = run_sweep(trace, base, factories, sweep);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].router, "Direct");
  EXPECT_DOUBLE_EQ(cells[0].sweep_value, 10.0);
  EXPECT_EQ(cells[0].replicates.size(), 3u);
  // Replicates use distinct seeds but identical configuration shape.
  for (const auto& cell : cells) {
    for (const auto& rep : cell.replicates) {
      EXPECT_GT(rep.generated, 0u);
    }
    EXPECT_GE(cell.success_rate.mean, 0.0);
    EXPECT_LE(cell.success_rate.mean, 1.0);
    EXPECT_GE(cell.success_rate.ci_half_width, 0.0);
  }

  // Serial run must produce identical numbers (thread-count invariance).
  SweepConfig serial = sweep;
  serial.threads = 1;
  const auto cells2 = run_sweep(trace, base, factories, serial);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_DOUBLE_EQ(cells[i].success_rate.mean, cells2[i].success_rate.mean);
    EXPECT_DOUBLE_EQ(cells[i].total_cost.mean, cells2[i].total_cost.mean);
  }
}

TEST(RunSweep, MultipleRoutersKeepOrder) {
  const auto trace = mini_trace();
  net::WorkloadConfig base = quiet();
  base.packets_per_landmark_per_day = 4.0;

  std::vector<std::pair<std::string, RouterFactory>> factories;
  factories.emplace_back("Direct", [] {
    return std::make_unique<routing::DirectDeliveryRouter>();
  });
  factories.emplace_back("PROPHET", [] {
    return std::make_unique<routing::ProphetRouter>();
  });

  SweepConfig sweep;
  sweep.values = {100.0};
  sweep.apply = nullptr;  // sweep value unused
  sweep.replicates = 1;
  sweep.threads = 1;
  const auto cells = run_sweep(trace, base, factories, sweep);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].router, "Direct");
  EXPECT_EQ(cells[1].router, "PROPHET");
}

}  // namespace
}  // namespace dtn::metrics
