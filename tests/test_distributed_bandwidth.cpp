// The faithful §IV-C.1 distributed bandwidth protocol: direct incoming
// observation, reverse-notification tokens for the outgoing side,
// stale-token rejection, and the O3 symmetry fallback.  Integration
// checks bound its divergence from the centralized estimator.
#include "core/distributed_bandwidth.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "test_helpers.hpp"

namespace dtn::core {
namespace {

using dtn::testing::relay_chain_trace;
using trace::kDay;

TEST(DistributedBandwidth, IncomingObservedDirectly) {
  DistributedBandwidth bw(3, 1.0);
  bw.record_arrival(0, 1);
  bw.record_arrival(0, 1);
  bw.close_unit();
  EXPECT_DOUBLE_EQ(bw.incoming_bandwidth(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(bw.incoming_bandwidth(1, 0), 0.0);
}

TEST(DistributedBandwidth, NoTokenBeforeFirstClosedUnit) {
  DistributedBandwidth bw(3, 1.0);
  bw.record_arrival(0, 1);
  EXPECT_FALSE(bw.issue_token(1, 0).has_value());
}

TEST(DistributedBandwidth, TokenCarriesLastClosedCount) {
  DistributedBandwidth bw(3, 1.0);
  for (int i = 0; i < 3; ++i) bw.record_arrival(0, 1);
  bw.close_unit();
  // A node leaving l1 predicted to go to l0 carries the report of the
  // link 0 -> 1 back to l0.
  const auto token = bw.issue_token(1, 0);
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(token->link_from, 0u);
  EXPECT_EQ(token->link_to, 1u);
  EXPECT_DOUBLE_EQ(token->count, 3.0);
  EXPECT_EQ(token->unit, 1u);
}

TEST(DistributedBandwidth, TokenDeliveryUpdatesOutgoing) {
  DistributedBandwidth bw(3, 1.0);
  for (int i = 0; i < 4; ++i) bw.record_arrival(0, 1);
  bw.close_unit();
  const auto token = bw.issue_token(1, 0);
  ASSERT_TRUE(token.has_value());
  EXPECT_TRUE(bw.deliver_token(0, *token));
  // Folded at the next unit close.
  bw.close_unit();
  EXPECT_DOUBLE_EQ(bw.outgoing_bandwidth(0, 1), 4.0);
  EXPECT_EQ(bw.tokens_accepted(), 1u);
}

TEST(DistributedBandwidth, MispredictedCarrierDiscardsToken) {
  DistributedBandwidth bw(3, 1.0);
  bw.record_arrival(0, 1);
  bw.close_unit();
  const auto token = bw.issue_token(1, 0);
  ASSERT_TRUE(token.has_value());
  // The node actually ended up at l2: not the addressee.
  EXPECT_FALSE(bw.deliver_token(2, *token));
  EXPECT_EQ(bw.tokens_accepted(), 0u);
}

TEST(DistributedBandwidth, StaleTokenRejected) {
  DistributedBandwidth bw(3, 1.0);
  bw.record_arrival(0, 1);
  bw.close_unit();
  const auto old_token = bw.issue_token(1, 0);
  ASSERT_TRUE(old_token.has_value());
  for (int i = 0; i < 5; ++i) bw.record_arrival(0, 1);
  bw.close_unit();
  const auto new_token = bw.issue_token(1, 0);
  ASSERT_TRUE(new_token.has_value());
  EXPECT_TRUE(bw.deliver_token(0, *new_token));
  EXPECT_FALSE(bw.deliver_token(0, *old_token));  // older sequence
  EXPECT_EQ(bw.tokens_stale(), 1u);
}

TEST(DistributedBandwidth, SymmetryFallbackWithoutTokens) {
  // l0 observes 1 -> 0 traffic itself; with no token for 0 -> 1 it
  // substitutes the reverse count (observation O3).
  DistributedBandwidth bw(2, 1.0);
  for (int i = 0; i < 6; ++i) bw.record_arrival(1, 0);
  bw.close_unit();
  EXPECT_DOUBLE_EQ(bw.outgoing_bandwidth(0, 1), 6.0);
}

TEST(DistributedBandwidth, ExpectedDelayInfiniteWithoutEstimate) {
  DistributedBandwidth bw(2, 0.5);
  EXPECT_TRUE(std::isinf(bw.expected_delay(0, 1, 100.0)));
  bw.record_arrival(1, 0);
  bw.close_unit();  // symmetry gives 0 -> 1 an estimate
  EXPECT_FALSE(std::isinf(bw.expected_delay(0, 1, 100.0)));
}

TEST(DistributedBandwidth, NeighborsFromOutgoingEstimates) {
  DistributedBandwidth bw(4, 1.0);
  bw.record_arrival(1, 0);  // symmetry: 0 -> 1 becomes a neighbor of 0
  bw.close_unit();
  const auto n = bw.neighbors(0);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 1u);
}

// -- integration through the router -------------------------------------

TEST(DistributedBandwidthIntegration, ConvergesNearCentralizedEstimate) {
  const auto trace = relay_chain_trace(12.0);
  DtnFlowConfig rc;
  rc.distributed_bandwidth = true;
  DtnFlowRouter router(rc);
  net::WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  net::Network net(trace, router, cfg);
  net.run();
  const auto& central = router.bandwidth();
  const auto& distributed = router.distributed_bandwidth();
  EXPECT_GT(distributed.tokens_accepted(), 0u);
  for (net::LandmarkId i = 0; i < 4; ++i) {
    for (net::LandmarkId j = 0; j < 4; ++j) {
      if (i == j) continue;
      const double c = central.bandwidth(i, j);
      const double d = distributed.outgoing_bandwidth(i, j);
      if (c == 0.0) {
        EXPECT_DOUBLE_EQ(d, 0.0) << i << "->" << j;
      } else {
        // Token latency costs at most a little staleness.
        EXPECT_NEAR(d, c, 0.35 * c) << i << "->" << j;
      }
    }
  }
}

TEST(DistributedBandwidthIntegration, RoutingStillDelivers) {
  const auto trace = relay_chain_trace(10.0);
  DtnFlowConfig rc;
  rc.distributed_bandwidth = true;
  DtnFlowRouter router(rc);
  net::WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 2.0 * kDay;
  cfg.manual_packets = {{0, 3, 5.0 * kDay, 0.0}};
  net::Network net(trace, router, cfg);
  net.run();
  EXPECT_EQ(net.counters().delivered, 1u);
}

}  // namespace
}  // namespace dtn::core
