// The invariant auditor's contract has two halves, and both need tests:
//
//  * positive — on a healthy replay every registered check passes, the
//    periodic auditor actually runs, and enabling it does not perturb
//    the deterministic results (bit-identical counters);
//  * negative — for every invariant the auditor claims to guard, seed
//    the corresponding corruption through a debug hook and prove the
//    audit reports it.  An auditor without negative tests is just a
//    very slow no-op.
#include "sim/invariant_auditor.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/dtn_flow_router.hpp"
#include "core/markov_predictor.hpp"
#include "core/routing_table.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "test_helpers.hpp"

namespace dtn {
namespace {

using core::DistanceVector;
using core::DtnFlowRouter;
using core::MarkovPredictor;
using core::RoutingTable;
using dtn::testing::relay_chain_trace;
using net::Network;
using net::WorkloadConfig;
using sim::AuditReport;
using sim::InvariantAuditor;
using trace::kDay;

bool any_failure_mentions(const AuditReport& report, const std::string& what) {
  for (const auto& f : report.failures()) {
    if (f.detail.find(what) != std::string::npos ||
        f.check.find(what) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// -- registry / gating --------------------------------------------------

TEST(InvariantAuditor, DisabledAuditorNeverRuns) {
  InvariantAuditor auditor({/*enabled=*/false, /*period_events=*/1,
                            /*abort_on_failure=*/false});
  int calls = 0;
  auditor.register_check("probe", [&calls](AuditReport&) { ++calls; });
  for (int i = 0; i < 100; ++i) auditor.on_event();
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(auditor.audits_run(), 0u);
}

TEST(InvariantAuditor, PeriodGatesOnEvent) {
  InvariantAuditor auditor({/*enabled=*/true, /*period_events=*/10,
                            /*abort_on_failure=*/false});
  int calls = 0;
  auditor.register_check("probe", [&calls](AuditReport&) { ++calls; });
  for (int i = 0; i < 95; ++i) auditor.on_event();
  EXPECT_EQ(calls, 9);  // every 10th event
  EXPECT_EQ(auditor.audits_run(), 9u);
}

TEST(InvariantAuditor, ReportAttributesFailuresToChecks) {
  InvariantAuditor auditor({/*enabled=*/true, /*period_events=*/1,
                            /*abort_on_failure=*/false});
  auditor.register_check("good", [](AuditReport&) {});
  auditor.register_check("bad", [](AuditReport& r) { r.fail("broken thing"); });
  AuditReport report = auditor.audit_now();
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures().size(), 1u);
  EXPECT_EQ(report.failures()[0].check, "bad");
  EXPECT_EQ(report.failures()[0].detail, "broken thing");
  EXPECT_NE(report.to_string().find("bad"), std::string::npos);
}

TEST(InvariantAuditor, ConfigFromEnvironment) {
  // Default: disabled.
  unsetenv("DTN_AUDIT");
  unsetenv("DTN_AUDIT_PERIOD");
  EXPECT_FALSE(InvariantAuditor::config_from_env().enabled);

  setenv("DTN_AUDIT", "1", 1);
  EXPECT_TRUE(InvariantAuditor::config_from_env().enabled);
  setenv("DTN_AUDIT", "0", 1);
  EXPECT_FALSE(InvariantAuditor::config_from_env().enabled);
  unsetenv("DTN_AUDIT");

  setenv("DTN_AUDIT_PERIOD", "4096", 1);
  const auto cfg = InvariantAuditor::config_from_env();
  EXPECT_TRUE(cfg.enabled);
  EXPECT_EQ(cfg.period_events, 4096u);
  unsetenv("DTN_AUDIT_PERIOD");
}

// -- event queue --------------------------------------------------------

sim::EventQueue filled_queue() {
  sim::EventQueue q;
  for (int i = 8; i >= 1; --i) {
    sim::Event ev;
    ev.time = static_cast<double>(i);
    q.schedule(ev);
  }
  return q;
}

TEST(EventQueueAudit, CleanQueuePasses) {
  const auto q = filled_queue();
  AuditReport report;
  q.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(EventQueueAudit, DetectsHeapPropertyViolation) {
  auto q = filled_queue();
  // Rewrite a deep slot to a time earlier than its parent's: the packed
  // keys no longer form a min-heap.
  q.debug_corrupt_key_for_test(q.size() - 1, 0.5);
  AuditReport report;
  q.audit(report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_failure_mentions(report, "heap")) << report.to_string();
}

TEST(EventQueueAudit, DetectsHeadBehindLastPopped) {
  auto q = filled_queue();
  (void)q.pop();  // t=1
  (void)q.pop();  // t=2; scheduling before t=2 is now illegal
  q.debug_corrupt_key_for_test(0, 1.5);
  AuditReport report;
  q.audit(report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_failure_mentions(report, "last popped")) << report.to_string();
}

// -- Markov predictor ---------------------------------------------------

MarkovPredictor trained_predictor() {
  MarkovPredictor p(/*num_landmarks=*/4, /*order=*/2);
  const trace::LandmarkId tour[] = {0, 1, 2, 0, 1, 3, 0, 1, 2, 0, 1, 2};
  for (const auto l : tour) p.record_visit(l);
  return p;
}

TEST(MarkovPredictorAudit, CleanPredictorPasses) {
  const auto p = trained_predictor();
  AuditReport report;
  p.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(MarkovPredictorAudit, DetectsCorruptedArgmaxCache) {
  auto p = trained_predictor();
  ASSERT_TRUE(p.debug_corrupt_argmax_for_test());
  AuditReport report;
  p.audit(report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_failure_mentions(report, "argmax")) << report.to_string();
}

// -- routing table ------------------------------------------------------

RoutingTable converged_table() {
  RoutingTable t(/*self=*/0, /*num_landmarks=*/4);
  t.set_link_delay(1, 10.0);
  t.set_link_delay(2, 100.0);
  DistanceVector dv;
  dv.origin = 1;
  dv.seq = 0;
  dv.delay = {10.0, 0.0, 25.0, 60.0};
  (void)t.merge(dv);
  (void)t.route(3);  // force a full recompute: every column is clean
  return t;
}

TEST(RoutingTableAudit, CleanTablePasses) {
  const auto t = converged_table();
  AuditReport report;
  t.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RoutingTableAudit, DetectsCleanColumnGoneStale) {
  auto t = converged_table();
  // Change an advertised delay *without* marking the column dirty — the
  // bug class where an update path forgets its mark_dirty call.  The
  // cached "clean" column now disagrees with a from-scratch recompute.
  t.debug_corrupt_advertised_for_test(/*origin=*/1, /*dst=*/2, 1.0);
  AuditReport report;
  t.audit(report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_failure_mentions(report, "from-scratch"))
      << report.to_string();
}

// -- network-level checks ----------------------------------------------

WorkloadConfig chain_workload() {
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 20.0;
  cfg.warmup_fraction = 0.25;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 2.0 * kDay;
  return cfg;
}

TEST(NetworkAudit, HealthyRunPassesAllChecks) {
  const auto trace = relay_chain_trace(6.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  EXPECT_EQ(net.auditor().checks_registered(), 7u);
  AuditReport report;
  net.audit(report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(NetworkAudit, DetectsBufferByteCorruption) {
  const auto trace = relay_chain_trace(6.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  ASSERT_TRUE(net.debug_corrupt_for_test(Network::Corruption::kBufferBytes));
  AuditReport report;
  net.audit(report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_failure_mentions(report, "buffer")) << report.to_string();
}

// Present-set corruption is only observable while nodes are present, so
// it must be seeded mid-run: this router corrupts the index inside an
// arrival callback, audits, then reverts so the rest of the replay (and
// its swap-remove departures) stays sound.
class MidRunCorruptingRouter : public net::Router {
 public:
  [[nodiscard]] std::string name() const override { return "Corruptor"; }

  void on_arrival(Network& net, net::NodeId node, net::LandmarkId l) override {
    (void)node;
    (void)l;
    if (fired_) return;
    fired_ = true;
    ASSERT_TRUE(net.debug_corrupt_for_test(Network::Corruption::kPresentPos));
    net.audit(corrupted_report_);
    ASSERT_TRUE(
        net.debug_corrupt_for_test(Network::Corruption::kPresentPos, -1));
    net.audit(reverted_report_);
  }

  bool fired_ = false;
  AuditReport corrupted_report_;
  AuditReport reverted_report_;
};

TEST(NetworkAudit, DetectsPresentPositionCorruptionMidRun) {
  const auto trace = relay_chain_trace(2.0);
  MidRunCorruptingRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  ASSERT_TRUE(router.fired_);
  EXPECT_FALSE(router.corrupted_report_.ok());
  EXPECT_TRUE(any_failure_mentions(router.corrupted_report_, "present"))
      << router.corrupted_report_.to_string();
  // After the revert the very same checks pass again — the failure came
  // from the seeded corruption, not from ambient state.
  EXPECT_TRUE(router.reverted_report_.ok())
      << router.reverted_report_.to_string();
}

// -- periodic auditing during a replay ----------------------------------

TEST(NetworkAudit, PeriodicAuditingDoesNotPerturbDeterminism) {
  const auto trace = relay_chain_trace(6.0);

  DtnFlowRouter plain_router;
  Network plain(trace, plain_router, chain_workload());
  plain.run();

  auto audited_cfg = chain_workload();
  audited_cfg.audit_period_events = 64;
  DtnFlowRouter audited_router;
  Network audited(trace, audited_router, audited_cfg);
  audited.run();

  EXPECT_TRUE(audited.auditor().enabled());
  EXPECT_GT(audited.auditor().audits_run(), 0u);
  // Bit-exact: auditing only reads state.
  EXPECT_EQ(plain.counters(), audited.counters());
}

// A corrupt simulation must not keep producing numbers: with periodic
// auditing on and abort_on_failure left at its production default, a
// seeded corruption kills the process at the next audit point.
class AbortingCorruptRouter : public net::Router {
 public:
  [[nodiscard]] std::string name() const override { return "Corruptor"; }
  void on_arrival(Network& net, net::NodeId node, net::LandmarkId l) override {
    (void)node;
    (void)l;
    if (fired_) return;
    fired_ = true;
    (void)net.debug_corrupt_for_test(Network::Corruption::kBufferBytes);
  }
  bool fired_ = false;
};

// -- SIMD-era SoA mirrors (docs/simd-hot-path.md) -----------------------

TEST(RoutingTableAudit, DetectsTransposedMirrorDesync) {
  auto t = converged_table();
  // Desynchronize one cell of the transposed advertised mirror — the
  // bug class where a merge path updates advertised_ but forgets the
  // transpose the SIMD column sweep reads.
  t.debug_corrupt_transposed_for_test(/*origin=*/1, /*dst=*/2, 3.0);
  AuditReport report;
  t.audit(report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_failure_mentions(report, "transposed advertised mirror"))
      << report.to_string();
}

TEST(NetworkAudit, DetectsArenaAccountingDrift) {
  const auto trace = relay_chain_trace(6.0);
  DtnFlowRouter router;
  Network net(trace, router, chain_workload());
  net.run();
  router.debug_corrupt_arena_accounting_for_test();
  AuditReport report;
  net.audit(report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(any_failure_mentions(report, "arena")) << report.to_string();
}

// Overlapping visit windows (unlike the never-co-located relay chain):
// node 0 departs landmark 0 while node 1 is still present, so the
// departure-time dispatch rebuilds carrier scores over a non-empty
// present set — the precondition for a *valid* cache entry to corrupt.
trace::Trace overlapping_trace(double days) {
  trace::Trace t(/*num_nodes=*/2, /*num_landmarks=*/3);
  const auto periods =
      static_cast<std::size_t>(days * kDay / (2.0 * trace::kHour));
  for (std::size_t p = 0; p < periods; ++p) {
    const double base = static_cast<double>(p) * 2.0 * trace::kHour;
    t.add_visit({0, 0, base, base + 40.0 * trace::kMinute});
    t.add_visit({0, 1, base + 60.0 * trace::kMinute,
                 base + 90.0 * trace::kMinute});
    t.add_visit({1, 0, base + 10.0 * trace::kMinute,
                 base + 50.0 * trace::kMinute});
    t.add_visit({1, 2, base + 70.0 * trace::kMinute,
                 base + 100.0 * trace::kMinute});
  }
  t.finalize();
  return t;
}

// A valid carrier-cache entry only exists between a dispatch-time
// rebuild and the next present-set mutation: every arrival and
// departure bumps present_epoch, so entries built while dispatching in
// on_arrival / on_packet_generated are stale again by the next hook.
// The desync must therefore be seeded from *inside* one of those hooks,
// right after the inner dispatch ran.  DtnFlowRouter is final; this
// shim forwards every replay hook to an inner instance and corrupts +
// audits mid-hook.  Batching is disabled for this run: a mid-batch
// audit would (correctly) see the deferred present-set renumber as
// inconsistent.
class CacheCorruptingShim : public net::Router {
 public:
  explicit CacheCorruptingShim(DtnFlowRouter& inner) : inner_(inner) {}

  [[nodiscard]] std::string name() const override { return inner_.name(); }
  [[nodiscard]] bool uses_stations() const override {
    return inner_.uses_stations();
  }
  void on_init(Network& net) override { inner_.on_init(net); }
  void on_arrival(Network& net, net::NodeId node,
                  net::LandmarkId l) override {
    inner_.on_arrival(net, node, l);
    try_corrupt(net, l);
  }
  void on_departure(Network& net, net::NodeId node,
                    net::LandmarkId l) override {
    inner_.on_departure(net, node, l);
  }
  void on_contact(Network& net, net::NodeId arriving, net::NodeId present,
                  net::LandmarkId l) override {
    inner_.on_contact(net, arriving, present, l);
  }
  void on_packet_generated(Network& net, net::PacketId pid) override {
    inner_.on_packet_generated(net, pid);
    try_corrupt(net, net.packet(pid).src);
  }
  void on_time_unit(Network& net, std::size_t unit_index) override {
    inner_.on_time_unit(net, unit_index);
  }
  void audit(const Network& net, AuditReport& report) const override {
    inner_.audit(net, report);
  }

  bool fired_ = false;
  AuditReport report_;

 private:
  void try_corrupt(Network& net, net::LandmarkId l) {
    if (fired_) return;
    const auto landmarks = static_cast<net::LandmarkId>(net.num_landmarks());
    for (net::LandmarkId to = 0; to < landmarks; ++to) {
      if (inner_.debug_corrupt_carrier_cache_for_test(l, to)) {
        fired_ = true;
        net.audit(report_);
        break;
      }
    }
  }

  DtnFlowRouter& inner_;
};

TEST(NetworkAudit, DetectsCarrierCacheDesyncMidRun) {
  const auto trace = overlapping_trace(6.0);
  DtnFlowRouter inner;
  CacheCorruptingShim router(inner);
  auto cfg = chain_workload();
  cfg.batch_contacts = false;
  Network net(trace, router, cfg);
  net.run();
  ASSERT_TRUE(router.fired_);
  EXPECT_FALSE(router.report_.ok());
  EXPECT_TRUE(any_failure_mentions(router.report_, "cached score"))
      << router.report_.to_string();
}

TEST(NetworkAuditDeathTest, PeriodicAuditorAbortsOnCorruption) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        const auto trace = relay_chain_trace(2.0);
        AbortingCorruptRouter router;
        auto cfg = chain_workload();
        cfg.audit_period_events = 1;
        Network net(trace, router, cfg);
        net.run();
      },
      "invariant violation");
}

}  // namespace
}  // namespace dtn
