#include "trace/geo_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/landmark_select.hpp"
#include "trace/trace_stats.hpp"

namespace dtn::trace {
namespace {

GeoTraceConfig small_config(std::uint64_t seed) {
  GeoTraceConfig cfg;
  cfg.landmark_positions = fig15_positions();
  cfg.num_nodes = 9;
  cfg.days = 10.0;
  cfg.seed = seed;
  return cfg;
}

TEST(Fig15Positions, EightLandmarksSpacedApart) {
  const auto pos = fig15_positions();
  ASSERT_EQ(pos.size(), 8u);
  for (std::size_t i = 0; i < pos.size(); ++i) {
    for (std::size_t j = i + 1; j < pos.size(); ++j) {
      EXPECT_GT(core::squared_distance(pos[i], pos[j]), 100.0 * 100.0)
          << i << "," << j;
    }
  }
}

TEST(GeoGenerator, WellFormedTrace) {
  const auto trace = generate_geo_trace(small_config(1));
  EXPECT_EQ(trace.num_nodes(), 9u);
  EXPECT_EQ(trace.num_landmarks(), 8u);
  EXPECT_GT(trace.total_visits(), 300u);
}

TEST(GeoGenerator, DeterministicPerSeed) {
  const auto a = generate_geo_trace(small_config(7));
  const auto b = generate_geo_trace(small_config(7));
  ASSERT_EQ(a.total_visits(), b.total_visits());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    const auto va = a.visits(n);
    const auto vb = b.visits(n);
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
  }
}

TEST(GeoGenerator, TravelTimesScaleWithDistance) {
  // Transit gaps (depart -> arrive) must be at least distance/speed
  // times the lower jitter bound.
  auto cfg = small_config(3);
  cfg.miss_probability = 0.0;
  const auto trace = generate_geo_trace(cfg);
  const auto pos = cfg.landmark_positions;
  std::size_t checked = 0;
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    for (const auto& t : trace.transits(n)) {
      const double gap = t.arrive - t.depart;
      const double dx = pos[t.from].x - pos[t.to].x;
      const double dy = pos[t.from].y - pos[t.to].y;
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double min_travel =
          std::max(kMinute, dist / cfg.speed_m_per_s * (1.0 - cfg.travel_noise));
      // Overnight gaps (day boundary) are legitimately longer.
      if (gap < 6.0 * kHour) {
        EXPECT_GE(gap, min_travel - 1e-6)
            << "node " << n << " " << t.from << "->" << t.to;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 100u);
}

TEST(GeoGenerator, AttractionSkewsVisits) {
  auto cfg = small_config(5);
  cfg.attraction.assign(8, 1.0);
  cfg.attraction[0] = 12.0;  // the library dominates
  cfg.home_bias = 0.2;
  const auto trace = generate_geo_trace(cfg);
  const auto order = landmarks_by_popularity(trace);
  EXPECT_EQ(order[0], 0u);
}

TEST(GeoGenerator, HomesRespected) {
  auto cfg = small_config(6);
  cfg.homes.assign(cfg.num_nodes, 3);  // everyone based at L4
  cfg.home_bias = 0.8;
  const auto trace = generate_geo_trace(cfg);
  const auto counts = visit_count_matrix(trace);
  for (NodeId n = 0; n < trace.num_nodes(); ++n) {
    std::uint32_t best_count = 0;
    LandmarkId best = 0;
    for (LandmarkId l = 0; l < trace.num_landmarks(); ++l) {
      if (counts.at(n, l) > best_count) {
        best_count = counts.at(n, l);
        best = l;
      }
    }
    EXPECT_EQ(best, 3u) << "node " << n;
  }
}

// -- GPS/position-sample import ------------------------------------------

TEST(PositionSamples, FusesFixesIntoVisits) {
  const std::vector<Point> landmarks = {{0, 0}, {1000, 0}};
  std::vector<PositionSample> samples;
  // Node 0 near L0 from t=0 to t=600 (fixes every 120 s)...
  for (int k = 0; k <= 5; ++k) {
    samples.push_back({0, k * 120.0, {10.0 + k, 5.0}});
  }
  // ... then in the open field (no association) ...
  samples.push_back({0, 800.0, {500.0, 0.0}});
  // ... then near L1.
  for (int k = 0; k <= 3; ++k) {
    samples.push_back({0, 1000.0 + k * 120.0, {995.0, -3.0}});
  }
  const auto trace =
      visits_from_position_samples(samples, landmarks, 1, 50.0);
  const auto visits = trace.visits(0);
  ASSERT_EQ(visits.size(), 2u);
  EXPECT_EQ(visits[0].landmark, 0u);
  EXPECT_DOUBLE_EQ(visits[0].start, 0.0);
  EXPECT_DOUBLE_EQ(visits[0].end, 600.0);
  EXPECT_EQ(visits[1].landmark, 1u);
  EXPECT_DOUBLE_EQ(visits[1].start, 1000.0);
  EXPECT_DOUBLE_EQ(visits[1].end, 1360.0);
}

TEST(PositionSamples, GapSplitsVisit) {
  const std::vector<Point> landmarks = {{0, 0}};
  std::vector<PositionSample> samples = {
      {0, 0.0, {1, 1}}, {0, 300.0, {2, 2}},
      {0, 5000.0, {1, 0}}, {0, 5300.0, {0, 1}}};  // gap >> max_fix_gap
  const auto trace =
      visits_from_position_samples(samples, landmarks, 1, 50.0, 900.0, 60.0);
  ASSERT_EQ(trace.visits(0).size(), 2u);
  EXPECT_DOUBLE_EQ(trace.visits(0)[0].end, 300.0);
  EXPECT_DOUBLE_EQ(trace.visits(0)[1].start, 5000.0);
}

TEST(PositionSamples, ShortAndUnassociatedFixesDropped) {
  const std::vector<Point> landmarks = {{0, 0}};
  std::vector<PositionSample> samples = {
      {0, 0.0, {5, 5}},          // single fix: 1 s pseudo-visit < min
      {0, 2000.0, {9999, 9999}}  // far from everything
  };
  const auto trace =
      visits_from_position_samples(samples, landmarks, 1, 50.0);
  EXPECT_EQ(trace.total_visits(), 0u);
}

TEST(PositionSamples, UnsortedInputAndMultipleNodes) {
  const std::vector<Point> landmarks = {{0, 0}, {500, 0}};
  std::vector<PositionSample> samples = {
      {1, 400.0, {501, 1}}, {0, 100.0, {2, 0}}, {1, 100.0, {499, 0}},
      {0, 400.0, {1, 3}},
  };
  const auto trace =
      visits_from_position_samples(samples, landmarks, 2, 50.0);
  ASSERT_EQ(trace.visits(0).size(), 1u);
  ASSERT_EQ(trace.visits(1).size(), 1u);
  EXPECT_EQ(trace.visits(0)[0].landmark, 0u);
  EXPECT_EQ(trace.visits(1)[0].landmark, 1u);
}

TEST(PositionSamples, NearestLandmarkWinsWithinRadius) {
  const std::vector<Point> landmarks = {{0, 0}, {80, 0}};
  std::vector<PositionSample> samples = {
      {0, 0.0, {50, 0}}, {0, 200.0, {55, 0}}};  // closer to L1
  const auto trace =
      visits_from_position_samples(samples, landmarks, 1, 60.0, 900.0, 60.0);
  ASSERT_EQ(trace.visits(0).size(), 1u);
  EXPECT_EQ(trace.visits(0)[0].landmark, 1u);
}

TEST(GeoGeneratorDeath, RejectsMismatchedConfig) {
  GeoTraceConfig cfg;
  cfg.landmark_positions = {{0, 0}};  // fewer than 2
  EXPECT_DEATH((void)generate_geo_trace(cfg), "DTN_ASSERT");
  cfg.landmark_positions = fig15_positions();
  cfg.attraction = {1.0, 2.0};  // wrong size
  EXPECT_DEATH((void)generate_geo_trace(cfg), "DTN_ASSERT");
}

}  // namespace
}  // namespace dtn::trace
