// Fuzz the incremental order-k Markov predictor against a brute-force
// reference that recounts substring occurrences from scratch (eqs. 2-3)
// after every visit.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/markov_predictor.hpp"
#include "util/rng.hpp"

namespace dtn::core {
namespace {

// Reference: P(next = l | last k of seq) via substring counting.
double reference_probability(const std::vector<LandmarkId>& seq,
                             std::size_t order, LandmarkId next) {
  if (seq.size() < order) return 0.0;
  const std::vector<LandmarkId> context(seq.end() - order, seq.end());
  std::size_t n_context = 0;
  std::size_t n_gram = 0;
  for (std::size_t i = 0; i + order <= seq.size(); ++i) {
    bool match = true;
    for (std::size_t k = 0; k < order; ++k) {
      if (seq[i + k] != context[k]) {
        match = false;
        break;
      }
    }
    if (!match) continue;
    ++n_context;
    if (i + order < seq.size() && seq[i + order] == next) ++n_gram;
  }
  if (n_context == 0) return 0.0;
  return static_cast<double>(n_gram) / static_cast<double>(n_context);
}

struct FuzzCase {
  std::size_t order;
  std::size_t landmarks;
  std::uint64_t seed;
};

class PredictorFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(PredictorFuzzTest, MatchesBruteForceReference) {
  const auto [order, landmarks, seed] = GetParam();
  Rng rng(seed);
  MarkovPredictor predictor(landmarks, order);
  std::vector<LandmarkId> seq;  // the collapsed sequence
  for (int step = 0; step < 400; ++step) {
    const auto l = static_cast<LandmarkId>(rng.uniform_index(landmarks));
    predictor.record_visit(l);
    if (seq.empty() || seq.back() != l) seq.push_back(l);
    // Compare a handful of probabilities each step.
    for (LandmarkId probe = 0; probe < landmarks; ++probe) {
      ASSERT_NEAR(predictor.probability_of(probe),
                  reference_probability(seq, order, probe), 1e-12)
          << "step " << step << " probe " << probe;
    }
  }
  EXPECT_EQ(predictor.history_length(), seq.size());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PredictorFuzzTest,
    ::testing::Values(FuzzCase{1, 3, 11}, FuzzCase{1, 6, 12},
                      FuzzCase{2, 3, 13}, FuzzCase{2, 5, 14},
                      FuzzCase{3, 3, 15}, FuzzCase{3, 4, 16}));

TEST(PredictorFuzz, ArgmaxConsistentWithProbabilities) {
  Rng rng(77);
  MarkovPredictor predictor(8, 1);
  for (int step = 0; step < 2000; ++step) {
    predictor.record_visit(static_cast<LandmarkId>(rng.uniform_index(8)));
    const LandmarkId guess = predictor.predict();
    if (guess == kNoLandmark) continue;
    const double best = predictor.probability_of(guess);
    for (LandmarkId l = 0; l < 8; ++l) {
      ASSERT_LE(predictor.probability_of(l), best + 1e-12);
    }
  }
}

}  // namespace
}  // namespace dtn::core
