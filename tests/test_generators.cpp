// Property tests on the synthetic trace generators: they must exhibit
// the structural observations O1-O4 the paper's design relies on
// (skewed visits, few dominant links, symmetric matching links, stable
// bandwidth), plus the prediction-accuracy regimes of §IV-B.3.
#include "trace/bus_generator.hpp"
#include "trace/campus_generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/markov_predictor.hpp"
#include "trace/trace_stats.hpp"
#include "util/stats.hpp"

namespace dtn::trace {
namespace {

CampusTraceConfig small_campus(std::uint64_t seed) {
  CampusTraceConfig cfg;
  cfg.num_nodes = 60;
  cfg.num_landmarks = 20;
  cfg.num_communities = 5;
  cfg.days = 30.0;
  cfg.seed = seed;
  return cfg;
}

BusTraceConfig small_bus(std::uint64_t seed) {
  BusTraceConfig cfg;
  cfg.num_buses = 20;
  cfg.num_landmarks = 12;
  cfg.num_routes = 6;
  cfg.days = 15.0;
  cfg.seed = seed;
  return cfg;
}

class GeneratorSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedTest, CampusTraceWellFormed) {
  const Trace t = generate_campus_trace(small_campus(GetParam()));
  EXPECT_EQ(t.num_nodes(), 60u);
  EXPECT_EQ(t.num_landmarks(), 20u);
  EXPECT_GT(t.total_visits(), 1000u);
  EXPECT_GT(t.duration(), 20.0 * kDay);
}

TEST_P(GeneratorSeedTest, CampusDeterministicPerSeed) {
  const Trace a = generate_campus_trace(small_campus(GetParam()));
  const Trace b = generate_campus_trace(small_campus(GetParam()));
  ASSERT_EQ(a.total_visits(), b.total_visits());
  for (NodeId n = 0; n < a.num_nodes(); ++n) {
    const auto va = a.visits(n);
    const auto vb = b.visits(n);
    ASSERT_EQ(va.size(), vb.size());
    for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]);
  }
}

TEST_P(GeneratorSeedTest, CampusObservationO1SkewedVisiting) {
  const Trace t = generate_campus_trace(small_campus(GetParam()));
  const auto counts = visit_count_matrix(t);
  const auto popular = landmarks_by_popularity(t);
  // O1, operationalized as in Fig. 2: for each of the top-5 landmarks
  // only a small portion of nodes are *frequent* visitors — at most 30%
  // of nodes reach half of the busiest visitor's count.
  for (std::size_t k = 0; k < 5; ++k) {
    const LandmarkId l = popular[k];
    std::uint64_t max_count = 0;
    for (NodeId n = 0; n < t.num_nodes(); ++n) {
      max_count = std::max(max_count, counts.at(n, l));
    }
    ASSERT_GT(max_count, 0u);
    std::size_t frequent = 0;
    for (NodeId n = 0; n < t.num_nodes(); ++n) {
      if (counts.at(n, l) * 2 >= max_count) ++frequent;
    }
    EXPECT_LT(static_cast<double>(frequent),
              0.3 * static_cast<double>(t.num_nodes()))
        << "landmark " << l;
  }
}

TEST_P(GeneratorSeedTest, CampusObservationO2FewDominantLinks) {
  const Trace t = generate_campus_trace(small_campus(GetParam()));
  const auto links = link_bandwidths(t, 3.0 * kDay);
  ASSERT_GT(links.size(), 10u);
  double total = 0.0, top = 0.0;
  for (std::size_t i = 0; i < links.size(); ++i) {
    total += links[i].bandwidth;
    if (i < links.size() / 5) top += links[i].bandwidth;
  }
  EXPECT_GT(top / total, 0.4);  // top 20% of links carry >40% of transits
}

TEST_P(GeneratorSeedTest, CampusObservationO3SymmetricMatchingLinks) {
  const Trace t = generate_campus_trace(small_campus(GetParam()));
  EXPECT_GT(matching_link_symmetry(t), 0.6);
}

TEST_P(GeneratorSeedTest, CampusHolidayDip) {
  auto cfg = small_campus(GetParam());
  cfg.days = 40.0;
  cfg.holidays = {{20.0, 26.0}};
  const Trace t = generate_campus_trace(cfg);
  // Compare visits in the holiday window against the preceding window.
  std::size_t before = 0, during = 0;
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    for (const auto& v : t.visits(n)) {
      if (v.start >= 14.0 * kDay && v.start < 20.0 * kDay) ++before;
      if (v.start >= 20.0 * kDay && v.start < 26.0 * kDay) ++during;
    }
  }
  EXPECT_LT(during, before / 3);
}

TEST_P(GeneratorSeedTest, CampusOrderOnePredictabilityInPaperRange) {
  const Trace t = generate_campus_trace(small_campus(GetParam()));
  RunningStats acc;
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    const auto seq = core::visiting_sequence(t.visits(n));
    const auto score = core::score_sequence(t.num_landmarks(), 1, seq);
    if (score.predictions >= 20) acc.add(score.accuracy());
  }
  ASSERT_GT(acc.count(), 20u);
  // Paper: DART average ~0.77; accept a generous band.
  EXPECT_GT(acc.mean(), 0.60);
  EXPECT_LT(acc.mean(), 0.92);
}

TEST_P(GeneratorSeedTest, BusTraceWellFormed) {
  const Trace t = generate_bus_trace(small_bus(GetParam()));
  EXPECT_EQ(t.num_nodes(), 20u);
  EXPECT_EQ(t.num_landmarks(), 12u);
  EXPECT_GT(t.total_visits(), 500u);
}

TEST_P(GeneratorSeedTest, BusWeekendsAreQuiet) {
  const Trace t = generate_bus_trace(small_bus(GetParam()));
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    for (const auto& v : t.visits(n)) {
      const auto day = static_cast<std::size_t>(v.start / kDay);
      EXPECT_NE(day % 7, 5u);
      EXPECT_NE(day % 7, 6u);
    }
  }
}

TEST_P(GeneratorSeedTest, BusBandwidthStableAcrossUnits) {
  const Trace t = generate_bus_trace(small_bus(GetParam()));
  const auto links = link_bandwidths(t, 0.5 * kDay);
  ASSERT_GE(links.size(), 3u);
  // Top link's per-unit counts on weekdays should stay near their mean
  // (O4): coefficient of variation below 1 over non-empty units.
  const auto series =
      link_bandwidth_series(t, links[0].from, links[0].to, 0.5 * kDay);
  RunningStats rs;
  for (double v : series) {
    if (v > 0.0) rs.add(v);
  }
  ASSERT_GT(rs.count(), 5u);
  EXPECT_LT(rs.stddev() / rs.mean(), 1.0);
}

TEST_P(GeneratorSeedTest, BusPredictabilityBelowCampus) {
  // §IV-B.3: despite repetitive routes, AP ambiguity makes DNET's
  // order-1 accuracy *lower* than the campus trace's.
  const Trace campus = generate_campus_trace(small_campus(GetParam()));
  const Trace bus = generate_bus_trace(small_bus(GetParam()));
  auto mean_accuracy = [](const Trace& t) {
    RunningStats acc;
    for (NodeId n = 0; n < t.num_nodes(); ++n) {
      const auto seq = core::visiting_sequence(t.visits(n));
      const auto score = core::score_sequence(t.num_landmarks(), 1, seq);
      if (score.predictions >= 20) acc.add(score.accuracy());
    }
    return acc.mean();
  };
  const double campus_acc = mean_accuracy(campus);
  const double bus_acc = mean_accuracy(bus);
  EXPECT_GT(bus_acc, 0.4);
  EXPECT_LT(bus_acc, campus_acc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedTest,
                         ::testing::Values(1ull, 7ull, 1234ull));

TEST(BusRoutes, EveryLandmarkOnSomeRoute) {
  const auto cfg = small_bus(3);
  const auto routes = make_bus_routes(cfg);
  ASSERT_EQ(routes.size(), cfg.num_routes);
  std::set<LandmarkId> covered;
  for (const auto& r : routes) {
    EXPECT_GE(r.size(), 2u);
    EXPECT_LE(r.size(), cfg.route_length_max);
    covered.insert(r.begin(), r.end());
    // Stops within a route are distinct.
    const std::set<LandmarkId> uniq(r.begin(), r.end());
    EXPECT_EQ(uniq.size(), r.size());
  }
  EXPECT_EQ(covered.size(), cfg.num_landmarks);
}

TEST(BusRoutes, HubsSharedAcrossRoutes) {
  const auto cfg = small_bus(4);
  const auto routes = make_bus_routes(cfg);
  std::size_t with_hub = 0;
  for (const auto& r : routes) {
    if (r.front() < cfg.num_hubs) ++with_hub;
  }
  EXPECT_EQ(with_hub, routes.size());
}

TEST(DartScaleConfig, MatchesPaperTableOne) {
  const auto cfg = dart_scale_config();
  EXPECT_EQ(cfg.num_nodes, 320u);
  EXPECT_EQ(cfg.num_landmarks, 159u);
  EXPECT_DOUBLE_EQ(cfg.days, 119.0);
}

TEST(DnetScaleConfig, MatchesPaperTableOne) {
  const auto cfg = dnet_scale_config();
  EXPECT_EQ(cfg.num_buses, 34u);
  EXPECT_EQ(cfg.num_landmarks, 18u);
  EXPECT_DOUBLE_EQ(cfg.days, 26.0);
}

}  // namespace
}  // namespace dtn::trace
