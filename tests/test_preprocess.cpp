#include "trace/preprocess.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dtn::trace {
namespace {

TEST(MergeNeighboring, MergesWithinGap) {
  Trace t(1, 2);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({0, 0, 15.0, 20.0});   // gap 5 <= 10: merge
  t.add_visit({0, 0, 100.0, 110.0});  // gap 80 > 10: keep separate
  t.finalize();
  const Trace merged = merge_neighboring_visits(t, 10.0);
  const auto visits = merged.visits(0);
  ASSERT_EQ(visits.size(), 2u);
  EXPECT_DOUBLE_EQ(visits[0].start, 0.0);
  EXPECT_DOUBLE_EQ(visits[0].end, 20.0);
  EXPECT_DOUBLE_EQ(visits[1].start, 100.0);
}

TEST(MergeNeighboring, DifferentLandmarksNotMerged) {
  Trace t(1, 2);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({0, 1, 11.0, 20.0});
  t.finalize();
  const Trace merged = merge_neighboring_visits(t, 100.0);
  EXPECT_EQ(merged.visits(0).size(), 2u);
}

TEST(MergeNeighboring, ChainOfThreeMerges) {
  Trace t(1, 1);
  t.add_visit({0, 0, 0.0, 1.0});
  t.add_visit({0, 0, 1.5, 2.0});
  t.add_visit({0, 0, 2.5, 3.0});
  t.finalize();
  const Trace merged = merge_neighboring_visits(t, 1.0);
  ASSERT_EQ(merged.visits(0).size(), 1u);
  EXPECT_DOUBLE_EQ(merged.visits(0)[0].end, 3.0);
}

TEST(DropShortVisits, RemovesBelowThreshold) {
  Trace t(1, 2);
  t.add_visit({0, 0, 0.0, 100.0});
  t.add_visit({0, 1, 200.0, 250.0});  // 50 s: dropped at 200 s threshold
  t.finalize();
  const Trace out = drop_short_visits(t, 200.0);
  ASSERT_EQ(out.visits(0).size(), 0u);
  const Trace out2 = drop_short_visits(t, 60.0);
  ASSERT_EQ(out2.visits(0).size(), 1u);
  EXPECT_EQ(out2.visits(0)[0].landmark, 0u);
}

TEST(DropSparseNodes, CompactsNodeIds) {
  Trace t(3, 1);
  t.add_visit({0, 0, 0.0, 1.0});
  t.add_visit({1, 0, 0.0, 1.0});
  t.add_visit({1, 0, 2.0, 3.0});
  t.add_visit({2, 0, 0.0, 1.0});
  t.add_visit({2, 0, 2.0, 3.0});
  t.finalize();
  std::vector<NodeId> kept;
  const Trace out = drop_sparse_nodes(t, 2, &kept);
  EXPECT_EQ(out.num_nodes(), 2u);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1u);
  EXPECT_EQ(kept[1], 2u);
  EXPECT_EQ(out.visits(0).size(), 2u);
}

TEST(DropRareLandmarks, CompactsLandmarkIds) {
  Trace t(1, 3);
  t.add_visit({0, 0, 0.0, 1.0});
  t.add_visit({0, 2, 2.0, 3.0});
  t.add_visit({0, 2, 4.0, 5.0});
  t.finalize();
  std::vector<LandmarkId> kept;
  const Trace out = drop_rare_landmarks(t, 2, &kept);
  EXPECT_EQ(out.num_landmarks(), 1u);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0], 2u);
  ASSERT_EQ(out.visits(0).size(), 2u);
  EXPECT_EQ(out.visits(0)[0].landmark, 0u);
}

TEST(ClusterAccessPoints, SingleLinkageChains) {
  // A--B within range, B--C within range, D isolated: clusters {A,B,C},{D}.
  const std::vector<Point> aps = {
      {0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}, {10.0, 0.0}};
  const auto clusters = cluster_access_points(aps, 1.2);
  ASSERT_EQ(clusters.size(), 4u);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[1], clusters[2]);
  EXPECT_NE(clusters[0], clusters[3]);
  const std::set<LandmarkId> distinct(clusters.begin(), clusters.end());
  EXPECT_EQ(distinct.size(), 2u);
}

TEST(ClusterAccessPoints, AllIsolated) {
  const std::vector<Point> aps = {{0, 0}, {5, 0}, {10, 0}};
  const auto clusters = cluster_access_points(aps, 1.0);
  const std::set<LandmarkId> distinct(clusters.begin(), clusters.end());
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(ClusterAccessPoints, DenseIdsFromZero) {
  const std::vector<Point> aps = {{0, 0}, {100, 0}};
  const auto clusters = cluster_access_points(aps, 1.0);
  for (const auto c : clusters) EXPECT_LT(c, 2u);
}

TEST(RemapLandmarks, AppliesMappingAndDropsUnmapped) {
  Trace t(1, 3);
  t.add_visit({0, 0, 0.0, 1.0});
  t.add_visit({0, 1, 2.0, 3.0});
  t.add_visit({0, 2, 4.0, 5.0});
  t.finalize();
  const std::vector<LandmarkId> mapping = {1, kNoLandmark, 0};
  const Trace out = remap_landmarks(t, mapping, 2);
  const auto visits = out.visits(0);
  ASSERT_EQ(visits.size(), 2u);
  EXPECT_EQ(visits[0].landmark, 1u);
  EXPECT_EQ(visits[1].landmark, 0u);
}

TEST(RemapLandmarks, MergesCollapsedNeighbors) {
  Trace t(1, 2);
  t.add_visit({0, 0, 0.0, 1.0});
  t.add_visit({0, 1, 1.5, 2.0});  // maps to same new landmark
  t.finalize();
  const std::vector<LandmarkId> mapping = {0, 0};
  const Trace out = remap_landmarks(t, mapping, 1, /*merge_gap=*/1.0);
  ASSERT_EQ(out.visits(0).size(), 1u);
  EXPECT_DOUBLE_EQ(out.visits(0)[0].end, 2.0);
}

TEST(RemoveNodeAfter, ClipsAndDropsOnlyThatNode) {
  Trace t(2, 2);
  t.add_visit({0, 0, 0.0, 10.0});
  t.add_visit({0, 1, 20.0, 30.0});   // spans the cut at 25
  t.add_visit({0, 0, 40.0, 50.0});   // fully after: dropped
  t.add_visit({1, 1, 40.0, 50.0});   // other node: untouched
  t.finalize();
  const Trace out = remove_node_after(t, 0, 25.0);
  const auto v0 = out.visits(0);
  ASSERT_EQ(v0.size(), 2u);
  EXPECT_DOUBLE_EQ(v0[1].start, 20.0);
  EXPECT_DOUBLE_EQ(v0[1].end, 25.0);
  ASSERT_EQ(out.visits(1).size(), 1u);
  EXPECT_DOUBLE_EQ(out.visits(1)[0].end, 50.0);
}

TEST(RemoveNodeAfter, CutBeforeEverythingEmptiesNode) {
  Trace t(1, 1);
  t.add_visit({0, 0, 10.0, 20.0});
  t.finalize();
  const Trace out = remove_node_after(t, 0, 5.0);
  EXPECT_TRUE(out.visits(0).empty());
  EXPECT_EQ(out.num_nodes(), 1u);  // universe preserved
}

TEST(RemoveNodeAfter, CutAfterEverythingIsIdentity) {
  Trace t(1, 1);
  t.add_visit({0, 0, 10.0, 20.0});
  t.finalize();
  const Trace out = remove_node_after(t, 0, 100.0);
  ASSERT_EQ(out.visits(0).size(), 1u);
  EXPECT_EQ(out.visits(0)[0], t.visits(0)[0]);
}

// DNET-style pipeline: cluster APs, remap, drop rare, drop short.
TEST(PreprocessPipeline, EndToEnd) {
  const std::vector<Point> aps = {{0, 0}, {0.5, 0}, {10, 0}};
  const auto mapping = cluster_access_points(aps, 1.0);
  Trace t(1, 3);
  t.add_visit({0, 0, 0.0, 300.0});
  t.add_visit({0, 1, 400.0, 800.0});  // same cluster as AP 0
  t.add_visit({0, 2, 900.0, 950.0});  // short
  t.finalize();
  Trace out = remap_landmarks(t, mapping, 2);
  out = drop_short_visits(out, 200.0);
  EXPECT_EQ(out.visits(0).size(), 2u);
  for (const auto& v : out.visits(0)) EXPECT_EQ(v.landmark, mapping[0]);
}

}  // namespace
}  // namespace dtn::trace
