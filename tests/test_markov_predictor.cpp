#include "core/markov_predictor.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace dtn::core {
namespace {

TEST(MarkovPredictor, NoPredictionBeforeData) {
  MarkovPredictor p(5, 1);
  EXPECT_FALSE(p.can_predict());
  EXPECT_EQ(p.predict(), kNoLandmark);
  EXPECT_EQ(p.current(), kNoLandmark);
  p.record_visit(2);
  EXPECT_EQ(p.current(), 2u);
  // Context "2" never appeared as a context before: still no prediction.
  EXPECT_FALSE(p.can_predict());
}

TEST(MarkovPredictor, ConsecutiveDuplicatesIgnored) {
  MarkovPredictor p(5, 1);
  p.record_visit(1);
  p.record_visit(1);  // re-association, not a transit
  p.record_visit(1);
  EXPECT_EQ(p.history_length(), 1u);
}

TEST(MarkovPredictor, Order1ConditionalProbabilities) {
  // Counts are substring occurrences (eqs. 2-3): for L = 0 2 1 0,
  // N("0") = 2 (one of them trailing), N("0 2") = 1 -> P(2|0) = 1/2.
  MarkovPredictor q(5, 1);
  for (const LandmarkId l : {0u, 2u, 1u, 0u}) q.record_visit(l);
  EXPECT_DOUBLE_EQ(q.probability_of(2), 0.5);
  EXPECT_DOUBLE_EQ(q.probability_of(1), 0.0);
  EXPECT_EQ(q.predict(), 2u);

  // L = 0 2 1 0 2: N("2") = 2, N("2 1") = 1 -> P(1|2) = 1/2.
  MarkovPredictor r(5, 1);
  for (const LandmarkId l : {0u, 2u, 1u, 0u, 2u}) r.record_visit(l);
  EXPECT_DOUBLE_EQ(r.probability_of(1), 0.5);
  EXPECT_DOUBLE_EQ(r.probability_of(3), 0.0);  // (2,3) not yet observed
}

TEST(MarkovPredictor, DistributionBoundedByOne) {
  MarkovPredictor p(6, 1);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    p.record_visit(static_cast<LandmarkId>(rng.uniform_index(6)));
  }
  ASSERT_TRUE(p.can_predict());
  const auto dist = p.next_distribution();
  const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
  // The trailing context occurrence has no successor yet, so the
  // conditional mass is (N(c)-1)/N(c) < 1 (Song et al. estimator).
  EXPECT_GT(total, 0.0);
  EXPECT_LE(total, 1.0 + 1e-12);
}

TEST(MarkovPredictor, Order2UsesTwoLandmarkContext) {
  // L = 0 1 2 0 1: context (0,1) occurs twice (second is trailing),
  // gram (0,1)->2 once: P(2|(0,1)) = 1/2.
  MarkovPredictor p(5, 2);
  for (const LandmarkId l : {0u, 1u, 2u, 0u, 1u}) p.record_visit(l);
  EXPECT_TRUE(p.can_predict());
  EXPECT_DOUBLE_EQ(p.probability_of(2), 0.5);
  // L = 0 1 2 0 1 3 0 1: N((0,1)) = 3, grams -> {2: 1, 3: 1}.
  MarkovPredictor q(5, 2);
  for (const LandmarkId l : {0u, 1u, 2u, 0u, 1u, 3u, 0u, 1u}) q.record_visit(l);
  EXPECT_DOUBLE_EQ(q.probability_of(2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(q.probability_of(3), 1.0 / 3.0);
}

TEST(MarkovPredictor, Order2NeedsLongerHistory) {
  MarkovPredictor p(5, 2);
  p.record_visit(0);
  EXPECT_FALSE(p.can_predict());
  EXPECT_EQ(p.predict(), kNoLandmark);
  EXPECT_DOUBLE_EQ(p.probability_of(1), 0.0);
}

TEST(MarkovPredictor, PredictPicksArgmax) {
  MarkovPredictor p(4, 1);
  // L = 0 1 0 1 0 2 0: N("0") = 4, grams 0->1 twice, 0->2 once.
  for (const LandmarkId l : {0u, 1u, 0u, 1u, 0u, 2u, 0u}) p.record_visit(l);
  EXPECT_EQ(p.predict(), 1u);
  EXPECT_DOUBLE_EQ(p.probability_of(1), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(p.probability_of(2), 1.0 / 4.0);
}

TEST(MarkovPredictor, TieBreaksToSmallerId) {
  MarkovPredictor p(4, 1);
  for (const LandmarkId l : {0u, 3u, 0u, 1u, 0u}) p.record_visit(l);
  EXPECT_EQ(p.predict(), 1u);  // both seen once; 1 < 3
}

TEST(ScoreSequence, PerfectlyPeriodicIsNearPerfect) {
  std::vector<LandmarkId> seq;
  for (int i = 0; i < 300; ++i) seq.push_back(static_cast<LandmarkId>(i % 3));
  const auto s1 = score_sequence(3, 1, seq);
  EXPECT_GT(s1.predictions, 250u);
  EXPECT_DOUBLE_EQ(s1.accuracy(), 1.0);
  const auto s2 = score_sequence(3, 2, seq);
  EXPECT_DOUBLE_EQ(s2.accuracy(), 1.0);
}

TEST(ScoreSequence, RandomSequenceNearChance) {
  Rng rng(9);
  std::vector<LandmarkId> seq;
  for (int i = 0; i < 5000; ++i) {
    seq.push_back(static_cast<LandmarkId>(rng.uniform_index(8)));
  }
  const auto s = score_sequence(8, 1, seq);
  EXPECT_GT(s.predictions, 3000u);
  EXPECT_LT(s.accuracy(), 0.3);  // chance ~1/7 among distinct successors
}

TEST(ScoreSequence, EmptySequence) {
  const auto s = score_sequence(4, 1, {});
  EXPECT_EQ(s.predictions, 0u);
  EXPECT_DOUBLE_EQ(s.accuracy(), 0.0);
}

// §IV-B.2/3: with complete records higher order is at least as good on
// a pattern that is ambiguous at order 1; with missing records order 1
// wins (the paper's DART/DNET finding).
TEST(ScoreSequence, HigherOrderResolvesAmbiguity) {
  // Pattern: 0 1 2 0 3 2 repeated — after "2" comes 0 always; after
  // "1" comes 2; after "0" comes 1 or 3 (ambiguous at order 1, resolved
  // by order 2 since (2,0)->? no wait: contexts (1,2)->0, (3,2)->0,
  // (2,0)->1 or 3 alternating -- still ambiguous. Use period-4 pattern:
  // 0 1 2 3 0 2 1 3: after 0 comes 1 or 2; order-2 contexts (3,0)->1|2.
  // Simplest truly order-2 pattern: 0 1 0 2 0 1 0 2 ...
  std::vector<LandmarkId> seq;
  for (int i = 0; i < 200; ++i) {
    seq.push_back(0);
    seq.push_back(i % 2 == 0 ? 1 : 2);
  }
  const auto s1 = score_sequence(3, 1, seq);
  const auto s2 = score_sequence(3, 2, seq);
  EXPECT_GT(s2.accuracy(), s1.accuracy());
  EXPECT_GT(s2.accuracy(), 0.95);
}

TEST(ScoreSequence, MissingRecordsHurtHigherOrderMore) {
  // Deterministic cycle over 6 landmarks with 20% records dropped:
  // order-1 contexts survive a single drop, order-3 contexts need four
  // consecutive intact records.
  Rng rng(17);
  std::vector<LandmarkId> seq;
  for (int i = 0; i < 6000; ++i) {
    if (rng.bernoulli(0.2)) continue;
    seq.push_back(static_cast<LandmarkId>(i % 6));
  }
  const auto s1 = score_sequence(6, 1, seq);
  const auto s3 = score_sequence(6, 3, seq);
  EXPECT_GT(s1.accuracy(), s3.accuracy());
}

// Regression: the retired (k+1)-gram key derived gram buckets as
// context_key * 0x9e3779b97f4a7c15 ^ (successor + 1), which can alias
// distinct (context, successor) pairs.  The two order-3 contexts below
// were constructed (via the multiplier's modular inverse) to collide
// under that scheme: recording c2 -> n2 would inflate the gram count
// of c1 -> n1, reporting P(n1 | c1) = 2.0 — a probability above one.
// The flat transition store keys contexts exactly (dense interned ids,
// per-context successor rows), so the pairs cannot share a counter.
TEST(MarkovPredictor, AdversarialGramKeysDoNotAlias) {
  constexpr std::size_t kMaxLandmarks = (1u << 20) - 1;
  // ctx1 . n1 and ctx2 . n2 satisfy
  //   pack(ctx1) * M ^ (n1 + 1) == pack(ctx2) * M ^ (n2 + 1).
  const LandmarkId ctx1[3] = {281691u, 114807u, 836016u};
  const LandmarkId n1 = 655152u;
  const LandmarkId ctx2[3] = {547839u, 188287u, 832127u};
  const LandmarkId n2 = 193577u;

  MarkovPredictor p(kMaxLandmarks, 3);
  for (const LandmarkId l : ctx1) p.record_visit(l);
  p.record_visit(n1);
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const LandmarkId l : ctx2) p.record_visit(l);
    p.record_visit(n2);
  }
  // Return to ctx1 and query: N(ctx1) = 2 (one mid-sequence, one
  // trailing), gram ctx1 -> n1 observed exactly once.
  for (const LandmarkId l : ctx1) p.record_visit(l);
  ASSERT_TRUE(p.can_predict());
  EXPECT_DOUBLE_EQ(p.probability_of(n1), 0.5);  // old scheme: 4/2 = 2.0
  EXPECT_DOUBLE_EQ(p.probability_of(n2), 0.0);
  EXPECT_EQ(p.predict(), n1);
  const auto dist = p.next_distribution();
  double total = 0.0;
  for (const double d : dist) total += d;
  EXPECT_LE(total, 1.0 + 1e-12);
}

TEST(MarkovPredictor, ScratchDistributionMatchesAllocatingOverload) {
  MarkovPredictor p(9, 2);
  Rng rng(23);
  std::vector<double> scratch(3, -1.0);  // wrong size + junk: must reset
  for (int i = 0; i < 800; ++i) {
    p.record_visit(static_cast<LandmarkId>(rng.uniform_index(9)));
    p.next_distribution(scratch);
    const auto fresh = p.next_distribution();
    ASSERT_EQ(scratch.size(), fresh.size());
    for (std::size_t l = 0; l < fresh.size(); ++l) {
      EXPECT_EQ(scratch[l], fresh[l]) << "l=" << l << " i=" << i;
    }
  }
}

TEST(VisitingSequence, CollapsesDuplicates) {
  std::vector<trace::Visit> visits = {
      {0, 1, 0.0, 1.0}, {0, 1, 2.0, 3.0}, {0, 2, 4.0, 5.0}, {0, 1, 6.0, 7.0}};
  const auto seq = visiting_sequence(visits);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0], 1u);
  EXPECT_EQ(seq[1], 2u);
  EXPECT_EQ(seq[2], 1u);
}

class PredictorOrderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PredictorOrderTest, ProbabilitiesAreValidDistributionOverRandomData) {
  const std::size_t order = GetParam();
  MarkovPredictor p(7, order);
  Rng rng(order * 31 + 5);
  for (int i = 0; i < 2000; ++i) {
    p.record_visit(static_cast<LandmarkId>(rng.uniform_index(7)));
    double total = 0.0;
    bool any = false;
    for (LandmarkId l = 0; l < 7; ++l) {
      const double prob = p.probability_of(l);
      EXPECT_GE(prob, 0.0);
      EXPECT_LE(prob, 1.0 + 1e-12);
      total += prob;
      any = any || prob > 0.0;
    }
    if (p.can_predict()) {
      EXPECT_GT(total, 0.0);
      EXPECT_LE(total, 1.0 + 1e-9);
      EXPECT_TRUE(any);
      EXPECT_NE(p.predict(), kNoLandmark);
    }
  }
}

TEST_P(PredictorOrderTest, PredictIsModeOfDistribution) {
  const std::size_t order = GetParam();
  MarkovPredictor p(5, order);
  Rng rng(order * 97 + 1);
  for (int i = 0; i < 1000; ++i) {
    p.record_visit(static_cast<LandmarkId>(rng.uniform_index(5)));
  }
  if (p.can_predict()) {
    const auto dist = p.next_distribution();
    const LandmarkId guess = p.predict();
    for (LandmarkId l = 0; l < 5; ++l) {
      EXPECT_LE(dist[l], dist[guess] + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, PredictorOrderTest,
                         ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace dtn::core
