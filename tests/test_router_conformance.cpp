// Router conformance suite: generic invariants every router must keep,
// parameterized over all nine implementations (the paper's six, the
// Direct floor and the two multi-copy references).
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.hpp"
#include "net/network.hpp"
#include "routing/factory.hpp"
#include "trace/bus_generator.hpp"
#include "trace/campus_generator.hpp"

namespace dtn {
namespace {

using trace::kDay;

const char* const kRouterNames[] = {"DTN-FLOW", "SimBet", "PROPHET",
                                    "PGR",      "GeoComm", "PER",
                                    "Direct",   "Epidemic", "SprayWait"};
const char* const kTraceKinds[] = {"campus", "bus"};

using ConformanceCase = std::tuple<const char*, const char*>;

trace::Trace conformance_trace(const std::string& kind) {
  if (kind == "bus") {
    trace::BusTraceConfig cfg;
    cfg.num_buses = 16;
    cfg.num_landmarks = 10;
    cfg.num_routes = 5;
    cfg.days = 10.0;
    cfg.seed = 31;
    return trace::generate_bus_trace(cfg);
  }
  trace::CampusTraceConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_landmarks = 10;
  cfg.num_communities = 4;
  cfg.days = 12.0;
  cfg.add_default_holiday = false;
  cfg.seed = 31;
  return trace::generate_campus_trace(cfg);
}

net::WorkloadConfig conformance_workload() {
  net::WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 8.0;
  cfg.ttl = 3.0 * kDay;
  cfg.node_memory_kb = 30;
  cfg.warmup_fraction = 0.25;
  cfg.time_unit = 0.5 * kDay;
  cfg.seed = 17;
  return cfg;
}

class RouterConformanceTest
    : public ::testing::TestWithParam<ConformanceCase> {
 protected:
  [[nodiscard]] std::string router_name() const {
    return std::get<0>(GetParam());
  }
  [[nodiscard]] trace::Trace make_trace() const {
    return conformance_trace(std::get<1>(GetParam()));
  }
};

TEST_P(RouterConformanceTest, InvariantsHoldAfterFullRun) {
  const auto trace = make_trace();
  const auto router = routing::make_router(router_name());
  net::Network net(trace, *router, conformance_workload());
  net.run();
  net.validate_invariants();
}

TEST_P(RouterConformanceTest, CountersAreConsistent) {
  const auto trace = make_trace();
  const auto router = routing::make_router(router_name());
  net::Network net(trace, *router, conformance_workload());
  net.run();
  const auto& c = net.counters();
  EXPECT_GT(c.generated, 100u);
  EXPECT_LE(c.delivered, c.generated);
  EXPECT_EQ(c.delivery_delays.size(), c.delivered);
  // Terminal + active packet rows account for every row.
  std::size_t delivered = 0, dropped = 0, obsolete = 0, active = 0;
  for (const auto& p : net.all_packets()) {
    switch (p.state) {
      case net::PacketState::kDelivered: ++delivered; break;
      case net::PacketState::kDroppedTtl: ++dropped; break;
      case net::PacketState::kObsoleteCopy: ++obsolete; break;
      default: ++active; break;
    }
  }
  EXPECT_EQ(delivered, c.delivered);
  EXPECT_EQ(dropped, c.dropped_ttl);
  EXPECT_EQ(delivered + dropped + obsolete + active, net.all_packets().size());
}

TEST_P(RouterConformanceTest, DelaysWithinTtl) {
  const auto trace = make_trace();
  const auto router = routing::make_router(router_name());
  net::Network net(trace, *router, conformance_workload());
  net.run();
  for (const auto& p : net.all_packets()) {
    if (p.state != net::PacketState::kDelivered) continue;
    const double delay = p.delivered_at - p.created;
    EXPECT_GT(delay, 0.0);
    EXPECT_LE(delay, p.ttl + 1e-6);
    EXPECT_GE(p.hops, 1u);
  }
}

TEST_P(RouterConformanceTest, DeterministicAcrossRuns) {
  const auto trace = make_trace();
  auto run_once = [&] {
    const auto router = routing::make_router(router_name());
    net::Network net(trace, *router, conformance_workload());
    net.run();
    return std::make_tuple(net.counters().delivered,
                           net.counters().packet_forwards,
                           net.counters().control_entries);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(RouterConformanceTest, DeliversSomethingOnFriendlyWorkload) {
  const auto trace = make_trace();
  const auto router = routing::make_router(router_name());
  auto workload = conformance_workload();
  workload.node_memory_kb = 500;  // remove the buffer constraint
  net::Network net(trace, *router, workload);
  net.run();
  EXPECT_GT(net.counters().delivered, 0u);
  EXPECT_GT(
      static_cast<double>(net.counters().delivered) /
          static_cast<double>(net.counters().generated),
      0.10);
}

TEST_P(RouterConformanceTest, NoControlTrafficWithoutEvents) {
  // An empty trace produces no callbacks, hence no costs.
  trace::Trace empty(4, 4);
  empty.finalize();
  const auto router = routing::make_router(router_name());
  net::WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  net::Network net(empty, *router, cfg);
  net.run();
  EXPECT_EQ(net.counters().generated, 0u);
  EXPECT_EQ(net.counters().packet_forwards, 0u);
  EXPECT_DOUBLE_EQ(net.counters().control_entries, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllRouters, RouterConformanceTest,
    ::testing::Combine(::testing::ValuesIn(kRouterNames),
                       ::testing::ValuesIn(kTraceKinds)));

}  // namespace
}  // namespace dtn
