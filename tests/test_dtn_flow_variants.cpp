// DTN-FLOW configuration-variant conformance: every meaningful
// combination of the §IV options must keep the network invariants and
// deliver on a friendly workload.
#include <gtest/gtest.h>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "test_helpers.hpp"
#include "trace/campus_generator.hpp"

namespace dtn::core {
namespace {

using dtn::testing::relay_chain_trace;
using net::Network;
using net::WorkloadConfig;
using trace::kDay;

struct Variant {
  const char* label;
  DtnFlowConfig config;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"default", {}});
  {
    DtnFlowConfig c;
    c.direct_delivery = false;
    c.refine_carrier_selection = false;
    out.push_back({"bare", c});
  }
  {
    DtnFlowConfig c;
    c.predictor_order = 2;
    out.push_back({"order2", c});
  }
  {
    DtnFlowConfig c;
    c.predictor_order = 3;
    c.bandwidth_rho = 1.0;
    out.push_back({"order3-rho1", c});
  }
  {
    DtnFlowConfig c;
    c.dead_end_prevention = true;
    c.loop_correction = true;
    c.load_balancing = true;
    out.push_back({"all-extensions", c});
  }
  {
    DtnFlowConfig c;
    c.scheduled_communication = true;
    c.max_uploads_per_arrival = 5;
    c.max_downloads_per_arrival = 5;
    out.push_back({"scheduled", c});
  }
  {
    DtnFlowConfig c;
    c.distributed_bandwidth = true;
    out.push_back({"distributed-bw", c});
  }
  {
    DtnFlowConfig c;
    c.node_to_node_relay = true;
    out.push_back({"hybrid-relay", c});
  }
  {
    DtnFlowConfig c;
    c.dv_exchange_every = 8;
    out.push_back({"thinned-dv", c});
  }
  {
    DtnFlowConfig c;
    c.dead_end_prevention = true;
    c.loop_correction = true;
    c.load_balancing = true;
    c.scheduled_communication = true;
    c.distributed_bandwidth = true;
    c.node_to_node_relay = true;
    c.dv_exchange_every = 2;
    out.push_back({"everything", c});
  }
  return out;
}

class DtnFlowVariantTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DtnFlowVariantTest, DeliversOnRelayChain) {
  const auto variant = variants()[GetParam()];
  const auto trace = relay_chain_trace(12.0);
  DtnFlowRouter router(variant.config);
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 0.0;
  cfg.warmup_fraction = 0.0;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 50;
  cfg.ttl = 3.0 * kDay;
  cfg.manual_packets = {{0, 3, 6.0 * kDay, 0.0}, {3, 0, 6.5 * kDay, 0.0}};
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_EQ(net.counters().delivered, 2u) << variant.label;
}

TEST_P(DtnFlowVariantTest, InvariantsOnCampusWorkload) {
  const auto variant = variants()[GetParam()];
  trace::CampusTraceConfig tc;
  tc.num_nodes = 24;
  tc.num_landmarks = 10;
  tc.num_communities = 4;
  tc.days = 10.0;
  tc.add_default_holiday = false;
  tc.seed = 13;
  const auto trace = generate_campus_trace(tc);
  DtnFlowRouter router(variant.config);
  WorkloadConfig cfg;
  cfg.packets_per_landmark_per_day = 10.0;
  cfg.warmup_fraction = 0.25;
  cfg.time_unit = 0.5 * kDay;
  cfg.node_memory_kb = 40;
  cfg.ttl = 3.0 * kDay;
  Network net(trace, router, cfg);
  net.run();
  net.validate_invariants();
  EXPECT_GT(net.counters().generated, 100u) << variant.label;
  EXPECT_GT(net.counters().delivered, net.counters().generated / 4)
      << variant.label;
}

INSTANTIATE_TEST_SUITE_P(Variants, DtnFlowVariantTest,
                         ::testing::Range<std::size_t>(0, 10));

}  // namespace
}  // namespace dtn::core
