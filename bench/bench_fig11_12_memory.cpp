// Figs. 11 & 12 — success rate / average delay / forwarding cost /
// total cost of the six routers as the per-node memory varies
// (paper: 1200..3000 kB in 200 kB steps; quick scale uses a
// proportionally scaled axis, see bench_common.cpp).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  const auto factories = dtn::bench::standard_factories();

  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    dtn::metrics::SweepConfig sweep;
    sweep.values = scenario.memory_sweep;
    sweep.apply = [](dtn::net::WorkloadConfig& cfg, double v) {
      cfg.node_memory_kb = static_cast<std::uint64_t>(v);
    };
    sweep.replicates =
        static_cast<std::size_t>(opts.get_int("replicates", 1));
    sweep.threads = static_cast<std::size_t>(opts.get_int("threads", 0));
    const auto cells = dtn::metrics::run_sweep(scenario.trace,
                                               scenario.workload, factories,
                                               sweep);

    struct Metric {
      const char* title;
      double (*pick)(const dtn::metrics::CellResult&);
      const char* csv;
    };
    const Metric metrics[] = {
        {"(a) success rate",
         [](const dtn::metrics::CellResult& c) { return c.success_rate.mean; },
         "a_success"},
        {"(b) average delay (days)",
         [](const dtn::metrics::CellResult& c) {
           return dtn::bench::to_days(c.avg_delay.mean);
         },
         "b_delay"},
        {"(c) forwarding cost (x1000 ops)",
         [](const dtn::metrics::CellResult& c) {
           return c.forwarding_cost.mean / 1000.0;
         },
         "c_fwdcost"},
        {"(d) total cost (x1000 ops)",
         [](const dtn::metrics::CellResult& c) {
           return c.total_cost.mean / 1000.0;
         },
         "d_totalcost"},
    };

    const std::string fig = scenario.name == "DART" ? "Fig. 11" : "Fig. 12";
    for (const auto& metric : metrics) {
      std::vector<std::string> headers = {"memory (kB)"};
      for (const auto& [name, factory] : factories) headers.push_back(name);
      dtn::TablePrinter table(headers);
      for (std::size_t v = 0; v < sweep.values.size(); ++v) {
        std::vector<double> row;
        for (std::size_t f = 0; f < factories.size(); ++f) {
          row.push_back(metric.pick(cells[f * sweep.values.size() + v]));
        }
        table.add_row(dtn::format_double(sweep.values[v], 6), row, 4);
      }
      table.print(fig + " (" + scenario.name + ") " + metric.title);
      table.write_csv(dtn::bench::csv_path(
          opts, (scenario.name == "DART" ? "fig11" : "fig12") +
                    std::string(metric.csv)));
    }
  }
  std::printf("\n(paper shapes: success DTN-FLOW > PER > SimBet~PROPHET > "
              "GeoComm,PGR and rising with memory; delay DTN-FLOW lowest; "
              "PGR forwards least among baselines)\n");
  return 0;
}
