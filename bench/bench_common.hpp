// Shared configuration for the paper-reproduction benches.
//
// Every bench accepts:
//   --scale quick|full   workload scale (default quick: minutes, shape-
//                        preserving; full: paper-scale, slow)
//   --csv <dir>          mirror printed tables to CSV files
//   --seed <n>           override the trace seed
//
// "DART" is the synthetic campus trace standing in for the Dartmouth
// WLAN log, "DNET" the synthetic bus trace standing in for the UMass
// DieselNet log (see DESIGN.md for the substitution argument).
#pragma once

#include <string>
#include <vector>

#include "metrics/experiment.hpp"
#include "metrics/metrics.hpp"
#include "net/network.hpp"
#include "trace/bus_generator.hpp"
#include "trace/campus_generator.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

namespace dtn::bench {

struct Scenario {
  std::string name;              // "DART" or "DNET"
  trace::Trace trace;
  net::WorkloadConfig workload;  // paper defaults for this trace
  /// Memory sweep values (kB) matching Figs. 11-12's x axis.
  std::vector<double> memory_sweep;
  /// Packet-rate sweep values matching Figs. 13-14's x axis.
  std::vector<double> rate_sweep;
};

/// The campus scenario (DART stand-in).
[[nodiscard]] Scenario make_dart_scenario(bool full_scale, std::uint64_t seed);

/// The bus scenario (DNET stand-in).
[[nodiscard]] Scenario make_dnet_scenario(bool full_scale, std::uint64_t seed);

/// Both scenarios in paper order.
[[nodiscard]] std::vector<Scenario> make_scenarios(const CliOptions& opts);

/// The six compared routers as experiment factories.
[[nodiscard]] std::vector<std::pair<std::string, metrics::RouterFactory>>
standard_factories();

/// Compose "<dir>/<name>.csv" or "" when CSV output is disabled.
[[nodiscard]] std::string csv_path(const CliOptions& opts,
                                   const std::string& name);

/// Seconds -> days, for printing delays in the paper's units.
[[nodiscard]] inline double to_days(double seconds) {
  return seconds / trace::kDay;
}

}  // namespace dtn::bench
