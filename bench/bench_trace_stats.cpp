// Table I — characteristics of the mobility traces.
//
// Prints one row per trace (nodes, landmarks, visits, transits,
// duration) for both the quick and the paper-scale synthetic stand-ins.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  dtn::TablePrinter table({"trace", "nodes", "landmarks", "visits", "transits",
                           "days", "mean visit (min)", "transits/node/day"});
  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    const auto c = dtn::trace::characterize(scenario.trace);
    table.add_row(scenario.name,
                  {static_cast<double>(c.num_nodes),
                   static_cast<double>(c.num_landmarks),
                   static_cast<double>(c.num_visits),
                   static_cast<double>(c.num_transits), c.duration_days,
                   c.mean_visit_minutes, c.mean_transits_per_node_day});
  }
  table.print("Table I: trace characteristics");
  table.write_csv(dtn::bench::csv_path(opts, "table1_trace_stats"));
  std::printf("\n(paper: DART 320 nodes / 159 landmarks / 119 days; "
              "DNET 34 nodes / 18 landmarks / 26 days; run with "
              "--scale full for paper-scale synthetic traces)\n");
  return 0;
}
