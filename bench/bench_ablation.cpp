// Ablation of DTN-FLOW's design choices (DESIGN.md §5) — not a paper
// table; quantifies what each §IV mechanism contributes on the DART
// scenario:
//   * direct-delivery opportunities (§IV-D.2) on/off,
//   * accuracy-refined carrier selection (§IV-D.4) on/off,
//   * predictor order k = 1/2/3 (§IV-B) as the *routing* predictor,
//   * bandwidth EWMA weight rho (eq. 4),
//   * §IV-D.5 communication scheduling on/off.
#include <cstdio>

#include "bench_common.hpp"
#include "core/dtn_flow_router.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  const auto scenario =
      dtn::bench::make_dart_scenario(opts.full_scale(), opts.get_seed(1));

  dtn::TablePrinter table({"variant", "success rate", "avg delay (days)",
                           "forwarding cost", "maintenance cost"});
  auto run_variant = [&](const std::string& label,
                         const dtn::core::DtnFlowConfig& rc) {
    dtn::core::DtnFlowRouter router(rc);
    const auto r =
        dtn::metrics::run_experiment(scenario.trace, router, scenario.workload);
    table.add_row(label,
                  {r.success_rate, dtn::bench::to_days(r.avg_delay),
                   r.forwarding_cost, r.control_cost},
                  4);
  };

  dtn::core::DtnFlowConfig base;
  run_variant("full DTN-FLOW", base);

  {
    auto rc = base;
    rc.direct_delivery = false;
    run_variant("- direct delivery", rc);
  }
  {
    auto rc = base;
    rc.refine_carrier_selection = false;
    run_variant("- accuracy refinement", rc);
  }
  {
    auto rc = base;
    rc.direct_delivery = false;
    rc.refine_carrier_selection = false;
    run_variant("- both", rc);
  }
  for (const std::size_t order : {2u, 3u}) {
    auto rc = base;
    rc.predictor_order = order;
    run_variant("predictor order " + std::to_string(order), rc);
  }
  for (const double rho : {0.1, 0.2, 0.3, 0.9, 1.0}) {
    auto rc = base;
    rc.bandwidth_rho = rho;
    run_variant("rho = " + dtn::format_double(rho, 2), rc);
  }
  {
    auto rc = base;
    rc.scheduled_communication = true;
    run_variant("+ IV-D.5 scheduling", rc);
  }
  {
    auto rc = base;
    rc.distributed_bandwidth = true;
    run_variant("+ IV-C.1 token protocol", rc);
  }
  for (const std::size_t every : {4u, 16u}) {
    auto rc = base;
    rc.dv_exchange_every = every;
    run_variant("DV every " + std::to_string(every) + " transits", rc);
  }
  {
    auto rc = base;
    rc.node_to_node_relay = true;
    run_variant("+ node-to-node relay (SVI)", rc);
  }

  table.print("DTN-FLOW design ablation (DART scenario)");
  table.write_csv(dtn::bench::csv_path(opts, "ablation"));
  std::printf("\n(expected: order-1 routing beats order-2/3 under missing "
              "records; direct delivery and refinement each contribute "
              "modest success-rate/delay improvements)\n");
  return 0;
}
