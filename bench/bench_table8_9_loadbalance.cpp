// Tables VIII & IX — load balancing (§IV-E.3).
//
// As in the paper, the packet rate is pushed past the normal range to
// create overloaded links ([1100, 1500] pkts/landmark/day at paper
// scale; the quick scale pushes the equivalent 110%-150% of its own
// overload point), and DTN-FLOW runs with and without the backup-next-
// hop diversion.
#include <cstdio>

#include "bench_common.hpp"
#include "core/dtn_flow_router.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    // Overload rates: 1100..1500 at paper scale; 2.2x..3x the default
    // rate at quick scale (the same ratio to the Figs. 13/14 axis).
    std::vector<double> rates;
    if (opts.full_scale()) {
      for (double r = 1100.0; r <= 1500.0; r += 100.0) rates.push_back(r);
    } else {
      const double base = scenario.workload.packets_per_landmark_per_day;
      for (double f = 1.2; f <= 2.01; f += 0.2) rates.push_back(base * f);
    }

    dtn::TablePrinter succ({"rate", "W/O-Balance", "W-Balance", "diversions"});
    dtn::TablePrinter delay({"rate", "W/O-Balance (days)", "W-Balance (days)"});
    // Hot-spot traffic: a third of the demand targets three landmarks,
    // overloading the links feeding them while the rest of the network
    // keeps spare capacity — the localized overload of Fig. 10 that the
    // backup next hop exists to absorb.
    std::vector<double> dst_weights(scenario.trace.num_landmarks(), 1.0);
    for (std::size_t h = 0; h < 3 && h < dst_weights.size(); ++h) {
      dst_weights[h] = static_cast<double>(dst_weights.size()) / 6.0;
    }

    for (const double rate : rates) {
      auto workload = scenario.workload;
      workload.packets_per_landmark_per_day = rate;
      workload.destination_weights = dst_weights;
      double succ_wo = 0.0, succ_w = 0.0, delay_wo = 0.0, delay_w = 0.0;
      double diversions = 0.0;
      for (const bool balance : {false, true}) {
        dtn::core::DtnFlowConfig rc;
        rc.load_balancing = balance;
        dtn::core::DtnFlowRouter router(rc);
        const auto r =
            dtn::metrics::run_experiment(scenario.trace, router, workload);
        if (balance) {
          succ_w = r.success_rate;
          delay_w = r.avg_delay;
          diversions =
              static_cast<double>(router.diagnostics().balancing_diversions);
        } else {
          succ_wo = r.success_rate;
          delay_wo = r.avg_delay;
        }
      }
      succ.add_row(dtn::format_double(rate, 5), {succ_wo, succ_w, diversions},
                   4);
      delay.add_row(dtn::format_double(rate, 5),
                    {dtn::bench::to_days(delay_wo),
                     dtn::bench::to_days(delay_w)},
                    4);
    }
    succ.print("Table VIII (" + scenario.name +
               "): load balancing, success rate");
    succ.write_csv(
        dtn::bench::csv_path(opts, "table8_balance_success_" + scenario.name));
    delay.print("Table IX (" + scenario.name +
                "): load balancing, average delay");
    delay.write_csv(
        dtn::bench::csv_path(opts, "table9_balance_delay_" + scenario.name));
  }
  std::printf("\n(paper shape: with balancing the success rate rises and the "
              "average delay falls at overload rates)\n");
  return 0;
}
