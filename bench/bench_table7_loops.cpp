// Table VII — routing-loop detection and correction (§IV-E.2).
//
// Loops are injected as in the paper's test: N_loop routing cycles are
// purposely created (here by pinning poisoned next hops for randomly
// chosen destinations once the tables have formed — the controlled
// analogue of an untimely distance-vector update).  ORG-x runs without
// the correction machinery, W-x with it.  The delay column is the
// *overall* average delay counting an unsuccessful packet as the
// experiment duration, exactly as the paper measures O.Delay.
#include <cstdio>

#include "bench_common.hpp"
#include "core/dtn_flow_router.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    dtn::TablePrinter table({"variant", "success rate", "O.delay (days)",
                             "loops detected", "loops corrected"});

    auto make_injections = [&](std::size_t n_loops) {
      dtn::Rng rng(opts.get_seed(11) + n_loops);
      std::vector<dtn::core::DtnFlowConfig::LoopInjection> out;
      const std::size_t m = scenario.trace.num_landmarks();
      const auto inject_unit = static_cast<std::size_t>(
          0.3 * (scenario.trace.duration() / scenario.workload.time_unit));
      for (std::size_t k = 0; k < n_loops; ++k) {
        dtn::core::DtnFlowConfig::LoopInjection inj;
        inj.dst = static_cast<dtn::net::LandmarkId>(rng.uniform_index(m));
        dtn::net::LandmarkId a, b;
        do {
          a = static_cast<dtn::net::LandmarkId>(rng.uniform_index(m));
          b = static_cast<dtn::net::LandmarkId>(rng.uniform_index(m));
        } while (a == b || a == inj.dst || b == inj.dst);
        inj.cycle = {a, b};
        inj.at_unit = std::max<std::size_t>(1, inject_unit);
        out.push_back(inj);
      }
      return out;
    };

    auto run_variant = [&](const std::string& label, std::size_t n_loops,
                           bool correction) {
      dtn::core::DtnFlowConfig rc;
      rc.loop_correction = correction;
      rc.loop_injections = make_injections(n_loops);
      dtn::core::DtnFlowRouter router(rc);
      const auto r =
          dtn::metrics::run_experiment(scenario.trace, router,
                                       scenario.workload);
      table.add_row(
          label,
          {r.success_rate, dtn::bench::to_days(r.overall_delay),
           static_cast<double>(router.diagnostics().loops_detected),
           static_cast<double>(router.diagnostics().loops_corrected)},
          4);
    };

    run_variant("no loops", 0, false);
    run_variant("ORG-2", 2, false);
    run_variant("W-2", 2, true);
    run_variant("ORG-3", 3, false);
    run_variant("W-3", 3, true);
    table.print("Table VII (" + scenario.name +
                "): loop detection and correction");
    table.write_csv(
        dtn::bench::csv_path(opts, "table7_loops_" + scenario.name));
  }
  std::printf("\n(paper shape: injected loops depress the hit rate without "
              "correction; with correction W-x recovers to near the "
              "loop-free rate and the overall delay drops)\n");
  return 0;
}
