// Fig. 8 — average routing-table coverage and stability at ten evenly
// distributed observation points.
//
// Coverage at observation point t: fraction of destination landmarks a
// landmark's table can route to.  Stability: fraction of destinations
// whose next hop is unchanged since the previous observation point.
// Both are averaged over all landmarks, sampled by running DTN-FLOW
// over the trace with an observer router wrapper.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/dtn_flow_router.hpp"

namespace {

// DTN-FLOW plus snapshots of coverage/stability at each time unit.
class ObservedDtnFlow final : public dtn::net::Router {
 public:
  explicit ObservedDtnFlow(std::size_t observation_points)
      : points_(observation_points) {}

  [[nodiscard]] std::string name() const override { return "DTN-FLOW"; }
  [[nodiscard]] bool uses_stations() const override { return true; }
  void on_init(dtn::net::Network& net) override {
    inner_.on_init(net);
    total_units_ = static_cast<std::size_t>(
        (net.trace_end() - net.trace_begin()) / net.config().time_unit);
    prev_hops_.assign(net.num_landmarks(), {});
  }
  void on_arrival(dtn::net::Network& net, dtn::net::NodeId n,
                  dtn::net::LandmarkId l) override {
    inner_.on_arrival(net, n, l);
  }
  void on_departure(dtn::net::Network& net, dtn::net::NodeId n,
                    dtn::net::LandmarkId l) override {
    inner_.on_departure(net, n, l);
  }
  void on_packet_generated(dtn::net::Network& net,
                           dtn::net::PacketId pid) override {
    inner_.on_packet_generated(net, pid);
  }
  void on_time_unit(dtn::net::Network& net, std::size_t unit) override {
    inner_.on_time_unit(net, unit);
    const std::size_t every = std::max<std::size_t>(1, total_units_ / points_);
    if (unit % every != 0) return;
    double coverage = 0.0;
    double stability = 0.0;
    const std::size_t m = net.num_landmarks();
    for (dtn::net::LandmarkId l = 0; l < m; ++l) {
      const auto& table = inner_.routing_table(l);
      coverage += table.coverage();
      const auto hops = table.next_hops();
      if (!prev_hops_[l].empty()) {
        std::size_t same = 0;
        for (std::size_t d = 0; d < hops.size(); ++d) {
          if (hops[d] == prev_hops_[l][d]) ++same;
        }
        stability +=
            static_cast<double>(same) / static_cast<double>(hops.size());
      } else {
        stability += 0.0;  // first observation: fully "new"
      }
      prev_hops_[l] = hops;
    }
    coverages.push_back(coverage / static_cast<double>(m));
    stabilities.push_back(stability / static_cast<double>(m));
  }

  std::vector<double> coverages;
  std::vector<double> stabilities;

 private:
  dtn::core::DtnFlowRouter inner_;
  std::size_t points_;
  std::size_t total_units_ = 1;
  std::vector<std::vector<dtn::net::LandmarkId>> prev_hops_;
};

}  // namespace

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    ObservedDtnFlow router(10);
    dtn::net::Network net(scenario.trace, router, scenario.workload);
    net.run();
    dtn::TablePrinter table({"observation", "coverage", "stability"});
    for (std::size_t i = 0; i < router.coverages.size(); ++i) {
      table.add_row("t" + std::to_string(i + 1),
                    {router.coverages[i], router.stabilities[i]}, 3);
    }
    table.print("Fig. 8 (" + scenario.name +
                "): routing-table coverage and stability");
    table.write_csv(
        dtn::bench::csv_path(opts, "fig8_routing_table_" + scenario.name));
  }
  std::printf("\n(shape check: coverage approaches 1 after the first few "
              "observation points and next hops become stable)\n");
  return 0;
}
