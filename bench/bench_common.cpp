#include "bench_common.hpp"

#include "routing/factory.hpp"

namespace dtn::bench {

Scenario make_dart_scenario(bool full_scale, std::uint64_t seed) {
  Scenario s;
  s.name = "DART";
  if (full_scale) {
    s.trace = trace::generate_campus_trace(trace::dart_scale_config(seed));
    s.workload.packets_per_landmark_per_day = 500.0;
    s.workload.ttl = 20.0 * trace::kDay;
    s.workload.node_memory_kb = 2000;
    s.workload.time_unit = 3.0 * trace::kDay;
    for (double m = 1200.0; m <= 3000.0; m += 200.0) s.memory_sweep.push_back(m);
    for (double r = 100.0; r <= 1000.0; r += 100.0) s.rate_sweep.push_back(r);
  } else {
    trace::CampusTraceConfig cfg;
    cfg.num_nodes = 64;
    cfg.num_landmarks = 30;
    cfg.num_communities = 14;
    cfg.community_landmarks = 4;
    cfg.community_bias = 0.85;
    cfg.days = 32.0;
    cfg.seed = seed;
    s.trace = trace::generate_campus_trace(cfg);
    s.workload.packets_per_landmark_per_day = 30.0;
    s.workload.ttl = 4.0 * trace::kDay;
    s.workload.node_memory_kb = 40;
    s.workload.time_unit = 1.0 * trace::kDay;
    for (double m = 10.0; m <= 100.0; m += 10.0) s.memory_sweep.push_back(m);
    for (double r = 10.0; r <= 100.0; r += 10.0) s.rate_sweep.push_back(r);
  }
  s.workload.warmup_fraction = 0.25;
  s.workload.seed = seed * 31 + 7;
  return s;
}

Scenario make_dnet_scenario(bool full_scale, std::uint64_t seed) {
  Scenario s;
  s.name = "DNET";
  // DNET is small enough that "full" and "quick" share the trace shape;
  // full uses the paper's exact node/landmark counts and packet rates.
  trace::BusTraceConfig cfg = trace::dnet_scale_config(seed);
  // The paper's DNET trace excludes holidays and weekends (§III-B.3);
  // modelling that as continuous weekday-like service keeps the Fig. 4
  // per-unit series comparable to theirs.
  cfg.weekdays_only = false;
  if (!full_scale) {
    cfg.num_buses = 24;
    cfg.num_landmarks = 14;
    cfg.num_routes = 8;
    cfg.days = 20.0;
  }
  s.trace = trace::generate_bus_trace(cfg);
  s.workload.ttl = 4.0 * trace::kDay;
  s.workload.time_unit = 0.5 * trace::kDay;
  s.workload.warmup_fraction = 0.25;
  s.workload.seed = seed * 57 + 13;
  if (full_scale) {
    s.workload.packets_per_landmark_per_day = 500.0;
    s.workload.node_memory_kb = 2000;
    for (double m = 1200.0; m <= 3000.0; m += 200.0) s.memory_sweep.push_back(m);
    for (double r = 100.0; r <= 1000.0; r += 100.0) s.rate_sweep.push_back(r);
  } else {
    s.workload.packets_per_landmark_per_day = 40.0;
    s.workload.node_memory_kb = 60;
    for (double m = 15.0; m <= 150.0; m += 15.0) s.memory_sweep.push_back(m);
    for (double r = 10.0; r <= 100.0; r += 10.0) s.rate_sweep.push_back(r);
  }
  return s;
}

std::vector<Scenario> make_scenarios(const CliOptions& opts) {
  const bool full = opts.full_scale();
  const std::uint64_t seed = opts.get_seed(1);
  std::vector<Scenario> out;
  out.push_back(make_dart_scenario(full, seed));
  out.push_back(make_dnet_scenario(full, seed + 1));
  return out;
}

std::vector<std::pair<std::string, metrics::RouterFactory>>
standard_factories() {
  std::vector<std::pair<std::string, metrics::RouterFactory>> out;
  for (const auto& name : routing::standard_router_names()) {
    out.emplace_back(name, [name] { return routing::make_router(name); });
  }
  return out;
}

std::string csv_path(const CliOptions& opts, const std::string& name) {
  const std::string dir = opts.csv_dir();
  if (dir.empty()) return "";
  return dir + "/" + name + ".csv";
}

}  // namespace dtn::bench
