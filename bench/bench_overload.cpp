// Overload degradation sweep (docs/bounded-store.md; not a paper
// figure).  Bound the landmark stations well below the offered load and
// compare how each eviction policy degrades: a bounded replay must shed
// or evict traffic deterministically instead of growing without limit,
// and the spill backend should absorb the overflow that the in-memory
// policies drop.  Success rates shrink with capacity; the spill row
// sheds and evicts nothing (every bundle survives on disk awaiting
// recall) and edges out the in-memory drop policies on success.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "core/dtn_flow_router.hpp"
#include "net/bundle_store.hpp"

namespace {

struct Cell {
  double success = 0.0;
  dtn::net::RunCounters counters;
};

Cell run_cell(const dtn::bench::Scenario& scenario,
              const dtn::net::WorkloadConfig& workload) {
  dtn::core::DtnFlowRouter router;
  dtn::net::Network net(scenario.trace, router, workload);
  net.run();
  const auto res = dtn::metrics::summarize(net, router.name());
  return {res.success_rate, net.counters()};
}

}  // namespace

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  const auto scenario =
      dtn::bench::make_dart_scenario(opts.full_scale(), opts.get_seed(1));

  // Offered load well past what bounded stations can hold.
  auto workload = scenario.workload;
  workload.packets_per_landmark_per_day *= 3.0;

  const auto spill_dir =
      std::filesystem::temp_directory_path() / "dtn_bench_overload_spill";
  std::filesystem::remove_all(spill_dir);
  std::filesystem::create_directories(spill_dir);

  dtn::TablePrinter table({"station kB / policy", "success", "delivered",
                           "evicted", "shed", "spilled"});
  const auto add_cell = [&](const std::string& label, const Cell& cell) {
    table.add_row(label,
                  {cell.success, static_cast<double>(cell.counters.delivered),
                   static_cast<double>(cell.counters.evicted_policy),
                   static_cast<double>(cell.counters.admission_shed),
                   static_cast<double>(cell.counters.spilled_bundles)},
                  3);
  };

  add_cell("unbounded", run_cell(scenario, workload));
  for (const std::uint64_t kb : {40, 20, 10}) {
    for (const dtn::net::EvictionPolicy policy :
         {dtn::net::EvictionPolicy::kReject,
          dtn::net::EvictionPolicy::kDropOldest,
          dtn::net::EvictionPolicy::kDropLargestExpectedDelay,
          dtn::net::EvictionPolicy::kTtlExpire}) {
      auto wl = workload;
      wl.store.station_memory_kb = kb;
      wl.store.policy = policy;
      add_cell(std::to_string(kb) + " / " + dtn::net::to_string(policy),
               run_cell(scenario, wl));
    }
  }
  // Spill backend: bounded memory, overflow to disk instead of refusal.
  {
    auto wl = workload;
    wl.store.station_memory_kb = 10;
    wl.store.spill_dir = spill_dir.string();
    add_cell("10 / spill-to-disk", run_cell(scenario, wl));
  }

  table.print("overload degradation sweep (DART, 3x offered load)");
  table.write_csv(dtn::bench::csv_path(opts, "overload"));
  std::printf("\n(shape check: success falls as stations shrink; eviction "
              "policies beat reject; spill-to-disk sheds and evicts "
              "nothing and edges out the in-memory drop policies)\n");
  std::filesystem::remove_all(spill_dir);
  return 0;
}
