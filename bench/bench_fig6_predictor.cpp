// Fig. 6 — accuracy of the order-k Markov transit prediction.
//
// (a) average per-node accuracy for k = 1, 2, 3 on both traces (the
//     paper finds k = 1 best because position records are incomplete);
// (b) min / Q1 / mean / Q3 / max of per-node accuracy for k = 1
//     (paper: DART mean ~0.77, DNET mean ~0.66 — lower despite more
//     repetitive mobility, due to neighbouring-AP ambiguity).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/markov_predictor.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  dtn::TablePrinter avg_table({"trace", "order-1", "order-2", "order-3"});
  dtn::TablePrinter quant_table(
      {"trace", "min", "Q1", "mean", "Q3", "max", "nodes"});

  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    std::vector<double> averages;
    std::vector<double> order1_accuracies;
    for (const std::size_t order : {1u, 2u, 3u}) {
      dtn::RunningStats acc;
      for (dtn::trace::NodeId n = 0; n < scenario.trace.num_nodes(); ++n) {
        const auto seq =
            dtn::core::visiting_sequence(scenario.trace.visits(n));
        const auto score =
            dtn::core::score_sequence(scenario.trace.num_landmarks(), order, seq);
        if (score.predictions < 20) continue;  // too few to rate, as in §IV-B
        acc.add(score.accuracy());
        if (order == 1) order1_accuracies.push_back(score.accuracy());
      }
      averages.push_back(acc.mean());
    }
    avg_table.add_row(scenario.name, averages, 3);
    if (!order1_accuracies.empty()) {
      const auto f = dtn::five_number_summary(order1_accuracies);
      quant_table.add_row(
          scenario.name,
          {f.min, f.q1, f.mean, f.q3, f.max,
           static_cast<double>(order1_accuracies.size())},
          3);
    }
  }

  avg_table.print("Fig. 6(a): average order-k prediction accuracy");
  avg_table.write_csv(dtn::bench::csv_path(opts, "fig6a_predictor_order"));
  quant_table.print("Fig. 6(b): per-node order-1 accuracy quantiles");
  quant_table.write_csv(dtn::bench::csv_path(opts, "fig6b_predictor_quantiles"));
  std::printf("\n(paper: order-1 best on both traces; DART mean ~0.77, "
              "DNET mean ~0.66)\n");
  return 0;
}
