// Fig. 16 + Table X — the campus deployment (§V-C).
//
// Reproduces the paper's real deployment in simulation: eight campus
// landmarks laid out as in Fig. 15(a) — L1 the library, L2/L4/L5/L7
// department buildings, L3/L6/L8 the student center and dining halls —
// nine students from four departments carrying phones, every landmark
// generating 75 packets per day all destined to the library, TTL 3
// days, 50 kB phone memory, 12 h time unit.
//
// Outputs: success rate and delay quantiles (Fig. 16(a)), the transit-
// link bandwidth map above the paper's 0.14 display threshold
// (Fig. 16(b)), and the routing tables of three landmarks (Table X).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/dtn_flow_router.hpp"
#include "trace/geo_generator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using dtn::trace::kDay;
using dtn::trace::kHour;
using dtn::trace::kMinute;

// Landmark ids (paper names): 0=L1 library, 1=L2, 3=L4, 4=L5, 6=L7
// department buildings, 2=L3, 5=L6, 7=L8 student center / dining.
constexpr dtn::trace::LandmarkId kLibrary = 0;

// Nine students from four departments walking the Fig. 15(a) map:
// geographic mobility with a library-heavy attraction profile, so
// travel times follow the building distances.
dtn::trace::Trace deployment_trace(double days, std::uint64_t seed) {
  dtn::trace::GeoTraceConfig cfg;
  cfg.landmark_positions = dtn::trace::fig15_positions();
  cfg.num_nodes = 9;
  cfg.days = days;
  cfg.seed = seed;
  // Students 0-2 from department L2, 3-4 from L4, 5-6 from L5, 7-8 from
  // L7 (paper: most participants from the L2/L4 departments).
  cfg.homes = {1, 1, 1, 3, 3, 4, 4, 6, 6};
  // Library-centric student life; dining/student-center visited less.
  cfg.attraction = {6.0, 1.0, 0.8, 1.0, 0.8, 0.8, 1.0, 0.8};
  cfg.home_bias = 0.45;
  cfg.mean_stay_minutes = 65.0;
  return dtn::trace::generate_geo_trace(cfg);
}

}  // namespace

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  const double days = opts.full_scale() ? 30.0 : 12.0;
  const auto trace = deployment_trace(days, opts.get_seed(21));

  dtn::net::WorkloadConfig workload;
  workload.packets_per_landmark_per_day = 75.0;
  workload.ttl = 3.0 * kDay;
  workload.node_memory_kb = 50;
  workload.packet_size_kb = 1;
  workload.time_unit = 12.0 * kHour;
  workload.warmup_fraction = 0.25;
  workload.seed = opts.get_seed(21) * 7 + 1;

  dtn::core::DtnFlowRouter router;

  // All packets target the library: replace the Poisson uniform-dst
  // workload with manual generation (75/landmark/day, evenly in the
  // daytime, as deployed).
  workload.packets_per_landmark_per_day = 0.0;
  const double start = trace.begin_time() +
                       workload.warmup_fraction * trace.duration();
  for (dtn::trace::LandmarkId l = 1; l < 8; ++l) {
    for (double day = std::floor(start / kDay); day < days; day += 1.0) {
      for (int k = 0; k < 75; ++k) {
        const double at =
            day * kDay + 8.0 * kHour + (13.0 * kHour) * (k + 0.5) / 75.0;
        if (at < start || at > trace.end_time()) continue;
        workload.manual_packets.push_back({l, kLibrary, at, 0.0});
      }
    }
  }
  dtn::net::Network net2(trace, router, workload);
  net2.run();
  const auto result = dtn::metrics::summarize(net2, router.name());

  // Fig. 16(a): success rate and delay quantiles.
  std::printf("== Fig. 16(a): deployment success rate and delay ==\n");
  std::printf("packets generated: %lu, delivered: %lu, success rate: %.3f\n",
              static_cast<unsigned long>(result.generated),
              static_cast<unsigned long>(result.delivered),
              result.success_rate);
  if (!result.delivery_delays.empty()) {
    std::vector<double> minutes;
    for (const double d : result.delivery_delays) {
      minutes.push_back(d / kMinute);
    }
    const auto f = dtn::five_number_summary(minutes);
    std::printf("delay (minutes): min %.0f, Q1 %.0f, mean %.0f, Q3 %.0f, "
                "max %.0f\n",
                f.min, f.q1, f.mean, f.q3, f.max);
  }
  std::printf("(paper: >82%% delivered, 75%% within 1400 min, mean ~1000 min "
              "with only 9 nodes)\n");

  // Fig. 16(b): link bandwidths above the display threshold.
  dtn::TablePrinter links({"from", "to", "bandwidth/unit"});
  const auto& bw = router.bandwidth();
  for (dtn::trace::LandmarkId i = 0; i < 8; ++i) {
    for (dtn::trace::LandmarkId j = 0; j < 8; ++j) {
      if (i == j) continue;
      const double b = bw.bandwidth(i, j);
      if (b >= 0.14) {
        links.add_row("L" + std::to_string(i + 1),
                      {static_cast<double>(j + 1), b}, 3);
      }
    }
  }
  links.print("Fig. 16(b): transit-link bandwidths (>= 0.14/unit)");
  links.write_csv(dtn::bench::csv_path(opts, "fig16b_bandwidths"));

  // Table X: routing tables of three landmarks.
  for (const dtn::trace::LandmarkId l : {1u, 4u, 6u}) {
    dtn::TablePrinter table({"destination", "next hop", "delay (h)"});
    const auto& rt = router.routing_table(l);
    for (dtn::trace::LandmarkId d = 0; d < 8; ++d) {
      if (d == l) continue;
      const auto r = rt.route(d);
      table.add_row("L" + std::to_string(d + 1),
                    {static_cast<double>(r.next == dtn::trace::kNoLandmark
                                             ? -1.0
                                             : r.next + 1.0),
                     r.delay == dtn::core::kInfiniteDelay
                         ? -1.0
                         : r.delay / kHour},
                    3);
    }
    table.print("Table X: routing table on L" + std::to_string(l + 1));
  }
  std::printf("\n(shape check: tables route through the library/department "
              "high-bandwidth links, consistent with Fig. 16(b))\n");
  return 0;
}
