// Carrier-failure robustness (not a paper table; motivated by §IV-A.5's
// maintenance discussion and the dead-end extension): withdraw a
// fraction of the nodes halfway through the workload phase — their
// carried packets are lost — and measure how gracefully each router
// degrades.  DTN-FLOW's landmark stations hold queued traffic through
// the failure; node-only baselines lose everything the failed carriers
// hoarded.
#include <cstdio>

#include "bench_common.hpp"
#include "routing/factory.hpp"
#include "trace/preprocess.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  const auto scenario =
      dtn::bench::make_dart_scenario(opts.full_scale(), opts.get_seed(1));

  dtn::TablePrinter table({"failed nodes", "DTN-FLOW", "PROPHET", "PER"});
  for (const double fraction : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    // Fail the chosen nodes at 60% of the trace.
    dtn::Rng rng(opts.get_seed(1) ^ 0xfa11);
    auto trace = scenario.trace;
    const auto to_fail = static_cast<std::size_t>(
        fraction * static_cast<double>(trace.num_nodes()));
    const auto order = rng.permutation(trace.num_nodes());
    const double fail_at =
        trace.begin_time() + 0.6 * trace.duration();
    for (std::size_t k = 0; k < to_fail; ++k) {
      trace = dtn::trace::remove_node_after(
          trace, static_cast<dtn::trace::NodeId>(order[k]), fail_at);
    }

    std::vector<double> row;
    for (const std::string name : {"DTN-FLOW", "PROPHET", "PER"}) {
      const auto router = dtn::routing::make_router(name);
      const auto r =
          dtn::metrics::run_experiment(trace, *router, scenario.workload);
      row.push_back(r.success_rate);
    }
    table.add_row(dtn::format_double(fraction * 100.0, 3) + "%", row, 4);
  }
  table.print("success rate under carrier failures (DART)");
  table.write_csv(dtn::bench::csv_path(opts, "robustness"));
  std::printf("\n(shape check: all routers degrade with failures; DTN-FLOW "
              "retains the largest share of its failure-free success "
              "rate)\n");
  return 0;
}
