// Microbenchmarks of the core data structures (google-benchmark).
//
// Not a paper figure: these guard the hot paths of the simulator so the
// paper-scale (--scale full) runs stay tractable.
#include <benchmark/benchmark.h>

#include "core/bandwidth.hpp"
#include "core/markov_predictor.hpp"
#include "core/routing_table.hpp"
#include "net/buffer.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include <filesystem>

#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "persist/checkpoint.hpp"
#include "trace/campus_generator.hpp"
#include "trace/city_generator.hpp"
#include "trace/cursor.hpp"
#include "util/rng.hpp"

namespace {

void BM_PredictorRecordVisit(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  dtn::core::MarkovPredictor p(64, order);
  dtn::Rng rng(1);
  std::vector<dtn::trace::LandmarkId> seq;
  for (int i = 0; i < 4096; ++i) {
    seq.push_back(static_cast<dtn::trace::LandmarkId>(rng.uniform_index(64)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    p.record_visit(seq[i++ & 4095]);
  }
}
BENCHMARK(BM_PredictorRecordVisit)->Arg(1)->Arg(2)->Arg(3);

void BM_PredictorPredict(benchmark::State& state) {
  dtn::core::MarkovPredictor p(64, 1);
  dtn::Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    p.record_visit(static_cast<dtn::trace::LandmarkId>(rng.uniform_index(64)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.predict());
  }
}
BENCHMARK(BM_PredictorPredict);

void BM_PredictorProbabilityOf(benchmark::State& state) {
  dtn::core::MarkovPredictor p(64, 1);
  dtn::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    p.record_visit(static_cast<dtn::trace::LandmarkId>(rng.uniform_index(64)));
  }
  dtn::trace::LandmarkId l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.probability_of(l));
    l = (l + 1) % 64;
  }
}
BENCHMARK(BM_PredictorProbabilityOf);

void BM_MarkovPredict(benchmark::State& state) {
  // The router's per-candidate query pattern at packet-dispatch time:
  // argmax prediction plus a conditional probability toward a cycling
  // next hop, on a trained predictor.  This is the inner loop of
  // carrier selection, so it is the headline predictor number the
  // perf harness tracks (>= 2x over the hash-map store).
  const auto order = static_cast<std::size_t>(state.range(0));
  dtn::core::MarkovPredictor p(64, order);
  dtn::Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    p.record_visit(static_cast<dtn::trace::LandmarkId>(rng.uniform_index(64)));
  }
  dtn::trace::LandmarkId l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.predict());
    benchmark::DoNotOptimize(p.probability_of(l));
    l = (l + 1) % 64;
  }
}
BENCHMARK(BM_MarkovPredict)->Arg(1)->Arg(2);

void BM_RoutingTableMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dtn::core::RoutingTable table(0, n);
  dtn::Rng rng(4);
  for (std::size_t j = 1; j < n; ++j) {
    table.set_link_delay(static_cast<dtn::trace::LandmarkId>(j),
                         rng.uniform(1.0, 100.0));
  }
  dtn::core::DistanceVector dv;
  dv.origin = 1;
  dv.delay.resize(n);
  for (auto& d : dv.delay) d = rng.uniform(1.0, 100.0);
  dv.delay[1] = 0.0;
  for (auto _ : state) {
    ++dv.seq;
    benchmark::DoNotOptimize(table.merge(dv));
    benchmark::DoNotOptimize(table.route(static_cast<dtn::trace::LandmarkId>(
        dv.seq % n)));
  }
}
BENCHMARK(BM_RoutingTableMerge)->Arg(18)->Arg(159);

void BM_RoutingTableRecompute(benchmark::State& state) {
  // The arrival hot path in miniature: a carried distance vector whose
  // entries barely moved merges into a warm table, then one route is
  // queried.  A full-table recompute pays O(n^2) per iteration here;
  // the incremental recompute pays O(changed columns x n).
  const auto n = static_cast<std::size_t>(state.range(0));
  dtn::core::RoutingTable table(0, n);
  dtn::Rng rng(12);
  for (std::size_t j = 1; j < n; ++j) {
    table.set_link_delay(static_cast<dtn::trace::LandmarkId>(j),
                         rng.uniform(1.0, 100.0));
  }
  dtn::core::DistanceVector dv;
  dv.origin = 1;
  dv.delay.resize(n);
  for (auto& d : dv.delay) d = rng.uniform(1.0, 100.0);
  dv.delay[1] = 0.0;
  // Warm the table so the loop below never pays first-touch costs.
  (void)table.merge(dv);
  (void)table.route(2);
  std::size_t k = 2;
  for (auto _ : state) {
    ++dv.seq;
    dv.delay[k] += 0.25;  // one destination's advertisement drifts
    benchmark::DoNotOptimize(table.merge(dv));
    benchmark::DoNotOptimize(
        table.route(static_cast<dtn::trace::LandmarkId>(k)));
    k = 2 + (k - 1) % (n - 2);
  }
}
BENCHMARK(BM_RoutingTableRecompute)->Arg(18)->Arg(159);

void BM_RoutingTableSnapshot(benchmark::State& state) {
  const std::size_t n = 159;
  dtn::core::RoutingTable table(0, n);
  dtn::Rng rng(5);
  for (std::size_t j = 1; j < n; ++j) {
    table.set_link_delay(static_cast<dtn::trace::LandmarkId>(j),
                         rng.uniform(1.0, 100.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.snapshot());
  }
}
BENCHMARK(BM_RoutingTableSnapshot);

void BM_CarrierSelect(benchmark::State& state) {
  // Carrier-selection-dominated end-to-end run: few landmarks, dense
  // presence and a heavy packet workload, so nearly all the time goes
  // into the departure/dispatch scans that score present nodes as
  // carriers (the path the per-(landmark, next-hop) score cache
  // serves).
  dtn::trace::CampusTraceConfig cfg;
  cfg.num_nodes = 96;
  cfg.num_landmarks = 8;
  cfg.num_communities = 2;
  cfg.days = 4.0;
  cfg.seed = 27;
  const auto trace = dtn::trace::generate_campus_trace(cfg);
  for (auto _ : state) {
    dtn::core::DtnFlowRouter router;
    dtn::net::WorkloadConfig wl;
    wl.packets_per_landmark_per_day = 150.0;
    wl.time_unit = 0.5 * dtn::trace::kDay;
    wl.ttl = 2.0 * dtn::trace::kDay;
    wl.node_memory_kb = 50;
    dtn::net::Network net(trace, router, wl);
    net.run();
    benchmark::DoNotOptimize(net.counters().delivered);
  }
}
BENCHMARK(BM_CarrierSelect);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  // Schedule-and-drain 1024 typed events: the core heap operation of
  // the replay loop, allocation-free POD events.
  for (auto _ : state) {
    dtn::sim::EventQueue q;
    dtn::Rng rng(6);
    std::uint64_t sink = 0;
    for (std::uint32_t i = 0; i < 1024; ++i) {
      dtn::sim::Event ev;
      ev.time = rng.uniform(0.0, 1e6);
      ev.kind = dtn::sim::EventKind::kArrival;
      ev.a = i;
      q.schedule(ev);
    }
    while (!q.empty()) sink += q.pop().a;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_EventQueueCallbackScheduleRun(benchmark::State& state) {
  // The closure compatibility path (slab-pooled std::function slots):
  // what every event cost under the retired type-erased engine.
  for (auto _ : state) {
    dtn::sim::Simulator sim;
    dtn::Rng rng(6);
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      sim.at(rng.uniform(0.0, 1e6), [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueCallbackScheduleRun);

void BM_TraceCursorReplay(benchmark::State& state) {
  // Pure merge throughput of the lazy trace cursor (no network on top).
  dtn::trace::CampusTraceConfig cfg;
  cfg.num_nodes = 64;
  cfg.num_landmarks = 16;
  cfg.days = 16.0;
  cfg.seed = 21;
  const auto trace = dtn::trace::generate_campus_trace(cfg);
  dtn::trace::TraceCursor cursor(trace);
  std::uint64_t events = 0;
  for (auto _ : state) {
    cursor.reset();
    double t = 0.0;
    while (!cursor.exhausted()) {
      t = cursor.peek().time;
      cursor.advance();
      ++events;
    }
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_TraceCursorReplay);

void BM_BufferAddRemove(benchmark::State& state) {
  dtn::net::Buffer buffer(4096);
  for (auto _ : state) {
    for (dtn::net::PacketId p = 0; p < 256; ++p) {
      benchmark::DoNotOptimize(buffer.add(p, 1));
    }
    for (dtn::net::PacketId p = 0; p < 256; ++p) {
      buffer.remove(p, 1);
    }
  }
}
BENCHMARK(BM_BufferAddRemove);

void BM_BandwidthCloseUnit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dtn::core::BandwidthEstimator bw(n, 0.5);
  dtn::Rng rng(7);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      const auto a = static_cast<dtn::trace::LandmarkId>(rng.uniform_index(n));
      auto b = static_cast<dtn::trace::LandmarkId>(rng.uniform_index(n - 1));
      if (b >= a) ++b;
      bw.record_transit(a, b);
    }
    bw.close_unit();
  }
}
BENCHMARK(BM_BandwidthCloseUnit)->Arg(18)->Arg(159);

void BM_CampusTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    dtn::trace::CampusTraceConfig cfg;
    cfg.num_nodes = 32;
    cfg.num_landmarks = 16;
    cfg.days = 8.0;
    cfg.seed = 42;
    benchmark::DoNotOptimize(dtn::trace::generate_campus_trace(cfg));
  }
}
BENCHMARK(BM_CampusTraceGeneration);

void BM_EndToEndCampusRun(benchmark::State& state) {
  dtn::trace::CampusTraceConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_landmarks = 10;
  cfg.num_communities = 4;
  cfg.days = 6.0;
  cfg.seed = 9;
  const auto trace = dtn::trace::generate_campus_trace(cfg);
  for (auto _ : state) {
    dtn::core::DtnFlowRouter router;
    dtn::net::WorkloadConfig wl;
    wl.packets_per_landmark_per_day = 10.0;
    wl.time_unit = 0.5 * dtn::trace::kDay;
    wl.ttl = 2.0 * dtn::trace::kDay;
    wl.node_memory_kb = 30;
    dtn::net::Network net(trace, router, wl);
    net.run();
    benchmark::DoNotOptimize(net.counters().delivered);
  }
}
BENCHMARK(BM_EndToEndCampusRun);

void BM_OverloadReplay(benchmark::State& state) {
  // The campus run with stations bounded far below the offered load and
  // the drop-oldest policy on: every station admission runs the
  // eviction scan, so this guards the bounded-store hot path (victim
  // selection + slab swap-erase) rather than the happy path.
  dtn::trace::CampusTraceConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_landmarks = 10;
  cfg.num_communities = 4;
  cfg.days = 6.0;
  cfg.seed = 9;
  const auto trace = dtn::trace::generate_campus_trace(cfg);
  for (auto _ : state) {
    dtn::core::DtnFlowRouter router;
    dtn::net::WorkloadConfig wl;
    wl.packets_per_landmark_per_day = 30.0;
    wl.time_unit = 0.5 * dtn::trace::kDay;
    wl.ttl = 2.0 * dtn::trace::kDay;
    wl.node_memory_kb = 30;
    wl.store.station_memory_kb = 10;
    wl.store.policy = dtn::net::EvictionPolicy::kDropOldest;
    dtn::net::Network net(trace, router, wl);
    net.run();
    benchmark::DoNotOptimize(net.counters().evicted_policy);
  }
}
BENCHMARK(BM_OverloadReplay);

void BM_EndToEndReplayEventsPerSec(benchmark::State& state) {
  // Replay-engine throughput in events/second on a DART-quick-shaped
  // trace: the full Network event path (trace cursor merge, typed
  // dispatch, presence/history bookkeeping, tick sweeps) with a no-op
  // router and no packet workload, so the number isolates the engine
  // rather than any routing algorithm.  This is the headline number
  // the perf-regression harness tracks release to release
  // (items_per_second in BENCH_hotpath.json).
  struct NullRouter final : dtn::net::Router {
    [[nodiscard]] std::string name() const override { return "null"; }
  };
  dtn::trace::CampusTraceConfig cfg;
  cfg.num_nodes = 64;
  cfg.num_landmarks = 16;
  cfg.num_communities = 4;
  cfg.days = 16.0;
  cfg.seed = 33;
  const auto trace = dtn::trace::generate_campus_trace(cfg);
  std::uint64_t events = 0;
  for (auto _ : state) {
    NullRouter router;
    dtn::net::WorkloadConfig wl;
    wl.packets_per_landmark_per_day = 0.0;
    wl.time_unit = 0.5 * dtn::trace::kDay;
    dtn::net::Network net(trace, router, wl);
    net.run();
    events += net.events_executed();
    benchmark::DoNotOptimize(net.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EndToEndReplayEventsPerSec);

dtn::trace::CityTraceConfig bench_city_config() {
  // The city tier scaled to benchmark runtime (the full
  // city_scale_config() is a 100k-node offline workload); the structure
  // — districts, hubs, mixed pedestrian/bus population — is the same.
  dtn::trace::CityTraceConfig cfg;
  cfg.num_pedestrians = 1200;
  cfg.num_buses = 24;
  cfg.num_landmarks = 96;
  cfg.num_districts = 8;
  cfg.days = 1.0;
  cfg.seed = 77;
  return cfg;
}

void BM_CityReplayEventsPerSec(benchmark::State& state) {
  // City-scale twin of BM_EndToEndReplayEventsPerSec: raw engine
  // throughput on the district-structured trace the sharded engine
  // targets, no router logic on top.
  struct NullRouter final : dtn::net::Router {
    [[nodiscard]] std::string name() const override { return "null"; }
  };
  const auto trace = dtn::trace::generate_city_trace(bench_city_config());
  std::uint64_t events = 0;
  for (auto _ : state) {
    NullRouter router;
    dtn::net::WorkloadConfig wl;
    wl.packets_per_landmark_per_day = 0.0;
    wl.time_unit = 0.25 * dtn::trace::kDay;
    dtn::net::Network net(trace, router, wl);
    net.run();
    events += net.events_executed();
    benchmark::DoNotOptimize(net.now());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_CityReplayEventsPerSec);

void BM_ShardedReplay(benchmark::State& state) {
  // Full DTN-FLOW run over the city trace through the sharded engine;
  // Arg = shard count (1 = the serial golden path).  items_per_second
  // counts executed events, so the scaling curve across /1 /2 /4 is the
  // tentpole number the perf gate tracks.  On a multi-core host the
  // shard loops run concurrently; on a 1-core host they serialize and
  // the curve measures pure sharding overhead.
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto trace = dtn::trace::generate_city_trace(bench_city_config());
  dtn::ThreadPool pool(shards);
  std::uint64_t events = 0;
  for (auto _ : state) {
    dtn::core::DtnFlowRouter router;
    dtn::net::WorkloadConfig wl;
    wl.packets_per_landmark_per_day = 2.0;
    wl.time_unit = 0.25 * dtn::trace::kDay;
    wl.ttl = 0.5 * dtn::trace::kDay;
    wl.node_memory_kb = 20;
    dtn::net::Network net(trace, router, wl);
    net.run_sharded(shards, &pool);
    events += net.events_executed();
    benchmark::DoNotOptimize(net.counters().delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_ShardedReplay)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

dtn::net::WorkloadConfig bench_checkpoint_workload() {
  dtn::net::WorkloadConfig wl;
  wl.packets_per_landmark_per_day = 10.0;
  wl.time_unit = 0.5 * dtn::trace::kDay;
  wl.ttl = 2.0 * dtn::trace::kDay;
  wl.node_memory_kb = 30;
  return wl;
}

void BM_CheckpointWrite(benchmark::State& state) {
  // Atomic snapshot publish (temp + rename + retention pruning) of a
  // realistic mid-run image.  A suspended campus run produces the image
  // once; the loop measures CheckpointManager::write alone.  The
  // serialization cost itself is covered by BM_CheckpointRestore, whose
  // verification step re-serializes the whole network.
  namespace fs = std::filesystem;
  dtn::trace::CampusTraceConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_landmarks = 10;
  cfg.num_communities = 4;
  cfg.days = 6.0;
  cfg.seed = 9;
  const auto trace = dtn::trace::generate_campus_trace(cfg);
  const fs::path dir = fs::temp_directory_path() / "dtn_bench_ckpt_write";
  fs::remove_all(dir);
  dtn::persist::CheckpointConfig seed_cc;
  seed_cc.dir = (dir / "seed").string();
  seed_cc.stop_after_events = 2000;
  dtn::persist::CheckpointManager seed(seed_cc);
  {
    dtn::core::DtnFlowRouter router;
    dtn::net::Network net(trace, router, bench_checkpoint_workload());
    net.run(seed);
  }
  const auto bytes = seed.read_latest();
  dtn::persist::CheckpointConfig cc;
  cc.dir = (dir / "out").string();
  dtn::persist::CheckpointManager mgr(cc);
  std::uint64_t n = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.write(++n, bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointWrite);

void BM_CheckpointRestore(benchmark::State& state) {
  // Full resume path (docs/checkpointing.md): read the newest snapshot,
  // deserialize every subsystem, re-serialize for the byte-equality
  // verification, run the invariant audit, then replay the short tail
  // of the trace (~100 events) to completion.
  namespace fs = std::filesystem;
  dtn::trace::CampusTraceConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_landmarks = 10;
  cfg.num_communities = 4;
  cfg.days = 6.0;
  cfg.seed = 9;
  const auto trace = dtn::trace::generate_campus_trace(cfg);
  const auto wl = bench_checkpoint_workload();
  std::uint64_t total = 0;
  {
    dtn::core::DtnFlowRouter router;
    dtn::net::Network net(trace, router, wl);
    net.run();
    total = net.events_executed();
  }
  const fs::path dir = fs::temp_directory_path() / "dtn_bench_ckpt_restore";
  fs::remove_all(dir);
  dtn::persist::CheckpointConfig cc;
  cc.dir = dir.string();
  cc.stop_after_events = total - 100;
  {
    dtn::persist::CheckpointManager mgr(cc);
    dtn::core::DtnFlowRouter router;
    dtn::net::Network net(trace, router, wl);
    net.run(mgr);
  }
  cc.stop_after_events = 0;
  for (auto _ : state) {
    dtn::persist::CheckpointManager mgr(cc);
    dtn::core::DtnFlowRouter router;
    dtn::net::Network net(trace, router, wl);
    net.run(mgr);
    benchmark::DoNotOptimize(net.counters().delivered);
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointRestore);

}  // namespace

BENCHMARK_MAIN();
