// Microbenchmarks of the core data structures (google-benchmark).
//
// Not a paper figure: these guard the hot paths of the simulator so the
// paper-scale (--scale full) runs stay tractable.
#include <benchmark/benchmark.h>

#include "core/bandwidth.hpp"
#include "core/markov_predictor.hpp"
#include "core/routing_table.hpp"
#include "net/buffer.hpp"
#include "sim/event_queue.hpp"
#include "core/dtn_flow_router.hpp"
#include "net/network.hpp"
#include "trace/campus_generator.hpp"
#include "util/rng.hpp"

namespace {

void BM_PredictorRecordVisit(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  dtn::core::MarkovPredictor p(64, order);
  dtn::Rng rng(1);
  std::vector<dtn::trace::LandmarkId> seq;
  for (int i = 0; i < 4096; ++i) {
    seq.push_back(static_cast<dtn::trace::LandmarkId>(rng.uniform_index(64)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    p.record_visit(seq[i++ & 4095]);
  }
}
BENCHMARK(BM_PredictorRecordVisit)->Arg(1)->Arg(2)->Arg(3);

void BM_PredictorPredict(benchmark::State& state) {
  dtn::core::MarkovPredictor p(64, 1);
  dtn::Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    p.record_visit(static_cast<dtn::trace::LandmarkId>(rng.uniform_index(64)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.predict());
  }
}
BENCHMARK(BM_PredictorPredict);

void BM_PredictorProbabilityOf(benchmark::State& state) {
  dtn::core::MarkovPredictor p(64, 1);
  dtn::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    p.record_visit(static_cast<dtn::trace::LandmarkId>(rng.uniform_index(64)));
  }
  dtn::trace::LandmarkId l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.probability_of(l));
    l = (l + 1) % 64;
  }
}
BENCHMARK(BM_PredictorProbabilityOf);

void BM_RoutingTableMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dtn::core::RoutingTable table(0, n);
  dtn::Rng rng(4);
  for (std::size_t j = 1; j < n; ++j) {
    table.set_link_delay(static_cast<dtn::trace::LandmarkId>(j),
                         rng.uniform(1.0, 100.0));
  }
  dtn::core::DistanceVector dv;
  dv.origin = 1;
  dv.delay.resize(n);
  for (auto& d : dv.delay) d = rng.uniform(1.0, 100.0);
  dv.delay[1] = 0.0;
  for (auto _ : state) {
    ++dv.seq;
    benchmark::DoNotOptimize(table.merge(dv));
    benchmark::DoNotOptimize(table.route(static_cast<dtn::trace::LandmarkId>(
        dv.seq % n)));
  }
}
BENCHMARK(BM_RoutingTableMerge)->Arg(18)->Arg(159);

void BM_RoutingTableSnapshot(benchmark::State& state) {
  const std::size_t n = 159;
  dtn::core::RoutingTable table(0, n);
  dtn::Rng rng(5);
  for (std::size_t j = 1; j < n; ++j) {
    table.set_link_delay(static_cast<dtn::trace::LandmarkId>(j),
                         rng.uniform(1.0, 100.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.snapshot());
  }
}
BENCHMARK(BM_RoutingTableSnapshot);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    dtn::sim::EventQueue q;
    dtn::Rng rng(6);
    int sink = 0;
    for (int i = 0; i < 1024; ++i) {
      q.schedule(rng.uniform(0.0, 1e6), [&sink] { ++sink; });
    }
    while (!q.empty()) q.run_next();
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_BufferAddRemove(benchmark::State& state) {
  dtn::net::Buffer buffer(4096);
  for (auto _ : state) {
    for (dtn::net::PacketId p = 0; p < 256; ++p) {
      benchmark::DoNotOptimize(buffer.add(p, 1));
    }
    for (dtn::net::PacketId p = 0; p < 256; ++p) {
      buffer.remove(p, 1);
    }
  }
}
BENCHMARK(BM_BufferAddRemove);

void BM_BandwidthCloseUnit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  dtn::core::BandwidthEstimator bw(n, 0.5);
  dtn::Rng rng(7);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      const auto a = static_cast<dtn::trace::LandmarkId>(rng.uniform_index(n));
      auto b = static_cast<dtn::trace::LandmarkId>(rng.uniform_index(n - 1));
      if (b >= a) ++b;
      bw.record_transit(a, b);
    }
    bw.close_unit();
  }
}
BENCHMARK(BM_BandwidthCloseUnit)->Arg(18)->Arg(159);

void BM_CampusTraceGeneration(benchmark::State& state) {
  for (auto _ : state) {
    dtn::trace::CampusTraceConfig cfg;
    cfg.num_nodes = 32;
    cfg.num_landmarks = 16;
    cfg.days = 8.0;
    cfg.seed = 42;
    benchmark::DoNotOptimize(dtn::trace::generate_campus_trace(cfg));
  }
}
BENCHMARK(BM_CampusTraceGeneration);

void BM_EndToEndCampusRun(benchmark::State& state) {
  dtn::trace::CampusTraceConfig cfg;
  cfg.num_nodes = 24;
  cfg.num_landmarks = 10;
  cfg.num_communities = 4;
  cfg.days = 6.0;
  cfg.seed = 9;
  const auto trace = dtn::trace::generate_campus_trace(cfg);
  for (auto _ : state) {
    dtn::core::DtnFlowRouter router;
    dtn::net::WorkloadConfig wl;
    wl.packets_per_landmark_per_day = 10.0;
    wl.time_unit = 0.5 * dtn::trace::kDay;
    wl.ttl = 2.0 * dtn::trace::kDay;
    wl.node_memory_kb = 30;
    dtn::net::Network net(trace, router, wl);
    net.run();
    benchmark::DoNotOptimize(net.counters().delivered);
  }
}
BENCHMARK(BM_EndToEndCampusRun);

}  // namespace

BENCHMARK_MAIN();
