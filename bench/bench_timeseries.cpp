// Congestion dynamics over time (not a paper figure): per-time-unit
// backlog and delivery progression of DTN-FLOW vs PROPHET on the DART
// scenario.  Makes the architectural difference visible: DTN-FLOW
// offloads to landmark stations (station backlog, bounded node
// buffers), the node-only baseline saturates its carriers.
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/observer.hpp"
#include "routing/factory.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  const auto scenario =
      dtn::bench::make_dart_scenario(opts.full_scale(), opts.get_seed(1));

  for (const std::string name : {"DTN-FLOW", "PROPHET"}) {
    dtn::metrics::ObservedRouter router(dtn::routing::make_router(name));
    dtn::net::Network net(scenario.trace, router, scenario.workload);
    net.run();
    dtn::TablePrinter table({"unit", "delivered", "dropped", "station pkts",
                             "max station", "origin pkts", "on nodes"});
    // Print at most 16 evenly spaced samples.
    const auto& samples = router.samples();
    const std::size_t step =
        std::max<std::size_t>(1, samples.size() / 16);
    for (std::size_t i = 0; i < samples.size(); i += step) {
      const auto& s = samples[i];
      table.add_row("u" + std::to_string(s.unit),
                    {static_cast<double>(s.delivered),
                     static_cast<double>(s.dropped_ttl),
                     static_cast<double>(s.station_backlog_total),
                     static_cast<double>(s.station_backlog_max),
                     static_cast<double>(s.origin_backlog_total),
                     static_cast<double>(s.node_buffered_total)},
                    6);
    }
    table.print("congestion dynamics: " + name + " (DART)");
    table.write_csv(dtn::bench::csv_path(opts, "timeseries_" + name));
  }
  std::printf("\n(shape check: DTN-FLOW parks queued traffic at stations "
              "and keeps node buffers circulating; the node-only baseline "
              "fills carrier buffers and strands the origin queues)\n");
  return 0;
}
