// Fig. 3 — bandwidth distribution of transit links.
//
// Prints the bandwidth of every directed transit link in decreasing
// order (binned for readability), the share of total bandwidth carried
// by the top 20% of links (observation O2), and the symmetry of
// matching links as the correlation between B(i->j) and B(j->i)
// (observation O3).
#include <cstdio>

#include "bench_common.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    const double unit = scenario.workload.time_unit;
    const auto links = dtn::trace::link_bandwidths(scenario.trace, unit);
    dtn::TablePrinter table({"link rank", "from", "to", "bandwidth/unit"});
    // Print the head of the distribution plus evenly spaced tail samples.
    for (std::size_t i = 0; i < links.size();
         i += (i < 10 ? 1 : links.size() / 20 + 1)) {
      table.add_row("#" + std::to_string(i + 1),
                    {static_cast<double>(links[i].from),
                     static_cast<double>(links[i].to), links[i].bandwidth});
    }
    table.print("Fig. 3 (" + scenario.name + "): transit-link bandwidths");
    table.write_csv(
        dtn::bench::csv_path(opts, "fig3_bandwidth_" + scenario.name));

    double total = 0.0, top = 0.0;
    for (std::size_t i = 0; i < links.size(); ++i) {
      total += links[i].bandwidth;
      if (i < links.size() / 5) top += links[i].bandwidth;
    }
    const double symmetry = dtn::trace::matching_link_symmetry(scenario.trace);
    std::printf("  %s: %zu links with traffic; top-20%% of links carry "
                "%.1f%% of bandwidth (O2); matching-link symmetry r = %.3f "
                "(O3)\n",
                scenario.name.c_str(), links.size(),
                100.0 * top / std::max(total, 1e-12), symmetry);
  }
  return 0;
}
