// Fig. 4 — per-time-unit bandwidth of the three highest-bandwidth
// transit links (observation O4: the measured bandwidth of a unit
// reflects the overall bandwidth; DART shows holiday dips, DNET is
// stable).  Also sweeps the EWMA weight rho of eq. (4) to show the
// estimator tracking the series (the DESIGN.md rho ablation).
#include <cstdio>

#include "bench_common.hpp"
#include "core/bandwidth.hpp"
#include "trace/trace_stats.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    const double unit = scenario.workload.time_unit;
    const auto links = dtn::trace::link_bandwidths(scenario.trace, unit);
    dtn::TablePrinter table({"unit", "link1", "link2", "link3"});
    std::vector<std::vector<double>> series;
    for (std::size_t k = 0; k < 3 && k < links.size(); ++k) {
      series.push_back(dtn::trace::link_bandwidth_series(
          scenario.trace, links[k].from, links[k].to, unit));
    }
    if (series.empty()) continue;
    for (std::size_t u = 0; u < series[0].size(); ++u) {
      std::vector<double> row;
      for (const auto& s : series) row.push_back(u < s.size() ? s[u] : 0.0);
      table.add_row("u" + std::to_string(u + 1), row, 3);
    }
    table.print("Fig. 4 (" + scenario.name +
                "): bandwidth of top-3 links per time unit");
    table.write_csv(
        dtn::bench::csv_path(opts, "fig4_stability_" + scenario.name));

    // O4 check: coefficient of variation of each top link.
    for (std::size_t k = 0; k < series.size(); ++k) {
      dtn::RunningStats rs;
      for (const double v : series[k]) rs.add(v);
      std::printf("  %s link%zu (L%u->L%u): mean %.2f/unit, cv %.2f\n",
                  scenario.name.c_str(), k + 1, links[k].from, links[k].to,
                  rs.mean(), rs.mean() > 0 ? rs.stddev() / rs.mean() : 0.0);
    }

    // rho ablation: mean absolute EWMA tracking error of the top link.
    dtn::TablePrinter rho_table({"rho", "mean |ewma - next unit count|"});
    for (const double rho : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      dtn::core::BandwidthEstimator bw(scenario.trace.num_landmarks(), rho);
      double err = 0.0;
      std::size_t count = 0;
      for (const double v : series[0]) {
        const double predicted = bw.bandwidth(links[0].from, links[0].to);
        err += std::abs(predicted - v);
        ++count;
        for (int i = 0; i < static_cast<int>(v); ++i) {
          bw.record_transit(links[0].from, links[0].to);
        }
        bw.close_unit();
      }
      rho_table.add_row(dtn::format_double(rho, 2),
                        {count > 0 ? err / static_cast<double>(count) : 0.0});
    }
    rho_table.print("eq. (4) rho ablation (" + scenario.name +
                    ", top link tracking error)");
  }
  return 0;
}
