// Single-copy DTN-FLOW against the classic multi-copy references — an
// extra-paper calibration: Epidemic flooding is the delivery ceiling at
// maximal cost, binary Spray-and-Wait the bounded compromise, Direct
// the floor.  The interesting number is how close single-copy DTN-FLOW
// gets to the ceiling and at what fraction of the replication cost.
#include <cstdio>

#include "bench_common.hpp"
#include "routing/factory.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    // Flooding only bounds delivery when buffers are not the binding
    // constraint; compare in a lighter-load regime (multi-copy schemes
    // are known to collapse under the congestion of Figs. 11-14).
    auto workload = scenario.workload;
    workload.node_memory_kb *= 20;
    workload.packets_per_landmark_per_day /= 3.0;
    dtn::TablePrinter table({"router", "success rate", "avg delay (days)",
                             "forwards", "replications"});
    for (const std::string name :
         {"DTN-FLOW", "Epidemic", "SprayWait", "Direct"}) {
      const auto router = dtn::routing::make_router(name);
      dtn::net::Network net(scenario.trace, *router, workload);
      net.run();
      const auto r = dtn::metrics::summarize(net, router->name());
      table.add_row(name,
                    {r.success_rate, dtn::bench::to_days(r.avg_delay),
                     r.forwarding_cost,
                     static_cast<double>(net.counters().replications)},
                    4);
    }
    table.print("multi-copy calibration (" + scenario.name + ")");
    table.write_csv(
        dtn::bench::csv_path(opts, "multicopy_" + scenario.name));
  }
  std::printf("\n(not a paper experiment: Epidemic/SprayWait bound the "
              "achievable delivery; DTN-FLOW is single-copy)\n");
  return 0;
}
