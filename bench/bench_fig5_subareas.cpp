// Fig. 5 — subarea division of the campus deployment map (§IV-A.2).
//
// Renders the nearest-landmark (Voronoi) partition of the Fig. 15(a)
// deployment area as an ASCII map: each cell shows which landmark's
// subarea it belongs to.  Checks the §IV-A.2 rules: one landmark per
// subarea, even split between neighbours, no overlap.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/landmark_select.hpp"
#include "trace/geo_generator.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  (void)opts;
  const auto landmarks = dtn::trace::fig15_positions();

  // Grid over the bounding box (with margin).
  const double x0 = -350.0, x1 = 430.0, y0 = -350.0, y1 = 350.0;
  const int cols = 64, rows = 24;
  std::vector<dtn::trace::Point> grid;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      grid.push_back({x0 + (x1 - x0) * (c + 0.5) / cols,
                      y1 - (y1 - y0) * (r + 0.5) / rows});
    }
  }
  const auto assignment = dtn::core::assign_subareas(grid, landmarks);

  std::printf("== Fig. 5: subarea division of the deployment area ==\n");
  std::vector<int> cell_count(landmarks.size(), 0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const auto l = assignment[static_cast<std::size_t>(r) * cols + c];
      ++cell_count[l];
      // Mark the landmark's own cell with a star.
      bool is_site = false;
      const auto& p = grid[static_cast<std::size_t>(r) * cols + c];
      const double cell_w = (x1 - x0) / cols, cell_h = (y1 - y0) / rows;
      for (const auto& lm : landmarks) {
        if (std::abs(lm.x - p.x) < cell_w / 2 &&
            std::abs(lm.y - p.y) < cell_h / 2) {
          is_site = true;
        }
      }
      std::printf("%c", is_site ? '*' : static_cast<char>('1' + l));
    }
    std::printf("\n");
  }
  std::printf("\n(cells labeled by subarea L1..L8; '*' = the landmark "
              "itself)\n");
  for (std::size_t l = 0; l < landmarks.size(); ++l) {
    std::printf("L%zu subarea: %d cells (%.0f%% of the field)\n", l + 1,
                cell_count[l],
                100.0 * cell_count[l] / static_cast<double>(rows * cols));
  }
  std::printf("(shape check: every cell belongs to exactly one subarea; "
              "the area between two landmarks splits evenly)\n");
  return 0;
}
