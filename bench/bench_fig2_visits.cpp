// Fig. 2 — visiting distribution of the top-5 most visited landmarks.
//
// For each of the five most visited landmarks of each trace, prints how
// concentrated its visits are across nodes: the visit count of the
// busiest node, the number of "frequent" visitors (>= half the busiest),
// and the share of visits contributed by the top 10% of nodes.  The
// paper's observation O1 is that each landmark has only a small portion
// of frequent visitors.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "trace/trace_stats.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    const auto counts = dtn::trace::visit_count_matrix(scenario.trace);
    const auto popular = dtn::trace::landmarks_by_popularity(scenario.trace);
    dtn::TablePrinter table({"landmark rank", "total visits", "max/node",
                             "frequent visitors", "frequent share (%)",
                             "top-10% node share (%)"});
    const std::size_t nodes = scenario.trace.num_nodes();
    for (std::size_t k = 0; k < 5 && k < popular.size(); ++k) {
      const auto l = popular[k];
      std::vector<double> per_node(nodes, 0.0);
      double total = 0.0;
      for (std::size_t n = 0; n < nodes; ++n) {
        per_node[n] = counts.at(static_cast<dtn::trace::NodeId>(n), l);
        total += per_node[n];
      }
      std::sort(per_node.rbegin(), per_node.rend());
      const double max_count = per_node.front();
      std::size_t frequent = 0;
      for (const double c : per_node) {
        if (c * 2.0 >= max_count && c > 0.0) ++frequent;
      }
      double top10 = 0.0;
      for (std::size_t i = 0; i < std::max<std::size_t>(1, nodes / 10); ++i) {
        top10 += per_node[i];
      }
      table.add_row("#" + std::to_string(k + 1) + " (L" + std::to_string(l) + ")",
                    {total, max_count, static_cast<double>(frequent),
                     100.0 * static_cast<double>(frequent) /
                         static_cast<double>(nodes),
                     100.0 * top10 / std::max(total, 1.0)});
    }
    table.print("Fig. 2 (" + scenario.name +
                "): visiting distribution of top-5 landmarks");
    table.write_csv(
        dtn::bench::csv_path(opts, "fig2_visits_" + scenario.name));
  }
  std::printf("\n(shape check: only a small portion of nodes visit each "
              "landmark frequently -- observation O1)\n");
  return 0;
}
