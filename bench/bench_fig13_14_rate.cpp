// Figs. 13 & 14 — the same four metrics as the packet generation rate
// varies (paper: 100..1000 packets per landmark per day; quick scale
// uses a proportionally scaled axis).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  const auto factories = dtn::bench::standard_factories();

  for (const auto& scenario : dtn::bench::make_scenarios(opts)) {
    dtn::metrics::SweepConfig sweep;
    sweep.values = scenario.rate_sweep;
    sweep.apply = [](dtn::net::WorkloadConfig& cfg, double v) {
      cfg.packets_per_landmark_per_day = v;
    };
    sweep.replicates =
        static_cast<std::size_t>(opts.get_int("replicates", 1));
    sweep.threads = static_cast<std::size_t>(opts.get_int("threads", 0));
    const auto cells = dtn::metrics::run_sweep(scenario.trace,
                                               scenario.workload, factories,
                                               sweep);

    struct Metric {
      const char* title;
      double (*pick)(const dtn::metrics::CellResult&);
      const char* csv;
    };
    const Metric metrics[] = {
        {"(a) success rate",
         [](const dtn::metrics::CellResult& c) { return c.success_rate.mean; },
         "a_success"},
        {"(b) average delay (days)",
         [](const dtn::metrics::CellResult& c) {
           return dtn::bench::to_days(c.avg_delay.mean);
         },
         "b_delay"},
        {"(c) forwarding cost (x1000 ops)",
         [](const dtn::metrics::CellResult& c) {
           return c.forwarding_cost.mean / 1000.0;
         },
         "c_fwdcost"},
        {"(d) total cost (x1000 ops)",
         [](const dtn::metrics::CellResult& c) {
           return c.total_cost.mean / 1000.0;
         },
         "d_totalcost"},
    };

    const std::string fig = scenario.name == "DART" ? "Fig. 13" : "Fig. 14";
    for (const auto& metric : metrics) {
      std::vector<std::string> headers = {"pkts/landmark/day"};
      for (const auto& [name, factory] : factories) headers.push_back(name);
      dtn::TablePrinter table(headers);
      for (std::size_t v = 0; v < sweep.values.size(); ++v) {
        std::vector<double> row;
        for (std::size_t f = 0; f < factories.size(); ++f) {
          row.push_back(metric.pick(cells[f * sweep.values.size() + v]));
        }
        table.add_row(dtn::format_double(sweep.values[v], 6), row, 4);
      }
      table.print(fig + " (" + scenario.name + ") " + metric.title);
      table.write_csv(dtn::bench::csv_path(
          opts, (scenario.name == "DART" ? "fig13" : "fig14") +
                    std::string(metric.csv)));
    }
  }
  std::printf("\n(paper shapes: success decreases with packet rate for all "
              "methods, DTN-FLOW stays highest; delays increase with rate; "
              "forwarding costs increase with rate)\n");
  return 0;
}
