// Table VI — dead-end prevention (§IV-E.1).
//
// Dead ends are injected at the trace level: randomly chosen visits are
// stretched into long "parked" stays (a bus heading to the garage, a
// student leaving their device in an office), swallowing any following
// movement.  The bench compares the original DTN-FLOW (ORG) against
// dead-end prevention with theta = 2..5 on success rate and average
// delay; the paper finds theta = 2 best.
#include <cstdio>

#include "bench_common.hpp"
#include "core/dtn_flow_router.hpp"
#include "util/rng.hpp"

namespace {

// Stretch `events` random visits into parked stays of `park_seconds`,
// dropping the visits they swallow.
dtn::trace::Trace inject_dead_ends(const dtn::trace::Trace& trace,
                                   std::size_t events, double park_seconds,
                                   std::uint64_t seed) {
  dtn::Rng rng(seed);
  // Choose (node, visit ordinal) pairs; restrict to the workload phase
  // (after warmup) so the parked packets actually exist.
  std::vector<std::pair<dtn::trace::NodeId, std::size_t>> chosen;
  for (std::size_t e = 0; e < events; ++e) {
    const auto node = static_cast<dtn::trace::NodeId>(
        rng.uniform_index(trace.num_nodes()));
    const auto visits = trace.visits(node);
    if (visits.size() < 10) continue;
    const std::size_t idx =
        visits.size() / 2 + rng.uniform_index(visits.size() / 2);
    chosen.emplace_back(node, idx);
  }
  dtn::trace::Trace out(trace.num_nodes(), trace.num_landmarks());
  for (dtn::trace::NodeId n = 0; n < trace.num_nodes(); ++n) {
    const auto visits = trace.visits(n);
    double skip_until = -1.0;
    for (std::size_t i = 0; i < visits.size(); ++i) {
      dtn::trace::Visit v = visits[i];
      if (v.start < skip_until) continue;  // swallowed by a parked stay
      for (const auto& [cn, ci] : chosen) {
        if (cn == n && ci == i) {
          v.end = v.start + park_seconds;
          skip_until = v.end;
        }
      }
      out.add_visit(v);
    }
  }
  out.finalize();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const dtn::CliOptions opts(argc, argv);
  for (auto& scenario : dtn::bench::make_scenarios(opts)) {
    // Enough parked stays to matter: ~2 per node on average.
    const std::size_t events = scenario.trace.num_nodes() * 2;
    const auto trace = inject_dead_ends(scenario.trace, events,
                                        1.2 * scenario.workload.ttl,
                                        opts.get_seed(3));
    dtn::TablePrinter table(
        {"variant", "success rate", "avg delay (days)", "dead ends detected"});
    auto run_variant = [&](const std::string& label, bool prevention,
                           double theta) {
      dtn::core::DtnFlowConfig rc;
      rc.dead_end_prevention = prevention;
      rc.dead_end_theta = theta;
      dtn::core::DtnFlowRouter router(rc);
      const auto r =
          dtn::metrics::run_experiment(trace, router, scenario.workload);
      table.add_row(label,
                    {r.success_rate, dtn::bench::to_days(r.avg_delay),
                     static_cast<double>(
                         router.diagnostics().dead_ends_detected)},
                    4);
    };
    run_variant("ORG", false, 2.0);
    for (const double theta : {2.0, 3.0, 4.0, 5.0}) {
      run_variant("theta=" + dtn::format_double(theta, 2), true, theta);
    }
    table.print("Table VI (" + scenario.name + "): dead-end prevention");
    table.write_csv(
        dtn::bench::csv_path(opts, "table6_deadend_" + scenario.name));
  }
  std::printf("\n(paper shape: prevention raises success rate and lowers "
              "delay; theta = 2 is best -- larger theta detects late)\n");
  return 0;
}
