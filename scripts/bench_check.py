#!/usr/bin/env python3
"""Perf-regression check for the simulator hot path.

Runs the hot-path microbenchmarks (event queue, trace cursor, buffer,
predictor, routing table, carrier selection, end-to-end replay) with
google-benchmark's JSON output, writes the
result to BENCH_hotpath.json, and compares per-benchmark real_time
against the checked-in baseline.

Perf regressions beyond the tolerance band (--threshold, default +25%
real_time) FAIL the check with a non-zero exit; --warn-only restores
the old advisory behaviour for noisy or borrowed machines.  Also hard
failures: the benchmark binary failing to run, malformed JSON, a
baseline entry missing from the current run (deleting a benchmark must
be accompanied by a baseline refresh), and a missing or malformed
baseline BENCH_hotpath.json — a harness that silently skips its
comparison is indistinguishable from one that passed.  Use
--allow-missing-baseline when bootstrapping a baseline for a new
machine.

--update-baseline re-records bench/baseline/BENCH_hotpath.json from the
current run instead of comparing against it, stamping the file with a
host-context block (hostname, platform, CPU count, optional --note) so
a future reader can tell which machine the numbers came from.

--improvement-note PATH banks improvements the same way regressions are
policed: a comparison run flags (never fails) benchmarks faster than
the tolerance band and appends them to PATH, and a later
--update-baseline run with the same PATH folds the banked lines into
the refreshed baseline's host_context, so the provenance of a big win
(e.g. a SIMD pass) survives in the checked-in numbers instead of
silently shifting the floor.

Usage (normally via the `bench-check` CMake target):
    scripts/bench_check.py --bench build/bench/bench_micro
    scripts/bench_check.py --bench build/bench/bench_micro \
        --update-baseline --note "new checkpoint benchmarks"
"""
from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
from pathlib import Path

# The benchmarks the harness tracks release to release.
DEFAULT_FILTER = (
    "BM_EventQueue|BM_TraceCursor|BM_BufferAddRemove|BM_EndToEnd"
    "|BM_MarkovPredict|BM_CarrierSelect|BM_RoutingTableRecompute"
    "|BM_ShardedReplay|BM_CityReplay|BM_Checkpoint|BM_OverloadReplay"
)


def run_benchmarks(bench: Path, bench_filter: str) -> dict:
    cmd = [
        str(bench),
        f"--benchmark_filter={bench_filter}",
        "--benchmark_format=json",
    ]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True)
    except FileNotFoundError:
        raise SystemExit(f"benchmark binary not found: {bench}")
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark binary failed (exit {proc.returncode})")
    try:
        report = json.loads(proc.stdout)
    except ValueError as e:
        raise SystemExit(f"benchmark binary emitted malformed JSON: {e}")
    validate_report(report, source=str(bench))
    return report


def load_baseline(path: Path) -> dict:
    try:
        text = path.read_text()
    except OSError as e:
        raise SystemExit(f"cannot read baseline {path}: {e}")
    try:
        report = json.loads(text)
    except ValueError as e:
        raise SystemExit(f"malformed baseline JSON in {path}: {e}")
    validate_report(report, source=str(path))
    return report


def validate_report(report: object, source: str) -> None:
    """Exit non-zero unless `report` looks like google-benchmark JSON."""
    if not isinstance(report, dict):
        raise SystemExit(f"{source}: top-level JSON value is not an object")
    benchmarks = report.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise SystemExit(f"{source}: no 'benchmarks' array (empty run?)")
    for i, b in enumerate(benchmarks):
        if not isinstance(b, dict) or "name" not in b:
            raise SystemExit(f"{source}: benchmarks[{i}] has no 'name'")
        if b.get("run_type") == "aggregate":
            continue
        if not isinstance(b.get("real_time"), (int, float)):
            raise SystemExit(
                f"{source}: benchmarks[{i}] ({b['name']}) has no numeric "
                "'real_time'")


def by_name(report: dict) -> dict[str, dict]:
    out = {}
    for b in report["benchmarks"]:
        # Skip aggregate rows (mean/median/stddev) if repetitions are on.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", type=Path, required=True,
                    help="path to the bench_micro binary")
    ap.add_argument("--baseline", type=Path,
                    default=Path("bench/baseline/BENCH_hotpath.json"))
    ap.add_argument("--out", type=Path, default=Path("BENCH_hotpath.json"))
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative real_time regression tolerance band "
                         "(default 0.25 = +25%%); beyond it the check "
                         "fails unless --warn-only")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but exit 0 (advisory mode "
                         "for noisy machines)")
    ap.add_argument("--filter", default=DEFAULT_FILTER)
    ap.add_argument("--allow-missing-baseline", action="store_true",
                    help="exit 0 when the baseline file does not exist "
                         "(bootstrapping a new baseline)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="re-record the baseline from this run instead of "
                         "comparing against it")
    ap.add_argument("--note", default="",
                    help="justification recorded in the refreshed baseline "
                         "(only meaningful with --update-baseline)")
    ap.add_argument("--improvement-note", type=Path, default=None,
                    help="bank improvements beyond the threshold: a "
                         "comparison run appends flagged speedups to this "
                         "file, and --update-baseline records the file's "
                         "lines in the new baseline's host_context")
    args = ap.parse_args()

    report = run_benchmarks(args.bench, args.filter)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    if args.update_baseline:
        report["host_context"] = {
            "hostname": platform.node(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "recorded_by": "scripts/bench_check.py --update-baseline",
            "note": args.note or "baseline refresh",
        }
        if args.improvement_note is not None and args.improvement_note.exists():
            banked = [line for line in
                      args.improvement_note.read_text().splitlines() if line]
            if banked:
                report["host_context"]["improvements"] = banked
                print(f"folded {len(banked)} banked improvement line(s) "
                      f"from {args.improvement_note} into host_context")
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(report, indent=2) + "\n")
        print(f"baseline refreshed: {args.baseline}")
        return 0

    if not args.baseline.exists():
        if args.allow_missing_baseline:
            print(f"no baseline at {args.baseline}; skipping comparison")
            return 0
        sys.stderr.write(
            f"ERROR: baseline {args.baseline} does not exist; pass "
            "--allow-missing-baseline when bootstrapping one\n")
        return 2
    baseline = by_name(load_baseline(args.baseline))
    current = by_name(report)

    regressions = []
    improvements = []
    missing = []
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print(f"  {name}: missing from current run")
            missing.append(name)
            continue
        base_t, cur_t = base["real_time"], cur["real_time"]
        ratio = cur_t / base_t if base_t > 0 else float("inf")
        unit = base.get("time_unit", "ns")
        marker = ""
        if ratio > 1.0 + args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.threshold:
            marker = "  (improved; consider refreshing the baseline)"
            improvements.append(
                f"{name}: {ratio:.2f}x baseline "
                f"({base_t:.0f} -> {cur_t:.0f} {unit})")
        print(f"  {name}: {base_t:.0f} -> {cur_t:.0f} {unit} "
              f"({ratio:.2f}x baseline){marker}")

    if improvements and args.improvement_note is not None:
        with args.improvement_note.open("a") as f:
            for line in improvements:
                f.write(line + "\n")
        print(f"banked {len(improvements)} improvement(s) to "
              f"{args.improvement_note}")

    if missing:
        sys.stderr.write(
            "\nERROR: baseline benchmark(s) absent from the current run: "
            + ", ".join(missing)
            + "\nRemoving or renaming a tracked benchmark requires a "
            "baseline refresh.\n")
        return 1
    if regressions:
        severity = "WARNING" if args.warn_only else "FAILURE"
        sys.stderr.write(
            "\n" + "=" * 70 + "\n"
            f"{severity}: hot-path benchmark regression(s) vs "
            f"{args.baseline}:\n")
        for name, ratio in regressions:
            sys.stderr.write(f"  {name}: {ratio:.2f}x baseline real_time "
                             f"(tolerance {1.0 + args.threshold:.2f}x)\n")
        sys.stderr.write(
            "Re-run on an idle machine; if the slowdown is real, fix it or "
            "update\nthe baseline with scripts/bench_check.py --bench ... "
            "and copy the\noutput over bench/baseline/BENCH_hotpath.json "
            "with justification.\n" + "=" * 70 + "\n")
        return 0 if args.warn_only else 1
    print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
