#!/usr/bin/env python3
"""Repo-specific determinism lint for the DTN-FLOW simulator.

The replay engine guarantees bit-identical results for a given (trace,
router, seed) triple — test_determinism.cpp pins golden digests to that
contract.  Two bug classes silently break it without any compiler
diagnostic, so this lint polices them statically:

1. **Unordered-container iteration in replay-critical code**
   (src/core, src/sim, src/routing, src/net).  std::unordered_map/set
   iteration order depends on libstdc++ version, hash seeding and
   insertion history; iterating one inside the replay path reorders
   router decisions and flips the golden digests.  Lookups
   (find/count/operator[]) are fine — only iteration is flagged
   (range-for over the container, or .begin()/.cbegin()/.rbegin()).

2. **Ambient nondeterminism anywhere in src/** outside src/util/rng.*:
   rand()/srand(), time(), std::random_device, the std::chrono clocks,
   gettimeofday, getpid.  All randomness must flow through dtn::Rng so
   a run is a pure function of its seed; all timestamps must be
   simulation time.

3. **Test-only convenience overloads called from src/** — currently
   the allocating MarkovPredictor::next_distribution() spelling, whose
   per-call vector would put an allocation inside the prediction hot
   path; replay code must use the scratch-buffer overload.

Suppressing a finding: append `// det-lint: ok(<reason>)` to the line.
A suppression without a reason is itself a finding.

Exit status: 0 clean, 1 findings, 2 bad invocation.

Usage:
    scripts/determinism_lint.py [--root REPO_ROOT] [-v]
"""
from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories whose code runs inside the deterministic replay loop:
# iteration-order hazards are findings here.  src/util is included for
# the SIMD wrapper and the arena (their lane/accounting semantics are
# part of the bit-identical contract, docs/simd-hot-path.md).
REPLAY_CRITICAL_DIRS = ("src/core", "src/sim", "src/routing", "src/net",
                        "src/persist", "src/util")
# Ambient-nondeterminism calls are findings everywhere under src/ except
# the one sanctioned wrapper.
SOURCE_DIR = "src"
RNG_ALLOWLIST = ("src/util/rng.hpp", "src/util/rng.cpp")
# Files whose replay-critical coverage is load-bearing: the golden
# determinism tests assume the lint sees these (the fault injector owns
# RNG streams whose draw order is part of the bit-identical contract).
# Moving or renaming one must keep it inside a replay-critical
# directory and update this list — a silent drop is a lint error.
REQUIRED_COVERED_FILES = (
    "src/sim/fault_injector.hpp",
    "src/sim/fault_injector.cpp",
    # The shard coordinator's barrier plan fixes the global event order
    # of sharded runs; any nondeterminism here breaks the
    # sharded-vs-serial bit-identity contract (docs/parallel-engine.md).
    "src/sim/shard_coordinator.hpp",
    "src/sim/shard_coordinator.cpp",
    # The checkpoint layer serializes RNG streams and the event queue;
    # iteration-order or wall-clock nondeterminism here breaks the
    # bit-identical resume contract (docs/checkpointing.md).
    "src/persist/serializer.hpp",
    "src/persist/serializer.cpp",
    "src/persist/checkpoint.hpp",
    "src/persist/checkpoint.cpp",
    "src/persist/flat_io.hpp",
    # The portable SIMD wrapper defines the per-lane operations whose
    # IEEE-exactness the vectorized hot paths rely on; the arena backs
    # the router's per-event scratch allocations.  Both sit on the
    # bit-identical replay path (docs/simd-hot-path.md).
    "src/util/simd.hpp",
    "src/util/arena.hpp",
    # The bounded bundle store picks eviction victims and orders its
    # dedup/spill structures; any iteration-order nondeterminism here
    # changes which bundles survive overload (docs/bounded-store.md).
    "src/net/bundle_store.hpp",
    "src/net/bundle_store.cpp",
)

SUPPRESS_RE = re.compile(r"//\s*det-lint:\s*ok\(([^)]*)\)")
SUPPRESS_BARE_RE = re.compile(r"//\s*det-lint:\s*ok(?!\()")

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")

# Type-alias declarations, tracked so members declared through an alias
# chain (`using NameTable = NameMap; NameTable table_;`) are still
# recognized as unordered containers.
ALIAS_USING_RE = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
ALIAS_TYPEDEF_RE = re.compile(r"\btypedef\s+([^;]+?)\s+(\w+)\s*;")
TYPE_HEAD_RE = re.compile(r"^(?:const\s+)?([\w:]+)")

# Ambient nondeterminism, with negative lookbehind so member accesses
# (ev.time), qualified names (x::time) and identifiers ending in the
# word (run_time() etc.) do not match.
AMBIENT_PATTERNS = (
    (re.compile(r"(?<![\w.:>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|&)"), "time()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
     "std::chrono wall clock"),
    (re.compile(r"(?<![\w.:>])(?:gettimeofday|getpid)\s*\("),
     "gettimeofday()/getpid()"),
)

# Test-only APIs: convenience spellings whose use in src/ would
# reintroduce a hot-path hazard the production spelling was built to
# avoid.  Matched on member-call syntax only (`.name()` / `->name()`),
# so the declaration and definition of the overload do not trip it.
TEST_ONLY_CALLS = (
    (re.compile(r"(?:\.|->)\s*next_distribution\s*\(\s*\)"),
     "allocating MarkovPredictor::next_distribution() overload is "
     "test-only — replay code must pass a reused scratch buffer"),
)


def strip_comments_and_strings(line: str) -> str:
    """Blank out string/char literals and // comments so patterns do not
    match inside documentation or log text (the suppression marker is
    read from the raw line before this runs)."""
    out = []
    i, n = 0, len(line)
    in_str: str | None = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest of line is a comment
        out.append(c)
        i += 1
    return "".join(out)


def find_unordered_names(text: str) -> set[str]:
    """Names of variables/members declared as unordered containers.

    Pragmatic single-pass parse: from each `unordered_*` keyword, walk
    the balanced <...> template argument list, then capture the
    declared identifier after it.  Aliases are handled separately
    (find_alias_edges / unordered_alias_names); constructs neither pass
    can see — `auto&` bindings, members of other objects — are the
    semantic analyzer's job (tools/analyzer, docs/static-analysis.md)."""
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        i = text.find("<", m.end())
        if i == -1 or text[m.end():i].strip():
            continue
        depth, j = 0, i
        while j < len(text):
            if text[j] == "<":
                depth += 1
            elif text[j] == ">":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        if j >= len(text):
            continue
        decl = re.match(r"\s*[&*]?\s*(\w+)\s*[;={(,)]", text[j + 1:j + 256])
        if decl:
            names.add(decl.group(1))
    return names


def find_alias_edges(text: str) -> dict[str, str]:
    """Alias name -> target type text, for every using/typedef."""
    edges: dict[str, str] = {}
    for m in ALIAS_USING_RE.finditer(text):
        edges[m.group(1)] = m.group(2).strip()
    for m in ALIAS_TYPEDEF_RE.finditer(text):
        edges[m.group(2)] = m.group(1).strip()
    return edges


def unordered_alias_names(edges: dict[str, str]) -> set[str]:
    """Alias names whose (transitive) target *is* an unordered container
    — matched on the type head, so a std::vector<NameMap> alias does not
    count (iterating the vector is deterministic)."""
    unordered: set[str] = set()
    for name, target in edges.items():
        head = TYPE_HEAD_RE.match(target)
        if head and UNORDERED_DECL_RE.fullmatch(
                head.group(1).split("::")[-1]):
            unordered.add(name)
    changed = True
    while changed:
        changed = False
        for name, target in edges.items():
            if name in unordered:
                continue
            head = TYPE_HEAD_RE.match(target)
            if head and head.group(1).split("::")[-1] in unordered:
                unordered.add(name)
                changed = True
    return unordered


def find_alias_typed_names(text: str, aliases: set[str]) -> set[str]:
    """Names of variables/members declared with an unordered alias type
    (`NameTable table_;`)."""
    names: set[str] = set()
    for alias in aliases:
        for m in re.finditer(r"\b" + re.escape(alias) +
                             r"\b\s*[&*]?\s*(\w+)\s*[;={(,]", text):
            names.add(m.group(1))
    return names


class Finding:
    def __init__(self, path: Path, line_no: int, message: str):
        self.path = path
        self.line_no = line_no
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line_no}: {self.message}"


def lint_file(path: Path, rel: str, unordered_names: set[str],
              findings: list[Finding]) -> None:
    text = path.read_text(encoding="utf-8", errors="replace")
    critical = rel.startswith(REPLAY_CRITICAL_DIRS)
    rng_exempt = rel in RNG_ALLOWLIST

    iter_patterns = []
    if critical:
        for name in unordered_names:
            esc = re.escape(name)
            iter_patterns.append((
                re.compile(r"for\s*\([^;)]*:\s*[\w.\->]*\b" + esc + r"\s*\)"),
                f"range-for over unordered container '{name}' "
                "(iteration order is not deterministic)"))
            iter_patterns.append((
                re.compile(r"\b" + esc + r"\s*\.\s*c?r?begin\s*\("),
                f"iterator walk of unordered container '{name}' "
                "(iteration order is not deterministic)"))

    for line_no, raw in enumerate(text.splitlines(), start=1):
        if SUPPRESS_BARE_RE.search(raw) and not SUPPRESS_RE.search(raw):
            findings.append(Finding(
                path, line_no,
                "det-lint suppression without a reason — use "
                "'// det-lint: ok(<reason>)'"))
            continue
        suppressed = SUPPRESS_RE.search(raw) is not None
        line = strip_comments_and_strings(raw)

        hits = []
        for pat, what in iter_patterns:
            if pat.search(line):
                hits.append(what)
        if not rng_exempt:
            for pat, what in AMBIENT_PATTERNS:
                if pat.search(line):
                    hits.append(f"{what} outside src/util/rng.* — route "
                                "through dtn::Rng / simulation time")
        for pat, what in TEST_ONLY_CALLS:
            if pat.search(line):
                hits.append(what)
        if suppressed and hits:
            continue  # explicitly waived, reason recorded inline
        for what in hits:
            findings.append(Finding(path, line_no, what))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                    help="repository root (default: the checkout containing "
                         "this script)")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()

    src = args.root / SOURCE_DIR
    if not src.is_dir():
        print(f"determinism_lint: no such directory: {src}", file=sys.stderr)
        return 2

    files = sorted(p for p in src.rglob("*")
                   if p.suffix in (".hpp", ".cpp", ".h", ".cc"))
    if not files:
        print(f"determinism_lint: no sources under {src}", file=sys.stderr)
        return 2

    rels = {p.relative_to(args.root).as_posix() for p in files}
    for req in REQUIRED_COVERED_FILES:
        if req not in rels:
            print(f"determinism_lint: required replay-critical file "
                  f"missing: {req} (moved without updating "
                  "REQUIRED_COVERED_FILES?)", file=sys.stderr)
            return 2
        if not req.startswith(REPLAY_CRITICAL_DIRS):
            print(f"determinism_lint: {req} is listed as required but "
                  "lies outside the replay-critical directories",
                  file=sys.stderr)
            return 2

    # Pass 1: every unordered container declared anywhere under src/
    # (headers declare the members the .cpp files iterate), including
    # declarations through using/typedef alias chains.
    unordered_names: set[str] = set()
    alias_edges: dict[str, str] = {}
    texts: dict[Path, str] = {}
    for path in files:
        texts[path] = path.read_text(encoding="utf-8", errors="replace")
        unordered_names |= find_unordered_names(texts[path])
        alias_edges.update(find_alias_edges(texts[path]))
    aliases = unordered_alias_names(alias_edges)
    for text in texts.values():
        unordered_names |= find_alias_typed_names(text, aliases)
    if args.verbose:
        print(f"unordered containers declared: "
              f"{', '.join(sorted(unordered_names)) or '(none)'}")
        print(f"unordered aliases tracked: "
              f"{', '.join(sorted(aliases)) or '(none)'}")

    # Pass 2: hazards.
    findings: list[Finding] = []
    for path in files:
        rel = path.relative_to(args.root).as_posix()
        lint_file(path, rel, unordered_names, findings)

    if findings:
        print(f"determinism_lint: {len(findings)} finding(s):",
              file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"determinism_lint: OK ({len(files)} files, "
          f"{len(unordered_names)} unordered container(s) tracked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
