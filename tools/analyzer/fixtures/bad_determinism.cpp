// Seeded violations for the determinism check (test_analyzer.py).
// Every construct here is invisible to the regex lint's literal
// pattern match: the container type hides behind an alias, and the
// ambient reach hides behind a same-file helper call.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

#include "util/annotations.hpp"

namespace fixture {

using Table = std::unordered_map<int, double>;

inline double ambient_helper() {
  return static_cast<double>(std::rand());  // LINE: direct ambient call
}

class Metrics {
 public:
  double sum_all() const {
    double total = 0.0;
    for (const auto& kv : table_) {  // LINE: unordered iteration (alias)
      total += kv.second;
    }
    return total;
  }

  double now_cost() const {
    const auto t = std::chrono::steady_clock::now();  // LINE: ambient clock
    return static_cast<double>(t.time_since_epoch().count());
  }

  double tainted_path() const {
    return ambient_helper();  // LINE: callee-resolved ambient reach
  }

 private:
  Table table_;
};

}  // namespace fixture
