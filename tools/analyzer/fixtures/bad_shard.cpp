// Seeded violations for the shard-safety check (test_analyzer.py):
// a shard hook writing shared state directly, writing shared state
// through a same-class helper, and writing an unannotated member.
#include <cstdint>
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

class ShardedRouter {
 public:
  void on_arrival(std::uint32_t node, std::uint32_t landmark) {
    visits_[landmark] += 1;  // fine: shard-local write
    total_visits_ += 1;      // LINE: write to DTN_SHARD_SHARED member
    scratch_counter_ = node;  // LINE: write to unannotated member
    bump_global();
  }

 private:
  void bump_global() {
    global_epoch_ += 1;  // LINE: shared write reached through a helper
  }

  DTN_SHARD_LOCAL std::vector<std::uint64_t> visits_;
  DTN_SHARD_SHARED std::uint64_t total_visits_ = 0;
  DTN_SHARD_SHARED std::uint64_t global_epoch_ = 0;
  std::uint64_t scratch_counter_ = 0;
};

}  // namespace fixture
