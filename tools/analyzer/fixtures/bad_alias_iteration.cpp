// Regression fixture for the regex-lint false negative that motivated
// the semantic analyzer (docs/static-analysis.md): a range-for over a
// member whose unordered-container type hides behind a two-level class
// alias AND behind an `auto&` local binding.  The regex lint sees
// neither spelling; the analyzer must resolve both.
#include <string>
#include <unordered_map>

namespace fixture {

class Registry {
 public:
  using NameMap = std::unordered_map<std::string, int>;
  using NameTable = NameMap;  // second alias level

  int total() const {
    const auto& names = table_;  // binding hides the member spelling
    int sum = 0;
    for (const auto& kv : names) {  // LINE: unordered iteration
      sum += kv.second;
    }
    return sum;
  }

 private:
  NameTable table_;
};

}  // namespace fixture
