// Seeded violation for the checkpoint-coverage check (test_analyzer.py):
// a checkpointable class with one member absent from both halves of the
// save/load pair and no DTN_CKPT_SKIP annotation.
#include <cstdint>
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

class Writer;
class Reader;

class Counters {
 public:
  void checkpoint_save(Writer& w) const;
  void checkpoint_load(Reader& r);

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t epoch_ = 0;
  std::uint64_t forgotten_ = 0;  // LINE: never serialized, not skipped
  DTN_CKPT_SKIP("scratch rebuilt lazily")
  std::vector<double> cache_;
};

void Counters::checkpoint_save(Writer& w) const {
  (void)w;
  (void)counts_;
  (void)epoch_;
}

void Counters::checkpoint_load(Reader& r) {
  (void)r;
  (void)counts_;
  (void)epoch_;
}

}  // namespace fixture
