// Clean fixture (test_analyzer.py): exercises the same constructs as
// the bad_* fixtures, correctly — the analyzer must report nothing.
#include <cstdint>
#include <map>
#include <vector>

#include "util/annotations.hpp"

namespace fixture {

class Writer;
class Reader;

class CleanRouter {
 public:
  void on_arrival(std::uint32_t node, std::uint32_t landmark) {
    visits_[landmark] += 1;  // shard-local: fine
    last_node_ = node;       // shard-local: fine
  }

  void checkpoint_save(Writer& w) const {
    (void)w;
    (void)visits_;
    (void)last_node_;
    for (const auto& kv : delays_) {  // std::map: ordered, fine
      (void)kv;
    }
  }

  void checkpoint_load(Reader& r) {
    (void)r;
    (void)visits_;
    (void)last_node_;
    (void)delays_;
  }

 private:
  DTN_SHARD_LOCAL std::vector<std::uint64_t> visits_;
  DTN_SHARD_LOCAL std::uint64_t last_node_ = 0;
  DTN_SHARD_LOCAL std::map<std::uint32_t, double> delays_;
};

}  // namespace fixture
