#!/usr/bin/env python3
"""Tests for the semantic analyzer (registered as ctest
`analyzer_selftest`).

Covers, with the lite frontend (always available):
  * the repo head analyzes clean;
  * every seeded-violation fixture fails with findings at exactly its
    `// LINE`-marked lines;
  * the clean fixture passes;
  * deleting a serialized member reference from DtnFlowRouter's
    checkpoint_save (without DTN_CKPT_SKIP) fails the coverage check;
  * `// det-lint: ok(...)` / `// shard-check: ok(...)` suppress;
and, when clang.cindex is importable (CI's analyzer job), frontend
equivalence on the fixtures.
"""
from __future__ import annotations

import re
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parents[1]
FIXTURES = HERE / "fixtures"
ANALYZER = HERE / "analyzer.py"


def run_analyzer(*args: str) -> tuple[int, str, str]:
    proc = subprocess.run(
        [sys.executable, str(ANALYZER), *args],
        capture_output=True, text=True, check=False)
    return proc.returncode, proc.stdout, proc.stderr


def finding_lines(stdout: str, path: Path) -> set[int]:
    lines = set()
    rx = re.compile(re.escape(path.name) + r":(\d+): \[")
    for out_line in stdout.splitlines():
        m = rx.search(out_line)
        if m:
            lines.add(int(m.group(1)))
    return lines


def marked_lines(path: Path) -> set[int]:
    marks = set()
    for no, line in enumerate(path.read_text().splitlines(), start=1):
        if "// LINE" in line:
            marks.add(no)
    return marks


def clang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


class RepoHeadTest(unittest.TestCase):
    def test_repo_head_is_clean(self):
        code, out, err = run_analyzer("--frontend", "lite",
                                      "--root", str(ROOT))
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")
        self.assertEqual(out.strip(), "")


class FixtureTest(unittest.TestCase):
    """Each bad fixture must fail with findings at exactly the lines it
    marks; the clean fixture must pass."""

    def _check_bad(self, name: str, check: str):
        path = FIXTURES / name
        code, out, _ = run_analyzer("--frontend", "lite",
                                    "--root", str(ROOT), str(path))
        self.assertEqual(code, 1, f"expected findings for {name}:\n{out}")
        self.assertIn(f"[{check}]", out)
        self.assertEqual(finding_lines(out, path), marked_lines(path),
                         f"finding lines != marked lines for {name}:\n{out}")

    def test_bad_determinism(self):
        self._check_bad("bad_determinism.cpp", "determinism")

    def test_bad_alias_iteration(self):
        self._check_bad("bad_alias_iteration.cpp", "determinism")

    def test_bad_shard(self):
        self._check_bad("bad_shard.cpp", "shard-safety")

    def test_bad_ckpt(self):
        self._check_bad("bad_ckpt.cpp", "ckpt-coverage")

    def test_clean_fixture(self):
        code, out, err = run_analyzer("--frontend", "lite",
                                      "--root", str(ROOT),
                                      str(FIXTURES / "clean.cpp"))
        self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")


class MutationTest(unittest.TestCase):
    """Acceptance criterion: removing a serialized member from
    DtnFlowRouter::checkpoint_save without DTN_CKPT_SKIP must fail."""

    def test_dropped_save_reference_is_caught(self):
        with tempfile.TemporaryDirectory() as tmp:
            tmp_root = Path(tmp)
            shutil.copytree(ROOT / "src", tmp_root / "src")
            router = tmp_root / "src/core/dtn_flow_router.cpp"
            text = router.read_text()
            mutated = text.replace(
                "  persist::write_vec(w, needs_reconvergence_);\n", "", 1)
            self.assertNotEqual(text, mutated,
                                "expected the write_vec line to exist")
            router.write_text(mutated)
            code, out, _ = run_analyzer("--frontend", "lite",
                                        "--root", str(tmp_root))
            self.assertEqual(code, 1, f"mutation not caught:\n{out}")
            self.assertIn("needs_reconvergence_", out)
            self.assertIn("[ckpt-coverage]", out)


class SuppressionTest(unittest.TestCase):
    def test_det_lint_marker_suppresses(self):
        src = (FIXTURES / "bad_alias_iteration.cpp").read_text()
        src = src.replace(
            "for (const auto& kv : names) {  // LINE: unordered iteration",
            "// det-lint: ok(fixture: order-insensitive sum)\n"
            "    for (const auto& kv : names) {")
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "suppressed.cpp"
            path.write_text(src)
            code, out, err = run_analyzer("--frontend", "lite",
                                          "--root", str(ROOT), str(path))
            self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")

    def test_shard_check_marker_suppresses(self):
        src = (FIXTURES / "bad_shard.cpp").read_text()
        src = src.replace(
            "    total_visits_ += 1;      // LINE: write",
            "    // shard-check: ok(fixture: behind shard_safe() gate)\n"
            "    total_visits_ += 1;  // (write",
            1)
        src = src.replace(
            "    scratch_counter_ = node;  // LINE: write to unannotated "
            "member",
            "    // shard-check: ok(fixture: scratch)\n"
            "    scratch_counter_ = node;")
        src = src.replace(
            "    global_epoch_ += 1;  // LINE: shared write reached "
            "through a helper",
            "    // shard-check: ok(fixture: behind shard_safe() gate)\n"
            "    global_epoch_ += 1;")
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "suppressed.cpp"
            path.write_text(src)
            code, out, err = run_analyzer("--frontend", "lite",
                                          "--root", str(ROOT), str(path))
            self.assertEqual(code, 0, f"stdout:\n{out}\nstderr:\n{err}")


@unittest.skipUnless(clang_available(), "clang.cindex not importable")
class FrontendEquivalenceTest(unittest.TestCase):
    """Both frontends must report the same (file, line, check) facts on
    the fixtures (messages may differ in type spelling)."""

    def _facts(self, out: str) -> set[tuple[str, str]]:
        facts = set()
        for line in out.splitlines():
            m = re.match(r"(.+:\d+): \[([\w-]+)\]", line)
            if m:
                facts.add((m.group(1), m.group(2)))
        return facts

    def test_fixtures_agree(self):
        for name in ("bad_determinism.cpp", "bad_alias_iteration.cpp",
                     "bad_shard.cpp", "bad_ckpt.cpp", "clean.cpp"):
            path = FIXTURES / name
            _, out_l, _ = run_analyzer("--frontend", "lite",
                                       "--root", str(ROOT), str(path))
            _, out_c, _ = run_analyzer("--frontend", "clang",
                                       "--root", str(ROOT), str(path))
            self.assertEqual(self._facts(out_l), self._facts(out_c),
                             f"frontends disagree on {name}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
