"""The three check families (docs/static-analysis.md).

Each check consumes only the semantic `Model`, so its behaviour is
identical whichever frontend produced the facts.  Every function takes
the model plus an `Options` describing which files are replay-critical
for this run (fixture files passed explicitly on the command line are
forced replay-critical so seeded violations fire without living under
src/).
"""
from __future__ import annotations

from dataclasses import dataclass, field

import config as cfg
from model import Finding, Method, Model


@dataclass
class Options:
    # Files forced replay-critical regardless of directory (fixtures).
    forced_critical: set[str] = field(default_factory=set)


def is_replay_critical(path: str, opts: Options) -> bool:
    if path in opts.forced_critical:
        return True
    if path in cfg.RNG_ALLOWLIST:
        return False
    return any(path.startswith(d + "/") or path == d
               for d in cfg.REPLAY_CRITICAL_DIRS)


def _suppressed(model: Model, marker: str, file: str, line: int) -> bool:
    """A marker on the finding's line or the line above suppresses it."""
    return model.suppressed(marker, file, line) or \
        model.suppressed(marker, file, line - 1)


def _resolve_callee(model: Model, method: Method, callee: str) -> str | None:
    """Map a call-site spelling to a model method qualname (or None)."""
    if callee.startswith("<expr>."):
        return None
    simple = callee.split("::")[-1]
    if method.cls:
        q = method.cls + "::" + simple
        if q in model.methods:
            return q
    if callee in model.methods:
        return callee
    cands = [q for q in model.methods
             if q.split("::")[-1] == simple
             and (callee == simple or q.endswith("::" + callee))]
    return cands[0] if len(cands) == 1 else None


# -- determinism ------------------------------------------------------

def _unordered(container_type: str) -> str | None:
    for head in cfg.UNORDERED_CONTAINERS:
        if head in container_type:
            return head
    return None


def check_determinism(model: Model, opts: Options) -> list[Finding]:
    findings: list[Finding] = []

    # Taint: methods that reach ambient nondeterminism, transitively.
    # The sanctioned RNG wrapper is neither a source nor a carrier.
    def exempt(m: Method) -> bool:
        return m.file in cfg.RNG_ALLOWLIST

    tainted: dict[str, str] = {}  # qualname -> reason chain root
    for q, m in model.methods.items():
        if exempt(m):
            continue
        live = [c for c in m.ambient_calls
                if not _suppressed(model, "det-lint", m.file, c.line)]
        if live:
            tainted[q] = live[0].callee
    changed = True
    while changed:
        changed = False
        for q, m in model.methods.items():
            if q in tainted or exempt(m):
                continue
            for call in m.calls:
                target = _resolve_callee(model, m, call.callee)
                if target and target in tainted and target != q:
                    tainted[q] = f"{target} -> {tainted[target]}"
                    changed = True
                    break

    for q, m in model.methods.items():
        if not is_replay_critical(m.file, opts):
            continue
        # Unordered-container iteration, type-resolved.
        for it in m.iterations:
            head = _unordered(it.container_type)
            if head is None:
                continue
            if _suppressed(model, "det-lint", m.file, it.line):
                continue
            findings.append(Finding(
                m.file, it.line, "determinism",
                f"{it.form} over {head} `{it.expr}` in {q} "
                f"(resolved type: {it.container_type.strip()}); iteration "
                f"order is unspecified — use an ordered container or "
                f"sorted snapshot, or annotate `// det-lint: ok(reason)`"))
        # Direct ambient calls.
        for call in m.ambient_calls:
            if _suppressed(model, "det-lint", m.file, call.line):
                continue
            findings.append(Finding(
                m.file, call.line, "determinism",
                f"ambient nondeterminism `{call.callee}` in {q}; replay "
                f"must be a pure function of (trace, router, seed) — "
                f"route randomness through util::Rng"))
        # Calls that transitively reach ambient nondeterminism.
        for call in m.calls:
            target = _resolve_callee(model, m, call.callee)
            if not target or target not in tainted or target == q:
                continue
            if _suppressed(model, "det-lint", m.file, call.line):
                continue
            findings.append(Finding(
                m.file, call.line, "determinism",
                f"{q} calls {target}, which reaches ambient "
                f"nondeterminism ({tainted[target]})"))
    return findings


# -- shard-safety -----------------------------------------------------

def _class_closure(model: Model, entry: Method) -> list[Method]:
    """Entry method plus every same-class method reachable from it."""
    seen = {entry.qualname}
    order = [entry]
    stack = [entry]
    while stack:
        m = stack.pop()
        for call in m.calls:
            target = _resolve_callee(model, m, call.callee)
            if not target or target in seen:
                continue
            tm = model.methods[target]
            if tm.cls != entry.cls:
                continue
            seen.add(target)
            order.append(tm)
            stack.append(tm)
    return order


def check_shard_safety(model: Model, opts: Options) -> list[Finding]:
    findings: list[Finding] = []
    for cls_name, ci in model.classes.items():
        if not ci.has_shard_annotations():
            continue
        entries = [m for m in model.class_methods(cls_name)
                   if m.name in cfg.SHARD_ENTRY_HOOKS]
        reported: set[tuple[str, int]] = set()
        for entry in entries:
            for m in _class_closure(model, entry):
                for acc in m.members_written():
                    mem = ci.member(acc.member)
                    if mem is None or mem.is_static:
                        continue
                    key = (acc.member, acc.line)
                    if key in reported:
                        continue
                    if _suppressed(model, "shard-check", m.file, acc.line):
                        continue
                    if mem.annotation("shard_local"):
                        continue
                    reported.add(key)
                    if mem.annotation("shard_shared"):
                        findings.append(Finding(
                            m.file, acc.line, "shard-safety",
                            f"{m.qualname} (reachable from shard hook "
                            f"{entry.name}) writes DTN_SHARD_SHARED member "
                            f"`{acc.member}`; shared state must not be "
                            f"mutated on shard threads — gate on "
                            f"shard_safe() and suppress with "
                            f"`// shard-check: ok(reason)`, or make it "
                            f"per-shard"))
                    else:
                        findings.append(Finding(
                            m.file, acc.line, "shard-safety",
                            f"{m.qualname} (reachable from shard hook "
                            f"{entry.name}) writes unannotated member "
                            f"`{acc.member}` of shard-annotated class "
                            f"{cls_name}; annotate it DTN_SHARD_LOCAL or "
                            f"DTN_SHARD_SHARED"))
    return findings


# -- checkpoint coverage ----------------------------------------------

def _referenced_closure(model: Model, method: Method) -> set[str]:
    """Members referenced by `method` or by same-class methods it
    (transitively) calls."""
    refs: set[str] = set()
    for m in _class_closure(model, method):
        refs |= m.members_referenced()
    return refs


def check_ckpt_coverage(model: Model, opts: Options) -> list[Finding]:
    findings: list[Finding] = []
    for cls_name, ci in model.classes.items():
        pair = None
        for save_name, load_name in cfg.CHECKPOINT_PAIRS:
            save_q = cls_name + "::" + save_name
            load_q = cls_name + "::" + load_name
            if save_q in model.methods and load_q in model.methods:
                pair = (model.methods[save_q], model.methods[load_q])
                break
        if pair is None:
            continue
        save_m, load_m = pair
        save_refs = _referenced_closure(model, save_m)
        load_refs = _referenced_closure(model, load_m)
        for mem in ci.members:
            if mem.is_static:
                continue
            if mem.annotation("ckpt_skip"):
                continue
            missing = []
            if mem.name not in save_refs:
                missing.append(save_m.name)
            if mem.name not in load_refs:
                missing.append(load_m.name)
            if missing:
                findings.append(Finding(
                    ci.file, mem.line, "ckpt-coverage",
                    f"member `{mem.name}` of {cls_name} is not referenced "
                    f"in {' or '.join(missing)}; serialize it or annotate "
                    f'DTN_CKPT_SKIP("reason") — unserialized state breaks '
                    f"bit-identical resume"))
    return findings


CHECKS = {
    "determinism": check_determinism,
    "shard-safety": check_shard_safety,
    "ckpt-coverage": check_ckpt_coverage,
}


def run_checks(model: Model, opts: Options,
               which: list[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    for name in (which or list(CHECKS)):
        findings.extend(CHECKS[name](model, opts))
    findings.sort(key=lambda f: (f.file, f.line, f.check))
    return findings
