"""libclang frontend: lowers translation units into the analyzer model
via `clang.cindex` (python3-clang + libclang, pinned in CI).

This is the reference frontend — types come from the compiler, so
`auto`, typedef chains, member aliases and template arguments are
resolved exactly.  It is only imported when `clang.cindex` is
importable; the container default toolchain (GCC only) uses
`frontend_lite` instead.  Both lower into the same `Model`, and the
checks consume only the model, so findings are comparable across
frontends (test_analyzer has an equivalence test that runs when clang
is available).
"""
from __future__ import annotations

import re
from pathlib import Path

from model import (Annotation, Call, ClassInfo, IterationSite, Member,
                   MemberAccess, Method, Model)
import config as cfg
import frontend_lite  # suppression-comment scanning is shared

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}

DEFAULT_ARGS = ["-x", "c++", "-std=c++20"]


def _cindex():
    import clang.cindex as ci
    return ci


def _qualified_name(cursor) -> str:
    ci = _cindex()
    parts = []
    c = cursor
    while c is not None and c.kind != ci.CursorKind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def _compile_args(root: Path, path: Path, build_dir: Path | None) -> list:
    if build_dir is not None:
        ci = _cindex()
        try:
            db = ci.CompilationDatabase.fromDirectory(str(build_dir))
            cmds = db.getCompileCommands(str(path))
            if cmds:
                args = list(cmds[0].arguments)[1:]
                out = []
                skip = False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-c", str(path)):
                        continue
                    if a == "-o":
                        skip = True
                        continue
                    out.append(a)
                return out
        except Exception:
            pass
    return DEFAULT_ARGS + ["-I", str(root / "src")]


def _annotations_of(cursor) -> list[Annotation]:
    ci = _cindex()
    out = []
    for ch in cursor.get_children():
        if ch.kind == ci.CursorKind.ANNOTATE_ATTR:
            text = ch.spelling or ""
            if text == "dtn::shard_local":
                out.append(Annotation("shard_local"))
            elif text == "dtn::shard_shared":
                out.append(Annotation("shard_shared"))
            elif text.startswith("dtn::ckpt_skip="):
                out.append(Annotation("ckpt_skip",
                                      text[len("dtn::ckpt_skip="):]))
    return out


def _extent_text(cursor) -> str:
    toks = [t.spelling for t in cursor.get_tokens()]
    return " ".join(toks[:12])


class TUWalker:
    def __init__(self, model: Model, rel_of: dict[str, str]):
        self.ci = _cindex()
        self.model = model
        self.rel_of = rel_of  # absolute path -> repo-relative path

    def rel(self, cursor) -> str | None:
        loc = cursor.location
        if loc.file is None:
            return None
        return self.rel_of.get(str(Path(str(loc.file)).resolve()))

    def walk(self, tu) -> None:
        self._visit_children(tu.cursor)

    def _visit_children(self, cursor) -> None:
        ci = self.ci
        for ch in cursor.get_children():
            rel = self.rel(ch)
            if rel is None:
                continue
            k = ch.kind
            if k in (ci.CursorKind.NAMESPACE,
                     ci.CursorKind.LINKAGE_SPEC,
                     ci.CursorKind.UNEXPOSED_DECL):
                self._visit_children(ch)
            elif k in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                       ci.CursorKind.CLASS_TEMPLATE):
                if ch.is_definition():
                    self._class(ch, rel)
            elif k in (ci.CursorKind.TYPE_ALIAS_DECL,
                       ci.CursorKind.TYPEDEF_DECL):
                self._alias(ch)
            elif k in (ci.CursorKind.CXX_METHOD, ci.CursorKind.CONSTRUCTOR,
                       ci.CursorKind.DESTRUCTOR, ci.CursorKind.FUNCTION_DECL,
                       ci.CursorKind.FUNCTION_TEMPLATE):
                self._function(ch, rel)

    def _alias(self, cursor) -> None:
        try:
            target = cursor.underlying_typedef_type.spelling
        except Exception:
            return
        self.model.aliases[cursor.spelling] = target
        self.model.aliases[_qualified_name(cursor)] = target

    def _class(self, cursor, rel: str) -> None:
        ci = self.ci
        qual = _qualified_name(cursor)
        info = self.model.classes.setdefault(
            qual, ClassInfo(name=qual, file=rel,
                            line=cursor.location.line))
        for ch in cursor.get_children():
            k = ch.kind
            if k == ci.CursorKind.FIELD_DECL:
                if info.member(ch.spelling) is None:
                    info.members.append(Member(
                        name=ch.spelling,
                        type_text=ch.type.spelling,
                        canonical_type=ch.type.get_canonical().spelling,
                        line=ch.location.line,
                        annotations=_annotations_of(ch),
                        is_static=False))
            elif k == ci.CursorKind.VAR_DECL:
                # static data member
                if info.member(ch.spelling) is None:
                    info.members.append(Member(
                        name=ch.spelling,
                        type_text=ch.type.spelling,
                        canonical_type=ch.type.get_canonical().spelling,
                        line=ch.location.line,
                        annotations=_annotations_of(ch),
                        is_static=True))
            elif k in (ci.CursorKind.CXX_METHOD, ci.CursorKind.CONSTRUCTOR,
                       ci.CursorKind.DESTRUCTOR,
                       ci.CursorKind.FUNCTION_TEMPLATE):
                info.method_const[ch.spelling] = bool(
                    ch.is_const_method()) if hasattr(ch, "is_const_method") \
                    else False
                rets = getattr(info, "method_returns", None)
                if rets is None:
                    rets = {}
                    info.method_returns = rets  # type: ignore[attr-defined]
                try:
                    rets.setdefault(ch.spelling, ch.result_type.spelling)
                except Exception:
                    pass
                if ch.is_definition():
                    self._function(ch, self.rel(ch) or rel)
            elif k in (ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL):
                if ch.is_definition():
                    self._class(ch, self.rel(ch) or rel)
            elif k in (ci.CursorKind.TYPE_ALIAS_DECL,
                       ci.CursorKind.TYPEDEF_DECL):
                self._alias(ch)

    def _function(self, cursor, rel: str) -> None:
        ci = self.ci
        if not cursor.is_definition():
            parent = cursor.semantic_parent
            if parent is not None and parent.kind in (
                    ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                    ci.CursorKind.CLASS_TEMPLATE):
                qual = _qualified_name(parent)
                if qual in self.model.classes:
                    self.model.classes[qual].method_const[
                        cursor.spelling] = bool(cursor.is_const_method()) \
                        if hasattr(cursor, "is_const_method") else False
            return
        parent = cursor.semantic_parent
        cls = None
        if parent is not None and parent.kind in (
                ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL,
                ci.CursorKind.CLASS_TEMPLATE):
            cls = _qualified_name(parent)
        qual = _qualified_name(cursor)
        is_const = bool(cursor.is_const_method()) \
            if hasattr(cursor, "is_const_method") else False
        method = Method(name=cursor.spelling, qualname=qual, cls=cls,
                        file=rel, line=cursor.location.line,
                        is_const=is_const)
        body = None
        for ch in cursor.get_children():
            if ch.kind == ci.CursorKind.COMPOUND_STMT:
                body = ch
        if body is not None:
            self._body(body, method, write=False)
        if qual in self.model.methods:
            prev = self.model.methods[qual]
            prev.accesses += method.accesses
            prev.calls += method.calls
            prev.iterations += method.iterations
            prev.ambient_calls += method.ambient_calls
        else:
            self.model.methods[qual] = method

    # -- body walk ----------------------------------------------------

    def _op_token(self, cursor) -> str:
        """Operator spelling of a binary/unary operator cursor: the
        token between (after) its first child's extent."""
        children = list(cursor.get_children())
        if not children:
            return ""
        first_end = children[0].extent.end.offset
        for t in cursor.get_tokens():
            if t.extent.start.offset >= first_end:
                return t.spelling
        return ""

    def _body(self, node, method: Method, write: bool) -> None:
        ci = self.ci
        k = node.kind
        if k == ci.CursorKind.CXX_FOR_RANGE_STMT:
            children = list(node.get_children())
            range_expr = None
            for ch in children:
                if ch.kind.is_expression():
                    range_expr = ch
                    break
            if range_expr is not None:
                ctype = range_expr.type.get_canonical().spelling
                method.iterations.append(IterationSite(
                    expr=_extent_text(range_expr), container_type=ctype,
                    line=node.location.line, form="range-for"))
            for ch in children:
                self._body(ch, method, write=False)
            return
        if k in (ci.CursorKind.BINARY_OPERATOR,
                 ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR):
            op = self._op_token(node)
            children = list(node.get_children())
            if op in ASSIGN_OPS and len(children) == 2:
                self._body(children[0], method, write=True)
                self._body(children[1], method, write=False)
                return
        if k == ci.CursorKind.UNARY_OPERATOR:
            toks = [t.spelling for t in node.get_tokens()]
            if "++" in toks[:1] + toks[-1:] or "--" in toks[:1] + toks[-1:]:
                for ch in node.get_children():
                    self._body(ch, method, write=True)
                return
        if k == ci.CursorKind.CALL_EXPR:
            self._call(node, method)
            ref = node.referenced
            recv_write = False
            if ref is not None and ref.kind == ci.CursorKind.CXX_METHOD:
                is_const = bool(ref.is_const_method()) \
                    if hasattr(ref, "is_const_method") else True
                recv_write = not is_const
                if ref.spelling in ("begin", "cbegin", "rbegin", "crbegin"):
                    children = list(node.get_children())
                    if children:
                        recv = children[0]
                        method.iterations.append(IterationSite(
                            expr=_extent_text(recv),
                            container_type=recv.type.get_canonical().spelling,
                            line=node.location.line, form="begin-walk"))
            children = list(node.get_children())
            for idx, ch in enumerate(children):
                self._body(ch, method, write=(recv_write and idx == 0))
            return
        if k == ci.CursorKind.MEMBER_REF_EXPR:
            ref = node.referenced
            if ref is not None and ref.kind == ci.CursorKind.FIELD_DECL \
                    and method.cls is not None:
                owner = _qualified_name(ref.semantic_parent)
                if owner == method.cls:
                    method.accesses.append(MemberAccess(
                        member=ref.spelling,
                        kind="write" if write else "read",
                        line=node.location.line))
            for ch in node.get_children():
                self._body(ch, method, write=write)
            return
        if k in (ci.CursorKind.VAR_DECL,):
            # Non-const lvalue-reference binding is a potential write
            # through the bound member.
            t = node.type.spelling
            w = t.endswith("&") and "const" not in t
            for ch in node.get_children():
                self._body(ch, method, write=w)
            return
        if k == ci.CursorKind.DECL_REF_EXPR:
            ref = node.referenced
            if ref is not None and ref.spelling == "random_device":
                method.ambient_calls.append(Call(
                    callee="std::random_device", line=node.location.line))
        for ch in node.get_children():
            self._body(ch, method,
                       write=write and k in (
                           ci.CursorKind.ARRAY_SUBSCRIPT_EXPR,
                           ci.CursorKind.PAREN_EXPR,
                           ci.CursorKind.UNEXPOSED_EXPR))

    def _call(self, node, method: Method) -> None:
        ref = node.referenced
        if ref is None:
            name = node.spelling or ""
            if name:
                method.calls.append(Call(callee=name,
                                         line=node.location.line))
            return
        qual = _qualified_name(ref)
        line = node.location.line
        method.calls.append(Call(callee=qual, line=line))
        for pat in cfg.AMBIENT_CALLEES:
            if qual == pat or qual.endswith("::" + pat) or \
                    qual == pat.split("::")[-1]:
                method.ambient_calls.append(Call(callee=qual, line=line))
                return
        if qual in ("time", "std::time") or qual.endswith("::time") and \
                "chrono" not in qual:
            parent = ref.semantic_parent
            ci = self.ci
            if parent is None or parent.kind in (
                    ci.CursorKind.TRANSLATION_UNIT, ci.CursorKind.NAMESPACE):
                method.ambient_calls.append(Call(callee="time", line=line))


def build_model(root: Path, files: list[Path],
                build_dir: Path | None = None) -> Model:
    ci = _cindex()
    model = Model()
    rel_of: dict[str, str] = {}
    for p in files:
        rel = p.relative_to(root).as_posix() if p.is_relative_to(root) \
            else p.as_posix()
        rel_of[str(p.resolve())] = rel
        model.files.append(rel)
        # Suppression markers come from the raw text (same scan as the
        # lite frontend, so the checks see identical suppression sets).
        raw = p.read_text(encoding="utf-8", errors="replace")
        per_marker: dict[str, set[int]] = {}
        for line_no, line in enumerate(raw.split("\n"), start=1):
            for marker, rx in frontend_lite.SUPPRESS_RES.items():
                if rx.search(line):
                    per_marker.setdefault(marker, set()).add(line_no)
        if per_marker:
            model.suppressions[rel] = per_marker
    index = ci.Index.create()
    walker = TUWalker(model, rel_of)
    for p in files:
        args = _compile_args(root, p, build_dir)
        try:
            tu = index.parse(str(p), args=args)
        except Exception as exc:  # noqa: BLE001
            print(f"frontend_clang: failed to parse {p}: {exc}")
            continue
        walker.walk(tu)
    # Canonical member types come from clang already; normalize spacing
    # so the unordered-container substring test matches both frontends.
    for info in model.classes.values():
        for mem in info.members:
            mem.canonical_type = re.sub(r"\s+", " ", mem.canonical_type)
    return model
