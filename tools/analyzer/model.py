"""Semantic model shared by the analyzer's frontends and checks.

Both frontends (`frontend_clang` on libclang, `frontend_lite` on the
built-in parser) lower C++ translation units into this one structure;
the check families in `checks.py` consume only this model, so a check
behaves identically whichever frontend produced the facts.

The model is member/method-granular, which is exactly the resolution
the three check families need:

* determinism  — per-method iteration sites with the *canonical*
  (alias-expanded) type of the iterated container, plus call sites;
* shard-safety — per-method member accesses classified read/write,
  member annotations, and the intra-class call graph;
* checkpoint-coverage — per-class member lists and per-method member
  reference sets (closed over same-class calls).
"""
from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Annotation:
    """One DTN_* source annotation attached to a data member."""

    kind: str  # 'shard_local' | 'shard_shared' | 'ckpt_skip'
    reason: str = ""


@dataclass
class Member:
    """One non-static data member of a class."""

    name: str
    type_text: str  # declared spelling, e.g. 'TransitionMap'
    canonical_type: str  # alias-expanded spelling
    line: int
    annotations: list[Annotation] = field(default_factory=list)
    is_static: bool = False

    def annotation(self, kind: str) -> Annotation | None:
        for a in self.annotations:
            if a.kind == kind:
                return a
        return None


@dataclass
class MemberAccess:
    """A reference to a member of the enclosing class inside a method."""

    member: str
    kind: str  # 'read' | 'write'
    line: int


@dataclass
class Call:
    """A call site.  `callee` is a best-effort name: bare ('helper'),
    qualified ('dtn::core::DtnFlowRouter::helper'), or a receiver form
    ('<expr>.method') when the receiver is not `this`."""

    callee: str
    line: int


@dataclass
class IterationSite:
    """A range-for over (or iterator walk of) some container expression."""

    expr: str  # source spelling of the iterated expression
    container_type: str  # canonical type, '' when unresolvable
    line: int
    form: str  # 'range-for' | 'begin-walk'


@dataclass
class Method:
    """A function or method body we extracted facts from."""

    name: str
    qualname: str  # 'dtn::core::DtnFlowRouter::on_arrival' or free fn
    cls: str | None  # qualified class name, None for free functions
    file: str
    line: int
    is_const: bool = False
    accesses: list[MemberAccess] = field(default_factory=list)
    calls: list[Call] = field(default_factory=list)
    iterations: list[IterationSite] = field(default_factory=list)
    ambient_calls: list[Call] = field(default_factory=list)

    def members_referenced(self) -> set[str]:
        return {a.member for a in self.accesses}

    def members_written(self) -> list[MemberAccess]:
        return [a for a in self.accesses if a.kind == "write"]


@dataclass
class ClassInfo:
    """One class/struct definition."""

    name: str  # qualified, e.g. 'dtn::core::DtnFlowRouter'
    file: str
    line: int
    members: list[Member] = field(default_factory=list)
    # Simple name -> const-ness of the declaration (for write
    # classification of `member_.call()` receivers); overloads merge.
    method_const: dict[str, bool] = field(default_factory=dict)

    def member(self, name: str) -> Member | None:
        for m in self.members:
            if m.name == name:
                return m
        return None

    def has_shard_annotations(self) -> bool:
        return any(
            a.kind in ("shard_local", "shard_shared")
            for m in self.members
            for a in m.annotations
        )


@dataclass
class Model:
    """Everything the checks consume, for one analysis run."""

    # Qualified class name -> definition.
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    # Method qualname -> body facts.  Free functions use their
    # (namespace-qualified) name.
    methods: dict[str, Method] = field(default_factory=dict)
    # Alias name (qualified and bare forms) -> target type text.
    aliases: dict[str, str] = field(default_factory=dict)
    # Repo-relative paths of every file the model covers.
    files: list[str] = field(default_factory=list)
    # file -> {line} carrying a suppression marker, keyed by marker kind
    # ('det-lint' | 'shard-check').
    suppressions: dict[str, dict[str, set[int]]] = field(default_factory=dict)

    def class_methods(self, cls: str) -> list[Method]:
        return [m for m in self.methods.values() if m.cls == cls]

    def suppressed(self, marker: str, file: str, line: int) -> bool:
        return line in self.suppressions.get(file, {}).get(marker, set())


@dataclass
class Finding:
    """One analyzer finding (file:line: [check] message)."""

    file: str
    line: int
    check: str  # 'determinism' | 'shard-safety' | 'ckpt-coverage'
    message: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.check}] {self.message}"
