#!/usr/bin/env python3
"""Semantic analyzer driver (docs/static-analysis.md).

Runs the AST-level determinism, shard-safety and checkpoint-coverage
checks over the repo (or over explicitly listed files, which are then
treated as replay-critical — that is how the seeded-violation fixtures
are driven).

Frontends:
  * clang — libclang via python3-clang (`clang.cindex`), driven off the
    build's compile_commands.json.  The reference frontend; used in CI.
  * lite  — built-in parser, no dependencies beyond Python.  Used
    wherever libclang is not installed (the default container has GCC
    only).
  * auto (default) — clang when importable, else lite.

Exit codes: 0 clean, 1 findings, 2 bad invocation / frontend failure.
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import config as cfg  # noqa: E402
from checks import CHECKS, Options, run_checks  # noqa: E402

SOURCE_SUFFIXES = (".hpp", ".h", ".cpp", ".cc", ".cxx")


def discover_sources(root: Path) -> list[Path]:
    files: list[Path] = []
    for d in cfg.REPLAY_CRITICAL_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        files.extend(p for p in sorted(base.rglob("*"))
                     if p.suffix in SOURCE_SUFFIXES and p.is_file())
    return files


def clang_available() -> bool:
    try:
        import clang.cindex  # noqa: F401
        return True
    except Exception:
        return False


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="analyzer", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*",
                    help="explicit files to analyze (treated as "
                         "replay-critical); default: replay-critical "
                         "sources under --root")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels up)")
    ap.add_argument("-p", "--compile-commands", type=Path, default=None,
                    help="build dir containing compile_commands.json "
                         "(clang frontend only)")
    ap.add_argument("--checks", default=None,
                    help="comma-separated subset of: "
                         + ",".join(CHECKS))
    ap.add_argument("--frontend", choices=("auto", "clang", "lite"),
                    default="auto")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the summary line")
    args = ap.parse_args(argv)

    root = args.root.resolve()
    which = None
    if args.checks:
        which = [c.strip() for c in args.checks.split(",") if c.strip()]
        unknown = [c for c in which if c not in CHECKS]
        if unknown:
            print(f"analyzer: unknown checks: {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    opts = Options()
    if args.files:
        files = []
        for f in args.files:
            p = Path(f).resolve()
            if not p.is_file():
                print(f"analyzer: no such file: {f}", file=sys.stderr)
                return 2
            files.append(p)
            rel = p.relative_to(root).as_posix() if p.is_relative_to(root) \
                else p.as_posix()
            opts.forced_critical.add(rel)
    else:
        files = discover_sources(root)
        if not files:
            print(f"analyzer: no sources under {root}", file=sys.stderr)
            return 2

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if clang_available() else "lite"
    if frontend == "clang" and not clang_available():
        print("analyzer: clang frontend requested but clang.cindex is "
              "not importable (install python3-clang + libclang)",
              file=sys.stderr)
        return 2

    if frontend == "clang":
        import frontend_clang
        model = frontend_clang.build_model(root, files,
                                           args.compile_commands)
    else:
        import frontend_lite
        model = frontend_lite.build_model(root, files)

    findings = run_checks(model, opts, which)
    for f in findings:
        print(f)
    if not args.quiet:
        print(f"analyzer[{frontend}]: {len(model.files)} files, "
              f"{len(model.classes)} classes, {len(model.methods)} "
              f"method bodies; {len(findings)} finding(s)",
              file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
