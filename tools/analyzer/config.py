"""Repo policy for the semantic analyzer (docs/static-analysis.md).

Kept in one place so the CLI, the checks and the tests agree on what is
replay-critical, which hooks are shard entry points, and which ambient
calls are banned.  `scripts/determinism_lint.py` keeps its own copy of
the directory policy (it is the fast regex pre-check and must stay
dependency-free); the analyzer's ctest registration runs both, so a
drift between the two fails the suite rather than silently narrowing
coverage.
"""
from __future__ import annotations

# Directories whose code runs inside the deterministic replay loop
# (mirrors scripts/determinism_lint.py REPLAY_CRITICAL_DIRS).
REPLAY_CRITICAL_DIRS = (
    "src/core",
    "src/sim",
    "src/routing",
    "src/net",
    "src/persist",
    "src/util",
)

# The one sanctioned randomness wrapper: ambient calls inside it are fine.
RNG_ALLOWLIST = ("src/util/rng.hpp", "src/util/rng.cpp")

# Unordered-container heads whose iteration order is not deterministic.
UNORDERED_CONTAINERS = (
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
)

# Ambient-nondeterminism callees, by (suffix-matched) name.  A call
# whose resolved callee ends in one of these taints the caller; the
# taint propagates up the repo call graph (that is the "callee-resolved"
# upgrade over the regex lint, which only sees the literal call site).
AMBIENT_CALLEES = (
    "rand",
    "srand",
    "random_device",  # constructor call of std::random_device
    "system_clock::now",
    "steady_clock::now",
    "high_resolution_clock::now",
    "gettimeofday",
    "getpid",
)
# `time(...)` needs its own rule: the bare name collides with members
# and locals everywhere, so only an explicit global/std call counts.
AMBIENT_TIME_CALLEES = ("::time", "std::time")

# Router hooks that run on shard threads during a sharded replay
# (docs/parallel-engine.md).  on_time_unit and the fault hooks run in
# coordinator barrier phases / serial-only runs and are deliberately
# absent.  Any method with one of these names on a class that carries
# shard annotations is treated as an entry point.
SHARD_ENTRY_HOOKS = (
    "on_arrival",
    "on_departure",
    "on_departure_batch_begin",
    "on_contact",
    "on_packet_generated",
)

# Method-name pairs that form a checkpoint surface.  A class providing
# both halves of a pair gets checkpoint-coverage enforcement: every
# non-static data member must be referenced in both bodies (closed over
# same-class calls) or carry DTN_CKPT_SKIP("reason").
CHECKPOINT_PAIRS = (
    ("checkpoint_save", "checkpoint_load"),
    ("save", "load"),
)

# std:: member functions treated as known mutators when called on a
# member object (write classification for shard-safety).
KNOWN_MUTATORS = frozenset({
    "push_back", "pop_back", "emplace_back", "emplace", "insert", "erase",
    "clear", "resize", "reserve", "assign", "swap", "reset", "emplace_front",
    "push_front", "pop_front", "push", "pop", "operator[]", "fill",
})

# std:: member functions known to be const (never a write).
KNOWN_CONST_METHODS = frozenset({
    "size", "empty", "begin", "end", "cbegin", "cend", "rbegin", "rend",
    "front", "back", "at", "find", "count", "contains", "has_value",
    "value", "value_or", "data", "capacity", "get",
})

# Suppression markers, shared with the regex lint where they overlap.
SUPPRESS_MARKERS = ("det-lint", "shard-check")
