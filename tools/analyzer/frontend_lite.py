"""Built-in fallback frontend: lowers C++ sources into the analyzer
model without libclang.

`frontend_clang` is the reference frontend (exact types from the
compiler); this one exists so the analyzer runs everywhere the repo
builds — the container toolchain ships GCC only.  It is a deliberately
scoped mini-frontend, tuned for this codebase's idiom:

* comments/strings/preprocessor lines are blanked (offsets preserved);
* namespaces, classes/structs (nested included), alias declarations
  (`using X = ...;` / `typedef`), data members with their DTN_*
  annotations, and method bodies (inline and out-of-line
  `Cls::method(...) { ... }`) are structurally parsed;
* inside bodies it extracts range-for / `.begin()` iteration sites with
  the iterated expression's type *resolved* through locals, parameters,
  members, method return types and alias chains — this is what lets the
  determinism check see through `auto`, typedefs and member aliases the
  regex lint cannot;
* member accesses are classified read/write (assignment and compound
  ops, ++/--, mutating method calls, non-const reference bindings);
* call sites are recorded for the taint/reachability closures.

Unresolvable constructs degrade to "unknown type" / "read" — the
analyzer never guesses a finding it cannot ground, so lite-mode
precision errs toward false negatives, with the seeded-violation
fixtures pinning the cases that must not regress.
"""
from __future__ import annotations

import re
from pathlib import Path

from model import (Annotation, Call, ClassInfo, IterationSite, Member,
                   MemberAccess, Method, Model)
import config as cfg

KEYWORDS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "catch", "do",
    "else", "new", "delete", "throw", "case", "default", "goto",
    "static_assert", "alignof", "decltype", "co_await", "co_return",
    "co_yield", "noexcept", "assert",
})

TYPE_PREFIX_KEYWORDS = frozenset({
    "const", "constexpr", "consteval", "constinit", "static", "inline",
    "virtual", "explicit", "mutable", "volatile", "typename", "friend",
    "extern", "register", "thread_local", "unsigned", "signed", "struct",
    "class", "enum",
})

ANNOTATION_MACROS = {
    "DTN_SHARD_LOCAL": "shard_local",
    "DTN_SHARD_SHARED": "shard_shared",
    "DTN_CKPT_SKIP": "ckpt_skip",
}

SUPPRESS_RES = {
    marker: re.compile(r"//\s*" + re.escape(marker) + r":\s*ok\(([^)]*)\)")
    for marker in cfg.SUPPRESS_MARKERS
}

TOKEN_RE = re.compile(r"[A-Za-z_]\w*|::|<=>|<<=|>>=|->\*?|\+\+|--|&&|\|\|"
                      r"|[+\-*/%&|^!=<>]=|<<|>>|::|[0-9][\w.+-]*|\S")

CONTROL_NAMES = frozenset({"if", "for", "while", "switch", "catch",
                           "sizeof", "return", "DTN_ASSERT", "assert",
                           "static_cast", "dynamic_cast", "const_cast",
                           "reinterpret_cast", "alignas", "decltype",
                           "defined", "alignof", "noexcept"})


def clean_source(raw: str) -> str:
    """Blank comments, string/char literal contents, preprocessor lines
    and bracket attributes, preserving every offset and newline."""
    out = list(raw)
    n = len(raw)
    i = 0
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = raw[i]
        if state is None:
            if c == "/" and i + 1 < n:
                if raw[i + 1] == "/":
                    state = "line"
                    out[i] = out[i + 1] = " "
                    i += 2
                    continue
                if raw[i + 1] == "*":
                    state = "block"
                    out[i] = out[i + 1] = " "
                    i += 2
                    continue
            if c in "\"'":
                state = c
                i += 1
                continue
            i += 1
        elif state == "line":
            if c == "\n":
                state = None
            else:
                out[i] = " "
            i += 1
        elif state == "block":
            if c == "*" and i + 1 < n and raw[i + 1] == "/":
                out[i] = out[i + 1] = " "
                state = None
                i += 2
                continue
            if c != "\n":
                out[i] = " "
            i += 1
        else:  # inside a string/char literal
            if c == "\\" and i + 1 < n:
                out[i] = " "
                if raw[i + 1] != "\n":
                    out[i + 1] = " "
                i += 2
                continue
            if c == state:
                state = None
            elif c != "\n":
                out[i] = " "
            i += 1
    text = "".join(out)
    # Preprocessor lines (with continuations) blanked wholesale.
    lines = text.split("\n")
    in_pp = False
    for k, line in enumerate(lines):
        stripped = line.lstrip()
        if in_pp or stripped.startswith("#"):
            in_pp = line.rstrip().endswith("\\")
            lines[k] = " " * len(line)
    text = "\n".join(lines)
    # Bracket attributes and GNU attributes are noise to the grammar.
    text = re.sub(r"\[\[[^\]]*\]\]", lambda m: " " * len(m.group(0)), text)
    text = re.sub(r"__attribute__\s*\(\((?:[^()]|\([^()]*\))*\)\)",
                  lambda m: " " * len(m.group(0)), text)
    text = re.sub(r"\balignas\s*\([^)]*\)",
                  lambda m: " " * len(m.group(0)), text)
    return text


class Tok:
    __slots__ = ("text", "pos")

    def __init__(self, text: str, pos: int):
        self.text = text
        self.pos = pos

    def __repr__(self):
        return f"Tok({self.text!r}@{self.pos})"


def tokenize(clean: str) -> list[Tok]:
    return [Tok(m.group(0), m.start()) for m in TOKEN_RE.finditer(clean)]


class FileParser:
    """Parses one already-cleaned translation unit into the model."""

    def __init__(self, relpath: str, raw: str, clean: str, model: Model):
        self.rel = relpath
        self.raw = raw
        self.clean = clean
        self.model = model
        self.toks = tokenize(clean)
        self.line_starts = self._line_starts(raw)

    @staticmethod
    def _line_starts(raw: str) -> list[int]:
        starts = [0]
        for m in re.finditer(r"\n", raw):
            starts.append(m.end())
        return starts

    def line_of(self, pos: int) -> int:
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    # -- token navigation --------------------------------------------

    def match_balanced(self, i: int, open_t: str, close_t: str) -> int:
        """Index just past the token closing the group opened at i."""
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == open_t:
                depth += 1
            elif t == close_t:
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return n

    def skip_template_args(self, i: int) -> int:
        """From a '<' token, index past its matching '>' (tracks nested
        angles and parens; '>>' closes two levels)."""
        depth = 0
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t == "(":
                i = self.match_balanced(i, "(", ")")
                continue
            i += 1
        return n

    # -- parsing -----------------------------------------------------

    def parse(self) -> None:
        self._collect_suppressions()
        self._parse_scope(0, len(self.toks), [], None)

    def _collect_suppressions(self) -> None:
        per_marker: dict[str, set[int]] = {}
        for line_no, line in enumerate(self.raw.split("\n"), start=1):
            for marker, rx in SUPPRESS_RES.items():
                if rx.search(line):
                    per_marker.setdefault(marker, set()).add(line_no)
        if per_marker:
            self.model.suppressions[self.rel] = per_marker

    def _statement_end(self, i: int) -> int:
        """Index past the ';' ending the statement starting at i,
        skipping balanced braces/parens/brackets."""
        n = len(self.toks)
        while i < n:
            t = self.toks[i].text
            if t == ";":
                return i + 1
            if t == "{":
                i = self.match_balanced(i, "{", "}")
                # `struct X { ... } name;` continues; `void f() { ... }`
                # ends here.  Caller-specific; a following ';' is eaten.
                if i < n and self.toks[i].text == ";":
                    return i + 1
                return i
            if t == "(":
                i = self.match_balanced(i, "(", ")")
                continue
            if t == "[":
                i = self.match_balanced(i, "[", "]")
                continue
            i += 1
        return n

    def _parse_scope(self, i: int, end: int, ns: list[str],
                     cls: ClassInfo | None) -> None:
        while i < end:
            t = self.toks[i].text
            if t == ";":
                i += 1
            elif t == "namespace":
                i = self._parse_namespace(i, ns)
            elif t in ("class", "struct") and self._is_class_def(i):
                i = self._parse_class(i, ns, cls)
            elif t == "enum":
                i = self._statement_end(i)
            elif t == "using":
                i = self._parse_using(i, ns, cls)
            elif t == "typedef":
                i = self._parse_typedef(i, ns, cls)
            elif t == "template":
                j = i + 1
                if j < end and self.toks[j].text == "<":
                    j = self.skip_template_args(j)
                i = j
            elif t in ("public", "private", "protected"):
                i += 2 if i + 1 < end and self.toks[i + 1].text == ":" else 1
            elif t == "friend":
                i = self._statement_end(i)
            elif t == "static_assert":
                i = self._statement_end(i)
            elif t == "extern":
                i += 1
            else:
                i = self._parse_decl(i, end, ns, cls)

    def _parse_namespace(self, i: int, ns: list[str]) -> int:
        j = i + 1
        names: list[str] = []
        while j < len(self.toks) and re.match(r"[A-Za-z_]", self.toks[j].text):
            names.append(self.toks[j].text)
            j += 1
            if j < len(self.toks) and self.toks[j].text == "::":
                j += 1
            else:
                break
        if j < len(self.toks) and self.toks[j].text == "{":
            close = self.match_balanced(j, "{", "}")
            self._parse_scope(j + 1, close - 1, ns + names, None)
            return close
        return self._statement_end(i)  # `namespace x = y;` etc.

    def _is_class_def(self, i: int) -> bool:
        """class/struct keyword introduces a definition (not an
        elaborated type or forward declaration)."""
        j = i + 1
        n = len(self.toks)
        # skip name tokens / final / base clause up to '{' or ';' or
        # something that rules a definition out.
        depth = 0
        while j < n:
            t = self.toks[j].text
            if t == "<":
                j = self.skip_template_args(j)
                continue
            if t == "{" and depth == 0:
                return True
            if t in (";", "=", ")", ",") and depth == 0:
                return False
            if t == "(":
                depth += 1
            elif t == ")":
                depth -= 1
            j += 1
        return False

    def _parse_class(self, i: int, ns: list[str],
                     outer: ClassInfo | None) -> int:
        j = i + 1
        name = None
        while j < len(self.toks):
            t = self.toks[j].text
            if re.match(r"[A-Za-z_]\w*$", t) and t != "final":
                name = t
                j += 1
                continue
            break
        # skip base clause up to '{'
        while j < len(self.toks) and self.toks[j].text != "{":
            if self.toks[j].text == "<":
                j = self.skip_template_args(j)
                continue
            j += 1
        if j >= len(self.toks):
            return len(self.toks)
        close = self.match_balanced(j, "{", "}")
        if name is None:
            name = f"<anon@{self.line_of(self.toks[i].pos)}>"
        outer_prefix = (outer.name + "::") if outer else "::".join(ns) + (
            "::" if ns else "")
        qual = outer_prefix + name
        info = self.model.classes.setdefault(
            qual, ClassInfo(name=qual, file=self.rel,
                            line=self.line_of(self.toks[i].pos)))
        self._parse_scope(j + 1, close - 1, ns, info)
        # `};` or `} var;`
        k = close
        while k < len(self.toks) and self.toks[k].text != ";":
            k += 1
        return k + 1

    def _alias_register(self, name: str, target: str, ns: list[str],
                        cls: ClassInfo | None) -> None:
        self.model.aliases[name] = target
        if cls is not None:
            self.model.aliases[cls.name + "::" + name] = target
        elif ns:
            self.model.aliases["::".join(ns) + "::" + name] = target

    def _parse_using(self, i: int, ns: list[str],
                     cls: ClassInfo | None) -> int:
        end = self._statement_end(i)
        toks = self.toks[i + 1:end - 1]
        texts = [t.text for t in toks]
        if "=" in texts:
            eq = texts.index("=")
            name = texts[eq - 1] if eq >= 1 else None
            target = self._spell(toks[eq + 1:])
            if name:
                self._alias_register(name, target, ns, cls)
        return end

    def _parse_typedef(self, i: int, ns: list[str],
                       cls: ClassInfo | None) -> int:
        end = self._statement_end(i)
        toks = self.toks[i + 1:end - 1]
        if len(toks) >= 2 and re.match(r"[A-Za-z_]\w*$", toks[-1].text):
            self._alias_register(toks[-1].text, self._spell(toks[:-1]),
                                 ns, cls)
        return end

    @staticmethod
    def _spell(toks: list[Tok]) -> str:
        out: list[str] = []
        for t in toks:
            if out and re.match(r"\w", t.text) and re.match(r"\w", out[-1][-1]):
                out.append(" ")
            out.append(t.text)
        return "".join(out)

    def _parse_decl(self, i: int, end: int, ns: list[str],
                    cls: ClassInfo | None) -> int:
        """A member/variable declaration, a method declaration, or a
        function definition."""
        annotations: list[Annotation] = []
        start = i
        # Leading annotation macros.
        while i < end:
            t = self.toks[i].text
            if t in ("DTN_SHARD_LOCAL", "DTN_SHARD_SHARED"):
                annotations.append(Annotation(ANNOTATION_MACROS[t]))
                i += 1
            elif t == "DTN_CKPT_SKIP":
                j = i + 1
                reason = ""
                if j < end and self.toks[j].text == "(":
                    close = self.match_balanced(j, "(", ")")
                    lo = self.toks[j].pos + 1
                    hi = self.toks[close - 1].pos
                    reason = self.raw[lo:hi].strip().strip('"')
                    j = close
                annotations.append(Annotation("ckpt_skip", reason))
                i = j
            else:
                break
        if i >= end:
            return end
        is_static = False
        head_start = i
        # Scan forward for the declarator: an identifier chain followed
        # by '(' means function; '=' / '{' / ';' / '[' first means data.
        j = i
        last_ident_chain: list[int] = []
        paren_at = None
        while j < end:
            t = self.toks[j].text
            if t == "static":
                is_static = True
                j += 1
                continue
            if t == "<":
                j = self.skip_template_args(j)
                continue
            if t == "operator":
                # Function for sure: name is operator + symbols.
                k = j + 1
                while k < end and self.toks[k].text != "(":
                    k += 1
                last_ident_chain = list(range(j, k))
                paren_at = k if k < end else None
                break
            if re.match(r"[A-Za-z_~]\w*$", t):
                # Start of an identifier chain (id :: id :: id).
                chain = [j]
                k = j + 1
                while k + 1 < end and self.toks[k].text == "::" and \
                        re.match(r"[A-Za-z_~]", self.toks[k + 1].text):
                    chain += [k, k + 1]
                    k += 2
                if k < end and self.toks[k].text == "<":
                    k2 = self.skip_template_args(k)
                    # template-id: could still be a type; only treat as
                    # declarator if '(' follows (e.g. none here).
                    j = k2
                    last_ident_chain = chain
                    continue
                if k < end and self.toks[k].text == "(":
                    last_ident_chain = chain
                    paren_at = k
                    break
                last_ident_chain = chain
                j = k
                continue
            if t in ("=", "{", ";", "["):
                break
            j += 1
        if paren_at is not None:
            return self._parse_function(start, paren_at, last_ident_chain,
                                        ns, cls, head_start)
        # Data member / variable.
        stmt_end = self._statement_end(start)
        if cls is not None and last_ident_chain:
            name_tok = self.toks[last_ident_chain[-1]]
            name = name_tok.text
            if re.match(r"[A-Za-z_]\w*$", name) and name not in KEYWORDS:
                type_toks = self.toks[head_start:last_ident_chain[0]]
                type_text = self._spell(
                    [t for t in type_toks
                     if t.text not in ("static", "mutable", "constexpr",
                                       "inline")])
                if type_text.strip():
                    member = Member(
                        name=name,
                        type_text=type_text,
                        canonical_type="",  # filled by finalize pass
                        line=self.line_of(name_tok.pos),
                        annotations=annotations,
                        is_static=is_static,
                    )
                    if cls.member(name) is None:
                        cls.members.append(member)
        return stmt_end

    # -- functions ---------------------------------------------------

    def _parse_function(self, start: int, paren_at: int,
                        name_chain: list[int], ns: list[str],
                        cls: ClassInfo | None, head_start: int) -> int:
        n = len(self.toks)
        params_end = self.match_balanced(paren_at, "(", ")")
        # Trailing specifiers.
        j = params_end
        is_const = False
        while j < n:
            t = self.toks[j].text
            if t == "const":
                is_const = True
                j += 1
            elif t in ("noexcept", "override", "final", "&", "&&",
                       "mutable", "constexpr"):
                j += 1
                if j < n and self.toks[j].text == "(":
                    j = self.match_balanced(j, "(", ")")
            elif t == "->":
                j += 1
                while j < n and self.toks[j].text not in ("{", ";", "="):
                    if self.toks[j].text == "<":
                        j = self.skip_template_args(j)
                    else:
                        j += 1
            elif t == "requires":
                while j < n and self.toks[j].text not in ("{", ";"):
                    j += 1
            else:
                break
        name_toks = self.toks[name_chain[0]:name_chain[-1] + 1] \
            if name_chain else []
        name_text = self._spell(name_toks)
        simple = name_text.split("::")[-1].strip()
        ret_toks = self.toks[head_start:name_chain[0]] if name_chain else []
        ret_text = self._spell(
            [t for t in ret_toks
             if t.text not in ("virtual", "static", "inline", "constexpr",
                               "friend", "explicit")])
        # Resolve the owning class.
        owner: ClassInfo | None = cls
        if "::" in name_text:
            qual_prefix = "::".join(name_text.split("::")[:-1])
            owner = self._lookup_class(qual_prefix, ns)
        if j < n and self.toks[j].text == "=":
            # = default / = delete / = 0
            if owner is not None and simple:
                owner.method_const.setdefault(simple, is_const)
            return self._statement_end(start)
        if j < n and self.toks[j].text == ";":
            if owner is not None and simple:
                owner.method_const[simple] = is_const
                if ret_text.strip():
                    self._register_return(owner, simple, ret_text)
            return j + 1
        # Ctor init list.
        if j < n and self.toks[j].text == ":":
            j += 1
            while j < n and self.toks[j].text != "{":
                t = self.toks[j].text
                if t == "(":
                    j = self.match_balanced(j, "(", ")")
                elif t == "{":
                    break
                elif t == "<":
                    j = self.skip_template_args(j)
                else:
                    j += 1
                # An initializer's braces: `member{...}` — consume and
                # continue past commas.
                if j < n and self.toks[j].text == "{" and \
                        j + 1 < n and self._init_brace(j):
                    j = self.match_balanced(j, "{", "}")
        if j >= n or self.toks[j].text != "{":
            return self._statement_end(start)
        body_end = self.match_balanced(j, "{", "}")
        if owner is not None and simple:
            owner.method_const[simple] = is_const
            if ret_text.strip():
                self._register_return(owner, simple, ret_text)
        self._extract_body(simple, name_text, owner, ns, is_const,
                           paren_at, params_end, j, body_end)
        return body_end

    def _init_brace(self, j: int) -> bool:
        """Is the '{' at j a member-initializer brace (followed, after
        matching, by ',' or '{')?"""
        close = self.match_balanced(j, "{", "}")
        return close < len(self.toks) and \
            self.toks[close].text in (",", "{")

    def _register_return(self, owner: ClassInfo, name: str,
                         ret: str) -> None:
        if not hasattr(owner, "method_returns"):
            owner.method_returns = {}  # type: ignore[attr-defined]
        owner.method_returns.setdefault(name, ret)  # type: ignore

    def _lookup_class(self, qual: str, ns: list[str]) -> ClassInfo | None:
        candidates = [qual]
        for k in range(len(ns), 0, -1):
            candidates.append("::".join(ns[:k]) + "::" + qual)
        for c in candidates:
            if c in self.model.classes:
                return self.model.classes[c]
        # suffix match (unique)
        matches = [ci for name, ci in self.model.classes.items()
                   if name.endswith("::" + qual) or name == qual]
        return matches[0] if len(matches) == 1 else None

    # -- body fact extraction ----------------------------------------

    def _extract_body(self, simple: str, name_text: str,
                      owner: ClassInfo | None, ns: list[str],
                      is_const: bool, paren_at: int, params_end: int,
                      body_open: int, body_end: int) -> None:
        body_lo = self.toks[body_open].pos
        body_hi = self.toks[body_end - 1].pos if body_end - 1 < len(self.toks) \
            else len(self.clean)
        body = self.clean[body_lo:body_hi]
        params_text = self.clean[self.toks[paren_at].pos + 1:
                                 self.toks[params_end - 1].pos]
        qual = (owner.name + "::" + simple) if owner else \
            ("::".join(ns) + "::" + simple if ns else simple)
        method = Method(name=simple, qualname=qual,
                        cls=owner.name if owner else None,
                        file=self.rel, line=self.line_of(body_lo),
                        is_const=is_const)
        extractor = BodyExtractor(self, method, owner, params_text,
                                  body, body_lo)
        extractor.run()
        # Overload bodies merge: keep the union of facts so coverage
        # closures see every spelling.
        if qual in self.model.methods:
            prev = self.model.methods[qual]
            prev.accesses += method.accesses
            prev.calls += method.calls
            prev.iterations += method.iterations
            prev.ambient_calls += method.ambient_calls
        else:
            self.model.methods[qual] = method


RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
CALL_RE = re.compile(r"(?<![\w.>])((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)"
                     r"\s*\(")
MEMBER_CALL_RE = re.compile(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")
BEGIN_WALK_RE = re.compile(
    r"((?:[A-Za-z_]\w*(?:\[[^\[\]]*\])?\s*(?:\.|->)\s*)*"
    r"[A-Za-z_]\w*(?:\[[^\[\]]*\])?(?:\s*\(\s*\))?)\s*"
    r"\.\s*((?:c|r|cr)?begin)\s*\(")
LOCAL_DECL_RE_TMPL = (
    r"(?:^|[;{{}}(])\s*(const\s+)?([A-Za-z_][\w:]*(?:\s*<[^;{{}}]*?>)?)"
    r"\s*([&*]*)\s+{name}\s*(=|\{{|\(|;|:|,|\))")


class BodyExtractor:
    """Regex/scan-based fact extraction from one method body."""

    def __init__(self, fp: FileParser, method: Method,
                 owner: ClassInfo | None, params_text: str,
                 body: str, body_base: int):
        self.fp = fp
        self.m = method
        self.owner = owner
        self.body = body
        self.base = body_base
        self.params = self._parse_params(params_text)

    @staticmethod
    def _parse_params(text: str) -> dict[str, str]:
        params: dict[str, str] = {}
        depth = 0
        part = []
        parts: list[str] = []
        for c in text:
            if c in "<([":
                depth += 1
            elif c in ">)]":
                depth -= 1
            if c == "," and depth == 0:
                parts.append("".join(part))
                part = []
            else:
                part.append(c)
        parts.append("".join(part))
        for p in parts:
            p = p.split("=")[0].strip()
            mm = re.match(r"(.+?)\s*[&*]*\s*([A-Za-z_]\w*)$", p, re.S)
            if mm:
                params[mm.group(2)] = mm.group(1).strip()
        return params

    def line(self, off: int) -> int:
        return self.fp.line_of(self.base + off)

    def run(self) -> None:
        self._find_range_fors()
        self._find_begin_walks()
        self._find_calls()
        self._find_member_accesses()

    # -- type resolution ---------------------------------------------

    def canonical(self, type_text: str) -> str:
        return canonicalize(type_text, self.fp.model,
                            self.owner.name if self.owner else None)

    def resolve_ident(self, name: str, before: int) -> str:
        """Type of identifier `name` visible at body offset `before`."""
        if name == "this" and self.owner:
            return self.owner.name
        # Local declaration (last one before the use site).
        rx = re.compile(LOCAL_DECL_RE_TMPL.format(name=re.escape(name)))
        best = None
        for mm in rx.finditer(self.body[:before]):
            best = mm
        if best:
            type_head = best.group(2).strip()
            if type_head == "auto":
                # auto x = expr / auto& x = expr: resolve the initializer.
                if best.group(4) == "=":
                    init_start = best.end()
                    init = self.body[init_start:]
                    stop = len(init)
                    for k, c in enumerate(init):
                        if c in ";,{":
                            stop = k
                            break
                    return self.resolve_expr(init[:stop].strip(), init_start)
                return ""
            if type_head not in TYPE_PREFIX_KEYWORDS and \
                    type_head not in KEYWORDS:
                return type_head
        if name in self.params:
            return self.params[name]
        if self.owner:
            mem = self.owner.member(name)
            if mem:
                return mem.type_text
        return ""

    def resolve_expr(self, expr: str, at: int) -> str:
        """Best-effort type of an expression (for iteration sites)."""
        expr = expr.strip()
        while expr.startswith(("*", "&", "(")) and expr:
            if expr.startswith("(") and expr.endswith(")"):
                expr = expr[1:-1].strip()
            else:
                expr = expr[1:].strip()
        # Split the access chain at top-level . and ->
        segs: list[tuple[str, str]] = []  # (op, segment)
        depth = 0
        cur = []
        op = ""
        i = 0
        while i < len(expr):
            c = expr[i]
            if c in "<([":
                depth += 1
            elif c in ">)]":
                depth -= 1
            if depth == 0 and c == "." and not (
                    i + 1 < len(expr) and expr[i + 1].isdigit()):
                segs.append((op, "".join(cur).strip()))
                cur = []
                op = "."
                i += 1
                continue
            if depth == 0 and expr[i:i + 2] == "->":
                segs.append((op, "".join(cur).strip()))
                cur = []
                op = "->"
                i += 2
                continue
            cur.append(c)
            i += 1
        segs.append((op, "".join(cur).strip()))
        cur_type = ""
        for idx, (sop, seg) in enumerate(segs):
            if not seg:
                return ""
            called = seg.endswith(")")
            name = re.match(r"[A-Za-z_][\w:]*", seg)
            if not name:
                return ""
            nm = name.group(0).split("::")[-1]
            if idx == 0 and not called:
                cur_type = self.resolve_ident(nm, at)
            else:
                base_cls = self._class_of(cur_type, sop) if idx else None
                if idx == 0:
                    # free/own-class call: return type
                    base_cls = self.owner
                if base_cls is None:
                    return ""
                if called:
                    rets = getattr(base_cls, "method_returns", {})
                    cur_type = rets.get(nm, "")
                else:
                    mem = base_cls.member(nm)
                    cur_type = mem.type_text if mem else ""
            if not cur_type:
                return ""
            # Indexing: unwrap element type.
            rest = seg[len(name.group(0)):]
            while "[" in rest:
                cur_type = element_type(self.canonical(cur_type)) or ""
                rest = rest[rest.index("]") + 1:] if "]" in rest else ""
                if not cur_type:
                    return ""
        return cur_type

    def _class_of(self, type_text: str, op: str) -> ClassInfo | None:
        canon = self.canonical(type_text)
        if op == "->":
            inner = smart_pointee(canon)
            if inner:
                canon = inner
        head = type_head(canon)
        if not head:
            return None
        return self.fp._lookup_class(head, [])

    # -- extraction passes -------------------------------------------

    def _find_range_fors(self) -> None:
        for mm in RANGE_FOR_RE.finditer(self.body):
            open_p = mm.end() - 1
            close = self._balanced(open_p)
            if close is None:
                continue
            inner = self.body[open_p + 1:close]
            colon = self._top_level_colon(inner)
            if colon is None:
                continue
            range_expr = inner[colon + 1:].strip()
            at = open_p + 1 + colon + 1
            ctype = self.canonical(self.resolve_expr(range_expr, at))
            self.m.iterations.append(IterationSite(
                expr=range_expr, container_type=ctype,
                line=self.line(mm.start()), form="range-for"))

    def _find_begin_walks(self) -> None:
        for mm in BEGIN_WALK_RE.finditer(self.body):
            recv = mm.group(1)
            ctype = self.canonical(self.resolve_expr(recv, mm.start()))
            self.m.iterations.append(IterationSite(
                expr=recv, container_type=ctype,
                line=self.line(mm.start()), form="begin-walk"))

    def _balanced(self, open_off: int) -> int | None:
        depth = 0
        for k in range(open_off, len(self.body)):
            c = self.body[k]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return k
        return None

    @staticmethod
    def _top_level_colon(inner: str) -> int | None:
        depth = 0
        k = 0
        while k < len(inner):
            c = inner[k]
            if c in "<([{":
                depth += 1
            elif c in ">)]}":
                depth -= 1
            elif c == ":" and depth == 0:
                if inner[k - 1:k] == ":" or inner[k + 1:k + 2] == ":":
                    k += 2
                    continue
                if ";" in inner[:k]:
                    return None  # classic for with ternary etc.
                return k
            k += 1
        return None

    def _find_calls(self) -> None:
        for mm in CALL_RE.finditer(self.body):
            name = re.sub(r"\s+", "", mm.group(1))
            simple = name.split("::")[-1]
            if simple in CONTROL_NAMES or simple in KEYWORDS:
                continue
            line = self.line(mm.start())
            self.m.calls.append(Call(callee=name, line=line))
            self._note_ambient(name, mm.end(), line)
        for mm in MEMBER_CALL_RE.finditer(self.body):
            # `this->foo(` counts as an unqualified own call.
            before = self.body[:mm.start()].rstrip()
            if before.endswith("this"):
                self.m.calls.append(Call(callee=mm.group(1),
                                         line=self.line(mm.start())))
            else:
                self.m.calls.append(Call(callee="<expr>." + mm.group(1),
                                         line=self.line(mm.start())))
        # std::random_device is ambient even as a bare constructor/type.
        for mm in re.finditer(r"\brandom_device\b", self.body):
            self.m.ambient_calls.append(Call(
                callee="std::random_device", line=self.line(mm.start())))

    def _note_ambient(self, name: str, args_at: int, line: int) -> None:
        plain = name.lstrip(":")
        for pat in cfg.AMBIENT_CALLEES:
            psimple = pat.split("::")[-1]
            if plain == pat or plain.endswith("::" + pat) or plain == psimple \
                    or plain.endswith("::" + psimple) and "::" in pat:
                if psimple == "random_device":
                    continue  # handled as a type use
                self.m.ambient_calls.append(Call(callee=plain, line=line))
                return
        if plain == "time" or name in cfg.AMBIENT_TIME_CALLEES or \
                plain.endswith("::time"):
            args = self.body[args_at:args_at + 24].lstrip()
            if name.startswith("::") or name.startswith("std::") or \
                    args.startswith(("NULL", "nullptr", "0", "&")):
                self.m.ambient_calls.append(Call(callee="time", line=line))

    def _find_member_accesses(self) -> None:
        if self.owner is None:
            return
        for mem in self.owner.members:
            rx = re.compile(r"\b" + re.escape(mem.name) + r"\b")
            for mm in rx.finditer(self.body):
                pre = self.body[:mm.start()].rstrip()
                if pre.endswith((".", "->", "::")) and \
                        not pre.endswith("this->"):
                    continue
                kind = self._classify(mm.end(), mm.start())
                self.m.accesses.append(MemberAccess(
                    member=mem.name, kind=kind, line=self.line(mm.start())))

    def _classify(self, after_off: int, start_off: int) -> str:
        pre = self.body[:start_off].rstrip()
        if pre.endswith("this->"):
            pre = pre[:-len("this->")].rstrip()
        if pre.endswith(("++", "--")):
            return "write"
        # Non-const reference binding: `T& x = member...`
        if re.search(r"[A-Za-z_>]\s*&\s*\w+\s*=\s*$", pre) and \
                not re.search(r"\bconst\b[^;{}]*$", pre):
            return "write"
        rest = self.body[after_off:]
        # Chained indexing first.
        while True:
            rest_l = rest.lstrip()
            if rest_l.startswith("["):
                depth = 0
                for k, c in enumerate(rest_l):
                    if c == "[":
                        depth += 1
                    elif c == "]":
                        depth -= 1
                        if depth == 0:
                            rest = rest_l[k + 1:]
                            break
                else:
                    return "read"
                continue
            rest = rest_l
            break
        if re.match(r"(=(?!=)|\+=|-=|\*=|/=|%=|&=|\|=|\^=|<<=|>>=|\+\+|--)",
                    rest):
            return "write"
        call = re.match(r"(?:\.|->)\s*([A-Za-z_]\w*)\s*\(", rest)
        if call:
            meth = call.group(1)
            if meth in cfg.KNOWN_MUTATORS:
                return "write"
            if meth in cfg.KNOWN_CONST_METHODS:
                return "read"
            # Resolve through the repo's own classes when possible.
            mem_name_m = re.match(r"\w+", self.body[start_off:])
            if mem_name_m and self.owner:
                mem = self.owner.member(mem_name_m.group(0))
                if mem:
                    cls = self._class_of(mem.type_text,
                                         "->" if "->" in rest[:4] else ".")
                    if cls and meth in cls.method_const:
                        return "read" if cls.method_const[meth] else "write"
        # `.field = value` — write through a member of a member.
        field = re.match(r"(?:\.|->)\s*[A-Za-z_]\w*\s*"
                         r"(=(?!=)|\+=|-=|\*=|/=|\+\+|--)", rest)
        if field:
            return "write"
        return "read"


# -- type helpers ------------------------------------------------------

def type_head(type_text: str) -> str:
    """Leading (possibly qualified) identifier of a type spelling,
    without template arguments: 'std::vector<int>&' -> 'std::vector'."""
    t = type_text.strip()
    mm = re.match(r"(?:const\s+|volatile\s+)*((?:[A-Za-z_]\w*\s*::\s*)*"
                  r"[A-Za-z_]\w*)", t)
    return re.sub(r"\s+", "", mm.group(1)) if mm else ""


def template_args(type_text: str) -> list[str]:
    t = type_text.strip()
    lo = t.find("<")
    if lo < 0:
        return []
    depth = 0
    args: list[str] = []
    cur: list[str] = []
    for c in t[lo:]:
        if c == "<":
            depth += 1
            if depth == 1:
                continue
        elif c == ">":
            depth -= 1
            if depth == 0:
                break
        if c == "," and depth == 1:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    if cur:
        args.append("".join(cur).strip())
    return args


SMART_HEADS = ("std::optional", "optional", "std::unique_ptr", "unique_ptr",
               "std::shared_ptr", "shared_ptr")
SEQ_HEADS = ("std::vector", "vector", "std::array", "array", "std::span",
             "span", "std::deque", "deque", "ArenaVector", "dtn::ArenaVector")


def smart_pointee(canon: str) -> str | None:
    if type_head(canon) in SMART_HEADS:
        args = template_args(canon)
        return args[0] if args else None
    return None


def element_type(canon: str) -> str | None:
    if type_head(canon) in SEQ_HEADS:
        args = template_args(canon)
        return args[0] if args else None
    return None


def canonicalize(type_text: str, model: Model, cls: str | None) -> str:
    """Expand alias identifiers (transitively, bounded) so 'unordered'
    detection sees through typedef chains."""
    if not type_text:
        return ""
    text = type_text
    for _ in range(8):
        replaced = False

        def sub(mm: re.Match) -> str:
            nonlocal replaced
            name = re.sub(r"\s+", "", mm.group(0))
            candidates = [name]
            if cls:
                candidates.insert(0, cls + "::" + name)
                # enclosing namespaces of the class
                parts = cls.split("::")
                for k in range(len(parts) - 1, 0, -1):
                    candidates.append("::".join(parts[:k]) + "::" + name)
            for c in candidates:
                if c in model.aliases and model.aliases[c] != name:
                    replaced = True
                    return model.aliases[c]
            return mm.group(0)

        new = re.sub(r"(?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*", sub, text)
        if not replaced or new == text:
            text = new
            break
        text = new
    return text


def finalize(model: Model) -> None:
    """Post-pass: canonicalize member types."""
    for ci in model.classes.values():
        for mem in ci.members:
            mem.canonical_type = canonicalize(mem.type_text, model,
                                              ci.name)


def build_model(root: Path, files: list[Path]) -> Model:
    """Parse `files` (paths under `root`) into one Model."""
    model = Model()
    parsers = []
    for path in files:
        raw = path.read_text(encoding="utf-8", errors="replace")
        clean = clean_source(raw)
        rel = path.relative_to(root).as_posix() if path.is_relative_to(root) \
            else path.as_posix()
        model.files.append(rel)
        parsers.append(FileParser(rel, raw, clean, model))
    # Two passes: headers first so out-of-line bodies in .cpp files can
    # resolve their owning classes (and second pass re-runs everything
    # now that every class is known).
    for fp in parsers:
        fp.parse()
    model.methods.clear()
    for fp in parsers:
        fp.parse()
    finalize(model)
    return model
