#include "sim/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "persist/serializer.hpp"
#include "sim/invariant_auditor.hpp"
#include "util/assert.hpp"

namespace dtn::sim {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("fault plan: " + what);
}

void require_probability(double p, const std::string& name) {
  require(p >= 0.0 && p <= 1.0,
          name + " must be in [0, 1], got " + std::to_string(p));
}

void require_rate(double r, const std::string& name) {
  require(r >= 0.0 && r == r,  // also rejects NaN
          name + " must be >= 0, got " + std::to_string(r));
}

/// Reject overlapping [start, end) windows that target the same id.
template <typename Window>
void require_disjoint(std::vector<Window> windows, const std::string& what) {
  std::sort(windows.begin(), windows.end(), [](const Window& a,
                                               const Window& b) {
    if (a.id != b.id) return a.id < b.id;
    return a.start < b.start;
  });
  for (std::size_t i = 1; i < windows.size(); ++i) {
    const Window& prev = windows[i - 1];
    const Window& cur = windows[i];
    if (prev.id == cur.id && cur.start < prev.end) {
      throw std::invalid_argument(
          "fault plan: overlapping " + what + " windows for id " +
          std::to_string(cur.id) + " (window starting at " +
          std::to_string(cur.start) + " begins before the window starting at " +
          std::to_string(prev.start) + " ends at " + std::to_string(prev.end) +
          ")");
    }
  }
}

struct IdWindow {
  std::uint32_t id;
  double start;
  double end;
};

}  // namespace

bool FaultPlan::any() const {
  return !node_crashes.empty() || !station_outages.empty() ||
         node_crash_rate_per_day > 0.0 || station_outage_rate_per_day > 0.0 ||
         transfer_failure_prob > 0.0 || dv_loss_prob > 0.0 ||
         dv_delay_prob > 0.0;
}

void FaultPlan::validate(std::size_t num_nodes,
                         std::size_t num_landmarks) const {
  require_rate(node_crash_rate_per_day, "node_crash_rate_per_day");
  require_rate(station_outage_rate_per_day, "station_outage_rate_per_day");
  require_probability(transfer_failure_prob, "transfer_failure_prob");
  require_probability(crash_buffer_loss, "crash_buffer_loss");
  require_probability(dv_loss_prob, "dv_loss_prob");
  require_probability(dv_delay_prob, "dv_delay_prob");
  require(node_mean_downtime > 0.0, "node_mean_downtime must be > 0, got " +
                                        std::to_string(node_mean_downtime));
  require(station_mean_outage > 0.0, "station_mean_outage must be > 0, got " +
                                         std::to_string(station_mean_outage));
  require(retry_backoff > 0.0,
          "retry_backoff must be > 0, got " + std::to_string(retry_backoff));
  require(retry_backoff_max >= retry_backoff,
          "retry_backoff_max must be >= retry_backoff");

  std::vector<IdWindow> crash_windows;
  crash_windows.reserve(node_crashes.size());
  for (const NodeCrash& c : node_crashes) {
    require(c.node < num_nodes, "scheduled crash names unknown node id " +
                                    std::to_string(c.node) + " (trace has " +
                                    std::to_string(num_nodes) + " nodes)");
    require(c.time >= 0.0, "scheduled crash time must be >= 0");
    require(c.downtime > 0.0, "scheduled crash downtime must be > 0, got " +
                                  std::to_string(c.downtime));
    crash_windows.push_back({c.node, c.time, c.time + c.downtime});
  }
  require_disjoint(std::move(crash_windows), "node-crash");

  std::vector<IdWindow> outage_windows;
  outage_windows.reserve(station_outages.size());
  for (const StationOutage& o : station_outages) {
    require(o.station < num_landmarks,
            "scheduled outage names unknown station id " +
                std::to_string(o.station) + " (trace has " +
                std::to_string(num_landmarks) + " landmarks)");
    require(o.start >= 0.0, "scheduled outage start must be >= 0");
    require(o.end > o.start, "scheduled outage window must have end > start "
                             "(station " + std::to_string(o.station) + ")");
    outage_windows.push_back({o.station, o.start, o.end});
  }
  require_disjoint(std::move(outage_windows), "station-outage");
}

std::optional<FaultPlan> fault_plan_from_cli(const CliOptions& opts) {
  // Every --fault-* key the parser understands; anything else starting
  // with fault- is a typo and throws.
  struct Binding {
    const char* key;
    double FaultPlan::* field;
  };
  static constexpr Binding kBindings[] = {
      {"fault-node-crash-rate", &FaultPlan::node_crash_rate_per_day},
      {"fault-node-downtime", &FaultPlan::node_mean_downtime},
      {"fault-crash-loss", &FaultPlan::crash_buffer_loss},
      {"fault-station-outage-rate", &FaultPlan::station_outage_rate_per_day},
      {"fault-station-outage-duration", &FaultPlan::station_mean_outage},
      {"fault-transfer-fail", &FaultPlan::transfer_failure_prob},
      {"fault-retry-backoff", &FaultPlan::retry_backoff},
      {"fault-retry-backoff-max", &FaultPlan::retry_backoff_max},
      {"fault-dv-loss", &FaultPlan::dv_loss_prob},
      {"fault-dv-delay", &FaultPlan::dv_delay_prob},
  };
  FaultPlan plan;
  bool any_key = false;
  for (const Binding& b : kBindings) {
    if (!opts.has(b.key)) continue;
    any_key = true;
    plan.*(b.field) = opts.get_double(b.key, plan.*(b.field));
  }
  if (opts.has("fault-seed")) {
    any_key = true;
    plan.seed = static_cast<std::uint64_t>(opts.get_int(
        "fault-seed", static_cast<std::int64_t>(plan.seed)));
  }
  for (const std::string& key : opts.keys_with_prefix("fault-")) {
    const bool known =
        key == "fault-seed" ||
        std::any_of(std::begin(kBindings), std::end(kBindings),
                    [&](const Binding& b) { return key == b.key; });
    if (!known) {
      throw std::invalid_argument("unknown fault option --" + key +
                                  " (see docs/fault-injection.md)");
    }
  }
  if (!any_key) return std::nullopt;
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t num_nodes,
                             std::size_t num_landmarks)
    : plan_(plan),
      node_down_(num_nodes, 0),
      station_down_(num_landmarks, 0) {
  plan_.validate(num_nodes, num_landmarks);
  // Per-family streams: a family that draws more (e.g. many transfer
  // attempts) never shifts another family's sequence.
  Rng base(plan_.seed);
  crash_rng_ = base.split(1);
  outage_rng_ = base.split(2);
  transfer_rng_ = base.split(3);
  control_rng_ = base.split(4);
}

void FaultInjector::mark_node_down(std::uint32_t node) {
  DTN_ASSERT(node < node_down_.size());
  // Double crash: the plan crashed a node that is already down.
  DTN_ASSERT(node_down_[node] == 0);
  node_down_[node] = 1;
  ++nodes_down_count_;
}

void FaultInjector::mark_node_up(std::uint32_t node) {
  DTN_ASSERT(node < node_down_.size());
  DTN_ASSERT(node_down_[node] != 0);
  node_down_[node] = 0;
  --nodes_down_count_;
}

void FaultInjector::mark_station_down(std::uint32_t station) {
  DTN_ASSERT(station < station_down_.size());
  // Overlapping outages: validated away for schedules, impossible for
  // the stochastic process (the next outage is drawn at recovery).
  DTN_ASSERT(station_down_[station] == 0);
  station_down_[station] = 1;
  ++stations_down_count_;
}

void FaultInjector::mark_station_up(std::uint32_t station) {
  DTN_ASSERT(station < station_down_.size());
  DTN_ASSERT(station_down_[station] != 0);
  station_down_[station] = 0;
  --stations_down_count_;
}

bool FaultInjector::draw_transfer_failure() {
  if (plan_.transfer_failure_prob <= 0.0) return false;
  if (plan_.transfer_failure_prob >= 1.0) return true;
  return transfer_rng_.bernoulli(plan_.transfer_failure_prob);
}

bool FaultInjector::draw_crash_packet_loss() {
  if (plan_.crash_buffer_loss >= 1.0) return true;
  if (plan_.crash_buffer_loss <= 0.0) return false;
  return crash_rng_.bernoulli(plan_.crash_buffer_loss);
}

bool FaultInjector::draw_dv_loss() {
  if (plan_.dv_loss_prob <= 0.0) return false;
  if (plan_.dv_loss_prob >= 1.0) return true;
  return control_rng_.bernoulli(plan_.dv_loss_prob);
}

bool FaultInjector::draw_dv_delay() {
  if (plan_.dv_delay_prob <= 0.0) return false;
  if (plan_.dv_delay_prob >= 1.0) return true;
  return control_rng_.bernoulli(plan_.dv_delay_prob);
}

double FaultInjector::draw_crash_gap() {
  DTN_ASSERT(plan_.node_crash_rate_per_day > 0.0);
  return crash_rng_.exponential(kFaultDaySeconds /
                                plan_.node_crash_rate_per_day);
}

double FaultInjector::draw_downtime() {
  return crash_rng_.exponential(plan_.node_mean_downtime);
}

double FaultInjector::draw_outage_gap() {
  DTN_ASSERT(plan_.station_outage_rate_per_day > 0.0);
  return outage_rng_.exponential(kFaultDaySeconds /
                                 plan_.station_outage_rate_per_day);
}

double FaultInjector::draw_outage_duration() {
  return outage_rng_.exponential(plan_.station_mean_outage);
}

double FaultInjector::retry_backoff(std::uint32_t attempts) const {
  DTN_ASSERT(attempts >= 1);
  double backoff = plan_.retry_backoff;
  for (std::uint32_t i = 1; i < attempts && backoff < plan_.retry_backoff_max;
       ++i) {
    backoff *= 2.0;
  }
  return std::min(backoff, plan_.retry_backoff_max);
}

void FaultInjector::audit(AuditReport& report) const {
  std::size_t nodes = 0;
  for (const std::uint8_t d : node_down_) nodes += d != 0 ? 1 : 0;
  if (nodes != nodes_down_count_) {
    report.fail("node down-count " + std::to_string(nodes_down_count_) +
                " disagrees with bitset popcount " + std::to_string(nodes));
  }
  std::size_t stations = 0;
  for (const std::uint8_t d : station_down_) stations += d != 0 ? 1 : 0;
  if (stations != stations_down_count_) {
    report.fail("station down-count " + std::to_string(stations_down_count_) +
                " disagrees with bitset popcount " + std::to_string(stations));
  }
}

namespace {

void write_rng(persist::Writer& w, const dtn::Rng& rng) {
  for (const std::uint64_t word : rng.state()) w.u64(word);
}

void read_rng(persist::Reader& r, dtn::Rng& rng) {
  std::array<std::uint64_t, 4> state;
  for (std::uint64_t& word : state) word = r.u64();
  rng.set_state(state);
}

}  // namespace

void FaultInjector::save(persist::Writer& w) const {
  write_rng(w, crash_rng_);
  write_rng(w, outage_rng_);
  write_rng(w, transfer_rng_);
  write_rng(w, control_rng_);
  w.u64(node_down_.size());
  for (const std::uint8_t d : node_down_) w.u8(d);
  w.u64(station_down_.size());
  for (const std::uint8_t d : station_down_) w.u8(d);
  w.u64(nodes_down_count_);
  w.u64(stations_down_count_);
}

void FaultInjector::load(persist::Reader& r) {
  read_rng(r, crash_rng_);
  read_rng(r, outage_rng_);
  read_rng(r, transfer_rng_);
  read_rng(r, control_rng_);
  if (r.u64() != node_down_.size()) {
    throw persist::FormatError("checkpoint fault-injector node count mismatch");
  }
  for (std::uint8_t& d : node_down_) d = r.u8();
  if (r.u64() != station_down_.size()) {
    throw persist::FormatError(
        "checkpoint fault-injector station count mismatch");
  }
  for (std::uint8_t& d : station_down_) d = r.u8();
  nodes_down_count_ = static_cast<std::size_t>(r.u64());
  stations_down_count_ = static_cast<std::size_t>(r.u64());
}

}  // namespace dtn::sim
