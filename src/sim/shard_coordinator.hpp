// Shard planning for the parallel replay engine.
//
// DTN-FLOW's structure makes the landmark partition a natural unit of
// parallelism: nodes only exchange data through landmarks, so events at
// disjoint landmark sets touch disjoint state except when a node
// migrates between subareas.  This header provides the pieces the
// sharded `Network::run_sharded` path composes:
//
//   * `EventKey` — the (time, seq) total order every event already
//     carries.  Serial replay executes events in exactly this order;
//     sharded replay preserves it per shard and across every
//     inter-shard dependency.
//   * `assign_shards` — greedy balanced partition of landmarks into
//     shards, weighted by per-landmark event counts.
//   * `plan_barriers` — computes the boundary epochs: every time-unit
//     tick is a mandatory global barrier, and additional synchronization
//     points are inserted (greedy interval stabbing) so that every
//     cross-shard node migration has its departure and arrival separated
//     by a barrier.
//   * `current_shard` / `ScopedShard` — the thread-local shard ordinal
//     event handlers use to select their per-shard accumulator slot.
//
// See docs/parallel-engine.md for the full determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/annotations.hpp"

namespace dtn::sim {

/// The global execution order of the replay engine: events are totally
/// ordered by (time, seq); seq is unique per event.
struct EventKey {
  double time = 0.0;
  std::uint64_t seq = 0;

  friend constexpr bool operator==(EventKey a, EventKey b) {
    return a.time == b.time && a.seq == b.seq;
  }
  friend constexpr bool operator<(EventKey a, EventKey b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
  friend constexpr bool operator<=(EventKey a, EventKey b) {
    return a == b || a < b;
  }
};

/// A node migration whose departure and arrival land on different
/// shards; the barrier plan must separate the two with an epoch
/// boundary.  `dep < arr` always holds (seq ordering).
struct MigrationEdge {
  EventKey dep;
  EventKey arr;
};

enum class EpochKind : std::uint8_t {
  kSync,  ///< pure synchronization point (covers migration edges)
  kUnit,  ///< time-unit boundary: coordinator runs TTL sweep + router tick
  kFinal, ///< end of replay
};

/// One boundary epoch: shards process every owned event with key < `key`,
/// then the coordinator runs its barrier phase.
struct EpochBound {
  EventKey key;
  EpochKind kind = EpochKind::kSync;
  std::size_t unit_index = 0;  ///< valid when kind == kUnit
};

/// Partition `weights.size()` landmarks into `num_shards` shards,
/// balancing total weight (longest-processing-time greedy: heaviest
/// landmark first to the least-loaded shard).  Deterministic: ties break
/// toward the lower landmark id / lower shard id.  Returns the shard id
/// of each landmark.  Requires num_shards >= 1.
[[nodiscard]] std::vector<std::uint32_t> assign_shards(
    std::span<const std::uint64_t> weights, std::size_t num_shards);

/// Build the sorted epoch list for one sharded run.
///
/// `unit_bounds` are the mandatory barriers (one per scheduled time-unit
/// sweep, in ascending key order; `unit_bounds[i]` gets unit_index i+1 to
/// match the 1-based unit numbering of the serial scheduler).  `edges`
/// are the cross-shard migrations (any order).  `final_key` must be
/// strictly greater than every event key; it becomes the closing kFinal
/// bound.  Additional kSync bounds are inserted greedily so every edge
/// has a bound in (dep, arr] — stabbing at the latest legal point
/// (the arrival's own key) minimizes the number of extra barriers.
[[nodiscard]] std::vector<EpochBound> plan_barriers(
    std::vector<MigrationEdge> edges, std::span<const EventKey> unit_bounds,
    EventKey final_key);

/// Shard ordinal of the calling thread (0 outside a sharded epoch, so
/// serial runs and coordinator barrier phases share slot 0).
[[nodiscard]] std::size_t current_shard();

/// RAII guard: sets the calling thread's shard ordinal for the duration
/// of one shard's epoch slice.
class ScopedShard {
 public:
  explicit ScopedShard(std::size_t shard);
  ~ScopedShard();
  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;

 private:
  /// Saved ordinal of the guard's own thread (restored on destruction);
  /// never visible to any other shard.
  DTN_SHARD_LOCAL std::size_t prev_;
};

}  // namespace dtn::sim
