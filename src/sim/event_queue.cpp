#include "sim/event_queue.hpp"

#include <algorithm>
#include <string>

#include "sim/invariant_auditor.hpp"

namespace dtn::sim {

void EventQueue::grow_if_full() {
  // Explicit doubling with a generous floor: one reserve per doubling
  // instead of relying on the library's growth policy, and never a
  // per-event allocation.  Out of line: it runs once per doubling and
  // keeping it here keeps schedule()'s inlined body small.
  if (keys_.size() < keys_.capacity()) return;
  const std::size_t want = std::max<std::size_t>(64, keys_.capacity() * 2);
  keys_.reserve(want);
  pay_.reserve(want);
}

void EventQueue::audit(AuditReport& report) const {
  const std::size_t n = keys_.size();
  if (pay_.size() != n) {
    report.fail("key/payload arrays disagree in size: " +
                std::to_string(n) + " keys vs " + std::to_string(pay_.size()) +
                " payloads");
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (keys_[i].time_bits != std::bit_cast<std::uint64_t>(pay_[i].time) ||
        keys_[i].seq != pay_[i].seq) {
      report.fail("slot " + std::to_string(i) +
                  ": packed key does not match its payload (time " +
                  std::to_string(std::bit_cast<double>(keys_[i].time_bits)) +
                  " vs " + std::to_string(pay_[i].time) + ", seq " +
                  std::to_string(keys_[i].seq) + " vs " +
                  std::to_string(pay_[i].seq) + ")");
    }
    if (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (less(keys_[i], keys_[parent])) {
        report.fail("heap property violated at slot " + std::to_string(i) +
                    ": child (t=" +
                    std::to_string(std::bit_cast<double>(keys_[i].time_bits)) +
                    ", seq=" + std::to_string(keys_[i].seq) +
                    ") orders before parent slot " + std::to_string(parent));
      }
    }
  }
  if (n > 0) {
    const double head = std::bit_cast<double>(keys_[0].time_bits);
    if (head < last_popped_) {
      report.fail("pending minimum t=" + std::to_string(head) +
                  " is earlier than the last popped event t=" +
                  std::to_string(last_popped_));
    }
  }
}

void EventQueue::debug_corrupt_key_for_test(std::size_t index,
                                            double new_time) {
  DTN_ASSERT(index < keys_.size());
  keys_[index].time_bits = std::bit_cast<std::uint64_t>(new_time);
  pay_[index].time = new_time;
}

}  // namespace dtn::sim
