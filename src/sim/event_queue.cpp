#include "sim/event_queue.hpp"

#include <algorithm>
#include <string>

#include "persist/serializer.hpp"
#include "sim/invariant_auditor.hpp"

namespace dtn::sim {

void EventQueue::grow_if_full() {
  // Explicit doubling with a generous floor: one reserve per doubling
  // instead of relying on the library's growth policy, and never a
  // per-event allocation.  Out of line: it runs once per doubling and
  // keeping it here keeps schedule()'s inlined body small.
  if (keys_.size() < keys_.capacity()) return;
  const std::size_t want = std::max<std::size_t>(64, keys_.capacity() * 2);
  keys_.reserve(want);
  pay_.reserve(want);
}

void EventQueue::save(persist::Writer& w) const {
  // Canonical image: key-sorted, not the live heap array.  A sorted
  // array is a valid min-heap, pop order is a pure function of the key
  // multiset (keys are unique), and the sharded engine writes its
  // barrier snapshots in exactly this order — so a serial snapshot and
  // a sharded-barrier snapshot of the same simulation point are
  // byte-identical.
  std::vector<Event> sorted(pay_.begin(), pay_.end());
  std::sort(sorted.begin(), sorted.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  save_image(w, sorted.data(), sorted.size(), next_seq_, popped_,
             last_popped_);
}

void EventQueue::save_image(persist::Writer& w, const Event* events,
                            std::size_t count, std::uint64_t next_seq,
                            std::uint64_t popped, double last_popped) {
  w.u64(next_seq);
  w.u64(popped);
  w.f64(last_popped);
  w.u64(count);
  for (std::size_t i = 0; i < count; ++i) {
    const Event& ev = events[i];
    w.f64(ev.time);
    w.u64(ev.seq);
    w.u8(static_cast<std::uint8_t>(ev.kind));
    w.u32(ev.a);
    w.u32(ev.b);
  }
}

void EventQueue::load(persist::Reader& r) {
  DTN_ASSERT(keys_.empty() && next_seq_ == 0 && popped_ == 0);
  next_seq_ = r.u64();
  popped_ = r.u64();
  last_popped_ = r.f64();
  const auto count = static_cast<std::size_t>(r.u64());
  keys_.reserve(count);
  pay_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Event ev;
    ev.time = r.f64();
    ev.seq = r.u64();
    ev.kind = static_cast<EventKind>(r.u8());
    ev.a = r.u32();
    ev.b = r.u32();
    if (!(ev.time >= 0.0) || ev.kind > EventKind::kStationUp ||
        ev.kind == EventKind::kCallback) {
      throw persist::FormatError(
          "checkpoint queue image holds an invalid event");
    }
    keys_.push_back(Key{std::bit_cast<std::uint64_t>(ev.time), ev.seq});
    pay_.push_back(ev);
  }
  // The image was written in heap array order (or key-sorted, which is
  // also a valid heap); verify rather than trust the file.
  for (std::size_t i = 1; i < keys_.size(); ++i) {
    if (less(keys_[i], keys_[(i - 1) / 2])) {
      throw persist::FormatError(
          "checkpoint queue image is not in heap order");
    }
  }
}

void EventQueue::audit(AuditReport& report) const {
  const std::size_t n = keys_.size();
  if (pay_.size() != n) {
    report.fail("key/payload arrays disagree in size: " +
                std::to_string(n) + " keys vs " + std::to_string(pay_.size()) +
                " payloads");
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (keys_[i].time_bits != std::bit_cast<std::uint64_t>(pay_[i].time) ||
        keys_[i].seq != pay_[i].seq) {
      report.fail("slot " + std::to_string(i) +
                  ": packed key does not match its payload (time " +
                  std::to_string(std::bit_cast<double>(keys_[i].time_bits)) +
                  " vs " + std::to_string(pay_[i].time) + ", seq " +
                  std::to_string(keys_[i].seq) + " vs " +
                  std::to_string(pay_[i].seq) + ")");
    }
    if (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (less(keys_[i], keys_[parent])) {
        report.fail("heap property violated at slot " + std::to_string(i) +
                    ": child (t=" +
                    std::to_string(std::bit_cast<double>(keys_[i].time_bits)) +
                    ", seq=" + std::to_string(keys_[i].seq) +
                    ") orders before parent slot " + std::to_string(parent));
      }
    }
  }
  if (n > 0) {
    const double head = std::bit_cast<double>(keys_[0].time_bits);
    if (head < last_popped_) {
      report.fail("pending minimum t=" + std::to_string(head) +
                  " is earlier than the last popped event t=" +
                  std::to_string(last_popped_));
    }
  }
}

void EventQueue::debug_corrupt_key_for_test(std::size_t index,
                                            double new_time) {
  DTN_ASSERT(index < keys_.size());
  keys_[index].time_bits = std::bit_cast<std::uint64_t>(new_time);
  pay_[index].time = new_time;
}

}  // namespace dtn::sim
