#include "sim/event_queue.hpp"

#include <utility>

namespace dtn::sim {

void EventQueue::schedule(double t, EventFn fn) {
  DTN_ASSERT(fn);
  DTN_ASSERT(t >= last_popped_);
  heap_.push(Entry{t, next_seq_++, std::move(fn)});
}

double EventQueue::next_time() const {
  DTN_ASSERT(!heap_.empty());
  return heap_.top().time;
}

double EventQueue::run_next() {
  DTN_ASSERT(!heap_.empty());
  // priority_queue::top() is const; move out via const_cast is the
  // standard idiom but we copy the small Entry header and move the
  // callable explicitly for clarity.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  last_popped_ = entry.time;
  ++executed_;
  entry.fn();
  return entry.time;
}

}  // namespace dtn::sim
