#include "sim/event_queue.hpp"

#include <algorithm>

namespace dtn::sim {

void EventQueue::grow_if_full() {
  // Explicit doubling with a generous floor: one reserve per doubling
  // instead of relying on the library's growth policy, and never a
  // per-event allocation.  Out of line: it runs once per doubling and
  // keeping it here keeps schedule()'s inlined body small.
  if (keys_.size() < keys_.capacity()) return;
  const std::size_t want = std::max<std::size_t>(64, keys_.capacity() * 2);
  keys_.reserve(want);
  pay_.reserve(want);
}

}  // namespace dtn::sim
