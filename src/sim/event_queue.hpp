// Discrete-event queue.
//
// A min-heap of (time, sequence, callback).  The monotonically
// increasing sequence number breaks time ties in insertion order, which
// makes simulations fully deterministic — heaps alone are not stable,
// and tie order matters (e.g. a node arrival and a packet-generation
// event at the same instant).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace dtn::sim {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t` (must be >= the time of the last
  /// popped event; scheduling in the past is a logic error).
  void schedule(double t, EventFn fn);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; queue must be non-empty.
  [[nodiscard]] double next_time() const;

  /// Pop and run the earliest event; returns its time.
  double run_next();

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  double last_popped_ = -1e300;
};

}  // namespace dtn::sim
