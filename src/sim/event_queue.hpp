// Discrete-event queue.
//
// A binary min-heap ordered by (time, sequence).  The monotonically
// increasing sequence number breaks time ties in insertion order, which
// makes simulations fully deterministic — heaps alone are not stable,
// and tie order matters (e.g. a node arrival and a packet-generation
// event at the same instant).
//
// Layout: the heap is split into a key array (16-byte packed
// (time, seq) keys — the only thing sift comparisons touch) and a
// parallel payload array holding the full `Event`.  Event times are
// non-negative, so the IEEE-754 bit pattern of `time` reinterpreted as
// an unsigned 64-bit integer orders exactly like the double; a key
// comparison is two integer compares and never branches on floating
// point.  `pop()` uses the bottom-up ("Wegener") sift-down: descend the
// min-child path to a leaf without testing the displaced item, then
// climb back up — most displaced items are leaf-sized, so this roughly
// halves the comparisons of the classic sift-down.  Everything hot is
// inline in this header; the queue is the innermost loop of the replay
// engine and an out-of-line call per event costs ~30% throughput.
//
// Scheduling contract: an event's time must be >= the time of the last
// popped event.  Scheduling *exactly at* the current time is legal and
// common (an event scheduling a follow-up "now"); the follow-up runs
// after every already-queued event of the same time because its
// sequence number is larger.  Scheduling strictly in the past is a
// logic error and asserts, as is a negative or NaN time (the packed
// key encoding requires time >= 0).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/event.hpp"
#include "util/annotations.hpp"
#include "util/assert.hpp"

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::sim {

class AuditReport;

class EventQueue {
 public:
  /// Schedule `ev` at `ev.time`; the queue assigns `ev.seq`.  Returns
  /// the assigned sequence number.
  std::uint64_t schedule(Event ev) {
    // >= (not >): scheduling at exactly the current time is fine — the
    // new event's larger seq orders it after everything already popped.
    // Only strictly-past times are logic errors.  time >= 0.0 also
    // rejects NaN and normalises -0.0 (compares equal to +0.0, enters
    // the branch) so the packed key order matches the double order.
    DTN_ASSERT(ev.time >= last_popped_);
    DTN_ASSERT(ev.time >= 0.0);
    if (ev.time == 0.0) ev.time = 0.0;  // -0.0 -> +0.0
    ev.seq = next_seq_++;
    grow_if_full();
    const Key key{std::bit_cast<std::uint64_t>(ev.time), ev.seq};
    std::size_t i = keys_.size();
    keys_.push_back(key);
    pay_.push_back(ev);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!less(key, keys_[parent])) break;
      keys_[i] = keys_[parent];
      pay_[i] = pay_[parent];
      i = parent;
    }
    keys_[i] = key;
    pay_[i] = ev;
    return ev.seq;
  }

  /// Pop the earliest event.  The caller dispatches it.
  Event pop() {
    DTN_ASSERT(!keys_.empty());
    const Event top = pay_[0];
    const Key last_key = keys_.back();
    const Event last_pay = pay_.back();
    keys_.pop_back();
    pay_.pop_back();
    const std::size_t n = keys_.size();
    if (n > 0) {
      // Bottom-up sift-down: walk the min-child path to a leaf, then
      // climb back up until the displaced last element fits.
      std::size_t i = 0;
      while (true) {
        const std::size_t left = 2 * i + 1;
        if (left >= n) break;
        std::size_t child = left;
        if (left + 1 < n && less(keys_[left + 1], keys_[left])) {
          child = left + 1;
        }
        keys_[i] = keys_[child];
        pay_[i] = pay_[child];
        i = child;
      }
      while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!less(last_key, keys_[parent])) break;
        keys_[i] = keys_[parent];
        pay_[i] = pay_[parent];
        i = parent;
      }
      keys_[i] = last_key;
      pay_[i] = last_pay;
    }
    last_popped_ = top.time;
    ++popped_;
    return top;
  }

  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }

  /// Time of the earliest pending event; queue must be non-empty.
  [[nodiscard]] double next_time() const {
    DTN_ASSERT(!keys_.empty());
    return std::bit_cast<double>(keys_.front().time_bits);
  }
  /// Sequence of the earliest pending event; queue must be non-empty.
  [[nodiscard]] std::uint64_t next_seq() const {
    DTN_ASSERT(!keys_.empty());
    return keys_.front().seq;
  }

  /// Number of events popped so far.
  [[nodiscard]] std::uint64_t popped() const { return popped_; }

  /// Time of the last popped event (-inf before the first pop).  New
  /// events must not be scheduled before it.
  [[nodiscard]] double last_popped() const { return last_popped_; }

  /// Reserve the seq range [0, floor) for an external EventSource whose
  /// events must order *before* same-time queue events (the old engine
  /// scheduled the whole trace first, so trace events always carried
  /// the lowest sequence numbers; the lazy cursor keeps that order).
  /// Must be called before the first schedule().
  void set_seq_floor(std::uint64_t floor) {
    DTN_ASSERT(next_seq_ == 0 && keys_.empty());
    next_seq_ = floor;
  }

  /// Pre-size the heap storage (events, not bytes).
  void reserve(std::size_t n) {
    keys_.reserve(n);
    pay_.reserve(n);
  }
  [[nodiscard]] std::size_t capacity() const { return keys_.capacity(); }

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Serialize the queue image: scheduling counters plus every pending
  /// event in heap array order.  Out of line — never on the hot path.
  void save(persist::Writer& w) const;
  /// The same byte layout from an externally assembled pending set (the
  /// sharded engine snapshots at unit barriers where the queue lives in
  /// per-shard pieces).  `events` must be arranged so the array is a
  /// valid min-heap in (time, seq) order; a (time, seq)-sorted array
  /// always qualifies.
  static void save_image(persist::Writer& w, const Event* events,
                         std::size_t count, std::uint64_t next_seq,
                         std::uint64_t popped, double last_popped);
  /// Restore into a fresh queue (asserts nothing was scheduled yet);
  /// keys are rebuilt from the payloads.  Throws persist::FormatError on
  /// a malformed image.
  void load(persist::Reader& r);

  // -- invariant auditing (debug tooling, see invariant_auditor.hpp) ----
  /// Validate the packed-key heap from scratch: the heap property over
  /// every parent/child pair, key/payload (time, seq) agreement, and
  /// that the pending minimum is not earlier than the last popped
  /// event.  Out of line — never on the hot path.
  void audit(AuditReport& report) const;

  /// Test-only fault injection for the auditor's negative tests:
  /// overwrite the packed key *and* payload time of one heap slot,
  /// bypassing every scheduling check (the bug class this simulates is
  /// a sift that wrote the wrong slot).
  void debug_corrupt_key_for_test(std::size_t index, double new_time);

 private:
  /// 16-byte heap key: (time bit pattern, seq).  For times >= 0 the
  /// integer order of the bit pattern equals the double order.
  struct Key {
    std::uint64_t time_bits;
    std::uint64_t seq;
  };
  static bool less(const Key& x, const Key& y) {
    return x.time_bits < y.time_bits ||
           (x.time_bits == y.time_bits && x.seq < y.seq);
  }

  void grow_if_full();  // cold path, out of line

  // save() serializes the events of pay_ (each key's (time, seq) rides
  // inside its Event); load() re-derives the key array from them.
  DTN_CKPT_SKIP("key mirror of pay_; the image carries (time, seq) per event")
  std::vector<Key> keys_;   // binary min-heap, comparison-hot
  std::vector<Event> pay_;  // parallel payloads, moved alongside
  std::uint64_t next_seq_ = 0;
  std::uint64_t popped_ = 0;
  double last_popped_ = -std::numeric_limits<double>::infinity();
};

}  // namespace dtn::sim
