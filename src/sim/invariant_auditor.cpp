#include "sim/invariant_auditor.hpp"

#include <cstdio>
#include <cstdlib>

namespace dtn::sim {

void AuditReport::fail(std::string detail) {
  failures_.push_back({context_, std::move(detail)});
}

std::string AuditReport::to_string() const {
  std::string out;
  for (const AuditFailure& f : failures_) {
    out += "  [";
    out += f.check;
    out += "] ";
    out += f.detail;
    out += '\n';
  }
  return out;
}

InvariantAuditor::Config InvariantAuditor::config_from_env() {
  Config cfg;
  // getenv is fine determinism-wise: it only gates *whether* the audit
  // runs, never what the simulation computes.
  if (const char* on = std::getenv("DTN_AUDIT")) {
    cfg.enabled = on[0] != '\0' && on[0] != '0';
  }
  if (const char* period = std::getenv("DTN_AUDIT_PERIOD")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(period, &end, 10);
    if (end != period && v > 0) {
      cfg.period_events = v;
      cfg.enabled = true;
    }
  }
  return cfg;
}

void InvariantAuditor::register_check(std::string name, Check fn) {
  checks_.emplace_back(std::move(name), std::move(fn));
}

AuditReport InvariantAuditor::audit_now() {
  AuditReport report;
  for (const auto& [name, fn] : checks_) {
    report.set_context(name);
    fn(report);
  }
  ++audits_run_;
  if (!report.ok() && cfg_.abort_on_failure) {
    std::fprintf(stderr,
                 "InvariantAuditor: %zu invariant violation(s) detected:\n%s",
                 report.failures().size(), report.to_string().c_str());
    std::abort();
  }
  return report;
}

}  // namespace dtn::sim
