#include "sim/shard_coordinator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dtn::sim {

namespace {
thread_local std::size_t t_current_shard = 0;
}  // namespace

std::size_t current_shard() { return t_current_shard; }

ScopedShard::ScopedShard(std::size_t shard) : prev_(t_current_shard) {
  t_current_shard = shard;
}

ScopedShard::~ScopedShard() { t_current_shard = prev_; }

std::vector<std::uint32_t> assign_shards(
    std::span<const std::uint64_t> weights, std::size_t num_shards) {
  DTN_ASSERT(num_shards >= 1);
  const std::size_t n = weights.size();
  std::vector<std::uint32_t> shard_of(n, 0);
  if (num_shards == 1 || n == 0) return shard_of;

  // Heaviest landmark first; stable on the id so equal weights keep a
  // deterministic order.
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return weights[a] > weights[b];
                   });

  std::vector<std::uint64_t> load(num_shards, 0);
  for (const std::uint32_t l : order) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < num_shards; ++s) {
      if (load[s] < load[best]) best = s;
    }
    shard_of[l] = static_cast<std::uint32_t>(best);
    load[best] += weights[l];
  }
  return shard_of;
}

std::vector<EpochBound> plan_barriers(std::vector<MigrationEdge> edges,
                                      std::span<const EventKey> unit_bounds,
                                      EventKey final_key) {
  for (std::size_t i = 1; i < unit_bounds.size(); ++i) {
    DTN_ASSERT(unit_bounds[i - 1] < unit_bounds[i]);
  }

  // Greedy interval stabbing: walk edges by ascending arrival and stab
  // at the arrival key (the latest point of (dep, arr]) whenever no
  // earlier stab or mandatory unit bound already covers the edge.
  // Because edges are processed in arr order, every previously chosen
  // stab is <= the current arr, so "covered" reduces to stab > dep.
  std::sort(edges.begin(), edges.end(),
            [](const MigrationEdge& a, const MigrationEdge& b) {
              if (!(a.arr == b.arr)) return a.arr < b.arr;
              return a.dep < b.dep;
            });

  std::vector<EventKey> stabs;
  bool have_stab = false;
  EventKey latest_stab{};
  for (const MigrationEdge& e : edges) {
    DTN_ASSERT(e.dep < e.arr);
    if (have_stab && e.dep < latest_stab) continue;  // stab in (dep, arr]
    // A mandatory unit bound inside (dep, arr] also separates the pair.
    const auto it = std::upper_bound(unit_bounds.begin(), unit_bounds.end(),
                                     e.dep);
    if (it != unit_bounds.end() && *it <= e.arr) continue;
    stabs.push_back(e.arr);
    latest_stab = e.arr;
    have_stab = true;
  }

  // Merge unit bounds and stabs into one ascending epoch list.  Keys
  // never collide across the two sets (stabs are arrival-event keys,
  // unit bounds are sweep-event keys, and seqs are unique), but a
  // duplicate would be harmless anyway — an empty epoch.
  std::vector<EpochBound> epochs;
  epochs.reserve(unit_bounds.size() + stabs.size() + 1);
  std::size_t ui = 0, si = 0;
  while (ui < unit_bounds.size() || si < stabs.size()) {
    if (si >= stabs.size() ||
        (ui < unit_bounds.size() && unit_bounds[ui] < stabs[si])) {
      epochs.push_back({unit_bounds[ui], EpochKind::kUnit, ui + 1});
      ++ui;
    } else {
      epochs.push_back({stabs[si], EpochKind::kSync, 0});
      ++si;
    }
  }
  DTN_ASSERT(epochs.empty() || epochs.back().key < final_key);
  epochs.push_back({final_key, EpochKind::kFinal, 0});
  return epochs;
}

}  // namespace dtn::sim
