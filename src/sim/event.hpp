// Typed simulation events.
//
// The hot path of a trace replay executes millions of events; making
// each one a 32-byte POD (instead of a heap-allocated std::function
// closure) keeps the event heap flat in memory and allocation-free.
// The sim layer defines the *layout* and the total order; the meaning
// of each kind is owned by the engine that dispatches them (net::
// Network for the trace-replay kinds, the Simulator itself for
// kCallback).
#pragma once

#include <cstdint>

namespace dtn::sim {

enum class EventKind : std::uint8_t {
  /// A node associates with a landmark (payload: a = node, b = visit
  /// index into the trace's per-node visit list).
  kArrival,
  /// A node disassociates from a landmark (payload as kArrival).
  kDeparture,
  /// Poisson packet-generation tick of one landmark (a = landmark).
  kPacketGen,
  /// Deterministic manual-workload packet (a = index into the
  /// workload's manual_packets list).
  kManualPacket,
  /// TTL expiry sweep over all live packets.
  kTtlSweep,
  /// Measurement time-unit boundary (a = unit ordinal, 1-based).
  kTimeUnitTick,
  /// Opaque closure held in the Simulator's callback pool
  /// (a = pool slot).  Cold path: tests, examples, ad-hoc scheduling.
  kCallback,
  // -- fault events (scheduled only when a FaultPlan is attached and
  //    non-empty; see sim/fault_injector.hpp) --------------------------
  /// A node crashes (a = node; b = scheduled-crash index + 1, or 0 for
  /// a stochastic crash whose downtime is drawn at dispatch).
  kNodeCrash,
  /// A crashed node reboots (a = node).
  kNodeReboot,
  /// A landmark station goes down (a = station; b as kNodeCrash).
  kStationDown,
  /// A downed station recovers (a = station).
  kStationUp,
};

/// One scheduled occurrence.  `seq` breaks time ties: the queue pops in
/// (time, seq) order and every producer assigns strictly increasing
/// sequence numbers, which makes replay fully deterministic — binary
/// heaps alone are not stable, and tie order matters (e.g. a node
/// arrival and a packet generation at the same instant).
struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  EventKind kind = EventKind::kCallback;
  std::uint32_t a = 0;  ///< primary payload (see EventKind)
  std::uint32_t b = 0;  ///< secondary payload (see EventKind)
};

/// Strict total order: earlier time first, then lower sequence.
[[nodiscard]] constexpr bool happens_before(const Event& x, const Event& y) {
  if (x.time != y.time) return x.time < y.time;
  return x.seq < y.seq;
}

/// A lazy, time-sorted stream of events merged into the simulation loop
/// alongside the event queue (e.g. trace::TraceCursor).  The source's
/// events must be produced in strictly increasing (time, seq) order and
/// their seq values must never collide with queue-assigned ones — the
/// engine reserves a disjoint range via EventQueue::set_seq_floor.
class EventSource {
 public:
  virtual ~EventSource() = default;
  /// True when no events remain.
  [[nodiscard]] virtual bool exhausted() const = 0;
  /// Earliest pending event; only valid while !exhausted().
  [[nodiscard]] virtual const Event& peek() const = 0;
  /// Consume the event returned by peek().
  virtual void advance() = 0;
};

}  // namespace dtn::sim
