// Dynamic simulation-invariant auditor (docs/static-analysis.md).
//
// PRs 1-2 replaced safe structures with sharp ones on every hot path:
// packed bit-cast heap keys, interned Markov context keys with an
// incrementally maintained argmax, epoch-stamped carrier-score caches,
// dirty-column incremental routing-table recompute.  Each of those
// carries an invariant that, if silently violated, corrupts simulation
// results without crashing.  This subsystem makes the invariants
// *checkable at runtime*: subsystems register named check callbacks
// (each re-derives its invariant from scratch and compares against the
// incrementally maintained state), and the auditor runs the full set
// periodically during a replay and/or on demand.
//
// Gating: auditing is off by default and costs one predicted branch per
// event.  It is enabled per run (net::WorkloadConfig::audit_period_events)
// or globally via the environment:
//
//   DTN_AUDIT=1          enable periodic audits (default period below)
//   DTN_AUDIT_PERIOD=N   audit every N dispatched events
//
// On failure the default is to print every violated invariant and
// abort (the DTN_ASSERT policy: a corrupt simulation must not keep
// producing numbers).  Tests construct the auditor with
// abort_on_failure = false and assert on the report instead — that is
// how the seeded-corruption negative tests prove the auditor actually
// detects each bug class.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace dtn::sim {

/// One violated invariant: which registered check saw it, and where.
struct AuditFailure {
  std::string check;
  std::string detail;
};

/// Failure collector handed to every check.  Checks call `fail()` for
/// each violation they find and keep going — a report lists every
/// broken invariant, not just the first.
class AuditReport {
 public:
  /// Record a violation, attributed to the current check context.
  void fail(std::string detail);

  /// Name the check whose failures are being recorded (the auditor sets
  /// this before invoking each registered check; standalone callers of
  /// a subsystem's audit() may set it themselves).
  void set_context(std::string check_name) { context_ = std::move(check_name); }

  [[nodiscard]] bool ok() const { return failures_.empty(); }
  [[nodiscard]] const std::vector<AuditFailure>& failures() const {
    return failures_;
  }

  /// Multi-line human-readable failure list (empty string when ok).
  [[nodiscard]] std::string to_string() const;

 private:
  std::string context_ = "(unattributed)";
  std::vector<AuditFailure> failures_;
};

class InvariantAuditor {
 public:
  using Check = std::function<void(AuditReport&)>;

  struct Config {
    bool enabled = false;
    /// Dispatched events between periodic audits.
    std::uint64_t period_events = 65536;
    /// Print + abort on any failure (the production stance).  Negative
    /// tests set false and inspect the report.
    bool abort_on_failure = true;
  };

  /// Config from DTN_AUDIT / DTN_AUDIT_PERIOD (see header comment);
  /// defaults (disabled) when unset.
  static Config config_from_env();

  InvariantAuditor() : InvariantAuditor(config_from_env()) {}
  explicit InvariantAuditor(Config cfg) : cfg_(cfg) {}

  /// Register a named check.  Names appear in failure reports; keep
  /// them stable ("event_queue.heap", "network.present_sets", ...).
  void register_check(std::string name, Check fn);

  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  void set_enabled(bool on) { cfg_.enabled = on; }

  /// Hot-path hook: call once per dispatched event.  Cheap when
  /// disabled (one branch); every `period_events`-th call runs a full
  /// audit.
  void on_event() {
    if (!cfg_.enabled) return;
    if (++events_since_audit_ < cfg_.period_events) return;
    events_since_audit_ = 0;
    audit_now();
  }

  /// Run every registered check now, regardless of gating.  Aborts on
  /// failure when configured to; otherwise the caller inspects the
  /// returned report.
  AuditReport audit_now();

  [[nodiscard]] std::size_t checks_registered() const {
    return checks_.size();
  }
  [[nodiscard]] std::uint64_t audits_run() const { return audits_run_; }

 private:
  Config cfg_;
  std::vector<std::pair<std::string, Check>> checks_;
  std::uint64_t events_since_audit_ = 0;
  std::uint64_t audits_run_ = 0;
};

}  // namespace dtn::sim
