// Deterministic fault injection for trace replays (docs/fault-injection.md).
//
// A `FaultPlan` describes every fault a run may suffer: node crashes and
// reboots (with configurable buffer loss), landmark-station outages and
// recoveries, mid-contact transfer failures with retry/backoff, and
// control-plane faults (loss or deferral of the distance vectors that
// ride on mobile nodes).  Faults come from two sources that compose:
//
//  * scheduled entries — exact (who, when, how long) tuples, the
//    reproducible-experiment and unit-test workhorse;
//  * stochastic rates — per-day Poisson crash/outage processes and
//    per-attempt failure probabilities, for sweeps.
//
// Determinism contract: the injector draws from its own RNG streams
// (split from `FaultPlan::seed`, never from the workload RNG), draws
// only when the corresponding probability/rate is actually positive,
// and schedules events only for faults that exist.  A plan with all
// probabilities zero and no scheduled entries therefore leaves the
// replay bit-identical to a run with no plan at all — the golden
// determinism tests pin this down.
//
// The injector also owns the authoritative up/down state ("outage
// sets"): the engine asks `node_down` / `station_down` before any radio
// operation, and the invariant auditor cross-checks the bitsets against
// the counters and the router's own degraded-mode view.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/annotations.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::sim {

class AuditReport;

/// Seconds per day, for the per-day stochastic fault rates.  (The sim
/// layer sits below trace/, so trace::kDay is not visible here; the
/// value is fixed by the trace schema anyway.)
inline constexpr double kFaultDaySeconds = 86400.0;

struct FaultPlan {
  /// Seed of the injector's own RNG streams; independent of the
  /// workload seed so attaching a plan never perturbs the workload.
  std::uint64_t seed = 0x0fau;

  // -- (a) node crashes / reboots ---------------------------------------
  /// A scheduled crash: the node dies at `time` (losing buffered
  /// packets per `crash_buffer_loss`) and reboots `downtime` later.
  struct NodeCrash {
    std::uint32_t node = 0;
    double time = 0.0;
    double downtime = 6.0 * 3600.0;
  };
  std::vector<NodeCrash> node_crashes;
  /// Stochastic crash process: per-node Poisson rate (crashes/day);
  /// 0 disables.  The next crash is drawn after each reboot, so a node
  /// never crashes while already down.
  double node_crash_rate_per_day = 0.0;
  /// Mean of the exponential downtime of stochastic crashes (seconds).
  double node_mean_downtime = 6.0 * 3600.0;
  /// Fraction of the crashed node's buffered packets that are lost
  /// (each packet draws independently; 1 = lose everything, 0 = the
  /// buffer survives the reboot).
  double crash_buffer_loss = 1.0;

  // -- (b) landmark-station outages -------------------------------------
  /// A scheduled outage: the station is down during [start, end).
  /// Station storage is durable (the station is down, not wiped).
  struct StationOutage {
    std::uint32_t station = 0;
    double start = 0.0;
    double end = 0.0;
  };
  std::vector<StationOutage> station_outages;
  /// Stochastic outage process: per-station Poisson rate (outages/day);
  /// the next outage is drawn at each recovery.  0 disables.
  double station_outage_rate_per_day = 0.0;
  /// Mean of the exponential outage duration (seconds).
  double station_mean_outage = 12.0 * 3600.0;

  // -- (c) mid-contact transfer failures --------------------------------
  /// Probability that any single transfer attempt breaks mid-contact
  /// (the packet stays with the sender and enters retry/backoff).
  double transfer_failure_prob = 0.0;
  /// First retry happens this many seconds after the failed attempt;
  /// subsequent failures back off exponentially (x2) up to the cap.
  double retry_backoff = 600.0;
  double retry_backoff_max = 6.0 * 3600.0;

  // -- (d) control-plane faults -----------------------------------------
  /// Probability that a carried distance vector is lost in transit
  /// (drawn once per snapshot picked up at departure).
  double dv_loss_prob = 0.0;
  /// Probability that a carried distance vector is *not* delivered at
  /// the next landmark but carried onward (delayed DV propagation;
  /// drawn per arrival while the vector is still carried).
  double dv_delay_prob = 0.0;

  /// True when any fault can ever fire (any schedule non-empty or any
  /// rate/probability positive).
  [[nodiscard]] bool any() const;

  /// Reject malformed plans with std::invalid_argument: negative or
  /// out-of-range rates/probabilities, non-positive durations, unknown
  /// node/station ids, and overlapping scheduled windows for the same
  /// node or station.
  void validate(std::size_t num_nodes, std::size_t num_landmarks) const;
};

/// Build a FaultPlan from `--fault-*` options (see docs/fault-injection.md
/// for the flag list); returns nullopt when no --fault-* option is
/// present.  Unknown --fault-* keys throw std::invalid_argument so typos
/// in sweep scripts fail loudly.
[[nodiscard]] std::optional<FaultPlan> fault_plan_from_cli(
    const CliOptions& opts);

/// Runtime state machine of one replay's faults: owns the RNG streams,
/// the node/station down bitsets and the draw helpers.  The engine
/// (net::Network) drives it from fault events and consults it before
/// every radio operation.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, std::size_t num_nodes,
                std::size_t num_landmarks);

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  // -- outage sets ------------------------------------------------------
  [[nodiscard]] bool node_down(std::uint32_t node) const {
    return node_down_[node] != 0;
  }
  [[nodiscard]] bool station_down(std::uint32_t station) const {
    return station_down_[station] != 0;
  }
  [[nodiscard]] std::size_t nodes_down() const { return nodes_down_count_; }
  [[nodiscard]] std::size_t stations_down() const {
    return stations_down_count_;
  }

  /// Crash bookkeeping; a double crash of an already-down node is a
  /// plan bug and aborts via DTN_ASSERT (stochastic crashes cannot
  /// double-fire by construction; scheduled ones are validated).
  void mark_node_down(std::uint32_t node);
  void mark_node_up(std::uint32_t node);
  void mark_station_down(std::uint32_t station);
  void mark_station_up(std::uint32_t station);

  // -- deterministic draws ----------------------------------------------
  // Each family draws from its own split stream, and only when its
  // probability/rate is positive — zero-probability faults consume no
  // randomness (the bit-identical-when-empty contract).
  [[nodiscard]] bool transfer_faults_enabled() const {
    return plan_.transfer_failure_prob > 0.0;
  }
  [[nodiscard]] bool draw_transfer_failure();
  /// Does this buffered packet die in the crash?  Degenerate fractions
  /// (<= 0, >= 1) are answered without drawing.
  [[nodiscard]] bool draw_crash_packet_loss();
  [[nodiscard]] bool draw_dv_loss();
  [[nodiscard]] bool draw_dv_delay();
  /// Gap to the next stochastic crash of one node (exponential;
  /// requires node_crash_rate_per_day > 0).
  [[nodiscard]] double draw_crash_gap();
  [[nodiscard]] double draw_downtime();
  /// Gap to the next stochastic outage of one station (requires
  /// station_outage_rate_per_day > 0).
  [[nodiscard]] double draw_outage_gap();
  [[nodiscard]] double draw_outage_duration();

  /// Backoff before retry number `attempts` (1-based): retry_backoff x
  /// 2^(attempts-1), capped at retry_backoff_max.
  [[nodiscard]] double retry_backoff(std::uint32_t attempts) const;

  /// Invariant audit: down counts must equal the bitsets' popcounts.
  void audit(AuditReport& report) const;

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Serialize the runtime state: the four RNG streams mid-sequence and
  /// the outage sets.  The plan itself is configuration — the engine
  /// fingerprints it instead of storing it, so a resume must be handed
  /// the same plan it crashed under.
  void save(persist::Writer& w) const;
  void load(persist::Reader& r);

 private:
  DTN_CKPT_SKIP("construction-time plan; resume rebuilds the injector from it")
  FaultPlan plan_;
  Rng crash_rng_;
  Rng outage_rng_;
  Rng transfer_rng_;
  Rng control_rng_;
  std::vector<std::uint8_t> node_down_;
  std::vector<std::uint8_t> station_down_;
  std::size_t nodes_down_count_ = 0;
  std::size_t stations_down_count_ = 0;
};

}  // namespace dtn::sim
