#include "sim/simulator.hpp"

namespace dtn::sim {

void Simulator::run_until(double end_time) {
  while (!queue_.empty() && queue_.next_time() <= end_time) {
    now_ = queue_.next_time();
    queue_.run_next();
  }
  now_ = end_time;
}

void Simulator::run() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.run_next();
  }
}

}  // namespace dtn::sim
