#include "sim/simulator.hpp"

#include <utility>

#include "persist/serializer.hpp"

namespace dtn::sim {

void Simulator::at(double t, EventFn fn) {
  DTN_ASSERT(fn);
  DTN_ASSERT(t >= now_);
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back(std::move(fn));
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(fn);
  }
  Event ev;
  ev.time = t;
  ev.kind = EventKind::kCallback;
  ev.a = slot;
  queue_.schedule(ev);
}

void Simulator::dispatch(const Event& ev) {
  if (ev.kind == EventKind::kCallback) {
    // Free the slot before running: the closure may schedule again and
    // is allowed to reuse it.
    EventFn fn = std::move(slots_[ev.a]);
    slots_[ev.a] = nullptr;
    free_slots_.push_back(ev.a);
    fn();
    return;
  }
  DTN_ASSERT(dispatch_ != nullptr);
  dispatch_(dispatch_ctx_, ev);
}

void Simulator::run_until(double end_time, EventSource* source) {
  run_until_with(end_time, source);
}

bool Simulator::run_until(double end_time, EventSource* source, StepFn step,
                          void* step_ctx) {
  DTN_ASSERT(step != nullptr);
  // A separate copy of the merge loop: the unstepped overload stays
  // branch-free on the hot path, and this one pays one indirect call
  // per event only when checkpointing is enabled.
  while (true) {
    const bool queue_ready = !queue_.empty() && queue_.next_time() <= end_time;
    const bool source_ready = source != nullptr && !source->exhausted() &&
                              source->peek().time <= end_time;
    if (!queue_ready && !source_ready) break;
    bool take_source = source_ready;
    if (queue_ready && source_ready) {
      const Event& head = source->peek();
      take_source = head.time < queue_.next_time() ||
                    (head.time == queue_.next_time() &&
                     head.seq < queue_.next_seq());
    }
    Event ev;
    if (take_source) {
      ev = source->peek();
      source->advance();
    } else {
      ev = queue_.pop();
    }
    now_ = ev.time;
    ++executed_;
    dispatch(ev);
    if (!step(step_ctx)) return false;
  }
  now_ = end_time;
  return true;
}

void Simulator::save(persist::Writer& w) const {
  // Live kCallback closures cannot round-trip through a byte stream;
  // the replay engine never has any pending at a snapshot point.
  DTN_ASSERT(slots_.size() == free_slots_.size());
  w.f64(now_);
  w.u64(executed_);
  queue_.save(w);
}

void Simulator::load(persist::Reader& r) {
  DTN_ASSERT(executed_ == 0 && queue_.empty());
  now_ = r.f64();
  executed_ = r.u64();
  queue_.load(r);
}

void Simulator::run() {
  while (!queue_.empty()) {
    const Event ev = queue_.pop();
    now_ = ev.time;
    ++executed_;
    dispatch(ev);
  }
}

}  // namespace dtn::sim
