// Simulation clock + scheduler facade over the event queue.
#pragma once

#include "sim/event_queue.hpp"

namespace dtn::sim {

class Simulator {
 public:
  /// Current simulation time (time of the event being processed, or the
  /// initial time before the first event).
  [[nodiscard]] double now() const { return now_; }

  /// Schedule at an absolute time (>= now).
  void at(double t, EventFn fn) { queue_.schedule(t, std::move(fn)); }

  /// Schedule `delay` seconds from now (delay >= 0).
  void after(double delay, EventFn fn) {
    DTN_ASSERT(delay >= 0.0);
    queue_.schedule(now_ + delay, std::move(fn));
  }

  /// Run until the queue empties or the clock passes `end_time`.
  /// Events scheduled exactly at `end_time` still run.
  void run_until(double end_time);

  /// Run everything.
  void run();

  [[nodiscard]] std::uint64_t events_executed() const {
    return queue_.executed();
  }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

 private:
  EventQueue queue_;
  double now_ = 0.0;
};

}  // namespace dtn::sim
