// Simulation clock + scheduler facade over the typed event queue.
//
// Typed events (the hot path) are dispatched through a single
// function-pointer dispatcher installed by the owning engine; opaque
// closures (the cold path: tests, examples, ad-hoc scheduling) ride as
// kCallback events whose payload indexes a slab pool of std::function
// slots.  Freed slots are recycled through a free list, so steady-state
// closure scheduling does not allocate either.
//
// `run_until` optionally merges an EventSource (e.g. the lazy trace
// cursor) with the queue: at each step the earlier of (queue head,
// source head) in (time, seq) order executes.  This is what lets a
// month-scale trace replay run without materializing millions of
// upfront events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event.hpp"
#include "sim/event_queue.hpp"
#include "util/annotations.hpp"

namespace dtn::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  /// Typed-event dispatcher; receives every non-kCallback event.
  using DispatchFn = void (*)(void* ctx, const Event& ev);

  /// Install the typed dispatcher.  Required before any typed event
  /// fires; kCallback-only simulations (closures) don't need one.
  void set_dispatcher(DispatchFn fn, void* ctx) {
    dispatch_ = fn;
    dispatch_ctx_ = ctx;
  }

  /// Reserve seqs [0, floor) for an EventSource (see EventQueue).
  void set_seq_floor(std::uint64_t floor) { queue_.set_seq_floor(floor); }

  /// Current simulation time (time of the event being processed, or the
  /// initial time before the first event).
  [[nodiscard]] double now() const { return now_; }

  /// Schedule a typed event at absolute time `t` (>= now).
  void schedule(double t, Event ev) {
    DTN_ASSERT(t >= now_);
    ev.time = t;
    queue_.schedule(ev);
  }

  /// Schedule a closure at an absolute time (>= now).
  void at(double t, EventFn fn);

  /// Schedule a closure `delay` seconds from now (delay >= 0).
  void after(double delay, EventFn fn) {
    DTN_ASSERT(delay >= 0.0);
    at(now_ + delay, std::move(fn));
  }

  /// Run until the queue (and `source`, when given) empties or the
  /// clock passes `end_time`.  Events exactly at `end_time` still run.
  void run_until(double end_time) { run_until(end_time, nullptr); }
  void run_until(double end_time, EventSource* source);

  /// Statically-typed run_until: `Source` is the concrete EventSource
  /// type, so the per-event exhausted()/peek()/advance() calls
  /// devirtualize (and the header-inline ones inline) instead of going
  /// through the vtable ~4 times per event.  The merge order is the
  /// virtual overload's, line for line — the replay engine drives its
  /// final trace::TraceCursor through this.
  template <class Source>
  void run_until_with(double end_time, Source* source) {
    while (true) {
      const bool queue_ready =
          !queue_.empty() && queue_.next_time() <= end_time;
      const bool source_ready = source != nullptr && !source->exhausted() &&
                                source->peek().time <= end_time;
      if (!queue_ready && !source_ready) break;
      bool take_source = source_ready;
      if (queue_ready && source_ready) {
        const Event& head = source->peek();
        take_source = head.time < queue_.next_time() ||
                      (head.time == queue_.next_time() &&
                       head.seq < queue_.next_seq());
      }
      if (take_source) {
        const Event ev = source->peek();
        source->advance();
        now_ = ev.time;
        ++executed_;
        dispatch(ev);
      } else {
        const Event ev = queue_.pop();
        now_ = ev.time;
        ++executed_;
        dispatch(ev);
      }
    }
    now_ = end_time;
  }

  /// Observer called after each dispatched event in the stepped
  /// run_until overload; returning false suspends the loop (the clock
  /// stays at the last event's time instead of jumping to `end_time`).
  /// This is how the checkpoint subsystem snapshots mid-run and models
  /// a deterministic kill (docs/checkpointing.md).
  using StepFn = bool (*)(void* ctx);

  /// As run_until(end_time, source), with `step` invoked after every
  /// event.  Returns true when the loop ran to completion (clock set to
  /// `end_time`), false when `step` suspended it.
  bool run_until(double end_time, EventSource* source, StepFn step,
                 void* step_ctx);

  /// Run everything in the queue (no external source).
  void run();

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Account one event a dispatcher consumed directly from the active
  /// EventSource (batched contact dispatch drains same-time runs inside
  /// one dispatch): keeps events_executed() — and therefore checkpoint
  /// images — identical to unbatched replay.  Only legal from inside a
  /// dispatch at the current time, so the clock needs no update.
  void absorb_external_event() { ++executed_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Pre-size the queue storage.
  void reserve(std::size_t n) { queue_.reserve(n); }

  /// Read access to the underlying queue for invariant audits
  /// (EventQueue::audit) and introspection.
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Serialize clock + counters + the pending queue image.  kCallback
  /// events hold closures and cannot be serialized; asserts none are
  /// live (the replay engine schedules none).
  void save(persist::Writer& w) const;
  /// Restore into a simulator that has not run yet (the dispatcher is
  /// reinstalled by the owner, not serialized).
  void load(persist::Reader& r);

 private:
  void dispatch(const Event& ev);

  EventQueue queue_;
  DTN_CKPT_SKIP("dispatch hook; the owner re-registers it before resume")
  DispatchFn dispatch_ = nullptr;
  DTN_CKPT_SKIP("dispatch hook; the owner re-registers it before resume")
  void* dispatch_ctx_ = nullptr;
  // Slab pool of closure slots for kCallback events.
  DTN_CKPT_SKIP("no live callbacks at snapshot points (asserted in save)")
  std::vector<EventFn> slots_;
  DTN_CKPT_SKIP("no live callbacks at snapshot points (asserted in save)")
  std::vector<std::uint32_t> free_slots_;
  double now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace dtn::sim
