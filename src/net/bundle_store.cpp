#include "net/bundle_store.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "persist/serializer.hpp"
#include "sim/invariant_auditor.hpp"
#include "util/assert.hpp"

namespace dtn::net {

namespace {

// Each spill record is a standalone persist::Writer image (magic,
// schema version, one "spill" section, end marker) appended to the
// per-station file, so a torn tail is detectable by the same CRC/
// framing checks checkpoints use (docs/bounded-store.md).
constexpr std::string_view kSpillSection = "spill";

}  // namespace

const char* to_string(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kReject:
      return "reject";
    case EvictionPolicy::kDropOldest:
      return "drop-oldest";
    case EvictionPolicy::kDropLargestExpectedDelay:
      return "drop-largest-expected-delay";
    case EvictionPolicy::kTtlExpire:
      return "ttl-expire";
  }
  return "?";
}

bool parse_eviction_policy(std::string_view s, EvictionPolicy* out) {
  for (const EvictionPolicy p :
       {EvictionPolicy::kReject, EvictionPolicy::kDropOldest,
        EvictionPolicy::kDropLargestExpectedDelay,
        EvictionPolicy::kTtlExpire}) {
    if (s == to_string(p)) {
      *out = p;
      return true;
    }
  }
  return false;
}

void BundleStore::configure(std::uint64_t capacity_kb, EvictionPolicy policy,
                            bool dedup, std::string spill_path) {
  DTN_ASSERT(core_.empty() && spill_.empty());
  core_ = Buffer(capacity_kb);
  policy_ = policy;
  dedup_ = dedup;
  spill_path_ = std::move(spill_path);
  // Spilling into an unbounded store can never trigger; keep the
  // backend off so audits need not special-case it.
  if (core_.unbounded()) spill_path_.clear();
  if (spill_enabled()) spill_reset();
}

bool BundleStore::contains(PacketId pid) const {
  return core_.contains(pid) || spilled(pid);
}

bool BundleStore::spilled(PacketId pid) const {
  for (const SpillRecord& rec : spill_) {
    if (rec.pid == pid) return true;
  }
  return false;
}

std::vector<PacketId> BundleStore::spilled_ids() const {
  std::vector<PacketId> ids;
  ids.reserve(spill_.size());
  for (const SpillRecord& rec : spill_) ids.push_back(rec.pid);
  return ids;
}

bool BundleStore::add(PacketId pid, std::uint32_t size_kb) {
  AdmitRequest req;
  req.pid = pid;
  req.size_kb = size_kb;
  req.logical = pid;
  req.check_dedup = false;
  return admit(req, nullptr) == Admit::kStored;
}

void BundleStore::note_seen(PacketId logical) {
  if (!dedup_ || logical == kNoPacket) return;
  const auto it = std::lower_bound(seen_.begin(), seen_.end(), logical);
  if (it == seen_.end() || *it != logical) seen_.insert(it, logical);
}

bool BundleStore::seen_logical(PacketId logical) const {
  if (!dedup_) return false;
  return std::binary_search(seen_.begin(), seen_.end(), logical);
}

void BundleStore::place(PacketId pid, const Entry& e) {
  const bool ok = core_.add(pid, e.size_kb);
  DTN_ASSERT(ok);
  meta_.push_back(e);
  if (e.retention != Retention::kNone) ++retained_;
  note_seen(e.logical);
}

Admit BundleStore::admit(const AdmitRequest& req,
                         std::vector<PacketId>* evicted_out) {
  DTN_ASSERT(req.pid != kNoPacket);
  DTN_ASSERT(!contains(req.pid));
  if (req.check_dedup && seen_logical(req.logical)) {
    return Admit::kRefusedDuplicate;
  }
  Entry e;
  e.admit_seq = next_admit_seq_;
  e.expected_delay = req.expected_delay;
  e.deadline = req.deadline;
  e.logical = req.logical;
  e.size_kb = req.size_kb;
  e.retention = req.retention;
  if (!core_.has_space(req.size_kb)) {
    if (req.allow_spill && spill_enabled()) {
      ++next_admit_seq_;
      spill_out(req.pid, e);
      return Admit::kSpilled;
    }
    if (policy_ == EvictionPolicy::kReject ||
        !evict_for(req.size_kb, evicted_out)) {
      return Admit::kRefusedCapacity;
    }
  }
  ++next_admit_seq_;
  place(req.pid, e);
  return Admit::kStored;
}

std::size_t BundleStore::pick_victim() const {
  // Deterministic victim selection: a pure function of entry metadata
  // with admission-sequence tie-breaks, so reruns and shards agree.
  std::size_t best = meta_.size();
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    const Entry& e = meta_[i];
    if (e.retention != Retention::kNone) continue;
    if (best == meta_.size()) {
      best = i;
      continue;
    }
    const Entry& b = meta_[best];
    bool better = false;
    switch (policy_) {
      case EvictionPolicy::kReject:
        break;
      case EvictionPolicy::kDropOldest:
        better = e.admit_seq < b.admit_seq;
        break;
      case EvictionPolicy::kDropLargestExpectedDelay:
        better = e.expected_delay > b.expected_delay ||
                 (e.expected_delay == b.expected_delay &&
                  e.admit_seq < b.admit_seq);
        break;
      case EvictionPolicy::kTtlExpire:
        better = e.deadline < b.deadline ||
                 (e.deadline == b.deadline && e.admit_seq < b.admit_seq);
        break;
    }
    if (better) best = i;
  }
  return best;
}

bool BundleStore::evict_for(std::uint32_t size_kb,
                            std::vector<PacketId>* evicted_out) {
  DTN_ASSERT(evicted_out != nullptr);
  // Feasibility first: refuse without touching the store unless evicting
  // every retention-free bundle would actually make room.  Evicting some
  // victims and then refusing anyway would lose bundles for nothing.
  if (!core_.unbounded()) {
    if (size_kb > core_.capacity_kb()) return false;
    std::uint64_t evictable = 0;
    for (const Entry& e : meta_) {
      if (e.retention == Retention::kNone) evictable += e.size_kb;
    }
    DTN_ASSERT(core_.used_kb() >= evictable);
    if (size_kb > core_.capacity_kb() - (core_.used_kb() - evictable)) {
      return false;
    }
  }
  while (!core_.has_space(size_kb)) {
    const std::size_t victim = pick_victim();
    DTN_ASSERT(victim != meta_.size());  // guaranteed by the pre-check
    const PacketId pid = core_.packets()[victim];
    evicted_out->push_back(pid);
    remove(pid, meta_[victim].size_kb, nullptr);
  }
  return true;
}

void BundleStore::remove(PacketId pid, std::uint32_t size_kb,
                         std::vector<PacketId>* recalled_out) {
  const std::size_t i = core_.index_of(pid);
  if (i != core_.count()) {
    DTN_ASSERT(meta_[i].size_kb == size_kb);
    if (meta_[i].retention != Retention::kNone) {
      DTN_ASSERT(retained_ > 0);
      --retained_;
    }
    core_.remove_at(i, size_kb);
    // Mirror the Buffer's swap-erase so the slab stays parallel.
    meta_[i] = meta_.back();
    meta_.pop_back();
    recall_while_fits(recalled_out);
    return;
  }
  // Spilled bundle (TTL sweeps reach them through the packet table).
  // Stable erase: the FIFO recall order of the others is part of the
  // replay contract.
  for (std::size_t s = 0; s < spill_.size(); ++s) {
    if (spill_[s].pid != pid) continue;
    DTN_ASSERT(spill_[s].entry.size_kb == size_kb);
    DTN_ASSERT(spilled_kb_ >= size_kb);
    spilled_kb_ -= size_kb;
    spill_.erase(spill_.begin() + static_cast<std::ptrdiff_t>(s));
    return;
  }
  DTN_ASSERT(false && "remove: packet not in store");
}

void BundleStore::set_retention_if_held(PacketId pid, Retention r) {
  const std::size_t i = core_.index_of(pid);
  if (i == core_.count()) return;
  Entry& e = meta_[i];
  if (e.retention != Retention::kNone) --retained_;
  e.retention = r;
  if (e.retention != Retention::kNone) ++retained_;
}

Retention BundleStore::retention(PacketId pid) const {
  const std::size_t i = core_.index_of(pid);
  return i == core_.count() ? Retention::kNone : meta_[i].retention;
}

// -- spill backend -----------------------------------------------------

void BundleStore::spill_reset() {
  std::ofstream out(spill_path_, std::ios::binary | std::ios::trunc);
  DTN_ASSERT(out.good() && "cannot create spill file");
  spill_tail_ = 0;
}

std::uint64_t BundleStore::spill_append(PacketId pid, const Entry& e) {
  persist::Writer w;
  w.begin_section(kSpillSection);
  w.u32(pid);
  w.u32(e.size_kb);
  w.u64(e.admit_seq);
  w.u8(static_cast<std::uint8_t>(e.retention));
  w.f64(e.expected_delay);
  w.f64(e.deadline);
  w.u32(e.logical);
  w.end_section();
  w.finish();
  std::ofstream out(spill_path_, std::ios::binary | std::ios::app);
  DTN_ASSERT(out.good() && "cannot open spill file for append");
  out.write(reinterpret_cast<const char*>(w.buffer().data()),
            static_cast<std::streamsize>(w.buffer().size()));
  DTN_ASSERT(out.good() && "spill append failed");
  return w.buffer().size();
}

BundleStore::Entry BundleStore::spill_fetch(const SpillRecord& rec) const {
  std::ifstream in(spill_path_, std::ios::binary);
  DTN_ASSERT(in.good() && "cannot open spill file for recall");
  in.seekg(static_cast<std::streamoff>(rec.offset));
  std::vector<std::uint8_t> bytes(rec.length);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  DTN_ASSERT(in.gcount() == static_cast<std::streamsize>(bytes.size()));
  persist::Reader r(std::move(bytes));
  r.expect_section(kSpillSection);
  Entry e;
  const PacketId pid = r.u32();
  e.size_kb = r.u32();
  e.admit_seq = r.u64();
  e.retention = static_cast<Retention>(r.u8());
  e.expected_delay = r.f64();
  e.deadline = r.f64();
  e.logical = r.u32();
  r.end_section();
  r.finish();
  // The file is load-bearing: a recall whose on-disk record disagrees
  // with the in-memory index is corruption, not a soft error.
  DTN_ASSERT(pid == rec.pid);
  DTN_ASSERT(e.size_kb == rec.entry.size_kb);
  DTN_ASSERT(e.admit_seq == rec.entry.admit_seq);
  return e;
}

void BundleStore::spill_out(PacketId pid, const Entry& e) {
  SpillRecord rec;
  rec.entry = e;
  rec.pid = pid;
  rec.offset = spill_tail_;
  rec.length = spill_append(pid, e);
  spill_tail_ += rec.length;
  spilled_kb_ += e.size_kb;
  spill_.push_back(rec);
  note_seen(e.logical);
}

void BundleStore::recall_while_fits(std::vector<PacketId>* recalled_out) {
  while (!spill_.empty() && core_.has_space(spill_.front().entry.size_kb)) {
    const SpillRecord rec = spill_.front();
    spill_.erase(spill_.begin());
    DTN_ASSERT(spilled_kb_ >= rec.entry.size_kb);
    spilled_kb_ -= rec.entry.size_kb;
    const Entry e = spill_fetch(rec);
    place(rec.pid, e);
    if (recalled_out != nullptr) recalled_out->push_back(rec.pid);
  }
}

// -- checkpointing -----------------------------------------------------

void BundleStore::save(persist::Writer& w) const {
  core_.save(w);
  for (const Entry& e : meta_) {
    w.u64(e.admit_seq);
    w.f64(e.expected_delay);
    w.f64(e.deadline);
    w.u32(e.logical);
    w.u32(e.size_kb);
    w.u8(static_cast<std::uint8_t>(e.retention));
  }
  w.u64(next_admit_seq_);
  w.u64(retained_);
  w.u64(seen_.size());
  for (const PacketId id : seen_) w.u32(id);
  w.u64(spill_.size());
  // Offsets/lengths are artifacts of the local file (it may contain
  // holes from removed records); load rewrites a compacted file and
  // recomputes them, which keeps save→load→save byte-identical.
  for (const SpillRecord& rec : spill_) {
    w.u32(rec.pid);
    w.u64(rec.entry.admit_seq);
    w.f64(rec.entry.expected_delay);
    w.f64(rec.entry.deadline);
    w.u32(rec.entry.logical);
    w.u32(rec.entry.size_kb);
    w.u8(static_cast<std::uint8_t>(rec.entry.retention));
  }
}

void BundleStore::load(persist::Reader& r) {
  core_.load(r);
  meta_.resize(core_.count());
  retained_ = 0;
  for (Entry& e : meta_) {
    e.admit_seq = r.u64();
    e.expected_delay = r.f64();
    e.deadline = r.f64();
    e.logical = r.u32();
    e.size_kb = r.u32();
    e.retention = static_cast<Retention>(r.u8());
    if (e.retention > Retention::kForwardPending) {
      throw persist::FormatError("bundle store: bad retention value");
    }
  }
  next_admit_seq_ = r.u64();
  retained_ = r.u64();
  seen_.resize(static_cast<std::size_t>(r.u64()));
  for (PacketId& id : seen_) id = r.u32();
  spill_.resize(static_cast<std::size_t>(r.u64()));
  if (!spill_.empty() && !spill_enabled()) {
    throw persist::FormatError(
        "bundle store: snapshot has spilled bundles but spill is disabled");
  }
  if (spill_enabled()) spill_reset();
  spilled_kb_ = 0;
  for (SpillRecord& rec : spill_) {
    rec.pid = r.u32();
    rec.entry.admit_seq = r.u64();
    rec.entry.expected_delay = r.f64();
    rec.entry.deadline = r.f64();
    rec.entry.logical = r.u32();
    rec.entry.size_kb = r.u32();
    rec.entry.retention = static_cast<Retention>(r.u8());
    // Rewrite the (freshly truncated) spill file from the snapshot so
    // resume does not depend on the original machine's file.
    rec.offset = spill_tail_;
    rec.length = spill_append(rec.pid, rec.entry);
    spill_tail_ += rec.length;
    spilled_kb_ += rec.entry.size_kb;
  }
}

// -- invariant auditing ------------------------------------------------

void BundleStore::audit(sim::AuditReport& report,
                        std::string_view label) const {
  const std::string who(label);
  auto fail = [&](const std::string& detail) {
    report.fail(who + ": " + detail);
  };
  // Pool accounting: slab parallel to the id list, byte totals match.
  if (meta_.size() != core_.count()) {
    fail("entry slab has " + std::to_string(meta_.size()) +
         " entries for " + std::to_string(core_.count()) + " ids");
    return;  // the per-entry checks below index meta_ by id position
  }
  std::uint64_t bytes = 0;
  std::uint64_t retained = 0;
  for (std::size_t i = 0; i < meta_.size(); ++i) {
    bytes += meta_[i].size_kb;
    if (meta_[i].retention != Retention::kNone) ++retained;
    if (meta_[i].admit_seq >= next_admit_seq_) {
      fail("entry " + std::to_string(core_.packets()[i]) +
           " admit_seq beyond the admission counter");
    }
  }
  if (bytes != core_.used_kb()) {
    fail("slab bytes " + std::to_string(bytes) + " != used_kb " +
         std::to_string(core_.used_kb()));
  }
  if (!core_.unbounded() && core_.used_kb() > core_.capacity_kb()) {
    fail("used_kb " + std::to_string(core_.used_kb()) +
         " exceeds capacity " + std::to_string(core_.capacity_kb()));
  }
  if (retained != retained_) {
    fail("retained cache " + std::to_string(retained_) + " != recount " +
         std::to_string(retained));
  }
  // Dedup set: sorted unique; every resident logical is a member.
  if (!std::is_sorted(seen_.begin(), seen_.end()) ||
      std::adjacent_find(seen_.begin(), seen_.end()) != seen_.end()) {
    fail("dedup set not sorted-unique");
  } else if (dedup_) {
    for (const Entry& e : meta_) {
      if (!seen_logical(e.logical)) {
        fail("resident logical " + std::to_string(e.logical) +
             " missing from dedup set");
      }
    }
    for (const SpillRecord& rec : spill_) {
      if (!seen_logical(rec.entry.logical)) {
        fail("spilled logical " + std::to_string(rec.entry.logical) +
             " missing from dedup set");
      }
    }
  }
  // Spill index: byte totals, strictly increasing record extents, ids
  // disjoint from memory.
  std::uint64_t spill_bytes = 0;
  std::uint64_t prev_end = 0;
  for (std::size_t s = 0; s < spill_.size(); ++s) {
    const SpillRecord& rec = spill_[s];
    spill_bytes += rec.entry.size_kb;
    if (s > 0 && rec.offset < prev_end) {
      fail("spill records overlap at index " + std::to_string(s));
    }
    prev_end = rec.offset + rec.length;
    if (core_.contains(rec.pid)) {
      fail("packet " + std::to_string(rec.pid) +
           " both in memory and spilled");
    }
  }
  if (prev_end > spill_tail_) {
    fail("spill index extends past the file tail");
  }
  if (spill_bytes != spilled_kb_) {
    fail("spill index bytes " + std::to_string(spill_bytes) +
         " != spilled_kb " + std::to_string(spilled_kb_));
  }
  if (!spill_.empty() && core_.unbounded()) {
    fail("unbounded store has spilled bundles");
  }
}

void BundleStore::debug_corrupt_dedup_order_for_test(int delta) {
  if (delta > 0) {
    DTN_ASSERT(!seen_.empty());
    seen_.push_back(seen_.front());
  } else {
    seen_.pop_back();
  }
}

void BundleStore::debug_corrupt_pool_size_for_test(int delta) {
  DTN_ASSERT(!meta_.empty());
  meta_.front().size_kb = static_cast<std::uint32_t>(
      static_cast<std::int32_t>(meta_.front().size_kb) + delta);
}

}  // namespace dtn::net
