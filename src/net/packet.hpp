// Packets and their lifecycle.
//
// Following §III-A.2 the network routes fixed-size, single-copy packets
// between landmarks; a packet is delivered the moment it reaches its
// destination landmark (station or carrying node arriving there) and is
// dropped when its TTL expires.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace dtn::net {

using trace::LandmarkId;
using trace::NodeId;
using trace::kNoLandmark;

using PacketId = std::uint32_t;
inline constexpr PacketId kNoPacket = static_cast<PacketId>(-1);

enum class PacketState : std::uint8_t {
  /// Pre-allocated slot whose generation event has not fired yet.  The
  /// sharded engine assigns packet ids up front (so concurrent shards
  /// never contend on the packet table); unborn slots are invisible to
  /// TTL sweeps and invariant checks until their generation event runs.
  kUnborn,
  kAtOrigin,       ///< generated, waiting at the source landmark for a first carrier
  kAtStation,      ///< held by a landmark's central station (DTN-FLOW relays)
  kOnNode,         ///< carried by a mobile node
  kDelivered,
  kDroppedTtl,
  /// A copy whose logical packet was already delivered by another copy
  /// (removed from circulation without counting a second delivery).
  kObsoleteCopy,
  /// Destroyed by an injected fault (buffer loss in a node crash; see
  /// sim/fault_injector.hpp).
  kLostFault,
  /// Dropped by a bounded store: chosen as an eviction-policy victim,
  /// or shed at generation because its origin station was full
  /// (src/net/bundle_store.hpp, docs/bounded-store.md).
  kEvicted,
};

[[nodiscard]] constexpr bool is_terminal(PacketState s) {
  // kUnborn counts as terminal so that TTL sweeps, buffer accounting and
  // invariant checks skip pre-allocated slots; every unborn slot becomes
  // a live packet before the run ends.
  return s == PacketState::kUnborn || s == PacketState::kDelivered ||
         s == PacketState::kDroppedTtl || s == PacketState::kObsoleteCopy ||
         s == PacketState::kLostFault || s == PacketState::kEvicted;
}

struct Packet {
  PacketId id = kNoPacket;
  LandmarkId src = 0;
  LandmarkId dst = 0;
  /// Node-addressed packets (§IV-E.4): when set, `dst` is only the
  /// routing target (typically a frequently-visited landmark of the
  /// destination node) and delivery happens when the packet reaches
  /// `dst_node` itself.
  NodeId dst_node = trace::kNoNode;
  double created = 0.0;
  double ttl = 0.0;  ///< lifetime in seconds from `created`
  std::uint32_t size_kb = 1;

  /// Logical packet this is a copy of (== `id` for originals).
  /// Multi-copy routers replicate packets; success/delay count once per
  /// logical packet, forwarding cost counts every copy movement.
  PacketId logical = kNoPacket;

  PacketState state = PacketState::kAtOrigin;
  /// Landmark id (kAtOrigin/kAtStation) or node id (kOnNode) holding it.
  std::uint32_t holder = 0;

  // -- routing state written by routers --------------------------------
  /// Next-hop landmark chosen by the dispatching landmark (DTN-FLOW
  /// step 3); kNoLandmark when unset.
  LandmarkId next_hop = kNoLandmark;
  /// Expected overall delay from the dispatching landmark to the
  /// destination, carried with the packet (DTN-FLOW steps 2-3) so the
  /// carrier can judge unexpected landmarks against it.
  double expected_delay = 0.0;
  /// Landmarks whose station handled this packet, in order — the path
  /// record used for routing-loop detection (§IV-E.2).
  std::vector<LandmarkId> station_path;

  std::uint32_t hops = 0;       ///< number of forwarding operations
  double delivered_at = -1.0;

  [[nodiscard]] double deadline() const { return created + ttl; }
  [[nodiscard]] double remaining_ttl(double now) const {
    return deadline() - now;
  }
  [[nodiscard]] bool expired(double now) const { return now > deadline(); }
};

}  // namespace dtn::net
