#include "net/buffer.hpp"

#include <algorithm>

#include "persist/serializer.hpp"

namespace dtn::net {

bool Buffer::contains(PacketId pid) const {
  return std::find(packets_.begin(), packets_.end(), pid) != packets_.end();
}

bool Buffer::add(PacketId pid, std::uint32_t size_kb) {
  if (!has_space(size_kb)) return false;
  DTN_ASSERT(!contains(pid));
  packets_.push_back(pid);
  used_kb_ += size_kb;
  return true;
}

void Buffer::remove(PacketId pid, std::uint32_t size_kb) {
  const auto it = std::find(packets_.begin(), packets_.end(), pid);
  DTN_ASSERT(it != packets_.end());
  // Swap-erase: buffer order is not meaningful; routers that need a
  // priority order sort a copy.
  *it = packets_.back();
  packets_.pop_back();
  DTN_ASSERT(used_kb_ >= size_kb);
  used_kb_ -= size_kb;
}

void Buffer::save(persist::Writer& w) const {
  w.u64(capacity_kb_);
  w.u64(used_kb_);
  w.u64(packets_.size());
  for (const PacketId pid : packets_) w.u32(pid);
}

void Buffer::load(persist::Reader& r) {
  capacity_kb_ = r.u64();
  used_kb_ = r.u64();
  packets_.resize(static_cast<std::size_t>(r.u64()));
  for (PacketId& pid : packets_) pid = r.u32();
}

}  // namespace dtn::net
