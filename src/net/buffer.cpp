#include "net/buffer.hpp"

#include "persist/serializer.hpp"
#include "util/simd.hpp"

namespace dtn::net {

// The id list is a flat uint32 array, so membership scans vectorize
// with simd::find_u32 (docs/simd-hot-path.md); it returns the same
// index as std::find, so behaviour is unchanged.  add() runs the scan
// too (the duplicate-id assert is always on), which made these scans
// the whole cost of BM_BufferAddRemove.

bool Buffer::contains(PacketId pid) const {
  return simd::find_u32(packets_.data(), packets_.size(), pid) !=
         packets_.size();
}

std::size_t Buffer::index_of(PacketId pid) const {
  return simd::find_u32(packets_.data(), packets_.size(), pid);
}

bool Buffer::add(PacketId pid, std::uint32_t size_kb) {
  if (!has_space(size_kb)) return false;
  DTN_ASSERT(!contains(pid));
  packets_.push_back(pid);
  used_kb_ += size_kb;
  return true;
}

void Buffer::remove(PacketId pid, std::uint32_t size_kb) {
  const std::size_t i =
      simd::find_u32(packets_.data(), packets_.size(), pid);
  remove_at(i, size_kb);
}

void Buffer::remove_at(std::size_t i, std::uint32_t size_kb) {
  DTN_ASSERT(i < packets_.size());
  // Swap-erase: buffer order is not meaningful; routers that need a
  // priority order sort a copy.
  packets_[i] = packets_.back();
  packets_.pop_back();
  DTN_ASSERT(used_kb_ >= size_kb);
  used_kb_ -= size_kb;
}

void Buffer::save(persist::Writer& w) const {
  w.u64(capacity_kb_);
  w.u64(used_kb_);
  w.u64(packets_.size());
  for (const PacketId pid : packets_) w.u32(pid);
}

void Buffer::load(persist::Reader& r) {
  capacity_kb_ = r.u64();
  used_kb_ = r.u64();
  packets_.resize(static_cast<std::size_t>(r.u64()));
  for (PacketId& pid : packets_) pid = r.u32();
}

}  // namespace dtn::net
