// Finite packet buffer of a mobile node (landmark stations are
// modelled as unbounded per §V-A.1: "the memory of the landmark was not
// limited").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/packet.hpp"

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::net {

class Buffer {
 public:
  /// capacity_kb == 0 means unbounded.
  explicit Buffer(std::uint64_t capacity_kb = 0) : capacity_kb_(capacity_kb) {}

  [[nodiscard]] std::uint64_t capacity_kb() const { return capacity_kb_; }
  [[nodiscard]] std::uint64_t used_kb() const { return used_kb_; }
  [[nodiscard]] bool unbounded() const { return capacity_kb_ == 0; }
  [[nodiscard]] bool has_space(std::uint32_t size_kb) const {
    // Compare by subtraction: `used_kb_ + size_kb` can wrap for
    // adversarial capacities near UINT64_MAX (e.g. loaded from a
    // hostile checkpoint), which would admit into a full buffer.
    return unbounded() ||
           (used_kb_ <= capacity_kb_ && size_kb <= capacity_kb_ - used_kb_);
  }
  [[nodiscard]] std::size_t count() const { return packets_.size(); }
  [[nodiscard]] bool empty() const { return packets_.empty(); }
  [[nodiscard]] std::span<const PacketId> packets() const { return packets_; }
  [[nodiscard]] bool contains(PacketId pid) const;
  /// Position of `pid` in the id list, or count() when absent (lets
  /// BundleStore keep a metadata slab parallel to the id list).
  [[nodiscard]] std::size_t index_of(PacketId pid) const;

  /// Insert; returns false (and leaves the buffer unchanged) on overflow.
  [[nodiscard]] bool add(PacketId pid, std::uint32_t size_kb);

  /// Remove a packet that must be present.
  void remove(PacketId pid, std::uint32_t size_kb);
  /// Remove by known position (swap-erase), skipping the membership scan.
  void remove_at(std::size_t i, std::uint32_t size_kb);

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Serialize capacity, byte accounting and the id list verbatim (the
  /// id *order* matters: TTL sweeps and crash flushes iterate it).
  void save(persist::Writer& w) const;
  void load(persist::Reader& r);

  /// Test-only fault injection for the invariant auditor's negative
  /// tests: skew the byte accounting without touching the id list (the
  /// bug class this simulates is a transfer that accounted the wrong
  /// packet size).
  void debug_corrupt_used_kb_for_test(int delta) {
    used_kb_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(used_kb_) + delta);
  }

 private:
  std::uint64_t capacity_kb_;
  std::uint64_t used_kb_ = 0;
  std::vector<PacketId> packets_;
};

}  // namespace dtn::net
