// Trace-driven DTN network engine.
//
// Replays a mobility trace as discrete events (node arrivals/departures
// at landmarks), generates the packet workload, maintains ground truth
// (locations, buffers, packet states), performs transfers on behalf of
// the active `Router`, and accounts the paper's four metrics' raw
// counters (§V-A.1): delivery, delay, packet-forwarding operations and
// control-information transfer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "net/buffer.hpp"
#include "net/bundle_store.hpp"
#include "util/annotations.hpp"
#include "net/packet.hpp"
#include "net/router.hpp"
#include "sim/fault_injector.hpp"
#include "sim/invariant_auditor.hpp"
#include "sim/shard_coordinator.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace dtn::persist {
class CheckpointManager;
class Reader;
class Writer;
}  // namespace dtn::persist

namespace dtn::trace {
class TraceCursor;
}  // namespace dtn::trace

namespace dtn::net {

struct WorkloadConfig {
  /// Packets generated per landmark per day (Poisson arrivals);
  /// destinations uniform over the other landmarks.
  double packets_per_landmark_per_day = 20.0;
  double ttl = 20.0 * trace::kDay;
  std::uint32_t packet_size_kb = 1;
  /// Per-node memory in kB (0 = unbounded).
  std::uint64_t node_memory_kb = 2000;
  /// Bounded-store behaviour (src/net/bundle_store.hpp,
  /// docs/bounded-store.md): station capacity, eviction policy,
  /// received-id dedup, spill-to-disk.  The default bounds nothing and
  /// enables nothing — replays stay bit-identical to the unbounded
  /// §V-A.1 model.
  BundleStoreConfig store;
  /// Fraction of the trace used as an initialization phase before any
  /// packet is generated (paper: first 1/4, routers warm up on it).
  double warmup_fraction = 0.25;
  /// Measurement time unit for bandwidth/routing-table updates
  /// (paper: 3 days for DART, 0.5 day for DNET).
  double time_unit = 3.0 * trace::kDay;
  std::uint64_t seed = 7;

  /// >0 runs the invariant auditor every N dispatched events during the
  /// replay (see invariant_auditor.hpp; DTN_AUDIT / DTN_AUDIT_PERIOD in
  /// the environment also enable it).  0 = disabled (default).
  std::uint64_t audit_period_events = 0;

  /// Group consecutive same-(time, landmark) arrivals/departures from
  /// the trace into one dispatch (docs/simd-hot-path.md): the
  /// present-set index and the router's carrier-score cache epoch then
  /// update once per batch instead of once per event.  Batching is
  /// state-transparent — final state, counters and digests are
  /// bit-identical either way (the golden-digest tests force it off and
  /// compare) — and is automatically disabled while per-event auditing
  /// or checkpoint stepping needs to observe every event boundary.
  /// Excluded from the checkpoint config fingerprint for the same
  /// reason the audit period is.
  bool batch_contacts = true;

  /// Optional per-landmark destination weights for the Poisson
  /// workload; empty = uniform over the other landmarks.  Skewed
  /// weights create hot-spot traffic (overloaded links, §IV-E.3).
  std::vector<double> destination_weights;

  /// Deterministic extra workload: packets injected at exact times
  /// (used by tests, examples and the deployment bench in addition to —
  /// or instead of — the Poisson workload).
  struct ManualPacket {
    trace::LandmarkId src = 0;
    trace::LandmarkId dst = 0;
    double time = 0.0;
    double ttl = 0.0;  ///< 0 = use the config TTL
    /// Node-addressed packet (§IV-E.4): delivery requires reaching this
    /// node; `dst` is only the routing target landmark.
    trace::NodeId dst_node = trace::kNoNode;
  };
  std::vector<ManualPacket> manual_packets;

  /// Optional fault plan (sim/fault_injector.hpp).  No plan, or a plan
  /// with zero probabilities and empty schedules, leaves the replay
  /// bit-identical to the fault-free engine (golden determinism tests).
  std::optional<sim::FaultPlan> faults;
};

/// Raw counters produced by a run; `metrics::` derives the paper's
/// success rate / average delay / forwarding cost / total cost.
struct RunCounters {
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_ttl = 0;
  /// Transfers refused because the receiving node's buffer was full.
  std::uint64_t refused_buffer = 0;
  /// Packet forwarding operations (origin->node, node->node,
  /// node->station, station->node, arrival auto-delivery, replication).
  std::uint64_t packet_forwards = 0;
  /// Copies created by multi-copy routers.
  std::uint64_t replications = 0;
  /// Control-information entries transferred (routing tables,
  /// meeting-probability vectors); converted to operations by the cost
  /// model (entries / alpha).
  double control_entries = 0.0;
  /// Sum of delays of delivered packets (seconds).
  double total_delay = 0.0;
  /// Per-packet delays of delivered packets (for quantile figures).
  std::vector<double> delivery_delays;
  /// Forwarding operations each delivered packet took (path length).
  std::vector<std::uint32_t> delivery_hops;

  // -- bounded-store counters (docs/bounded-store.md; all zero with the
  //    default unbounded, policy-off store configuration) ---------------
  /// Victims dropped by an eviction policy to admit an incoming bundle.
  std::uint64_t evicted_policy = 0;
  std::uint64_t evicted_kb = 0;
  /// Generated packets shed at admission because their origin station
  /// was full (graceful load shedding; they still count as generated).
  std::uint64_t admission_shed = 0;
  /// Copies of an already-delivered logical packet retired at a
  /// transfer admission point instead of being re-admitted.
  std::uint64_t duplicates_suppressed = 0;
  /// Admissions refused by a store's received-id dedup set.
  std::uint64_t dedup_refused = 0;
  /// Bundles spilled to / recalled from a station's disk backend.
  std::uint64_t spilled_bundles = 0;
  std::uint64_t recalled_bundles = 0;

  // -- resilience counters (all zero unless a FaultPlan is attached) ----
  std::uint64_t node_crashes = 0;
  std::uint64_t node_reboots = 0;
  std::uint64_t station_outages = 0;
  std::uint64_t station_recoveries = 0;
  /// Packets destroyed by crash buffer loss, and the bytes they held.
  std::uint64_t packets_lost_fault = 0;
  std::uint64_t kb_lost_fault = 0;
  /// Transfer attempts broken mid-contact, and packets that later made
  /// it across after at least one such break (retry/backoff resumption).
  std::uint64_t transfers_interrupted = 0;
  std::uint64_t transfers_resumed = 0;
  /// Attempts refused outright: an endpoint was down, or the packet was
  /// still inside its retry-backoff window.
  std::uint64_t transfers_blocked_fault = 0;
  /// Per-outage recovery times: station recovery -> first successful
  /// station transfer there (seconds).
  std::vector<double> outage_recovery_delays;

  /// Bit-exact comparison, vectors included — two runs with the same
  /// trace, router and seed must compare equal (determinism guard).
  friend bool operator==(const RunCounters&, const RunCounters&) = default;
};

class Network {
 public:
  Network(const trace::Trace& trace, Router& router, WorkloadConfig config);

  /// Replay the whole trace.  Call exactly once.
  void run();

  /// Checkpointed replay (docs/checkpointing.md).  Resumes from `ckpt`'s
  /// newest snapshot when one exists (throwing persist::FormatError if
  /// it is corrupt or was taken under a different configuration),
  /// otherwise starts fresh; writes snapshots at the cadence in
  /// ckpt.config().  Returns true when the replay reached the trace
  /// horizon, false when it suspended after
  /// CheckpointConfig::stop_after_events (a snapshot of the suspension
  /// point is on disk, so a later process finishes the run — the
  /// deterministic stand-in for a kill).  A run checkpointed and resumed
  /// any number of times produces bit-identical counters and delivery
  /// records to an uninterrupted run().  Requires
  /// `router.checkpointable()`.  Call exactly once (instead of run()).
  bool run(persist::CheckpointManager& ckpt);

  /// Replay the whole trace with the event engine sharded by landmark
  /// partition (docs/parallel-engine.md): each shard replays the events
  /// of a disjoint landmark set between boundary epochs; every result
  /// (counters, packet table, delivery order) is bit-identical to
  /// `run()`.  Requires `router.shard_safe()`, no fault plan, no
  /// periodic auditing and a landmark-addressed-only workload
  /// (manual packets must not set dst_node).  `num_shards <= 1` falls
  /// back to the serial path; a null `pool` creates a private one.
  /// A non-null `ckpt` writes snapshots at time-unit barriers (the only
  /// points where the sharded state collapses to a serial-equivalent
  /// image); they are byte-identical to a serial snapshot of the same
  /// point and resume on the serial engine.  Sharded runs never resume
  /// and ignore stop_after_events.  Call exactly once (instead of run()).
  void run_sharded(std::size_t num_shards, ThreadPool* pool = nullptr,
                   persist::CheckpointManager* ckpt = nullptr);

  // -- introspection ----------------------------------------------------
  [[nodiscard]] double now() const {
    return sharded_run_ ? contexts_[sim::current_shard()].now : sim_.now();
  }
  /// Events executed by the replay so far (trace + workload + ticks).
  [[nodiscard]] std::uint64_t events_executed() const {
    return sharded_run_ ? sharded_events_ : sim_.events_executed();
  }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_landmarks() const { return stations_.size(); }
  [[nodiscard]] const WorkloadConfig& config() const { return cfg_; }
  [[nodiscard]] const RunCounters& counters() const { return counters_; }
  [[nodiscard]] double trace_begin() const { return trace_begin_; }
  [[nodiscard]] double trace_end() const { return trace_end_; }
  /// Time packet generation starts (end of warmup).
  [[nodiscard]] double workload_start() const { return workload_start_; }

  /// Nodes currently associated with landmark `l`.
  [[nodiscard]] std::span<const NodeId> nodes_at(LandmarkId l) const;
  /// Current landmark of `node` (kNoLandmark while in transit).
  [[nodiscard]] LandmarkId location(NodeId node) const;
  /// Landmark of the node's previous (completed) visit.
  [[nodiscard]] LandmarkId previous_landmark(NodeId node) const;
  /// Completed visits of `node` so far (online history; grows as the
  /// replay progresses — routers must only read, never assume future).
  [[nodiscard]] std::span<const trace::Visit> history(NodeId node) const;

  [[nodiscard]] Packet& packet(PacketId pid);
  [[nodiscard]] const Packet& packet(PacketId pid) const;
  [[nodiscard]] std::span<const Packet> all_packets() const { return packets_; }

  [[nodiscard]] std::span<const PacketId> origin_packets(LandmarkId l) const;
  [[nodiscard]] std::span<const PacketId> station_packets(LandmarkId l) const;
  [[nodiscard]] std::span<const PacketId> node_packets(NodeId node) const;
  [[nodiscard]] const BundleStore& node_buffer(NodeId node) const;
  [[nodiscard]] const BundleStore& station_store(LandmarkId l) const;

  // -- faults (meaningful only when WorkloadConfig::faults is set) ------
  /// Is `node` currently crashed (radio dead)?  Always false without a
  /// fault plan.
  [[nodiscard]] bool node_down(NodeId node) const {
    return faults_.has_value() && faults_->node_down(node);
  }
  /// Is landmark `l`'s station currently down?
  [[nodiscard]] bool station_down(LandmarkId l) const {
    return faults_.has_value() && faults_->station_down(l);
  }
  /// The run's fault injector, or nullptr when no plan is attached.
  [[nodiscard]] sim::FaultInjector* faults() {
    return faults_.has_value() ? &*faults_ : nullptr;
  }
  [[nodiscard]] const sim::FaultInjector* faults() const {
    return faults_.has_value() ? &*faults_ : nullptr;
  }

  // -- transfers (routers call these; all enforce state/buffers) --------
  // Every transfer is a radio operation: it is refused while either
  // endpoint is down and may break mid-contact under an injected
  // transfer-failure probability (the packet then stays with the sender
  // and retries after an exponential backoff on a later contact).
  /// Origin queue -> node at the same landmark.  False if no space.
  bool pickup_from_origin(NodeId node, PacketId pid);
  /// Station -> node at the same landmark.  False if no space.
  bool station_to_node(LandmarkId l, NodeId node, PacketId pid);
  /// Node -> station of the landmark the node is at; delivers if it is
  /// the destination.  Stations are unbounded by default (then this
  /// fails only on TTL expiry or an injected fault); a bounded station
  /// store may also refuse admission, leaving the packet on the node.
  bool node_to_station(NodeId node, PacketId pid);
  /// Node -> node, both at the same landmark.  False if no space.
  bool node_to_node(NodeId from, NodeId to, PacketId pid);

  /// Multi-copy support: duplicate `pid` (held by `from`) into `to`'s
  /// buffer as a new copy of the same logical packet.  Returns the new
  /// copy's id, or kNoPacket when `to` lacks space / already delivered.
  PacketId replicate_node_to_node(NodeId from, NodeId to, PacketId pid);

  /// Does `node` carry any copy of the logical packet `logical`?
  [[nodiscard]] bool node_holds_logical(NodeId node, PacketId logical) const;

  /// Has the logical packet been delivered (by any copy)?
  [[nodiscard]] bool logical_delivered(PacketId logical) const;

  /// Record control-information transfer of `entries` table entries.
  void account_control(double entries);

  /// Audit internal invariants (every active packet in exactly the
  /// buffer its holder field names; counters consistent).  Aborts via
  /// DTN_ASSERT on violation; cheap enough for tests after every run.
  void validate_invariants() const;

  // -- invariant auditing (debug tooling, see invariant_auditor.hpp) ----
  /// Run every engine-level invariant check into `report` (no abort):
  /// event-queue heap property, station present-set vs present-position
  /// index consistency, buffer byte accounting, plus the router's own
  /// audit hook.  The periodic auditor runs exactly these checks.
  void audit(sim::AuditReport& report) const;

  /// The periodic auditor driving this run (enabled via
  /// WorkloadConfig::audit_period_events or DTN_AUDIT; see above).
  [[nodiscard]] const sim::InvariantAuditor& auditor() const {
    return auditor_;
  }
  [[nodiscard]] sim::InvariantAuditor& auditor() { return auditor_; }

  /// Test-only fault injection for the auditor's negative tests.
  enum class Corruption {
    /// Skew the present-position index of one currently present node.
    kPresentPos,
    /// Skew one node buffer's byte accounting.
    kBufferBytes,
    /// Skew the in-flight transfer ledger's per-packet index (needs a
    /// live ledger entry, i.e. a faulted run with pending retries).
    kLedgerIndex,
    /// Skew the packets_lost_fault counter away from the recount.
    kFaultLossCounter,
    /// Skew the first non-empty store's retained-count cache.
    kStoreRetention,
    /// Skew the first spilling station's spilled-byte accounting.
    kStoreSpillBytes,
    /// Break the first non-empty dedup set's sorted-unique invariant.
    kStoreDedupOrder,
    /// Skew one pooled entry's slab size against the byte accounting.
    kStorePoolSize,
  };
  /// Seed `kind` by skewing the targeted counter by `delta`; returns
  /// false when no eligible state exists (e.g. no node is present
  /// anywhere for kPresentPos).  Target selection is deterministic, so
  /// a test can corrupt (+1), observe detection and revert (-1) within
  /// one callback to leave the replay unharmed.
  bool debug_corrupt_for_test(Corruption kind, int delta = 1);

 private:
  /// Typed-event dispatch: the simulator hands every engine event
  /// (arrival/departure from the trace cursor, generation ticks, manual
  /// packets, TTL sweeps, time-unit ticks) to this switch.
  void dispatch(const sim::Event& ev);
  static void dispatch_trampoline(void* self, const sim::Event& ev) {
    static_cast<Network*>(self)->dispatch(ev);
  }
  /// Drop `pid` now if its TTL has lapsed (removing it from its holder);
  /// returns true when dropped.  Transfers call this first so expired
  /// packets never keep moving between sweep ticks.
  bool drop_if_expired(PacketId pid);
  /// Remove `pid` from whatever currently holds it (non-terminal states).
  void detach_from_holder(Packet& p);
  /// `slot != kNoPacket` fills a pre-allocated (kUnborn) packet row
  /// instead of appending — the sharded engine assigns ids up front.
  PacketId generate_packet(LandmarkId src, LandmarkId dst, double ttl,
                           NodeId dst_node = trace::kNoNode,
                           PacketId slot = kNoPacket);
  void deliver_node_addressed(NodeId arriving, LandmarkId l);
  void deliver(PacketId pid);
  void drop_expired();
  void handle_arrival(const trace::Visit& visit);
  void handle_departure(const trace::Visit& visit);

  // -- batched contact dispatch (docs/simd-hot-path.md) -----------------
  /// Depart every visit in `visits` (all same (time, landmark),
  /// consecutive in the merged event order) with the exact per-node
  /// hook -> erase interleaving of repeated handle_departure calls, but
  /// only one present_pos_ suffix renumber and one carrier-cache epoch
  /// advance (Router::on_departure_batch_begin) for the whole batch.
  void handle_departure_batch(const trace::Visit* const* visits,
                              std::size_t count);
  /// Serial-path drains: while the next cursor event continues the
  /// current same-(time, kind, landmark) run, consume it inside this
  /// dispatch.  Sound because queue events can never interleave — at
  /// equal times every queue seq sits above the cursor's seq range
  /// (Simulator::set_seq_floor), so consecutive same-time cursor events
  /// are adjacent in the merged order.
  void drain_arrival_batch(double time, LandmarkId l);
  void dispatch_departure_batched(const sim::Event& ev);
  [[nodiscard]] std::vector<const trace::Visit*>& batch_scratch() {
    return sharded_run_ ? contexts_[sim::current_shard()].batch
                        : batch_scratch_;
  }

  // -- sharded engine (docs/parallel-engine.md) -------------------------
  /// One generation event of the pre-drawn Poisson workload.  Drawn
  /// before the replay from per-landmark RNG streams so serial and
  /// sharded runs consume identical randomness.
  struct WorkloadEntry {
    double time = 0.0;
    LandmarkId src = 0;
    LandmarkId dst = 0;
    /// Pre-assigned packet id (sharded runs only; kNoPacket serial).
    PacketId pid = kNoPacket;
  };
  /// Draw the whole Poisson workload into `workload_`, sorted by
  /// (time, src) — the order the serial scheduler assigns ranks in.
  void build_workload();
  /// Schedule every dynamic event of a fresh run in the fixed rank
  /// order (manual packets, sweep/tick pairs, the Poisson workload);
  /// shared by run() and a non-resuming checkpointed run.
  void schedule_dynamic_events();

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// The "meta" section: everything the checkpoint does NOT store but a
  /// resume must be handed unchanged (trace shape, workload config,
  /// fault plan, router identity).  check_* throws persist::FormatError
  /// on the first field that disagrees.
  void write_config_fingerprint(persist::Writer& w) const;
  void check_config_fingerprint(persist::Reader& r) const;
  /// Sections after "cursor": rng, workload, counters, packets, nodes,
  /// stations, ledger, faults, router.  `num_packets` bounds the packet
  /// table (sharded snapshots write only the born prefix) and
  /// `strip_preassigned` clears the shard-only pre-assigned packet ids
  /// so the image is byte-identical to a serial snapshot.
  void save_tail_sections(persist::Writer& w, const RunCounters& counters,
                          std::size_t num_packets,
                          bool strip_preassigned) const;
  void load_tail_sections(persist::Reader& r);
  /// Full serial-format snapshot of the live run (requires an active
  /// checkpointed run: ckpt_cursor_ set).
  [[nodiscard]] persist::Writer serialize_state() const;
  void write_snapshot();
  bool checkpoint_step();
  static bool checkpoint_step_trampoline(void* self) {
    return static_cast<Network*>(self)->checkpoint_step();
  }
  void load_checkpoint(const std::vector<std::uint8_t>& bytes,
                       trace::TraceCursor& cursor);
  /// Auditor check: when a snapshot exists for exactly this simulation
  /// point, a fresh serialization of live state must reproduce its
  /// per-section CRCs.
  void audit_checkpoint_crc(sim::AuditReport& report) const;

  /// A delivery recorded by one shard, keyed by the (time, seq) of the
  /// event that delivered it so the merge can restore the exact serial
  /// append order of delivery_delays / delivery_hops / total_delay.
  struct DeliveryRecord {
    double time = 0.0;
    std::uint64_t seq = 0;
    double delay = 0.0;
    std::uint32_t hops = 0;
  };
  /// Per-shard mutable replay state; slot 0 doubles as the
  /// coordinator's context during barrier phases.  Cache-line padded so
  /// neighboring shards never false-share counters.
  struct alignas(128) ShardContext {
    // Every member is the owning shard's private slot (selected through
    // sim::current_shard()); the coordinator only reads them at barrier
    // phases, after wait_idle() has synchronized the shard loops.
    DTN_SHARD_LOCAL RunCounters counters;
    DTN_SHARD_LOCAL std::vector<DeliveryRecord> records;
    DTN_SHARD_LOCAL std::vector<PacketId> scratch;
    DTN_SHARD_LOCAL std::vector<const trace::Visit*> batch;
    DTN_SHARD_LOCAL double now = 0.0;
    DTN_SHARD_LOCAL std::uint64_t cur_seq = 0;
    DTN_SHARD_LOCAL std::uint64_t events = 0;
  };
  /// Shard-loop event dispatch: only trace and generation events ever
  /// reach shards (sweeps/ticks run at barriers, faults are rejected).
  void dispatch_sharded(const sim::Event& ev);
  /// Fold per-shard counters and delivery records back into `counters_`
  /// in the serial order.
  void merge_shard_contexts();
  /// Non-destructive form of the fold above: the serial-order totals
  /// without touching the per-shard contexts (barrier snapshots use it
  /// mid-run).  `events_out`, when non-null, receives the executed
  /// event total across shards.
  [[nodiscard]] RunCounters merged_shard_counters(
      std::uint64_t* events_out) const;
  /// Active counter sink: the calling shard's slot during a sharded
  /// run, the plain run counters otherwise.
  [[nodiscard]] RunCounters& ctr() {
    return sharded_run_ ? contexts_[sim::current_shard()].counters
                        : counters_;
  }
  /// Simulation clock visible to engine internals (mirrors now()).
  [[nodiscard]] double now_() const {
    return sharded_run_ ? contexts_[sim::current_shard()].now : sim_.now();
  }
  [[nodiscard]] std::vector<PacketId>& arrival_scratch() {
    return sharded_run_ ? contexts_[sim::current_shard()].scratch : scratch_;
  }

  // -- fault machinery (see docs/fault-injection.md) --------------------
  /// Schedule the plan's initial fault events (after the workload, so
  /// non-fault event sequence numbers match a fault-free run).
  void schedule_faults();
  void apply_node_crash(const sim::Event& ev);
  void apply_node_reboot(const sim::Event& ev);
  void apply_station_down(const sim::Event& ev);
  void apply_station_up(const sim::Event& ev);
  /// Transfer-failure gate shared by every transfer: true when the
  /// attempt must fail now (mid-contact break drawn, or the packet is
  /// still inside its retry-backoff window).  Updates the ledger and
  /// the interrupted/resumed/blocked counters.
  bool transfer_interrupted(PacketId pid);
  /// A station transfer at `l` just succeeded: close a pending
  /// recovery-time measurement, if any.
  void note_station_activity(LandmarkId l);
  [[nodiscard]] std::uint32_t ledger_slot(PacketId pid) const;
  void ledger_erase(PacketId pid);
  void audit_fault_state(sim::AuditReport& report) const;

  struct NodeState {
    BundleStore buffer;
    LandmarkId location = kNoLandmark;
    LandmarkId previous = kNoLandmark;
    std::vector<trace::Visit> history;  // completed visits

    NodeState() = default;
  };

  struct StationState {
    /// Central station store; unbounded per §V-A.1 unless
    /// WorkloadConfig::store bounds it (docs/bounded-store.md).
    BundleStore storage;
    std::vector<PacketId> origin;    // passive origin queue (baselines)
    /// Nodes currently associated, in arrival order (routers observe
    /// this order through nodes_at/on_contact, so it is part of the
    /// deterministic-replay contract).  Indexed by `present_pos_`.
    std::vector<NodeId> present;
  };

  void audit_present_sets(sim::AuditReport& report) const;
  void audit_buffer_accounting(sim::AuditReport& report) const;
  /// The "network.bundle_store" check: every store re-derives its pool
  /// accounting, retained cache, dedup set and spill index.
  void audit_bundle_stores(sim::AuditReport& report) const;

  // -- bounded-store admission (docs/bounded-store.md) ------------------
  /// Admission wrapper the transfer and generation paths funnel
  /// through: builds the AdmitRequest from the packet table (retention,
  /// expected delay, deadline), lets the store evict or spill per
  /// policy, retires eviction victims and counts every outcome.  True
  /// when `p` ended up in the store (memory or spill).
  Admit store_admit(BundleStore& store, Packet& p, Retention retention,
                    bool allow_spill, bool check_dedup);
  /// Retire eviction victims: each leaves circulation as kEvicted (or
  /// kObsoleteCopy when its logical was already delivered).
  void finalize_evictions(std::vector<PacketId>& victims);
  /// Station-store removal wrapper: counts the spill recalls the freed
  /// space triggers.
  void station_remove(LandmarkId l, PacketId pid, std::uint32_t size_kb);
  /// A transfer admission point saw a copy of an already-delivered
  /// logical packet: retire it instead of re-admitting (satellite:
  /// duplicate-delivery suppression).  True when retired.
  bool suppress_delivered_copy(Packet& p);
  /// Update the retention constraint on the store holding `p`, if any.
  void set_holder_retention(Packet& p, Retention r);

  const trace::Trace& trace_;
  Router& router_;
  WorkloadConfig cfg_;
  sim::Simulator sim_;
  sim::InvariantAuditor auditor_;
  Rng rng_;
  /// Engaged iff cfg_.faults is set; owns the outage sets and all
  /// fault randomness (its streams are split from the plan seed, so the
  /// workload RNG above never sees a fault-dependent draw).
  std::optional<sim::FaultInjector> faults_;

  /// In-flight transfer ledger: one entry per packet whose last
  /// transfer attempt broke mid-contact, holding the attempt count and
  /// the earliest retry time (exponential backoff).  `ledger_index_`
  /// maps packet id -> slot (kNoLedgerSlot when absent); removal
  /// swap-erases, which is fine because replay never iterates the
  /// ledger (only the auditor does, order-insensitively).
  struct LedgerEntry {
    PacketId pid = kNoPacket;
    std::uint32_t attempts = 0;
    double next_retry = 0.0;
  };
  static constexpr std::uint32_t kNoLedgerSlot =
      static_cast<std::uint32_t>(-1);
  std::vector<LedgerEntry> ledger_;
  std::vector<std::uint32_t> ledger_index_;
  /// Per-landmark pending recovery-time measurement: the time the
  /// station recovered, or a negative sentinel when none is pending.
  std::vector<double> outage_recovery_pending_;

  std::vector<NodeState> nodes_;
  std::vector<StationState> stations_;
  /// Position of each present node inside its station's `present`
  /// vector: turns the departure-time linear scan into an index lookup.
  std::vector<std::uint32_t> present_pos_;
  std::vector<Packet> packets_;
  std::vector<std::uint8_t> logical_delivered_;
  /// True once any node-addressed packet (dst_node set) exists; while
  /// false, every arrival skips the node-addressed handover scans
  /// entirely (the standard workload is landmark-addressed only).
  bool any_node_addressed_ = false;
  /// Reused per-arrival scratch list (avoids an allocation per event).
  std::vector<PacketId> scratch_;
  /// Reused departure-batch visit list (serial path; shards use their
  /// context's slot).
  std::vector<const trace::Visit*> batch_scratch_;
  /// Live trace cursor to drain same-(time, kind, landmark) runs from,
  /// set for the duration of a serial run() when batching is on; null
  /// when batching is off (unbatched config, per-event auditing, or a
  /// checkpointed run whose step hook must see every event boundary).
  sim::EventSource* batch_source_ = nullptr;
  RunCounters counters_;

  /// Pre-drawn Poisson workload (build_workload), rank order.
  std::vector<WorkloadEntry> workload_;
  /// Pre-assigned packet id per manual packet (sharded runs only;
  /// kNoPacket for packets scheduled past the trace end).
  std::vector<PacketId> manual_pids_;
  /// Per-shard contexts; non-empty exactly while sharded_run_ is set.
  std::vector<ShardContext> contexts_;
  std::uint64_t sharded_events_ = 0;
  bool sharded_run_ = false;

  // -- active checkpointed run (see docs/checkpointing.md) --------------
  persist::CheckpointManager* ckpt_mgr_ = nullptr;
  /// The serial run's live trace cursor while a checkpointed run is
  /// active (serialize_state needs its positions); null otherwise.
  trace::TraceCursor* ckpt_cursor_ = nullptr;
  std::uint64_t ckpt_last_events_ = 0;
  double ckpt_last_time_ = 0.0;
  /// Per-section (name, crc32) of the most recent snapshot and the
  /// executed-event count it captured; the checkpoint_crc auditor check
  /// re-serializes live state against these whenever the counts match.
  std::vector<std::pair<std::string, std::uint32_t>> last_ckpt_sections_;
  std::uint64_t last_ckpt_executed_ = 0;

  double trace_begin_ = 0.0;
  double trace_end_ = 0.0;
  double workload_start_ = 0.0;
  bool ran_ = false;
};

}  // namespace dtn::net
