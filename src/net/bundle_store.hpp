// Bounded-memory bundle store (docs/bounded-store.md).
//
// Replaces naive per-packet Buffer entries on nodes and (newly
// boundable) landmark stations.  The id list and byte accounting stay
// in the embedded net::Buffer — its swap-erase order is the replay
// contract routers observe — and a parallel slab of POD entry metadata
// (admission sequence, retention constraint, expected delay, TTL
// deadline, logical id) rides along under the same swap-erase, so
// admission and eviction stay O(1)/O(n-scan) with no per-entry
// allocation.
//
// On top of the pooled entries sit the robustness features, all off by
// default so the stock configuration replays bit-identical to the
// unbounded model:
//
//  * Retention constraints (DTN7-ESP's RETENTION_CONSTRAINT_* shape):
//    dispatch-pending source data and forward-pending retry-ledger
//    entries are never eviction victims.
//  * Deterministic eviction policies — drop-oldest (min admission
//    sequence), drop-largest-expected-delay (the routing table's
//    expected inter-landmark delay, ties to oldest), ttl-expire
//    (earliest deadline, ties to oldest) — that free space for an
//    incoming bundle instead of rejecting it.  Victim order is a pure
//    function of store contents, so serial and sharded replays evict
//    identically.
//  * A received-id dedup set (sorted flat vector, deterministic
//    iteration) letting multicopy routers suppress re-admission of
//    logicals this store already carried.
//  * An optional spill-to-disk backend for over-subscribed stations:
//    overflow bundles append persist::Writer-framed records to a
//    per-station file and are recalled FIFO as memory frees up.
//    Spilled entries count toward contains()/spilled accounting but
//    are invisible to packets() — carriers only see in-memory bundles.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/buffer.hpp"
#include "net/packet.hpp"
#include "util/annotations.hpp"

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::sim {
class AuditReport;
}  // namespace dtn::sim

namespace dtn::net {

/// What a full store does with an incoming bundle that does not fit.
enum class EvictionPolicy : std::uint8_t {
  kReject = 0,                  ///< refuse admission (the pre-store behaviour)
  kDropOldest = 1,              ///< evict the smallest admission sequence
  kDropLargestExpectedDelay = 2,///< evict the worst expected delivery delay
  kTtlExpire = 3,               ///< evict the earliest TTL deadline
};

[[nodiscard]] const char* to_string(EvictionPolicy p);
/// Parses the CLI spellings ("reject", "drop-oldest",
/// "drop-largest-expected-delay", "ttl-expire"); false on unknown input.
[[nodiscard]] bool parse_eviction_policy(std::string_view s,
                                         EvictionPolicy* out);

/// Why a bundle may not be chosen as an eviction victim (DTN7-ESP's
/// retention constraints).
enum class Retention : std::uint8_t {
  kNone = 0,
  /// Source data waiting at its origin station for a first carrier.
  kDispatchPending = 1,
  /// A failed transfer's retry is pending in the ledger (fault paths).
  kForwardPending = 2,
};

/// Per-workload store configuration (net::WorkloadConfig::store).  The
/// default value bounds nothing and enables nothing: replays are
/// bit-identical to the unbounded §V-A.1 model.
struct BundleStoreConfig {
  /// Landmark-station capacity; 0 keeps stations unbounded (§V-A.1).
  std::uint64_t station_memory_kb = 0;
  EvictionPolicy policy = EvictionPolicy::kReject;
  /// Received-id duplicate suppression for multicopy routers.
  bool dedup = false;
  /// When non-empty and stations are bounded, station overflow spills
  /// to `<spill_dir>/station_<l>.spill` instead of being refused.  The
  /// directory is relocatable across checkpoint resume (the resumed
  /// process rewrites its spill files from the snapshot), so it is not
  /// part of the config fingerprint beyond the enabled bit.
  std::string spill_dir;
};

/// Outcome of one admission attempt.
enum class Admit : std::uint8_t {
  kStored,            ///< admitted in memory (possibly after evictions)
  kSpilled,           ///< written to the spill backend
  kRefusedCapacity,   ///< no space and the policy could not make any
  kRefusedDuplicate,  ///< dedup set already saw this logical id
};

class BundleStore {
 public:
  BundleStore() = default;
  explicit BundleStore(std::uint64_t capacity_kb) : core_(capacity_kb) {}

  /// Everything an admission decision needs, captured at the call site
  /// so the store never reaches back into the packet table.
  struct AdmitRequest {
    PacketId pid = kNoPacket;
    std::uint32_t size_kb = 1;
    PacketId logical = kNoPacket;
    Retention retention = Retention::kNone;
    double expected_delay = 0.0;
    double deadline = std::numeric_limits<double>::infinity();
    /// Consult the dedup set (callers skip this for e.g. a copy
    /// returning to a store that legitimately re-hosts it).
    bool check_dedup = true;
    /// Station call sites allow spill; node stores never spill.
    bool allow_spill = false;
  };

  /// Applies policy/dedup/spill and reconfigures capacity.  Called once
  /// per store before the replay starts (config is fingerprinted, not
  /// checkpointed).  Truncates any stale spill file at `spill_path`.
  void configure(std::uint64_t capacity_kb, EvictionPolicy policy, bool dedup,
                 std::string spill_path);

  // -- Buffer-compatible read surface (routers compile unchanged) ------
  [[nodiscard]] std::uint64_t capacity_kb() const {
    return core_.capacity_kb();
  }
  [[nodiscard]] std::uint64_t used_kb() const { return core_.used_kb(); }
  [[nodiscard]] bool unbounded() const { return core_.unbounded(); }
  [[nodiscard]] bool has_space(std::uint32_t size_kb) const {
    return core_.has_space(size_kb);
  }
  /// In-memory bundles only (what carriers can pick up).
  [[nodiscard]] std::size_t count() const { return core_.count(); }
  [[nodiscard]] bool empty() const {
    return core_.empty() && spill_.empty();
  }
  [[nodiscard]] std::span<const PacketId> packets() const {
    return core_.packets();
  }
  /// True for in-memory *and* spilled bundles (the packet table's
  /// holder invariant covers both).
  [[nodiscard]] bool contains(PacketId pid) const;

  // -- admission / removal ---------------------------------------------
  /// Buffer-compatible convenience: admit with default metadata and no
  /// dedup/spill involvement.  False on refusal.
  [[nodiscard]] bool add(PacketId pid, std::uint32_t size_kb);

  /// Full admission path.  On kStored after evictions, the victim ids
  /// (already removed from the store) are appended to `evicted_out` for
  /// the caller to retire; `evicted_out` may be null when the policy is
  /// kReject.  Never evicts bundles whose retention != kNone.
  [[nodiscard]] Admit admit(const AdmitRequest& req,
                            std::vector<PacketId>* evicted_out);

  /// Remove a bundle that must be present (in memory or spilled).
  /// Removing an in-memory bundle recalls spilled bundles FIFO while
  /// they fit; recalled ids are appended to `recalled_out` (may be
  /// null) so callers can count them.
  void remove(PacketId pid, std::uint32_t size_kb,
              std::vector<PacketId>* recalled_out = nullptr);

  // -- retention ---------------------------------------------------------
  /// Updates the retention constraint if `pid` is held in memory;
  /// no-op otherwise (spilled bundles are never transfer candidates, so
  /// they never acquire forward-pending status).
  void set_retention_if_held(PacketId pid, Retention r);
  /// Retention of an in-memory bundle (kNone when absent or spilled).
  [[nodiscard]] Retention retention(PacketId pid) const;
  [[nodiscard]] std::uint64_t retained_count() const { return retained_; }

  // -- dedup -------------------------------------------------------------
  [[nodiscard]] bool dedup_enabled() const { return dedup_; }
  /// True when the dedup set has seen `logical` (always false when
  /// dedup is off, so router pre-checks are no-ops by default).
  [[nodiscard]] bool seen_logical(PacketId logical) const;
  [[nodiscard]] std::size_t dedup_seen_count() const { return seen_.size(); }

  // -- spill -------------------------------------------------------------
  [[nodiscard]] bool spill_enabled() const { return !spill_path_.empty(); }
  [[nodiscard]] std::size_t spilled_count() const { return spill_.size(); }
  [[nodiscard]] std::uint64_t spilled_kb() const { return spilled_kb_; }
  [[nodiscard]] bool spilled(PacketId pid) const;
  /// Spilled packet ids in FIFO (recall) order.
  [[nodiscard]] std::vector<PacketId> spilled_ids() const;

  [[nodiscard]] EvictionPolicy policy() const { return policy_; }

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// Layout: the embedded Buffer image, then per-entry metadata in id
  /// order, the admission counter, the dedup set, and the spill index
  /// (metadata only — offsets are an artifact of the local file and are
  /// recomputed by load, which rewrites a compacted spill file).
  void save(persist::Writer& w) const;
  void load(persist::Reader& r);

  // -- invariant auditing (sim/invariant_auditor.hpp) -------------------
  /// Re-derives the pool accounting (metadata slab parallel to the id
  /// list, byte totals, capacity bound), the retained-count cache, the
  /// dedup set's sorted-unique and membership invariants, and the spill
  /// index (sizes, strictly increasing offsets, id disjointness from
  /// memory).  `label` prefixes failure details ("node 3", "station 7").
  void audit(sim::AuditReport& report, std::string_view label) const;

  /// Test-only seeded corruption for the auditor's negative tests; each
  /// is exactly revertible by the opposite sign.
  void debug_corrupt_used_kb_for_test(int delta) {
    core_.debug_corrupt_used_kb_for_test(delta);
  }
  void debug_corrupt_retained_for_test(int delta) {
    retained_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(retained_) + delta);
  }
  void debug_corrupt_spilled_kb_for_test(int delta) {
    spilled_kb_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(spilled_kb_) + delta);
  }
  /// +1: duplicate the first seen id at the back (breaks sortedness);
  /// -1: undo.
  void debug_corrupt_dedup_order_for_test(int delta);
  /// +1: skew the first entry's slab size against the Buffer
  /// accounting; -1: undo.
  void debug_corrupt_pool_size_for_test(int delta);

 private:
  struct Entry {
    std::uint64_t admit_seq = 0;
    double expected_delay = 0.0;
    double deadline = std::numeric_limits<double>::infinity();
    PacketId logical = kNoPacket;
    std::uint32_t size_kb = 0;
    Retention retention = Retention::kNone;
  };
  /// Spill index row: full metadata lives here (the checkpoint
  /// serializes the index, not the file), plus where the framed record
  /// sits in the spill file for recall-time verification.
  struct SpillRecord {
    Entry entry;
    PacketId pid = kNoPacket;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
  };

  void note_seen(PacketId logical);
  /// Store `pid` in memory with `e`'s metadata (space must exist).
  void place(PacketId pid, const Entry& e);
  /// Evicts retention-free victims per `policy_` until `size_kb` fits;
  /// false (store unchanged beyond prior victims) when it cannot.
  bool evict_for(std::uint32_t size_kb, std::vector<PacketId>* evicted_out);
  [[nodiscard]] std::size_t pick_victim() const;
  void spill_out(PacketId pid, const Entry& e);
  void recall_while_fits(std::vector<PacketId>* recalled_out);
  /// Appends one framed record to the spill file; returns its length.
  std::uint64_t spill_append(PacketId pid, const Entry& e);
  /// Reads a record back and cross-checks it against the index row.
  [[nodiscard]] Entry spill_fetch(const SpillRecord& rec) const;
  /// Truncate/create the spill file and reset the append tail.
  void spill_reset();

  Buffer core_;
  /// Pooled entry slab, parallel to core_.packets() (same swap-erase).
  std::vector<Entry> meta_;
  std::uint64_t next_admit_seq_ = 0;
  /// Cache of entries with retention != kNone (audit() recounts it).
  std::uint64_t retained_ = 0;
  /// Sorted unique logical ids this store has admitted (dedup set).
  std::vector<PacketId> seen_;
  /// FIFO of spilled bundles (front recalled first).
  std::vector<SpillRecord> spill_;
  DTN_CKPT_SKIP("derived: load recomputes it while rewriting the spill file")
  std::uint64_t spilled_kb_ = 0;
  DTN_CKPT_SKIP("derived: next append offset of the rewritten spill file")
  std::uint64_t spill_tail_ = 0;
  DTN_CKPT_SKIP("configuration, pinned by the config fingerprint")
  EvictionPolicy policy_ = EvictionPolicy::kReject;
  DTN_CKPT_SKIP("configuration, pinned by the config fingerprint")
  bool dedup_ = false;
  DTN_CKPT_SKIP("configuration, pinned by the config fingerprint")
  std::string spill_path_;
};

}  // namespace dtn::net
