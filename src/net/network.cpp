#include "net/network.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>

#include "persist/checkpoint.hpp"
#include "persist/flat_io.hpp"
#include "persist/serializer.hpp"
#include "trace/cursor.hpp"
#include "trace/shard_cursor.hpp"
#include "util/logging.hpp"

namespace dtn::net {

Network::Network(const trace::Trace& trace, Router& router,
                 WorkloadConfig config)
    : trace_(trace), router_(router), cfg_(config), rng_(config.seed) {
  DTN_ASSERT(trace.finalized());
  DTN_ASSERT(cfg_.warmup_fraction >= 0.0 && cfg_.warmup_fraction < 1.0);
  DTN_ASSERT(cfg_.time_unit > 0.0);
  // Periodic invariant auditing: the per-run config can enable it; the
  // DTN_AUDIT environment flag (already folded into the default-constructed
  // auditor) enables it for whole test/CI runs without touching code.
  if (cfg_.audit_period_events > 0) {
    auto acfg = auditor_.config();
    acfg.enabled = true;
    acfg.period_events = cfg_.audit_period_events;
    auditor_ = sim::InvariantAuditor(acfg);
  }
  auditor_.register_check(
      "event_queue.heap",
      [this](sim::AuditReport& r) { sim_.queue().audit(r); });
  auditor_.register_check(
      "network.present_sets",
      [this](sim::AuditReport& r) { audit_present_sets(r); });
  auditor_.register_check(
      "network.buffer_accounting",
      [this](sim::AuditReport& r) { audit_buffer_accounting(r); });
  auditor_.register_check(
      "router.state",
      [this](sim::AuditReport& r) { router_.audit(*this, r); });
  auditor_.register_check(
      "network.fault_state",
      [this](sim::AuditReport& r) { audit_fault_state(r); });
  auditor_.register_check(
      "network.checkpoint_crc",
      [this](sim::AuditReport& r) { audit_checkpoint_crc(r); });
  auditor_.register_check(
      "network.bundle_store",
      [this](sim::AuditReport& r) { audit_bundle_stores(r); });
  // Fault plan: engage the injector (which validates the plan against
  // the trace's node/landmark universe, throwing std::invalid_argument
  // on malformed config).
  if (cfg_.faults.has_value()) {
    faults_.emplace(*cfg_.faults, trace.num_nodes(), trace.num_landmarks());
  }
  outage_recovery_pending_.assign(trace.num_landmarks(), -1.0);
  nodes_.resize(trace.num_nodes());
  for (NodeState& n : nodes_) {
    n.buffer.configure(cfg_.node_memory_kb, cfg_.store.policy,
                       cfg_.store.dedup, /*spill_path=*/{});
  }
  present_pos_.resize(trace.num_nodes(), 0);
  stations_.resize(trace.num_landmarks());
  for (LandmarkId l = 0; l < stations_.size(); ++l) {
    // Spill only applies to bounded stations; BundleStore::configure
    // drops the path again when the capacity is 0 (unbounded §V-A.1).
    std::string spill_path;
    if (!cfg_.store.spill_dir.empty() && cfg_.store.station_memory_kb > 0) {
      spill_path = cfg_.store.spill_dir + "/station_" + std::to_string(l) +
                   ".spill";
    }
    stations_[l].storage.configure(cfg_.store.station_memory_kb,
                                   cfg_.store.policy, cfg_.store.dedup,
                                   std::move(spill_path));
  }
  trace_begin_ = trace.begin_time();
  trace_end_ = trace.end_time();
  workload_start_ =
      trace_begin_ + cfg_.warmup_fraction * (trace_end_ - trace_begin_);
}

void Network::build_workload() {
  workload_.clear();
  if (cfg_.packets_per_landmark_per_day <= 0.0 || trace_.num_landmarks() <= 1) {
    return;
  }
  // Independent Poisson process per landmark, starting after the
  // initialization phase (paper: first 1/4 of the trace).  Every draw
  // comes from a per-landmark split stream and happens before the
  // replay, so the randomness a landmark's workload consumes is
  // independent of event interleaving — the property that lets the
  // sharded engine replay the identical workload.
  const double mean_gap = trace::kDay / cfg_.packets_per_landmark_per_day;
  const auto num_landmarks = trace_.num_landmarks();
  if (!cfg_.destination_weights.empty()) {
    DTN_ASSERT(cfg_.destination_weights.size() == num_landmarks);
  }
  std::vector<double> weights;
  for (LandmarkId l = 0; l < num_landmarks; ++l) {
    Rng stream = rng_.split(l);
    const double* weight_data = nullptr;
    if (!cfg_.destination_weights.empty()) {
      weights = cfg_.destination_weights;
      weights[l] = 0.0;
      double total = 0.0;
      for (const double w : weights) total += w;
      // All demand from this landmark targets itself (e.g. the
      // collection sink): nothing to send.
      if (total <= 0.0) continue;
      weight_data = weights.data();
    }
    double t = workload_start_;
    while (true) {
      t += stream.exponential(mean_gap);
      if (t > trace_end_) break;
      LandmarkId dst;
      if (weight_data == nullptr) {
        // Uniformly random destination among the others (§V-A.1).
        dst = static_cast<LandmarkId>(stream.uniform_index(num_landmarks - 1));
        if (dst >= l) ++dst;
      } else {
        dst = static_cast<LandmarkId>(
            stream.discrete({weight_data, num_landmarks}));
      }
      workload_.push_back({t, l, dst, kNoPacket});
    }
  }
  // Rank order = global time order (ties by source landmark; within one
  // landmark the stable sort keeps the generation order).
  std::stable_sort(workload_.begin(), workload_.end(),
                   [](const WorkloadEntry& a, const WorkloadEntry& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.src < b.src;
                   });
}

void Network::schedule_dynamic_events() {
  // Dynamic events take the sequence range above the cursor's in a
  // fixed scheduling order — manual packets, then sweep/tick pairs,
  // then the pre-drawn Poisson workload — so every event's (time, seq)
  // key is a static function of the config.  The sharded engine
  // recomputes exactly these ranks (docs/parallel-engine.md).
  for (std::size_t i = 0; i < cfg_.manual_packets.size(); ++i) {
    const auto& mp = cfg_.manual_packets[i];
    DTN_ASSERT(mp.src < trace_.num_landmarks());
    DTN_ASSERT(mp.dst < trace_.num_landmarks());
    DTN_ASSERT(mp.src != mp.dst || mp.dst_node != trace::kNoNode);
    sim::Event ev;
    ev.kind = sim::EventKind::kManualPacket;
    ev.a = static_cast<std::uint32_t>(i);
    sim_.schedule(mp.time, ev);
  }

  // Measurement time-unit ticks for bandwidth / routing-table updates,
  // each preceded by a TTL expiry sweep at the same instant (the sweep
  // is scheduled first, so it keeps the lower sequence number).
  const auto units = static_cast<std::size_t>(
      std::ceil((trace_end_ - trace_begin_) / cfg_.time_unit));
  for (std::size_t u = 1; u <= units; ++u) {
    const double t = trace_begin_ + static_cast<double>(u) * cfg_.time_unit;
    if (t > trace_end_) break;
    sim::Event sweep;
    sweep.kind = sim::EventKind::kTtlSweep;
    sim_.schedule(t, sweep);
    sim::Event tick;
    tick.kind = sim::EventKind::kTimeUnitTick;
    tick.a = static_cast<std::uint32_t>(u);
    sim_.schedule(t, tick);
  }

  build_workload();
  for (std::size_t j = 0; j < workload_.size(); ++j) {
    sim::Event ev;
    ev.kind = sim::EventKind::kPacketGen;
    ev.a = workload_[j].src;
    ev.b = static_cast<std::uint32_t>(j);
    sim_.schedule(workload_[j].time, ev);
  }
  // The serial packet table grows by exactly one row per generation
  // event; without the upfront reservation every reallocation copies
  // the whole table, station_path vectors included.
  packets_.reserve(packets_.size() + cfg_.manual_packets.size() +
                   workload_.size());
  logical_delivered_.reserve(logical_delivered_.size() +
                             cfg_.manual_packets.size() + workload_.size());
}

void Network::run() {
  DTN_ASSERT(!ran_);
  ran_ = true;

  router_.on_init(*this);

  // Trace replay: arrivals and departures stream lazily out of the
  // cursor's k-way merge instead of being pre-scheduled one closure per
  // visit.  The cursor owns the sequence range [0, total_events()), so
  // same-time ties order exactly as the retired eager enumeration did.
  trace::TraceCursor cursor(trace_);
  sim_.set_dispatcher(&Network::dispatch_trampoline, this);
  sim_.set_seq_floor(cursor.total_events());

  schedule_dynamic_events();

  // Fault events last: a plan with nothing to inject schedules nothing,
  // and the workload events above keep the sequence numbers they would
  // have in a fault-free run.
  schedule_faults();

  // Batched contact dispatch needs the cursor for lookahead; per-event
  // auditing must observe every event boundary, so it forces the
  // unbatched path (mid-batch present_pos_ is deferred).
  batch_source_ = cfg_.batch_contacts && !auditor_.enabled() ? &cursor
                                                             : nullptr;
  sim_.run_until_with(trace_end_, &cursor);
  batch_source_ = nullptr;
  drop_expired();
  // One final audit so short runs (fewer events than the period) still
  // get checked at least once when auditing is on.
  if (auditor_.enabled()) auditor_.audit_now();
}

bool Network::run(persist::CheckpointManager& ckpt) {
  DTN_ASSERT(!ran_);
  DTN_ASSERT(router_.checkpointable());
  ran_ = true;

  trace::TraceCursor cursor(trace_);
  sim_.set_dispatcher(&Network::dispatch_trampoline, this);
  ckpt_mgr_ = &ckpt;
  ckpt_cursor_ = &cursor;

  if (ckpt.has_checkpoint()) {
    // Resume: every piece of live state comes out of the snapshot — no
    // seq floor (the restored queue already carries its next_seq), no
    // scheduling, no build_workload (its RNG splits already happened in
    // the original run; replaying them would desynchronize rng_), no
    // on_init (checkpoint_load performs it).
    load_checkpoint(ckpt.read_latest(), cursor);
  } else {
    router_.on_init(*this);
    sim_.set_seq_floor(cursor.total_events());
    schedule_dynamic_events();
    schedule_faults();
  }
  ckpt_last_events_ = sim_.events_executed();
  ckpt_last_time_ = sim_.now();

  const bool completed = sim_.run_until(
      trace_end_, &cursor, &Network::checkpoint_step_trampoline, this);
  ckpt_mgr_ = nullptr;
  if (!completed) {
    // Suspended by stop_after_events; the snapshot of this exact point
    // is already on disk (checkpoint_step wrote it before stopping).
    ckpt_cursor_ = nullptr;
    return false;
  }
  drop_expired();
  if (auditor_.enabled()) auditor_.audit_now();
  ckpt_cursor_ = nullptr;
  return true;
}

void Network::run_sharded(std::size_t num_shards, ThreadPool* pool,
                          persist::CheckpointManager* ckpt) {
  if (num_shards <= 1) {
    if (ckpt != nullptr) {
      run(*ckpt);
    } else {
      run();
    }
    return;
  }
  DTN_ASSERT(!ran_);
  DTN_ASSERT(ckpt == nullptr || router_.checkpointable());
  // Preconditions of the parallel path (docs/parallel-engine.md):
  // a shard-safe router, no fault plan (fault events are global), no
  // periodic event-count auditing (the shared event counter would
  // race; barrier audits below cover the DTN_AUDIT use case) and a
  // landmark-addressed workload (node-addressed generation reads the
  // destination node's location, which another shard may own).
  DTN_ASSERT(router_.shard_safe());
  DTN_ASSERT(!cfg_.faults.has_value());
  DTN_ASSERT(cfg_.audit_period_events == 0);
  for (const auto& mp : cfg_.manual_packets) {
    DTN_ASSERT(mp.src < trace_.num_landmarks());
    DTN_ASSERT(mp.dst < trace_.num_landmarks());
    DTN_ASSERT(mp.src != mp.dst);
    DTN_ASSERT(mp.dst_node == trace::kNoNode);
    (void)mp;
  }
  ran_ = true;

  // Shard map: balance landmarks by visit count, then split the trace
  // into per-shard (time, seq)-sorted event streams.
  const auto weights = trace::landmark_visit_weights(trace_);
  const auto landmark_shard = sim::assign_shards(weights, num_shards);
  auto split = trace::split_trace_events(trace_, landmark_shard, num_shards);
  const std::uint64_t seq_floor = split.total_events;

  // Static sequence ranks mirroring run()'s scheduling order exactly:
  // manual packets, then sweep/tick pairs, then the Poisson workload.
  const std::size_t num_manual = cfg_.manual_packets.size();
  const auto max_units = static_cast<std::size_t>(
      std::ceil((trace_end_ - trace_begin_) / cfg_.time_unit));
  std::vector<sim::EventKey> unit_bounds;
  for (std::size_t u = 1; u <= max_units; ++u) {
    const double t = trace_begin_ + static_cast<double>(u) * cfg_.time_unit;
    if (t > trace_end_) break;
    // The bound sits at the sweep's own key; the coordinator executes
    // the sweep and the tick (rank + 1) as its barrier phase.
    unit_bounds.push_back({t, seq_floor + num_manual + 2 * (u - 1)});
  }
  build_workload();
  const std::uint64_t gen_rank0 =
      seq_floor + num_manual + 2 * unit_bounds.size();

  // Pre-assign packet ids: generation-type events execute in (time,
  // rank) order, and serial ids are exactly that append order.  Manual
  // packets scheduled past the trace end keep their rank but never
  // dispatch, so they get no id.
  std::vector<sim::Event> dyn;
  dyn.reserve(num_manual + workload_.size());
  for (std::size_t i = 0; i < num_manual; ++i) {
    const auto& mp = cfg_.manual_packets[i];
    if (mp.time > trace_end_) continue;
    sim::Event ev{};
    ev.time = mp.time;
    ev.seq = seq_floor + i;
    ev.kind = sim::EventKind::kManualPacket;
    ev.a = static_cast<std::uint32_t>(i);
    dyn.push_back(ev);
  }
  for (std::size_t j = 0; j < workload_.size(); ++j) {
    sim::Event ev{};
    ev.time = workload_[j].time;
    ev.seq = gen_rank0 + j;
    ev.kind = sim::EventKind::kPacketGen;
    ev.a = workload_[j].src;
    ev.b = static_cast<std::uint32_t>(j);
    dyn.push_back(ev);
  }
  std::sort(dyn.begin(), dyn.end(), [](const sim::Event& a,
                                       const sim::Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  manual_pids_.assign(num_manual, kNoPacket);
  Packet unborn;
  unborn.state = PacketState::kUnborn;
  packets_.assign(dyn.size(), unborn);
  logical_delivered_.assign(dyn.size(), 0);
  for (std::size_t k = 0; k < dyn.size(); ++k) {
    const auto pid = static_cast<PacketId>(k);
    if (dyn[k].kind == sim::EventKind::kManualPacket) {
      manual_pids_[dyn[k].a] = pid;
    } else {
      workload_[dyn[k].b].pid = pid;
    }
  }

  // Generation events run on the shard owning their source landmark
  // (dyn is globally sorted, so each per-shard stream stays sorted).
  std::vector<std::vector<sim::Event>> dyn_streams(num_shards);
  for (const sim::Event& ev : dyn) {
    const LandmarkId src = ev.kind == sim::EventKind::kManualPacket
                               ? cfg_.manual_packets[ev.a].src
                               : workload_[ev.b].src;
    dyn_streams[landmark_shard[src]].push_back(ev);
  }

  const auto epochs = sim::plan_barriers(
      std::move(split.migrations), unit_bounds,
      {trace_end_, std::numeric_limits<std::uint64_t>::max()});

  contexts_ = std::vector<ShardContext>(num_shards);
  router_.prepare_shards(num_shards);
  sharded_run_ = true;
  router_.on_init(*this);

  std::optional<ThreadPool> owned_pool;
  if (pool == nullptr) {
    owned_pool.emplace(num_shards);
    pool = &*owned_pool;
  }

  std::vector<std::size_t> trace_pos(num_shards, 0);
  std::vector<std::size_t> dyn_pos(num_shards, 0);

  // Two-pointer merge of one shard's trace and generation streams,
  // processed strictly below the epoch bound.  Safe to run from any
  // thread: every write lands in shard-owned state (ScopedShard routes
  // the counter/diagnostic slots), so the inline fast path below and
  // the pool path execute identical work.
  const auto process_shard = [&](std::size_t s, const sim::EventKey& bound) {
    sim::ScopedShard guard(s);
    ShardContext& ctx = contexts_[s];
    const auto& trace_stream = split.events[s];
    const auto& dyn_stream = dyn_streams[s];
    std::size_t ti = trace_pos[s];
    std::size_t di = dyn_pos[s];
    while (true) {
      const bool has_trace = ti < trace_stream.size();
      const bool has_dyn = di < dyn_stream.size();
      if (!has_trace && !has_dyn) break;
      bool take_trace = has_trace;
      if (has_trace && has_dyn) {
        take_trace = trace_stream[ti].key() <
                     sim::EventKey{dyn_stream[di].time, dyn_stream[di].seq};
      }
      if (take_trace) {
        const trace::ShardEventRef& ref = trace_stream[ti];
        if (!(ref.key() < bound)) break;
        ctx.now = ref.time;
        ctx.cur_seq = ref.seq;
        ++ctx.events;
        // Batched contact dispatch, sharded flavor: consecutive
        // same-(time, landmark) departures in this shard's stream
        // collapse into one handle_departure_batch call.  Generation
        // events cannot interleave (at equal times their seqs sit above
        // the trace range), and barrier audits only ever run with every
        // batch completed, so the deferred present_pos_ renumber is
        // never observable.
        if (cfg_.batch_contacts && (ref.visit_and_phase & 1u) != 0 &&
            ti + 1 < trace_stream.size() &&
            trace_stream[ti + 1].time == ref.time) {
          const trace::Visit& first =
              trace_.visits(ref.node)[ref.visit_and_phase >> 1];
          std::vector<const trace::Visit*>& batch = ctx.batch;
          batch.clear();
          batch.push_back(&first);
          std::size_t tj = ti + 1;
          for (; tj < trace_stream.size(); ++tj) {
            const trace::ShardEventRef& next = trace_stream[tj];
            if (next.time != ref.time || (next.visit_and_phase & 1u) == 0 ||
                !(next.key() < bound)) {
              break;
            }
            const trace::Visit& visit =
                trace_.visits(next.node)[next.visit_and_phase >> 1];
            if (visit.landmark != first.landmark) break;
            ctx.cur_seq = next.seq;
            ++ctx.events;
            batch.push_back(&visit);
          }
          if (batch.size() >= 2) {
            handle_departure_batch(batch.data(), batch.size());
          } else {
            handle_departure(first);
          }
          ti = tj;
        } else {
          dispatch_sharded(trace::materialize(ref));
          ++ti;
        }
      } else {
        const sim::Event& ev = dyn_stream[di];
        if (!(sim::EventKey{ev.time, ev.seq} < bound)) break;
        ctx.now = ev.time;
        ctx.cur_seq = ev.seq;
        ++ctx.events;
        dispatch_sharded(ev);
        ++di;
      }
    }
    trace_pos[s] = ti;
    dyn_pos[s] = di;
  };
  // Events pending in shard s strictly below the bound (both streams
  // are key-sorted, so this is two binary searches).
  const auto pending_below = [&](std::size_t s, const sim::EventKey& bound) {
    const auto& trace_stream = split.events[s];
    const auto& dyn_stream = dyn_streams[s];
    const auto tit = std::lower_bound(
        trace_stream.begin() + static_cast<std::ptrdiff_t>(trace_pos[s]),
        trace_stream.end(), bound,
        [](const trace::ShardEventRef& e, const sim::EventKey& k) {
          return e.key() < k;
        });
    const auto dit = std::lower_bound(
        dyn_stream.begin() + static_cast<std::ptrdiff_t>(dyn_pos[s]),
        dyn_stream.end(), bound,
        [](const sim::Event& e, const sim::EventKey& k) {
          return sim::EventKey{e.time, e.seq} < k;
        });
    return static_cast<std::size_t>(
        (tit - trace_stream.begin()) - static_cast<std::ptrdiff_t>(trace_pos[s]) +
        (dit - dyn_stream.begin()) - static_cast<std::ptrdiff_t>(dyn_pos[s]));
  };
  // Below this many total pending events an epoch runs inline on the
  // coordinator thread: a pool barrier costs more than dispatching a
  // handful of events, and migration stabs usually open sliver epochs
  // where a single node hands over between two shards.  Shard state is
  // disjoint, so processing shards sequentially from one thread is
  // execution-equivalent to the parallel path.
  constexpr std::size_t kInlineEpochThreshold = 128;

  // Barrier snapshot writer (docs/checkpointing.md): at a unit barrier
  // every event strictly below the bound has dispatched, so the sharded
  // state collapses to exactly what a serial run holds right after the
  // barrier's time-unit tick.  The image is written in serial format —
  // the resumed process continues on the serial engine — and is
  // byte-identical to a serial snapshot of the same point: the queue
  // image is canonical (key-sorted), the pre-assigned packet ids are
  // stripped (the serial engine re-derives them by appending), and only
  // the born prefix of the packet table is stored.
  const auto write_barrier_snapshot = [&](const sim::EpochBound& bound,
                                          std::size_t units_done,
                                          std::uint64_t executed) {
    persist::Writer w;
    w.begin_section("meta");
    write_config_fingerprint(w);
    w.end_section();

    // Pending dynamic events: the unprocessed tails of every shard's
    // generation stream, the manual packets past the trace horizon
    // (the serial engine schedules them and never dispatches them, so
    // they sit in its queue), and the sweep/tick pairs of the units
    // still ahead.
    std::vector<sim::Event> pending;
    std::uint64_t trace_done = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      trace_done += trace_pos[s];
      pending.insert(pending.end(),
                     dyn_streams[s].begin() +
                         static_cast<std::ptrdiff_t>(dyn_pos[s]),
                     dyn_streams[s].end());
    }
    for (std::size_t i = 0; i < num_manual; ++i) {
      if (cfg_.manual_packets[i].time <= trace_end_) continue;
      sim::Event ev{};
      ev.time = cfg_.manual_packets[i].time;
      ev.seq = seq_floor + i;
      ev.kind = sim::EventKind::kManualPacket;
      ev.a = static_cast<std::uint32_t>(i);
      pending.push_back(ev);
    }
    for (std::size_t idx = units_done; idx < unit_bounds.size(); ++idx) {
      sim::Event sweep{};
      sweep.time = unit_bounds[idx].time;
      sweep.seq = unit_bounds[idx].seq;
      sweep.kind = sim::EventKind::kTtlSweep;
      pending.push_back(sweep);
      sim::Event tick{};
      tick.time = unit_bounds[idx].time;
      tick.seq = unit_bounds[idx].seq + 1;
      tick.kind = sim::EventKind::kTimeUnitTick;
      tick.a = static_cast<std::uint32_t>(idx + 1);
      pending.push_back(tick);
    }
    std::sort(pending.begin(), pending.end(),
              [](const sim::Event& a, const sim::Event& b) {
                if (a.time != b.time) return a.time < b.time;
                return a.seq < b.seq;
              });
    w.begin_section("sim");
    w.f64(bound.key.time);
    w.u64(executed);
    sim::EventQueue::save_image(w, pending.data(), pending.size(),
                                gen_rank0 + workload_.size(),
                                executed - trace_done, bound.key.time);
    w.end_section();

    // Cursor positions re-derived from ground truth: a node sits before
    // its next arrival (2 * completed visits) or, while present, before
    // the matching departure.
    std::vector<std::uint32_t> positions(nodes_.size());
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      positions[n] = static_cast<std::uint32_t>(
          2 * nodes_[n].history.size() +
          (nodes_[n].location != kNoLandmark ? 1 : 0));
    }
    w.begin_section("cursor");
    trace::TraceCursor::save_image(w, positions);
    w.end_section();

    const RunCounters merged = merged_shard_counters(nullptr);
    const auto born = static_cast<std::size_t>(
        std::lower_bound(dyn.begin(), dyn.end(), bound.key,
                         [](const sim::Event& e, const sim::EventKey& k) {
                           return sim::EventKey{e.time, e.seq} < k;
                         }) -
        dyn.begin());
    save_tail_sections(w, merged, born, /*strip_preassigned=*/true);
    w.finish();
    ckpt->write(executed, w.buffer());
  };
  std::size_t units_done = 0;
  std::uint64_t ckpt_last_events = 0;
  double ckpt_last_time = 0.0;

  std::vector<std::size_t> active;
  active.reserve(num_shards);
  for (const sim::EpochBound& bound : epochs) {
    active.clear();
    std::size_t pending = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::size_t p = pending_below(s, bound.key);
      if (p > 0) active.push_back(s);
      pending += p;
    }
    if (active.size() == 1 || pending <= kInlineEpochThreshold) {
      for (const std::size_t s : active) process_shard(s, bound.key);
    } else {
      parallel_for(*pool, active.size(), [&](std::size_t i) {
        process_shard(active[i], bound.key);
      });
    }
    // Barrier phase, on the coordinator thread under shard slot 0: the
    // global TTL sweep and router tick run exactly where their serial
    // (time, seq) keys place them.
    if (bound.kind == sim::EpochKind::kUnit) {
      ShardContext& coord = contexts_[0];
      coord.now = bound.key.time;
      coord.cur_seq = bound.key.seq;
      ++coord.events;
      drop_expired();
      coord.cur_seq = bound.key.seq + 1;
      ++coord.events;
      router_.on_time_unit(*this, bound.unit_index);
      ++units_done;
      if (ckpt != nullptr) {
        std::uint64_t executed = 2 * units_done;
        for (std::size_t s = 0; s < num_shards; ++s) {
          executed += trace_pos[s] + dyn_pos[s];
        }
        const persist::CheckpointConfig& cc = ckpt->config();
        const bool due_events = cc.every_events > 0 &&
                                executed - ckpt_last_events >= cc.every_events;
        const bool due_time =
            cc.every_time > 0.0 &&
            bound.key.time - ckpt_last_time >= cc.every_time;
        if (due_events || due_time) {
          write_barrier_snapshot(bound, units_done, executed);
          ckpt_last_events = executed;
          ckpt_last_time = bound.key.time;
        }
      }
    }
    if (auditor_.enabled()) auditor_.audit_now();
  }

  // Horizon sweep, as run() does after run_until.
  contexts_[0].now = trace_end_;
  drop_expired();
  merge_shard_contexts();
  if (auditor_.enabled()) auditor_.audit_now();
}

void Network::dispatch_sharded(const sim::Event& ev) {
  switch (ev.kind) {
    case sim::EventKind::kArrival:
      handle_arrival(trace_.visits(ev.a)[ev.b]);
      break;
    case sim::EventKind::kDeparture:
      handle_departure(trace_.visits(ev.a)[ev.b]);
      break;
    case sim::EventKind::kPacketGen: {
      const WorkloadEntry& w = workload_[ev.b];
      generate_packet(w.src, w.dst, cfg_.ttl, trace::kNoNode, w.pid);
      break;
    }
    case sim::EventKind::kManualPacket: {
      const auto& mp = cfg_.manual_packets[ev.a];
      const double ttl = mp.ttl > 0.0 ? mp.ttl : cfg_.ttl;
      generate_packet(mp.src, mp.dst, ttl, trace::kNoNode,
                      manual_pids_[ev.a]);
      break;
    }
    default:
      // Sweeps/ticks run at barriers; faults are rejected up front.
      DTN_ASSERT(false);
  }
}

void Network::merge_shard_contexts() {
  std::uint64_t events = 0;
  counters_ = merged_shard_counters(&events);
  sharded_events_ = events;
}

RunCounters Network::merged_shard_counters(std::uint64_t* events_out) const {
  RunCounters total;
  std::vector<DeliveryRecord> records;
  std::size_t num_records = 0;
  for (const ShardContext& ctx : contexts_) {
    num_records += ctx.records.size();
  }
  records.reserve(num_records);
  std::uint64_t events = 0;
  for (const ShardContext& ctx : contexts_) {
    const RunCounters& c = ctx.counters;
    total.generated += c.generated;
    total.delivered += c.delivered;
    total.dropped_ttl += c.dropped_ttl;
    total.refused_buffer += c.refused_buffer;
    total.packet_forwards += c.packet_forwards;
    total.replications += c.replications;
    total.evicted_policy += c.evicted_policy;
    total.evicted_kb += c.evicted_kb;
    total.admission_shed += c.admission_shed;
    total.duplicates_suppressed += c.duplicates_suppressed;
    total.dedup_refused += c.dedup_refused;
    total.spilled_bundles += c.spilled_bundles;
    total.recalled_bundles += c.recalled_bundles;
    // Every account_control summand is an integer-valued double (entry
    // counts), so all partial sums are exact and the per-shard
    // regrouping cannot change the total's bits.
    total.control_entries += c.control_entries;
    // Faults are rejected in sharded runs; the resilience counters must
    // all still be zero.
    DTN_ASSERT(c.node_crashes == 0 && c.station_outages == 0 &&
               c.packets_lost_fault == 0 && c.transfers_interrupted == 0 &&
               c.transfers_blocked_fault == 0);
    events += ctx.events;
    records.insert(records.end(), ctx.records.begin(), ctx.records.end());
  }
  // Restore the serial delivery order: records sort by the delivering
  // event's (time, seq) key; several deliveries inside one event share
  // a key and sit contiguously in one shard's log, so the stable sort
  // keeps their intra-event order.
  std::stable_sort(records.begin(), records.end(),
                   [](const DeliveryRecord& a, const DeliveryRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.seq < b.seq;
                   });
  total.delivery_delays.reserve(records.size());
  total.delivery_hops.reserve(records.size());
  for (const DeliveryRecord& r : records) {
    total.total_delay += r.delay;
    total.delivery_delays.push_back(r.delay);
    total.delivery_hops.push_back(r.hops);
  }
  DTN_ASSERT(total.delivered == records.size());
  if (events_out != nullptr) *events_out = events;
  return total;
}

// -- checkpointing (src/persist/, docs/checkpointing.md) ----------------

void Network::write_config_fingerprint(persist::Writer& w) const {
  // Everything the snapshot depends on but does not store.  The audit
  // period is deliberately excluded: auditing is read-only, so a resume
  // may turn it on or off.
  w.u64(trace_.num_nodes());
  w.u64(trace_.num_landmarks());
  w.u64(trace_.total_visits());
  w.f64(trace_begin_);
  w.f64(trace_end_);
  w.f64(cfg_.packets_per_landmark_per_day);
  w.f64(cfg_.ttl);
  w.u32(cfg_.packet_size_kb);
  w.u64(cfg_.node_memory_kb);
  // Bounded-store configuration (docs/bounded-store.md).  The spill
  // *directory* is deliberately excluded: resume rewrites its spill
  // files from the snapshot, so the directory is relocatable — only
  // whether spilling is enabled is pinned.
  w.u64(cfg_.store.station_memory_kb);
  w.u8(static_cast<std::uint8_t>(cfg_.store.policy));
  w.boolean(cfg_.store.dedup);
  w.boolean(!cfg_.store.spill_dir.empty());
  w.f64(cfg_.warmup_fraction);
  w.f64(cfg_.time_unit);
  w.u64(cfg_.seed);
  persist::write_vec(w, cfg_.destination_weights);
  w.u64(cfg_.manual_packets.size());
  for (const auto& mp : cfg_.manual_packets) {
    w.u32(mp.src);
    w.u32(mp.dst);
    w.f64(mp.time);
    w.f64(mp.ttl);
    w.u32(mp.dst_node);
  }
  w.boolean(cfg_.faults.has_value());
  if (cfg_.faults.has_value()) {
    const sim::FaultPlan& fp = *cfg_.faults;
    w.u64(fp.seed);
    w.u64(fp.node_crashes.size());
    for (const auto& c : fp.node_crashes) {
      w.u32(c.node);
      w.f64(c.time);
      w.f64(c.downtime);
    }
    w.f64(fp.node_crash_rate_per_day);
    w.f64(fp.node_mean_downtime);
    w.f64(fp.crash_buffer_loss);
    w.u64(fp.station_outages.size());
    for (const auto& o : fp.station_outages) {
      w.u32(o.station);
      w.f64(o.start);
      w.f64(o.end);
    }
    w.f64(fp.station_outage_rate_per_day);
    w.f64(fp.station_mean_outage);
    w.f64(fp.transfer_failure_prob);
    w.f64(fp.retry_backoff);
    w.f64(fp.retry_backoff_max);
    w.f64(fp.dv_loss_prob);
    w.f64(fp.dv_delay_prob);
  }
  w.str(router_.name());
}

void Network::check_config_fingerprint(persist::Reader& r) const {
  // Field-by-field mirror of write_config_fingerprint; the first
  // disagreement names what changed.  Doubles compare by bit pattern.
  const auto mismatch = [](const char* what) {
    throw persist::FormatError(
        std::string("checkpoint fingerprint mismatch: ") + what +
        " differs from this run's configuration");
  };
  const auto want_u32 = [&](std::uint32_t expect, const char* what) {
    if (r.u32() != expect) mismatch(what);
  };
  const auto want_u64 = [&](std::uint64_t expect, const char* what) {
    if (r.u64() != expect) mismatch(what);
  };
  const auto want_f64 = [&](double expect, const char* what) {
    if (std::bit_cast<std::uint64_t>(r.f64()) !=
        std::bit_cast<std::uint64_t>(expect)) {
      mismatch(what);
    }
  };
  const auto want_bool = [&](bool expect, const char* what) {
    if (r.boolean() != expect) mismatch(what);
  };
  want_u64(trace_.num_nodes(), "trace node count");
  want_u64(trace_.num_landmarks(), "trace landmark count");
  want_u64(trace_.total_visits(), "trace visit count");
  want_f64(trace_begin_, "trace begin time");
  want_f64(trace_end_, "trace end time");
  want_f64(cfg_.packets_per_landmark_per_day, "workload packet rate");
  want_f64(cfg_.ttl, "packet TTL");
  want_u32(cfg_.packet_size_kb, "packet size");
  want_u64(cfg_.node_memory_kb, "node memory");
  want_u64(cfg_.store.station_memory_kb, "station memory");
  if (r.u8() != static_cast<std::uint8_t>(cfg_.store.policy)) {
    mismatch("eviction policy");
  }
  want_bool(cfg_.store.dedup, "store dedup");
  want_bool(!cfg_.store.spill_dir.empty(), "store spill enabled");
  want_f64(cfg_.warmup_fraction, "warmup fraction");
  want_f64(cfg_.time_unit, "time unit");
  want_u64(cfg_.seed, "workload seed");
  want_u64(cfg_.destination_weights.size(), "destination weight count");
  for (const double v : cfg_.destination_weights) {
    want_f64(v, "destination weights");
  }
  want_u64(cfg_.manual_packets.size(), "manual packet count");
  for (const auto& mp : cfg_.manual_packets) {
    want_u32(mp.src, "manual packet source");
    want_u32(mp.dst, "manual packet destination");
    want_f64(mp.time, "manual packet time");
    want_f64(mp.ttl, "manual packet TTL");
    want_u32(mp.dst_node, "manual packet destination node");
  }
  want_bool(cfg_.faults.has_value(), "fault plan presence");
  if (cfg_.faults.has_value()) {
    const sim::FaultPlan& fp = *cfg_.faults;
    want_u64(fp.seed, "fault seed");
    want_u64(fp.node_crashes.size(), "scheduled crash count");
    for (const auto& c : fp.node_crashes) {
      want_u32(c.node, "scheduled crash node");
      want_f64(c.time, "scheduled crash time");
      want_f64(c.downtime, "scheduled crash downtime");
    }
    want_f64(fp.node_crash_rate_per_day, "crash rate");
    want_f64(fp.node_mean_downtime, "mean downtime");
    want_f64(fp.crash_buffer_loss, "crash buffer loss");
    want_u64(fp.station_outages.size(), "scheduled outage count");
    for (const auto& o : fp.station_outages) {
      want_u32(o.station, "scheduled outage station");
      want_f64(o.start, "scheduled outage start");
      want_f64(o.end, "scheduled outage end");
    }
    want_f64(fp.station_outage_rate_per_day, "outage rate");
    want_f64(fp.station_mean_outage, "mean outage");
    want_f64(fp.transfer_failure_prob, "transfer failure probability");
    want_f64(fp.retry_backoff, "retry backoff");
    want_f64(fp.retry_backoff_max, "retry backoff cap");
    want_f64(fp.dv_loss_prob, "DV loss probability");
    want_f64(fp.dv_delay_prob, "DV delay probability");
  }
  if (r.str() != router_.name()) mismatch("router");
}

void Network::save_tail_sections(persist::Writer& w,
                                 const RunCounters& counters,
                                 std::size_t num_packets,
                                 bool strip_preassigned) const {
  w.begin_section("rng");
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.end_section();

  // The pre-drawn workload is serialized (not re-drawn on resume): the
  // per-landmark RNG splits that built it already mutated rng_, and
  // replaying them would desynchronize the stream.  Sharded snapshots
  // strip the pre-assigned packet ids so the image matches what the
  // serial engine holds (it assigns ids by appending).
  w.begin_section("workload");
  w.u64(workload_.size());
  for (const WorkloadEntry& e : workload_) {
    w.f64(e.time);
    w.u32(e.src);
    w.u32(e.dst);
    w.u32(strip_preassigned ? kNoPacket : e.pid);
  }
  if (strip_preassigned) {
    w.u64(0);
  } else {
    w.u64(manual_pids_.size());
    for (const PacketId pid : manual_pids_) w.u32(pid);
  }
  w.end_section();

  w.begin_section("counters");
  w.u64(counters.generated);
  w.u64(counters.delivered);
  w.u64(counters.dropped_ttl);
  w.u64(counters.refused_buffer);
  w.u64(counters.packet_forwards);
  w.u64(counters.replications);
  w.f64(counters.control_entries);
  w.f64(counters.total_delay);
  persist::write_vec(w, counters.delivery_delays);
  persist::write_vec(w, counters.delivery_hops);
  w.u64(counters.evicted_policy);
  w.u64(counters.evicted_kb);
  w.u64(counters.admission_shed);
  w.u64(counters.duplicates_suppressed);
  w.u64(counters.dedup_refused);
  w.u64(counters.spilled_bundles);
  w.u64(counters.recalled_bundles);
  w.u64(counters.node_crashes);
  w.u64(counters.node_reboots);
  w.u64(counters.station_outages);
  w.u64(counters.station_recoveries);
  w.u64(counters.packets_lost_fault);
  w.u64(counters.kb_lost_fault);
  w.u64(counters.transfers_interrupted);
  w.u64(counters.transfers_resumed);
  w.u64(counters.transfers_blocked_fault);
  persist::write_vec(w, counters.outage_recovery_delays);
  w.end_section();

  w.begin_section("packets");
  w.u64(num_packets);
  for (std::size_t i = 0; i < num_packets; ++i) {
    const Packet& p = packets_[i];
    w.u32(p.id);
    w.u32(p.src);
    w.u32(p.dst);
    w.u32(p.dst_node);
    w.f64(p.created);
    w.f64(p.ttl);
    w.u32(p.size_kb);
    w.u32(p.logical);
    w.u8(static_cast<std::uint8_t>(p.state));
    w.u32(p.holder);
    w.u32(p.next_hop);
    w.f64(p.expected_delay);
    persist::write_vec(w, p.station_path);
    w.u32(p.hops);
    w.f64(p.delivered_at);
  }
  w.u64(num_packets);
  for (std::size_t i = 0; i < num_packets; ++i) w.u8(logical_delivered_[i]);
  w.boolean(any_node_addressed_);
  w.end_section();

  w.begin_section("nodes");
  w.u64(nodes_.size());
  for (const NodeState& n : nodes_) {
    n.buffer.save(w);
    w.u32(n.location);
    w.u32(n.previous);
    w.u64(n.history.size());
    for (const trace::Visit& v : n.history) {
      w.u32(v.node);
      w.u32(v.landmark);
      w.f64(v.start);
      w.f64(v.end);
    }
  }
  w.end_section();

  w.begin_section("stations");
  w.u64(stations_.size());
  for (const StationState& s : stations_) {
    s.storage.save(w);
    persist::write_vec(w, s.origin);
    persist::write_vec(w, s.present);
  }
  persist::write_vec(w, present_pos_);
  w.end_section();

  w.begin_section("ledger");
  w.u64(ledger_.size());
  for (const LedgerEntry& e : ledger_) {
    w.u32(e.pid);
    w.u32(e.attempts);
    w.f64(e.next_retry);
  }
  persist::write_vec(w, ledger_index_);
  persist::write_vec(w, outage_recovery_pending_);
  w.end_section();

  // The fault plan is configuration (fingerprinted above); only the
  // injector's runtime state — RNG streams mid-sequence, outage sets —
  // lives here.
  w.begin_section("faults");
  w.boolean(faults_.has_value());
  if (faults_.has_value()) faults_->save(w);
  w.end_section();

  w.begin_section("router");
  w.str(router_.name());
  router_.checkpoint_save(w);
  w.end_section();
}

void Network::load_tail_sections(persist::Reader& r) {
  r.expect_section("rng");
  std::array<std::uint64_t, 4> words{};
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state(words);
  r.end_section();

  r.expect_section("workload");
  workload_.resize(static_cast<std::size_t>(r.u64()));
  for (WorkloadEntry& e : workload_) {
    e.time = r.f64();
    e.src = r.u32();
    e.dst = r.u32();
    e.pid = r.u32();
    if (e.src >= stations_.size() || e.dst >= stations_.size()) {
      throw persist::FormatError(
          "checkpoint workload entry names an unknown landmark");
    }
  }
  manual_pids_.resize(static_cast<std::size_t>(r.u64()));
  for (PacketId& pid : manual_pids_) pid = r.u32();
  if (!manual_pids_.empty() &&
      manual_pids_.size() != cfg_.manual_packets.size()) {
    throw persist::FormatError(
        "checkpoint manual packet id table has the wrong size");
  }
  r.end_section();

  r.expect_section("counters");
  counters_.generated = r.u64();
  counters_.delivered = r.u64();
  counters_.dropped_ttl = r.u64();
  counters_.refused_buffer = r.u64();
  counters_.packet_forwards = r.u64();
  counters_.replications = r.u64();
  counters_.control_entries = r.f64();
  counters_.total_delay = r.f64();
  persist::read_vec(r, counters_.delivery_delays);
  persist::read_vec(r, counters_.delivery_hops);
  counters_.evicted_policy = r.u64();
  counters_.evicted_kb = r.u64();
  counters_.admission_shed = r.u64();
  counters_.duplicates_suppressed = r.u64();
  counters_.dedup_refused = r.u64();
  counters_.spilled_bundles = r.u64();
  counters_.recalled_bundles = r.u64();
  counters_.node_crashes = r.u64();
  counters_.node_reboots = r.u64();
  counters_.station_outages = r.u64();
  counters_.station_recoveries = r.u64();
  counters_.packets_lost_fault = r.u64();
  counters_.kb_lost_fault = r.u64();
  counters_.transfers_interrupted = r.u64();
  counters_.transfers_resumed = r.u64();
  counters_.transfers_blocked_fault = r.u64();
  persist::read_vec(r, counters_.outage_recovery_delays);
  r.end_section();

  r.expect_section("packets");
  packets_.resize(static_cast<std::size_t>(r.u64()));
  for (std::size_t i = 0; i < packets_.size(); ++i) {
    Packet& p = packets_[i];
    p.id = r.u32();
    p.src = r.u32();
    p.dst = r.u32();
    p.dst_node = r.u32();
    p.created = r.f64();
    p.ttl = r.f64();
    p.size_kb = r.u32();
    p.logical = r.u32();
    const std::uint8_t state = r.u8();
    if (p.id != i || state > static_cast<std::uint8_t>(PacketState::kEvicted)) {
      throw persist::FormatError("checkpoint packet table row is malformed");
    }
    p.state = static_cast<PacketState>(state);
    p.holder = r.u32();
    p.next_hop = r.u32();
    p.expected_delay = r.f64();
    persist::read_vec(r, p.station_path);
    p.hops = r.u32();
    p.delivered_at = r.f64();
  }
  if (static_cast<std::size_t>(r.u64()) != packets_.size()) {
    throw persist::FormatError(
        "checkpoint delivery flags disagree with the packet table size");
  }
  logical_delivered_.resize(packets_.size());
  for (std::uint8_t& flag : logical_delivered_) flag = r.u8();
  any_node_addressed_ = r.boolean();
  r.end_section();

  r.expect_section("nodes");
  if (static_cast<std::size_t>(r.u64()) != nodes_.size()) {
    throw persist::FormatError("checkpoint node count mismatch");
  }
  for (NodeState& n : nodes_) {
    n.buffer.load(r);
    n.location = r.u32();
    n.previous = r.u32();
    if ((n.location != kNoLandmark && n.location >= stations_.size()) ||
        (n.previous != kNoLandmark && n.previous >= stations_.size())) {
      throw persist::FormatError(
          "checkpoint node state names an unknown landmark");
    }
    n.history.resize(static_cast<std::size_t>(r.u64()));
    for (trace::Visit& v : n.history) {
      v.node = r.u32();
      v.landmark = r.u32();
      v.start = r.f64();
      v.end = r.f64();
    }
  }
  r.end_section();

  r.expect_section("stations");
  if (static_cast<std::size_t>(r.u64()) != stations_.size()) {
    throw persist::FormatError("checkpoint station count mismatch");
  }
  for (StationState& s : stations_) {
    s.storage.load(r);
    persist::read_vec(r, s.origin);
    persist::read_vec(r, s.present);
  }
  persist::read_vec(r, present_pos_);
  if (present_pos_.size() != nodes_.size()) {
    throw persist::FormatError(
        "checkpoint present-position index has the wrong size");
  }
  r.end_section();

  r.expect_section("ledger");
  ledger_.resize(static_cast<std::size_t>(r.u64()));
  for (LedgerEntry& e : ledger_) {
    e.pid = r.u32();
    e.attempts = r.u32();
    e.next_retry = r.f64();
  }
  persist::read_vec(r, ledger_index_);
  persist::read_vec(r, outage_recovery_pending_);
  if (outage_recovery_pending_.size() != stations_.size()) {
    throw persist::FormatError(
        "checkpoint outage-recovery table has the wrong size");
  }
  r.end_section();

  r.expect_section("faults");
  if (r.boolean() != faults_.has_value()) {
    throw persist::FormatError(
        "checkpoint fault-injector presence disagrees with this run");
  }
  if (faults_.has_value()) faults_->load(r);
  r.end_section();

  r.expect_section("router");
  if (r.str() != router_.name()) {
    throw persist::FormatError(
        "checkpoint was written by a different router");
  }
  router_.checkpoint_load(r, *this);
  r.end_section();
}

persist::Writer Network::serialize_state() const {
  DTN_ASSERT(ckpt_cursor_ != nullptr);
  DTN_ASSERT(!sharded_run_);
  persist::Writer w;
  w.begin_section("meta");
  write_config_fingerprint(w);
  w.end_section();
  w.begin_section("sim");
  sim_.save(w);
  w.end_section();
  w.begin_section("cursor");
  ckpt_cursor_->save(w);
  w.end_section();
  save_tail_sections(w, counters_, packets_.size(),
                     /*strip_preassigned=*/false);
  return w;
}

void Network::write_snapshot() {
  persist::Writer w = serialize_state();
  w.finish();
  last_ckpt_sections_ = w.sections();
  last_ckpt_executed_ = sim_.events_executed();
  ckpt_last_events_ = last_ckpt_executed_;
  ckpt_last_time_ = sim_.now();
  ckpt_mgr_->write(last_ckpt_executed_, w.buffer());
}

bool Network::checkpoint_step() {
  const persist::CheckpointConfig& cc = ckpt_mgr_->config();
  const std::uint64_t executed = sim_.events_executed();
  const bool due_events =
      cc.every_events > 0 && executed - ckpt_last_events_ >= cc.every_events;
  const bool due_time =
      cc.every_time > 0.0 && sim_.now() - ckpt_last_time_ >= cc.every_time;
  const bool suspend =
      cc.stop_after_events > 0 && executed >= cc.stop_after_events;
  if (due_events || due_time || suspend) write_snapshot();
  return !suspend;
}

void Network::load_checkpoint(const std::vector<std::uint8_t>& bytes,
                              trace::TraceCursor& cursor) {
  persist::Reader r(bytes);
  r.expect_section("meta");
  check_config_fingerprint(r);
  r.end_section();
  r.expect_section("sim");
  sim_.load(r);
  r.end_section();
  r.expect_section("cursor");
  cursor.load(r);
  r.end_section();
  load_tail_sections(r);
  r.finish();

  // Restored-state verification: before a single event is dispatched, a
  // fresh serialization must reproduce the image byte for byte, and the
  // full invariant audit must pass.
  persist::Writer w = serialize_state();
  w.finish();
  if (w.buffer() != bytes) {
    throw persist::FormatError(
        "restored state does not re-serialize to the checkpoint image");
  }
  last_ckpt_sections_ = w.sections();
  last_ckpt_executed_ = sim_.events_executed();
  sim::AuditReport report;
  audit(report);
  if (!report.ok()) {
    throw persist::FormatError("restored state failed the invariant audit:\n" +
                               report.to_string());
  }
}

void Network::audit_checkpoint_crc(sim::AuditReport& report) const {
  // Only decidable when the most recent snapshot captured exactly this
  // simulation point; in between, live state legitimately diverges from
  // the file.
  if (ckpt_cursor_ == nullptr || sharded_run_ || last_ckpt_sections_.empty() ||
      last_ckpt_executed_ != sim_.events_executed()) {
    return;
  }
  persist::Writer w = serialize_state();
  const auto& live = w.sections();
  if (live.size() != last_ckpt_sections_.size()) {
    report.fail("live state serializes to " + std::to_string(live.size()) +
                " sections but the snapshot held " +
                std::to_string(last_ckpt_sections_.size()));
    return;
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (live[i] != last_ckpt_sections_[i]) {
      report.fail("section '" + last_ckpt_sections_[i].first +
                  "' CRC diverged between the snapshot and live state");
    }
  }
}

void Network::dispatch(const sim::Event& ev) {
  auditor_.on_event();
  switch (ev.kind) {
    case sim::EventKind::kArrival: {
      const trace::Visit& visit = trace_.visits(ev.a)[ev.b];
      handle_arrival(visit);
      if (batch_source_ != nullptr) {
        drain_arrival_batch(ev.time, visit.landmark);
      }
      break;
    }
    case sim::EventKind::kDeparture:
      if (batch_source_ != nullptr) {
        dispatch_departure_batched(ev);
      } else {
        handle_departure(trace_.visits(ev.a)[ev.b]);
      }
      break;
    case sim::EventKind::kPacketGen: {
      const WorkloadEntry& w = workload_[ev.b];
      generate_packet(w.src, w.dst, cfg_.ttl, trace::kNoNode, w.pid);
      break;
    }
    case sim::EventKind::kManualPacket: {
      const auto& mp = cfg_.manual_packets[ev.a];
      const double ttl = mp.ttl > 0.0 ? mp.ttl : cfg_.ttl;
      const PacketId slot =
          manual_pids_.empty() ? kNoPacket : manual_pids_[ev.a];
      generate_packet(mp.src, mp.dst, ttl, mp.dst_node, slot);
      break;
    }
    case sim::EventKind::kTtlSweep:
      drop_expired();
      break;
    case sim::EventKind::kTimeUnitTick:
      router_.on_time_unit(*this, ev.a);
      break;
    case sim::EventKind::kNodeCrash:
      apply_node_crash(ev);
      break;
    case sim::EventKind::kNodeReboot:
      apply_node_reboot(ev);
      break;
    case sim::EventKind::kStationDown:
      apply_station_down(ev);
      break;
    case sim::EventKind::kStationUp:
      apply_station_up(ev);
      break;
    default:
      DTN_ASSERT(false);
  }
}

void Network::schedule_faults() {
  if (!faults_.has_value()) return;
  const sim::FaultPlan& plan = faults_->plan();
  for (std::size_t i = 0; i < plan.node_crashes.size(); ++i) {
    const auto& c = plan.node_crashes[i];
    if (c.time > trace_end_) continue;
    sim::Event ev;
    ev.kind = sim::EventKind::kNodeCrash;
    ev.a = c.node;
    ev.b = static_cast<std::uint32_t>(i) + 1;
    sim_.schedule(c.time, ev);
  }
  for (std::size_t i = 0; i < plan.station_outages.size(); ++i) {
    const auto& o = plan.station_outages[i];
    if (o.start > trace_end_) continue;
    sim::Event ev;
    ev.kind = sim::EventKind::kStationDown;
    ev.a = o.station;
    ev.b = static_cast<std::uint32_t>(i) + 1;
    sim_.schedule(o.start, ev);
  }
  // Stochastic processes: first occurrence per node/station drawn here
  // (in id order, part of the deterministic-replay contract); each
  // reboot/recovery draws the next one.
  if (plan.node_crash_rate_per_day > 0.0) {
    for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
      const double t = trace_begin_ + faults_->draw_crash_gap();
      if (t > trace_end_) continue;
      sim::Event ev;
      ev.kind = sim::EventKind::kNodeCrash;
      ev.a = n;
      sim_.schedule(t, ev);
    }
  }
  if (plan.station_outage_rate_per_day > 0.0) {
    for (std::uint32_t l = 0; l < stations_.size(); ++l) {
      const double t = trace_begin_ + faults_->draw_outage_gap();
      if (t > trace_end_) continue;
      sim::Event ev;
      ev.kind = sim::EventKind::kStationDown;
      ev.a = l;
      sim_.schedule(t, ev);
    }
  }
}

void Network::apply_node_crash(const sim::Event& ev) {
  const NodeId node = ev.a;
  DTN_ASSERT(node < nodes_.size());
  // Scheduled crashes carry their downtime in the plan; stochastic ones
  // draw it now (dispatch order is deterministic, so so is the draw).
  const double downtime = ev.b != 0
                              ? faults_->plan().node_crashes[ev.b - 1].downtime
                              : faults_->draw_downtime();
  ++counters_.node_crashes;
  // Buffer loss: every buffered packet independently survives or dies.
  NodeState& ns = nodes_[node];
  std::vector<PacketId>& doomed = scratch_;
  doomed.clear();
  for (const PacketId pid : ns.buffer.packets()) {
    if (faults_->draw_crash_packet_loss()) doomed.push_back(pid);
  }
  for (const PacketId pid : doomed) {
    Packet& p = packets_[pid];
    ns.buffer.remove(pid, p.size_kb);
    ledger_erase(pid);
    if (logical_delivered_[p.logical] != 0) {
      p.state = PacketState::kObsoleteCopy;
    } else {
      p.state = PacketState::kLostFault;
      ++counters_.packets_lost_fault;
      counters_.kb_lost_fault += p.size_kb;
    }
  }
  faults_->mark_node_down(node);
  router_.on_node_crash(*this, node);
  sim::Event up;
  up.kind = sim::EventKind::kNodeReboot;
  up.a = node;
  up.b = ev.b;  // reboot remembers the crash source (scheduled/stochastic)
  sim_.schedule(sim_.now() + downtime, up);
}

void Network::apply_node_reboot(const sim::Event& ev) {
  const NodeId node = ev.a;
  faults_->mark_node_up(node);
  ++counters_.node_reboots;
  router_.on_node_reboot(*this, node);
  // A stochastic crash chain continues after the reboot (never while
  // down, so a double crash is impossible by construction).
  if (ev.b == 0 && faults_->plan().node_crash_rate_per_day > 0.0) {
    const double t = sim_.now() + faults_->draw_crash_gap();
    if (t > trace_end_) return;
    sim::Event ev2;
    ev2.kind = sim::EventKind::kNodeCrash;
    ev2.a = node;
    sim_.schedule(t, ev2);
  }
}

void Network::apply_station_down(const sim::Event& ev) {
  const LandmarkId l = ev.a;
  DTN_ASSERT(l < stations_.size());
  ++counters_.station_outages;
  // A pending recovery-time measurement dies with the new outage.
  outage_recovery_pending_[l] = -1.0;
  faults_->mark_station_down(l);
  router_.on_station_outage(*this, l);
  const double end = ev.b != 0
                         ? faults_->plan().station_outages[ev.b - 1].end
                         : sim_.now() + faults_->draw_outage_duration();
  sim::Event up;
  up.kind = sim::EventKind::kStationUp;
  up.a = l;
  up.b = ev.b;
  sim_.schedule(end, up);
}

void Network::apply_station_up(const sim::Event& ev) {
  const LandmarkId l = ev.a;
  faults_->mark_station_up(l);
  ++counters_.station_recoveries;
  outage_recovery_pending_[l] = sim_.now();
  router_.on_station_recovery(*this, l);
  if (ev.b == 0 && faults_->plan().station_outage_rate_per_day > 0.0) {
    const double t = sim_.now() + faults_->draw_outage_gap();
    if (t > trace_end_) return;
    sim::Event ev2;
    ev2.kind = sim::EventKind::kStationDown;
    ev2.a = l;
    sim_.schedule(t, ev2);
  }
}

std::uint32_t Network::ledger_slot(PacketId pid) const {
  if (pid >= ledger_index_.size()) return kNoLedgerSlot;
  return ledger_index_[pid];
}

void Network::ledger_erase(PacketId pid) {
  const std::uint32_t slot = ledger_slot(pid);
  if (slot == kNoLedgerSlot) return;
  // Retiring the retry also retires its forward-pending retention (a
  // no-op when the packet already left its store, or for unbounded
  // stores where retention never mattered).
  set_holder_retention(packets_[pid], Retention::kNone);
  ledger_index_[pid] = kNoLedgerSlot;
  const auto last = static_cast<std::uint32_t>(ledger_.size() - 1);
  if (slot != last) {
    ledger_[slot] = ledger_[last];
    ledger_index_[ledger_[slot].pid] = slot;
  }
  ledger_.pop_back();
}

bool Network::transfer_interrupted(PacketId pid) {
  if (!faults_.has_value() || !faults_->transfer_faults_enabled()) {
    return false;
  }
  const double now = sim_.now();
  const std::uint32_t slot = ledger_slot(pid);
  if (slot != kNoLedgerSlot && now < ledger_[slot].next_retry) {
    // Still backing off from the last mid-contact break.
    ++ctr().transfers_blocked_fault;
    return true;
  }
  if (faults_->draw_transfer_failure()) {
    ++counters_.transfers_interrupted;
    // A pending retry pins the bundle in its current store: eviction
    // policies never pick forward-pending victims (docs/bounded-store.md).
    set_holder_retention(packets_[pid], Retention::kForwardPending);
    if (slot == kNoLedgerSlot) {
      if (ledger_index_.size() < packets_.size()) {
        ledger_index_.resize(packets_.size(), kNoLedgerSlot);
      }
      ledger_index_[pid] = static_cast<std::uint32_t>(ledger_.size());
      ledger_.push_back({pid, 1, now + faults_->retry_backoff(1)});
    } else {
      LedgerEntry& e = ledger_[slot];
      ++e.attempts;
      e.next_retry = now + faults_->retry_backoff(e.attempts);
    }
    return true;
  }
  if (slot != kNoLedgerSlot) {
    // The retry made it across: the interrupted transfer resumed.
    ++counters_.transfers_resumed;
    ledger_erase(pid);
  }
  return false;
}

void Network::note_station_activity(LandmarkId l) {
  if (!faults_.has_value()) return;
  double& pending = outage_recovery_pending_[l];
  if (pending < 0.0) return;
  counters_.outage_recovery_delays.push_back(sim_.now() - pending);
  pending = -1.0;
}

std::span<const NodeId> Network::nodes_at(LandmarkId l) const {
  DTN_ASSERT(l < stations_.size());
  return stations_[l].present;
}

LandmarkId Network::location(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].location;
}

LandmarkId Network::previous_landmark(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].previous;
}

std::span<const trace::Visit> Network::history(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].history;
}

Packet& Network::packet(PacketId pid) {
  DTN_ASSERT(pid < packets_.size());
  return packets_[pid];
}

const Packet& Network::packet(PacketId pid) const {
  DTN_ASSERT(pid < packets_.size());
  return packets_[pid];
}

std::span<const PacketId> Network::origin_packets(LandmarkId l) const {
  DTN_ASSERT(l < stations_.size());
  return stations_[l].origin;
}

std::span<const PacketId> Network::station_packets(LandmarkId l) const {
  DTN_ASSERT(l < stations_.size());
  return stations_[l].storage.packets();
}

std::span<const PacketId> Network::node_packets(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].buffer.packets();
}

const BundleStore& Network::node_buffer(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].buffer;
}

const BundleStore& Network::station_store(LandmarkId l) const {
  DTN_ASSERT(l < stations_.size());
  return stations_[l].storage;
}

// -- bounded-store admission (docs/bounded-store.md) --------------------

Admit Network::store_admit(BundleStore& store, Packet& p, Retention retention,
                           bool allow_spill, bool check_dedup) {
  BundleStore::AdmitRequest req;
  req.pid = p.id;
  req.size_kb = p.size_kb;
  req.logical = p.logical;
  req.retention = retention;
  req.expected_delay = p.expected_delay;
  req.deadline = p.deadline();
  req.check_dedup = check_dedup;
  req.allow_spill = allow_spill;
  // Function-local victim list: it only ever allocates when a policy
  // actually evicts, and per-shard store events are totally ordered so
  // no shared scratch is needed.
  std::vector<PacketId> evicted;
  const Admit verdict = store.admit(req, &evicted);
  finalize_evictions(evicted);
  if (verdict == Admit::kSpilled) ++ctr().spilled_bundles;
  if (verdict == Admit::kRefusedDuplicate) ++ctr().dedup_refused;
  return verdict;
}

void Network::finalize_evictions(std::vector<PacketId>& victims) {
  for (const PacketId vid : victims) {
    Packet& v = packets_[vid];
    DTN_ASSERT(!is_terminal(v.state));
    // The store already dropped the entry; only the packet table and
    // the retry ledger still reference the victim.
    ledger_erase(vid);
    v.state = logical_delivered_[v.logical] != 0 ? PacketState::kObsoleteCopy
                                                 : PacketState::kEvicted;
    ++ctr().evicted_policy;
    ctr().evicted_kb += v.size_kb;
  }
  victims.clear();
}

void Network::station_remove(LandmarkId l, PacketId pid,
                             std::uint32_t size_kb) {
  std::vector<PacketId> recalled;  // allocates only when a recall fires
  stations_[l].storage.remove(pid, size_kb, &recalled);
  ctr().recalled_bundles += recalled.size();
}

bool Network::suppress_delivered_copy(Packet& p) {
  if (logical_delivered_[p.logical] == 0) return false;
  // Duplicate-delivery suppression: another copy of this logical packet
  // already reached the destination, so retire this one at the
  // admission point instead of letting it keep consuming buffers.
  detach_from_holder(p);
  ledger_erase(p.id);
  p.state = PacketState::kObsoleteCopy;
  ++ctr().duplicates_suppressed;
  return true;
}

void Network::set_holder_retention(Packet& p, Retention r) {
  switch (p.state) {
    case PacketState::kAtStation:
      stations_[p.holder].storage.set_retention_if_held(p.id, r);
      break;
    case PacketState::kOnNode:
      nodes_[p.holder].buffer.set_retention_if_held(p.id, r);
      break;
    default:
      break;  // origin-queue and terminal packets carry no store entry
  }
}

void Network::detach_from_holder(Packet& p) {
  switch (p.state) {
    case PacketState::kAtOrigin: {
      auto& origin = stations_[p.holder].origin;
      const auto it = std::find(origin.begin(), origin.end(), p.id);
      DTN_ASSERT(it != origin.end());
      origin.erase(it);
      break;
    }
    case PacketState::kAtStation:
      station_remove(p.holder, p.id, p.size_kb);
      break;
    case PacketState::kOnNode:
      nodes_[p.holder].buffer.remove(p.id, p.size_kb);
      break;
    default:
      DTN_ASSERT(false);
  }
}

bool Network::drop_if_expired(PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(!is_terminal(p.state));
  if (!p.expired(now_())) return false;
  detach_from_holder(p);
  ledger_erase(pid);
  if (logical_delivered_[p.logical] != 0) {
    p.state = PacketState::kObsoleteCopy;
  } else {
    p.state = PacketState::kDroppedTtl;
    ++ctr().dropped_ttl;
  }
  return true;
}

bool Network::pickup_from_origin(NodeId node, PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(p.state == PacketState::kAtOrigin);
  DTN_ASSERT(nodes_[node].location == p.holder);
  if (drop_if_expired(pid)) return false;
  if (suppress_delivered_copy(p)) return false;
  if (node_down(node)) {
    ++ctr().transfers_blocked_fault;
    return false;
  }
  if (transfer_interrupted(pid)) return false;
  if (p.dst_node == node) {
    // Picked up by its destination: delivered on the spot.
    detach_from_holder(p);
    ++p.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    return true;
  }
  auto& origin = stations_[p.holder].origin;
  // First pickup of source data: no dedup check (a carrier must be
  // able to take a fresh original even if it relayed a copy before).
  if (store_admit(nodes_[node].buffer, p, Retention::kNone,
                  /*allow_spill=*/false,
                  /*check_dedup=*/false) != Admit::kStored) {
    ++ctr().refused_buffer;
    return false;
  }
  const auto it = std::find(origin.begin(), origin.end(), pid);
  DTN_ASSERT(it != origin.end());
  origin.erase(it);
  p.state = PacketState::kOnNode;
  p.holder = node;
  ++p.hops;
  ++ctr().packet_forwards;
  return true;
}

bool Network::station_to_node(LandmarkId l, NodeId node, PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(p.state == PacketState::kAtStation);
  DTN_ASSERT(p.holder == l);
  DTN_ASSERT(nodes_[node].location == l);
  if (drop_if_expired(pid)) return false;
  if (suppress_delivered_copy(p)) return false;
  if (station_down(l) || node_down(node)) {
    ++ctr().transfers_blocked_fault;
    return false;
  }
  if (transfer_interrupted(pid)) return false;
  if (p.dst_node == node) {
    detach_from_holder(p);
    ++p.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    note_station_activity(l);
    return true;
  }
  // Station dispatch onto a carrier: no dedup check — refusing the
  // single-copy backbone's forward path would strand packets.
  if (store_admit(nodes_[node].buffer, p, Retention::kNone,
                  /*allow_spill=*/false,
                  /*check_dedup=*/false) != Admit::kStored) {
    ++ctr().refused_buffer;
    return false;
  }
  station_remove(l, pid, p.size_kb);
  p.state = PacketState::kOnNode;
  p.holder = node;
  ++p.hops;
  ++ctr().packet_forwards;
  note_station_activity(l);
  return true;
}

bool Network::node_to_station(NodeId node, PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(p.state == PacketState::kOnNode);
  DTN_ASSERT(p.holder == node);
  const LandmarkId l = nodes_[node].location;
  DTN_ASSERT(l != kNoLandmark);
  if (drop_if_expired(pid)) return false;
  if (suppress_delivered_copy(p)) return false;
  if (node_down(node) || station_down(l)) {
    ++ctr().transfers_blocked_fault;
    return false;
  }
  if (transfer_interrupted(pid)) return false;
  const bool delivers =
      (p.dst == l && p.dst_node == trace::kNoNode) ||
      (p.dst_node != trace::kNoNode && nodes_[p.dst_node].location == l);
  if (delivers) {
    nodes_[node].buffer.remove(pid, p.size_kb);
    ++p.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    note_station_activity(l);
    return true;
  }
  // Admission first: a bounded station may evict per policy, spill the
  // incoming bundle, or refuse it — refusal leaves the packet on the
  // carrier (unbounded stations always admit, the §V-A.1 default).
  const Admit verdict =
      store_admit(stations_[l].storage, p, Retention::kNone,
                  /*allow_spill=*/true, /*check_dedup=*/false);
  if (verdict != Admit::kStored && verdict != Admit::kSpilled) {
    ++ctr().refused_buffer;
    return false;
  }
  nodes_[node].buffer.remove(pid, p.size_kb);
  ++p.hops;
  ++ctr().packet_forwards;
  p.state = PacketState::kAtStation;
  p.holder = l;
  p.station_path.push_back(l);
  note_station_activity(l);
  return true;
}

bool Network::node_to_node(NodeId from, NodeId to, PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(p.state == PacketState::kOnNode);
  DTN_ASSERT(p.holder == from);
  DTN_ASSERT(from != to);
  DTN_ASSERT(nodes_[from].location != kNoLandmark);
  DTN_ASSERT(nodes_[from].location == nodes_[to].location);
  if (drop_if_expired(pid)) return false;
  if (suppress_delivered_copy(p)) return false;
  if (node_down(from) || node_down(to)) {
    ++ctr().transfers_blocked_fault;
    return false;
  }
  if (transfer_interrupted(pid)) return false;
  if (p.dst_node == to) {
    detach_from_holder(p);
    ++p.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    return true;
  }
  // Node-to-node relaying is where copies multiply, so the dedup set
  // applies here: a receiver that already saw this logical refuses it.
  const Admit verdict =
      store_admit(nodes_[to].buffer, p, Retention::kNone,
                  /*allow_spill=*/false, /*check_dedup=*/true);
  if (verdict != Admit::kStored) {
    if (verdict == Admit::kRefusedCapacity) ++ctr().refused_buffer;
    return false;
  }
  nodes_[from].buffer.remove(pid, p.size_kb);
  p.holder = to;
  ++p.hops;
  ++ctr().packet_forwards;
  return true;
}

PacketId Network::replicate_node_to_node(NodeId from, NodeId to,
                                         PacketId pid) {
  // Replication grows the packet table mid-run; only the serial engine
  // may do that (shard_safe routers are single-copy by contract).
  DTN_ASSERT(!sharded_run_);
  Packet& src = packet(pid);
  DTN_ASSERT(src.state == PacketState::kOnNode);
  DTN_ASSERT(src.holder == from);
  DTN_ASSERT(from != to);
  DTN_ASSERT(nodes_[from].location != kNoLandmark);
  DTN_ASSERT(nodes_[from].location == nodes_[to].location);
  // An already-delivered logical is not just skipped: the offered copy
  // itself retires (duplicate-delivery suppression).
  if (suppress_delivered_copy(src)) return kNoPacket;
  if (drop_if_expired(pid)) return kNoPacket;
  if (node_down(from) || node_down(to)) {
    ++ctr().transfers_blocked_fault;
    return kNoPacket;
  }
  if (transfer_interrupted(pid)) return kNoPacket;
  Packet copy = src;  // inherits deadline, routing state, path record
  copy.id = static_cast<PacketId>(packets_.size());
  copy.state = PacketState::kOnNode;
  copy.holder = to;
  ++copy.hops;
  const Admit verdict =
      store_admit(nodes_[to].buffer, copy, Retention::kNone,
                  /*allow_spill=*/false, /*check_dedup=*/true);
  if (verdict != Admit::kStored) {
    if (verdict == Admit::kRefusedCapacity) ++ctr().refused_buffer;
    return kNoPacket;
  }
  packets_.push_back(std::move(copy));
  logical_delivered_.push_back(0);  // indexed per packet row; unused for copies
  ++ctr().packet_forwards;
  ++counters_.replications;
  return packets_.back().id;
}

bool Network::node_holds_logical(NodeId node, PacketId logical) const {
  DTN_ASSERT(node < nodes_.size());
  for (const PacketId pid : nodes_[node].buffer.packets()) {
    if (packets_[pid].logical == logical) return true;
  }
  return false;
}

bool Network::logical_delivered(PacketId logical) const {
  DTN_ASSERT(logical < logical_delivered_.size());
  return logical_delivered_[logical] != 0;
}

void Network::account_control(double entries) {
  DTN_ASSERT(entries >= 0.0);
  ctr().control_entries += entries;
}

void Network::validate_invariants() const {
  std::uint64_t active = 0;
  for (const Packet& p : packets_) {
    if (is_terminal(p.state)) continue;
    ++active;
    switch (p.state) {
      case PacketState::kAtOrigin: {
        const auto& origin = stations_[p.holder].origin;
        DTN_ASSERT(std::find(origin.begin(), origin.end(), p.id) !=
                   origin.end());
        break;
      }
      case PacketState::kAtStation:
        DTN_ASSERT(stations_[p.holder].storage.contains(p.id));
        break;
      case PacketState::kOnNode:
        DTN_ASSERT(nodes_[p.holder].buffer.contains(p.id));
        break;
      default:
        DTN_ASSERT(false);
    }
  }
  // Every buffered id points back to a packet naming that buffer.
  std::uint64_t buffered = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (const PacketId pid : nodes_[n].buffer.packets()) {
      DTN_ASSERT(packets_[pid].state == PacketState::kOnNode);
      DTN_ASSERT(packets_[pid].holder == n);
      ++buffered;
    }
  }
  for (std::size_t l = 0; l < stations_.size(); ++l) {
    for (const PacketId pid : stations_[l].storage.packets()) {
      DTN_ASSERT(packets_[pid].state == PacketState::kAtStation);
      DTN_ASSERT(packets_[pid].holder == l);
      ++buffered;
    }
    // Spilled bundles are still live station-held packets; only their
    // bytes moved to disk.
    for (const PacketId pid : stations_[l].storage.spilled_ids()) {
      DTN_ASSERT(packets_[pid].state == PacketState::kAtStation);
      DTN_ASSERT(packets_[pid].holder == l);
      ++buffered;
    }
    for (const PacketId pid : stations_[l].origin) {
      DTN_ASSERT(packets_[pid].state == PacketState::kAtOrigin);
      DTN_ASSERT(packets_[pid].holder == l);
      ++buffered;
    }
  }
  DTN_ASSERT(buffered == active);
  // Terminal accounting: originals are generated; every delivered
  // logical was counted exactly once.
  DTN_ASSERT(counters_.delivered == counters_.delivery_delays.size());
  DTN_ASSERT(counters_.delivered <= counters_.generated);
  // The auditor's checks (heap property, present-set index, byte
  // accounting, router state) are part of the contract too.
  sim::AuditReport report;
  audit(report);
  if (!report.ok()) {
    std::fprintf(stderr,
                 "Network::validate_invariants: %zu violation(s):\n%s",
                 report.failures().size(), report.to_string().c_str());
    DTN_ASSERT(report.ok());
  }
}

void Network::audit(sim::AuditReport& report) const {
  report.set_context("event_queue.heap");
  sim_.queue().audit(report);
  report.set_context("network.present_sets");
  audit_present_sets(report);
  report.set_context("network.buffer_accounting");
  audit_buffer_accounting(report);
  report.set_context("network.bundle_store");
  audit_bundle_stores(report);
  report.set_context("router.state");
  router_.audit(*this, report);
  report.set_context("network.fault_state");
  audit_fault_state(report);
}

void Network::audit_fault_state(sim::AuditReport& report) const {
  // Ledger <-> index bijection: every indexed packet names a live slot
  // that points back at it, and every slot is indexed exactly once.
  std::size_t indexed = 0;
  for (std::size_t pid = 0; pid < ledger_index_.size(); ++pid) {
    const std::uint32_t slot = ledger_index_[pid];
    if (slot == kNoLedgerSlot) continue;
    ++indexed;
    if (slot >= ledger_.size()) {
      report.fail("ledger_index_[" + std::to_string(pid) +
                  "] points past the ledger (" + std::to_string(slot) + ")");
      continue;
    }
    if (ledger_[slot].pid != pid) {
      report.fail("ledger slot " + std::to_string(slot) + " holds packet " +
                  std::to_string(ledger_[slot].pid) + " but is indexed by " +
                  std::to_string(pid));
    }
  }
  if (indexed != ledger_.size()) {
    report.fail("ledger has " + std::to_string(ledger_.size()) +
                " entries but " + std::to_string(indexed) +
                " index slots point into it");
  }
  for (const LedgerEntry& e : ledger_) {
    if (e.pid >= packets_.size()) {
      report.fail("ledger entry names out-of-range packet " +
                  std::to_string(e.pid));
      continue;
    }
    if (is_terminal(packets_[e.pid].state)) {
      report.fail("ledger entry for packet " + std::to_string(e.pid) +
                  " outlived the packet (terminal state)");
    }
    if (e.attempts == 0) {
      report.fail("ledger entry for packet " + std::to_string(e.pid) +
                  " has zero attempts");
    }
  }
  // Fault-loss counters must match a recount over the packet table.
  std::uint64_t lost = 0;
  std::uint64_t lost_kb = 0;
  for (const Packet& p : packets_) {
    if (p.state != PacketState::kLostFault) continue;
    ++lost;
    lost_kb += p.size_kb;
  }
  if (lost != counters_.packets_lost_fault) {
    report.fail("packets_lost_fault counter " +
                std::to_string(counters_.packets_lost_fault) +
                " but packet table holds " + std::to_string(lost) +
                " fault-lost packets");
  }
  if (lost_kb != counters_.kb_lost_fault) {
    report.fail("kb_lost_fault counter " +
                std::to_string(counters_.kb_lost_fault) +
                " but fault-lost packets sum to " + std::to_string(lost_kb) +
                " kB");
  }
  if (faults_.has_value()) {
    faults_->audit(report);
    // A pending recovery-delay measurement implies the station is up
    // (it is cleared the instant a new outage starts).
    for (std::size_t l = 0; l < outage_recovery_pending_.size(); ++l) {
      if (outage_recovery_pending_[l] >= 0.0 &&
          faults_->station_down(static_cast<LandmarkId>(l))) {
        report.fail("station " + std::to_string(l) +
                    " is down but has a pending recovery measurement");
      }
    }
  } else {
    if (!ledger_.empty()) {
      report.fail("in-flight transfer ledger nonempty without a fault plan");
    }
    if (counters_.packets_lost_fault != 0) {
      report.fail("fault-loss counter nonzero without a fault plan");
    }
  }
}

void Network::audit_present_sets(sim::AuditReport& report) const {
  // Direction 1: every present-list entry names a node whose location
  // and indexed position agree with its slot.
  std::vector<std::uint8_t> listed(nodes_.size(), 0);
  for (std::size_t l = 0; l < stations_.size(); ++l) {
    const auto& present = stations_[l].present;
    for (std::size_t i = 0; i < present.size(); ++i) {
      const NodeId n = present[i];
      if (n >= nodes_.size()) {
        report.fail("station " + std::to_string(l) +
                    " lists an out-of-range node");
        continue;
      }
      if (listed[n] != 0) {
        report.fail("node " + std::to_string(n) +
                    " appears in more than one present slot");
      }
      listed[n] = 1;
      if (nodes_[n].location != static_cast<LandmarkId>(l)) {
        report.fail("node " + std::to_string(n) + " listed present at " +
                    std::to_string(l) + " but located at " +
                    std::to_string(nodes_[n].location));
      }
      if (present_pos_[n] != i) {
        report.fail("node " + std::to_string(n) + " at present slot " +
                    std::to_string(i) + " of station " + std::to_string(l) +
                    " but present_pos_ says " +
                    std::to_string(present_pos_[n]));
      }
    }
  }
  // Direction 2: every node that claims a location is listed there.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].location == kNoLandmark) continue;
    if (listed[n] == 0) {
      report.fail("node " + std::to_string(n) + " located at " +
                  std::to_string(nodes_[n].location) +
                  " but missing from that station's present list");
    }
  }
}

void Network::audit_buffer_accounting(sim::AuditReport& report) const {
  // Re-derive each buffer's byte usage from the packets it holds; the
  // incrementally maintained used_kb must match exactly, every held id
  // must be unique across all buffers, and bounded buffers must respect
  // their capacity.
  std::vector<std::uint8_t> held(packets_.size(), 0);
  const auto audit_one = [&](const BundleStore& buf, const std::string& what) {
    std::uint64_t bytes = 0;
    for (const PacketId pid : buf.packets()) {
      if (pid >= packets_.size()) {
        report.fail(what + " holds an out-of-range packet id");
        continue;
      }
      if (held[pid] != 0) {
        report.fail("packet " + std::to_string(pid) +
                    " held by more than one buffer (" + what + ")");
      }
      held[pid] = 1;
      bytes += packets_[pid].size_kb;
    }
    if (bytes != buf.used_kb()) {
      report.fail(what + ": used_kb " + std::to_string(buf.used_kb()) +
                  " but held packets sum to " + std::to_string(bytes) +
                  " kB");
    }
    if (!buf.unbounded() && buf.used_kb() > buf.capacity_kb()) {
      report.fail(what + ": used_kb " + std::to_string(buf.used_kb()) +
                  " exceeds capacity " + std::to_string(buf.capacity_kb()));
    }
    // Spilled bundles participate in the cross-store uniqueness check
    // and must sum to the store's spilled-byte accounting.
    std::uint64_t spilled_bytes = 0;
    for (const PacketId pid : buf.spilled_ids()) {
      if (pid >= packets_.size()) {
        report.fail(what + " spill index holds an out-of-range packet id");
        continue;
      }
      if (held[pid] != 0) {
        report.fail("packet " + std::to_string(pid) +
                    " held by more than one buffer (" + what + " spill)");
      }
      held[pid] = 1;
      spilled_bytes += packets_[pid].size_kb;
    }
    if (spilled_bytes != buf.spilled_kb()) {
      report.fail(what + ": spilled_kb " + std::to_string(buf.spilled_kb()) +
                  " but spilled packets sum to " +
                  std::to_string(spilled_bytes) + " kB");
    }
  };
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    audit_one(nodes_[n].buffer, "node " + std::to_string(n) + " buffer");
  }
  for (std::size_t l = 0; l < stations_.size(); ++l) {
    audit_one(stations_[l].storage,
              "station " + std::to_string(l) + " storage");
  }
}

void Network::audit_bundle_stores(sim::AuditReport& report) const {
  // Each store re-derives its own pool, retained-count, dedup-set and
  // spill-index invariants (BundleStore::audit); the network-level part
  // cross-checks retention constraints against the packet table and the
  // fault ledger.
  const auto check_retention = [&](const BundleStore& store, bool is_station,
                                   std::uint32_t where,
                                   const std::string& what) {
    for (const PacketId pid : store.packets()) {
      switch (store.retention(pid)) {
        case Retention::kNone:
          break;
        case Retention::kDispatchPending:
          // Only source data at its origin station is dispatch-pending.
          if (!is_station) {
            report.fail(what + ": node-held packet " + std::to_string(pid) +
                        " marked dispatch-pending");
          } else if (packets_[pid].src != static_cast<LandmarkId>(where)) {
            report.fail(what + ": packet " + std::to_string(pid) +
                        " dispatch-pending away from its origin " +
                        std::to_string(packets_[pid].src));
          }
          break;
        case Retention::kForwardPending:
          // Forward-pending means a retry is live in the fault ledger.
          if (ledger_slot(pid) == kNoLedgerSlot) {
            report.fail(what + ": packet " + std::to_string(pid) +
                        " forward-pending without a ledger entry");
          }
          break;
      }
    }
  };
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const std::string what = "node " + std::to_string(n);
    nodes_[n].buffer.audit(report, what);
    check_retention(nodes_[n].buffer, false, static_cast<std::uint32_t>(n),
                    what);
    if (nodes_[n].buffer.spilled_count() != 0) {
      report.fail(what + ": node stores never spill");
    }
  }
  for (std::size_t l = 0; l < stations_.size(); ++l) {
    const std::string what = "station " + std::to_string(l);
    stations_[l].storage.audit(report, what);
    check_retention(stations_[l].storage, true, static_cast<std::uint32_t>(l),
                    what);
  }
}

bool Network::debug_corrupt_for_test(Corruption kind, int delta) {
  switch (kind) {
    case Corruption::kPresentPos:
      for (auto& station : stations_) {
        if (station.present.empty()) continue;
        // The bug class this simulates: a departure renumbered the
        // shifted suffix wrong.
        present_pos_[station.present.front()] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(present_pos_[station.present.front()]) +
            delta);
        return true;
      }
      return false;
    case Corruption::kBufferBytes:
      if (nodes_.empty()) return false;
      // The bug class this simulates: a transfer updated the id list
      // but accounted the wrong size.
      nodes_.front().buffer.debug_corrupt_used_kb_for_test(delta);
      return true;
    case Corruption::kLedgerIndex:
      if (ledger_.empty()) return false;
      // The bug class this simulates: a swap-erase renumbered the moved
      // entry's back-pointer wrong.
      ledger_index_[ledger_.front().pid] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(ledger_index_[ledger_.front().pid]) +
          delta);
      return true;
    case Corruption::kFaultLossCounter:
      // The bug class this simulates: a crash flush double-counted (or
      // missed) a lost packet.
      counters_.packets_lost_fault = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(counters_.packets_lost_fault) + delta);
      return true;
    case Corruption::kStoreRetention:
      if (stations_.empty()) return false;
      // The bug class this simulates: an eviction (or retention flip)
      // updated entry metadata but not the retained-count cache.
      stations_.front().storage.debug_corrupt_retained_for_test(delta);
      return true;
    case Corruption::kStoreSpillBytes:
      if (stations_.empty()) return false;
      // The bug class this simulates: a recall freed the index row but
      // accounted the wrong byte size.
      stations_.front().storage.debug_corrupt_spilled_kb_for_test(delta);
      return true;
    case Corruption::kStoreDedupOrder:
      // The bug class this simulates: an unsorted insert broke the
      // binary-search precondition of the dedup set.
      for (auto& node : nodes_) {
        if (node.buffer.dedup_seen_count() == 0) continue;
        node.buffer.debug_corrupt_dedup_order_for_test(delta);
        return true;
      }
      for (auto& station : stations_) {
        if (station.storage.dedup_seen_count() == 0) continue;
        station.storage.debug_corrupt_dedup_order_for_test(delta);
        return true;
      }
      return false;
    case Corruption::kStorePoolSize:
      // The bug class this simulates: a swap-erase left the metadata
      // slab disagreeing with the Buffer's byte accounting.
      for (auto& node : nodes_) {
        if (node.buffer.count() == 0) continue;
        node.buffer.debug_corrupt_pool_size_for_test(delta);
        return true;
      }
      for (auto& station : stations_) {
        if (station.storage.count() == 0) continue;
        station.storage.debug_corrupt_pool_size_for_test(delta);
        return true;
      }
      return false;
  }
  return false;
}

PacketId Network::generate_packet(LandmarkId src, LandmarkId dst, double ttl,
                                  NodeId dst_node, PacketId slot) {
  Packet p;
  if (slot == kNoPacket) {
    p.id = static_cast<PacketId>(packets_.size());
  } else {
    // Pre-assigned id (sharded runs): the slot was allocated before the
    // replay started, so concurrent shards never touch the table shape.
    DTN_ASSERT(slot < packets_.size());
    DTN_ASSERT(packets_[slot].state == PacketState::kUnborn);
    p.id = slot;
  }
  p.logical = p.id;
  p.src = src;
  p.dst = dst;
  p.dst_node = dst_node;
  p.created = now_();
  p.ttl = ttl;
  p.size_kb = cfg_.packet_size_kb;
  p.holder = src;
  if (router_.uses_stations()) {
    // Source data enters dispatch-pending: a bounded origin station may
    // evict relayed traffic (or spill) to make room, but never sheds
    // another packet's source data for it.  When nothing can make room
    // the new packet itself is shed — graceful load shedding, the
    // overload regime's intended failure mode (docs/bounded-store.md).
    const Admit verdict =
        store_admit(stations_[src].storage, p, Retention::kDispatchPending,
                    /*allow_spill=*/true, /*check_dedup=*/false);
    if (verdict == Admit::kStored || verdict == Admit::kSpilled) {
      p.state = PacketState::kAtStation;
      p.station_path.push_back(src);
    } else {
      p.state = PacketState::kEvicted;
      ++ctr().admission_shed;
    }
  } else {
    p.state = PacketState::kAtOrigin;
    stations_[src].origin.push_back(p.id);
  }
  const PacketId pid = p.id;
  if (slot == kNoPacket) {
    packets_.push_back(std::move(p));
    logical_delivered_.push_back(0);
  } else {
    packets_[slot] = std::move(p);
  }
  ++ctr().generated;
  // run_sharded rejects node-addressed workloads, so this global flag
  // is only ever written on the serial path.
  if (dst_node != trace::kNoNode) any_node_addressed_ = true;
  // A shed packet never entered any store: it counts as generated
  // (offered load) but is invisible to the router and the handover scan.
  Packet& placed = packets_[pid];
  if (is_terminal(placed.state)) return pid;
  // A node-addressed packet whose destination node is connected at the
  // source right now is handed over on the spot.
  if (placed.dst_node != trace::kNoNode &&
      placed.dst_node < nodes_.size() &&
      nodes_[placed.dst_node].location == src &&
      !node_down(placed.dst_node) &&
      (placed.state != PacketState::kAtStation || !station_down(src))) {
    if (placed.state == PacketState::kAtStation) {
      station_remove(src, pid, placed.size_kb);
    } else {
      // The packet was appended to the origin queue just above, so it
      // is the tail: removing it is a pop, no scan or shift.
      auto& origin = stations_[src].origin;
      DTN_ASSERT(!origin.empty() && origin.back() == pid);
      origin.pop_back();
    }
    ++placed.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    return pid;
  }
  router_.on_packet_generated(*this, pid);
  return pid;
}

void Network::deliver(PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(!is_terminal(p.state));
  ledger_erase(pid);
  p.delivered_at = now_();
  if (logical_delivered_[p.logical] != 0) {
    // Another copy got there first: retire silently.
    p.state = PacketState::kObsoleteCopy;
    return;
  }
  logical_delivered_[p.logical] = 1;
  p.state = PacketState::kDelivered;
  const double delay = p.delivered_at - p.created;
  if (sharded_run_) {
    // Per-shard delivery log, keyed by the delivering event so the
    // merge restores the serial append order bit-for-bit.
    ShardContext& ctx = contexts_[sim::current_shard()];
    ++ctx.counters.delivered;
    ctx.records.push_back({ctx.now, ctx.cur_seq, delay, p.hops});
  } else {
    ++counters_.delivered;
    counters_.total_delay += delay;
    counters_.delivery_delays.push_back(delay);
    counters_.delivery_hops.push_back(p.hops);
  }
}

void Network::deliver_node_addressed(NodeId arriving, LandmarkId l) {
  const double now = now_();
  // Station packets addressed to the arriving node (frozen while the
  // station is in an injected outage).
  if (!station_down(l)) {
    std::vector<PacketId> ready;
    for (const PacketId pid : stations_[l].storage.packets()) {
      if (packets_[pid].dst_node == arriving) ready.push_back(pid);
    }
    for (const PacketId pid : ready) {
      Packet& p = packets_[pid];
      if (p.expired(now)) continue;
      station_remove(l, pid, p.size_kb);
      ++p.hops;
      ++ctr().packet_forwards;
      deliver(pid);
    }
  }
  // Packets carried by co-located nodes and addressed to the arriving
  // node, plus packets carried by the arriving node addressed to a
  // co-located node.  One upfront pass over the arriving node's buffer
  // decides whether the second direction can exist at all; the common
  // case (the carrier holds no node-addressed packets) then scans every
  // peer's buffer exactly once instead of re-walking the arriving
  // node's buffer per peer.
  std::size_t arriving_node_addressed = 0;
  for (const PacketId pid : nodes_[arriving].buffer.packets()) {
    if (packets_[pid].dst_node != trace::kNoNode) ++arriving_node_addressed;
  }
  std::vector<PacketId> handover;
  for (const NodeId other : stations_[l].present) {
    if (node_down(other)) continue;
    for (const NodeId holder : {other, arriving}) {
      const NodeId target = holder == arriving ? other : arriving;
      if (holder == target) continue;
      // Skip re-walking the arriving node's buffer when it carries
      // nothing node-addressed.  (When it does, the exact re-walk is
      // kept: buffer removal swap-reorders the remaining packets, and
      // the per-peer walk order is part of the deterministic-replay
      // contract.)
      if (holder == arriving && arriving_node_addressed == 0) continue;
      handover.clear();
      for (const PacketId pid : nodes_[holder].buffer.packets()) {
        if (packets_[pid].dst_node == target) handover.push_back(pid);
      }
      for (const PacketId pid : handover) {
        Packet& p = packets_[pid];
        if (p.expired(now)) continue;
        nodes_[holder].buffer.remove(pid, p.size_kb);
        ++p.hops;
        ++ctr().packet_forwards;
        deliver(pid);
      }
    }
  }
}

void Network::drop_expired() {
  const double now = now_();
  for (Packet& p : packets_) {
    if (is_terminal(p.state)) continue;
    const bool obsolete = logical_delivered_[p.logical] != 0;
    if (!obsolete && !p.expired(now)) continue;
    switch (p.state) {
      case PacketState::kAtOrigin: {
        auto& origin = stations_[p.holder].origin;
        const auto it = std::find(origin.begin(), origin.end(), p.id);
        DTN_ASSERT(it != origin.end());
        origin.erase(it);
        break;
      }
      case PacketState::kAtStation:
        station_remove(p.holder, p.id, p.size_kb);
        break;
      case PacketState::kOnNode:
        nodes_[p.holder].buffer.remove(p.id, p.size_kb);
        break;
      default:
        break;
    }
    ledger_erase(p.id);
    if (obsolete) {
      p.state = PacketState::kObsoleteCopy;
    } else {
      p.state = PacketState::kDroppedTtl;
      ++ctr().dropped_ttl;
    }
  }
}

void Network::handle_arrival(const trace::Visit& visit) {
  NodeState& node = nodes_[visit.node];
  StationState& station = stations_[visit.landmark];
  DTN_ASSERT(node.location == kNoLandmark);
  node.location = visit.landmark;
  present_pos_[visit.node] = static_cast<std::uint32_t>(station.present.size());
  station.present.push_back(visit.node);

  // Automatic delivery: every router hands over packets destined to the
  // landmark the carrier just reached (DTN-FLOW step 5; for baselines
  // this *is* delivery — the carrier reached the destination area).
  // A crashed carrier delivers nothing; for station architectures the
  // landmark's station is the sink, so an outage defers delivery too.
  // `scratch_` is a reused member: this runs once per trace event, and
  // a fresh vector here would mean one allocation per arrival.
  const bool arriving_up = !node_down(visit.node);
  const bool sink_up =
      !router_.uses_stations() || !station_down(visit.landmark);
  if (arriving_up && sink_up) {
    std::vector<PacketId>& arrived = arrival_scratch();
    arrived.clear();
    for (PacketId pid : node.buffer.packets()) {
      if (packets_[pid].dst == visit.landmark &&
          packets_[pid].dst_node == trace::kNoNode) {
        arrived.push_back(pid);
      }
    }
    for (PacketId pid : arrived) {
      Packet& p = packets_[pid];
      if (p.expired(now_())) continue;  // swept later
      node.buffer.remove(pid, p.size_kb);
      ++p.hops;
      ++ctr().packet_forwards;
      deliver(pid);
    }
  }

  // Node-addressed packets (§IV-E.4) waiting anywhere at this landmark
  // for the arriving node, or carried by it toward a co-located node.
  // No such packet has ever been generated in the standard workload, so
  // the whole handover pass is skipped there.
  if (any_node_addressed_ && arriving_up) {
    deliver_node_addressed(visit.node, visit.landmark);
  }

  router_.on_arrival(*this, visit.node, visit.landmark);

  // Node-node contacts with everyone already present (crashed radios,
  // either side, make no contact).
  if (arriving_up) {
    for (NodeId other : station.present) {
      if (other == visit.node || node_down(other)) continue;
      router_.on_contact(*this, visit.node, other, visit.landmark);
    }
  }
}

void Network::handle_departure(const trace::Visit& visit) {
  NodeState& node = nodes_[visit.node];
  StationState& station = stations_[visit.landmark];
  DTN_ASSERT(node.location == visit.landmark);

  router_.on_departure(*this, visit.node, visit.landmark);

  // Indexed removal: `present_pos_` names the slot directly, so no scan.
  // The erase itself stays order-preserving (a swap-remove would reorder
  // the contacts routers observe); only the shifted suffix's positions
  // need renumbering.
  const std::uint32_t pos = present_pos_[visit.node];
  DTN_ASSERT(pos < station.present.size() &&
             station.present[pos] == visit.node);
  station.present.erase(station.present.begin() + pos);
  for (std::size_t i = pos; i < station.present.size(); ++i) {
    present_pos_[station.present[i]] = static_cast<std::uint32_t>(i);
  }
  node.location = kNoLandmark;
  node.previous = visit.landmark;
  node.history.push_back(visit);
}

void Network::handle_departure_batch(const trace::Visit* const* visits,
                                     std::size_t count) {
  DTN_ASSERT(count >= 2);
  const LandmarkId l = visits[0]->landmark;
  StationState& station = stations_[l];
  // One epoch advance for the whole batch (DtnFlowRouter prepays by
  // `count`, so serialized epoch values stay identical to unbatched
  // replay); the per-node hooks below then skip their bumps.
  router_.on_departure_batch_begin(*this, l, count);
  std::size_t min_pos = station.present.size();
  for (std::size_t i = 0; i < count; ++i) {
    const trace::Visit& visit = *visits[i];
    NodeState& node = nodes_[visit.node];
    DTN_ASSERT(node.location == visit.landmark);
    // Exact unbatched interleaving: each hook runs with every earlier
    // batch member already erased from the present set.
    router_.on_departure(*this, visit.node, visit.landmark);
    // The full suffix renumber is deferred to the end of the batch, but
    // the *members'* own entries are kept exact as the vector shrinks
    // (next loop): each member then reads its true position here, and
    // its entry goes stale at exactly the value the unbatched path
    // leaves behind — present_pos_ is serialized stale entries and all,
    // so even departed nodes' leftovers must match bit-for-bit.
    const std::uint32_t pos = present_pos_[visit.node];
    DTN_ASSERT(pos < station.present.size() &&
               station.present[pos] == visit.node);
    station.present.erase(station.present.begin() + pos);
    if (pos < min_pos) min_pos = pos;
    for (std::size_t j = i + 1; j < count; ++j) {
      std::uint32_t& later = present_pos_[visits[j]->node];
      if (later > pos) --later;
    }
    node.location = kNoLandmark;
    node.previous = visit.landmark;
    node.history.push_back(visit);
  }
  // One suffix renumber for the whole batch instead of one per erase.
  for (std::size_t i = min_pos; i < station.present.size(); ++i) {
    present_pos_[station.present[i]] = static_cast<std::uint32_t>(i);
  }
}

void Network::drain_arrival_batch(double time, LandmarkId l) {
  // Arrivals keep their per-event hook work — on_arrival observes the
  // incrementally growing present set — so grouping them only saves the
  // simulator merge step per event.  Queue events cannot interleave: at
  // equal times their seqs sit above the cursor's range (seq floor).
  while (!batch_source_->exhausted()) {
    const sim::Event& next = batch_source_->peek();
    if (next.kind != sim::EventKind::kArrival || next.time != time) break;
    const trace::Visit& visit = trace_.visits(next.a)[next.b];
    if (visit.landmark != l) break;
    batch_source_->advance();
    sim_.absorb_external_event();
    auditor_.on_event();
    handle_arrival(visit);
  }
}

void Network::dispatch_departure_batched(const sim::Event& ev) {
  const trace::Visit& first = trace_.visits(ev.a)[ev.b];
  if (batch_source_->exhausted()) {
    handle_departure(first);
    return;
  }
  // Cheap single-peek fast path: ties of distinct visits at one exact
  // timestamp are rare in continuous-time traces.
  {
    const sim::Event& next = batch_source_->peek();
    if (next.kind != sim::EventKind::kDeparture || next.time != ev.time ||
        trace_.visits(next.a)[next.b].landmark != first.landmark) {
      handle_departure(first);
      return;
    }
  }
  std::vector<const trace::Visit*>& batch = batch_scratch();
  batch.clear();
  batch.push_back(&first);
  while (!batch_source_->exhausted()) {
    const sim::Event& next = batch_source_->peek();
    if (next.kind != sim::EventKind::kDeparture || next.time != ev.time) break;
    const trace::Visit& visit = trace_.visits(next.a)[next.b];
    if (visit.landmark != first.landmark) break;
    batch_source_->advance();
    sim_.absorb_external_event();
    auditor_.on_event();
    batch.push_back(&visit);
  }
  handle_departure_batch(batch.data(), batch.size());
}

}  // namespace dtn::net
