#include "net/network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>

#include "trace/cursor.hpp"
#include "trace/shard_cursor.hpp"
#include "util/logging.hpp"

namespace dtn::net {

Network::Network(const trace::Trace& trace, Router& router,
                 WorkloadConfig config)
    : trace_(trace), router_(router), cfg_(config), rng_(config.seed) {
  DTN_ASSERT(trace.finalized());
  DTN_ASSERT(cfg_.warmup_fraction >= 0.0 && cfg_.warmup_fraction < 1.0);
  DTN_ASSERT(cfg_.time_unit > 0.0);
  // Periodic invariant auditing: the per-run config can enable it; the
  // DTN_AUDIT environment flag (already folded into the default-constructed
  // auditor) enables it for whole test/CI runs without touching code.
  if (cfg_.audit_period_events > 0) {
    auto acfg = auditor_.config();
    acfg.enabled = true;
    acfg.period_events = cfg_.audit_period_events;
    auditor_ = sim::InvariantAuditor(acfg);
  }
  auditor_.register_check(
      "event_queue.heap",
      [this](sim::AuditReport& r) { sim_.queue().audit(r); });
  auditor_.register_check(
      "network.present_sets",
      [this](sim::AuditReport& r) { audit_present_sets(r); });
  auditor_.register_check(
      "network.buffer_accounting",
      [this](sim::AuditReport& r) { audit_buffer_accounting(r); });
  auditor_.register_check(
      "router.state",
      [this](sim::AuditReport& r) { router_.audit(*this, r); });
  auditor_.register_check(
      "network.fault_state",
      [this](sim::AuditReport& r) { audit_fault_state(r); });
  // Fault plan: engage the injector (which validates the plan against
  // the trace's node/landmark universe, throwing std::invalid_argument
  // on malformed config).
  if (cfg_.faults.has_value()) {
    faults_.emplace(*cfg_.faults, trace.num_nodes(), trace.num_landmarks());
  }
  outage_recovery_pending_.assign(trace.num_landmarks(), -1.0);
  nodes_.reserve(trace.num_nodes());
  for (std::size_t n = 0; n < trace.num_nodes(); ++n) {
    nodes_.emplace_back(cfg_.node_memory_kb);
  }
  present_pos_.resize(trace.num_nodes(), 0);
  stations_.resize(trace.num_landmarks());
  trace_begin_ = trace.begin_time();
  trace_end_ = trace.end_time();
  workload_start_ =
      trace_begin_ + cfg_.warmup_fraction * (trace_end_ - trace_begin_);
}

void Network::build_workload() {
  workload_.clear();
  if (cfg_.packets_per_landmark_per_day <= 0.0 || trace_.num_landmarks() <= 1) {
    return;
  }
  // Independent Poisson process per landmark, starting after the
  // initialization phase (paper: first 1/4 of the trace).  Every draw
  // comes from a per-landmark split stream and happens before the
  // replay, so the randomness a landmark's workload consumes is
  // independent of event interleaving — the property that lets the
  // sharded engine replay the identical workload.
  const double mean_gap = trace::kDay / cfg_.packets_per_landmark_per_day;
  const auto num_landmarks = trace_.num_landmarks();
  if (!cfg_.destination_weights.empty()) {
    DTN_ASSERT(cfg_.destination_weights.size() == num_landmarks);
  }
  std::vector<double> weights;
  for (LandmarkId l = 0; l < num_landmarks; ++l) {
    Rng stream = rng_.split(l);
    const double* weight_data = nullptr;
    if (!cfg_.destination_weights.empty()) {
      weights = cfg_.destination_weights;
      weights[l] = 0.0;
      double total = 0.0;
      for (const double w : weights) total += w;
      // All demand from this landmark targets itself (e.g. the
      // collection sink): nothing to send.
      if (total <= 0.0) continue;
      weight_data = weights.data();
    }
    double t = workload_start_;
    while (true) {
      t += stream.exponential(mean_gap);
      if (t > trace_end_) break;
      LandmarkId dst;
      if (weight_data == nullptr) {
        // Uniformly random destination among the others (§V-A.1).
        dst = static_cast<LandmarkId>(stream.uniform_index(num_landmarks - 1));
        if (dst >= l) ++dst;
      } else {
        dst = static_cast<LandmarkId>(
            stream.discrete({weight_data, num_landmarks}));
      }
      workload_.push_back({t, l, dst, kNoPacket});
    }
  }
  // Rank order = global time order (ties by source landmark; within one
  // landmark the stable sort keeps the generation order).
  std::stable_sort(workload_.begin(), workload_.end(),
                   [](const WorkloadEntry& a, const WorkloadEntry& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.src < b.src;
                   });
}

void Network::run() {
  DTN_ASSERT(!ran_);
  ran_ = true;

  router_.on_init(*this);

  // Trace replay: arrivals and departures stream lazily out of the
  // cursor's k-way merge instead of being pre-scheduled one closure per
  // visit.  The cursor owns the sequence range [0, total_events()), so
  // same-time ties order exactly as the retired eager enumeration did.
  trace::TraceCursor cursor(trace_);
  sim_.set_dispatcher(&Network::dispatch_trampoline, this);
  sim_.set_seq_floor(cursor.total_events());

  // Dynamic events take the sequence range above the cursor's in a
  // fixed scheduling order — manual packets, then sweep/tick pairs,
  // then the pre-drawn Poisson workload — so every event's (time, seq)
  // key is a static function of the config.  The sharded engine
  // recomputes exactly these ranks (docs/parallel-engine.md).
  for (std::size_t i = 0; i < cfg_.manual_packets.size(); ++i) {
    const auto& mp = cfg_.manual_packets[i];
    DTN_ASSERT(mp.src < trace_.num_landmarks());
    DTN_ASSERT(mp.dst < trace_.num_landmarks());
    DTN_ASSERT(mp.src != mp.dst || mp.dst_node != trace::kNoNode);
    sim::Event ev;
    ev.kind = sim::EventKind::kManualPacket;
    ev.a = static_cast<std::uint32_t>(i);
    sim_.schedule(mp.time, ev);
  }

  // Measurement time-unit ticks for bandwidth / routing-table updates,
  // each preceded by a TTL expiry sweep at the same instant (the sweep
  // is scheduled first, so it keeps the lower sequence number).
  const auto units = static_cast<std::size_t>(
      std::ceil((trace_end_ - trace_begin_) / cfg_.time_unit));
  for (std::size_t u = 1; u <= units; ++u) {
    const double t = trace_begin_ + static_cast<double>(u) * cfg_.time_unit;
    if (t > trace_end_) break;
    sim::Event sweep;
    sweep.kind = sim::EventKind::kTtlSweep;
    sim_.schedule(t, sweep);
    sim::Event tick;
    tick.kind = sim::EventKind::kTimeUnitTick;
    tick.a = static_cast<std::uint32_t>(u);
    sim_.schedule(t, tick);
  }

  build_workload();
  for (std::size_t j = 0; j < workload_.size(); ++j) {
    sim::Event ev;
    ev.kind = sim::EventKind::kPacketGen;
    ev.a = workload_[j].src;
    ev.b = static_cast<std::uint32_t>(j);
    sim_.schedule(workload_[j].time, ev);
  }

  // Fault events last: a plan with nothing to inject schedules nothing,
  // and the workload events above keep the sequence numbers they would
  // have in a fault-free run.
  schedule_faults();

  sim_.run_until(trace_end_, &cursor);
  drop_expired();
  // One final audit so short runs (fewer events than the period) still
  // get checked at least once when auditing is on.
  if (auditor_.enabled()) auditor_.audit_now();
}

void Network::run_sharded(std::size_t num_shards, ThreadPool* pool) {
  if (num_shards <= 1) {
    run();
    return;
  }
  DTN_ASSERT(!ran_);
  // Preconditions of the parallel path (docs/parallel-engine.md):
  // a shard-safe router, no fault plan (fault events are global), no
  // periodic event-count auditing (the shared event counter would
  // race; barrier audits below cover the DTN_AUDIT use case) and a
  // landmark-addressed workload (node-addressed generation reads the
  // destination node's location, which another shard may own).
  DTN_ASSERT(router_.shard_safe());
  DTN_ASSERT(!cfg_.faults.has_value());
  DTN_ASSERT(cfg_.audit_period_events == 0);
  for (const auto& mp : cfg_.manual_packets) {
    DTN_ASSERT(mp.src < trace_.num_landmarks());
    DTN_ASSERT(mp.dst < trace_.num_landmarks());
    DTN_ASSERT(mp.src != mp.dst);
    DTN_ASSERT(mp.dst_node == trace::kNoNode);
    (void)mp;
  }
  ran_ = true;

  // Shard map: balance landmarks by visit count, then split the trace
  // into per-shard (time, seq)-sorted event streams.
  const auto weights = trace::landmark_visit_weights(trace_);
  const auto landmark_shard = sim::assign_shards(weights, num_shards);
  auto split = trace::split_trace_events(trace_, landmark_shard, num_shards);
  const std::uint64_t seq_floor = split.total_events;

  // Static sequence ranks mirroring run()'s scheduling order exactly:
  // manual packets, then sweep/tick pairs, then the Poisson workload.
  const std::size_t num_manual = cfg_.manual_packets.size();
  const auto max_units = static_cast<std::size_t>(
      std::ceil((trace_end_ - trace_begin_) / cfg_.time_unit));
  std::vector<sim::EventKey> unit_bounds;
  for (std::size_t u = 1; u <= max_units; ++u) {
    const double t = trace_begin_ + static_cast<double>(u) * cfg_.time_unit;
    if (t > trace_end_) break;
    // The bound sits at the sweep's own key; the coordinator executes
    // the sweep and the tick (rank + 1) as its barrier phase.
    unit_bounds.push_back({t, seq_floor + num_manual + 2 * (u - 1)});
  }
  build_workload();
  const std::uint64_t gen_rank0 =
      seq_floor + num_manual + 2 * unit_bounds.size();

  // Pre-assign packet ids: generation-type events execute in (time,
  // rank) order, and serial ids are exactly that append order.  Manual
  // packets scheduled past the trace end keep their rank but never
  // dispatch, so they get no id.
  std::vector<sim::Event> dyn;
  dyn.reserve(num_manual + workload_.size());
  for (std::size_t i = 0; i < num_manual; ++i) {
    const auto& mp = cfg_.manual_packets[i];
    if (mp.time > trace_end_) continue;
    sim::Event ev{};
    ev.time = mp.time;
    ev.seq = seq_floor + i;
    ev.kind = sim::EventKind::kManualPacket;
    ev.a = static_cast<std::uint32_t>(i);
    dyn.push_back(ev);
  }
  for (std::size_t j = 0; j < workload_.size(); ++j) {
    sim::Event ev{};
    ev.time = workload_[j].time;
    ev.seq = gen_rank0 + j;
    ev.kind = sim::EventKind::kPacketGen;
    ev.a = workload_[j].src;
    ev.b = static_cast<std::uint32_t>(j);
    dyn.push_back(ev);
  }
  std::sort(dyn.begin(), dyn.end(), [](const sim::Event& a,
                                       const sim::Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  });
  manual_pids_.assign(num_manual, kNoPacket);
  Packet unborn;
  unborn.state = PacketState::kUnborn;
  packets_.assign(dyn.size(), unborn);
  logical_delivered_.assign(dyn.size(), 0);
  for (std::size_t k = 0; k < dyn.size(); ++k) {
    const auto pid = static_cast<PacketId>(k);
    if (dyn[k].kind == sim::EventKind::kManualPacket) {
      manual_pids_[dyn[k].a] = pid;
    } else {
      workload_[dyn[k].b].pid = pid;
    }
  }

  // Generation events run on the shard owning their source landmark
  // (dyn is globally sorted, so each per-shard stream stays sorted).
  std::vector<std::vector<sim::Event>> dyn_streams(num_shards);
  for (const sim::Event& ev : dyn) {
    const LandmarkId src = ev.kind == sim::EventKind::kManualPacket
                               ? cfg_.manual_packets[ev.a].src
                               : workload_[ev.b].src;
    dyn_streams[landmark_shard[src]].push_back(ev);
  }

  const auto epochs = sim::plan_barriers(
      std::move(split.migrations), unit_bounds,
      {trace_end_, std::numeric_limits<std::uint64_t>::max()});

  contexts_ = std::vector<ShardContext>(num_shards);
  router_.prepare_shards(num_shards);
  sharded_run_ = true;
  router_.on_init(*this);

  std::optional<ThreadPool> owned_pool;
  if (pool == nullptr) {
    owned_pool.emplace(num_shards);
    pool = &*owned_pool;
  }

  std::vector<std::size_t> trace_pos(num_shards, 0);
  std::vector<std::size_t> dyn_pos(num_shards, 0);

  // Two-pointer merge of one shard's trace and generation streams,
  // processed strictly below the epoch bound.  Safe to run from any
  // thread: every write lands in shard-owned state (ScopedShard routes
  // the counter/diagnostic slots), so the inline fast path below and
  // the pool path execute identical work.
  const auto process_shard = [&](std::size_t s, const sim::EventKey& bound) {
    sim::ScopedShard guard(s);
    ShardContext& ctx = contexts_[s];
    const auto& trace_stream = split.events[s];
    const auto& dyn_stream = dyn_streams[s];
    std::size_t ti = trace_pos[s];
    std::size_t di = dyn_pos[s];
    while (true) {
      const bool has_trace = ti < trace_stream.size();
      const bool has_dyn = di < dyn_stream.size();
      if (!has_trace && !has_dyn) break;
      bool take_trace = has_trace;
      if (has_trace && has_dyn) {
        take_trace = trace_stream[ti].key() <
                     sim::EventKey{dyn_stream[di].time, dyn_stream[di].seq};
      }
      if (take_trace) {
        const trace::ShardEventRef& ref = trace_stream[ti];
        if (!(ref.key() < bound)) break;
        ctx.now = ref.time;
        ctx.cur_seq = ref.seq;
        ++ctx.events;
        dispatch_sharded(trace::materialize(ref));
        ++ti;
      } else {
        const sim::Event& ev = dyn_stream[di];
        if (!(sim::EventKey{ev.time, ev.seq} < bound)) break;
        ctx.now = ev.time;
        ctx.cur_seq = ev.seq;
        ++ctx.events;
        dispatch_sharded(ev);
        ++di;
      }
    }
    trace_pos[s] = ti;
    dyn_pos[s] = di;
  };
  // Events pending in shard s strictly below the bound (both streams
  // are key-sorted, so this is two binary searches).
  const auto pending_below = [&](std::size_t s, const sim::EventKey& bound) {
    const auto& trace_stream = split.events[s];
    const auto& dyn_stream = dyn_streams[s];
    const auto tit = std::lower_bound(
        trace_stream.begin() + static_cast<std::ptrdiff_t>(trace_pos[s]),
        trace_stream.end(), bound,
        [](const trace::ShardEventRef& e, const sim::EventKey& k) {
          return e.key() < k;
        });
    const auto dit = std::lower_bound(
        dyn_stream.begin() + static_cast<std::ptrdiff_t>(dyn_pos[s]),
        dyn_stream.end(), bound,
        [](const sim::Event& e, const sim::EventKey& k) {
          return sim::EventKey{e.time, e.seq} < k;
        });
    return static_cast<std::size_t>(
        (tit - trace_stream.begin()) - static_cast<std::ptrdiff_t>(trace_pos[s]) +
        (dit - dyn_stream.begin()) - static_cast<std::ptrdiff_t>(dyn_pos[s]));
  };
  // Below this many total pending events an epoch runs inline on the
  // coordinator thread: a pool barrier costs more than dispatching a
  // handful of events, and migration stabs usually open sliver epochs
  // where a single node hands over between two shards.  Shard state is
  // disjoint, so processing shards sequentially from one thread is
  // execution-equivalent to the parallel path.
  constexpr std::size_t kInlineEpochThreshold = 128;

  std::vector<std::size_t> active;
  active.reserve(num_shards);
  for (const sim::EpochBound& bound : epochs) {
    active.clear();
    std::size_t pending = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::size_t p = pending_below(s, bound.key);
      if (p > 0) active.push_back(s);
      pending += p;
    }
    if (active.size() == 1 || pending <= kInlineEpochThreshold) {
      for (const std::size_t s : active) process_shard(s, bound.key);
    } else {
      parallel_for(*pool, active.size(), [&](std::size_t i) {
        process_shard(active[i], bound.key);
      });
    }
    // Barrier phase, on the coordinator thread under shard slot 0: the
    // global TTL sweep and router tick run exactly where their serial
    // (time, seq) keys place them.
    if (bound.kind == sim::EpochKind::kUnit) {
      ShardContext& coord = contexts_[0];
      coord.now = bound.key.time;
      coord.cur_seq = bound.key.seq;
      ++coord.events;
      drop_expired();
      coord.cur_seq = bound.key.seq + 1;
      ++coord.events;
      router_.on_time_unit(*this, bound.unit_index);
    }
    if (auditor_.enabled()) auditor_.audit_now();
  }

  // Horizon sweep, as run() does after run_until.
  contexts_[0].now = trace_end_;
  drop_expired();
  merge_shard_contexts();
  if (auditor_.enabled()) auditor_.audit_now();
}

void Network::dispatch_sharded(const sim::Event& ev) {
  switch (ev.kind) {
    case sim::EventKind::kArrival:
      handle_arrival(trace_.visits(ev.a)[ev.b]);
      break;
    case sim::EventKind::kDeparture:
      handle_departure(trace_.visits(ev.a)[ev.b]);
      break;
    case sim::EventKind::kPacketGen: {
      const WorkloadEntry& w = workload_[ev.b];
      generate_packet(w.src, w.dst, cfg_.ttl, trace::kNoNode, w.pid);
      break;
    }
    case sim::EventKind::kManualPacket: {
      const auto& mp = cfg_.manual_packets[ev.a];
      const double ttl = mp.ttl > 0.0 ? mp.ttl : cfg_.ttl;
      generate_packet(mp.src, mp.dst, ttl, trace::kNoNode,
                      manual_pids_[ev.a]);
      break;
    }
    default:
      // Sweeps/ticks run at barriers; faults are rejected up front.
      DTN_ASSERT(false);
  }
}

void Network::merge_shard_contexts() {
  RunCounters total;
  std::vector<DeliveryRecord> records;
  std::size_t num_records = 0;
  for (const ShardContext& ctx : contexts_) {
    num_records += ctx.records.size();
  }
  records.reserve(num_records);
  std::uint64_t events = 0;
  for (const ShardContext& ctx : contexts_) {
    const RunCounters& c = ctx.counters;
    total.generated += c.generated;
    total.delivered += c.delivered;
    total.dropped_ttl += c.dropped_ttl;
    total.refused_buffer += c.refused_buffer;
    total.packet_forwards += c.packet_forwards;
    total.replications += c.replications;
    // Every account_control summand is an integer-valued double (entry
    // counts), so all partial sums are exact and the per-shard
    // regrouping cannot change the total's bits.
    total.control_entries += c.control_entries;
    // Faults are rejected in sharded runs; the resilience counters must
    // all still be zero.
    DTN_ASSERT(c.node_crashes == 0 && c.station_outages == 0 &&
               c.packets_lost_fault == 0 && c.transfers_interrupted == 0 &&
               c.transfers_blocked_fault == 0);
    events += ctx.events;
    records.insert(records.end(), ctx.records.begin(), ctx.records.end());
  }
  // Restore the serial delivery order: records sort by the delivering
  // event's (time, seq) key; several deliveries inside one event share
  // a key and sit contiguously in one shard's log, so the stable sort
  // keeps their intra-event order.
  std::stable_sort(records.begin(), records.end(),
                   [](const DeliveryRecord& a, const DeliveryRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.seq < b.seq;
                   });
  total.delivery_delays.reserve(records.size());
  total.delivery_hops.reserve(records.size());
  for (const DeliveryRecord& r : records) {
    total.total_delay += r.delay;
    total.delivery_delays.push_back(r.delay);
    total.delivery_hops.push_back(r.hops);
  }
  DTN_ASSERT(total.delivered == records.size());
  counters_ = std::move(total);
  sharded_events_ = events;
}

void Network::dispatch(const sim::Event& ev) {
  auditor_.on_event();
  switch (ev.kind) {
    case sim::EventKind::kArrival:
      handle_arrival(trace_.visits(ev.a)[ev.b]);
      break;
    case sim::EventKind::kDeparture:
      handle_departure(trace_.visits(ev.a)[ev.b]);
      break;
    case sim::EventKind::kPacketGen: {
      const WorkloadEntry& w = workload_[ev.b];
      generate_packet(w.src, w.dst, cfg_.ttl, trace::kNoNode, w.pid);
      break;
    }
    case sim::EventKind::kManualPacket: {
      const auto& mp = cfg_.manual_packets[ev.a];
      const double ttl = mp.ttl > 0.0 ? mp.ttl : cfg_.ttl;
      const PacketId slot =
          manual_pids_.empty() ? kNoPacket : manual_pids_[ev.a];
      generate_packet(mp.src, mp.dst, ttl, mp.dst_node, slot);
      break;
    }
    case sim::EventKind::kTtlSweep:
      drop_expired();
      break;
    case sim::EventKind::kTimeUnitTick:
      router_.on_time_unit(*this, ev.a);
      break;
    case sim::EventKind::kNodeCrash:
      apply_node_crash(ev);
      break;
    case sim::EventKind::kNodeReboot:
      apply_node_reboot(ev);
      break;
    case sim::EventKind::kStationDown:
      apply_station_down(ev);
      break;
    case sim::EventKind::kStationUp:
      apply_station_up(ev);
      break;
    default:
      DTN_ASSERT(false);
  }
}

void Network::schedule_faults() {
  if (!faults_.has_value()) return;
  const sim::FaultPlan& plan = faults_->plan();
  for (std::size_t i = 0; i < plan.node_crashes.size(); ++i) {
    const auto& c = plan.node_crashes[i];
    if (c.time > trace_end_) continue;
    sim::Event ev;
    ev.kind = sim::EventKind::kNodeCrash;
    ev.a = c.node;
    ev.b = static_cast<std::uint32_t>(i) + 1;
    sim_.schedule(c.time, ev);
  }
  for (std::size_t i = 0; i < plan.station_outages.size(); ++i) {
    const auto& o = plan.station_outages[i];
    if (o.start > trace_end_) continue;
    sim::Event ev;
    ev.kind = sim::EventKind::kStationDown;
    ev.a = o.station;
    ev.b = static_cast<std::uint32_t>(i) + 1;
    sim_.schedule(o.start, ev);
  }
  // Stochastic processes: first occurrence per node/station drawn here
  // (in id order, part of the deterministic-replay contract); each
  // reboot/recovery draws the next one.
  if (plan.node_crash_rate_per_day > 0.0) {
    for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
      const double t = trace_begin_ + faults_->draw_crash_gap();
      if (t > trace_end_) continue;
      sim::Event ev;
      ev.kind = sim::EventKind::kNodeCrash;
      ev.a = n;
      sim_.schedule(t, ev);
    }
  }
  if (plan.station_outage_rate_per_day > 0.0) {
    for (std::uint32_t l = 0; l < stations_.size(); ++l) {
      const double t = trace_begin_ + faults_->draw_outage_gap();
      if (t > trace_end_) continue;
      sim::Event ev;
      ev.kind = sim::EventKind::kStationDown;
      ev.a = l;
      sim_.schedule(t, ev);
    }
  }
}

void Network::apply_node_crash(const sim::Event& ev) {
  const NodeId node = ev.a;
  DTN_ASSERT(node < nodes_.size());
  // Scheduled crashes carry their downtime in the plan; stochastic ones
  // draw it now (dispatch order is deterministic, so so is the draw).
  const double downtime = ev.b != 0
                              ? faults_->plan().node_crashes[ev.b - 1].downtime
                              : faults_->draw_downtime();
  ++counters_.node_crashes;
  // Buffer loss: every buffered packet independently survives or dies.
  NodeState& ns = nodes_[node];
  std::vector<PacketId>& doomed = scratch_;
  doomed.clear();
  for (const PacketId pid : ns.buffer.packets()) {
    if (faults_->draw_crash_packet_loss()) doomed.push_back(pid);
  }
  for (const PacketId pid : doomed) {
    Packet& p = packets_[pid];
    ns.buffer.remove(pid, p.size_kb);
    ledger_erase(pid);
    if (logical_delivered_[p.logical] != 0) {
      p.state = PacketState::kObsoleteCopy;
    } else {
      p.state = PacketState::kLostFault;
      ++counters_.packets_lost_fault;
      counters_.kb_lost_fault += p.size_kb;
    }
  }
  faults_->mark_node_down(node);
  router_.on_node_crash(*this, node);
  sim::Event up;
  up.kind = sim::EventKind::kNodeReboot;
  up.a = node;
  up.b = ev.b;  // reboot remembers the crash source (scheduled/stochastic)
  sim_.schedule(sim_.now() + downtime, up);
}

void Network::apply_node_reboot(const sim::Event& ev) {
  const NodeId node = ev.a;
  faults_->mark_node_up(node);
  ++counters_.node_reboots;
  router_.on_node_reboot(*this, node);
  // A stochastic crash chain continues after the reboot (never while
  // down, so a double crash is impossible by construction).
  if (ev.b == 0 && faults_->plan().node_crash_rate_per_day > 0.0) {
    const double t = sim_.now() + faults_->draw_crash_gap();
    if (t > trace_end_) return;
    sim::Event ev2;
    ev2.kind = sim::EventKind::kNodeCrash;
    ev2.a = node;
    sim_.schedule(t, ev2);
  }
}

void Network::apply_station_down(const sim::Event& ev) {
  const LandmarkId l = ev.a;
  DTN_ASSERT(l < stations_.size());
  ++counters_.station_outages;
  // A pending recovery-time measurement dies with the new outage.
  outage_recovery_pending_[l] = -1.0;
  faults_->mark_station_down(l);
  router_.on_station_outage(*this, l);
  const double end = ev.b != 0
                         ? faults_->plan().station_outages[ev.b - 1].end
                         : sim_.now() + faults_->draw_outage_duration();
  sim::Event up;
  up.kind = sim::EventKind::kStationUp;
  up.a = l;
  up.b = ev.b;
  sim_.schedule(end, up);
}

void Network::apply_station_up(const sim::Event& ev) {
  const LandmarkId l = ev.a;
  faults_->mark_station_up(l);
  ++counters_.station_recoveries;
  outage_recovery_pending_[l] = sim_.now();
  router_.on_station_recovery(*this, l);
  if (ev.b == 0 && faults_->plan().station_outage_rate_per_day > 0.0) {
    const double t = sim_.now() + faults_->draw_outage_gap();
    if (t > trace_end_) return;
    sim::Event ev2;
    ev2.kind = sim::EventKind::kStationDown;
    ev2.a = l;
    sim_.schedule(t, ev2);
  }
}

std::uint32_t Network::ledger_slot(PacketId pid) const {
  if (pid >= ledger_index_.size()) return kNoLedgerSlot;
  return ledger_index_[pid];
}

void Network::ledger_erase(PacketId pid) {
  const std::uint32_t slot = ledger_slot(pid);
  if (slot == kNoLedgerSlot) return;
  ledger_index_[pid] = kNoLedgerSlot;
  const auto last = static_cast<std::uint32_t>(ledger_.size() - 1);
  if (slot != last) {
    ledger_[slot] = ledger_[last];
    ledger_index_[ledger_[slot].pid] = slot;
  }
  ledger_.pop_back();
}

bool Network::transfer_interrupted(PacketId pid) {
  if (!faults_.has_value() || !faults_->transfer_faults_enabled()) {
    return false;
  }
  const double now = sim_.now();
  const std::uint32_t slot = ledger_slot(pid);
  if (slot != kNoLedgerSlot && now < ledger_[slot].next_retry) {
    // Still backing off from the last mid-contact break.
    ++ctr().transfers_blocked_fault;
    return true;
  }
  if (faults_->draw_transfer_failure()) {
    ++counters_.transfers_interrupted;
    if (slot == kNoLedgerSlot) {
      if (ledger_index_.size() < packets_.size()) {
        ledger_index_.resize(packets_.size(), kNoLedgerSlot);
      }
      ledger_index_[pid] = static_cast<std::uint32_t>(ledger_.size());
      ledger_.push_back({pid, 1, now + faults_->retry_backoff(1)});
    } else {
      LedgerEntry& e = ledger_[slot];
      ++e.attempts;
      e.next_retry = now + faults_->retry_backoff(e.attempts);
    }
    return true;
  }
  if (slot != kNoLedgerSlot) {
    // The retry made it across: the interrupted transfer resumed.
    ++counters_.transfers_resumed;
    ledger_erase(pid);
  }
  return false;
}

void Network::note_station_activity(LandmarkId l) {
  if (!faults_.has_value()) return;
  double& pending = outage_recovery_pending_[l];
  if (pending < 0.0) return;
  counters_.outage_recovery_delays.push_back(sim_.now() - pending);
  pending = -1.0;
}

std::span<const NodeId> Network::nodes_at(LandmarkId l) const {
  DTN_ASSERT(l < stations_.size());
  return stations_[l].present;
}

LandmarkId Network::location(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].location;
}

LandmarkId Network::previous_landmark(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].previous;
}

std::span<const trace::Visit> Network::history(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].history;
}

Packet& Network::packet(PacketId pid) {
  DTN_ASSERT(pid < packets_.size());
  return packets_[pid];
}

const Packet& Network::packet(PacketId pid) const {
  DTN_ASSERT(pid < packets_.size());
  return packets_[pid];
}

std::span<const PacketId> Network::origin_packets(LandmarkId l) const {
  DTN_ASSERT(l < stations_.size());
  return stations_[l].origin;
}

std::span<const PacketId> Network::station_packets(LandmarkId l) const {
  DTN_ASSERT(l < stations_.size());
  return stations_[l].storage.packets();
}

std::span<const PacketId> Network::node_packets(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].buffer.packets();
}

const Buffer& Network::node_buffer(NodeId node) const {
  DTN_ASSERT(node < nodes_.size());
  return nodes_[node].buffer;
}

void Network::detach_from_holder(Packet& p) {
  switch (p.state) {
    case PacketState::kAtOrigin: {
      auto& origin = stations_[p.holder].origin;
      const auto it = std::find(origin.begin(), origin.end(), p.id);
      DTN_ASSERT(it != origin.end());
      origin.erase(it);
      break;
    }
    case PacketState::kAtStation:
      stations_[p.holder].storage.remove(p.id, p.size_kb);
      break;
    case PacketState::kOnNode:
      nodes_[p.holder].buffer.remove(p.id, p.size_kb);
      break;
    default:
      DTN_ASSERT(false);
  }
}

bool Network::drop_if_expired(PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(!is_terminal(p.state));
  if (!p.expired(now_())) return false;
  detach_from_holder(p);
  ledger_erase(pid);
  if (logical_delivered_[p.logical] != 0) {
    p.state = PacketState::kObsoleteCopy;
  } else {
    p.state = PacketState::kDroppedTtl;
    ++ctr().dropped_ttl;
  }
  return true;
}

bool Network::pickup_from_origin(NodeId node, PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(p.state == PacketState::kAtOrigin);
  DTN_ASSERT(nodes_[node].location == p.holder);
  if (drop_if_expired(pid)) return false;
  if (node_down(node)) {
    ++ctr().transfers_blocked_fault;
    return false;
  }
  if (transfer_interrupted(pid)) return false;
  if (p.dst_node == node) {
    // Picked up by its destination: delivered on the spot.
    detach_from_holder(p);
    ++p.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    return true;
  }
  auto& origin = stations_[p.holder].origin;
  if (!nodes_[node].buffer.add(pid, p.size_kb)) {
    ++ctr().refused_buffer;
    return false;
  }
  const auto it = std::find(origin.begin(), origin.end(), pid);
  DTN_ASSERT(it != origin.end());
  origin.erase(it);
  p.state = PacketState::kOnNode;
  p.holder = node;
  ++p.hops;
  ++ctr().packet_forwards;
  return true;
}

bool Network::station_to_node(LandmarkId l, NodeId node, PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(p.state == PacketState::kAtStation);
  DTN_ASSERT(p.holder == l);
  DTN_ASSERT(nodes_[node].location == l);
  if (drop_if_expired(pid)) return false;
  if (station_down(l) || node_down(node)) {
    ++ctr().transfers_blocked_fault;
    return false;
  }
  if (transfer_interrupted(pid)) return false;
  if (p.dst_node == node) {
    detach_from_holder(p);
    ++p.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    note_station_activity(l);
    return true;
  }
  if (!nodes_[node].buffer.add(pid, p.size_kb)) {
    ++ctr().refused_buffer;
    return false;
  }
  stations_[l].storage.remove(pid, p.size_kb);
  p.state = PacketState::kOnNode;
  p.holder = node;
  ++p.hops;
  ++ctr().packet_forwards;
  note_station_activity(l);
  return true;
}

bool Network::node_to_station(NodeId node, PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(p.state == PacketState::kOnNode);
  DTN_ASSERT(p.holder == node);
  const LandmarkId l = nodes_[node].location;
  DTN_ASSERT(l != kNoLandmark);
  if (drop_if_expired(pid)) return false;
  if (node_down(node) || station_down(l)) {
    ++ctr().transfers_blocked_fault;
    return false;
  }
  if (transfer_interrupted(pid)) return false;
  nodes_[node].buffer.remove(pid, p.size_kb);
  ++p.hops;
  ++ctr().packet_forwards;
  if (p.dst == l && p.dst_node == trace::kNoNode) {
    deliver(pid);
    note_station_activity(l);
    return true;
  }
  if (p.dst_node != trace::kNoNode &&
      nodes_[p.dst_node].location == l) {
    // The destination node is connected right here: hand over.
    deliver(pid);
    note_station_activity(l);
    return true;
  }
  const bool ok = stations_[l].storage.add(pid, p.size_kb);
  DTN_ASSERT(ok);  // stations are unbounded
  p.state = PacketState::kAtStation;
  p.holder = l;
  p.station_path.push_back(l);
  note_station_activity(l);
  return true;
}

bool Network::node_to_node(NodeId from, NodeId to, PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(p.state == PacketState::kOnNode);
  DTN_ASSERT(p.holder == from);
  DTN_ASSERT(from != to);
  DTN_ASSERT(nodes_[from].location != kNoLandmark);
  DTN_ASSERT(nodes_[from].location == nodes_[to].location);
  if (drop_if_expired(pid)) return false;
  if (node_down(from) || node_down(to)) {
    ++ctr().transfers_blocked_fault;
    return false;
  }
  if (transfer_interrupted(pid)) return false;
  if (p.dst_node == to) {
    detach_from_holder(p);
    ++p.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    return true;
  }
  if (!nodes_[to].buffer.add(pid, p.size_kb)) {
    ++ctr().refused_buffer;
    return false;
  }
  nodes_[from].buffer.remove(pid, p.size_kb);
  p.holder = to;
  ++p.hops;
  ++ctr().packet_forwards;
  return true;
}

PacketId Network::replicate_node_to_node(NodeId from, NodeId to,
                                         PacketId pid) {
  // Replication grows the packet table mid-run; only the serial engine
  // may do that (shard_safe routers are single-copy by contract).
  DTN_ASSERT(!sharded_run_);
  const Packet& src = packet(pid);
  DTN_ASSERT(src.state == PacketState::kOnNode);
  DTN_ASSERT(src.holder == from);
  DTN_ASSERT(from != to);
  DTN_ASSERT(nodes_[from].location != kNoLandmark);
  DTN_ASSERT(nodes_[from].location == nodes_[to].location);
  if (logical_delivered_[src.logical] != 0) return kNoPacket;
  if (drop_if_expired(pid)) return kNoPacket;
  if (node_down(from) || node_down(to)) {
    ++ctr().transfers_blocked_fault;
    return kNoPacket;
  }
  if (transfer_interrupted(pid)) return kNoPacket;
  if (!nodes_[to].buffer.has_space(src.size_kb)) {
    ++ctr().refused_buffer;
    return kNoPacket;
  }
  Packet copy = src;  // inherits deadline, routing state, path record
  copy.id = static_cast<PacketId>(packets_.size());
  copy.state = PacketState::kOnNode;
  copy.holder = to;
  ++copy.hops;
  const bool ok = nodes_[to].buffer.add(copy.id, copy.size_kb);
  DTN_ASSERT(ok);
  packets_.push_back(std::move(copy));
  logical_delivered_.push_back(0);  // indexed per packet row; unused for copies
  ++ctr().packet_forwards;
  ++counters_.replications;
  return packets_.back().id;
}

bool Network::node_holds_logical(NodeId node, PacketId logical) const {
  DTN_ASSERT(node < nodes_.size());
  for (const PacketId pid : nodes_[node].buffer.packets()) {
    if (packets_[pid].logical == logical) return true;
  }
  return false;
}

bool Network::logical_delivered(PacketId logical) const {
  DTN_ASSERT(logical < logical_delivered_.size());
  return logical_delivered_[logical] != 0;
}

void Network::account_control(double entries) {
  DTN_ASSERT(entries >= 0.0);
  ctr().control_entries += entries;
}

void Network::validate_invariants() const {
  std::uint64_t active = 0;
  for (const Packet& p : packets_) {
    if (is_terminal(p.state)) continue;
    ++active;
    switch (p.state) {
      case PacketState::kAtOrigin: {
        const auto& origin = stations_[p.holder].origin;
        DTN_ASSERT(std::find(origin.begin(), origin.end(), p.id) !=
                   origin.end());
        break;
      }
      case PacketState::kAtStation:
        DTN_ASSERT(stations_[p.holder].storage.contains(p.id));
        break;
      case PacketState::kOnNode:
        DTN_ASSERT(nodes_[p.holder].buffer.contains(p.id));
        break;
      default:
        DTN_ASSERT(false);
    }
  }
  // Every buffered id points back to a packet naming that buffer.
  std::uint64_t buffered = 0;
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (const PacketId pid : nodes_[n].buffer.packets()) {
      DTN_ASSERT(packets_[pid].state == PacketState::kOnNode);
      DTN_ASSERT(packets_[pid].holder == n);
      ++buffered;
    }
  }
  for (std::size_t l = 0; l < stations_.size(); ++l) {
    for (const PacketId pid : stations_[l].storage.packets()) {
      DTN_ASSERT(packets_[pid].state == PacketState::kAtStation);
      DTN_ASSERT(packets_[pid].holder == l);
      ++buffered;
    }
    for (const PacketId pid : stations_[l].origin) {
      DTN_ASSERT(packets_[pid].state == PacketState::kAtOrigin);
      DTN_ASSERT(packets_[pid].holder == l);
      ++buffered;
    }
  }
  DTN_ASSERT(buffered == active);
  // Terminal accounting: originals are generated; every delivered
  // logical was counted exactly once.
  DTN_ASSERT(counters_.delivered == counters_.delivery_delays.size());
  DTN_ASSERT(counters_.delivered <= counters_.generated);
  // The auditor's checks (heap property, present-set index, byte
  // accounting, router state) are part of the contract too.
  sim::AuditReport report;
  audit(report);
  if (!report.ok()) {
    std::fprintf(stderr,
                 "Network::validate_invariants: %zu violation(s):\n%s",
                 report.failures().size(), report.to_string().c_str());
    DTN_ASSERT(report.ok());
  }
}

void Network::audit(sim::AuditReport& report) const {
  report.set_context("event_queue.heap");
  sim_.queue().audit(report);
  report.set_context("network.present_sets");
  audit_present_sets(report);
  report.set_context("network.buffer_accounting");
  audit_buffer_accounting(report);
  report.set_context("router.state");
  router_.audit(*this, report);
  report.set_context("network.fault_state");
  audit_fault_state(report);
}

void Network::audit_fault_state(sim::AuditReport& report) const {
  // Ledger <-> index bijection: every indexed packet names a live slot
  // that points back at it, and every slot is indexed exactly once.
  std::size_t indexed = 0;
  for (std::size_t pid = 0; pid < ledger_index_.size(); ++pid) {
    const std::uint32_t slot = ledger_index_[pid];
    if (slot == kNoLedgerSlot) continue;
    ++indexed;
    if (slot >= ledger_.size()) {
      report.fail("ledger_index_[" + std::to_string(pid) +
                  "] points past the ledger (" + std::to_string(slot) + ")");
      continue;
    }
    if (ledger_[slot].pid != pid) {
      report.fail("ledger slot " + std::to_string(slot) + " holds packet " +
                  std::to_string(ledger_[slot].pid) + " but is indexed by " +
                  std::to_string(pid));
    }
  }
  if (indexed != ledger_.size()) {
    report.fail("ledger has " + std::to_string(ledger_.size()) +
                " entries but " + std::to_string(indexed) +
                " index slots point into it");
  }
  for (const LedgerEntry& e : ledger_) {
    if (e.pid >= packets_.size()) {
      report.fail("ledger entry names out-of-range packet " +
                  std::to_string(e.pid));
      continue;
    }
    if (is_terminal(packets_[e.pid].state)) {
      report.fail("ledger entry for packet " + std::to_string(e.pid) +
                  " outlived the packet (terminal state)");
    }
    if (e.attempts == 0) {
      report.fail("ledger entry for packet " + std::to_string(e.pid) +
                  " has zero attempts");
    }
  }
  // Fault-loss counters must match a recount over the packet table.
  std::uint64_t lost = 0;
  std::uint64_t lost_kb = 0;
  for (const Packet& p : packets_) {
    if (p.state != PacketState::kLostFault) continue;
    ++lost;
    lost_kb += p.size_kb;
  }
  if (lost != counters_.packets_lost_fault) {
    report.fail("packets_lost_fault counter " +
                std::to_string(counters_.packets_lost_fault) +
                " but packet table holds " + std::to_string(lost) +
                " fault-lost packets");
  }
  if (lost_kb != counters_.kb_lost_fault) {
    report.fail("kb_lost_fault counter " +
                std::to_string(counters_.kb_lost_fault) +
                " but fault-lost packets sum to " + std::to_string(lost_kb) +
                " kB");
  }
  if (faults_.has_value()) {
    faults_->audit(report);
    // A pending recovery-delay measurement implies the station is up
    // (it is cleared the instant a new outage starts).
    for (std::size_t l = 0; l < outage_recovery_pending_.size(); ++l) {
      if (outage_recovery_pending_[l] >= 0.0 &&
          faults_->station_down(static_cast<LandmarkId>(l))) {
        report.fail("station " + std::to_string(l) +
                    " is down but has a pending recovery measurement");
      }
    }
  } else {
    if (!ledger_.empty()) {
      report.fail("in-flight transfer ledger nonempty without a fault plan");
    }
    if (counters_.packets_lost_fault != 0) {
      report.fail("fault-loss counter nonzero without a fault plan");
    }
  }
}

void Network::audit_present_sets(sim::AuditReport& report) const {
  // Direction 1: every present-list entry names a node whose location
  // and indexed position agree with its slot.
  std::vector<std::uint8_t> listed(nodes_.size(), 0);
  for (std::size_t l = 0; l < stations_.size(); ++l) {
    const auto& present = stations_[l].present;
    for (std::size_t i = 0; i < present.size(); ++i) {
      const NodeId n = present[i];
      if (n >= nodes_.size()) {
        report.fail("station " + std::to_string(l) +
                    " lists an out-of-range node");
        continue;
      }
      if (listed[n] != 0) {
        report.fail("node " + std::to_string(n) +
                    " appears in more than one present slot");
      }
      listed[n] = 1;
      if (nodes_[n].location != static_cast<LandmarkId>(l)) {
        report.fail("node " + std::to_string(n) + " listed present at " +
                    std::to_string(l) + " but located at " +
                    std::to_string(nodes_[n].location));
      }
      if (present_pos_[n] != i) {
        report.fail("node " + std::to_string(n) + " at present slot " +
                    std::to_string(i) + " of station " + std::to_string(l) +
                    " but present_pos_ says " +
                    std::to_string(present_pos_[n]));
      }
    }
  }
  // Direction 2: every node that claims a location is listed there.
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (nodes_[n].location == kNoLandmark) continue;
    if (listed[n] == 0) {
      report.fail("node " + std::to_string(n) + " located at " +
                  std::to_string(nodes_[n].location) +
                  " but missing from that station's present list");
    }
  }
}

void Network::audit_buffer_accounting(sim::AuditReport& report) const {
  // Re-derive each buffer's byte usage from the packets it holds; the
  // incrementally maintained used_kb must match exactly, every held id
  // must be unique across all buffers, and bounded buffers must respect
  // their capacity.
  std::vector<std::uint8_t> held(packets_.size(), 0);
  const auto audit_one = [&](const Buffer& buf, const std::string& what) {
    std::uint64_t bytes = 0;
    for (const PacketId pid : buf.packets()) {
      if (pid >= packets_.size()) {
        report.fail(what + " holds an out-of-range packet id");
        continue;
      }
      if (held[pid] != 0) {
        report.fail("packet " + std::to_string(pid) +
                    " held by more than one buffer (" + what + ")");
      }
      held[pid] = 1;
      bytes += packets_[pid].size_kb;
    }
    if (bytes != buf.used_kb()) {
      report.fail(what + ": used_kb " + std::to_string(buf.used_kb()) +
                  " but held packets sum to " + std::to_string(bytes) +
                  " kB");
    }
    if (!buf.unbounded() && buf.used_kb() > buf.capacity_kb()) {
      report.fail(what + ": used_kb " + std::to_string(buf.used_kb()) +
                  " exceeds capacity " + std::to_string(buf.capacity_kb()));
    }
  };
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    audit_one(nodes_[n].buffer, "node " + std::to_string(n) + " buffer");
  }
  for (std::size_t l = 0; l < stations_.size(); ++l) {
    audit_one(stations_[l].storage,
              "station " + std::to_string(l) + " storage");
  }
}

bool Network::debug_corrupt_for_test(Corruption kind, int delta) {
  switch (kind) {
    case Corruption::kPresentPos:
      for (auto& station : stations_) {
        if (station.present.empty()) continue;
        // The bug class this simulates: a departure renumbered the
        // shifted suffix wrong.
        present_pos_[station.present.front()] = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(present_pos_[station.present.front()]) +
            delta);
        return true;
      }
      return false;
    case Corruption::kBufferBytes:
      if (nodes_.empty()) return false;
      // The bug class this simulates: a transfer updated the id list
      // but accounted the wrong size.
      nodes_.front().buffer.debug_corrupt_used_kb_for_test(delta);
      return true;
    case Corruption::kLedgerIndex:
      if (ledger_.empty()) return false;
      // The bug class this simulates: a swap-erase renumbered the moved
      // entry's back-pointer wrong.
      ledger_index_[ledger_.front().pid] = static_cast<std::uint32_t>(
          static_cast<std::int64_t>(ledger_index_[ledger_.front().pid]) +
          delta);
      return true;
    case Corruption::kFaultLossCounter:
      // The bug class this simulates: a crash flush double-counted (or
      // missed) a lost packet.
      counters_.packets_lost_fault = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(counters_.packets_lost_fault) + delta);
      return true;
  }
  return false;
}

PacketId Network::generate_packet(LandmarkId src, LandmarkId dst, double ttl,
                                  NodeId dst_node, PacketId slot) {
  Packet p;
  if (slot == kNoPacket) {
    p.id = static_cast<PacketId>(packets_.size());
  } else {
    // Pre-assigned id (sharded runs): the slot was allocated before the
    // replay started, so concurrent shards never touch the table shape.
    DTN_ASSERT(slot < packets_.size());
    DTN_ASSERT(packets_[slot].state == PacketState::kUnborn);
    p.id = slot;
  }
  p.logical = p.id;
  p.src = src;
  p.dst = dst;
  p.dst_node = dst_node;
  p.created = now_();
  p.ttl = ttl;
  p.size_kb = cfg_.packet_size_kb;
  p.holder = src;
  if (router_.uses_stations()) {
    p.state = PacketState::kAtStation;
    p.station_path.push_back(src);
    const bool ok = stations_[src].storage.add(p.id, p.size_kb);
    DTN_ASSERT(ok);
  } else {
    p.state = PacketState::kAtOrigin;
    stations_[src].origin.push_back(p.id);
  }
  const PacketId pid = p.id;
  if (slot == kNoPacket) {
    packets_.push_back(std::move(p));
    logical_delivered_.push_back(0);
  } else {
    packets_[slot] = std::move(p);
  }
  ++ctr().generated;
  // run_sharded rejects node-addressed workloads, so this global flag
  // is only ever written on the serial path.
  if (dst_node != trace::kNoNode) any_node_addressed_ = true;
  // A node-addressed packet whose destination node is connected at the
  // source right now is handed over on the spot.
  Packet& placed = packets_[pid];
  if (placed.dst_node != trace::kNoNode &&
      placed.dst_node < nodes_.size() &&
      nodes_[placed.dst_node].location == src &&
      !node_down(placed.dst_node) &&
      (placed.state != PacketState::kAtStation || !station_down(src))) {
    if (placed.state == PacketState::kAtStation) {
      stations_[src].storage.remove(pid, placed.size_kb);
    } else {
      // The packet was appended to the origin queue just above, so it
      // is the tail: removing it is a pop, no scan or shift.
      auto& origin = stations_[src].origin;
      DTN_ASSERT(!origin.empty() && origin.back() == pid);
      origin.pop_back();
    }
    ++placed.hops;
    ++ctr().packet_forwards;
    deliver(pid);
    return pid;
  }
  router_.on_packet_generated(*this, pid);
  return pid;
}

void Network::deliver(PacketId pid) {
  Packet& p = packet(pid);
  DTN_ASSERT(!is_terminal(p.state));
  ledger_erase(pid);
  p.delivered_at = now_();
  if (logical_delivered_[p.logical] != 0) {
    // Another copy got there first: retire silently.
    p.state = PacketState::kObsoleteCopy;
    return;
  }
  logical_delivered_[p.logical] = 1;
  p.state = PacketState::kDelivered;
  const double delay = p.delivered_at - p.created;
  if (sharded_run_) {
    // Per-shard delivery log, keyed by the delivering event so the
    // merge restores the serial append order bit-for-bit.
    ShardContext& ctx = contexts_[sim::current_shard()];
    ++ctx.counters.delivered;
    ctx.records.push_back({ctx.now, ctx.cur_seq, delay, p.hops});
  } else {
    ++counters_.delivered;
    counters_.total_delay += delay;
    counters_.delivery_delays.push_back(delay);
    counters_.delivery_hops.push_back(p.hops);
  }
}

void Network::deliver_node_addressed(NodeId arriving, LandmarkId l) {
  const double now = now_();
  // Station packets addressed to the arriving node (frozen while the
  // station is in an injected outage).
  if (!station_down(l)) {
    std::vector<PacketId> ready;
    for (const PacketId pid : stations_[l].storage.packets()) {
      if (packets_[pid].dst_node == arriving) ready.push_back(pid);
    }
    for (const PacketId pid : ready) {
      Packet& p = packets_[pid];
      if (p.expired(now)) continue;
      stations_[l].storage.remove(pid, p.size_kb);
      ++p.hops;
      ++ctr().packet_forwards;
      deliver(pid);
    }
  }
  // Packets carried by co-located nodes and addressed to the arriving
  // node, plus packets carried by the arriving node addressed to a
  // co-located node.  One upfront pass over the arriving node's buffer
  // decides whether the second direction can exist at all; the common
  // case (the carrier holds no node-addressed packets) then scans every
  // peer's buffer exactly once instead of re-walking the arriving
  // node's buffer per peer.
  std::size_t arriving_node_addressed = 0;
  for (const PacketId pid : nodes_[arriving].buffer.packets()) {
    if (packets_[pid].dst_node != trace::kNoNode) ++arriving_node_addressed;
  }
  std::vector<PacketId> handover;
  for (const NodeId other : stations_[l].present) {
    if (node_down(other)) continue;
    for (const NodeId holder : {other, arriving}) {
      const NodeId target = holder == arriving ? other : arriving;
      if (holder == target) continue;
      // Skip re-walking the arriving node's buffer when it carries
      // nothing node-addressed.  (When it does, the exact re-walk is
      // kept: buffer removal swap-reorders the remaining packets, and
      // the per-peer walk order is part of the deterministic-replay
      // contract.)
      if (holder == arriving && arriving_node_addressed == 0) continue;
      handover.clear();
      for (const PacketId pid : nodes_[holder].buffer.packets()) {
        if (packets_[pid].dst_node == target) handover.push_back(pid);
      }
      for (const PacketId pid : handover) {
        Packet& p = packets_[pid];
        if (p.expired(now)) continue;
        nodes_[holder].buffer.remove(pid, p.size_kb);
        ++p.hops;
        ++ctr().packet_forwards;
        deliver(pid);
      }
    }
  }
}

void Network::drop_expired() {
  const double now = now_();
  for (Packet& p : packets_) {
    if (is_terminal(p.state)) continue;
    const bool obsolete = logical_delivered_[p.logical] != 0;
    if (!obsolete && !p.expired(now)) continue;
    switch (p.state) {
      case PacketState::kAtOrigin: {
        auto& origin = stations_[p.holder].origin;
        const auto it = std::find(origin.begin(), origin.end(), p.id);
        DTN_ASSERT(it != origin.end());
        origin.erase(it);
        break;
      }
      case PacketState::kAtStation:
        stations_[p.holder].storage.remove(p.id, p.size_kb);
        break;
      case PacketState::kOnNode:
        nodes_[p.holder].buffer.remove(p.id, p.size_kb);
        break;
      default:
        break;
    }
    ledger_erase(p.id);
    if (obsolete) {
      p.state = PacketState::kObsoleteCopy;
    } else {
      p.state = PacketState::kDroppedTtl;
      ++ctr().dropped_ttl;
    }
  }
}

void Network::handle_arrival(const trace::Visit& visit) {
  NodeState& node = nodes_[visit.node];
  StationState& station = stations_[visit.landmark];
  DTN_ASSERT(node.location == kNoLandmark);
  node.location = visit.landmark;
  present_pos_[visit.node] = static_cast<std::uint32_t>(station.present.size());
  station.present.push_back(visit.node);

  // Automatic delivery: every router hands over packets destined to the
  // landmark the carrier just reached (DTN-FLOW step 5; for baselines
  // this *is* delivery — the carrier reached the destination area).
  // A crashed carrier delivers nothing; for station architectures the
  // landmark's station is the sink, so an outage defers delivery too.
  // `scratch_` is a reused member: this runs once per trace event, and
  // a fresh vector here would mean one allocation per arrival.
  const bool arriving_up = !node_down(visit.node);
  const bool sink_up =
      !router_.uses_stations() || !station_down(visit.landmark);
  if (arriving_up && sink_up) {
    std::vector<PacketId>& arrived = arrival_scratch();
    arrived.clear();
    for (PacketId pid : node.buffer.packets()) {
      if (packets_[pid].dst == visit.landmark &&
          packets_[pid].dst_node == trace::kNoNode) {
        arrived.push_back(pid);
      }
    }
    for (PacketId pid : arrived) {
      Packet& p = packets_[pid];
      if (p.expired(now_())) continue;  // swept later
      node.buffer.remove(pid, p.size_kb);
      ++p.hops;
      ++ctr().packet_forwards;
      deliver(pid);
    }
  }

  // Node-addressed packets (§IV-E.4) waiting anywhere at this landmark
  // for the arriving node, or carried by it toward a co-located node.
  // No such packet has ever been generated in the standard workload, so
  // the whole handover pass is skipped there.
  if (any_node_addressed_ && arriving_up) {
    deliver_node_addressed(visit.node, visit.landmark);
  }

  router_.on_arrival(*this, visit.node, visit.landmark);

  // Node-node contacts with everyone already present (crashed radios,
  // either side, make no contact).
  if (arriving_up) {
    for (NodeId other : station.present) {
      if (other == visit.node || node_down(other)) continue;
      router_.on_contact(*this, visit.node, other, visit.landmark);
    }
  }
}

void Network::handle_departure(const trace::Visit& visit) {
  NodeState& node = nodes_[visit.node];
  StationState& station = stations_[visit.landmark];
  DTN_ASSERT(node.location == visit.landmark);

  router_.on_departure(*this, visit.node, visit.landmark);

  // Indexed removal: `present_pos_` names the slot directly, so no scan.
  // The erase itself stays order-preserving (a swap-remove would reorder
  // the contacts routers observe); only the shifted suffix's positions
  // need renumbering.
  const std::uint32_t pos = present_pos_[visit.node];
  DTN_ASSERT(pos < station.present.size() &&
             station.present[pos] == visit.node);
  station.present.erase(station.present.begin() + pos);
  for (std::size_t i = pos; i < station.present.size(); ++i) {
    present_pos_[station.present[i]] = static_cast<std::uint32_t>(i);
  }
  node.location = kNoLandmark;
  node.previous = visit.landmark;
  node.history.push_back(visit);
}

}  // namespace dtn::net
