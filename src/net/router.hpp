// Router interface.
//
// A router owns all routing state (predictors, probability tables,
// distance vectors) and reacts to network events; the `Network` owns the
// ground truth (who is where, who holds which packet) and performs the
// actual transfers so that buffer limits, delivery and cost accounting
// are uniform across every algorithm.
#pragma once

#include <string>

#include "net/packet.hpp"

namespace dtn::sim {
class AuditReport;
}

namespace dtn::persist {
class Writer;
class Reader;
}  // namespace dtn::persist

namespace dtn::net {

class Network;

class Router {
 public:
  virtual ~Router() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True for architectures with landmark central stations (DTN-FLOW):
  /// generated packets enter the station buffer and stations relay.
  /// False for node-only baselines: generated packets wait in a passive
  /// origin queue until a carrier picks them up.
  [[nodiscard]] virtual bool uses_stations() const { return false; }

  /// True when every event handler touches only state owned by the
  /// landmark the event fires at (plus the nodes present there), so the
  /// sharded engine may run events for disjoint landmark sets
  /// concurrently between boundary epochs (docs/parallel-engine.md).
  /// Routers that mutate remote-landmark or global state mid-event must
  /// return false; `Network::run_sharded` refuses them.
  [[nodiscard]] virtual bool shard_safe() const { return false; }

  /// Sharded runs call this before the first event so routers can size
  /// per-shard accumulator slots (diagnostics, scratch buffers).  Serial
  /// runs never call it; `num_shards >= 1`.
  virtual void prepare_shards(std::size_t num_shards) { (void)num_shards; }

  /// Called once before the first event.
  virtual void on_init(Network& net) { (void)net; }

  /// `node` associated with landmark `l` (after presence update and
  /// automatic delivery of packets destined to `l`).
  virtual void on_arrival(Network& net, NodeId node, LandmarkId l) {
    (void)net; (void)node; (void)l;
  }

  /// `node` is about to leave `l` (still present).
  virtual void on_departure(Network& net, NodeId node, LandmarkId l) {
    (void)net; (void)node; (void)l;
  }

  /// `count` consecutive same-(time, l) departures are about to be
  /// processed as one batch: on_departure fires for each node exactly
  /// as in unbatched replay, but a router that maintains a
  /// presence-derived cache epoch may advance it here by `count` at
  /// once (keeping serialized epoch values identical to unbatched
  /// replay) and skip the per-departure bumps.  An overriding router
  /// must not consult presence-derived caches from on_departure — the
  /// prepaid epoch marks them fresh while the present set is still
  /// shrinking.  Default: no-op (per-departure hooks see no change).
  virtual void on_departure_batch_begin(Network& net, LandmarkId l,
                                        std::size_t count) {
    (void)net; (void)l; (void)count;
  }

  /// `arriving` just arrived at `l` where `present` already is.  Called
  /// once per (arriving, present) pair; routers handle both directions.
  virtual void on_contact(Network& net, NodeId arriving, NodeId present,
                          LandmarkId l) {
    (void)net; (void)arriving; (void)present; (void)l;
  }

  /// A packet was generated (already placed at origin/station of its
  /// source landmark).
  virtual void on_packet_generated(Network& net, PacketId pid) {
    (void)net; (void)pid;
  }

  /// Periodic tick at each measurement time-unit boundary (§IV-C.1).
  virtual void on_time_unit(Network& net, std::size_t unit_index) {
    (void)net; (void)unit_index;
  }

  // -- fault hooks (fired only when a FaultPlan is attached; see
  //    sim/fault_injector.hpp and docs/fault-injection.md) --------------
  /// `node` crashed (radio dead, surviving buffer frozen until reboot).
  /// Fired after the engine flushed the lost packets and marked the
  /// node down.  Routers drop in-flight control state the node carried.
  virtual void on_node_crash(Network& net, NodeId node) {
    (void)net; (void)node;
  }
  /// A crashed node rebooted (radio live again, learned state intact —
  /// the device restarted, the protocol history did not reset).
  virtual void on_node_reboot(Network& net, NodeId node) {
    (void)net; (void)node;
  }
  /// Landmark `l`'s station went down: storage is frozen (durable, not
  /// wiped) and all station transfers at `l` are refused until recovery.
  virtual void on_station_outage(Network& net, LandmarkId l) {
    (void)net; (void)l;
  }
  virtual void on_station_recovery(Network& net, LandmarkId l) {
    (void)net; (void)l;
  }

  // -- checkpointing (src/persist/, docs/checkpointing.md) --------------
  /// True when the router implements checkpoint_save/checkpoint_load.
  /// Checkpointed runs require it; `Network::run` with a
  /// CheckpointManager refuses routers that return false.
  [[nodiscard]] virtual bool checkpointable() const { return false; }
  /// Serialize all routing state into the open "router" section.
  virtual void checkpoint_save(persist::Writer& w) const { (void)w; }
  /// Restore state saved by checkpoint_save.  Called *instead of*
  /// on_init on resume (implementations typically call on_init
  /// themselves to size their containers, then overwrite).  Throws
  /// persist::FormatError on malformed images.
  virtual void checkpoint_load(persist::Reader& r, Network& net) {
    (void)r; (void)net;
  }

  /// Invariant audit hook (debug tooling, see invariant_auditor.hpp):
  /// re-derive any incrementally maintained router state from scratch
  /// and report disagreements.  Called by Network::audit and by the
  /// periodic invariant auditor when enabled.  Default: stateless
  /// routers have nothing to audit.
  virtual void audit(const Network& net, sim::AuditReport& report) const {
    (void)net; (void)report;
  }
};

}  // namespace dtn::net
