// PROPHET adapted to landmark destinations (§II-A / §V-A.1).
//
// Each node keeps a delivery predictability P(node, landmark), bumped on
// every visit with the standard PROPHET reinforcement
//     P <- P + (1 - P) * P_init
// and aged multiplicatively with elapsed time
//     P <- P * gamma^(dt / aging_unit).
// Transitivity is not applicable: landmarks do not encounter each other.
// A packet is forwarded to an encountered node with a strictly higher
// predictability for its destination landmark.
#pragma once

#include "routing/utility_router.hpp"
#include "util/flat_matrix.hpp"

namespace dtn::routing {

struct ProphetConfig {
  double p_init = 0.75;
  double gamma = 0.98;
  double aging_unit = trace::kHour;
};

class ProphetRouter final : public UtilityRouter {
 public:
  explicit ProphetRouter(ProphetConfig config = {});

  [[nodiscard]] std::string name() const override { return "PROPHET"; }

  /// Aged delivery predictability of `node` for landmark `l`.
  [[nodiscard]] double predictability(const Network& net, NodeId node,
                                      LandmarkId l) const;

 protected:
  void update_on_arrival(Network& net, NodeId node, LandmarkId l) override;
  [[nodiscard]] double utility(Network& net, NodeId node,
                               const Packet& p) override;

 private:
  ProphetConfig cfg_;
  FlatMatrix<double> p_;           // predictability at last touch
  FlatMatrix<double> touched_at_;  // time of last touch
  bool initialized_ = false;

  void ensure_init(const Network& net);
};

}  // namespace dtn::routing
