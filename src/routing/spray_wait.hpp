// Binary Spray-and-Wait (Spyropoulos et al.) adapted to landmark
// destinations.
//
// Not part of the paper's comparison — included as the standard bounded
// multi-copy reference between Direct (1 copy) and Epidemic (unbounded):
// each packet starts with L logical copies; a carrier holding t > 1
// tickets hands floor(t/2) to an encountered node that lacks the packet
// (binary spray); with one ticket it waits for the destination landmark.
#pragma once

#include <unordered_map>

#include "net/network.hpp"
#include "net/router.hpp"

namespace dtn::routing {

struct SprayWaitConfig {
  std::uint32_t initial_copies = 8;  ///< L
  bool binary = true;                ///< binary vs source spray
};

class SprayAndWaitRouter final : public net::Router {
 public:
  explicit SprayAndWaitRouter(SprayWaitConfig config = {});

  [[nodiscard]] std::string name() const override { return "SprayWait"; }

  void on_arrival(net::Network& net, net::NodeId node,
                  net::LandmarkId l) override;
  void on_packet_generated(net::Network& net, net::PacketId pid) override;
  void on_contact(net::Network& net, net::NodeId arriving,
                  net::NodeId present, net::LandmarkId l) override;

  /// Remaining spray tickets of a carried copy (tests/diagnostics).
  [[nodiscard]] std::uint32_t tickets(net::PacketId pid) const;

 private:
  void spray_one_way(net::Network& net, net::NodeId from, net::NodeId to);

  SprayWaitConfig cfg_;
  std::unordered_map<net::PacketId, std::uint32_t> tickets_;
};

}  // namespace dtn::routing
