#include "routing/epidemic.hpp"

#include <vector>

namespace dtn::routing {

void EpidemicRouter::on_arrival(net::Network& net, net::NodeId node,
                                net::LandmarkId l) {
  // Any carrier is a good carrier: take everything waiting here.
  const auto origin = net.origin_packets(l);
  const std::vector<net::PacketId> waiting(origin.begin(), origin.end());
  for (const net::PacketId pid : waiting) {
    if (!net.node_buffer(node).has_space(net.packet(pid).size_kb)) break;
    (void)net.pickup_from_origin(node, pid);
  }
}

void EpidemicRouter::on_packet_generated(net::Network& net,
                                         net::PacketId pid) {
  const net::Packet& p = net.packet(pid);
  for (const net::NodeId n : net.nodes_at(p.src)) {
    if (net.pickup_from_origin(n, pid)) break;
  }
}

void EpidemicRouter::on_contact(net::Network& net, net::NodeId arriving,
                                net::NodeId present, net::LandmarkId l) {
  (void)l;
  // Summary-vector exchange: one entry per carried packet.
  net.account_control(
      static_cast<double>(net.node_packets(arriving).size()) +
      static_cast<double>(net.node_packets(present).size()));
  infect_one_way(net, arriving, present);
  infect_one_way(net, present, arriving);
}

void EpidemicRouter::infect_one_way(net::Network& net, net::NodeId from,
                                    net::NodeId to) {
  const auto carried = net.node_packets(from);
  const std::vector<net::PacketId> pids(carried.begin(), carried.end());
  for (const net::PacketId pid : pids) {
    const net::Packet& p = net.packet(pid);
    if (net.logical_delivered(p.logical)) continue;
    if (net.node_holds_logical(to, p.logical)) continue;
    // Received-id dedup (always false when the store's dedup is off):
    // skip peers that already carried this logical, before spending a
    // replication on an admission the store would refuse.
    if (net.node_buffer(to).seen_logical(p.logical)) continue;
    if (!net.node_buffer(to).has_space(p.size_kb)) continue;
    (void)net.replicate_node_to_node(from, to, pid);
  }
}

}  // namespace dtn::routing
