#include "routing/prophet.hpp"

#include <cmath>

namespace dtn::routing {

ProphetRouter::ProphetRouter(ProphetConfig config) : cfg_(config) {
  DTN_ASSERT(cfg_.p_init > 0.0 && cfg_.p_init <= 1.0);
  DTN_ASSERT(cfg_.gamma > 0.0 && cfg_.gamma < 1.0);
  DTN_ASSERT(cfg_.aging_unit > 0.0);
}

void ProphetRouter::ensure_init(const Network& net) {
  if (initialized_) return;
  p_ = FlatMatrix<double>(net.num_nodes(), net.num_landmarks(), 0.0);
  touched_at_ = FlatMatrix<double>(net.num_nodes(), net.num_landmarks(), 0.0);
  initialized_ = true;
}

double ProphetRouter::predictability(const Network& net, NodeId node,
                                     LandmarkId l) const {
  if (!initialized_) return 0.0;
  const double base = p_.at(node, l);
  if (base <= 0.0) return 0.0;
  const double dt = net.now() - touched_at_.at(node, l);
  return base * std::pow(cfg_.gamma, dt / cfg_.aging_unit);
}

void ProphetRouter::update_on_arrival(Network& net, NodeId node,
                                      LandmarkId l) {
  ensure_init(net);
  const double aged = predictability(net, node, l);
  p_.at(node, l) = aged + (1.0 - aged) * cfg_.p_init;
  touched_at_.at(node, l) = net.now();
}

double ProphetRouter::utility(Network& net, NodeId node, const Packet& p) {
  ensure_init(net);
  return predictability(net, node, p.dst);
}

}  // namespace dtn::routing
