// Factory for the paper's six compared routers, by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/router.hpp"

namespace dtn::routing {

/// Names accepted by `make_router`, in the paper's comparison order.
[[nodiscard]] std::vector<std::string> standard_router_names();

/// Construct a fresh router by name ("DTN-FLOW", "SimBet", "PROPHET",
/// "PGR", "GeoComm", "PER", "Direct").  Throws std::invalid_argument on
/// unknown names.
[[nodiscard]] std::unique_ptr<net::Router> make_router(const std::string& name);

}  // namespace dtn::routing
