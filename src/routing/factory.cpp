#include "routing/factory.hpp"

#include <stdexcept>

#include "core/dtn_flow_router.hpp"
#include "routing/direct.hpp"
#include "routing/epidemic.hpp"
#include "routing/geocomm.hpp"
#include "routing/pgr.hpp"
#include "routing/prophet.hpp"
#include "routing/per.hpp"
#include "routing/simbet.hpp"
#include "routing/spray_wait.hpp"

namespace dtn::routing {

std::vector<std::string> standard_router_names() {
  return {"DTN-FLOW", "SimBet", "PROPHET", "PGR", "GeoComm", "PER"};
}

std::unique_ptr<net::Router> make_router(const std::string& name) {
  if (name == "DTN-FLOW") return std::make_unique<core::DtnFlowRouter>();
  if (name == "SimBet") return std::make_unique<SimBetRouter>();
  if (name == "PROPHET") return std::make_unique<ProphetRouter>();
  if (name == "PGR") return std::make_unique<PgrRouter>();
  if (name == "GeoComm") return std::make_unique<GeoCommRouter>();
  if (name == "PER") return std::make_unique<PerRouter>();
  if (name == "Direct") return std::make_unique<DirectDeliveryRouter>();
  // Extra-paper multi-copy references (see routing/epidemic.hpp).
  if (name == "Epidemic") return std::make_unique<EpidemicRouter>();
  if (name == "SprayWait") return std::make_unique<SprayAndWaitRouter>();
  throw std::invalid_argument("unknown router: " + name);
}

}  // namespace dtn::routing
