// SimBet adapted to landmark destinations (§II-B / §V-A.1).
//
// Similarity of a node for a destination landmark is its visit
// frequency to that landmark; (betweenness-style) centrality is how many
// distinct landmarks the node connects, i.e. the number of distinct
// directed landmark pairs it has transited.  During a contact the
// pairwise-normalized SimBet utility decides the forwarding:
//
//   SimBetUtil(a | b, d) = alpha * sim_a/(sim_a + sim_b)
//                        + (1-alpha) * bet_a/(bet_a + bet_b)
//
// and a packet moves from a to b when SimBetUtil(b) > SimBetUtil(a).
#pragma once

#include "routing/utility_router.hpp"
#include "util/flat_matrix.hpp"

namespace dtn::routing {

struct SimBetConfig {
  double alpha = 0.5;  ///< weight of similarity vs centrality
};

class SimBetRouter final : public UtilityRouter {
 public:
  explicit SimBetRouter(SimBetConfig config = {});

  [[nodiscard]] std::string name() const override { return "SimBet"; }

  [[nodiscard]] double similarity(NodeId node, LandmarkId dst) const;
  [[nodiscard]] double centrality(NodeId node) const;

 protected:
  void update_on_arrival(Network& net, NodeId node, LandmarkId l) override;
  [[nodiscard]] double utility(Network& net, NodeId node,
                               const Packet& p) override;
  [[nodiscard]] bool should_forward(Network& net, NodeId from, NodeId to,
                                    const Packet& p) override;

 private:
  SimBetConfig cfg_;
  FlatMatrix<std::uint32_t> visits_;        // node x landmark visit counts
  std::vector<std::uint32_t> pair_count_;   // distinct transit pairs per node
  std::vector<LandmarkId> last_landmark_;   // previous landmark per node
  // Per-node set of seen (from,to) pairs, hashed compactly.
  std::vector<std::vector<std::uint64_t>> seen_pairs_;
  bool initialized_ = false;

  void ensure_init(const Network& net);
};

}  // namespace dtn::routing
