// PGR — geographical routing by predicted mobility routes
// (§II-C / §V-A.1).
//
// PGR predicts a node's *entire upcoming route* — a chain of landmarks
// obtained by repeatedly taking the most likely next landmark from the
// node's observed first-order transition counts — and forwards a packet
// to an encountered node whose predicted route reaches the destination
// landmark (sooner than the current carrier's, if both do).  Chaining
// per-step predictions multiplies their errors, which is why the paper
// measures PGR's lowest success rate and lowest forwarding cost.
#pragma once

#include <vector>

#include "routing/utility_router.hpp"

namespace dtn::routing {

struct PgrConfig {
  /// Predicted route length (chained most-likely transitions).
  std::size_t horizon = 6;
};

class PgrRouter final : public UtilityRouter {
 public:
  explicit PgrRouter(PgrConfig config = {});

  [[nodiscard]] std::string name() const override { return "PGR"; }

  /// The node's predicted route from its last known landmark (may be
  /// shorter than the horizon when prediction dries up; cycle-free).
  [[nodiscard]] std::vector<LandmarkId> predicted_route(NodeId node) const;

 protected:
  void update_on_arrival(Network& net, NodeId node, LandmarkId l) override;
  [[nodiscard]] double utility(Network& net, NodeId node,
                               const Packet& p) override;

 private:
  struct Row {
    std::vector<std::pair<LandmarkId, std::uint32_t>> successors;
    std::uint32_t total = 0;
  };
  struct NodeModel {
    std::vector<Row> rows;  // per landmark
    LandmarkId last = kNoLandmark;
  };

  [[nodiscard]] LandmarkId most_likely_next(const NodeModel& m,
                                            LandmarkId from) const;

  PgrConfig cfg_;
  std::vector<NodeModel> models_;
  bool initialized_ = false;

  void ensure_init(const Network& net);
};

}  // namespace dtn::routing
