#include "routing/pgr.hpp"

#include <algorithm>

namespace dtn::routing {

PgrRouter::PgrRouter(PgrConfig config) : cfg_(config) {
  DTN_ASSERT(cfg_.horizon >= 1);
}

void PgrRouter::ensure_init(const Network& net) {
  if (initialized_) return;
  models_.resize(net.num_nodes());
  for (auto& m : models_) m.rows.resize(net.num_landmarks());
  initialized_ = true;
}

void PgrRouter::update_on_arrival(Network& net, NodeId node, LandmarkId l) {
  ensure_init(net);
  NodeModel& m = models_[node];
  if (m.last != kNoLandmark && m.last != l) {
    Row& row = m.rows[m.last];
    auto it = std::find_if(row.successors.begin(), row.successors.end(),
                           [&](const auto& s) { return s.first == l; });
    if (it == row.successors.end()) {
      row.successors.emplace_back(l, 1);
    } else {
      ++it->second;
    }
    ++row.total;
  }
  m.last = l;
}

LandmarkId PgrRouter::most_likely_next(const NodeModel& m,
                                       LandmarkId from) const {
  const Row& row = m.rows[from];
  LandmarkId best = kNoLandmark;
  std::uint32_t best_count = 0;
  for (const auto& [to, count] : row.successors) {
    if (count > best_count || (count == best_count && best != kNoLandmark && to < best)) {
      best_count = count;
      best = to;
    }
  }
  return best;
}

std::vector<LandmarkId> PgrRouter::predicted_route(NodeId node) const {
  std::vector<LandmarkId> route;
  if (!initialized_) return route;
  const NodeModel& m = models_[node];
  LandmarkId cur = m.last;
  if (cur == kNoLandmark) return route;
  for (std::size_t step = 0; step < cfg_.horizon; ++step) {
    const LandmarkId next = most_likely_next(m, cur);
    if (next == kNoLandmark) break;
    if (std::find(route.begin(), route.end(), next) != route.end()) break;
    route.push_back(next);
    cur = next;
  }
  return route;
}

double PgrRouter::utility(Network& net, NodeId node, const Packet& p) {
  ensure_init(net);
  (void)net;
  const auto route = predicted_route(node);
  for (std::size_t i = 0; i < route.size(); ++i) {
    if (route[i] == p.dst) {
      // Earlier on the route is better; a hit at position i scores
      // 1/(i+1) so any hit beats any miss (miss = 0).
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

}  // namespace dtn::routing
