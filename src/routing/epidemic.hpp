// Epidemic routing (Vahdat & Becker) adapted to landmark destinations.
//
// Not part of the paper's comparison (DTN-FLOW is evaluated single-copy)
// — included as the classic delivery-probability *upper bound* at
// maximal cost: every contact replicates every packet the peer lacks,
// subject to buffer space.  Useful to calibrate how close DTN-FLOW gets
// to the flooding ceiling at a fraction of the forwarding cost.
#pragma once

#include "net/network.hpp"
#include "net/router.hpp"

namespace dtn::routing {

class EpidemicRouter final : public net::Router {
 public:
  [[nodiscard]] std::string name() const override { return "Epidemic"; }

  void on_arrival(net::Network& net, net::NodeId node,
                  net::LandmarkId l) override;
  void on_packet_generated(net::Network& net, net::PacketId pid) override;
  void on_contact(net::Network& net, net::NodeId arriving,
                  net::NodeId present, net::LandmarkId l) override;

 private:
  void infect_one_way(net::Network& net, net::NodeId from, net::NodeId to);
};

}  // namespace dtn::routing
