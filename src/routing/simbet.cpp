#include "routing/simbet.hpp"

#include <algorithm>

namespace dtn::routing {

SimBetRouter::SimBetRouter(SimBetConfig config) : cfg_(config) {
  DTN_ASSERT(cfg_.alpha >= 0.0 && cfg_.alpha <= 1.0);
}

void SimBetRouter::ensure_init(const Network& net) {
  if (initialized_) return;
  visits_ = FlatMatrix<std::uint32_t>(net.num_nodes(), net.num_landmarks(), 0);
  pair_count_.assign(net.num_nodes(), 0);
  last_landmark_.assign(net.num_nodes(), kNoLandmark);
  seen_pairs_.assign(net.num_nodes(), {});
  initialized_ = true;
}

double SimBetRouter::similarity(NodeId node, LandmarkId dst) const {
  if (!initialized_) return 0.0;
  return static_cast<double>(visits_.at(node, dst));
}

double SimBetRouter::centrality(NodeId node) const {
  if (!initialized_) return 0.0;
  return static_cast<double>(pair_count_[node]);
}

void SimBetRouter::update_on_arrival(Network& net, NodeId node, LandmarkId l) {
  ensure_init(net);
  ++visits_.at(node, l);
  const LandmarkId prev = last_landmark_[node];
  if (prev != kNoLandmark && prev != l) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(prev) * net.num_landmarks() + l;
    auto& seen = seen_pairs_[node];
    if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
      seen.push_back(key);
      ++pair_count_[node];
    }
  }
  last_landmark_[node] = l;
}

double SimBetRouter::utility(Network& net, NodeId node, const Packet& p) {
  // Standalone (non-pairwise) utility used only for introspection: the
  // forwarding decision itself goes through should_forward.
  (void)net;
  return similarity(node, p.dst) + cfg_.alpha * centrality(node);
}

bool SimBetRouter::should_forward(Network& net, NodeId from, NodeId to,
                                  const Packet& p) {
  ensure_init(net);
  const double sim_f = similarity(from, p.dst);
  const double sim_t = similarity(to, p.dst);
  const double bet_f = centrality(from);
  const double bet_t = centrality(to);
  const double sim_total = sim_f + sim_t;
  const double bet_total = bet_f + bet_t;
  const double sim_util_t = sim_total > 0.0 ? sim_t / sim_total : 0.5;
  const double bet_util_t = bet_total > 0.0 ? bet_t / bet_total : 0.5;
  const double util_t = cfg_.alpha * sim_util_t + (1.0 - cfg_.alpha) * bet_util_t;
  // util_from = 1 - util_to by construction of the pairwise normalization.
  return util_t > 0.5;
}

}  // namespace dtn::routing
