// GeoComm adapted to landmark destinations (§II-C / §V-A.1).
//
// GeoComm ranks carriers by their *contact probability per unit time*
// with each geocommunity (landmark): the fraction of elapsed measurement
// units in which the node contacted the landmark at least once.  Unlike
// PROPHET there is no recency reinforcement or aging — a bus that stops
// at every stop of its route once per unit has the *same* contact
// probability for all of them, which is exactly the weakness the paper
// observes on the DNET trace.
#pragma once

#include "routing/utility_router.hpp"
#include "util/flat_matrix.hpp"

namespace dtn::routing {

class GeoCommRouter final : public UtilityRouter {
 public:
  [[nodiscard]] std::string name() const override { return "GeoComm"; }

  /// Fraction of elapsed units in which `node` contacted `l`.
  [[nodiscard]] double contact_probability(const Network& net, NodeId node,
                                           LandmarkId l) const;

 protected:
  void update_on_arrival(Network& net, NodeId node, LandmarkId l) override;
  [[nodiscard]] double utility(Network& net, NodeId node,
                               const Packet& p) override;

 private:
  [[nodiscard]] std::uint32_t unit_index(const Network& net) const;

  FlatMatrix<std::uint32_t> units_contacted_;  // node x landmark
  FlatMatrix<std::uint32_t> last_unit_;        // last unit counted (+1)
  bool initialized_ = false;

  void ensure_init(const Network& net);
};

}  // namespace dtn::routing
