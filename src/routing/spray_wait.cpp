#include "routing/spray_wait.hpp"

#include <vector>

#include "util/assert.hpp"

namespace dtn::routing {

SprayAndWaitRouter::SprayAndWaitRouter(SprayWaitConfig config)
    : cfg_(config) {
  DTN_ASSERT(cfg_.initial_copies >= 1);
}

std::uint32_t SprayAndWaitRouter::tickets(net::PacketId pid) const {
  const auto it = tickets_.find(pid);
  return it == tickets_.end() ? 0 : it->second;
}

void SprayAndWaitRouter::on_arrival(net::Network& net, net::NodeId node,
                                    net::LandmarkId l) {
  const auto origin = net.origin_packets(l);
  const std::vector<net::PacketId> waiting(origin.begin(), origin.end());
  for (const net::PacketId pid : waiting) {
    if (!net.node_buffer(node).has_space(net.packet(pid).size_kb)) break;
    if (net.pickup_from_origin(node, pid)) {
      tickets_[pid] = cfg_.initial_copies;
    }
  }
}

void SprayAndWaitRouter::on_packet_generated(net::Network& net,
                                             net::PacketId pid) {
  const net::Packet& p = net.packet(pid);
  for (const net::NodeId n : net.nodes_at(p.src)) {
    if (net.pickup_from_origin(n, pid)) {
      tickets_[pid] = cfg_.initial_copies;
      break;
    }
  }
}

void SprayAndWaitRouter::on_contact(net::Network& net, net::NodeId arriving,
                                    net::NodeId present, net::LandmarkId l) {
  (void)l;
  net.account_control(
      static_cast<double>(net.node_packets(arriving).size()) +
      static_cast<double>(net.node_packets(present).size()));
  spray_one_way(net, arriving, present);
  spray_one_way(net, present, arriving);
}

void SprayAndWaitRouter::spray_one_way(net::Network& net, net::NodeId from,
                                       net::NodeId to) {
  const auto carried = net.node_packets(from);
  const std::vector<net::PacketId> pids(carried.begin(), carried.end());
  for (const net::PacketId pid : pids) {
    const net::Packet& p = net.packet(pid);
    const std::uint32_t t = tickets(pid);
    if (t <= 1) continue;  // wait phase: direct delivery only
    if (net.logical_delivered(p.logical)) continue;
    if (net.node_holds_logical(to, p.logical)) continue;
    // Received-id dedup (always false when the store's dedup is off):
    // do not split tickets toward a peer that already carried this
    // logical — the store would refuse the copy anyway.
    if (net.node_buffer(to).seen_logical(p.logical)) continue;
    const net::PacketId copy = net.replicate_node_to_node(from, to, pid);
    if (copy == net::kNoPacket) continue;
    const std::uint32_t given = cfg_.binary ? t / 2 : 1;
    tickets_[copy] = given;
    tickets_[pid] = t - given;
  }
}

}  // namespace dtn::routing
