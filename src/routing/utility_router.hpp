// Shared machinery for the landmark-adapted baseline routers (§V-A.1).
//
// All five baselines share one architecture: packets wait at their
// source landmark until a node picks them up; thereafter they move only
// node-to-node, to nodes with a higher suitability ("utility") of
// reaching the destination landmark; delivery happens when a carrier
// arrives at the destination.  Encountering nodes exchange their
// utility vectors (counted as control traffic) before forwarding.
//
// Subclasses provide the utility function and its state updates;
// SimBet overrides the pairwise comparison because its utility is a
// pairwise-normalized combination.
#pragma once

#include "net/network.hpp"
#include "net/router.hpp"

namespace dtn::routing {

using net::LandmarkId;
using net::Network;
using net::NodeId;
using net::Packet;
using net::PacketId;
using trace::kNoLandmark;
using trace::kNoNode;

class UtilityRouter : public net::Router {
 public:
  [[nodiscard]] bool uses_stations() const override { return false; }

  void on_init(Network& net) final;
  void on_arrival(Network& net, NodeId node, LandmarkId l) final;
  void on_contact(Network& net, NodeId arriving, NodeId present,
                  LandmarkId l) final;
  void on_packet_generated(Network& net, PacketId pid) final;

 protected:
  /// Update algorithm state for a visit of `node` at `l` (called before
  /// packet pickup).
  virtual void update_on_arrival(Network& net, NodeId node, LandmarkId l) = 0;

  /// Suitability of `node` to deliver `p` to its destination landmark.
  [[nodiscard]] virtual double utility(Network& net, NodeId node,
                                       const Packet& p) = 0;

  /// Forward `p` from `from` to `to`?  Default: strict utility gain.
  [[nodiscard]] virtual bool should_forward(Network& net, NodeId from,
                                            NodeId to, const Packet& p) {
    return utility(net, to, p) > utility(net, from, p);
  }

  /// Table entries a node sends during one contact (control cost);
  /// default: one utility entry per landmark.
  [[nodiscard]] virtual double contact_control_entries(const Network& net) const {
    return static_cast<double>(net.num_landmarks());
  }

 private:
  void exchange_one_way(Network& net, NodeId from, NodeId to);
};

}  // namespace dtn::routing
