// PER — Predict and Relay (§II-C / §V-A.1).
//
// PER models each node's mobility as a time-homogeneous semi-Markov
// process over landmarks: a first-order transition matrix plus the mean
// sojourn-plus-travel time per step.  Its utility for a packet is the
// probability that the node visits the destination landmark before the
// packet's remaining TTL elapses, computed by the first-passage dynamic
// program
//
//   P_reach(i, s) = T(i, dst) + sum_{j != dst} T(i, j) P_reach(j, s-1)
//
// over s = ceil(remaining_ttl / mean_step_time) steps (capped).  The
// probability changes every time the node moves, so packets are
// re-ranked constantly — the source of PER's highest forwarding cost in
// the paper.  Results are memoized per (node, current landmark,
// destination, step budget) and invalidated on each arrival.
#pragma once

#include <unordered_map>
#include <vector>

#include "routing/utility_router.hpp"

namespace dtn::routing {

struct PerConfig {
  /// Cap on the first-passage step budget (the DP depth).
  std::size_t max_steps = 10;
};

class PerRouter final : public UtilityRouter {
 public:
  explicit PerRouter(PerConfig config = {});

  [[nodiscard]] std::string name() const override { return "PER"; }

  /// P(node visits `dst` within `deadline` seconds from now).
  [[nodiscard]] double visit_probability(const Network& net, NodeId node,
                                         LandmarkId dst, double deadline);

 protected:
  void update_on_arrival(Network& net, NodeId node, LandmarkId l) override;
  [[nodiscard]] double utility(Network& net, NodeId node,
                               const Packet& p) override;

 private:
  struct Row {
    std::vector<std::pair<LandmarkId, std::uint32_t>> successors;
    std::uint32_t total = 0;
  };
  struct NodeModel {
    std::vector<Row> rows;
    LandmarkId last = kNoLandmark;
    double last_arrival = 0.0;
    double step_time_sum = 0.0;  // arrival-to-arrival gaps
    std::uint32_t step_count = 0;
    std::unordered_map<std::uint64_t, double> memo;  // (dst, steps) -> prob
  };

  [[nodiscard]] double first_passage(const NodeModel& m, LandmarkId from,
                                     LandmarkId dst, std::size_t steps) const;

  PerConfig cfg_;
  std::vector<NodeModel> models_;
  bool initialized_ = false;

  void ensure_init(const Network& net);
};

}  // namespace dtn::routing
