// Direct-delivery reference router: the first node visiting the source
// landmark picks a packet up and keeps it until it happens to visit the
// destination landmark.  Not part of the paper's comparison — included
// as the natural lower bound on forwarding cost (one pickup, zero
// relays) for sanity checks and ablation baselines.
#pragma once

#include "routing/utility_router.hpp"

namespace dtn::routing {

class DirectDeliveryRouter final : public UtilityRouter {
 public:
  [[nodiscard]] std::string name() const override { return "Direct"; }

 protected:
  void update_on_arrival(Network& net, NodeId node, LandmarkId l) override {
    (void)net; (void)node; (void)l;
  }
  [[nodiscard]] double utility(Network& net, NodeId node,
                               const Packet& p) override {
    (void)net; (void)node; (void)p;
    return 0.0;  // never strictly better: no node-to-node forwarding
  }
  [[nodiscard]] double contact_control_entries(const Network&) const override {
    return 0.0;  // nothing to exchange
  }
};

}  // namespace dtn::routing
