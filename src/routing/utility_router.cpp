#include "routing/utility_router.hpp"

#include <vector>

namespace dtn::routing {

void UtilityRouter::on_init(Network& net) { (void)net; }

void UtilityRouter::on_arrival(Network& net, NodeId node, LandmarkId l) {
  update_on_arrival(net, node, l);
  // Pick up waiting packets generated at this landmark: without
  // infrastructure relays, any carrier beats none (later contacts move
  // the packet toward better carriers).
  const auto origin = net.origin_packets(l);
  std::vector<PacketId> waiting(origin.begin(), origin.end());
  for (const PacketId pid : waiting) {
    const Packet& p = net.packet(pid);
    if (!net.node_buffer(node).has_space(p.size_kb)) break;
    (void)net.pickup_from_origin(node, pid);
  }
}

void UtilityRouter::on_packet_generated(Network& net, PacketId pid) {
  // A carrier may already be connected at the source landmark when the
  // packet appears: give it to the most suitable present node.
  const Packet& p = net.packet(pid);
  const auto present = net.nodes_at(p.src);
  NodeId best = kNoNode;
  double best_u = -1.0;
  for (const NodeId n : present) {
    if (!net.node_buffer(n).has_space(p.size_kb)) continue;
    const double u = utility(net, n, p);
    if (u > best_u) {
      best_u = u;
      best = n;
    }
  }
  if (best != kNoNode) {
    (void)net.pickup_from_origin(best, pid);
  }
}

void UtilityRouter::on_contact(Network& net, NodeId arriving, NodeId present,
                               LandmarkId l) {
  (void)l;
  // Both nodes send their utility vector (§V-A.1 total-cost accounting).
  net.account_control(2.0 * contact_control_entries(net));
  exchange_one_way(net, arriving, present);
  exchange_one_way(net, present, arriving);
}

void UtilityRouter::exchange_one_way(Network& net, NodeId from, NodeId to) {
  // Snapshot first: packets forwarded in this pass must not be examined
  // again (or bounced back by the reverse pass with equal utilities).
  const auto carried = net.node_packets(from);
  std::vector<PacketId> candidates(carried.begin(), carried.end());
  for (const PacketId pid : candidates) {
    const Packet& p = net.packet(pid);
    if (!net.node_buffer(to).has_space(p.size_kb)) continue;
    if (!should_forward(net, from, to, p)) continue;
    (void)net.node_to_node(from, to, pid);
  }
}

}  // namespace dtn::routing
