#include "routing/geocomm.hpp"

#include <algorithm>
#include <cmath>

namespace dtn::routing {

void GeoCommRouter::ensure_init(const Network& net) {
  if (initialized_) return;
  units_contacted_ =
      FlatMatrix<std::uint32_t>(net.num_nodes(), net.num_landmarks(), 0);
  last_unit_ = FlatMatrix<std::uint32_t>(net.num_nodes(), net.num_landmarks(), 0);
  initialized_ = true;
}

std::uint32_t GeoCommRouter::unit_index(const Network& net) const {
  const double elapsed = net.now() - net.trace_begin();
  return static_cast<std::uint32_t>(
      std::max(0.0, elapsed / net.config().time_unit));
}

void GeoCommRouter::update_on_arrival(Network& net, NodeId node, LandmarkId l) {
  ensure_init(net);
  const std::uint32_t unit = unit_index(net) + 1;  // stored offset by one
  if (last_unit_.at(node, l) != unit) {
    last_unit_.at(node, l) = unit;
    ++units_contacted_.at(node, l);
  }
}

double GeoCommRouter::contact_probability(const Network& net, NodeId node,
                                          LandmarkId l) const {
  if (!initialized_) return 0.0;
  const double units = std::max<double>(1.0, unit_index(net) + 1);
  return static_cast<double>(units_contacted_.at(node, l)) / units;
}

double GeoCommRouter::utility(Network& net, NodeId node, const Packet& p) {
  ensure_init(net);
  return contact_probability(net, node, p.dst);
}

}  // namespace dtn::routing
