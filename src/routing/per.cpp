#include "routing/per.hpp"

#include <algorithm>
#include <cmath>

namespace dtn::routing {

PerRouter::PerRouter(PerConfig config) : cfg_(config) {
  DTN_ASSERT(cfg_.max_steps >= 1);
}

void PerRouter::ensure_init(const Network& net) {
  if (initialized_) return;
  models_.resize(net.num_nodes());
  for (auto& m : models_) m.rows.resize(net.num_landmarks());
  initialized_ = true;
}

void PerRouter::update_on_arrival(Network& net, NodeId node, LandmarkId l) {
  ensure_init(net);
  NodeModel& m = models_[node];
  if (m.last != kNoLandmark && m.last != l) {
    Row& row = m.rows[m.last];
    auto it = std::find_if(row.successors.begin(), row.successors.end(),
                           [&](const auto& s) { return s.first == l; });
    if (it == row.successors.end()) {
      row.successors.emplace_back(l, 1);
    } else {
      ++it->second;
    }
    ++row.total;
    m.step_time_sum += net.now() - m.last_arrival;
    ++m.step_count;
  }
  if (m.last != l) {
    m.last_arrival = net.now();
    m.last = l;
    m.memo.clear();  // the state (current landmark) changed
  }
}

double PerRouter::first_passage(const NodeModel& m, LandmarkId from,
                                LandmarkId dst, std::size_t steps) const {
  // v[j] = P(reach dst within s steps | currently at j), built up from
  // s = 0 (all zeros).  Sparse rows keep each sweep cheap.
  const std::size_t n = m.rows.size();
  std::vector<double> v(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (std::size_t s = 0; s < steps; ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      if (j == dst) {
        next[j] = 0.0;  // absorbing; "reach within s" from dst is trivial
        continue;
      }
      const Row& row = m.rows[j];
      if (row.total == 0) {
        next[j] = 0.0;
        continue;
      }
      double acc = 0.0;
      for (const auto& [to, count] : row.successors) {
        const double p =
            static_cast<double>(count) / static_cast<double>(row.total);
        acc += to == dst ? p : p * v[to];
      }
      next[j] = acc;
    }
    v.swap(next);
  }
  return from == dst ? 1.0 : v[from];
}

double PerRouter::visit_probability(const Network& net, NodeId node,
                                    LandmarkId dst, double deadline) {
  ensure_init(net);
  NodeModel& m = models_[node];
  if (m.last == kNoLandmark || deadline <= 0.0) return 0.0;
  const double mean_step =
      m.step_count > 0 ? m.step_time_sum / static_cast<double>(m.step_count)
                       : net.config().time_unit;
  const auto steps = static_cast<std::size_t>(std::clamp(
      deadline / std::max(mean_step, 1.0), 1.0,
      static_cast<double>(cfg_.max_steps)));
  const std::uint64_t key =
      static_cast<std::uint64_t>(dst) * (cfg_.max_steps + 1) + steps;
  const auto it = m.memo.find(key);
  if (it != m.memo.end()) return it->second;
  const double prob = first_passage(m, m.last, dst, steps);
  m.memo.emplace(key, prob);
  return prob;
}

double PerRouter::utility(Network& net, NodeId node, const Packet& p) {
  return visit_probability(net, node, p.dst, p.remaining_ttl(net.now()));
}

}  // namespace dtn::routing
