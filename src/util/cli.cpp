#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace dtn {

CliOptions::CliOptions(int argc, const char* const* argv,
                       const std::vector<std::string>& known_flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    const bool is_flag =
        std::find(known_flags.begin(), known_flags.end(), arg) != known_flags.end();
    if (is_flag) {
      values_[arg] = "1";
    } else if (i + 1 < argc) {
      values_[arg] = argv[++i];
    } else {
      std::fprintf(stderr, "option --%s expects a value\n", arg.c_str());
      std::exit(2);
    }
  }
}

bool CliOptions::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string CliOptions::get(const std::string& key,
                            const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliOptions::get_int(const std::string& key,
                                 std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliOptions::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

std::uint64_t CliOptions::get_seed(std::uint64_t fallback) const {
  const auto it = values_.find("seed");
  return it == values_.end() ? fallback
                             : std::strtoull(it->second.c_str(), nullptr, 10);
}

bool CliOptions::full_scale() const { return get("scale", "quick") == "full"; }

std::string CliOptions::csv_dir() const { return get("csv", ""); }

std::vector<std::string> CliOptions::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (const auto& [key, value] : values_) {
    if (key.rfind(prefix, 0) == 0) keys.push_back(key);
  }
  return keys;  // std::map iteration is already sorted
}

}  // namespace dtn
