#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dtn {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  DTN_ASSERT(task);
  {
    MutexLock lock(mutex_);
    DTN_ASSERT(!stop_);
    tasks_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mutex_);
  // Manual predicate loop: keeps the guarded reads inside this
  // capability-holding scope instead of a lambda the thread-safety
  // analysis would treat as a separate unannotated function.
  while (!(tasks_.empty() && active_ == 0)) cv_idle_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stop_ && tasks_.empty()) cv_task_.wait(mutex_);
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, pool.thread_count() * 4);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    pool.submit([begin, end, &body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.wait_idle();
}

void serial_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < n; ++i) body(i);
}

}  // namespace dtn
