// Portable explicit-SIMD wrapper for the replay hot paths
// (docs/simd-hot-path.md).
//
// The replay engine promises bit-identical output for a given (trace,
// router, seed) triple, so only *lane-exact* operations are exposed:
// per-lane add / multiply / divide / compare / select, whose IEEE-754
// results are identical to the scalar loop they replace.  Nothing here
// may fuse (no FMA), reassociate, or otherwise change the arithmetic —
// horizontal reductions are provided only for min over non-NaN data,
// where the result is order-independent.
//
// Dispatch is compile-time: the vector width is fixed by the target ISA
// (via GCC/Clang vector extensions, so the same code serves SSE2, AVX,
// AVX-512 and NEON without intrinsics), and `-DDTN_SIMD_SCALAR` or an
// unknown compiler collapses every helper to width 1.  A runtime
// force-scalar flag (`DTN_SIMD_FORCE_SCALAR=1`, or
// `force_scalar_for_test`) lets the bit-equality tests run both code
// paths in one binary; hot loops test `scalar_forced()` once per call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace dtn::simd {

// -- width selection --------------------------------------------------
#if defined(DTN_SIMD_SCALAR)
inline constexpr std::size_t kDoubleLanes = 1;
#elif defined(__GNUC__) && defined(__AVX512F__)
inline constexpr std::size_t kDoubleLanes = 8;
#elif defined(__GNUC__) && defined(__AVX__)
inline constexpr std::size_t kDoubleLanes = 4;
#elif defined(__GNUC__) && (defined(__SSE2__) || defined(__aarch64__))
inline constexpr std::size_t kDoubleLanes = 2;
#else
inline constexpr std::size_t kDoubleLanes = 1;
#endif

inline constexpr bool kEnabled = kDoubleLanes > 1;

// -- runtime scalar-fallback flag -------------------------------------
// getenv only selects *which* of two bit-identical code paths runs, so
// it cannot perturb replay output; reading it once keeps the hot-loop
// check to a single predictable branch.
inline bool& scalar_forced_flag() {
  static bool forced = [] {
    const char* v = std::getenv("DTN_SIMD_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return forced;
}

[[nodiscard]] inline bool scalar_forced() { return scalar_forced_flag(); }

/// Tests flip this to compare the vector and scalar paths in-process.
inline void force_scalar_for_test(bool on) { scalar_forced_flag() = on; }

#if defined(__GNUC__) && !defined(DTN_SIMD_SCALAR)

// -- vector types (GCC/Clang vector extensions) -----------------------
using VDouble =
    double __attribute__((vector_size(kDoubleLanes * sizeof(double))));
// Comparison results: all-ones / all-zero 64-bit lanes.
using VMask =
    long long __attribute__((vector_size(kDoubleLanes * sizeof(long long))));
// One 32-bit lane per double lane (count columns feeding conversions).
using VU32 = std::uint32_t
    __attribute__((vector_size(kDoubleLanes * sizeof(std::uint32_t))));

[[nodiscard]] inline VDouble loadu(const double* p) {
  VDouble v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

inline void storeu(double* p, VDouble v) { std::memcpy(p, &v, sizeof v); }

[[nodiscard]] inline VU32 loadu_u32(const std::uint32_t* p) {
  VU32 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Per-lane u32 -> f64 conversion (exact: every uint32 is a double).
[[nodiscard]] inline VDouble to_double(VU32 v) {
  return __builtin_convertvector(v, VDouble);
}

[[nodiscard]] inline VDouble broadcast(double x) {
  VDouble v;
  for (std::size_t i = 0; i < kDoubleLanes; ++i) v[i] = x;
  return v;
}

/// Per-lane minimum.  Exact only for non-NaN input (delay tables never
/// hold NaN; ±0.0 ambiguity cannot arise because delays are >= +0.0).
[[nodiscard]] inline VDouble vmin(VDouble a, VDouble b) {
  return (a < b) ? a : b;
}

/// Per-lane maximum (same non-NaN caveat as vmin).
[[nodiscard]] inline VDouble vmax(VDouble a, VDouble b) {
  return (a > b) ? a : b;
}

/// Per-lane select: mask lane all-ones -> a, else b.
[[nodiscard]] inline VDouble vselect(VMask m, VDouble a, VDouble b) {
  return m ? a : b;
}

/// True when any lane of a comparison result is set.
[[nodiscard]] inline bool any(VMask m) {
  long long acc = 0;
  for (std::size_t i = 0; i < kDoubleLanes; ++i) acc |= m[i];
  return acc != 0;
}

/// Horizontal minimum of all lanes (order-independent for non-NaN).
[[nodiscard]] inline double hmin(VDouble v) {
  double m = v[0];
  for (std::size_t i = 1; i < kDoubleLanes; ++i) m = v[i] < m ? v[i] : m;
  return m;
}

// -- full-width 32-bit lanes ------------------------------------------
// Twice as many u32 lanes as double lanes in the same register width;
// used for id-list scans (net::Buffer's packet list).
inline constexpr std::size_t kU32Lanes = kDoubleLanes * 2;
using VU32W = std::uint32_t
    __attribute__((vector_size(kU32Lanes * sizeof(std::uint32_t))));
// Comparison results on VU32W: all-ones / all-zero 32-bit lanes.
using VMask32 = std::int32_t
    __attribute__((vector_size(kU32Lanes * sizeof(std::int32_t))));

[[nodiscard]] inline VU32W loadu_u32w(const std::uint32_t* p) {
  VU32W v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

[[nodiscard]] inline VU32W broadcast_u32(std::uint32_t x) {
  VU32W v;
  for (std::size_t i = 0; i < kU32Lanes; ++i) v[i] = x;
  return v;
}

[[nodiscard]] inline bool any32(VMask32 m) {
  // Reduce through a 64-bit view: half as many lane extracts as the
  // obvious 32-bit loop, and extracts are the expensive part (each one
  // is a shuffle+move on SSE-class hardware).
  using VMask64 = std::int64_t
      __attribute__((vector_size(kU32Lanes * sizeof(std::int32_t))));
  const VMask64 w = (VMask64)m;
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < kU32Lanes / 2; ++i) acc |= w[i];
  return acc != 0;
}

#endif  // vector extensions available

/// Index of the first element equal to `needle`, or `n` when absent.
/// Exact std::find replacement: the vector path only locates the first
/// matching block, then a scalar scan inside it picks the first lane,
/// so the returned index is identical to the scalar loop's.
[[nodiscard]] inline std::size_t find_u32(const std::uint32_t* p,
                                          std::size_t n,
                                          std::uint32_t needle) {
  std::size_t i = 0;
#if defined(__GNUC__) && !defined(DTN_SIMD_SCALAR)
  if (kEnabled && !scalar_forced()) {
    const VU32W want = broadcast_u32(needle);
    // Four blocks per step: the vertical mask ORs are one instruction
    // each, so the horizontal any32 (the expensive part) is paid once
    // per 4*kU32Lanes elements.  On a hit the scalar rescan of the
    // step picks the first matching lane, keeping the returned index
    // identical to the plain scalar loop's.
    constexpr std::size_t kStep = 4 * kU32Lanes;
    for (; i + kStep <= n; i += kStep) {
      const VMask32 m0 = loadu_u32w(p + i) == want;
      const VMask32 m1 = loadu_u32w(p + i + kU32Lanes) == want;
      const VMask32 m2 = loadu_u32w(p + i + 2 * kU32Lanes) == want;
      const VMask32 m3 = loadu_u32w(p + i + 3 * kU32Lanes) == want;
      if (!any32((m0 | m1) | (m2 | m3))) continue;
      for (std::size_t j = i; j < i + kStep; ++j) {
        if (p[j] == needle) return j;
      }
    }
    for (; i + kU32Lanes <= n; i += kU32Lanes) {
      if (!any32(loadu_u32w(p + i) == want)) continue;
      for (std::size_t j = i; j < i + kU32Lanes; ++j) {
        if (p[j] == needle) return j;
      }
    }
  }
#endif
  for (; i < n; ++i) {
    if (p[i] == needle) return i;
  }
  return n;
}

}  // namespace dtn::simd
