// Bump/arena allocator for replay-loop scratch churn
// (docs/simd-hot-path.md).
//
// The replay loop used to allocate short-lived vectors on every router
// hook (offer queues, route-delay scratch, upload lists, batch visit
// buffers).  An Arena hands out pointers from a chain of reusable
// blocks with a single pointer bump; `reset()` rewinds the whole chain
// in O(blocks) without releasing memory, so steady-state replay does
// zero heap traffic for scratch.
//
// Lifetime rule (enforced by convention, audited by byte accounting):
// arena-backed containers are reset at *top-level hook entry* and must
// not outlive the hook that allocated them.  Hooks never nest — the
// engine calls exactly one router hook at a time per shard — so each
// shard owns one Arena and resets it as it enters a hook.
//
// Determinism: an Arena never influences replay decisions — it only
// changes where scratch bytes live.  All accounting is derived from
// allocation sizes, never from pointer values, so audit output is
// stable across runs and ASLR.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace dtn {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = 64 * 1024)
      : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with `align` alignment.  Oversized requests
  /// get a dedicated block; alignment must be a power of two.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    // Blocks come from operator new[], so anything up to max_align_t is
    // satisfiable with block-relative offsets alone.
    DTN_ASSERT(align != 0 && (align & (align - 1)) == 0 &&
               align <= alignof(std::max_align_t));
    if (bytes == 0) bytes = 1;
    if (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      const std::size_t off = align_up(b.used, align);
      if (off + bytes <= b.cap) {
        const std::size_t delta = off + bytes - b.used;
        b.used = off + bytes;
        return bump_finish(b, off, delta);
      }
    }
    return allocate_slow(bytes, align);
  }

  /// Rewind every block; capacity is retained for reuse.
  void reset() {
    for (Block& b : blocks_) b.used = 0;
    cur_ = 0;
    bytes_in_use_ = 0;
    ++resets_;
  }

  // -- auditor-visible byte accounting --------------------------------
  /// Live scratch bytes since the last reset (incrementally maintained;
  /// `check` cross-verifies it against the per-block sums).
  [[nodiscard]] std::size_t bytes_in_use() const { return bytes_in_use_; }
  /// Total capacity currently held across the block chain.
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.cap;
    return total;
  }
  /// Largest bytes_in_use observed over the arena's lifetime.
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::size_t blocks() const { return blocks_.size(); }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

  /// Consistency audit: the incremental byte counter must equal the sum
  /// of per-block used counts, every block must satisfy used <= cap,
  /// and the bump cursor must stay inside the chain.  Returns false and
  /// fills `why` on the first violation.
  [[nodiscard]] bool check(std::string* why) const {
    std::size_t sum = 0;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      const Block& b = blocks_[i];
      if (b.used > b.cap) {
        if (why != nullptr) {
          *why = "arena block " + std::to_string(i) + " used " +
                 std::to_string(b.used) + " > cap " + std::to_string(b.cap);
        }
        return false;
      }
      sum += b.used;
    }
    if (cur_ > blocks_.size()) {
      if (why != nullptr) *why = "arena bump cursor past end of block chain";
      return false;
    }
    if (sum != bytes_in_use_) {
      if (why != nullptr) {
        *why = "arena byte accounting drifted: blocks sum to " +
               std::to_string(sum) + " but counter says " +
               std::to_string(bytes_in_use_);
      }
      return false;
    }
    return true;
  }

  /// Corrupt the incremental counter so auditor negatives can verify
  /// the accounting check actually fires.  Test-only.
  void debug_corrupt_accounting_for_test() { bytes_in_use_ += 1; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  static std::size_t align_up(std::size_t n, std::size_t align) {
    return (n + align - 1) & ~(align - 1);
  }

  void* bump_finish(Block& b, std::size_t off, std::size_t delta) {
    // b.used was already advanced by the caller; `delta` is how far the
    // cursor moved (payload + alignment padding), so the incremental
    // counter stays exactly equal to the per-block used sums that
    // check() recomputes.
    bytes_in_use_ += delta;
    if (bytes_in_use_ > high_water_) high_water_ = bytes_in_use_;
    ++allocations_;
    return b.data.get() + off;
  }

  void* allocate_slow(std::size_t bytes, std::size_t align) {
    // Find (or grow to) a block that fits; oversized requests get a
    // block of their own so block_bytes_ stays a steady-state bound.
    const std::size_t need = bytes + align - 1;
    while (true) {
      if (cur_ == blocks_.size()) {
        Block b;
        b.cap = need > block_bytes_ ? need : block_bytes_;
        b.data = std::make_unique<std::byte[]>(b.cap);
        blocks_.push_back(std::move(b));
      }
      Block& b = blocks_[cur_];
      const std::size_t off = align_up(b.used, align);
      if (off + bytes <= b.cap) {
        const std::size_t delta = off + bytes - b.used;
        b.used = off + bytes;
        return bump_finish(b, off, delta);
      }
      ++cur_;  // current block exhausted; move down the chain
    }
  }

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t cur_ = 0;
  std::size_t bytes_in_use_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t allocations_ = 0;
};

/// Standard-allocator adapter so std containers can live in an Arena.
/// Deallocation is a no-op — memory is reclaimed wholesale by reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) : arena_(&arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other)  // NOLINT(google-explicit-constructor)
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) {}  // reclaimed by Arena::reset()

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <typename U>
  [[nodiscard]] bool operator==(const ArenaAllocator<U>& o) const {
    return arena_ == o.arena();
  }

 private:
  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace dtn
