// Minimal leveled logger.
//
// The simulator is a batch program, so logging is plain stderr with a
// process-wide level; there is deliberately no per-module
// configuration, timestamps come from the *simulation* clock when the
// caller supplies one.
#pragma once

#include <cstdarg>
#include <string>

namespace dtn {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// printf-style logging. Prefer the DTN_LOG_* macros which skip argument
/// evaluation when the level is disabled.
void log_message(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

[[nodiscard]] const char* log_level_name(LogLevel level);

}  // namespace dtn

#define DTN_LOG_AT(lvl, ...)                                        \
  do {                                                              \
    if (static_cast<int>(lvl) >= static_cast<int>(::dtn::log_level())) \
      ::dtn::log_message(lvl, __VA_ARGS__);                         \
  } while (0)

#define DTN_LOG_DEBUG(...) DTN_LOG_AT(::dtn::LogLevel::kDebug, __VA_ARGS__)
#define DTN_LOG_INFO(...) DTN_LOG_AT(::dtn::LogLevel::kInfo, __VA_ARGS__)
#define DTN_LOG_WARN(...) DTN_LOG_AT(::dtn::LogLevel::kWarn, __VA_ARGS__)
#define DTN_LOG_ERROR(...) DTN_LOG_AT(::dtn::LogLevel::kError, __VA_ARGS__)
