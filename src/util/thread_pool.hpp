// Fixed-size thread pool with a parallel_for helper.
//
// The experiment runner uses this to run independent simulation
// replicates / sweep points concurrently.  Tasks must be independent;
// determinism is preserved because each replicate owns its seed and the
// runner writes results into pre-sized slots (no ordering dependence).
//
// The queue state is guarded by an annotated Mutex (util/annotations.hpp)
// so the clang presets' -Wthread-safety pass proves the lock discipline
// of the pool — and of the shard barrier paths built on wait_idle()
// (docs/parallel-engine.md) — at compile time.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace dtn {

class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; tasks must not throw (they run under noexcept
  /// dispatch — a throwing task aborts the process, which is what we
  /// want in a batch simulator).
  void submit(std::function<void()> task) DTN_EXCLUDES(mutex_);

  /// Block until every submitted task has finished.
  void wait_idle() DTN_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop() DTN_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> tasks_ DTN_GUARDED_BY(mutex_);
  /// condition_variable_any waits on the annotated Mutex directly.
  std::condition_variable_any cv_task_;
  std::condition_variable_any cv_idle_;
  std::size_t active_ DTN_GUARDED_BY(mutex_) = 0;
  bool stop_ DTN_GUARDED_BY(mutex_) = false;
};

/// Run body(i) for i in [0, n) across the pool; blocks until complete.
/// Work is chunked to limit queueing overhead for large n.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Serial fallback used when no pool is available.
void serial_for(std::size_t n, const std::function<void(std::size_t)>& body);

}  // namespace dtn
