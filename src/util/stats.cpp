#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace dtn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ == 0 ? 0.0 : min_; }
double RunningStats::max() const { return n_ == 0 ? 0.0 : max_; }

double quantile(std::span<const double> data, double q) {
  DTN_ASSERT(!data.empty());
  DTN_ASSERT(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

FiveNumber five_number_summary(std::span<const double> data) {
  DTN_ASSERT(!data.empty());
  FiveNumber f;
  f.min = quantile(data, 0.0);
  f.q1 = quantile(data, 0.25);
  f.q3 = quantile(data, 0.75);
  f.max = quantile(data, 1.0);
  double sum = 0.0;
  for (double x : data) sum += x;
  f.mean = sum / static_cast<double>(data.size());
  return f;
}

double student_t_critical(std::size_t df, double confidence) {
  DTN_ASSERT(df >= 1);
  // Two-sided critical values; rows for the confidence levels the
  // experiment runner actually uses.  Linear fallback to z beyond df=30.
  struct Row {
    double conf;
    double z;                // df -> infinity
    double table[30];        // df = 1..30
  };
  static const Row kRows[] = {
      {0.90, 1.6449,
       {6.3138, 2.9200, 2.3534, 2.1318, 2.0150, 1.9432, 1.8946, 1.8595,
        1.8331, 1.8125, 1.7959, 1.7823, 1.7709, 1.7613, 1.7531, 1.7459,
        1.7396, 1.7341, 1.7291, 1.7247, 1.7207, 1.7171, 1.7139, 1.7109,
        1.7081, 1.7056, 1.7033, 1.7011, 1.6991, 1.6973}},
      {0.95, 1.9600,
       {12.7062, 4.3027, 3.1824, 2.7764, 2.5706, 2.4469, 2.3646, 2.3060,
        2.2622, 2.2281, 2.2010, 2.1788, 2.1604, 2.1448, 2.1314, 2.1199,
        2.1098, 2.1009, 2.0930, 2.0860, 2.0796, 2.0739, 2.0687, 2.0639,
        2.0595, 2.0555, 2.0518, 2.0484, 2.0452, 2.0423}},
      {0.99, 2.5758,
       {63.6567, 9.9248, 5.8409, 4.6041, 4.0321, 3.7074, 3.4995, 3.3554,
        3.2498, 3.1693, 3.1058, 3.0545, 3.0123, 2.9768, 2.9467, 2.9208,
        2.8982, 2.8784, 2.8609, 2.8453, 2.8314, 2.8188, 2.8073, 2.7969,
        2.7874, 2.7787, 2.7707, 2.7633, 2.7564, 2.7500}},
  };
  const Row* best = &kRows[1];
  double best_dist = 1e9;
  for (const auto& row : kRows) {
    const double d = std::abs(row.conf - confidence);
    if (d < best_dist) {
      best_dist = d;
      best = &row;
    }
  }
  if (df <= 30) return best->table[df - 1];
  return best->z;
}

double confidence_half_width(std::span<const double> data, double confidence) {
  if (data.size() < 2) return 0.0;
  RunningStats rs;
  for (double x : data) rs.add(x);
  const double t = student_t_critical(data.size() - 1, confidence);
  return t * rs.stddev() / std::sqrt(static_cast<double>(data.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  DTN_ASSERT(hi > lo);
  DTN_ASSERT(bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  DTN_ASSERT(i < counts_.size());
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  DTN_ASSERT(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const {
  DTN_ASSERT(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) / static_cast<double>(counts_.size());
}

double pearson_correlation(std::span<const double> x, std::span<const double> y) {
  DTN_ASSERT(x.size() == y.size());
  DTN_ASSERT(x.size() >= 2);
  RunningStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  return denom == 0.0 ? 0.0 : cov / denom;
}

}  // namespace dtn
