// Machine-checked source annotations (docs/static-analysis.md).
//
// Three families, all zero-cost at runtime:
//
//  * Shard-safety: `DTN_SHARD_LOCAL` / `DTN_SHARD_SHARED` mark the
//    mutable members of classes that run inside the sharded replay
//    engine (docs/parallel-engine.md).  LOCAL means every write from a
//    shard hook lands in state the current shard owns exclusively —
//    either partitioned by the event's landmark/node or a per-shard
//    slot indexed by sim::current_shard().  SHARED means concurrent
//    shards would race on it, so shard-hook-reachable code must not
//    write it (the analyzer's shard-safety check enforces exactly
//    that; writes behind a runtime `shard_safe()` gate carry a
//    `// shard-check: ok(<reason>)` suppression).
//
//  * Checkpoint coverage: `DTN_CKPT_SKIP("reason")` marks a data
//    member of a checkpointable class that is deliberately absent
//    from its checkpoint_save/checkpoint_load (or save/load) pair —
//    scratch state rebuilt lazily, or configuration the fingerprint
//    already pins.  The analyzer's checkpoint-coverage check requires
//    every other member to be referenced in both methods, catching
//    the "added a member, forgot to serialize it" bug class that
//    silently breaks bit-identical resume (docs/checkpointing.md).
//
//  * Clang thread-safety analysis (-Wthread-safety): capability
//    annotations on the annotated `Mutex` below and on the members it
//    guards.  util::ThreadPool and the shard barrier paths use them so
//    the clang presets prove lock discipline at compile time.
//
// The shard/ckpt macros expand to `[[clang::annotate(...)]]` so the
// libclang frontend of tools/analyzer sees them as attributes; under
// GCC they expand to nothing (the analyzer's fallback frontend reads
// the macro spelling straight from the source instead).  They are
// written BEFORE the member declaration:
//
//     DTN_SHARD_LOCAL std::vector<NodeState> nodes_;
//     DTN_CKPT_SKIP("rebuilt lazily") std::vector<Cache> cache_;
#pragma once

#include <mutex>

#if defined(__clang__)
#define DTN_ANNOTATE(text) [[clang::annotate(text)]]
#else
#define DTN_ANNOTATE(text)
#endif

/// Member writes from shard hooks touch only current-shard-owned state.
#define DTN_SHARD_LOCAL DTN_ANNOTATE("dtn::shard_local")
/// Member is shared across shards: shard-reachable code must not write it.
#define DTN_SHARD_SHARED DTN_ANNOTATE("dtn::shard_shared")
/// Member is deliberately not serialized; the reason is mandatory.
#define DTN_CKPT_SKIP(reason) DTN_ANNOTATE("dtn::ckpt_skip=" reason)

// -- clang thread-safety capability attributes ------------------------
// GNU spelling, written AFTER the declarator (standard placement for
// thread-safety annotations):  std::size_t active_ DTN_GUARDED_BY(mutex_);
#if defined(__clang__)
#define DTN_TS_ATTR(x) __attribute__((x))
#else
#define DTN_TS_ATTR(x)
#endif

#define DTN_CAPABILITY(x) DTN_TS_ATTR(capability(x))
#define DTN_SCOPED_CAPABILITY DTN_TS_ATTR(scoped_lockable)
#define DTN_GUARDED_BY(x) DTN_TS_ATTR(guarded_by(x))
#define DTN_ACQUIRE(...) DTN_TS_ATTR(acquire_capability(__VA_ARGS__))
#define DTN_RELEASE(...) DTN_TS_ATTR(release_capability(__VA_ARGS__))
#define DTN_TRY_ACQUIRE(...) DTN_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define DTN_REQUIRES(...) DTN_TS_ATTR(requires_capability(__VA_ARGS__))
#define DTN_EXCLUDES(...) DTN_TS_ATTR(locks_excluded(__VA_ARGS__))
#define DTN_NO_THREAD_SAFETY_ANALYSIS DTN_TS_ATTR(no_thread_safety_analysis)

namespace dtn {

/// std::mutex wrapped as a named thread-safety capability (libstdc++'s
/// mutex carries no annotations, so -Wthread-safety cannot otherwise
/// connect lock() calls to DTN_GUARDED_BY members).  Satisfies
/// BasicLockable, so std::condition_variable_any can wait on it
/// directly — wait(Mutex&) unlocks and relocks through these exact
/// methods.
class DTN_CAPABILITY("mutex") Mutex {
 public:
  void lock() DTN_ACQUIRE() { m_.lock(); }
  void unlock() DTN_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() DTN_TRY_ACQUIRE(true) {
    return m_.try_lock();
  }

 private:
  std::mutex m_;
};

/// RAII lock for Mutex (scoped capability, so the analysis tracks the
/// critical section's extent).
class DTN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) DTN_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() DTN_RELEASE() { m_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace dtn
