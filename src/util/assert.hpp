// Lightweight contract checking used throughout the library.
//
// DTN_ASSERT is always on (benches included): simulation bugs silently
// corrupt results, and the checks here are cheap relative to event
// processing.  On failure it prints the condition and location and
// aborts, which is the right behaviour for an invariant violation in a
// batch simulator (there is no meaningful way to continue).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dtn {

[[noreturn]] inline void assert_fail(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "DTN_ASSERT failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace dtn

#define DTN_ASSERT(cond)                                     \
  do {                                                       \
    if (!(cond)) ::dtn::assert_fail(#cond, __FILE__, __LINE__); \
  } while (0)
