// Deterministic, splittable random number generation.
//
// Every stochastic component in the library (trace generators, packet
// workload, routers that tie-break randomly) draws from an explicit
// `Rng` seeded from a 64-bit value, so whole experiments replay
// bit-for-bit.  The generator is xoshiro256** (public domain, Blackman &
// Vigna) seeded through SplitMix64; both are small enough to inline and
// much faster than std::mt19937_64 while passing BigCrush.
//
// `Rng::split(tag)` derives an independent stream for a sub-component
// without sharing state, which keeps results stable when one component
// changes how many numbers it consumes.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace dtn {

/// SplitMix64 step; used for seeding and stream derivation.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64();

  // UniformRandomBitGenerator interface (usable with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform();

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool bernoulli(double p);

  /// Exponential variate with the given mean (mean > 0).
  [[nodiscard]] double exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare: keeps replay simple).
  [[nodiscard]] double normal(double mean, double stddev);

  /// Log-normal variate parameterised by the mean/stddev of the
  /// *underlying* normal.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Sample an index proportionally to non-negative `weights`.
  /// At least one weight must be positive.
  [[nodiscard]] std::size_t discrete(std::span<const double> weights);

  /// Fisher-Yates shuffle of an index vector [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child generator; `tag` distinguishes children
  /// created from the same parent state.
  [[nodiscard]] Rng split(std::uint64_t tag);

  /// Full generator state, for checkpointing (src/persist/).  A restored
  /// state continues the exact stream: state()/set_state round-trips are
  /// bit-identical to never having been interrupted.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    s_[0] = s[0];
    s_[1] = s[1];
    s_[2] = s[2];
    s_[3] = s[3];
  }

 private:
  std::uint64_t s_[4];
};

/// Zipf(s) sampler over ranks 1..n (returned zero-based).  Popularity of
/// rank r is proportional to r^-s.  Used to model skewed landmark
/// popularity (paper observation O1).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }
  /// Probability mass of zero-based rank r.
  [[nodiscard]] double pmf(std::size_t r) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace dtn
