#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace dtn {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DTN_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  DTN_ASSERT(n > 0);
  // Bounded rejection sampling (Lemire-style threshold) to avoid modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DTN_ASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  DTN_ASSERT(mean > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

std::size_t Rng::discrete(std::span<const double> weights) {
  DTN_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DTN_ASSERT(w >= 0.0);
    total += w;
  }
  DTN_ASSERT(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  // Floating point slack: return the last index with positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split(std::uint64_t tag) {
  // Mix the tag with fresh output so children with different tags (and
  // successive children with the same tag) are decorrelated.
  std::uint64_t seed = next_u64() ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  return Rng(seed);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  DTN_ASSERT(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -exponent);
    cdf_[r] = acc;
  }
  for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

double ZipfSampler::pmf(std::size_t r) const {
  DTN_ASSERT(r < cdf_.size());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

}  // namespace dtn
