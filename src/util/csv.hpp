// CSV emission and aligned console tables.
//
// Every bench binary prints a human-readable table (the paper's rows)
// and can optionally mirror it to CSV for plotting.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace dtn {

/// Quote/escape a CSV field per RFC 4180 when needed.
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Append-only CSV file writer.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& fields);

  /// Convenience: format doubles with %.6g.
  void write_row_values(const std::vector<double>& values);

 private:
  std::ofstream out_;
};

/// Fixed set of columns rendered with aligned widths; collects rows then
/// prints once.  Also mirrors to CSV when a path is set.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> row);
  /// Format helper for numeric rows (first column string, rest numbers).
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  /// Render to stdout.
  void print(std::string_view title = {}) const;

  /// Write headers+rows to a CSV file (no-op if path empty).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for tables).
[[nodiscard]] std::string format_double(double v, int precision = 4);

}  // namespace dtn
