// Dense row-major 2D matrix with bounds-checked access.
//
// Used for transition-count matrices (Markov predictor), landmark
// adjacency/bandwidth matrices and distance-vector delay tables.
#pragma once

#include <cstddef>
#include <vector>

#include "util/assert.hpp"

namespace dtn {

template <typename T>
class FlatMatrix {
 public:
  FlatMatrix() = default;
  FlatMatrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    DTN_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    DTN_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  void fill(const T& value) { std::fill(data_.begin(), data_.end(), value); }

  /// Contiguous row access for vectorized sweeps (docs/simd-hot-path.md).
  [[nodiscard]] T* row_ptr(std::size_t r) {
    DTN_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }
  [[nodiscard]] const T* row_ptr(std::size_t r) const {
    DTN_ASSERT(r < rows_);
    return data_.data() + r * cols_;
  }

  /// Sum over one row (requires T to be additive).
  [[nodiscard]] T row_sum(std::size_t r) const {
    DTN_ASSERT(r < rows_);
    T acc{};
    for (std::size_t c = 0; c < cols_; ++c) acc += data_[r * cols_ + c];
    return acc;
  }

  [[nodiscard]] const std::vector<T>& raw() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace dtn
