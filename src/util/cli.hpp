// Tiny command-line option parser shared by benches and examples.
//
// Supports `--key value` and `--flag` forms; anything unrecognised is an
// error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dtn {

class CliOptions {
 public:
  /// Parse argv; `known_flags` lists boolean options (no value).
  /// Exits with a message on malformed input.
  CliOptions(int argc, const char* const* argv,
             const std::vector<std::string>& known_flags = {});

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::uint64_t get_seed(std::uint64_t fallback) const;

  /// "quick" (default) or "full" — benches scale their workloads by this.
  [[nodiscard]] bool full_scale() const;

  /// Directory for CSV mirrors ("" disables CSV output).
  [[nodiscard]] std::string csv_dir() const;

  /// All parsed option keys starting with `prefix`, in sorted order
  /// (lets grouped parsers like the --fault-* family reject typos).
  [[nodiscard]] std::vector<std::string> keys_with_prefix(
      const std::string& prefix) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace dtn
