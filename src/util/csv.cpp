#include "util/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/assert.hpp"

namespace dtn {

std::string csv_escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << csv_escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_values(const std::vector<double>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_double(v, 6));
  write_row(fields);
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DTN_ASSERT(!headers_.empty());
}

void TablePrinter::add_row(std::vector<std::string> row) {
  DTN_ASSERT(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::add_row(const std::string& label,
                           const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void TablePrinter::print(std::string_view title) const {
  if (!title.empty()) {
    std::printf("\n== %.*s ==\n", static_cast<int>(title.size()), title.data());
  }
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s", static_cast<int>(widths[c] + 2), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::write_csv(const std::string& path) const {
  if (path.empty()) return;
  CsvWriter w(path);
  w.write_row(headers_);
  for (const auto& row : rows_) w.write_row(row);
}

}  // namespace dtn
