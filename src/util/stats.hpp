// Streaming and batch statistics used by trace analysis, metrics
// aggregation and the experiment runner (95% confidence intervals as in
// the paper's evaluation section).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dtn {

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return mean() * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation between order
/// statistics (type-7, the numpy/R default).  q in [0,1]; data need not
/// be sorted.  Empty data is a precondition violation.
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// Five-number summary used by the paper's box-plot style figures
/// (Fig. 6(b), Fig. 16(a)): min, Q1, mean, Q3, max.
struct FiveNumber {
  double min = 0.0;
  double q1 = 0.0;
  double mean = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};
[[nodiscard]] FiveNumber five_number_summary(std::span<const double> data);

/// Half-width of the two-sided Student-t confidence interval for the
/// mean of `data` at the given confidence level (e.g. 0.95).  Returns 0
/// for fewer than two samples.
[[nodiscard]] double confidence_half_width(std::span<const double> data,
                                           double confidence = 0.95);

/// Two-sided Student-t critical value for `df` degrees of freedom at the
/// given confidence level; falls back to the normal value for large df.
[[nodiscard]] double student_t_critical(std::size_t df, double confidence);

/// Fixed-width histogram over [lo, hi); samples outside clamp to the
/// edge bins.  Used for trace distribution figures.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson correlation coefficient of two equal-length samples.
[[nodiscard]] double pearson_correlation(std::span<const double> x,
                                         std::span<const double> y);

}  // namespace dtn
