// Experiment runner: router x sweep-parameter grids with replicates,
// parallelized over a thread pool, aggregated with Student-t confidence
// intervals (the paper reports 95% CIs).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "net/router.hpp"
#include "trace/trace.hpp"

namespace dtn::metrics {

/// Fresh-router factory: every run needs its own router instance
/// (routers accumulate learned state).
using RouterFactory = std::function<std::unique_ptr<net::Router>()>;

/// One aggregated metric: mean over replicates with a CI half-width.
struct Aggregate {
  double mean = 0.0;
  double ci_half_width = 0.0;
};

/// Aggregated metrics for one (router, sweep value) cell.
struct CellResult {
  std::string router;
  double sweep_value = 0.0;
  Aggregate success_rate;
  Aggregate avg_delay;
  Aggregate overall_delay;
  Aggregate forwarding_cost;
  Aggregate total_cost;
  std::vector<RunResult> replicates;
};

struct SweepConfig {
  /// Values of the swept parameter (e.g. memory sizes in kB).
  std::vector<double> values;
  /// Applies one sweep value to the workload template.
  std::function<void(net::WorkloadConfig&, double)> apply;
  std::size_t replicates = 1;
  double confidence = 0.95;
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads = 0;
};

/// Run every router over every sweep value, `replicates` times each with
/// distinct workload seeds; results keep router-major order matching
/// `factories`.
[[nodiscard]] std::vector<CellResult> run_sweep(
    const trace::Trace& trace, const net::WorkloadConfig& base_workload,
    const std::vector<std::pair<std::string, RouterFactory>>& factories,
    const SweepConfig& sweep, const CostModel& cost = {});

}  // namespace dtn::metrics
