#include "metrics/experiment.hpp"

#include <span>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace dtn::metrics {

namespace {

Aggregate aggregate_metric(std::span<const RunResult> runs,
                           double (*pick)(const RunResult&),
                           double confidence) {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const auto& r : runs) xs.push_back(pick(r));
  Aggregate a;
  RunningStats rs;
  for (double x : xs) rs.add(x);
  a.mean = rs.mean();
  a.ci_half_width = confidence_half_width(xs, confidence);
  return a;
}

}  // namespace

std::vector<CellResult> run_sweep(
    const trace::Trace& trace, const net::WorkloadConfig& base_workload,
    const std::vector<std::pair<std::string, RouterFactory>>& factories,
    const SweepConfig& sweep, const CostModel& cost) {
  DTN_ASSERT(!sweep.values.empty());
  DTN_ASSERT(sweep.replicates >= 1);

  struct Job {
    std::size_t cell;
    std::size_t replicate;
    std::string router;
    double value;
    const RouterFactory* factory;
  };
  std::vector<Job> jobs;
  std::vector<CellResult> cells;
  for (std::size_t f = 0; f < factories.size(); ++f) {
    for (std::size_t v = 0; v < sweep.values.size(); ++v) {
      CellResult cell;
      cell.router = factories[f].first;
      cell.sweep_value = sweep.values[v];
      cell.replicates.resize(sweep.replicates);
      const std::size_t cell_index = cells.size();
      cells.push_back(std::move(cell));
      for (std::size_t r = 0; r < sweep.replicates; ++r) {
        jobs.push_back(Job{cell_index, r, factories[f].first, sweep.values[v],
                           &factories[f].second});
      }
    }
  }

  auto run_job = [&](std::size_t j) {
    const Job& job = jobs[j];
    net::WorkloadConfig workload = base_workload;
    if (sweep.apply) sweep.apply(workload, job.value);
    // Replicates differ only in workload seed; the trace is fixed.
    workload.seed = base_workload.seed + 0x9e37 * (job.replicate + 1);
    // Fault plans replicate too: perturb the plan seed the same way so
    // each replicate draws an independent (but reproducible) fault
    // realization.
    if (workload.faults.has_value()) {
      workload.faults->seed ^= 0x5bd1e995ULL * (job.replicate + 1);
    }
    auto router = (*job.factory)();
    cells[job.cell].replicates[job.replicate] =
        run_experiment(trace, *router, workload, cost);
  };

  if (sweep.threads == 1 || jobs.size() == 1) {
    serial_for(jobs.size(), run_job);
  } else {
    ThreadPool pool(sweep.threads);
    parallel_for(pool, jobs.size(), run_job);
  }

  for (auto& cell : cells) {
    const auto runs = std::span<const RunResult>(cell.replicates);
    cell.success_rate = aggregate_metric(
        runs, [](const RunResult& r) { return r.success_rate; },
        sweep.confidence);
    cell.avg_delay = aggregate_metric(
        runs, [](const RunResult& r) { return r.avg_delay; }, sweep.confidence);
    cell.overall_delay = aggregate_metric(
        runs, [](const RunResult& r) { return r.overall_delay; },
        sweep.confidence);
    cell.forwarding_cost = aggregate_metric(
        runs, [](const RunResult& r) { return r.forwarding_cost; },
        sweep.confidence);
    cell.total_cost = aggregate_metric(
        runs, [](const RunResult& r) { return r.total_cost; },
        sweep.confidence);
  }
  return cells;
}

}  // namespace dtn::metrics
